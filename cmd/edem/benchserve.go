package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"edem/internal/lifecycle"
	"edem/internal/serve"
	"edem/internal/stats"
	"edem/internal/telemetry"
)

// cmdBenchServe is the wire-speed load harness for the serving runtime:
// it spins up a fresh in-process server per measurement leg — every
// combination of codec (json, binary) and evaluation mode (interpreted,
// compiled) — drives it closed-loop from -conns concurrent clients for
// -duration, and records latency percentiles, throughput and shed rate
// into a JSON snapshot comparable PR-over-PR (BENCH_serve.json). The
// json+interpreted leg is the baseline; binary+compiled is the shipping
// configuration.
func cmdBenchServe(args []string) error {
	fs := flag.NewFlagSet("bench-serve", flag.ContinueOnError)
	bundlePath := fs.String("bundle", "", "detector bundle file (from edem export)")
	out := fs.String("out", "BENCH_serve.json", "benchmark snapshot output file")
	duration := fs.Duration("duration", 3*time.Second, "measurement window per leg")
	warmup := fs.Duration("warmup", 300*time.Millisecond, "unrecorded warm-up per leg")
	conns := fs.Int("conns", 8, "concurrent closed-loop client connections")
	batch := fs.Int("batch", 64, "samples per request")
	detID := fs.String("detector", "", "detector ID to drive (default: first in the bundle)")
	shadowLegs := fs.Bool("shadow", false, "add self-shadow legs (the bundle shadowing itself) to measure lifecycle dual-evaluation overhead")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	if *bundlePath == "" {
		return fmt.Errorf("bench-serve needs -bundle FILE (produce one with edem export)")
	}
	if *conns <= 0 || *batch <= 0 {
		return fmt.Errorf("bench-serve needs positive -conns and -batch")
	}
	b, err := serve.LoadBundle(*bundlePath)
	if err != nil {
		return err
	}
	id := *detID
	if id == "" {
		id = b.Detectors[0].ID
	}
	var arity int
	found := false
	for _, e := range b.Detectors {
		if e.ID == id {
			arity, found = len(e.Predicate.Vars), true
		}
	}
	if !found {
		return fmt.Errorf("bench-serve: detector %q not in bundle %s", id, *bundlePath)
	}

	// One fixed seeded sample set shared by every leg: identical work,
	// so the legs differ only in codec and evaluation mode.
	rng := stats.NewRNG(opts.Seed)
	samples := make([]serve.Sample, *batch)
	for i := range samples {
		s := make(serve.Sample, arity)
		for j := range s {
			s[j] = rng.Float64()*200 - 100
		}
		samples[i] = s
	}

	type legSpec struct {
		Codec     serve.Codec
		Interpret bool
		Shadow    bool
	}
	legs := []legSpec{
		{serve.CodecJSON, true, false}, // baseline
		{serve.CodecJSON, false, false},
		{serve.CodecBinary, true, false},
		{serve.CodecBinary, false, false},
	}
	if *shadowLegs {
		// Self-shadow legs: the candidate is the live bundle itself, so
		// every request dual-evaluates with zero disagreements — the pure
		// cost of the lifecycle mirror path on top of the two shipping
		// codecs, comparable leg-for-leg against the compiled rows above.
		legs = append(legs,
			legSpec{serve.CodecJSON, false, true},
			legSpec{serve.CodecBinary, false, true})
	}
	results := make([]benchServeLeg, 0, len(legs))
	for _, leg := range legs {
		res, err := runServeLeg(b, *bundlePath, leg.Codec, leg.Interpret, leg.Shadow, id, samples,
			*conns, *warmup, *duration, opts.Workers)
		if err != nil {
			return err
		}
		results = append(results, *res)
		label := res.Codec + "+" + res.Eval
		if res.Shadow {
			label += "+shadow"
		}
		fmt.Fprintf(os.Stderr, "  %-22s %9.0f req/s  p50 %6dµs  p99 %6dµs  p99.9 %6dµs  sheds %d\n",
			label, res.ThroughputRPS, res.P50Micros, res.P99Micros, res.P999Micros, res.Sheds)
	}

	// The shipping leg is the last non-shadow one (binary+compiled);
	// optional shadow legs append after it.
	baseline, shipping := results[0], results[3]
	speedup := 0.0
	if baseline.ThroughputRPS > 0 {
		speedup = shipping.ThroughputRPS / baseline.ThroughputRPS
	}
	snap := benchServeSnapshot{
		GeneratedBy: "edem bench-serve",
		Bundle:      *bundlePath,
		Detector:    id,
		Arity:       arity,
		Batch:       *batch,
		Conns:       *conns,
		DurationSec: duration.Seconds(),
		Legs:        results,
		Speedup:     speedup,
	}
	if err := writeFile(*out, func(f *os.File) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(snap)
	}); err != nil {
		return err
	}
	fmt.Printf("wrote %s (binary+compiled vs json+interpreted: %.2fx throughput)\n", *out, speedup)
	return nil
}

// benchServeSnapshot is the BENCH_serve.json layout.
type benchServeSnapshot struct {
	GeneratedBy string          `json:"generated_by"`
	Bundle      string          `json:"bundle"`
	Detector    string          `json:"detector"`
	Arity       int             `json:"arity"`
	Batch       int             `json:"batch"`
	Conns       int             `json:"conns"`
	DurationSec float64         `json:"duration_sec"`
	Legs        []benchServeLeg `json:"legs"`
	// Speedup is binary+compiled throughput over json+interpreted.
	Speedup float64 `json:"speedup_binary_compiled_vs_json_interpreted"`
}

type benchServeLeg struct {
	Codec string `json:"codec"`
	Eval  string `json:"eval"`
	// Shadow marks a self-shadow leg: lifecycle dual evaluation enabled
	// with the bundle shadowing itself.
	Shadow        bool    `json:"shadow,omitempty"`
	Requests      int     `json:"requests"`
	Sheds         int     `json:"sheds"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	P50Micros     int64   `json:"p50_us"`
	P99Micros     int64   `json:"p99_us"`
	P999Micros    int64   `json:"p999_us"`
}

// runServeLeg measures one codec × evaluation-mode combination against
// a fresh in-process server, so no leg inherits the previous leg's
// warm caches, pools or breaker state. With shadow, the leg serves
// with a lifecycle monitor and the bundle loaded as its own shadow
// candidate (the dual-evaluation worst case: every request mirrors).
func runServeLeg(b *serve.Bundle, path string, codec serve.Codec, interpret, shadow bool,
	detector string, samples []serve.Sample, conns int,
	warmup, duration time.Duration, workers int) (*benchServeLeg, error) {

	cfg := serve.Config{
		QueueDepth: 2 * conns,
		Workers:    workers,
		Interpret:  interpret,
		Registry:   telemetry.New(),
	}
	if shadow {
		dir, err := os.MkdirTemp("", "edem-bench-lifecycle-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		mon, err := lifecycle.NewMonitor(lifecycle.MonitorConfig{Dir: dir, Registry: cfg.Registry})
		if err != nil {
			return nil, err
		}
		defer mon.Close()
		cfg.Monitor = mon
	}
	s, err := serve.NewServer(b, path, cfg)
	if err != nil {
		return nil, err
	}
	if shadow {
		if _, err := s.LoadShadow(path); err != nil {
			s.Close()
			return nil, err
		}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); _ = hs.Serve(ln) }()
	defer func() {
		_ = hs.Close()
		<-serveDone
		s.Close()
	}()
	base := "http://" + ln.Addr().String()

	type worker struct {
		latencies []int64 // ns, successful requests only
		sheds     int
		errors    int
	}
	run := func(until time.Time, record bool, w *worker) error {
		cl := &serve.Client{Base: base, Codec: codec, MaxRetries: -1}
		ctx := context.Background()
		for time.Now().Before(until) {
			start := time.Now()
			_, err := cl.Evaluate(ctx, detector, samples)
			if err != nil {
				var se *serve.StatusError
				if errors.As(err, &se) && se.Code == http.StatusTooManyRequests {
					w.sheds++
					continue
				}
				w.errors++
				if w.errors > 100 {
					return fmt.Errorf("bench-serve %v leg: too many errors, last: %w", codec, err)
				}
				continue
			}
			if record {
				w.latencies = append(w.latencies, time.Since(start).Nanoseconds())
			}
		}
		return nil
	}

	workersState := make([]worker, conns)
	errs := make([]error, conns)
	var wg sync.WaitGroup
	warmupUntil := time.Now().Add(warmup)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &workersState[i]
			if err := run(warmupUntil, false, w); err != nil {
				errs[i] = err
				return
			}
			w.sheds, w.errors = 0, 0 // warm-up doesn't count
			errs[i] = run(time.Now().Add(duration), true, w)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var all []int64
	leg := benchServeLeg{Codec: codec.String(), Shadow: shadow}
	leg.Eval = "compiled"
	if interpret {
		leg.Eval = "interpreted"
	}
	for i := range workersState {
		all = append(all, workersState[i].latencies...)
		leg.Sheds += workersState[i].sheds
		leg.Errors += workersState[i].errors
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("bench-serve %v leg: no successful requests", codec)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) int64 {
		idx := int(p * float64(len(all)-1))
		return all[idx] / 1000
	}
	leg.Requests = len(all)
	leg.ThroughputRPS = float64(len(all)) / duration.Seconds()
	leg.SamplesPerSec = leg.ThroughputRPS * float64(len(samples))
	leg.P50Micros = pct(0.50)
	leg.P99Micros = pct(0.99)
	leg.P999Micros = pct(0.999)
	return &leg, nil
}
