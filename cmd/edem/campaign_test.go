package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCmdCampaignFlagValidation pins the target-selection errors that
// need no campaign execution.
func TestCmdCampaignFlagValidation(t *testing.T) {
	if err := run([]string{"campaign"}); err == nil {
		t.Error("campaign without -dataset/-all should fail")
	}
	if err := run([]string{"campaign", "-dataset", "MG-A1", "-all"}); err == nil {
		t.Error("campaign with both -dataset and -all should fail")
	}
	if err := run([]string{"campaign", "-dataset", "NOPE-Z9", "-journal", t.TempDir()}); err == nil {
		t.Error("campaign with bad dataset ID should fail")
	}
}

// TestCmdCampaignStopAndResume drives the whole story through the CLI:
// start a journaled campaign, stop it after two checkpoints (a
// controlled kill), resume it to completion, then regenerate the ARFF
// dataset twice — once from the resumed journal, once directly — and
// require byte identity.
func TestCmdCampaignStopAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	journal := filepath.Join(t.TempDir(), "journal")
	scale := []string{"-dataset", "MG-A1", "-scale", "2", "-stride", "16"}

	args := append([]string{"campaign", "-journal", journal, "-shards", "6", "-stop-after", "2"}, scale...)
	if err := run(args); err != nil {
		t.Fatalf("interrupted campaign should exit cleanly: %v", err)
	}
	if _, err := os.Stat(filepath.Join(journal, "MG-A1", "manifest.json")); err != nil {
		t.Fatalf("journal manifest missing: %v", err)
	}

	// Without -resume the half-finished journal must be refused.
	args = append([]string{"campaign", "-journal", journal, "-shards", "6"}, scale...)
	if err := run(args); err == nil {
		t.Fatal("existing journal without -resume should fail")
	}

	args = append([]string{"campaign", "-journal", journal, "-shards", "6", "-resume"}, scale...)
	if err := run(args); err != nil {
		t.Fatalf("resume: %v", err)
	}

	dir := t.TempDir()
	resumed := filepath.Join(dir, "resumed.arff")
	direct := filepath.Join(dir, "direct.arff")
	args = append([]string{"inject", "-journal", journal, "-arff", resumed}, scale...)
	if err := run(args); err != nil {
		t.Fatalf("inject from journal: %v", err)
	}
	args = append([]string{"inject", "-arff", direct}, scale...)
	if err := run(args); err != nil {
		t.Fatalf("direct inject: %v", err)
	}
	a, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("ARFF from resumed journal differs from direct run")
	}
}

// TestCmdCampaignFork drives the fork fast path through the CLI: a
// forked journaled campaign is stopped, resumed with -fork still on,
// and the forked ARFF must be byte-identical to the slow path's.
func TestCmdCampaignFork(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	journal := filepath.Join(t.TempDir(), "journal")
	scale := []string{"-dataset", "MG-A1", "-scale", "2", "-stride", "16"}

	args := append([]string{"campaign", "-journal", journal, "-shards", "6", "-stop-after", "2", "-fork"}, scale...)
	if err := run(args); err != nil {
		t.Fatalf("interrupted forked campaign should exit cleanly: %v", err)
	}
	args = append([]string{"campaign", "-journal", journal, "-shards", "6", "-resume", "-fork"}, scale...)
	if err := run(args); err != nil {
		t.Fatalf("forked resume: %v", err)
	}

	dir := t.TempDir()
	forked := filepath.Join(dir, "forked.arff")
	slow := filepath.Join(dir, "slow.arff")
	args = append([]string{"inject", "-fork", "-arff", forked}, scale...)
	if err := run(args); err != nil {
		t.Fatalf("forked inject: %v", err)
	}
	args = append([]string{"inject", "-arff", slow}, scale...)
	if err := run(args); err != nil {
		t.Fatalf("slow inject: %v", err)
	}
	a, err := os.ReadFile(forked)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(slow)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("forked ARFF differs from slow-path ARFF")
	}
}
