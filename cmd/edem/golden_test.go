package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edem/internal/parallel"
	"edem/internal/telemetry"
)

// -update rewrites the golden files with the current output:
//
//	go test ./cmd/edem -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// captureStdout runs fn with os.Stdout redirected into a pipe and
// returns everything fn printed. The table commands print to stdout via
// the process-global fmt.Print*, so golden tests capture at that level.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("run: %v", ferr)
	}
	return out
}

// goldenArgs pins the experiment scale of every golden run: small
// campaigns, fixed seed. Output is deterministic for any -workers value
// (the scheduler guarantees worker-count invariance), so the goldens
// are stable across machines.
func goldenArgs(table string) []string {
	return []string{"tables", "-table", table, "-scale", "2", "-stride", "16", "-seed", "1"}
}

func testGoldenTable(t *testing.T, table string) {
	if testing.Short() {
		t.Skip("full table generation; skipped in -short mode")
	}
	defer parallel.SetBudget(0)
	out := captureStdout(t, func() error { return run(goldenArgs(table)) })
	golden := filepath.Join("testdata", "golden", "table"+table+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if out != string(want) {
		t.Errorf("table %s output drifted from golden file %s\n%s",
			table, golden, diffLines(string(want), out))
	}
}

// diffLines renders a minimal line diff of got against want.
func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&sb, "line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
		}
	}
	return sb.String()
}

func TestGoldenTable2(t *testing.T) { testGoldenTable(t, "2") }
func TestGoldenTable3(t *testing.T) { testGoldenTable(t, "3") }
func TestGoldenTable4(t *testing.T) { testGoldenTable(t, "4") }

// TestMetricsSnapshotCoversWallClock is the acceptance check for the
// telemetry layer: a serial `edem tables -table 3 -metrics-out` run
// must produce a snapshot whose top-level phase durations account for
// the process wall-clock within 5%. -workers 1 matters — phase NS is
// busy time, which exceeds wall time when phases overlap on workers.
func TestMetricsSnapshotCoversWallClock(t *testing.T) {
	if testing.Short() {
		t.Skip("full table generation; skipped in -short mode")
	}
	defer parallel.SetBudget(0)
	path := filepath.Join(t.TempDir(), "metrics.json")
	args := append(goldenArgs("3"), "-workers", "1", "-metrics-out", path)
	captureStdout(t, func() error { return run(args) })

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics snapshot not written: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics snapshot not valid JSON: %v", err)
	}

	if snap.WallNS <= 0 {
		t.Fatalf("wall_ns = %d, want > 0", snap.WallNS)
	}
	root := snap.RootPhaseNS()
	ratio := float64(root) / float64(snap.WallNS)
	if ratio < 0.95 || ratio > 1.05 {
		t.Errorf("root phases cover %.1f%% of wall clock, want within 5%%: root=%d wall=%d",
			100*ratio, root, snap.WallNS)
	}

	// The pipeline counters must reflect a full 18-dataset Table III run.
	if got := snap.Counters["eval.folds_evaluated"]; got != 18*10 {
		t.Errorf("eval.folds_evaluated = %d, want %d", got, 18*10)
	}
	for _, name := range []string{
		"campaign.runs_injected", "campaign.states_sampled",
		"campaign.failures", "preprocess.instances",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	for _, phase := range []string{"campaign", "preprocess", "baseline", "baseline/crossval"} {
		if snap.Phases[phase].Count == 0 {
			t.Errorf("phase %s missing from snapshot", phase)
		}
	}
}
