package main

import (
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestCmdCampaignKillSignal delivers a real SIGINT to the process while
// a journaled campaign is running and requires the graceful-kill
// contract: the command exits cleanly (nil error), the journal stays
// consistent, and resuming it reproduces the direct run's ARFF byte for
// byte. A kill is just an unplanned -stop-after.
func TestCmdCampaignKillSignal(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	// Keep SIGINT non-fatal for the whole test even if the campaign's
	// own NotifyContext has already been torn down when the signal
	// lands (the campaign may finish before our kill).
	guard := make(chan os.Signal, 1)
	signal.Notify(guard, os.Interrupt)
	defer signal.Stop(guard)

	journal := filepath.Join(t.TempDir(), "journal")
	scale := []string{"-dataset", "MG-A1", "-scale", "2", "-stride", "16"}

	done := make(chan error, 1)
	go func() {
		args := append([]string{"campaign", "-journal", journal, "-shards", "8", "-workers", "1"}, scale...)
		done <- run(args)
	}()

	// Kill once the first checkpoint exists, so the interrupt lands
	// mid-campaign with real journal state behind it.
	checkpoints := filepath.Join(journal, "MG-A1", "checkpoints.jsonl")
	deadline := time.After(30 * time.Second)
	for {
		if _, err := os.Stat(checkpoints); err == nil {
			break
		}
		select {
		case err := <-done:
			t.Fatalf("campaign finished before any checkpoint was observed: %v", err)
		case <-deadline:
			t.Fatal("no checkpoint within 30s")
		case <-time.After(10 * time.Millisecond):
		}
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}

	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("killed campaign must exit cleanly, got: %v", err)
		}
	case <-deadline:
		t.Fatal("campaign did not stop after SIGINT")
	}

	// The journal must resume to completion and regenerate the dataset
	// bit-identically to an uninterrupted run.
	args := append([]string{"campaign", "-journal", journal, "-shards", "8", "-resume"}, scale...)
	if err := run(args); err != nil {
		t.Fatalf("resume after kill: %v", err)
	}
	dir := t.TempDir()
	resumed := filepath.Join(dir, "resumed.arff")
	direct := filepath.Join(dir, "direct.arff")
	if err := run(append([]string{"inject", "-journal", journal, "-arff", resumed}, scale...)); err != nil {
		t.Fatalf("inject from journal: %v", err)
	}
	if err := run(append([]string{"inject", "-arff", direct}, scale...)); err != nil {
		t.Fatalf("direct inject: %v", err)
	}
	a, err := os.ReadFile(resumed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(direct)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("ARFF after kill+resume differs from direct run")
	}
}
