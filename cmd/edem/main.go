// Command edem drives the methodology from the command line:
//
//	edem tables -table 2|3|4        regenerate a paper table
//	edem run -dataset FG-A2         run Steps 1-4 on one dataset
//	edem tree -dataset FG-A2        print the induced tree (Figure 2)
//	edem inject -dataset 7Z-B1      run Step 1 and dump PROPANE log/ARFF
//	edem validate -dataset MG-B1    deploy the predicate and re-inject
//	edem list                       list the Table II dataset IDs
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edem/internal/campaign"
	"edem/internal/core"
	"edem/internal/dataset"
	"edem/internal/fabric"
	"edem/internal/lifecycle"
	"edem/internal/mining/attrsel"
	"edem/internal/mining/eval"
	"edem/internal/mining/rules"
	"edem/internal/parallel"
	"edem/internal/predicate"
	"edem/internal/propane"
	"edem/internal/serve"
	"edem/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edem:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "campaign":
		return cmdCampaign(rest)
	case "fabric":
		return cmdFabric(rest)
	case "tables":
		return cmdTables(rest)
	case "run":
		return cmdRun(rest)
	case "tree":
		return cmdTree(rest)
	case "inject":
		return cmdInject(rest)
	case "validate":
		return cmdValidate(rest)
	case "export":
		return cmdExport(rest)
	case "serve":
		return cmdServe(rest)
	case "lifecycle":
		return cmdLifecycle(rest)
	case "bench-serve":
		return cmdBenchServe(rest)
	case "latency":
		return cmdLatency(rest)
	case "rules":
		return cmdRules(rest)
	case "rank":
		return cmdRank(rest)
	case "list":
		return cmdList()
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: edem <command> [flags]

commands:
  campaign  -dataset ID|-all -journal DIR [-resume]       run a resumable fault-injection campaign
            [-shards N] [-timeout D] [-max-retries N] [-stop-after N] [-stats]
            [-fork]  fork injected runs from per-column golden snapshots (~10x)
            [-incremental]  after a spec change, re-run only invalidated shards
  fabric    serve -dataset ID -journal DIR [-addr H:P]    coordinate a distributed campaign
            [-resume] [-incremental] [-lease-ttl D] [-linger D]
            [-auth-token T] [-tls-cert F -tls-key F]  bearer auth + TLS on /fabric/v1
            work  -dataset ID -coordinator URL [-name N]  execute leased shards for a coordinator
            [-auth-token T]
  tables    -table 2|3|4 [-full] [-scale N] [-stride N]   regenerate a paper table
  run       -dataset ID [-full]                           run Steps 1-4 on one dataset
  tree      -dataset ID                                   print the induced tree (Figure 2)
  inject    -dataset ID [-log F] [-arff F]                run Step 1, dump PROPANE log / ARFF
  validate  -dataset ID [-full]                           learn, deploy and re-validate a detector
  export    -dataset ID[,ID...]|-all -out FILE [-full]    learn predicates and write a detector bundle
  serve     -bundle FILE [-addr HOST:PORT] [-queue N]     serve detector evaluations over HTTP/JSON
            [-deadline D] [-drain D] [-policy fail-open|fail-closed]
            [-breaker-threshold N] [-breaker-cooldown D] [-allow-delay]
            [-lifecycle DIR]  enable feedback/drift/shadow/canary (journals under DIR)
            [-shadow FILE] [-canary N] [-canary-min-requests N]
            [-canary-max-disagree F] [-canary-max-alarm-regress F] [-drift-threshold F]
  lifecycle status|shadow|promote|rollback|baseline|feedback   drive a running serve instance
            [-server URL] status: drift + canary view      shadow: -bundle FILE
            promote: [-percent N]   rollback: [-reason S]  feedback: -detector ID -outcome L
  bench-serve -bundle FILE [-out FILE] [-duration D]      measure serving throughput/latency per codec
            [-conns N] [-batch N] [-detector ID] [-shadow] and evaluation mode, write BENCH_serve.json
  latency   -dataset ID                                   trace detection latency of a learnt detector
  rules     -dataset ID                                   learn a PRISM rule-induction predicate instead
  rank      -dataset ID [-method ig|gr|su]                rank the module variables by class information
  list                                                    list Table II dataset IDs

common flags (all commands): -seed N -scale N -stride N -workers N -journal DIR -fork
fault model:  -fault-model transient|burst|stuckat|intermittent
              -burst-width N (burst)   -persist N (intermittent)
              non-transient models version the plan hash; transient stays byte-identical
telemetry:  -metrics-out FILE   write a JSON metrics snapshot on exit
            -trace              print the phase span tree to stderr
            -debug-addr ADDR    serve pprof + expvar (e.g. localhost:6060)

With -journal DIR, every command that builds fault-injection datasets
(tables, run, tree, inject, validate, latency, rules, rank) checkpoints
campaigns to DIR/<dataset-id> and resumes whatever is already there, so
a completed "edem campaign" journal makes Tables II-IV a pure replay.
"edem campaign" itself refuses an existing journal without -resume.
`)
}

func commonOpts(fs *flag.FlagSet) (*core.Options, *telemetryCfg) {
	opts := core.DefaultOptions()
	fs.Uint64Var(&opts.Seed, "seed", opts.Seed, "experiment seed")
	fs.IntVar(&opts.TestCases, "scale", opts.TestCases, "test cases for 7Z/MG campaigns")
	fs.IntVar(&opts.BitStride, "stride", opts.BitStride, "bit sampling stride (1 = every bit, the paper's setting)")
	fs.IntVar(&opts.Workers, "workers", 0, "global worker budget shared across all nesting levels (0 = all cores)")
	fs.StringVar(&opts.Journal, "journal", "", "campaign checkpoint root (one journal per dataset under DIR)")
	fs.BoolVar(&opts.Fork, "fork", false, "enable the golden-state forking fast path for Forkable targets (bit-identical results, ~10x faster campaigns)")
	// The fault-model axis. The default (transient, width 1, persist 1)
	// reproduces today's campaigns byte-for-byte: same plan hash, same
	// journal, same ARFF.
	fs.Var(&opts.Fault.Model, "fault-model", "fault model: transient (single bit-flip), burst (adjacent multi-bit), stuckat (re-asserted until run end), intermittent (re-asserted for -persist activations)")
	fs.IntVar(&opts.Fault.Width, "burst-width", 0, "adjacent bits flipped per injection with -fault-model burst (default 1)")
	fs.IntVar(&opts.Fault.Persist, "persist", 0, "activations an intermittent fault stays asserted with -fault-model intermittent (default 1)")
	// Dataset consumers resume implicitly: a half-finished journal is
	// completed, a finished one is replayed without target runs. Only
	// `edem campaign` demands the explicit -resume acknowledgement.
	opts.Resume = true
	tel := &telemetryCfg{}
	fs.StringVar(&tel.metricsOut, "metrics-out", "", "write a JSON telemetry snapshot to this file on exit")
	fs.BoolVar(&tel.trace, "trace", false, "print the phase span tree to stderr on exit")
	fs.StringVar(&tel.debugAddr, "debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	return &opts, tel
}

// parseArgs parses the subcommand flags, installs the -workers value
// as the process-wide scheduler budget (so nested parallel sections —
// dataset rows → CV folds → campaign runs — share one pool instead of
// oversubscribing each other; results never depend on the budget), and
// starts telemetry collection when any observability flag asks for it.
// Callers must `defer tel.finish()` after a successful parse.
func parseArgs(fs *flag.FlagSet, args []string, opts *core.Options, tel *telemetryCfg) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetBudget(opts.Workers)
	return tel.start()
}

// telemetryCfg carries the cross-cutting observability flags shared by
// every subcommand and owns the registry lifecycle: created in start(),
// reported and uninstalled in finish().
type telemetryCfg struct {
	metricsOut string
	trace      bool
	debugAddr  string
	reg        *telemetry.Registry
	debugSrv   *http.Server
}

// expvarPublished guards the process-global expvar name: expvar.Publish
// panics on duplicates, and tests drive run() repeatedly in one process.
var expvarPublished bool

func (t *telemetryCfg) start() error {
	if t.metricsOut == "" && !t.trace && t.debugAddr == "" {
		telemetry.SetDefault(nil)
		return nil
	}
	t.reg = telemetry.New()
	telemetry.SetDefault(t.reg)
	if t.debugAddr != "" {
		if !expvarPublished {
			expvarPublished = true
			telemetry.PublishExpvar("edem")
		}
		ln, err := net.Listen("tcp", t.debugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		// Dedicated mux: the DefaultServeMux is process-global mutable
		// state that any imported package can extend, which is exactly
		// what a diagnostic port must not expose. The generous write
		// timeout accommodates /debug/pprof/profile?seconds=N streams.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/debug/vars", expvar.Handler())
		t.debugSrv = &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       time.Minute,
			WriteTimeout:      5 * time.Minute,
			IdleTimeout:       time.Minute,
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ (metrics at /debug/vars)\n", ln.Addr())
		go func() { _ = t.debugSrv.Serve(ln) }()
	}
	return nil
}

// finish reports the collected telemetry (span tree on stderr, JSON
// snapshot to -metrics-out) and uninstalls the registry.
func (t *telemetryCfg) finish() {
	if t.debugSrv != nil {
		// The deferred finish runs when the subcommand returns — which
		// includes returning because the main signal context was
		// cancelled — so the debug listener never outlives the command.
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		_ = t.debugSrv.Shutdown(ctx)
		cancel()
		t.debugSrv = nil
	}
	if t.reg == nil {
		return
	}
	snap := t.reg.Snapshot()
	if t.trace {
		fmt.Fprint(os.Stderr, snap.FormatTree())
	}
	if t.metricsOut != "" {
		err := writeFile(t.metricsOut, func(f *os.File) error { return snap.WriteJSON(f) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "edem: metrics snapshot:", err)
		} else {
			fmt.Fprintln(os.Stderr, "wrote metrics:", t.metricsOut)
		}
	}
	telemetry.SetDefault(nil)
	t.reg = nil
}

// cmdCampaign drives the resumable campaign engine directly: it runs
// (or resumes) the Step 1 fault-injection sweep for one dataset or all
// 18, checkpointing each shard to the journal. A run killed at any
// point — or stopped deliberately with -stop-after — picks up from its
// last checkpoint under -resume and yields a bit-identical dataset.
func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	id := fs.String("dataset", "", "Table II dataset ID (empty with -all sweeps all 18)")
	all := fs.Bool("all", false, "run every Table II dataset")
	resume := fs.Bool("resume", false, "continue an existing journal instead of refusing it")
	incremental := fs.Bool("incremental", false, "with -resume: after a spec/target change, keep shards whose test-case sections are unchanged and re-run only the invalidated ones")
	stopAfter := fs.Int("stop-after", 0, "stop gracefully after N new checkpoints (0 = run to completion); the journal stays resumable")
	showStats := fs.Bool("stats", false, "print the per-variable failure summary")
	opts, tel := commonOpts(fs)
	fs.IntVar(&opts.Shards, "shards", 0, "checkpoint shard count (0 = ~256 runs per shard)")
	fs.DurationVar(&opts.RunTimeout, "timeout", 0, "per-run watchdog; hung runs are retried then skipped (0 = none)")
	fs.IntVar(&opts.MaxRetries, "max-retries", 2, "extra attempts for a hung or crashed-engine run before skipping the cell")
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	opts.Resume = *resume
	opts.Incremental = *incremental
	if *incremental && !*resume {
		return fmt.Errorf("-incremental requires -resume (it relaxes the resume plan check)")
	}
	ids := []string{*id}
	switch {
	case *all && *id != "":
		return fmt.Errorf("use either -dataset or -all, not both")
	case *all:
		ids = core.AllDatasetIDs()
	case *id == "":
		return fmt.Errorf("campaign needs -dataset ID or -all")
	}

	// SIGTERM/SIGINT cancel the campaign context: the engine stops
	// claiming shards, finishes none mid-write (a cancelled cell drops
	// its whole shard before the checkpoint append), and the journal
	// stays resumable — a kill is just an unplanned -stop-after.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	for _, dsID := range ids {
		if err := runOneCampaign(ctx, dsID, opts, *stopAfter, *showStats); err != nil {
			return err
		}
		if ctx.Err() != nil {
			return nil
		}
	}
	return nil
}

// runOneCampaign executes one dataset's campaign and reports resume
// accounting, skipped cells and (optionally) per-variable stats. A
// -stop-after interruption or a kill signal is a success: the point of
// the engine is that stopping is safe.
func runOneCampaign(parent context.Context, id string, opts *core.Options, stopAfter int, showStats bool) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	stopped := false
	newCheckpoints := 0
	o := *opts
	// The progress hook is also the -stop-after trigger: it only fires
	// for newly executed shards, so restored checkpoints never count
	// against the stop budget.
	progress := func(done, total int) {
		fmt.Fprintf(os.Stderr, "  %s: checkpoint %d/%d\n", id, done, total)
		newCheckpoints++
		if stopAfter > 0 && newCheckpoints >= stopAfter && !stopped {
			stopped = true
			cancel()
		}
	}
	target, spec, err := core.SpecFor(id, o)
	if err != nil {
		return err
	}
	cfg := o.CampaignConfig(id)
	cfg.OnCheckpoint = progress
	res, err := campaign.Run(ctx, target, spec, cfg)
	if err != nil {
		if stopped && errors.Is(err, context.Canceled) {
			fmt.Printf("campaign %s: stopped after %d new checkpoints; resume with:\n  edem campaign -dataset %s -journal %s -resume\n",
				id, newCheckpoints, id, o.Journal)
			return nil
		}
		if parent.Err() != nil && errors.Is(err, context.Canceled) {
			fmt.Printf("campaign %s: interrupted by signal after %d new checkpoints; journal is consistent, resume with:\n  edem campaign -dataset %s -journal %s -resume\n",
				id, newCheckpoints, id, o.Journal)
			return nil
		}
		return err
	}
	c := res.Campaign
	fmt.Printf("campaign %s: plan %.12s, %d/%d shards run (%d restored), %d retries\n",
		id, res.PlanHash, res.ShardsRun, res.Shards, res.ShardsRestored, res.Retries)
	if f := spec.Fault.Normalized(); showStats || !f.IsTransient() {
		fmt.Printf("  fault model: %s (width %d, persist %d)\n", f.Model, f.Width, f.Persist)
	}
	if res.TornTails > 0 {
		fmt.Printf("  resume recovered %d torn checkpoint line(s); their shards re-ran\n", res.TornTails)
	}
	if res.ShardsInvalidated > 0 || res.ShardsReused > 0 {
		fmt.Printf("  incremental: %d shard(s) invalidated, %d reused\n",
			res.ShardsInvalidated, res.ShardsReused)
	}
	fmt.Printf("  %d injected runs, %d usable, %d failures\n",
		len(c.Records), c.Usable(), c.Failures())
	if f := res.Fork; f.Forked > 0 || f.Fallbacks > 0 {
		fmt.Printf("  fork fast path: %d snapshots, %d forked (%d converged, %d memoized), %d fallbacks\n",
			f.Snapshots, f.Forked, f.Converged, f.MemoHits, f.Fallbacks)
	}
	if len(res.Skipped) > 0 {
		fmt.Printf("  %d cells skipped:\n", len(res.Skipped))
		for _, s := range res.Skipped {
			fmt.Printf("    job %d (tc %d, %s, bit %d, t %d): %s (%d attempts)\n",
				s.Job, s.TC, s.Var, s.Bit, s.Time, s.Reason, s.Attempts)
		}
	}
	if showStats {
		fmt.Print(propane.FormatStats(propane.Summarize(c)))
	}
	return nil
}

// cmdFabric dispatches the distributed-campaign verbs: `fabric serve`
// runs the coordinator that owns the plan and journal, `fabric work`
// runs a worker that leases and executes shards. A fabric journal is an
// ordinary campaign journal: `edem campaign -resume` replays it and
// sealing makes it byte-identical to a local run's.
func cmdFabric(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("fabric needs a mode: serve (coordinator) or work (worker)")
	}
	mode, rest := args[0], args[1:]
	switch mode {
	case "serve":
		return cmdFabricServe(rest)
	case "work":
		return cmdFabricWork(rest)
	default:
		return fmt.Errorf("unknown fabric mode %q (want serve or work)", mode)
	}
}

func cmdFabricServe(args []string) error {
	fs := flag.NewFlagSet("fabric serve", flag.ContinueOnError)
	id := fs.String("dataset", "", "Table II dataset ID")
	addr := fs.String("addr", "127.0.0.1:9090", "coordinator listen address")
	resume := fs.Bool("resume", false, "continue an existing journal instead of refusing it")
	incremental := fs.Bool("incremental", false, "with -resume: re-run only shards invalidated by a spec/target change")
	leaseTTL := fs.Duration("lease-ttl", 30*time.Second, "shard lease lifetime without a heartbeat")
	linger := fs.Duration("linger", time.Second, "how long to keep serving after completion so idle workers see it")
	authToken := fs.String("auth-token", "", "require this bearer token on every /fabric/v1 call (empty = no auth)")
	tlsCert := fs.String("tls-cert", "", "serve TLS with this PEM certificate (requires -tls-key)")
	tlsKey := fs.String("tls-key", "", "PEM private key for -tls-cert")
	opts, tel := commonOpts(fs)
	fs.IntVar(&opts.Shards, "shards", 0, "checkpoint shard count (0 = ~256 runs per shard)")
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	opts.Resume = *resume
	opts.Incremental = *incremental
	if *incremental && !*resume {
		return fmt.Errorf("-incremental requires -resume")
	}
	if *id == "" {
		return fmt.Errorf("fabric serve needs -dataset ID")
	}
	if opts.Journal == "" {
		return fmt.Errorf("fabric serve needs -journal DIR (the coordinator owns the journal)")
	}
	target, spec, err := core.SpecFor(*id, *opts)
	if err != nil {
		return err
	}
	if (*tlsCert == "") != (*tlsKey == "") {
		return fmt.Errorf("fabric serve needs both -tls-cert and -tls-key (or neither)")
	}
	co, err := fabric.NewCoordinator(target, spec, opts.CampaignConfig(*id), fabric.CoordinatorConfig{
		LeaseTTL:  *leaseTTL,
		Linger:    *linger,
		Logf:      stderrLogf,
		AuthToken: *authToken,
		TLSCert:   *tlsCert,
		TLSKey:    *tlsKey,
	})
	if err != nil {
		return err
	}
	st := co.Status()
	fmt.Printf("fabric serve %s: plan %.12s, %d jobs in %d shards (%d already done)\n",
		*id, st.Plan, st.Jobs, st.Shards, st.Done)

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	err = co.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Printf("fabric: coordinator listening on %s\n", a)
	})
	if err != nil {
		return err
	}
	final := co.Status()
	if final.Complete {
		fmt.Printf("fabric serve %s: complete, journal sealed (%d/%d shards); replay with:\n  edem campaign -dataset %s -journal %s -resume\n",
			*id, final.Done, final.Shards, *id, opts.Journal)
	} else {
		fmt.Printf("fabric serve %s: stopped at %d/%d shards; journal is resumable\n",
			*id, final.Done, final.Shards)
	}
	return nil
}

func cmdFabricWork(args []string) error {
	fs := flag.NewFlagSet("fabric work", flag.ContinueOnError)
	id := fs.String("dataset", "", "Table II dataset ID (must match the coordinator's)")
	coordinator := fs.String("coordinator", "", "coordinator base URL, e.g. http://127.0.0.1:9090")
	name := fs.String("name", "", "worker name in leases and logs (default worker-<pid>)")
	poll := fs.Duration("poll", 200*time.Millisecond, "idle wait between lease attempts")
	authToken := fs.String("auth-token", "", "bearer token for a coordinator started with -auth-token")
	opts, tel := commonOpts(fs)
	fs.DurationVar(&opts.RunTimeout, "timeout", 0, "per-run watchdog; hung runs are retried then skipped (0 = none)")
	fs.IntVar(&opts.MaxRetries, "max-retries", 2, "extra attempts for a hung or crashed-engine run before skipping the cell")
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	if *id == "" {
		return fmt.Errorf("fabric work needs -dataset ID")
	}
	if *coordinator == "" {
		return fmt.Errorf("fabric work needs -coordinator URL")
	}
	if *name == "" {
		*name = fmt.Sprintf("worker-%d", os.Getpid())
	}
	// Workers never touch a journal: checkpoint lines stream to the
	// coordinator, which owns the only journal directory.
	opts.Journal = ""
	target, spec, err := core.SpecFor(*id, *opts)
	if err != nil {
		return err
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	w, err := fabric.NewWorker(ctx, target, spec, opts.CampaignConfig(*id), fabric.WorkerConfig{
		Coordinator: *coordinator,
		Name:        *name,
		Poll:        *poll,
		Logf:        stderrLogf,
		AuthToken:   *authToken,
	})
	if err != nil {
		return err
	}
	fmt.Printf("fabric work %s: %s executing for %s\n", *id, *name, *coordinator)
	if err := w.Run(ctx); err != nil {
		if ctx.Err() != nil && errors.Is(err, context.Canceled) {
			fmt.Printf("fabric work %s: interrupted; leased shards will expire and re-lease\n", *id)
			return nil
		}
		return err
	}
	fmt.Printf("fabric work %s: campaign complete\n", *id)
	return nil
}

func stderrLogf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func cmdTables(args []string) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	table := fs.Int("table", 3, "table number: 2, 3 or 4")
	full := fs.Bool("full", false, "use the paper-scale refinement grid (table 4)")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	switch *table {
	case 1:
		fmt.Println("Table I: confusion matrix structure")
		cm := eval.NewConfusionMatrix([]string{"Pos.", "Neg."})
		fmt.Print(cm.String())
		fmt.Println("TP/FN/FP/TN cells; see internal/mining/eval.")
		return nil
	case 2:
		rows, err := core.Table2(ctx, *opts)
		if err != nil {
			return err
		}
		fmt.Print(core.FormatTable2Rows(rows))
		return nil
	case 3:
		rows, err := core.Table3Rows(ctx, core.AllDatasetIDs(), *opts, tableProgress)
		if err != nil {
			return err
		}
		fmt.Print(core.FormatTable("Table III: decision tree induction results (no sampling)", rows))
		return nil
	case 4:
		grid := core.RefineGrid(*full)
		rows, err := core.Table4Rows(ctx, core.AllDatasetIDs(), grid, *opts, tableProgress)
		if err != nil {
			return err
		}
		fmt.Print(core.FormatTable("Table IV: decision tree induction results (refined)", rows))
		return nil
	default:
		return fmt.Errorf("unknown table %d", *table)
	}
}

// tableProgress is the stderr progress line for table generation: one
// line per finished dataset. Per-phase cost attribution now comes from
// the telemetry layer (-trace / -metrics-out).
func tableProgress(id string, _ core.Row) {
	fmt.Fprintf(os.Stderr, "  %s done\n", id)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	id := fs.String("dataset", "FG-A2", "Table II dataset ID")
	full := fs.Bool("full", false, "use the paper-scale refinement grid")
	save := fs.String("save", "", "write the learnt predicate (JSON) to this file")
	report := fs.String("report", "", "write a markdown generation report to this file")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	rep, err := core.RunMethodology(context.Background(), *id, core.RefineGrid(*full), *opts)
	if err != nil {
		return err
	}
	printReport(rep)
	if *save != "" {
		data, err := rep.Predicate.MarshalText()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote predicate:", *save)
	}
	if *report != "" {
		if err := writeFile(*report, func(f *os.File) error { return core.WriteReport(f, rep) }); err != nil {
			return err
		}
		fmt.Println("wrote report:", *report)
	}
	return nil
}

func printReport(rep *core.Report) {
	fmt.Printf("dataset %s: %d instances, %d failure-inducing\n", rep.ID, rep.Instances, rep.Failures)
	b := rep.Baseline
	fmt.Printf("baseline:  FPR=%.2e TPR=%.4f AUC=%.4f Comp=%.1f Var=%.2e\n",
		b.MeanFPR, b.MeanTPR, b.MeanAUC, b.MeanComp, b.VarAUC)
	r := rep.Refined.BestCV
	fmt.Printf("refined:   FPR=%.2e TPR=%.4f AUC=%.4f Comp=%.1f Var=%.2e  (S=%s N=%s)\n",
		r.MeanFPR, r.MeanTPR, r.MeanAUC, r.MeanComp, r.VarAUC,
		rep.Refined.Best.Label(), rep.Refined.Best.KLabel())
	fmt.Printf("\ndetector predicate (%d clauses, %d atoms):\n%s\n",
		len(rep.Predicate.Clauses), rep.Predicate.Complexity(), rep.Predicate)
}

func cmdTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ContinueOnError)
	id := fs.String("dataset", "FG-A2", "Table II dataset ID")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	d, _, err := core.BuildDataset(ctx, *id, *opts)
	if err != nil {
		return err
	}
	t, err := core.DefaultLearner().FitTree(d)
	if err != nil {
		return err
	}
	fmt.Printf("decision tree for %s (%d nodes, %d leaves, depth %d):\n",
		*id, t.Size(), t.Leaves(), t.Depth())
	fmt.Println(t.String())
	fmt.Println("variable importance (split-weight attribution):")
	fmt.Print(t.FormatImportance())
	return nil
}

func cmdInject(args []string) error {
	fs := flag.NewFlagSet("inject", flag.ContinueOnError)
	id := fs.String("dataset", "7Z-B1", "Table II dataset ID")
	logPath := fs.String("log", "", "write the PROPANE log to this file")
	arffPath := fs.String("arff", "", "write the ARFF dataset to this file")
	csvPath := fs.String("csv", "", "write the dataset as CSV to this file")
	showStats := fs.Bool("stats", false, "print the per-variable failure summary")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	// CampaignResult (not Campaign) keeps the engine accounting, so the
	// plan hash and shard counts print even when the journal restored
	// everything and nothing ran.
	res, err := core.CampaignResult(ctx, *id, *opts)
	if err != nil {
		return err
	}
	camp := res.Campaign
	fmt.Printf("campaign %s: %d injected runs, %d usable, %d failures\n",
		*id, len(camp.Records), camp.Usable(), camp.Failures())
	if *showStats {
		fmt.Printf("  plan %.12s: %d shards, %d run, %d restored\n",
			res.PlanHash, res.Shards, res.ShardsRun, res.ShardsRestored)
		fmt.Print(propane.FormatStats(propane.Summarize(camp)))
	}
	if *logPath != "" {
		if err := writeFile(*logPath, func(f *os.File) error { return propane.WriteLog(f, camp) }); err != nil {
			return err
		}
		fmt.Println("wrote PROPANE log:", *logPath)
	}
	if *arffPath != "" {
		d, err := core.Preprocess(ctx, camp)
		if err != nil {
			return err
		}
		if err := writeFile(*arffPath, func(f *os.File) error { return dataset.WriteARFF(f, d) }); err != nil {
			return err
		}
		fmt.Println("wrote ARFF dataset:", *arffPath)
	}
	if *csvPath != "" {
		d, err := core.Preprocess(ctx, camp)
		if err != nil {
			return err
		}
		if err := writeFile(*csvPath, func(f *os.File) error { return dataset.WriteCSV(f, d) }); err != nil {
			return err
		}
		fmt.Println("wrote CSV dataset:", *csvPath)
	}
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	id := fs.String("dataset", "MG-B1", "Table II dataset ID")
	full := fs.Bool("full", false, "use the paper-scale refinement grid")
	predPath := fs.String("pred", "", "validate this saved predicate instead of learning one")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	var pred *predicate.Predicate
	var cvTPR, cvFPR float64
	if *predPath != "" {
		data, err := os.ReadFile(*predPath)
		if err != nil {
			return err
		}
		pred, err = predicate.Parse(data)
		if err != nil {
			return err
		}
		fmt.Printf("loaded predicate %s (%d clauses)\n", pred.Name, len(pred.Clauses))
	} else {
		rep, err := core.RunMethodology(ctx, *id, core.RefineGrid(*full), *opts)
		if err != nil {
			return err
		}
		printReport(rep)
		pred = rep.Predicate
		cvTPR, cvFPR = rep.Refined.BestCV.MeanTPR, rep.Refined.BestCV.MeanFPR
	}
	val, err := core.ValidateDetector(ctx, *id, pred, *opts)
	if err != nil {
		return err
	}
	fmt.Printf("re-validation across %d repeated injected runs:\n", val.Runs)
	if *predPath != "" {
		fmt.Printf("  deployed TPR=%.4f FPR=%.2e\n", val.Counts.TPR(), val.Counts.FPR())
	} else {
		fmt.Printf("  deployed TPR=%.4f FPR=%.2e  (CV estimates: TPR=%.4f FPR=%.2e)\n",
			val.Counts.TPR(), val.Counts.FPR(), cvTPR, cvFPR)
	}
	return nil
}

// cmdExport runs the methodology for one or more datasets and writes
// the learnt predicates — each tagged with its guarded module and
// sampling location — as a detector bundle, the deployable artefact
// `edem serve` loads.
func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ContinueOnError)
	ids := fs.String("dataset", "", "comma-separated Table II dataset IDs")
	all := fs.Bool("all", false, "export every Table II dataset")
	out := fs.String("out", "bundle.json", "bundle output file")
	full := fs.Bool("full", false, "use the paper-scale refinement grid")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	var list []string
	switch {
	case *all && *ids != "":
		return fmt.Errorf("use either -dataset or -all, not both")
	case *all:
		list = core.AllDatasetIDs()
	case *ids == "":
		return fmt.Errorf("export needs -dataset ID[,ID...] or -all")
	default:
		for _, id := range strings.Split(*ids, ",") {
			if id = strings.TrimSpace(id); id != "" {
				list = append(list, id)
			}
		}
	}
	ctx := context.Background()
	bundle := &serve.Bundle{Version: serve.BundleVersion}
	for _, id := range list {
		info, err := core.Info(id, *opts)
		if err != nil {
			return err
		}
		rep, err := core.RunMethodology(ctx, id, core.RefineGrid(*full), *opts)
		if err != nil {
			return err
		}
		bundle.Detectors = append(bundle.Detectors, serve.BundleEntry{
			ID:        id,
			Module:    info.Module,
			Location:  info.SampleAt.String(),
			Predicate: rep.Predicate,
		})
		fmt.Fprintf(os.Stderr, "  %s: %d clauses, %d atoms (guards %s/%s)\n",
			id, len(rep.Predicate.Clauses), rep.Predicate.Complexity(), info.Module, info.SampleAt)
	}
	if err := bundle.WriteFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote bundle: %s (%d detectors)\n", *out, len(bundle.Detectors))
	return nil
}

// cmdServe runs the online detector-serving runtime: it loads a
// bundle, serves POST /v1/evaluate with admission control and
// per-detector circuit breaking, reloads the bundle on SIGHUP or
// POST /admin/reload, and drains cleanly on SIGTERM/SIGINT.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	bundlePath := fs.String("bundle", "", "detector bundle file (from edem export)")
	addr := fs.String("addr", "localhost:8080", "listen address")
	queue := fs.Int("queue", 64, "admission queue depth; further requests shed with 429")
	deadline := fs.Duration("deadline", 2*time.Second, "default per-request evaluation deadline")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown budget for in-flight requests")
	policy := fs.String("policy", "fail-closed", "degradation policy when a detector cannot evaluate: fail-open or fail-closed")
	breakerThreshold := fs.Int("breaker-threshold", 5, "consecutive evaluation failures that trip a detector's circuit")
	breakerCooldown := fs.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before half-open probing")
	allowDelay := fs.Bool("allow-delay", false, "honour delay_ms in requests (synthetic latency for load testing)")
	lifecycleDir := fs.String("lifecycle", "", "lifecycle journal directory; enables feedback, drift tracking, shadow evaluation and canary promotion")
	shadowPath := fs.String("shadow", "", "candidate bundle to shadow-evaluate from startup (requires -lifecycle)")
	canaryPct := fs.Int("canary", 0, "route N%% of candidate-answerable traffic to the -shadow candidate from startup (1-99)")
	canaryMin := fs.Int64("canary-min-requests", 50, "dual-evaluated requests before the canary rollback verdict applies")
	canaryMaxDisagree := fs.Float64("canary-max-disagree", 0.20, "per-sample disagreement rate that rolls a canary back automatically")
	canaryMaxRegress := fs.Float64("canary-max-alarm-regress", 0.10, "candidate alarm-rate increase over live that rolls a canary back")
	driftThreshold := fs.Float64("drift-threshold", 0.25, "feature-distribution distance against the baseline that flags drift")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	if *bundlePath == "" {
		return fmt.Errorf("serve needs -bundle FILE (produce one with edem export)")
	}
	pol, err := serve.ParsePolicy(*policy)
	if err != nil {
		return err
	}
	b, err := serve.LoadBundle(*bundlePath)
	if err != nil {
		return err
	}
	// The service always collects metrics (the /metrics endpoint is part
	// of its API); reuse the -metrics-out/-trace registry when present.
	reg := tel.reg
	if reg == nil {
		reg = telemetry.New()
	}
	var mon *lifecycle.Monitor
	if *lifecycleDir != "" {
		mon, err = lifecycle.NewMonitor(lifecycle.MonitorConfig{
			Dir:             *lifecycleDir,
			MinRequests:     *canaryMin,
			MaxDisagreeRate: *canaryMaxDisagree,
			MaxAlarmRegress: *canaryMaxRegress,
			Drift:           lifecycle.DriftConfig{MaxFeatureDistance: *driftThreshold},
			Registry:        reg,
		})
		if err != nil {
			return err
		}
		defer mon.Close()
	} else if *shadowPath != "" || *canaryPct != 0 {
		return fmt.Errorf("serve: -shadow and -canary need -lifecycle DIR")
	}
	s, err := serve.NewServer(b, *bundlePath, serve.Config{
		QueueDepth:      *queue,
		Workers:         opts.Workers,
		DefaultDeadline: *deadline,
		DrainTimeout:    *drain,
		Policy:          pol,
		Breaker:         serve.BreakerConfig{Threshold: *breakerThreshold, Cooldown: *breakerCooldown},
		AllowDelay:      *allowDelay,
		Registry:        reg,
		Monitor:         mon,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	if *shadowPath != "" {
		if _, err := s.LoadShadow(*shadowPath); err != nil {
			return err
		}
		if *canaryPct > 0 {
			if _, err := s.Promote(*canaryPct); err != nil {
				return err
			}
		}
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if _, err := s.Reload(""); err != nil {
				fmt.Fprintln(os.Stderr, "edem: reload:", err)
			}
		}
	}()
	return s.ListenAndServe(ctx, *addr, func(a net.Addr) {
		fmt.Fprintf(os.Stderr, "serving %d detectors on http://%s/ (policy %s, queue %d, deadline %v)\n",
			len(s.Detectors()), a, pol, *queue, *deadline)
	})
}

// cmdRules learns a detector via rule induction — the other symbolic
// family the paper's Step 2 allows — and prints the resulting
// predicate alongside its cross-validated rates.
func cmdRules(args []string) error {
	fs := flag.NewFlagSet("rules", flag.ContinueOnError)
	id := fs.String("dataset", "MG-B1", "Table II dataset ID")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	d, _, err := core.BuildDataset(ctx, *id, *opts)
	if err != nil {
		return err
	}
	learner := rules.PRISM{}
	cv, err := eval.CrossValidate(ctx, learner, d, eval.CVConfig{Folds: opts.Folds, Seed: opts.Seed})
	if err != nil {
		return err
	}
	fmt.Printf("PRISM rule induction on %s: TPR=%.4f FPR=%.2e AUC=%.4f Comp=%.1f\n",
		*id, cv.MeanTPR, cv.MeanFPR, cv.MeanAUC, cv.MeanComp)
	model, err := learner.Fit(d)
	if err != nil {
		return err
	}
	rs, ok := model.(*rules.RuleSet)
	if !ok {
		return fmt.Errorf("unexpected model type %T", model)
	}
	vars := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		vars[i] = a.Name
	}
	pred, err := predicate.FromRules(rs, eval.PositiveClass, vars, *id)
	if err != nil {
		return err
	}
	fmt.Printf("\nrule-induction predicate:\n%s", pred)
	return nil
}

func cmdLatency(args []string) error {
	fs := flag.NewFlagSet("latency", flag.ContinueOnError)
	id := fs.String("dataset", "MG-B1", "Table II dataset ID")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	d, _, err := core.BuildDataset(ctx, *id, *opts)
	if err != nil {
		return err
	}
	t, err := core.DefaultLearner().FitTree(d)
	if err != nil {
		return err
	}
	pred, err := predicate.FromTree(t, eval.PositiveClass, *id)
	if err != nil {
		return err
	}
	res, err := core.MeasureLatency(ctx, *id, pred, *opts)
	if err != nil {
		return err
	}
	fmt.Printf("latency for %s: %d failures traced\n", *id, res.Failures)
	fmt.Printf("  detected %d (%.1f%%), missed %d\n",
		res.Detected, 100*float64(res.Detected)/float64(res.Failures), res.Missed)
	fmt.Printf("  mean detection latency %.2f activations (max %d, %.1f%% immediate)\n",
		res.MeanLatency, res.MaxLatency, 100*res.ImmediateRate)
	return nil
}

func cmdRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ContinueOnError)
	id := fs.String("dataset", "FG-B1", "Table II dataset ID")
	method := fs.String("method", "ig", "ranking criterion: ig (info gain), gr (gain ratio), su (symmetrical uncertainty)")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	var m attrsel.Method
	switch *method {
	case "ig":
		m = attrsel.InfoGain
	case "gr":
		m = attrsel.GainRatio
	case "su":
		m = attrsel.Symmetrical
	default:
		return fmt.Errorf("unknown ranking method %q", *method)
	}
	d, _, err := core.BuildDataset(context.Background(), *id, *opts)
	if err != nil {
		return err
	}
	scores, err := attrsel.Rank(d, m)
	if err != nil {
		return err
	}
	fmt.Printf("variable ranking for %s (%s):\n", *id, m)
	for _, sc := range scores {
		fmt.Printf("  %-18s %.4f\n", sc.Name, sc.Value)
	}
	return nil
}

func cmdList() error {
	opts := core.DefaultOptions()
	for _, id := range core.AllDatasetIDs() {
		info, err := core.Info(id, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-11s %-10s inject=%-5s sample=%s\n",
			info.ID, info.Target, info.Module, info.InjectAt, info.SampleAt)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
