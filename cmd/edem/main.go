// Command edem drives the methodology from the command line:
//
//	edem tables -table 2|3|4        regenerate a paper table
//	edem run -dataset FG-A2         run Steps 1-4 on one dataset
//	edem tree -dataset FG-A2        print the induced tree (Figure 2)
//	edem inject -dataset 7Z-B1      run Step 1 and dump PROPANE log/ARFF
//	edem validate -dataset MG-B1    deploy the predicate and re-inject
//	edem list                       list the Table II dataset IDs
package main

import (
	"context"
	"errors"
	_ "expvar" // /debug/vars on the -debug-addr server
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // /debug/pprof on the -debug-addr server
	"os"

	"edem/internal/campaign"
	"edem/internal/core"
	"edem/internal/dataset"
	"edem/internal/mining/attrsel"
	"edem/internal/mining/eval"
	"edem/internal/mining/rules"
	"edem/internal/parallel"
	"edem/internal/predicate"
	"edem/internal/propane"
	"edem/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edem:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "campaign":
		return cmdCampaign(rest)
	case "tables":
		return cmdTables(rest)
	case "run":
		return cmdRun(rest)
	case "tree":
		return cmdTree(rest)
	case "inject":
		return cmdInject(rest)
	case "validate":
		return cmdValidate(rest)
	case "latency":
		return cmdLatency(rest)
	case "rules":
		return cmdRules(rest)
	case "rank":
		return cmdRank(rest)
	case "list":
		return cmdList()
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: edem <command> [flags]

commands:
  campaign  -dataset ID|-all -journal DIR [-resume]       run a resumable fault-injection campaign
            [-shards N] [-timeout D] [-max-retries N] [-stop-after N] [-stats]
  tables    -table 2|3|4 [-full] [-scale N] [-stride N]   regenerate a paper table
  run       -dataset ID [-full]                           run Steps 1-4 on one dataset
  tree      -dataset ID                                   print the induced tree (Figure 2)
  inject    -dataset ID [-log F] [-arff F]                run Step 1, dump PROPANE log / ARFF
  validate  -dataset ID [-full]                           learn, deploy and re-validate a detector
  latency   -dataset ID                                   trace detection latency of a learnt detector
  rules     -dataset ID                                   learn a PRISM rule-induction predicate instead
  rank      -dataset ID [-method ig|gr|su]                rank the module variables by class information
  list                                                    list Table II dataset IDs

common flags (all commands): -seed N -scale N -stride N -workers N -journal DIR
telemetry:  -metrics-out FILE   write a JSON metrics snapshot on exit
            -trace              print the phase span tree to stderr
            -debug-addr ADDR    serve pprof + expvar (e.g. localhost:6060)

With -journal DIR, every command that builds fault-injection datasets
(tables, run, tree, inject, validate, latency, rules, rank) checkpoints
campaigns to DIR/<dataset-id> and resumes whatever is already there, so
a completed "edem campaign" journal makes Tables II-IV a pure replay.
"edem campaign" itself refuses an existing journal without -resume.
`)
}

func commonOpts(fs *flag.FlagSet) (*core.Options, *telemetryCfg) {
	opts := core.DefaultOptions()
	fs.Uint64Var(&opts.Seed, "seed", opts.Seed, "experiment seed")
	fs.IntVar(&opts.TestCases, "scale", opts.TestCases, "test cases for 7Z/MG campaigns")
	fs.IntVar(&opts.BitStride, "stride", opts.BitStride, "bit sampling stride (1 = every bit, the paper's setting)")
	fs.IntVar(&opts.Workers, "workers", 0, "global worker budget shared across all nesting levels (0 = all cores)")
	fs.StringVar(&opts.Journal, "journal", "", "campaign checkpoint root (one journal per dataset under DIR)")
	// Dataset consumers resume implicitly: a half-finished journal is
	// completed, a finished one is replayed without target runs. Only
	// `edem campaign` demands the explicit -resume acknowledgement.
	opts.Resume = true
	tel := &telemetryCfg{}
	fs.StringVar(&tel.metricsOut, "metrics-out", "", "write a JSON telemetry snapshot to this file on exit")
	fs.BoolVar(&tel.trace, "trace", false, "print the phase span tree to stderr on exit")
	fs.StringVar(&tel.debugAddr, "debug-addr", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")
	return &opts, tel
}

// parseArgs parses the subcommand flags, installs the -workers value
// as the process-wide scheduler budget (so nested parallel sections —
// dataset rows → CV folds → campaign runs — share one pool instead of
// oversubscribing each other; results never depend on the budget), and
// starts telemetry collection when any observability flag asks for it.
// Callers must `defer tel.finish()` after a successful parse.
func parseArgs(fs *flag.FlagSet, args []string, opts *core.Options, tel *telemetryCfg) error {
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetBudget(opts.Workers)
	return tel.start()
}

// telemetryCfg carries the cross-cutting observability flags shared by
// every subcommand and owns the registry lifecycle: created in start(),
// reported and uninstalled in finish().
type telemetryCfg struct {
	metricsOut string
	trace      bool
	debugAddr  string
	reg        *telemetry.Registry
}

// expvarPublished guards the process-global expvar name: expvar.Publish
// panics on duplicates, and tests drive run() repeatedly in one process.
var expvarPublished bool

func (t *telemetryCfg) start() error {
	if t.metricsOut == "" && !t.trace && t.debugAddr == "" {
		telemetry.SetDefault(nil)
		return nil
	}
	t.reg = telemetry.New()
	telemetry.SetDefault(t.reg)
	if t.debugAddr != "" {
		if !expvarPublished {
			expvarPublished = true
			telemetry.PublishExpvar("edem")
		}
		ln, err := net.Listen("tcp", t.debugAddr)
		if err != nil {
			return fmt.Errorf("debug server: %w", err)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s/debug/pprof/ (metrics at /debug/vars)\n", ln.Addr())
		go func() { _ = http.Serve(ln, nil) }()
	}
	return nil
}

// finish reports the collected telemetry (span tree on stderr, JSON
// snapshot to -metrics-out) and uninstalls the registry.
func (t *telemetryCfg) finish() {
	if t.reg == nil {
		return
	}
	snap := t.reg.Snapshot()
	if t.trace {
		fmt.Fprint(os.Stderr, snap.FormatTree())
	}
	if t.metricsOut != "" {
		err := writeFile(t.metricsOut, func(f *os.File) error { return snap.WriteJSON(f) })
		if err != nil {
			fmt.Fprintln(os.Stderr, "edem: metrics snapshot:", err)
		} else {
			fmt.Fprintln(os.Stderr, "wrote metrics:", t.metricsOut)
		}
	}
	telemetry.SetDefault(nil)
	t.reg = nil
}

// cmdCampaign drives the resumable campaign engine directly: it runs
// (or resumes) the Step 1 fault-injection sweep for one dataset or all
// 18, checkpointing each shard to the journal. A run killed at any
// point — or stopped deliberately with -stop-after — picks up from its
// last checkpoint under -resume and yields a bit-identical dataset.
func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	id := fs.String("dataset", "", "Table II dataset ID (empty with -all sweeps all 18)")
	all := fs.Bool("all", false, "run every Table II dataset")
	resume := fs.Bool("resume", false, "continue an existing journal instead of refusing it")
	stopAfter := fs.Int("stop-after", 0, "stop gracefully after N new checkpoints (0 = run to completion); the journal stays resumable")
	showStats := fs.Bool("stats", false, "print the per-variable failure summary")
	opts, tel := commonOpts(fs)
	fs.IntVar(&opts.Shards, "shards", 0, "checkpoint shard count (0 = ~256 runs per shard)")
	fs.DurationVar(&opts.RunTimeout, "timeout", 0, "per-run watchdog; hung runs are retried then skipped (0 = none)")
	fs.IntVar(&opts.MaxRetries, "max-retries", 2, "extra attempts for a hung or crashed-engine run before skipping the cell")
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	opts.Resume = *resume
	ids := []string{*id}
	switch {
	case *all && *id != "":
		return fmt.Errorf("use either -dataset or -all, not both")
	case *all:
		ids = core.AllDatasetIDs()
	case *id == "":
		return fmt.Errorf("campaign needs -dataset ID or -all")
	}

	for _, dsID := range ids {
		if err := runOneCampaign(dsID, opts, *stopAfter, *showStats); err != nil {
			return err
		}
	}
	return nil
}

// runOneCampaign executes one dataset's campaign and reports resume
// accounting, skipped cells and (optionally) per-variable stats. A
// -stop-after interruption is a success: the point of the engine is
// that stopping is safe.
func runOneCampaign(id string, opts *core.Options, stopAfter int, showStats bool) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopped := false
	newCheckpoints := 0
	o := *opts
	// The progress hook is also the -stop-after trigger: it only fires
	// for newly executed shards, so restored checkpoints never count
	// against the stop budget.
	progress := func(done, total int) {
		fmt.Fprintf(os.Stderr, "  %s: checkpoint %d/%d\n", id, done, total)
		newCheckpoints++
		if stopAfter > 0 && newCheckpoints >= stopAfter && !stopped {
			stopped = true
			cancel()
		}
	}
	target, spec, err := core.SpecFor(id, o)
	if err != nil {
		return err
	}
	cfg := o.CampaignConfig(id)
	cfg.OnCheckpoint = progress
	res, err := campaign.Run(ctx, target, spec, cfg)
	if err != nil {
		if stopped && errors.Is(err, context.Canceled) {
			fmt.Printf("campaign %s: stopped after %d new checkpoints; resume with:\n  edem campaign -dataset %s -journal %s -resume\n",
				id, newCheckpoints, id, o.Journal)
			return nil
		}
		return err
	}
	c := res.Campaign
	fmt.Printf("campaign %s: plan %.12s, %d/%d shards run (%d restored), %d retries\n",
		id, res.PlanHash, res.ShardsRun, res.Shards, res.ShardsRestored, res.Retries)
	fmt.Printf("  %d injected runs, %d usable, %d failures\n",
		len(c.Records), c.Usable(), c.Failures())
	if len(res.Skipped) > 0 {
		fmt.Printf("  %d cells skipped:\n", len(res.Skipped))
		for _, s := range res.Skipped {
			fmt.Printf("    job %d (tc %d, %s, bit %d, t %d): %s (%d attempts)\n",
				s.Job, s.TC, s.Var, s.Bit, s.Time, s.Reason, s.Attempts)
		}
	}
	if showStats {
		fmt.Print(propane.FormatStats(propane.Summarize(c)))
	}
	return nil
}

func cmdTables(args []string) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	table := fs.Int("table", 3, "table number: 2, 3 or 4")
	full := fs.Bool("full", false, "use the paper-scale refinement grid (table 4)")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	switch *table {
	case 1:
		fmt.Println("Table I: confusion matrix structure")
		cm := eval.NewConfusionMatrix([]string{"Pos.", "Neg."})
		fmt.Print(cm.String())
		fmt.Println("TP/FN/FP/TN cells; see internal/mining/eval.")
		return nil
	case 2:
		rows, err := core.Table2(ctx, *opts)
		if err != nil {
			return err
		}
		fmt.Print(core.FormatTable2Rows(rows))
		return nil
	case 3:
		rows, err := core.Table3Rows(ctx, core.AllDatasetIDs(), *opts, tableProgress)
		if err != nil {
			return err
		}
		fmt.Print(core.FormatTable("Table III: decision tree induction results (no sampling)", rows))
		return nil
	case 4:
		grid := core.RefineGrid(*full)
		rows, err := core.Table4Rows(ctx, core.AllDatasetIDs(), grid, *opts, tableProgress)
		if err != nil {
			return err
		}
		fmt.Print(core.FormatTable("Table IV: decision tree induction results (refined)", rows))
		return nil
	default:
		return fmt.Errorf("unknown table %d", *table)
	}
}

// tableProgress is the stderr progress line for table generation: one
// line per finished dataset. Per-phase cost attribution now comes from
// the telemetry layer (-trace / -metrics-out).
func tableProgress(id string, _ core.Row) {
	fmt.Fprintf(os.Stderr, "  %s done\n", id)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	id := fs.String("dataset", "FG-A2", "Table II dataset ID")
	full := fs.Bool("full", false, "use the paper-scale refinement grid")
	save := fs.String("save", "", "write the learnt predicate (JSON) to this file")
	report := fs.String("report", "", "write a markdown generation report to this file")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	rep, err := core.RunMethodology(context.Background(), *id, core.RefineGrid(*full), *opts)
	if err != nil {
		return err
	}
	printReport(rep)
	if *save != "" {
		data, err := rep.Predicate.MarshalText()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*save, data, 0o644); err != nil {
			return err
		}
		fmt.Println("wrote predicate:", *save)
	}
	if *report != "" {
		if err := writeFile(*report, func(f *os.File) error { return core.WriteReport(f, rep) }); err != nil {
			return err
		}
		fmt.Println("wrote report:", *report)
	}
	return nil
}

func printReport(rep *core.Report) {
	fmt.Printf("dataset %s: %d instances, %d failure-inducing\n", rep.ID, rep.Instances, rep.Failures)
	b := rep.Baseline
	fmt.Printf("baseline:  FPR=%.2e TPR=%.4f AUC=%.4f Comp=%.1f Var=%.2e\n",
		b.MeanFPR, b.MeanTPR, b.MeanAUC, b.MeanComp, b.VarAUC)
	r := rep.Refined.BestCV
	fmt.Printf("refined:   FPR=%.2e TPR=%.4f AUC=%.4f Comp=%.1f Var=%.2e  (S=%s N=%s)\n",
		r.MeanFPR, r.MeanTPR, r.MeanAUC, r.MeanComp, r.VarAUC,
		rep.Refined.Best.Label(), rep.Refined.Best.KLabel())
	fmt.Printf("\ndetector predicate (%d clauses, %d atoms):\n%s\n",
		len(rep.Predicate.Clauses), rep.Predicate.Complexity(), rep.Predicate)
}

func cmdTree(args []string) error {
	fs := flag.NewFlagSet("tree", flag.ContinueOnError)
	id := fs.String("dataset", "FG-A2", "Table II dataset ID")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	d, _, err := core.BuildDataset(ctx, *id, *opts)
	if err != nil {
		return err
	}
	t, err := core.DefaultLearner().FitTree(d)
	if err != nil {
		return err
	}
	fmt.Printf("decision tree for %s (%d nodes, %d leaves, depth %d):\n",
		*id, t.Size(), t.Leaves(), t.Depth())
	fmt.Println(t.String())
	fmt.Println("variable importance (split-weight attribution):")
	fmt.Print(t.FormatImportance())
	return nil
}

func cmdInject(args []string) error {
	fs := flag.NewFlagSet("inject", flag.ContinueOnError)
	id := fs.String("dataset", "7Z-B1", "Table II dataset ID")
	logPath := fs.String("log", "", "write the PROPANE log to this file")
	arffPath := fs.String("arff", "", "write the ARFF dataset to this file")
	csvPath := fs.String("csv", "", "write the dataset as CSV to this file")
	showStats := fs.Bool("stats", false, "print the per-variable failure summary")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	camp, err := core.Campaign(ctx, *id, *opts)
	if err != nil {
		return err
	}
	fmt.Printf("campaign %s: %d injected runs, %d usable, %d failures\n",
		*id, len(camp.Records), camp.Usable(), camp.Failures())
	if *showStats {
		fmt.Print(propane.FormatStats(propane.Summarize(camp)))
	}
	if *logPath != "" {
		if err := writeFile(*logPath, func(f *os.File) error { return propane.WriteLog(f, camp) }); err != nil {
			return err
		}
		fmt.Println("wrote PROPANE log:", *logPath)
	}
	if *arffPath != "" {
		d, err := core.Preprocess(ctx, camp)
		if err != nil {
			return err
		}
		if err := writeFile(*arffPath, func(f *os.File) error { return dataset.WriteARFF(f, d) }); err != nil {
			return err
		}
		fmt.Println("wrote ARFF dataset:", *arffPath)
	}
	if *csvPath != "" {
		d, err := core.Preprocess(ctx, camp)
		if err != nil {
			return err
		}
		if err := writeFile(*csvPath, func(f *os.File) error { return dataset.WriteCSV(f, d) }); err != nil {
			return err
		}
		fmt.Println("wrote CSV dataset:", *csvPath)
	}
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	id := fs.String("dataset", "MG-B1", "Table II dataset ID")
	full := fs.Bool("full", false, "use the paper-scale refinement grid")
	predPath := fs.String("pred", "", "validate this saved predicate instead of learning one")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	var pred *predicate.Predicate
	var cvTPR, cvFPR float64
	if *predPath != "" {
		data, err := os.ReadFile(*predPath)
		if err != nil {
			return err
		}
		pred, err = predicate.Parse(data)
		if err != nil {
			return err
		}
		fmt.Printf("loaded predicate %s (%d clauses)\n", pred.Name, len(pred.Clauses))
	} else {
		rep, err := core.RunMethodology(ctx, *id, core.RefineGrid(*full), *opts)
		if err != nil {
			return err
		}
		printReport(rep)
		pred = rep.Predicate
		cvTPR, cvFPR = rep.Refined.BestCV.MeanTPR, rep.Refined.BestCV.MeanFPR
	}
	val, err := core.ValidateDetector(ctx, *id, pred, *opts)
	if err != nil {
		return err
	}
	fmt.Printf("re-validation across %d repeated injected runs:\n", val.Runs)
	if *predPath != "" {
		fmt.Printf("  deployed TPR=%.4f FPR=%.2e\n", val.Counts.TPR(), val.Counts.FPR())
	} else {
		fmt.Printf("  deployed TPR=%.4f FPR=%.2e  (CV estimates: TPR=%.4f FPR=%.2e)\n",
			val.Counts.TPR(), val.Counts.FPR(), cvTPR, cvFPR)
	}
	return nil
}

// cmdRules learns a detector via rule induction — the other symbolic
// family the paper's Step 2 allows — and prints the resulting
// predicate alongside its cross-validated rates.
func cmdRules(args []string) error {
	fs := flag.NewFlagSet("rules", flag.ContinueOnError)
	id := fs.String("dataset", "MG-B1", "Table II dataset ID")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	d, _, err := core.BuildDataset(ctx, *id, *opts)
	if err != nil {
		return err
	}
	learner := rules.PRISM{}
	cv, err := eval.CrossValidate(ctx, learner, d, eval.CVConfig{Folds: opts.Folds, Seed: opts.Seed})
	if err != nil {
		return err
	}
	fmt.Printf("PRISM rule induction on %s: TPR=%.4f FPR=%.2e AUC=%.4f Comp=%.1f\n",
		*id, cv.MeanTPR, cv.MeanFPR, cv.MeanAUC, cv.MeanComp)
	model, err := learner.Fit(d)
	if err != nil {
		return err
	}
	rs, ok := model.(*rules.RuleSet)
	if !ok {
		return fmt.Errorf("unexpected model type %T", model)
	}
	vars := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		vars[i] = a.Name
	}
	pred, err := predicate.FromRules(rs, eval.PositiveClass, vars, *id)
	if err != nil {
		return err
	}
	fmt.Printf("\nrule-induction predicate:\n%s", pred)
	return nil
}

func cmdLatency(args []string) error {
	fs := flag.NewFlagSet("latency", flag.ContinueOnError)
	id := fs.String("dataset", "MG-B1", "Table II dataset ID")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	ctx := context.Background()
	d, _, err := core.BuildDataset(ctx, *id, *opts)
	if err != nil {
		return err
	}
	t, err := core.DefaultLearner().FitTree(d)
	if err != nil {
		return err
	}
	pred, err := predicate.FromTree(t, eval.PositiveClass, *id)
	if err != nil {
		return err
	}
	res, err := core.MeasureLatency(ctx, *id, pred, *opts)
	if err != nil {
		return err
	}
	fmt.Printf("latency for %s: %d failures traced\n", *id, res.Failures)
	fmt.Printf("  detected %d (%.1f%%), missed %d\n",
		res.Detected, 100*float64(res.Detected)/float64(res.Failures), res.Missed)
	fmt.Printf("  mean detection latency %.2f activations (max %d, %.1f%% immediate)\n",
		res.MeanLatency, res.MaxLatency, 100*res.ImmediateRate)
	return nil
}

func cmdRank(args []string) error {
	fs := flag.NewFlagSet("rank", flag.ContinueOnError)
	id := fs.String("dataset", "FG-B1", "Table II dataset ID")
	method := fs.String("method", "ig", "ranking criterion: ig (info gain), gr (gain ratio), su (symmetrical uncertainty)")
	opts, tel := commonOpts(fs)
	if err := parseArgs(fs, args, opts, tel); err != nil {
		return err
	}
	defer tel.finish()
	var m attrsel.Method
	switch *method {
	case "ig":
		m = attrsel.InfoGain
	case "gr":
		m = attrsel.GainRatio
	case "su":
		m = attrsel.Symmetrical
	default:
		return fmt.Errorf("unknown ranking method %q", *method)
	}
	d, _, err := core.BuildDataset(context.Background(), *id, *opts)
	if err != nil {
		return err
	}
	scores, err := attrsel.Rank(d, m)
	if err != nil {
		return err
	}
	fmt.Printf("variable ranking for %s (%s):\n", *id, m)
	for _, sc := range scores {
		fmt.Printf("  %-18s %.4f\n", sc.Name, sc.Value)
	}
	return nil
}

func cmdList() error {
	opts := core.DefaultOptions()
	for _, id := range core.AllDatasetIDs() {
		info, err := core.Info(id, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-11s %-10s inject=%-5s sample=%s\n",
			info.ID, info.Target, info.Module, info.InjectAt, info.SampleAt)
	}
	return nil
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
