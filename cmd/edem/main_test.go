package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRejectsUnknownCommands(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no args should fail")
	}
	if err := run([]string{"frobnicate"}); err == nil {
		t.Error("unknown subcommand should fail")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help: %v", err)
	}
}

func TestCmdList(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatalf("list: %v", err)
	}
}

func TestCmdTablesUnknownTable(t *testing.T) {
	if err := run([]string{"tables", "-table", "9"}); err == nil {
		t.Fatal("table 9 should fail")
	}
}

func TestCmdTable1(t *testing.T) {
	if err := run([]string{"tables", "-table", "1"}); err != nil {
		t.Fatalf("table 1: %v", err)
	}
}

func TestCmdTreeSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	if err := run([]string{"tree", "-dataset", "MG-B1", "-scale", "2", "-stride", "16"}); err != nil {
		t.Fatalf("tree: %v", err)
	}
}

func TestCmdInjectWritesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	dir := t.TempDir()
	logPath := filepath.Join(dir, "campaign.log")
	arffPath := filepath.Join(dir, "campaign.arff")
	err := run([]string{
		"inject", "-dataset", "MG-A1", "-scale", "2", "-stride", "16",
		"-log", logPath, "-arff", arffPath,
	})
	if err != nil {
		t.Fatalf("inject: %v", err)
	}
	logData, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(logData), "#PROPANE v1") {
		t.Error("log missing PROPANE header")
	}
	arffData, err := os.ReadFile(arffPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(arffData), "@relation") || !strings.Contains(string(arffData), "@data") {
		t.Error("ARFF missing sections")
	}
}

func TestCmdRunBadDataset(t *testing.T) {
	if err := run([]string{"run", "-dataset", "NOPE-X9"}); err == nil {
		t.Fatal("bad dataset should fail")
	}
}
