package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"

	"edem/internal/serve"
)

// cmdLifecycle drives a running `edem serve -lifecycle` instance
// through the detector lifecycle over its admin API: inspect drift and
// canary state (status), load a candidate bundle for shadow evaluation
// (shadow), route traffic to it (promote), abandon it (rollback),
// freeze the drift baseline (baseline) and label served verdicts
// (feedback).
func cmdLifecycle(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("lifecycle needs a verb: status, shadow, promote, rollback, baseline or feedback")
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("lifecycle "+verb, flag.ContinueOnError)
	server := fs.String("server", "http://localhost:8080", "base URL of the running edem serve instance")
	switch verb {
	case "status":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		return lifecycleStatus(*server)

	case "shadow":
		bundle := fs.String("bundle", "", "candidate bundle file to shadow-evaluate (from edem export)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *bundle == "" {
			return fmt.Errorf("lifecycle shadow needs -bundle FILE")
		}
		// The server resolves the path in its own working directory;
		// send an absolute path so the verb works from anywhere.
		path, err := filepath.Abs(*bundle)
		if err != nil {
			return err
		}
		var resp serve.ShadowResponse
		if err := lifecyclePost(*server, "/admin/shadow", serve.ShadowRequest{Path: path}, &resp); err != nil {
			return err
		}
		fmt.Printf("shadowing %d detectors from %s (candidate generation %d)\n",
			len(resp.Detectors), resp.Path, resp.Generation)
		return nil

	case "promote":
		pct := fs.Int("percent", 100, "traffic percentage for the candidate (1-99: canary, 100: full promote)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		var resp serve.PromoteResponse
		if err := lifecyclePost(*server, "/admin/promote", serve.PromoteRequest{Percent: *pct}, &resp); err != nil {
			return err
		}
		if resp.State == "canary" {
			fmt.Printf("canary: %d%% of traffic to candidate generation %d (live generation %d unchanged)\n",
				resp.Percent, resp.CandidateGeneration, resp.Generation)
		} else {
			fmt.Printf("promoted: candidate is now live generation %d (prior retained for rollback)\n",
				resp.Generation)
		}
		return nil

	case "rollback":
		reason := fs.String("reason", "", "reason recorded in the lifecycle status")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		var resp serve.RollbackResponse
		if err := lifecyclePost(*server, "/admin/rollback", serve.RollbackRequest{Reason: *reason}, &resp); err != nil {
			return err
		}
		fmt.Printf("rolled back (%s): from %s, live generation now %d\n",
			resp.Reason, resp.From, resp.Generation)
		return nil

	case "baseline":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		var resp serve.LifecycleStatusResponse
		if err := lifecyclePost(*server, "/admin/baseline", struct{}{}, &resp); err != nil {
			return err
		}
		fmt.Printf("drift baseline frozen at live generation %d\n", resp.LiveGeneration)
		return nil

	case "feedback":
		detector := fs.String("detector", "", "detector the labelled verdict came from")
		alarm := fs.Bool("alarm", false, "the verdict being labelled (true = it alarmed)")
		outcome := fs.String("outcome", "", "ground-truth label: true-alarm, false-alarm, missed-failure or benign")
		source := fs.String("source", "operator", "label source: operator or golden-run")
		sample := fs.String("sample", "", "comma-separated sampled state the verdict was for (optional)")
		note := fs.String("note", "", "free-form context (optional)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *detector == "" || *outcome == "" {
			return fmt.Errorf("lifecycle feedback needs -detector ID and -outcome LABEL")
		}
		req := serve.FeedbackRequest{
			Detector: *detector, Alarm: *alarm, Outcome: *outcome, Source: *source, Note: *note,
		}
		if *sample != "" {
			for _, fv := range strings.Split(*sample, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(fv), 64)
				if err != nil {
					return fmt.Errorf("lifecycle feedback: bad -sample value %q: %w", fv, err)
				}
				req.Sample = append(req.Sample, v)
			}
		}
		var resp serve.FeedbackResponse
		if err := lifecyclePost(*server, "/v1/feedback", req, &resp); err != nil {
			return err
		}
		fmt.Printf("recorded %s/%s for %s (generation %d)\n", *outcome, *source, *detector, resp.Generation)
		return nil

	default:
		return fmt.Errorf("unknown lifecycle verb %q (want status, shadow, promote, rollback, baseline or feedback)", verb)
	}
}

// lifecycleStatus renders GET /admin/lifecycle as the operator view:
// state machine position, canary window, drift table, and which
// detectors the drift verdicts say to re-refine.
func lifecycleStatus(base string) error {
	var st serve.LifecycleStatusResponse
	if err := lifecycleGet(base, "/admin/lifecycle", &st); err != nil {
		return err
	}
	if !st.Enabled {
		fmt.Println("lifecycle: disabled (start serve with -lifecycle DIR)")
		return nil
	}
	fmt.Printf("state:     %s\n", st.State)
	fmt.Printf("live:      generation %d  %s\n", st.LiveGeneration, st.LivePath)
	if st.CandidatePath != "" {
		fmt.Printf("candidate: generation %d  %s", st.CandidateGeneration, st.CandidatePath)
		if st.CanaryPercent > 0 {
			fmt.Printf("  (serving %d%% of its traffic)", st.CanaryPercent)
		}
		fmt.Println()
	}
	if st.PriorPath != "" {
		fmt.Printf("prior:     generation %d  %s  (rollback target)\n", st.PriorGeneration, st.PriorPath)
	}
	w := st.Window
	fmt.Printf("window:    %d requests / %d samples dual-evaluated, %d disagreements (rate %.3f), alarm regress %+.3f, %d canary-served\n",
		w.Requests, w.Samples, w.Disagreements, w.DisagreeRate(), w.AlarmRegress(), w.CanaryRequests)
	fmt.Printf("feedback:  %d records journalled this process\n", st.FeedbackRecords)
	if st.LastRollback != "" {
		fmt.Printf("rollback:  %s\n", st.LastRollback)
	}

	if !st.HasBaseline {
		fmt.Println("drift:     no baseline frozen — run `edem lifecycle baseline` once traffic looks healthy")
		return nil
	}
	fmt.Printf("\n%-12s %10s %10s %12s %10s  %s\n",
		"DETECTOR", "BASE-EVALS", "CUR-EVALS", "ALARM-DELTA", "FEAT-DIST", "VERDICT")
	var rerefine []string
	for _, row := range st.Drift {
		fmt.Printf("%-12s %10d %10d %12.3f %10.3f  %s\n",
			row.Detector, row.BaseEvals, row.CurEvals, row.AlarmDelta, row.FeatureDistance, row.Verdict)
		if row.Drifted() {
			rerefine = append(rerefine, row.Detector)
		}
	}
	if len(rerefine) > 0 {
		fmt.Printf("\nre-refine: %s\n", strings.Join(rerefine, ", "))
		fmt.Printf("  edem export -dataset %s -out candidate.json   # re-learn from fresh campaigns\n",
			strings.Join(rerefine, ","))
		fmt.Printf("  edem lifecycle shadow -bundle candidate.json  # then canary-promote when clean\n")
	}
	return nil
}

// lifecyclePost POSTs a JSON body to the serve admin API and decodes
// the 200 response into out; a non-2xx response surfaces the server's
// error message.
func lifecyclePost(base, path string, body, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(base, "/")+path, "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeLifecycle(resp, out)
}

// lifecycleGet GETs a serve admin endpoint and decodes the response.
func lifecycleGet(base, path string, out any) error {
	resp, err := http.Get(strings.TrimRight(base, "/") + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return decodeLifecycle(resp, out)
}

func decodeLifecycle(resp *http.Response, out any) error {
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s", e.Error)
		}
		return fmt.Errorf("server returned %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
