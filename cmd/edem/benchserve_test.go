package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"edem/internal/predicate"
	"edem/internal/serve"
)

// TestCmdBenchServe smokes the load harness at the CLI boundary with a
// hand-built bundle and a tiny measurement window: all four legs must
// run, and the snapshot must carry the percentile and throughput fields
// the perf trajectory is tracked by.
func TestCmdBenchServe(t *testing.T) {
	dir := t.TempDir()
	bundlePath := filepath.Join(dir, "bundle.json")
	outPath := filepath.Join(dir, "bench.json")
	bundle := &serve.Bundle{Version: serve.BundleVersion, Detectors: []serve.BundleEntry{{
		ID: "D1", Module: "M", Location: "Exit",
		Predicate: &predicate.Predicate{
			Name: "D1",
			Vars: []string{"a", "b"},
			Clauses: []predicate.Clause{
				{{Var: "a", Index: 0, Op: predicate.GT, Threshold: 50}},
				{{Var: "b", Index: 1, Op: predicate.LE, Threshold: -50}},
			},
		},
	}}}
	if err := bundle.WriteFile(bundlePath); err != nil {
		t.Fatal(err)
	}

	err := run([]string{"bench-serve", "-bundle", bundlePath, "-out", outPath,
		"-duration", "150ms", "-warmup", "30ms", "-conns", "2", "-batch", "8"})
	if err != nil {
		t.Fatalf("bench-serve: %v", err)
	}

	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Detector string  `json:"detector"`
		Batch    int     `json:"batch"`
		Speedup  float64 `json:"speedup_binary_compiled_vs_json_interpreted"`
		Legs     []struct {
			Codec         string  `json:"codec"`
			Eval          string  `json:"eval"`
			Requests      int     `json:"requests"`
			ThroughputRPS float64 `json:"throughput_rps"`
			SamplesPerSec float64 `json:"samples_per_sec"`
			P50           int64   `json:"p50_us"`
			P99           int64   `json:"p99_us"`
			P999          int64   `json:"p999_us"`
		} `json:"legs"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Detector != "D1" || snap.Batch != 8 {
		t.Fatalf("snapshot config: %+v", snap)
	}
	if len(snap.Legs) != 4 {
		t.Fatalf("legs = %d, want 4 (codec × eval mode)", len(snap.Legs))
	}
	want := map[string]bool{
		"json+interpreted": false, "json+compiled": false,
		"binary+interpreted": false, "binary+compiled": false,
	}
	for _, leg := range snap.Legs {
		key := leg.Codec + "+" + leg.Eval
		if _, ok := want[key]; !ok {
			t.Fatalf("unexpected leg %q", key)
		}
		want[key] = true
		if leg.Requests <= 0 || leg.ThroughputRPS <= 0 || leg.SamplesPerSec <= 0 {
			t.Fatalf("leg %q has no throughput: %+v", key, leg)
		}
		if leg.P50 <= 0 || leg.P99 < leg.P50 || leg.P999 < leg.P99 {
			t.Fatalf("leg %q has inconsistent percentiles: %+v", key, leg)
		}
	}
	for key, seen := range want {
		if !seen {
			t.Fatalf("missing leg %q", key)
		}
	}
	if snap.Speedup <= 0 {
		t.Fatalf("speedup = %v", snap.Speedup)
	}
}

// TestCmdBenchServeRejectsBadFlags pins the argument contract.
func TestCmdBenchServeRejectsBadFlags(t *testing.T) {
	if err := run([]string{"bench-serve"}); err == nil {
		t.Fatal("missing -bundle accepted")
	}
	if err := run([]string{"bench-serve", "-bundle", "nope.json", "-conns", "0"}); err == nil {
		t.Fatal("zero -conns accepted")
	}
	bundlePath := filepath.Join(t.TempDir(), "bundle.json")
	bundle := &serve.Bundle{Version: serve.BundleVersion, Detectors: []serve.BundleEntry{{
		ID: "D1", Module: "M", Location: "Exit",
		Predicate: &predicate.Predicate{Name: "D1", Vars: []string{"v"}},
	}}}
	if err := bundle.WriteFile(bundlePath); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"bench-serve", "-bundle", bundlePath, "-detector", "NOPE"}); err == nil {
		t.Fatal("unknown detector accepted")
	}
}
