package main

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"edem/internal/serve"
)

// TestCmdExportThenServe drives the deployment story end to end at the
// CLI boundary: `edem export` learns a predicate and writes a bundle,
// the bundle loads back, and the serving stack evaluates a batch
// through the retrying client.
func TestCmdExportThenServe(t *testing.T) {
	if testing.Short() {
		t.Skip("methodology run; skipped in -short mode")
	}
	out := filepath.Join(t.TempDir(), "bundle.json")
	args := []string{"export", "-dataset", "MG-A1", "-out", out, "-scale", "2", "-stride", "16"}
	if err := run(args); err != nil {
		t.Fatalf("export: %v", err)
	}

	b, err := serve.LoadBundle(out)
	if err != nil {
		t.Fatalf("exported bundle does not load: %v", err)
	}
	if len(b.Detectors) != 1 || b.Detectors[0].ID != "MG-A1" {
		t.Fatalf("bundle = %+v", b.Detectors)
	}
	e := b.Detectors[0]
	if e.Module == "" || e.Predicate == nil {
		t.Fatalf("entry incomplete: %+v", e)
	}
	if _, err := e.ParseLocation(); err != nil {
		t.Fatal(err)
	}

	s, err := serve.NewServer(b, out, serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	c := &serve.Client{Base: hs.URL}
	arity := len(e.Predicate.Vars)
	samples := make([]serve.Sample, 4)
	for i := range samples {
		samples[i] = make(serve.Sample, arity)
	}
	resp, err := c.Evaluate(context.Background(), "MG-A1", samples)
	if err != nil {
		t.Fatalf("evaluate against exported bundle: %v", err)
	}
	if resp.Evaluated != 4 || len(resp.Verdicts) != 4 {
		t.Fatalf("resp = %+v", resp)
	}
}
