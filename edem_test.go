package edem

import (
	"context"
	"strings"
	"testing"
)

// smallOpts keeps facade tests fast.
func smallOpts() Options {
	opts := DefaultOptions()
	opts.TestCases = 3
	opts.BitStride = 8
	opts.Folds = 5
	return opts
}

func TestFacadeDatasetIDs(t *testing.T) {
	if got := len(AllDatasetIDs()); got != 18 {
		t.Fatalf("dataset ids = %d", got)
	}
}

func TestFacadeCampaignToPredicate(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	ctx := context.Background()
	opts := smallOpts()

	camp, err := Campaign(ctx, "MG-B1", opts)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Failures() == 0 {
		t.Fatal("no failures")
	}
	stats := SummarizeCampaign(camp)
	if len(stats) == 0 {
		t.Fatal("no per-variable stats")
	}

	d, err := Preprocess(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}
	cv, err := Baseline(ctx, d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cv.MeanAUC < 0.9 {
		t.Errorf("AUC = %v", cv.MeanAUC)
	}

	tree, err := C45().FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := PredicateFromTree(tree, 1, "facade")
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Clauses) == 0 {
		t.Fatal("empty predicate")
	}
	// Round trip through the serialised form.
	data, err := pred.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "clauses") {
		t.Error("serialised predicate missing clauses")
	}
}

func TestFacadeFormatsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	ctx := context.Background()
	opts := smallOpts()
	camp, err := Campaign(ctx, "MG-A1", opts)
	if err != nil {
		t.Fatal(err)
	}
	var logBuf, arffBuf, csvBuf strings.Builder
	if err := WriteLog(&logBuf, camp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(strings.NewReader(logBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Records) != len(camp.Records) {
		t.Fatal("log round trip lost records")
	}
	d, err := Preprocess(ctx, camp)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteARFF(&arffBuf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadARFF(strings.NewReader(arffBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Len() != d.Len() {
		t.Fatal("ARFF round trip lost instances")
	}
	if err := WriteCSV(&csvBuf, d); err != nil {
		t.Fatal(err)
	}
	d3, err := ReadCSV(strings.NewReader(csvBuf.String()), "csv")
	if err != nil {
		t.Fatal(err)
	}
	if d3.Len() != d.Len() {
		t.Fatal("CSV round trip lost instances")
	}
}

func TestFacadeDetectorLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline; skipped in -short mode")
	}
	ctx := context.Background()
	opts := smallOpts()
	grid := []SamplingConfig{{Kind: Oversampling, Percent: 300}}
	rep, err := RunMethodology(ctx, "MG-B1", grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	val, err := ValidateDetector(ctx, rep.ID, rep.Predicate, opts)
	if err != nil {
		t.Fatal(err)
	}
	if val.Counts.TPR() < 0.8 {
		t.Errorf("deployed TPR = %v", val.Counts.TPR())
	}
	lat, err := MeasureLatency(ctx, rep.ID, rep.Predicate, opts)
	if err != nil {
		t.Fatal(err)
	}
	if lat.Detected+lat.Missed != lat.Failures {
		t.Fatal("latency accounting")
	}
	det := NewDetector("RGain", Entry, rep.Predicate)
	if det == nil || det.Module != "RGain" {
		t.Fatal("detector construction")
	}
}

// TestFacadeTelemetry exercises the telemetry surface of the facade:
// process-default registry lifecycle, context-local registries, and
// the snapshot export of an instrumented pipeline stage.
func TestFacadeTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	if Telemetry() != nil {
		t.Fatal("telemetry should start disabled")
	}
	reg := EnableTelemetry()
	defer DisableTelemetry()
	if Telemetry() != reg {
		t.Fatal("EnableTelemetry did not install the registry")
	}

	ctx := context.Background()
	camp, err := Campaign(ctx, "MG-B1", smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Preprocess(ctx, camp); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["campaign.runs_injected"] == 0 {
		t.Error("campaign.runs_injected not counted")
	}
	if snap.Phases["campaign"].Count != 1 || snap.Phases["preprocess"].Count != 1 {
		t.Errorf("phases = %v", snap.Phases)
	}

	// A context-local registry wins over the process default: spans on
	// the scoped context land in it, not in reg.
	local := NewMetrics()
	lctx, span := StartSpan(WithTelemetry(ctx, local), "facade-span")
	_ = lctx
	span.End()
	if got := local.Snapshot().Phases["facade-span"].Count; got != 1 {
		t.Errorf("context-local span count = %d, want 1", got)
	}
	if _, ok := reg.Snapshot().Phases["facade-span"]; ok {
		t.Error("context-local span leaked into the default registry")
	}

	DisableTelemetry()
	if Telemetry() != nil {
		t.Fatal("DisableTelemetry left a registry installed")
	}
}
