// Archiver example: learn a detector for the 7-Zip decoder module,
// install it as a live runtime assertion (a propane probe) and watch it
// flag corrupted decoder state during an injected run — the deployment
// path of paper §VII-D, shown at probe level rather than through the
// aggregate validation harness.
package main

import (
	"context"
	"fmt"
	"log"

	"edem"
	"edem/internal/propane"
	"edem/internal/targets/sevenzip"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	opts := edem.DefaultOptions()
	opts.TestCases = 6

	// Steps 1-4 on the decoder's entry point (7Z-B1).
	grid := []edem.SamplingConfig{
		{Kind: edem.Oversampling, Percent: 500},
		{Kind: edem.Smote, Percent: 500, K: 5},
		{Kind: edem.Undersampling, Percent: 50},
	}
	rep, err := edem.RunMethodology(ctx, "7Z-B1", grid, opts)
	if err != nil {
		return err
	}
	fmt.Printf("learnt detector for LDecode entry: %d clauses, CV TPR=%.4f FPR=%.2e\n",
		len(rep.Predicate.Clauses), rep.Refined.BestCV.MeanTPR, rep.Refined.BestCV.MeanFPR)

	// Install the predicate as a runtime assertion at the location it
	// was learnt for. The campaign sampled the decoder at files 2, 5, 7
	// and 9, so the assertion guards those activations.
	det := edem.NewDetector(sevenzip.ModuleLDecode, edem.Entry, rep.Predicate)
	det.GuardActivations = []int{2, 5, 7, 9}

	// Drive one clean run on the training workload: an accurate
	// detector must stay silent.
	target := sevenzip.System{}
	tc := target.TestCases(1, opts.Seed)[0]
	if _, err := target.Run(tc, det); err != nil {
		return fmt.Errorf("clean run: %w", err)
	}
	fmt.Printf("clean run: %d activations observed, %d alarms\n", det.Visits, len(det.Alarms))

	// Now corrupt the decoder's window position mid-extraction while
	// the detector watches the same location.
	det.Reset()
	injector := &bitFlipper{module: sevenzip.ModuleLDecode, varName: "winPos", bit: 13, activation: 5}
	_, runErr := target.Run(tc, edem.Chain(injector, det))
	fmt.Printf("injected run: alarms at activations %v (run error: %v)\n", det.Alarms, runErr)
	if det.Triggered() {
		fmt.Println("the deployed detector flagged the corrupted state before the failure surfaced")
	}

	// Aggregate re-validation: repeat the fault injection experiments
	// with the detector's verdicts recorded (paper §VII-D).
	val, err := edem.ValidateDetector(ctx, rep.ID, rep.Predicate, opts)
	if err != nil {
		return err
	}
	fmt.Printf("repeated-experiment validation (%d runs): TPR=%.4f FPR=%.2e\n",
		val.Runs, val.Counts.TPR(), val.Counts.FPR())
	return nil
}

// bitFlipper injects one bit flip at the nth activation of a module
// entry point, then stands aside.
type bitFlipper struct {
	module     string
	varName    string
	bit        int
	activation int
	count      int
	done       bool
}

func (p *bitFlipper) Visit(module string, loc propane.Location, vars []propane.VarRef) {
	if module != p.module || loc != propane.Entry || p.done {
		return
	}
	p.count++
	if p.count == p.activation {
		for _, v := range vars {
			if v.Name == p.varName {
				_ = v.FlipBit(p.bit)
			}
		}
		p.done = true
	}
}
