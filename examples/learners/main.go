// Learner comparison: why does the methodology insist on symbolic
// pattern learners (paper §IV)? This example runs the whole mining zoo
// on one fault-injection dataset under identical folds — C4.5, rule
// induction, Naïve Bayes (raw, log-mapped and MDL-discretised),
// logistic regression, k-NN, bagging, boosting and the cost-sensitive
// variants — and prints the paper's metrics side by side. The symbolic
// learners are competitive AND their models convert to predicates; the
// others are at best competitive.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"edem"
	"edem/internal/core"
	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/mining/bayes"
	"edem/internal/mining/costs"
	"edem/internal/mining/discretize"
	"edem/internal/mining/ensemble"
	"edem/internal/mining/eval"
	"edem/internal/mining/knn"
	"edem/internal/mining/logreg"
	"edem/internal/mining/rules"
	"edem/internal/mining/tree"
	"edem/internal/stats"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const id = "MG-B1"
	opts := core.DefaultOptions()
	opts.TestCases = 6

	d, _, err := core.BuildDataset(context.Background(), id, opts)
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s: %d instances, %d failure-inducing\n\n", id, d.Len(), d.ClassCounts()[1])

	// MDL-discretised Naïve Bayes: fit the discretiser inside each
	// training fold via the transform hook.
	discretized := func(base mining.Learner) mining.Learner {
		return transformedLearner{base: base, name: base.Name() + "+MDL-disc"}
	}

	learners := []mining.Learner{
		tree.Learner{},
		rules.PRISM{},
		rules.OneR{},
		rules.ZeroR{},
		costs.CostSensitiveLearner{Base: tree.Learner{}, Costs: costs.FalseNegativePenalty(10)},
		ensemble.Bagging{Base: tree.Learner{}, Rounds: 10},
		ensemble.AdaBoost{Base: tree.Learner{}, Rounds: 10},
		ensemble.AdaBoost{Base: tree.Learner{}, Rounds: 10, CostVector: []float64{1, 10}},
		bayes.Learner{},
		bayes.Learner{LogMap: true},
		discretized(bayes.Learner{}),
		logreg.Learner{},
		knn.Learner{K: 3},
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "learner\tTPR\tFPR\tAUC\tComp\tsymbolic predicate?")
	for _, l := range learners {
		cv, err := edem.CrossValidate(context.Background(), l, d, eval.CVConfig{Folds: 10, Seed: opts.Seed})
		if err != nil {
			return fmt.Errorf("%s: %w", l.Name(), err)
		}
		symbolic := "no"
		switch l.(type) {
		case tree.Learner, rules.PRISM, rules.OneR:
			symbolic = "yes"
		case costs.CostSensitiveLearner:
			symbolic = "yes"
		}
		fmt.Fprintf(w, "%s\t%.4f\t%.2e\t%.4f\t%.1f\t%s\n",
			l.Name(), cv.MeanTPR, cv.MeanFPR, cv.MeanAUC, cv.MeanComp, symbolic)
	}
	return w.Flush()
}

// transformedLearner discretises each training partition with MDL cuts
// before fitting the base learner, and wraps the model so test
// instances pass through the same cuts.
type transformedLearner struct {
	base mining.Learner
	name string
}

func (t transformedLearner) Name() string { return t.name }

func (t transformedLearner) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	z, err := discretize.FitMDL(d)
	if err != nil {
		return nil, err
	}
	td, err := z.Apply(d)
	if err != nil {
		return nil, err
	}
	model, err := t.base.Fit(td)
	if err != nil {
		return nil, err
	}
	return discretizedModel{z: z, attrs: d.Attrs, model: model}, nil
}

type discretizedModel struct {
	z     *discretize.Discretizer
	attrs []dataset.Attribute
	model mining.Classifier
}

func (m discretizedModel) Classify(values []float64) int {
	mapped := make([]float64, len(values))
	copy(mapped, values)
	for a := range m.attrs {
		if a >= len(m.z.Cuts) || len(m.z.Cuts[a]) == 0 || m.attrs[a].Type != dataset.Numeric {
			continue
		}
		if dataset.IsMissing(values[a]) {
			continue
		}
		mapped[a] = float64(binIndex(m.z.Cuts[a], values[a]))
	}
	return m.model.Classify(mapped)
}

func binIndex(cuts []float64, v float64) int {
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if cuts[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

var _ = stats.Clamp // keep the import available for quick experiments
