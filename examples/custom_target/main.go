// Custom target example: instrument YOUR OWN module and generate a
// detector for it. The target here is a little PI temperature
// controller; its Control module is instrumented at entry and exit, a
// campaign flips every bit of its state, and C4.5 learns which states
// lead the plant out of its safety envelope.
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"edem"
)

// boiler is a tiny closed-loop plant: a PI controller drives a heater
// to keep the temperature at the setpoint. A run fails when the
// temperature leaves the safety envelope.
type boiler struct{}

const (
	controlModule = "Control"
	steps         = 400
	setpoint      = 80.0
	envelope      = 25.0 // +- degrees around the setpoint after warmup
	warmup        = 150
)

type boilerOutcome struct {
	MaxDeviation float64
}

var _ edem.Target = boiler{}

func (boiler) Name() string { return "Boiler" }

func (boiler) Modules() []edem.ModuleInfo {
	return []edem.ModuleInfo{{
		Name: controlModule,
		Vars: []edem.VarDecl{
			{Name: "kp", Kind: edem.Float64Kind},
			{Name: "ki", Kind: edem.Float64Kind},
			{Name: "integral", Kind: edem.Float64Kind},
			{Name: "lastError", Kind: edem.Float64Kind},
			{Name: "command", Kind: edem.Float64Kind},
			{Name: "tick", Kind: edem.Int64Kind},
		},
	}}
}

func (boiler) TestCases(n int, seed uint64) []edem.TestCase {
	tcs := make([]edem.TestCase, n)
	for i := range tcs {
		tcs[i] = edem.TestCase{
			ID:   i,
			Seed: seed + uint64(i),
			Params: map[string]float64{
				// Ambient temperature varies per test case.
				"ambient": 15 + 5*float64(i%4),
			},
		}
	}
	return tcs
}

func (boiler) Run(tc edem.TestCase, probe edem.Probe) (any, error) {
	var (
		kp        = 4.0
		ki        = 0.15
		integral  float64
		lastError float64
		command   float64
		tick      int64
	)
	vars := []edem.VarRef{
		edem.Float64Ref("kp", &kp),
		edem.Float64Ref("ki", &ki),
		edem.Float64Ref("integral", &integral),
		edem.Float64Ref("lastError", &lastError),
		edem.Float64Ref("command", &command),
		edem.Int64Ref("tick", &tick),
	}

	temp := tc.Params["ambient"]
	out := boilerOutcome{}
	for i := 0; i < steps; i++ {
		probe.Visit(controlModule, edem.Entry, vars)
		// PI control step.
		e := setpoint - temp
		integral += e
		if integral > 500 {
			integral = 500
		}
		if integral < -500 {
			integral = -500
		}
		command = kp*e + ki*integral
		if command < 0 {
			command = 0
		}
		if command > 100 {
			command = 100
		}
		lastError = e
		tick++
		probe.Visit(controlModule, edem.Exit, vars)

		// Plant: first-order heating against ambient losses.
		temp += 0.02*command - 0.05*(temp-tc.Params["ambient"])
		if i > warmup {
			if dev := math.Abs(temp - setpoint); dev > out.MaxDeviation {
				out.MaxDeviation = dev
			}
		}
	}
	return out, nil
}

func (boiler) Failed(_ edem.TestCase, _, observed any) bool {
	o, ok := observed.(boilerOutcome)
	if !ok {
		return true
	}
	return !(o.MaxDeviation <= envelope) // NaN-safe
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec := edem.Spec{
		Dataset:        "BOILER-1",
		Module:         controlModule,
		InjectAt:       edem.Entry,
		SampleAt:       edem.Exit,
		InjectionTimes: []int{100, 200, 300},
		TestCases:      8,
		Seed:           1,
	}
	camp, err := edem.RunCampaign(context.Background(), boiler{}, spec)
	if err != nil {
		return err
	}
	fmt.Printf("campaign: %d injected runs, %d failures\n", camp.Usable(), camp.Failures())

	d, err := edem.Preprocess(context.Background(), camp)
	if err != nil {
		return err
	}
	opts := edem.DefaultOptions()
	cv, err := edem.Baseline(context.Background(), d, opts)
	if err != nil {
		return err
	}
	fmt.Printf("baseline C4.5: TPR=%.4f FPR=%.2e AUC=%.4f Comp=%.1f\n",
		cv.MeanTPR, cv.MeanFPR, cv.MeanAUC, cv.MeanComp)

	t, err := edem.C45().FitTree(d)
	if err != nil {
		return err
	}
	pred, err := edem.PredicateFromTree(t, 1, spec.Dataset)
	if err != nil {
		return err
	}
	fmt.Printf("\ndetector predicate for the controller's exit point:\n%s", pred)
	return nil
}
