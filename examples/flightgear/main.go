// FlightGear example: reproduce the paper's hardest and easiest
// FlightGear datasets side by side. The Gear module (FG-A2) exposes
// flight-phase state and learns a near-complete detector; the Mass
// module (FG-B1) hides the wind conditions its failures depend on, so
// its completeness plateaus — the paper's central observation about
// implementation constraints on perfect detectors.
package main

import (
	"context"
	"fmt"
	"log"

	"edem"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	opts := edem.DefaultOptions()

	for _, id := range []string{"FG-A2", "FG-B1"} {
		camp, err := edem.Campaign(ctx, id, opts)
		if err != nil {
			return err
		}
		d, err := edem.Preprocess(ctx, camp)
		if err != nil {
			return err
		}
		cv, err := edem.Baseline(ctx, d, opts)
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d states (%d failure-inducing)\n", id, d.Len(), camp.Failures())
		fmt.Printf("  baseline C4.5: TPR=%.4f FPR=%.2e AUC=%.4f Comp=%.1f\n",
			cv.MeanTPR, cv.MeanFPR, cv.MeanAUC, cv.MeanComp)
	}

	// Figure 2: induce a tree on the Gear dataset and read it as a
	// detection predicate.
	camp, err := edem.Campaign(ctx, "FG-A2", opts)
	if err != nil {
		return err
	}
	d, err := edem.Preprocess(ctx, camp)
	if err != nil {
		return err
	}
	t, err := edem.C45().FitTree(d)
	if err != nil {
		return err
	}
	fmt.Printf("\ndecision tree for FG-A2 (%d nodes, depth %d):\n%s\n", t.Size(), t.Depth(), t)

	pred, err := edem.PredicateFromTree(t, 1, "FG-A2")
	if err != nil {
		return err
	}
	fmt.Printf("\nas a runtime assertion for the Gear module exit point:\n%s", pred)
	return nil
}
