// Quickstart: the complete methodology on one bundled dataset at a
// small scale — fault injection, preprocessing, baseline induction,
// refinement and predicate extraction in under a minute.
package main

import (
	"context"
	"fmt"
	"log"

	"edem"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	opts := edem.DefaultOptions()
	opts.TestCases = 5 // scale the campaign down for a quick demo
	opts.BitStride = 4

	// A small refinement grid: one point per treatment family.
	grid := []edem.SamplingConfig{
		{Kind: edem.Undersampling, Percent: 50},
		{Kind: edem.Oversampling, Percent: 300},
		{Kind: edem.Smote, Percent: 300, K: 5},
	}

	fmt.Println("Running the 4-step methodology on MG-B1 (Mp3Gain, RGain module)...")
	rep, err := edem.RunMethodology(context.Background(), "MG-B1", grid, opts)
	if err != nil {
		return err
	}

	fmt.Printf("\ncampaign: %d sampled states, %d failure-inducing\n", rep.Instances, rep.Failures)
	fmt.Printf("baseline C4.5 (10-fold CV):  TPR=%.4f FPR=%.2e AUC=%.4f (%.1f nodes)\n",
		rep.Baseline.MeanTPR, rep.Baseline.MeanFPR, rep.Baseline.MeanAUC, rep.Baseline.MeanComp)
	fmt.Printf("refined   (S=%s, N=%s):  TPR=%.4f FPR=%.2e AUC=%.4f (%.1f nodes)\n",
		rep.Refined.Best.Label(), rep.Refined.Best.KLabel(),
		rep.Refined.BestCV.MeanTPR, rep.Refined.BestCV.MeanFPR,
		rep.Refined.BestCV.MeanAUC, rep.Refined.BestCV.MeanComp)

	fmt.Printf("\ninduced decision tree (%d nodes):\n%s\n", rep.Tree.Size(), rep.Tree)
	fmt.Printf("\nextracted detector predicate:\n%s\n", rep.Predicate)

	// Deploy the predicate as a runtime assertion and repeat the fault
	// injection experiments (paper §VII-D).
	val, err := edem.ValidateDetector(context.Background(), rep.ID, rep.Predicate, opts)
	if err != nil {
		return err
	}
	fmt.Printf("re-validation across %d repeated injected runs: TPR=%.4f FPR=%.2e\n",
		val.Runs, val.Counts.TPR(), val.Counts.FPR())
	return nil
}
