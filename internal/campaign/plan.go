package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strings"

	"edem/internal/propane"
)

// Plan is the deterministic sharded work plan of one campaign: the
// canonical job enumeration of the injection space (propane.Spec.Jobs)
// cut into contiguous shards, plus a content hash that names the plan.
//
// Two plans with the same hash enumerate byte-for-byte the same work in
// the same order, so a journal written under one can be resumed under
// the other. The hash covers everything that determines the records —
// target identity, module interface, spec parameters, the generated
// test-case contents, job count and shard boundaries — and deliberately
// excludes execution knobs that do not (worker budget, timeouts, retry
// policy, the fork fast path).
//
// The hash is layered: each test case owns one contiguous Section of
// the enumeration with its own content sub-hash, and the plan hash
// folds the section sub-hashes in. A spec or target change that alters
// only some test cases therefore changes only those sections'
// sub-hashes, which is what lets incremental resume (Config.
// Incremental) invalidate exactly the affected shards instead of
// refusing the whole journal.
type Plan struct {
	Spec   propane.Spec
	Target string
	Module propane.ModuleInfo
	Jobs   []propane.Job
	// Sections are the per-test-case slices of the enumeration, in
	// test-case order; each carries the sub-hash of everything that
	// determines its records.
	Sections []Section
	// Shards is the effective shard count after clamping to [1, len(Jobs)].
	Shards int
	// Hash is the hex SHA-256 of the canonical plan description.
	Hash string
}

// Section is the contiguous job range [Lo, Hi) of one test case, with
// the content sub-hash that determines its records: the target and
// module identity, the result-determining spec parameters, and the
// generated test case itself (ID, seed and parameters). Two sections
// with equal (Lo, Hi, Hash) produce byte-for-byte the same records at
// the same plan positions, whatever else changed around them.
type Section struct {
	TC int
	Lo int
	Hi int
	// Hash is the hex SHA-256 section sub-hash.
	Hash string
}

// planVersion is bumped whenever the canonical description or the
// journal schema changes incompatibly, invalidating older journals.
// v2 added per-section sub-hashes (and with them test-case contents)
// to the plan hash. v3 added the fault-model axis — but only plans
// with a non-transient fault describe (and hash) themselves as v3:
// the default transient model emits the v2 canonical text with no
// fault lines, byte-identical to pre-fault-model plans, so every
// existing journal keeps its hash and resumes unchanged (see
// Plan.version).
const (
	planVersion       = 3
	planVersionLegacy = 2
)

// version selects the canonical-description version the plan hashes
// and journals under: the legacy v2 for the default transient fault
// model, v3 otherwise.
func (p *Plan) version() int {
	if p.Spec.Fault.IsTransient() {
		return planVersionLegacy
	}
	return planVersion
}

// NewPlan resolves spec against target and builds the sharded work
// plan. shards <= 0 selects a default that keeps shards around
// defaultShardJobs jobs each — small enough that a killed run loses
// little work, large enough that checkpoint appends stay rare.
func NewPlan(target propane.Target, spec propane.Spec, shards int) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mod, ok := propane.Module(target, spec.Module)
	if !ok {
		return nil, fmt.Errorf("%w: %q in %q", propane.ErrModuleNotFound, spec.Module, target.Name())
	}
	jobs := spec.Jobs(mod)
	if len(jobs) == 0 {
		return nil, fmt.Errorf("campaign: plan for %s has no jobs", spec.Dataset)
	}
	tcs := target.TestCases(spec.TestCases, spec.Seed)
	if len(tcs) < spec.TestCases {
		return nil, fmt.Errorf("campaign: target generated %d test cases, plan needs %d", len(tcs), spec.TestCases)
	}
	if shards <= 0 {
		shards = (len(jobs) + defaultShardJobs - 1) / defaultShardJobs
	}
	if shards > len(jobs) {
		shards = len(jobs)
	}
	if shards < 1 {
		shards = 1
	}
	p := &Plan{
		Spec:   spec,
		Target: target.Name(),
		Module: mod,
		Jobs:   jobs,
		Shards: shards,
	}
	p.Sections = p.sections(tcs)
	p.Hash = p.hash()
	return p, nil
}

// defaultShardJobs sizes auto-sharded plans: ~256 injected runs per
// checkpoint.
const defaultShardJobs = 256

// sections cuts the canonical enumeration into per-test-case ranges.
// Spec.Jobs is test-case-major, so each test case owns one contiguous
// block of len(Jobs)/TestCases jobs.
func (p *Plan) sections(tcs []propane.TestCase) []Section {
	per := len(p.Jobs) / p.Spec.TestCases
	out := make([]Section, p.Spec.TestCases)
	for tc := range out {
		out[tc] = Section{
			TC:   tc,
			Lo:   tc * per,
			Hi:   (tc + 1) * per,
			Hash: p.sectionHash(tcs[tc], per),
		}
	}
	return out
}

// sectionHash computes one test case's content sub-hash. It covers the
// target and module identity, every result-determining spec parameter
// except the test-case count (so growing the suite leaves existing
// sections valid), and the generated test case itself. The section's
// position in the enumeration is deliberately excluded: it is compared
// structurally during incremental reconciliation, not hashed.
func (p *Plan) sectionHash(tc propane.TestCase, jobs int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "edem-campaign-section v%d\n", p.version())
	fmt.Fprintf(&b, "target %q\n", p.Target)
	fmt.Fprintf(&b, "module %q\n", p.Module.Name)
	for _, v := range p.Module.Vars {
		fmt.Fprintf(&b, "var %q %s\n", v.Name, v.Kind)
	}
	s := &p.Spec
	fmt.Fprintf(&b, "dataset %q\n", s.Dataset)
	fmt.Fprintf(&b, "inject %d sample %d\n", s.InjectAt, s.SampleAt)
	fmt.Fprintf(&b, "times %v\n", s.InjectionTimes)
	fmt.Fprintf(&b, "stride %d\n", s.BitStride)
	if f := s.Fault.Normalized(); !f.IsTransient() {
		fmt.Fprintf(&b, "fault %s %d %d\n", f.Model, f.Width, f.Persist)
	}
	fmt.Fprintf(&b, "tc %d seed %d\n", tc.ID, tc.Seed)
	if len(tc.Params) > 0 {
		keys := make([]string, 0, len(tc.Params))
		for k := range tc.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			// Bit patterns, not decimal formatting: params must hash
			// exactly, the same way states journal exactly.
			fmt.Fprintf(&b, "param %q %016x\n", k, math.Float64bits(tc.Params[k]))
		}
	}
	fmt.Fprintf(&b, "jobs %d\n", jobs)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// hash computes the canonical content hash of the plan by folding the
// global parameters and every section sub-hash.
func (p *Plan) hash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "edem-campaign-plan v%d\n", p.version())
	fmt.Fprintf(&b, "target %q\n", p.Target)
	fmt.Fprintf(&b, "module %q\n", p.Module.Name)
	for _, v := range p.Module.Vars {
		fmt.Fprintf(&b, "var %q %s\n", v.Name, v.Kind)
	}
	s := &p.Spec
	fmt.Fprintf(&b, "dataset %q\n", s.Dataset)
	fmt.Fprintf(&b, "inject %d sample %d\n", s.InjectAt, s.SampleAt)
	fmt.Fprintf(&b, "times %v\n", s.InjectionTimes)
	fmt.Fprintf(&b, "testcases %d seed %d stride %d\n", s.TestCases, s.Seed, s.BitStride)
	if f := s.Fault.Normalized(); !f.IsTransient() {
		fmt.Fprintf(&b, "fault %s %d %d\n", f.Model, f.Width, f.Persist)
	}
	fmt.Fprintf(&b, "jobs %d shards %d\n", len(p.Jobs), p.Shards)
	for _, sec := range p.Sections {
		fmt.Fprintf(&b, "section %d [%d,%d) %s\n", sec.TC, sec.Lo, sec.Hi, sec.Hash)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// ShardRange returns the half-open job index range [lo, hi) of shard i.
// Shards are contiguous blocks of the canonical enumeration, so
// restoring shard i is a straight copy into the records array.
func (p *Plan) ShardRange(i int) (lo, hi int) {
	return shardRange(len(p.Jobs), p.Shards, i)
}

// shardRange is ShardRange over explicit (jobs, shards) dimensions, so
// incremental reconciliation can compute the boundaries of a journaled
// plan it only knows from a manifest.
func shardRange(jobs, shards, i int) (lo, hi int) {
	size := (jobs + shards - 1) / shards
	lo = i * size
	hi = lo + size
	if hi > jobs {
		hi = jobs
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}
