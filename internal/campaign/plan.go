package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"edem/internal/propane"
)

// Plan is the deterministic sharded work plan of one campaign: the
// canonical job enumeration of the injection space (propane.Spec.Jobs)
// cut into contiguous shards, plus a content hash that names the plan.
//
// Two plans with the same hash enumerate byte-for-byte the same work in
// the same order, so a journal written under one can be resumed under
// the other. The hash covers everything that determines the records —
// target identity, module interface, spec parameters, job count and
// shard boundaries — and deliberately excludes execution knobs that do
// not (worker budget, timeouts, retry policy).
type Plan struct {
	Spec   propane.Spec
	Target string
	Module propane.ModuleInfo
	Jobs   []propane.Job
	// Shards is the effective shard count after clamping to [1, len(Jobs)].
	Shards int
	// Hash is the hex SHA-256 of the canonical plan description.
	Hash string
}

// planVersion is bumped whenever the canonical description or the
// journal schema changes incompatibly, invalidating older journals.
const planVersion = 1

// NewPlan resolves spec against target and builds the sharded work
// plan. shards <= 0 selects a default that keeps shards around
// defaultShardJobs jobs each — small enough that a killed run loses
// little work, large enough that checkpoint appends stay rare.
func NewPlan(target propane.Target, spec propane.Spec, shards int) (*Plan, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mod, ok := propane.Module(target, spec.Module)
	if !ok {
		return nil, fmt.Errorf("%w: %q in %q", propane.ErrModuleNotFound, spec.Module, target.Name())
	}
	jobs := spec.Jobs(mod)
	if len(jobs) == 0 {
		return nil, fmt.Errorf("campaign: plan for %s has no jobs", spec.Dataset)
	}
	if shards <= 0 {
		shards = (len(jobs) + defaultShardJobs - 1) / defaultShardJobs
	}
	if shards > len(jobs) {
		shards = len(jobs)
	}
	if shards < 1 {
		shards = 1
	}
	p := &Plan{
		Spec:   spec,
		Target: target.Name(),
		Module: mod,
		Jobs:   jobs,
		Shards: shards,
	}
	p.Hash = p.hash()
	return p, nil
}

// defaultShardJobs sizes auto-sharded plans: ~256 injected runs per
// checkpoint.
const defaultShardJobs = 256

// hash computes the canonical content hash of the plan.
func (p *Plan) hash() string {
	var b strings.Builder
	fmt.Fprintf(&b, "edem-campaign-plan v%d\n", planVersion)
	fmt.Fprintf(&b, "target %q\n", p.Target)
	fmt.Fprintf(&b, "module %q\n", p.Module.Name)
	for _, v := range p.Module.Vars {
		fmt.Fprintf(&b, "var %q %s\n", v.Name, v.Kind)
	}
	s := &p.Spec
	fmt.Fprintf(&b, "dataset %q\n", s.Dataset)
	fmt.Fprintf(&b, "inject %d sample %d\n", s.InjectAt, s.SampleAt)
	fmt.Fprintf(&b, "times %v\n", s.InjectionTimes)
	fmt.Fprintf(&b, "testcases %d seed %d stride %d\n", s.TestCases, s.Seed, s.BitStride)
	fmt.Fprintf(&b, "jobs %d shards %d\n", len(p.Jobs), p.Shards)
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// ShardRange returns the half-open job index range [lo, hi) of shard i.
// Shards are contiguous blocks of the canonical enumeration, so
// restoring shard i is a straight copy into the records array.
func (p *Plan) ShardRange(i int) (lo, hi int) {
	size := (len(p.Jobs) + p.Shards - 1) / p.Shards
	lo = i * size
	hi = lo + size
	if hi > len(p.Jobs) {
		hi = len(p.Jobs)
	}
	if lo > hi {
		lo = hi
	}
	return lo, hi
}
