// Package campaign is the fault-tolerant execution engine for Step 1 of
// the paper's methodology: it turns a fault-injection spec into a
// deterministic sharded work plan, executes the shards on the shared
// internal/parallel scheduler with per-run timeouts, bounded retry with
// exponential backoff and panic/hang isolation, and checkpoints each
// completed shard to an append-only journal so a killed campaign
// resumes from its last checkpoint instead of starting over.
//
// The engine guarantees bit-identity: a campaign killed at any point
// and resumed (any number of times, with any worker budget or shard
// scheduling) produces exactly the records an uninterrupted run
// produces, in the same order. The argument, spelled out in DESIGN.md
// §11, rests on three facts: the work plan is a pure function of
// (target, spec) enumerated in one canonical order (propane.Spec.Jobs);
// shards are contiguous ranges of that order, restored by index; and
// journaled states are stored as IEEE-754 bit patterns, so reloading a
// record is exact. Persistently failing cells (hangs past the timeout,
// engine panics, golden-run failures) degrade to skip-and-record — the
// cell keeps an unsampled placeholder record and a SkippedCell reason
// in the result and journal — rather than aborting the campaign.
//
// Ownership and concurrency: Run is safe to call concurrently for
// distinct journal directories; a single journal directory must be
// owned by one Run at a time (the engine does not lock the directory).
// The returned Result and Campaign are owned by the caller and
// immutable thereafter. Internally, shard workers share only the
// journal (mutex-guarded), atomic counters and disjoint slices of the
// records array.
package campaign

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"edem/internal/parallel"
	"edem/internal/propane"
	"edem/internal/telemetry"
)

// Config tunes the engine. The zero value is a sensible in-memory
// configuration: no journal, auto-sized shards, a generous per-run
// timeout and two retries.
type Config struct {
	// Journal is the checkpoint directory; empty disables journaling
	// (the campaign still shards, times out, retries and skips, it just
	// cannot resume).
	Journal string
	// Resume permits continuing an existing journal. When false, an
	// existing journal is an error (ErrJournalExists): refusing to
	// append to a journal the caller did not know about prevents
	// accidentally mixing campaigns.
	Resume bool
	// Incremental relaxes the resume plan-identity check to a
	// per-section diff: when the journal's manifest records a different
	// plan hash, shards whose sections (test-case content sub-hashes and
	// job ranges) are unchanged are kept, everything else is invalidated
	// and re-run, and the journal is rewritten under the new plan —
	// instead of refusing the whole journal with ErrPlanMismatch.
	// Implies nothing when the hashes already match (a normal resume),
	// except that stray checkpoint lines of superseded plans are dropped
	// rather than treated as cross-wiring. Requires Resume.
	Incremental bool
	// Shards is the number of checkpoint shards; <= 0 auto-sizes to
	// ~256 jobs per shard. On resume the manifest's shard count wins,
	// so a resumed campaign may ignore this field.
	Shards int
	// Timeout bounds one attempt of one run (golden or injected);
	// <= 0 disables the watchdog. A run that exceeds it is abandoned
	// (its goroutine is leaked — Go cannot kill it — and its result
	// discarded) and the attempt counts as an infrastructure failure.
	Timeout time.Duration
	// MaxRetries is the number of additional attempts after a failed
	// one before the cell is skipped; < 0 means none.
	MaxRetries int
	// Backoff is the delay before the first retry, doubling per
	// attempt and capped at 32×; <= 0 defaults to 50ms.
	Backoff time.Duration
	// OnCheckpoint, when non-nil, is called after every shard
	// checkpoint with the number of completed shards (including
	// restored ones) and the total. Calls are serialised but may come
	// from any worker goroutine.
	OnCheckpoint func(done, total int)
	// Fork enables the golden-state forking fast path for targets that
	// implement propane.Forkable; other targets fall back to the slow
	// path transparently. Fork is an execution knob: it does not enter
	// the plan hash, and fast-path records are bit-identical to slow-
	// path records, so a journal may be written with one setting and
	// resumed with the other.
	Fork bool
}

func (c *Config) backoff() time.Duration {
	if c.Backoff <= 0 {
		return 50 * time.Millisecond
	}
	return c.Backoff
}

// SkippedCell records one cell of the injection space that the engine
// gave up on: the job coordinates, the reason of the final failed
// attempt, and how many attempts were made. Skipped cells keep an
// unsampled placeholder record in the campaign (so datasets simply
// lack that instance) and are surfaced in Result.Skipped and the
// journal rather than failing the campaign.
type SkippedCell struct {
	Job      int    `json:"job"`
	TC       int    `json:"tc"`
	Var      string `json:"var"`
	Bit      int    `json:"bit"`
	Time     int    `json:"t"`
	Attempts int    `json:"attempts"`
	Reason   string `json:"reason"`
}

// Result is the outcome of one engine invocation.
type Result struct {
	// Campaign holds the assembled records in canonical job order,
	// bit-identical to an uninterrupted propane.Run of the same spec.
	Campaign *propane.Campaign
	// PlanHash names the executed plan (the journal's identity).
	PlanHash string
	// Shards is the total shard count of the plan.
	Shards int
	// ShardsRestored counts shards loaded from the journal instead of
	// executed; ShardsRun counts shards executed by this invocation.
	ShardsRestored, ShardsRun int
	// Retries counts failed attempts that were retried.
	Retries int
	// TornTails counts truncated trailing journal lines (the torn tail
	// of a killed append) that were recovered — i.e. discarded, their
	// shards re-run — on resume.
	TornTails int
	// ShardsInvalidated and ShardsReused report the incremental-resume
	// diff: journaled shards dropped because a section sub-hash changed,
	// and journaled shards carried over to the new plan. Both zero
	// outside Config.Incremental.
	ShardsInvalidated, ShardsReused int
	// Skipped lists the cells the engine gave up on, in job order.
	Skipped []SkippedCell
	// Fork aggregates fast-path statistics over the whole campaign:
	// restored shards contribute their journaled stats, fresh shards
	// what actually happened this invocation. Snapshots is live-only
	// (golden columns are rebuilt per invocation, not journaled). All
	// zero when Config.Fork was off or the target is not Forkable.
	Fork propane.ForkStats
}

// Run executes (or resumes) the campaign described by spec against
// target. See the package comment for the guarantees; see propane.Run
// for the single-shot reference implementation the results are
// bit-identical to.
//
// The run is recorded as a "campaign" telemetry phase. On top of the
// per-run campaign.* counters shared with propane.Run it reports
// campaign.shards_run, campaign.shards_restored, campaign.retries and
// campaign.cells_skipped, which is how resume savings and degraded
// cells show up in a metrics snapshot.
func Run(ctx context.Context, target propane.Target, spec propane.Spec, cfg Config) (*Result, error) {
	ctx, span := telemetry.StartSpan(ctx, "campaign")
	defer span.End()

	prep, err := preparePlan(target, spec, cfg)
	if err != nil {
		return nil, err
	}
	plan, restored, jnl := prep.plan, prep.restored, prep.jnl
	if jnl != nil {
		defer jnl.close()
	}

	reg := telemetry.FromContext(ctx)
	e := &engine{
		cfg:     cfg,
		plan:    plan,
		target:  target,
		jnl:     jnl,
		reg:     reg,
		metrics: propane.NewRunMetrics(reg).WithFault(plan.Spec.Fault),
	}
	e.done.Store(int64(len(restored)))

	records := make([]propane.Record, len(plan.Jobs))
	var skipped []SkippedCell
	var forkTotals propane.ForkStats
	for shard, cp := range restored {
		lo, hi := plan.ShardRange(shard)
		if len(cp.Records) != hi-lo {
			return nil, fmt.Errorf("campaign: checkpoint for shard %d has %d records, want %d",
				shard, len(cp.Records), hi-lo)
		}
		for i, rj := range cp.Records {
			rec, err := decodeRecord(rj)
			if err != nil {
				return nil, err
			}
			records[lo+i] = rec
		}
		skipped = append(skipped, cp.Skipped...)
		if cp.Fork != nil {
			forkTotals.Forked += cp.Fork.Forked
			forkTotals.Converged += cp.Fork.Converged
			forkTotals.MemoHits += cp.Fork.MemoHits
			forkTotals.Fallbacks += cp.Fork.Fallbacks
		}
	}

	var pending []int
	for s := 0; s < plan.Shards; s++ {
		if _, ok := restored[s]; !ok {
			pending = append(pending, s)
		}
	}

	if len(pending) > 0 {
		if err := e.prepareGoldens(ctx); err != nil {
			return nil, err
		}
		if cfg.Fork {
			if ft, ok := target.(propane.Forkable); ok {
				e.fork = propane.NewForkRunner(ft, plan.Spec, plan.Module)
			}
		}
		fresh, err := e.runShards(ctx, pending, records)
		if err != nil {
			return nil, err
		}
		skipped = append(skipped, fresh...)
	}

	// A fully checkpointed journal seals into its canonical form: one
	// line per shard in shard order, duplicates and torn tails dropped.
	// Sealed journals are byte-identical across execution paths (local,
	// resumed, fabric), which is what the cross-machine bit-identity
	// guarantee is pinned against.
	if jnl != nil {
		if err := sealJournal(cfg.Journal, plan.Hash, plan.Shards); err != nil {
			return nil, fmt.Errorf("campaign: seal journal: %w", err)
		}
	}

	sortSkipped(skipped)
	e.reg.Counter("campaign.shards_restored").Add(int64(len(restored)))
	e.reg.Counter("campaign.shards_run").Add(e.shardsRun.Load())
	e.reg.Counter("campaign.retries").Add(e.retries.Load())
	e.reg.Counter("campaign.cells_skipped").Add(int64(len(skipped)))
	e.reg.Counter("campaign.torn_tails").Add(int64(prep.torn))
	e.reg.Counter("campaign.shards_invalidated").Add(int64(prep.invalidated))
	e.reg.Counter("campaign.shards_reused").Add(int64(prep.reused))
	if e.fork != nil {
		// Telemetry reports this invocation's fast-path events; the
		// Result's Fork field aggregates the whole campaign including
		// restored shards.
		e.fork.Report(e.reg)
		live := e.fork.Stats()
		forkTotals.Snapshots = live.Snapshots
		forkTotals.Forked += live.Forked
		forkTotals.Converged += live.Converged
		forkTotals.MemoHits += live.MemoHits
		forkTotals.Fallbacks += live.Fallbacks
	}

	varNames := make([]string, len(plan.Module.Vars))
	for i, v := range plan.Module.Vars {
		varNames[i] = v.Name
	}
	return &Result{
		Campaign:          propane.NewCampaign(spec, plan.Target, varNames, records, e.goldens),
		PlanHash:          plan.Hash,
		Shards:            plan.Shards,
		ShardsRestored:    len(restored),
		ShardsRun:         int(e.shardsRun.Load()),
		Retries:           int(e.retries.Load()),
		TornTails:         prep.torn,
		ShardsInvalidated: prep.invalidated,
		ShardsReused:      prep.reused,
		Skipped:           skipped,
		Fork:              forkTotals,
	}, nil
}

// prepState is what preparePlan hands to Run: the resolved plan, the
// shards restored from the journal, the open journal (nil when
// journaling is off), and the resume bookkeeping that feeds telemetry
// and the Result.
type prepState struct {
	plan     *Plan
	restored map[int]checkpoint
	jnl      *journal
	// torn counts truncated trailing lines discarded on resume;
	// invalidated and reused count the incremental diff (journaled
	// shards dropped vs carried over).
	torn, invalidated, reused int
}

// preparePlan builds the plan and reconciles it with any existing
// journal: a fresh directory gets a manifest, an existing one is
// validated (hash match, Resume set) and its completed shards are
// loaded. Under Config.Incremental a hash mismatch triggers the
// per-section diff (see reconcileIncremental) instead of failing.
// With no journal configured it returns a bare plan.
func preparePlan(target propane.Target, spec propane.Spec, cfg Config) (*prepState, error) {
	if cfg.Incremental && !cfg.Resume {
		return nil, fmt.Errorf("campaign: Incremental requires Resume")
	}
	if cfg.Journal == "" {
		plan, err := NewPlan(target, spec, cfg.Shards)
		if err != nil {
			return nil, err
		}
		return &prepState{plan: plan, restored: map[int]checkpoint{}}, nil
	}
	m, exists, err := readManifest(cfg.Journal)
	if err != nil {
		return nil, err
	}
	if !exists {
		plan, err := NewPlan(target, spec, cfg.Shards)
		if err != nil {
			return nil, err
		}
		jnl, err := createJournal(cfg.Journal, plan)
		if err != nil {
			return nil, err
		}
		return &prepState{plan: plan, restored: map[int]checkpoint{}, jnl: jnl}, nil
	}
	if !cfg.Resume {
		return nil, fmt.Errorf("%w: %s", ErrJournalExists, cfg.Journal)
	}
	// The manifest's shard count wins over cfg.Shards: shard boundaries
	// are part of the plan identity, and the journal was cut with these.
	plan, err := NewPlan(target, spec, m.Shards)
	if err != nil {
		return nil, err
	}
	if m.Plan != plan.Hash {
		if !cfg.Incremental {
			return nil, fmt.Errorf("%w: journal %s has plan %.12s, current spec yields %.12s",
				ErrPlanMismatch, cfg.Journal, m.Plan, plan.Hash)
		}
		return prepareIncremental(target, spec, cfg, m)
	}
	// On the hash-match path, Incremental additionally tolerates (and
	// purges) stray lines of superseded plans: a kill between the
	// manifest and checkpoint rewrites of an incremental upgrade leaves
	// the new manifest over the old plan's lines.
	restored, torn, foreign, err := readCheckpoints(cfg.Journal, plan.Hash, cfg.Incremental)
	if err != nil {
		return nil, err
	}
	// A torn tail must be compacted away before reopening for append:
	// the log ends mid-line, and appending after it would fuse the next
	// checkpoint onto the torn fragment, losing both.
	if foreign > 0 || torn > 0 {
		if err := writeCheckpointLog(cfg.Journal, restored); err != nil {
			return nil, err
		}
	}
	jnl, err := openJournal(cfg.Journal)
	if err != nil {
		return nil, err
	}
	st := &prepState{plan: plan, restored: restored, jnl: jnl, torn: torn}
	if cfg.Incremental {
		st.invalidated = foreign
		st.reused = len(restored)
	}
	return st, nil
}

// engine carries the shared state of one Run invocation.
type engine struct {
	cfg    Config
	plan   *Plan
	target propane.Target
	jnl    *journal
	reg    *telemetry.Registry

	// fork is the golden-state fast path, nil unless Config.Fork is set
	// and the target is Forkable.
	fork *propane.ForkRunner

	metrics *propane.RunMetrics

	tcs     []propane.TestCase
	goldens []any
	// goldenErr[i] non-empty marks test case i as persistently failing
	// its golden run; every cell touching it is skipped with the reason.
	goldenErr []string

	done      atomic.Int64 // checkpointed shards, restored + run
	shardsRun atomic.Int64
	retries   atomic.Int64

	cpMu sync.Mutex // serialises OnCheckpoint callbacks
}

// prepareGoldens generates the test cases and executes their fault-free
// runs under the same timeout/retry regime as injected runs. A test
// case whose golden run fails persistently poisons only its own cells.
func (e *engine) prepareGoldens(ctx context.Context) error {
	e.tcs = e.target.TestCases(e.plan.Spec.TestCases, e.plan.Spec.Seed)
	if len(e.tcs) < e.plan.Spec.TestCases {
		return fmt.Errorf("campaign: target generated %d test cases, spec needs %d", len(e.tcs), e.plan.Spec.TestCases)
	}
	e.goldens = make([]any, len(e.tcs))
	e.goldenErr = make([]string, len(e.tcs))
	e.reg.Counter("campaign.golden_runs").Add(int64(len(e.tcs)))
	return parallel.ForEach(ctx, len(e.tcs), e.plan.Spec.Workers, func(i int) error {
		out, attempts, err := e.attempt(ctx, func() (any, error) {
			return propane.RunGolden(e.target, e.tcs[i])
		})
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if err != nil {
			e.goldenErr[i] = fmt.Sprintf("golden run failed after %d attempts: %v", attempts, err)
			return nil
		}
		e.goldens[i] = out
		return nil
	})
}

// runShards executes the pending shards on the shared scheduler. Jobs
// within a shard run serially so a shard is one unit of loss on kill;
// parallelism comes from running shards concurrently, which is ample
// because plans have many more shards than workers.
func (e *engine) runShards(ctx context.Context, pending []int, records []propane.Record) ([]SkippedCell, error) {
	var mu sync.Mutex
	var skipped []SkippedCell
	err := parallel.ForEach(ctx, len(pending), e.plan.Spec.Workers, func(k int) error {
		shard := pending[k]
		cp, err := e.runShard(ctx, shard, records)
		if err != nil {
			return err
		}
		if e.jnl != nil {
			if err := e.jnl.append(cp); err != nil {
				return fmt.Errorf("campaign: checkpoint shard %d: %w", shard, err)
			}
		}
		e.shardsRun.Add(1)
		done := int(e.done.Add(1))
		if e.cfg.OnCheckpoint != nil {
			e.cpMu.Lock()
			e.cfg.OnCheckpoint(done, e.plan.Shards)
			e.cpMu.Unlock()
		}
		if len(cp.Skipped) > 0 {
			mu.Lock()
			skipped = append(skipped, cp.Skipped...)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("campaign: interrupted (journal is resumable): %w", err)
	}
	return skipped, nil
}

// runShard executes every cell of one shard serially and returns its
// checkpoint. When records is non-nil the assembled records are also
// written into their plan positions. Goldens must be prepared first.
func (e *engine) runShard(ctx context.Context, shard int, records []propane.Record) (checkpoint, error) {
	lo, hi := e.plan.ShardRange(shard)
	cp := checkpoint{Plan: e.plan.Hash, Shard: shard, Records: make([]recordJSON, 0, hi-lo)}
	var fs forkShardStats
	for idx := lo; idx < hi; idx++ {
		rec, oc, skip, err := e.runCell(ctx, idx)
		if err != nil {
			return checkpoint{}, err
		}
		if e.fork != nil {
			fs.observe(oc)
		}
		if records != nil {
			records[idx] = rec
		}
		cp.Records = append(cp.Records, encodeRecord(rec))
		if skip != nil {
			cp.Skipped = append(cp.Skipped, *skip)
		}
	}
	if e.fork != nil {
		cp.Fork = &fs
	}
	return cp, nil
}

// cellResult pairs a cell's record with how it was resolved, so the
// shard loop can attribute fast-path statistics per shard.
type cellResult struct {
	rec propane.Record
	oc  propane.ForkOutcome
}

// runCell executes one cell of the injection space with retry, timeout
// and panic isolation, trying the fork fast path first when enabled.
// The returned error is only ever a context error: infrastructure
// failures degrade to a skip, injected-run crashes are data.
func (e *engine) runCell(ctx context.Context, idx int) (propane.Record, propane.ForkOutcome, *SkippedCell, error) {
	j := e.plan.Jobs[idx]
	placeholder := propane.Record{
		TestCase:      e.tcs[j.TC].ID,
		Var:           e.plan.Module.Vars[j.Var].Name,
		Bit:           j.Bit,
		InjectionTime: j.Time,
	}
	if reason := e.goldenErr[j.TC]; reason != "" {
		return placeholder, propane.ForkFellBack, e.skipCell(idx, j, 0, reason), nil
	}
	var runStart time.Time
	if e.metrics.Enabled() {
		runStart = time.Now()
	}
	out, attempts, err := e.attempt(ctx, func() (any, error) {
		if e.fork != nil {
			if rec, oc := e.fork.RunJob(j.TC, e.tcs[j.TC], e.goldens[j.TC], j); oc.FromFork() {
				return cellResult{rec, oc}, nil
			}
		}
		return cellResult{propane.RunJob(e.target, e.plan.Spec, e.plan.Module, e.tcs[j.TC], e.goldens[j.TC], j), propane.ForkFellBack}, nil
	})
	if ctx.Err() != nil {
		return placeholder, propane.ForkFellBack, nil, ctx.Err()
	}
	if err != nil {
		return placeholder, propane.ForkFellBack, e.skipCell(idx, j, attempts, err.Error()), nil
	}
	cr := out.(cellResult)
	if e.metrics.Enabled() {
		e.metrics.Observe(cr.rec, time.Since(runStart))
	}
	return cr.rec, cr.oc, nil, nil
}

func (e *engine) skipCell(idx int, j propane.Job, attempts int, reason string) *SkippedCell {
	return &SkippedCell{
		Job:      idx,
		TC:       e.tcs[j.TC].ID,
		Var:      e.plan.Module.Vars[j.Var].Name,
		Bit:      j.Bit,
		Time:     j.Time,
		Attempts: attempts,
		Reason:   reason,
	}
}

// attempt runs fn under the per-attempt watchdog, retrying failed
// attempts with exponential backoff up to cfg.MaxRetries extra times.
// fn panics are converted to errors; a context cancellation aborts
// immediately (callers check ctx.Err to distinguish abort from skip).
func (e *engine) attempt(ctx context.Context, fn func() (any, error)) (out any, attempts int, err error) {
	backoff := e.cfg.backoff()
	maxRetries := e.cfg.MaxRetries
	if maxRetries < 0 {
		maxRetries = 0
	}
	for attempts = 1; ; attempts++ {
		out, err = e.watchdog(ctx, fn)
		if err == nil || ctx.Err() != nil {
			return out, attempts, err
		}
		if attempts > maxRetries {
			return nil, attempts, err
		}
		e.retries.Add(1)
		delay := backoff << uint(attempts-1)
		if max := backoff << 5; delay > max {
			delay = max
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return nil, attempts, ctx.Err()
		}
	}
}

// watchdog runs one attempt of fn, converting panics to errors and
// enforcing cfg.Timeout. On timeout the attempt's goroutine is
// abandoned, not killed — Go offers no preemptive kill, so a truly hung
// target leaks one goroutine per abandoned attempt. That is the
// documented cost of in-process isolation (process-level isolation à la
// ZOFI is the escalation path; DESIGN.md §11).
func (e *engine) watchdog(ctx context.Context, fn func() (any, error)) (any, error) {
	safe := func() (out any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("campaign: engine panic: %v", r)
			}
		}()
		return fn()
	}
	if e.cfg.Timeout <= 0 {
		return safe()
	}
	type result struct {
		out any
		err error
	}
	ch := make(chan result, 1)
	go func() {
		out, err := safe()
		ch <- result{out, err}
	}()
	timer := time.NewTimer(e.cfg.Timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.out, r.err
	case <-timer.C:
		return nil, fmt.Errorf("campaign: run exceeded timeout %v", e.cfg.Timeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func sortSkipped(cells []SkippedCell) {
	sort.Slice(cells, func(i, k int) bool { return cells[i].Job < cells[k].Job })
}
