package campaign_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"edem/internal/campaign"
	"edem/internal/propane"
)

// mutableTarget is fakeTarget with a per-test-case seed bump, so a test
// can change the content hash of one section without touching the rest
// of the suite — the "someone edited test case N" scenario incremental
// resume exists for.
type mutableTarget struct {
	*fakeTarget
	bump map[int]uint64
}

func (m *mutableTarget) TestCases(n int, seed uint64) []propane.TestCase {
	tcs := m.fakeTarget.TestCases(n, seed)
	for i := range tcs {
		tcs[i].Seed += m.bump[i]
	}
	return tcs
}

// TestIncrementalInvalidatesOnlyChangedSections mutates one test case
// of a four-case spec and checks that an incremental resume re-runs
// exactly the shard owning that section, reuses the rest, and seals a
// journal byte-identical to a from-scratch run of the mutated spec.
func TestIncrementalInvalidatesOnlyChangedSections(t *testing.T) {
	spec := fakeSpec(4) // 4 sections of 65 jobs; Shards: 4 aligns shard i == section i
	dir := filepath.Join(t.TempDir(), "journal")
	if _, err := campaign.Run(context.Background(), &mutableTarget{newFakeTarget(), nil}, spec,
		campaign.Config{Journal: dir, Shards: 4}); err != nil {
		t.Fatal(err)
	}

	// Edit test case 2. A plain resume must refuse the journal; an
	// incremental resume must re-run only its shard.
	bump := map[int]uint64{2: 1000}
	if _, err := campaign.Run(context.Background(), &mutableTarget{newFakeTarget(), bump}, spec,
		campaign.Config{Journal: dir, Resume: true}); !errors.Is(err, campaign.ErrPlanMismatch) {
		t.Fatalf("plain resume after edit: err=%v, want ErrPlanMismatch", err)
	}
	res, err := campaign.Run(context.Background(), &mutableTarget{newFakeTarget(), bump}, spec,
		campaign.Config{Journal: dir, Resume: true, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsInvalidated != 1 || res.ShardsReused != 3 {
		t.Errorf("incremental: invalidated=%d reused=%d, want 1/3", res.ShardsInvalidated, res.ShardsReused)
	}
	if res.ShardsRestored != 3 || res.ShardsRun != 1 {
		t.Errorf("incremental: restored=%d run=%d, want 3/1", res.ShardsRestored, res.ShardsRun)
	}

	// The healed journal must be indistinguishable from never having
	// journaled the old plan at all.
	refDir := filepath.Join(t.TempDir(), "ref")
	ref, err := campaign.Run(context.Background(), &mutableTarget{newFakeTarget(), bump}, spec,
		campaign.Config{Journal: refDir, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, res.Campaign, ref.Campaign)
	got := readFileT(t, filepath.Join(dir, "checkpoints.jsonl"))
	want := readFileT(t, filepath.Join(refDir, "checkpoints.jsonl"))
	if !bytes.Equal(got, want) {
		t.Errorf("incremental journal differs from fresh journal (%d vs %d bytes)", len(got), len(want))
	}
}

// TestIncrementalSurvivesShardMisalignment covers sections that do not
// line up one-to-one with shards: 2 shards over 4 sections means the
// edited section invalidates only the shard overlapping it.
func TestIncrementalSurvivesShardMisalignment(t *testing.T) {
	spec := fakeSpec(4)
	dir := filepath.Join(t.TempDir(), "journal")
	if _, err := campaign.Run(context.Background(), &mutableTarget{newFakeTarget(), nil}, spec,
		campaign.Config{Journal: dir, Shards: 2}); err != nil { // shard 0 = sections 0-1, shard 1 = 2-3
		t.Fatal(err)
	}
	res, err := campaign.Run(context.Background(), &mutableTarget{newFakeTarget(), map[int]uint64{3: 7}}, spec,
		campaign.Config{Journal: dir, Resume: true, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsInvalidated != 1 || res.ShardsReused != 1 {
		t.Errorf("misaligned incremental: invalidated=%d reused=%d, want 1/1", res.ShardsInvalidated, res.ShardsReused)
	}
	ref, err := propane.Run(context.Background(), &mutableTarget{newFakeTarget(), map[int]uint64{3: 7}}, spec)
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, res.Campaign, ref)
}

// TestIncrementalReusesOnSuiteGrowth grows the test suite (2 → 3 test
// cases) without editing the existing cases: section hashes exclude
// the suite size, so the old sections stay valid and — as long as the
// old shard size divides the new job count, here because shards align
// with sections — their shards are reused verbatim; only the new
// section's shard runs.
func TestIncrementalReusesOnSuiteGrowth(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	if _, err := campaign.Run(context.Background(), newFakeTarget(), fakeSpec(2),
		campaign.Config{Journal: dir, Shards: 2}); err != nil {
		t.Fatal(err)
	}
	grown := fakeSpec(3)
	res, err := campaign.Run(context.Background(), newFakeTarget(), grown,
		campaign.Config{Journal: dir, Resume: true, Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsReused != 2 || res.ShardsInvalidated != 0 {
		t.Errorf("growth: reused=%d invalidated=%d, want 2/0", res.ShardsReused, res.ShardsInvalidated)
	}
	if res.ShardsRestored != 2 || res.ShardsRun != 1 {
		t.Errorf("growth: restored=%d run=%d, want 2/1", res.ShardsRestored, res.ShardsRun)
	}
	ref, err := propane.Run(context.Background(), newFakeTarget(), grown)
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, res.Campaign, ref)
}

// TestIncrementalRequiresResume pins the flag dependency.
func TestIncrementalRequiresResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	_, err := campaign.Run(context.Background(), newFakeTarget(), fakeSpec(2),
		campaign.Config{Journal: dir, Incremental: true})
	if err == nil {
		t.Fatal("Incremental without Resume: want error, got nil")
	}
}

func readFileT(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
