package campaign

import (
	"context"
	"fmt"

	"edem/internal/propane"
	"edem/internal/telemetry"
)

// Executor runs individual shards of a plan outside the whole-campaign
// Run loop — the fabric worker's engine. It owns the prepared goldens
// and the fork fast path, so leasing a shard costs only the shard's own
// injected runs; golden preparation is paid once per Executor.
//
// An Executor is safe for concurrent RunShard calls: shards touch
// disjoint plan ranges and the underlying engine shares only immutable
// state (plan, test cases, goldens) and atomic counters.
type Executor struct {
	e *engine
}

// NewExecutor builds the plan for (target, spec), prepares the goldens
// and returns an executor ready to run any shard. Config is honoured
// for execution knobs (Shards, Timeout, MaxRetries, Backoff, Fork);
// journal fields are ignored — executors never touch disk, they hand
// encoded checkpoint lines to the caller.
func NewExecutor(ctx context.Context, target propane.Target, spec propane.Spec, cfg Config) (*Executor, error) {
	plan, err := NewPlan(target, spec, cfg.Shards)
	if err != nil {
		return nil, err
	}
	return newExecutorForPlan(ctx, target, plan, cfg)
}

// NewExecutorShards is NewExecutor with an explicit shard count taking
// precedence over cfg.Shards — the worker uses it to adopt the
// coordinator's sharding, which is part of the plan identity.
func NewExecutorShards(ctx context.Context, target propane.Target, spec propane.Spec, cfg Config, shards int) (*Executor, error) {
	plan, err := NewPlan(target, spec, shards)
	if err != nil {
		return nil, err
	}
	return newExecutorForPlan(ctx, target, plan, cfg)
}

func newExecutorForPlan(ctx context.Context, target propane.Target, plan *Plan, cfg Config) (*Executor, error) {
	reg := telemetry.FromContext(ctx)
	e := &engine{
		cfg:     cfg,
		plan:    plan,
		target:  target,
		reg:     reg,
		metrics: propane.NewRunMetrics(reg).WithFault(plan.Spec.Fault),
	}
	if err := e.prepareGoldens(ctx); err != nil {
		return nil, err
	}
	if cfg.Fork {
		if ft, ok := target.(propane.Forkable); ok {
			e.fork = propane.NewForkRunner(ft, plan.Spec, plan.Module)
		}
	}
	return &Executor{e: e}, nil
}

// Plan returns the executor's resolved plan. Callers compare its Hash
// and Shards against the coordinator's before leasing work.
func (x *Executor) Plan() *Plan { return x.e.plan }

// RunShard executes one shard and returns its canonical journal line
// (encodeCheckpointLine output). The line is byte-identical to what a
// local campaign.Run of the same plan would append for that shard,
// which is what lets the coordinator merge worker output into a journal
// indistinguishable from a local one.
func (x *Executor) RunShard(ctx context.Context, shard int) ([]byte, error) {
	if shard < 0 || shard >= x.e.plan.Shards {
		return nil, fmt.Errorf("campaign: shard %d out of range [0,%d)", shard, x.e.plan.Shards)
	}
	cp, err := x.e.runShard(ctx, shard, nil)
	if err != nil {
		return nil, err
	}
	return encodeCheckpointLine(cp)
}
