package campaign

// Incremental resume (Config.Incremental): when the journal's manifest
// records a different plan hash than the current (target, spec), diff
// the two plans section by section instead of refusing the journal.
//
// A section is one test case's contiguous job range with a content
// sub-hash covering everything that determines its records (plan.go).
// A journaled shard survives the upgrade exactly when
//
//  1. its job range under the new plan is identical to its range under
//     the journaled plan (same lo, same hi), and
//  2. every section overlapping that range kept the same (lo, hi, hash)
//     triple.
//
// Condition 1 is kept common by deriving the new shard count from the
// journaled shard *size* (ceil(newJobs/oldSize)) rather than reusing the
// old shard count: when the job count grows — e.g. test cases appended —
// boundaries of the unchanged prefix stay aligned and only the tail is
// new. Condition 2 is what FastFlip-style invalidation buys: editing one
// test case flips one section sub-hash and invalidates only the shards
// overlapping it.
//
// The upgrade rewrites the journal under the new plan: new manifest
// first (atomic rename), then a compacted checkpoint log holding the
// surviving shards re-tagged with the new plan hash. A kill between the
// two renames leaves the new manifest over old-plan lines; the next
// incremental resume hash-matches the manifest and purges the stale
// lines as foreign (readCheckpoints dropForeign), re-running their
// shards. That loses work but never correctness — first-wins dedup and
// bit-identity are keyed by plan position, and no line ever carries the
// wrong plan hash for its contents.

import (
	"edem/internal/propane"
)

// prepareIncremental handles the hash-mismatch branch of preparePlan:
// rebuild the plan with boundary-aligned shards, diff sections against
// the manifest, keep the still-valid shards and rewrite the journal
// under the new plan.
func prepareIncremental(target propane.Target, spec propane.Spec, cfg Config, m manifest) (*prepState, error) {
	// Derive the new shard count from the journaled shard size so
	// unchanged-prefix shards keep identical job ranges (condition 1).
	plan, err := NewPlan(target, spec, m.Shards)
	if err != nil {
		return nil, err
	}
	if oldSize := (m.Jobs + m.Shards - 1) / m.Shards; oldSize > 0 {
		if shards := (len(plan.Jobs) + oldSize - 1) / oldSize; shards != plan.Shards {
			plan, err = NewPlan(target, spec, shards)
			if err != nil {
				return nil, err
			}
		}
	}

	restored, torn, invalidated, reused, err := reconcileIncremental(cfg.Journal, m, plan)
	if err != nil {
		return nil, err
	}
	jnl, err := openJournal(cfg.Journal)
	if err != nil {
		return nil, err
	}
	return &prepState{
		plan:        plan,
		restored:    restored,
		jnl:         jnl,
		torn:        torn,
		invalidated: invalidated,
		reused:      reused,
	}, nil
}

// reconcileIncremental loads the journaled shards of the superseded
// plan, keeps those whose ranges and overlapping sections are unchanged
// under plan, and rewrites the journal (manifest, then checkpoint log)
// under the new plan. The kept checkpoints are returned re-tagged with
// the new plan hash, ready to restore.
func reconcileIncremental(dir string, m manifest, plan *Plan) (restored map[int]checkpoint, torn, invalidated, reused int, err error) {
	old, torn, foreign, err := readCheckpoints(dir, m.Plan, true)
	if err != nil {
		return nil, 0, 0, 0, err
	}
	invalidated = foreign // stray lines of even older plans re-run too

	valid := validSections(m.Sections, plan.Sections)
	restored = make(map[int]checkpoint, len(old))
	for s, cp := range old {
		if !shardReusable(s, m, plan, valid) {
			invalidated++
			continue
		}
		cp.Plan = plan.Hash
		restored[s] = cp
		reused++
	}

	// Manifest first: after this rename the directory claims the new
	// plan, and any old-plan lines still in the log are recognisably
	// foreign (see the file comment for the kill-between-renames story).
	if err := writeManifest(dir, newManifest(plan)); err != nil {
		return nil, 0, 0, 0, err
	}
	if err := writeCheckpointLog(dir, restored); err != nil {
		return nil, 0, 0, 0, err
	}
	return restored, torn, invalidated, reused, nil
}

// validSections indexes, by test-case index, the journaled sections
// that are unchanged in the new plan: same job range, same content
// sub-hash.
func validSections(old []manifestSection, cur []Section) map[int]bool {
	byTC := make(map[int]Section, len(cur))
	for _, s := range cur {
		byTC[s.TC] = s
	}
	valid := make(map[int]bool, len(old))
	for _, o := range old {
		if s, ok := byTC[o.TC]; ok && s.Lo == o.Lo && s.Hi == o.Hi && s.Hash == o.Hash {
			valid[o.TC] = true
		}
	}
	return valid
}

// shardReusable reports whether journaled shard s of plan m restores
// unchanged into plan: identical job range, and every overlapping
// section valid.
func shardReusable(s int, m manifest, plan *Plan, valid map[int]bool) bool {
	if s >= plan.Shards {
		return false
	}
	oldLo, oldHi := shardRange(m.Jobs, m.Shards, s)
	lo, hi := plan.ShardRange(s)
	if lo != oldLo || hi != oldHi || lo == hi {
		return false
	}
	for _, sec := range plan.Sections {
		if sec.Lo < hi && lo < sec.Hi && !valid[sec.TC] {
			return false
		}
	}
	return true
}
