package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"edem/internal/propane"
)

// Journal layout: a directory holding one manifest and one append-only
// checkpoint log.
//
//	<dir>/manifest.json      content-addressed plan description
//	<dir>/checkpoints.jsonl  one JSON line per completed shard
//
// The manifest is written once, atomically (tmp + rename), before any
// shard executes. Checkpoint lines are appended and fsynced as shards
// complete, in completion order — which varies with scheduling — so the
// log is an unordered set keyed by shard index; resume sorts it back
// into plan order. A line truncated by a kill mid-append fails to parse
// and is discarded on load: the shard it described simply re-runs.
//
// Sampled states are serialised as 16-digit hex IEEE-754 bit patterns,
// not JSON numbers: corrupted runs legitimately sample NaN and ±Inf
// (which encoding/json rejects) and bit patterns round-trip exactly,
// which the resume bit-identity guarantee depends on.
const (
	manifestName    = "manifest.json"
	checkpointsName = "checkpoints.jsonl"
)

// ErrJournalExists reports an existing journal opened without Resume.
var ErrJournalExists = errors.New("campaign: journal already exists (pass resume to continue it)")

// ErrPlanMismatch reports a journal whose manifest describes a
// different plan than the one being run.
var ErrPlanMismatch = errors.New("campaign: journal belongs to a different plan")

// manifest is the on-disk description of a plan.
type manifest struct {
	Version  int               `json:"version"`
	Plan     string            `json:"plan"`
	Dataset  string            `json:"dataset"`
	Target   string            `json:"target"`
	Module   string            `json:"module"`
	Vars     []manifestVar     `json:"vars"`
	Jobs     int               `json:"jobs"`
	Shards   int               `json:"shards"`
	Spec     manifestSpec      `json:"spec"`
	Sections []manifestSection `json:"sections,omitempty"`
}

type manifestVar struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// manifestSection records one plan section's job range and content
// sub-hash — the inputs of incremental invalidation: a journaled shard
// survives a spec change exactly when every section it overlaps kept
// the same (lo, hi, hash) triple.
type manifestSection struct {
	TC   int    `json:"tc"`
	Lo   int    `json:"lo"`
	Hi   int    `json:"hi"`
	Hash string `json:"hash"`
}

// manifestSpec records the result-determining spec fields for human
// inspection and for rebuilding the plan on resume. Execution knobs
// (workers, timeout, retries) are deliberately absent: they may change
// between the original run and a resume.
type manifestSpec struct {
	InjectAt  int    `json:"inject_at"`
	SampleAt  int    `json:"sample_at"`
	Times     []int  `json:"times"`
	TestCases int    `json:"test_cases"`
	Seed      uint64 `json:"seed"`
	BitStride int    `json:"bit_stride"`
	// The fault-model axis, absent for the default transient model so
	// transient manifests stay byte-identical to pre-fault-model ones
	// (and old manifests decode as transient).
	FaultModel string `json:"fault_model,omitempty"`
	FaultWidth int    `json:"fault_width,omitempty"`
	Persist    int    `json:"fault_persist,omitempty"`
}

func newManifest(p *Plan) manifest {
	vars := make([]manifestVar, len(p.Module.Vars))
	for i, v := range p.Module.Vars {
		vars[i] = manifestVar{Name: v.Name, Kind: v.Kind.String()}
	}
	sections := make([]manifestSection, len(p.Sections))
	for i, s := range p.Sections {
		sections[i] = manifestSection{TC: s.TC, Lo: s.Lo, Hi: s.Hi, Hash: s.Hash}
	}
	spec := manifestSpec{
		InjectAt:  int(p.Spec.InjectAt),
		SampleAt:  int(p.Spec.SampleAt),
		Times:     p.Spec.InjectionTimes,
		TestCases: p.Spec.TestCases,
		Seed:      p.Spec.Seed,
		BitStride: p.Spec.BitStride,
	}
	if f := p.Spec.Fault.Normalized(); !f.IsTransient() {
		spec.FaultModel = f.Model.String()
		spec.FaultWidth = f.Width
		spec.Persist = f.Persist
	}
	return manifest{
		Version:  p.version(),
		Plan:     p.Hash,
		Dataset:  p.Spec.Dataset,
		Target:   p.Target,
		Module:   p.Module.Name,
		Vars:     vars,
		Jobs:     len(p.Jobs),
		Shards:   p.Shards,
		Spec:     spec,
		Sections: sections,
	}
}

// checkpoint is one journal line: the complete outcome of one shard.
// Records appear in job order and cover the shard's whole range;
// skipped cells keep their identifying (unsampled) record in Records
// and additionally carry a reason here.
type checkpoint struct {
	Plan    string        `json:"plan"`
	Shard   int           `json:"shard"`
	Records []recordJSON  `json:"records"`
	Skipped []SkippedCell `json:"skipped,omitempty"`
	// Fork records the shard's fast-path statistics when the shard was
	// executed with Config.Fork; absent otherwise (and in journals
	// written before the fast path existed). Restored shards report
	// these stats instead of re-earning them, so a resumed campaign's
	// Result reflects what actually happened.
	Fork *forkShardStats `json:"fork,omitempty"`
}

// forkShardStats is the per-shard slice of propane.ForkStats that is
// attributable to a shard (snapshots are shared across shards and
// excluded).
type forkShardStats struct {
	Forked    int64 `json:"forked,omitempty"`
	Converged int64 `json:"conv,omitempty"`
	MemoHits  int64 `json:"memo,omitempty"`
	Fallbacks int64 `json:"fb,omitempty"`
}

func (s *forkShardStats) observe(oc propane.ForkOutcome) {
	switch oc {
	case propane.ForkRan:
		s.Forked++
	case propane.ForkConverged:
		s.Forked++
		s.Converged++
	case propane.ForkMemoized:
		s.Forked++
		s.MemoHits++
	case propane.ForkFellBack:
		s.Fallbacks++
	}
}

// recordJSON is the journal encoding of propane.Record. State values
// are IEEE-754 bit patterns in hex (see the package comment above).
type recordJSON struct {
	TC       int      `json:"tc"`
	Var      string   `json:"var"`
	Bit      int      `json:"bit"`
	Time     int      `json:"t"`
	State    []string `json:"state"`
	Injected bool     `json:"inj,omitempty"`
	Sampled  bool     `json:"smp,omitempty"`
	Failure  bool     `json:"fail,omitempty"`
	Crashed  bool     `json:"crash,omitempty"`
	FlipErr  bool     `json:"flip_err,omitempty"`
}

func encodeRecord(r propane.Record) recordJSON {
	var state []string
	if r.State != nil {
		state = make([]string, len(r.State))
		for i, v := range r.State {
			state[i] = strconv.FormatUint(math.Float64bits(v), 16)
		}
	}
	return recordJSON{
		TC:       r.TestCase,
		Var:      r.Var,
		Bit:      r.Bit,
		Time:     r.InjectionTime,
		State:    state,
		Injected: r.Injected,
		Sampled:  r.Sampled,
		Failure:  r.Failure,
		Crashed:  r.Crashed,
		FlipErr:  r.FlipErr,
	}
}

func decodeRecord(r recordJSON) (propane.Record, error) {
	var state []float64
	if r.State != nil {
		state = make([]float64, len(r.State))
		for i, s := range r.State {
			bits, err := strconv.ParseUint(s, 16, 64)
			if err != nil {
				return propane.Record{}, fmt.Errorf("campaign: bad state bits %q: %w", s, err)
			}
			state[i] = math.Float64frombits(bits)
		}
	}
	return propane.Record{
		TestCase:      r.TC,
		Var:           r.Var,
		Bit:           r.Bit,
		InjectionTime: r.Time,
		State:         state,
		Injected:      r.Injected,
		Sampled:       r.Sampled,
		Failure:       r.Failure,
		Crashed:       r.Crashed,
		FlipErr:       r.FlipErr,
	}, nil
}

// journal owns the open checkpoint log of one running campaign. Append
// is safe for concurrent use by shard workers; everything else happens
// before workers start or after they finish.
type journal struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

// createJournal initialises a fresh journal directory: the manifest is
// staged to a temp file and renamed into place so a kill during
// creation leaves either no journal or a complete one, never a torn
// manifest.
func createJournal(dir string, p *Plan) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if err := writeManifest(dir, newManifest(p)); err != nil {
		return nil, err
	}
	return openCheckpointLog(dir)
}

// writeManifest stages the manifest to a temp file and renames it into
// place (atomic on POSIX rename semantics).
func writeManifest(dir string, m manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, manifestName))
}

// openJournal opens an existing journal for appending, after the
// caller has validated its manifest.
func openJournal(dir string) (*journal, error) {
	return openCheckpointLog(dir)
}

func openCheckpointLog(dir string) (*journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, checkpointsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{dir: dir, f: f}, nil
}

// encodeCheckpointLine renders one checkpoint as its canonical
// newline-terminated journal line. Every journal writer — the local
// engine, the fabric worker and the coordinator merge — goes through
// this one encoder, which is what makes a shard's bytes identical
// whichever machine executed it.
func encodeCheckpointLine(cp checkpoint) ([]byte, error) {
	data, err := json.Marshal(cp)
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// append writes one checkpoint line and fsyncs it, so a completed
// shard survives any subsequent kill.
func (j *journal) append(cp checkpoint) error {
	data, err := encodeCheckpointLine(cp)
	if err != nil {
		return err
	}
	return j.appendRaw(data)
}

// appendRaw writes one pre-encoded, pre-validated checkpoint line and
// fsyncs it. The coordinator merge path uses it to persist worker lines
// byte-for-byte as they arrived.
func (j *journal) appendRaw(line []byte) error {
	if len(line) == 0 || line[len(line)-1] != '\n' {
		line = append(append([]byte(nil), line...), '\n')
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// readManifest loads <dir>/manifest.json. The boolean reports whether
// a manifest exists at all; any other read or decode problem is an
// error.
func readManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("campaign: corrupt manifest in %s: %w", dir, err)
	}
	return m, true, nil
}

// readCheckpoints loads every decodable checkpoint of plan planHash
// from the journal, keyed by shard index. Undecodable lines (the
// torn tail of a killed append) are counted and skipped; duplicate
// shards keep the first occurrence (shards are deterministic, so
// duplicates are identical by construction). Lines recording a
// different plan hash are an error by default — the journal was
// cross-wired — unless dropForeign is set, in which case they are
// counted and skipped: incremental resume legitimately leaves
// superseded-plan lines behind when a kill lands between the manifest
// and checkpoint rewrites of a journal upgrade.
func readCheckpoints(dir, planHash string, dropForeign bool) (done map[int]checkpoint, torn, foreign int, err error) {
	f, err := os.Open(filepath.Join(dir, checkpointsName))
	if errors.Is(err, os.ErrNotExist) {
		return map[int]checkpoint{}, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()

	done = make(map[int]checkpoint)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var cp checkpoint
		if err := json.Unmarshal(line, &cp); err != nil {
			torn++
			continue
		}
		if cp.Plan != planHash {
			if dropForeign {
				foreign++
				continue
			}
			return nil, 0, 0, fmt.Errorf("%w: checkpoint for plan %.12s in journal for plan %.12s",
				ErrPlanMismatch, cp.Plan, planHash)
		}
		if _, ok := done[cp.Shard]; !ok {
			done[cp.Shard] = cp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, 0, err
	}
	return done, torn, foreign, nil
}

// writeCheckpointLog stages a full checkpoint log (tmp + rename +
// fsync) holding exactly the given shards in ascending shard order.
func writeCheckpointLog(dir string, cps map[int]checkpoint) error {
	shards := make([]int, 0, len(cps))
	for s := range cps {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	var buf []byte
	for _, s := range shards {
		line, err := encodeCheckpointLine(cps[s])
		if err != nil {
			return err
		}
		buf = append(buf, line...)
	}
	tmp := filepath.Join(dir, checkpointsName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, checkpointsName))
}

// sealJournal compacts a completed journal into its canonical form:
// one checkpoint line per shard, in ascending shard order, duplicates
// (work-stealing races) and torn tails dropped. Sealing is what makes
// completed journals comparable byte-for-byte across execution paths —
// a local run, a resumed run and a multi-worker fabric run of the same
// plan all seal to identical bytes. A journal already in canonical
// form is left untouched.
func sealJournal(dir, planHash string, shards int) error {
	cps, torn, _, err := readCheckpoints(dir, planHash, false)
	if err != nil {
		return err
	}
	if len(cps) != shards {
		return fmt.Errorf("campaign: seal: journal has %d of %d shards", len(cps), shards)
	}
	if torn == 0 {
		canonical, err := isCanonicalLog(dir, shards)
		if err != nil {
			return err
		}
		if canonical {
			return nil
		}
	}
	return writeCheckpointLog(dir, cps)
}

// isCanonicalLog reports whether the checkpoint log already holds
// exactly one line per shard in ascending order (so sealing can skip
// the rewrite — the common case for an uninterrupted local run).
func isCanonicalLog(dir string, shards int) (bool, error) {
	f, err := os.Open(filepath.Join(dir, checkpointsName))
	if err != nil {
		return false, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	next := 0
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var cp struct {
			Shard int `json:"shard"`
		}
		if err := json.Unmarshal(sc.Bytes(), &cp); err != nil || cp.Shard != next {
			return false, nil
		}
		next++
	}
	if err := sc.Err(); err != nil {
		return false, err
	}
	return next == shards, nil
}
