package campaign

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"edem/internal/propane"
)

// Journal layout: a directory holding one manifest and one append-only
// checkpoint log.
//
//	<dir>/manifest.json      content-addressed plan description
//	<dir>/checkpoints.jsonl  one JSON line per completed shard
//
// The manifest is written once, atomically (tmp + rename), before any
// shard executes. Checkpoint lines are appended and fsynced as shards
// complete, in completion order — which varies with scheduling — so the
// log is an unordered set keyed by shard index; resume sorts it back
// into plan order. A line truncated by a kill mid-append fails to parse
// and is discarded on load: the shard it described simply re-runs.
//
// Sampled states are serialised as 16-digit hex IEEE-754 bit patterns,
// not JSON numbers: corrupted runs legitimately sample NaN and ±Inf
// (which encoding/json rejects) and bit patterns round-trip exactly,
// which the resume bit-identity guarantee depends on.
const (
	manifestName    = "manifest.json"
	checkpointsName = "checkpoints.jsonl"
)

// ErrJournalExists reports an existing journal opened without Resume.
var ErrJournalExists = errors.New("campaign: journal already exists (pass resume to continue it)")

// ErrPlanMismatch reports a journal whose manifest describes a
// different plan than the one being run.
var ErrPlanMismatch = errors.New("campaign: journal belongs to a different plan")

// manifest is the on-disk description of a plan.
type manifest struct {
	Version int           `json:"version"`
	Plan    string        `json:"plan"`
	Dataset string        `json:"dataset"`
	Target  string        `json:"target"`
	Module  string        `json:"module"`
	Vars    []manifestVar `json:"vars"`
	Jobs    int           `json:"jobs"`
	Shards  int           `json:"shards"`
	Spec    manifestSpec  `json:"spec"`
}

type manifestVar struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// manifestSpec records the result-determining spec fields for human
// inspection and for rebuilding the plan on resume. Execution knobs
// (workers, timeout, retries) are deliberately absent: they may change
// between the original run and a resume.
type manifestSpec struct {
	InjectAt  int    `json:"inject_at"`
	SampleAt  int    `json:"sample_at"`
	Times     []int  `json:"times"`
	TestCases int    `json:"test_cases"`
	Seed      uint64 `json:"seed"`
	BitStride int    `json:"bit_stride"`
}

func newManifest(p *Plan) manifest {
	vars := make([]manifestVar, len(p.Module.Vars))
	for i, v := range p.Module.Vars {
		vars[i] = manifestVar{Name: v.Name, Kind: v.Kind.String()}
	}
	return manifest{
		Version: planVersion,
		Plan:    p.Hash,
		Dataset: p.Spec.Dataset,
		Target:  p.Target,
		Module:  p.Module.Name,
		Vars:    vars,
		Jobs:    len(p.Jobs),
		Shards:  p.Shards,
		Spec: manifestSpec{
			InjectAt:  int(p.Spec.InjectAt),
			SampleAt:  int(p.Spec.SampleAt),
			Times:     p.Spec.InjectionTimes,
			TestCases: p.Spec.TestCases,
			Seed:      p.Spec.Seed,
			BitStride: p.Spec.BitStride,
		},
	}
}

// checkpoint is one journal line: the complete outcome of one shard.
// Records appear in job order and cover the shard's whole range;
// skipped cells keep their identifying (unsampled) record in Records
// and additionally carry a reason here.
type checkpoint struct {
	Plan    string        `json:"plan"`
	Shard   int           `json:"shard"`
	Records []recordJSON  `json:"records"`
	Skipped []SkippedCell `json:"skipped,omitempty"`
	// Fork records the shard's fast-path statistics when the shard was
	// executed with Config.Fork; absent otherwise (and in journals
	// written before the fast path existed). Restored shards report
	// these stats instead of re-earning them, so a resumed campaign's
	// Result reflects what actually happened.
	Fork *forkShardStats `json:"fork,omitempty"`
}

// forkShardStats is the per-shard slice of propane.ForkStats that is
// attributable to a shard (snapshots are shared across shards and
// excluded).
type forkShardStats struct {
	Forked    int64 `json:"forked,omitempty"`
	Converged int64 `json:"conv,omitempty"`
	MemoHits  int64 `json:"memo,omitempty"`
	Fallbacks int64 `json:"fb,omitempty"`
}

func (s *forkShardStats) observe(oc propane.ForkOutcome) {
	switch oc {
	case propane.ForkRan:
		s.Forked++
	case propane.ForkConverged:
		s.Forked++
		s.Converged++
	case propane.ForkMemoized:
		s.Forked++
		s.MemoHits++
	case propane.ForkFellBack:
		s.Fallbacks++
	}
}

// recordJSON is the journal encoding of propane.Record. State values
// are IEEE-754 bit patterns in hex (see the package comment above).
type recordJSON struct {
	TC       int      `json:"tc"`
	Var      string   `json:"var"`
	Bit      int      `json:"bit"`
	Time     int      `json:"t"`
	State    []string `json:"state"`
	Injected bool     `json:"inj,omitempty"`
	Sampled  bool     `json:"smp,omitempty"`
	Failure  bool     `json:"fail,omitempty"`
	Crashed  bool     `json:"crash,omitempty"`
	FlipErr  bool     `json:"flip_err,omitempty"`
}

func encodeRecord(r propane.Record) recordJSON {
	var state []string
	if r.State != nil {
		state = make([]string, len(r.State))
		for i, v := range r.State {
			state[i] = strconv.FormatUint(math.Float64bits(v), 16)
		}
	}
	return recordJSON{
		TC:       r.TestCase,
		Var:      r.Var,
		Bit:      r.Bit,
		Time:     r.InjectionTime,
		State:    state,
		Injected: r.Injected,
		Sampled:  r.Sampled,
		Failure:  r.Failure,
		Crashed:  r.Crashed,
		FlipErr:  r.FlipErr,
	}
}

func decodeRecord(r recordJSON) (propane.Record, error) {
	var state []float64
	if r.State != nil {
		state = make([]float64, len(r.State))
		for i, s := range r.State {
			bits, err := strconv.ParseUint(s, 16, 64)
			if err != nil {
				return propane.Record{}, fmt.Errorf("campaign: bad state bits %q: %w", s, err)
			}
			state[i] = math.Float64frombits(bits)
		}
	}
	return propane.Record{
		TestCase:      r.TC,
		Var:           r.Var,
		Bit:           r.Bit,
		InjectionTime: r.Time,
		State:         state,
		Injected:      r.Injected,
		Sampled:       r.Sampled,
		Failure:       r.Failure,
		Crashed:       r.Crashed,
		FlipErr:       r.FlipErr,
	}, nil
}

// journal owns the open checkpoint log of one running campaign. Append
// is safe for concurrent use by shard workers; everything else happens
// before workers start or after they finish.
type journal struct {
	dir string

	mu sync.Mutex
	f  *os.File
}

// createJournal initialises a fresh journal directory: the manifest is
// staged to a temp file and renamed into place so a kill during
// creation leaves either no journal or a complete one, never a torn
// manifest.
func createJournal(dir string, p *Plan) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(newManifest(p), "", "  ")
	if err != nil {
		return nil, err
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return nil, err
	}
	return openCheckpointLog(dir)
}

// openJournal opens an existing journal for appending, after the
// caller has validated its manifest.
func openJournal(dir string) (*journal, error) {
	return openCheckpointLog(dir)
}

func openCheckpointLog(dir string) (*journal, error) {
	f, err := os.OpenFile(filepath.Join(dir, checkpointsName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{dir: dir, f: f}, nil
}

// append writes one checkpoint line and fsyncs it, so a completed
// shard survives any subsequent kill.
func (j *journal) append(cp checkpoint) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(data); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// readManifest loads <dir>/manifest.json. The boolean reports whether
// a manifest exists at all; any other read or decode problem is an
// error.
func readManifest(dir string) (manifest, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, false, fmt.Errorf("campaign: corrupt manifest in %s: %w", dir, err)
	}
	return m, true, nil
}

// readCheckpoints loads every decodable checkpoint of plan planHash
// from the journal, keyed by shard index. Undecodable lines (the
// torn tail of a killed append) are counted and skipped; duplicate
// shards keep the first occurrence (shards are deterministic, so
// duplicates are identical by construction). Lines recording a
// different plan hash are an error: the journal was cross-wired.
func readCheckpoints(dir, planHash string) (map[int]checkpoint, int, error) {
	f, err := os.Open(filepath.Join(dir, checkpointsName))
	if errors.Is(err, os.ErrNotExist) {
		return map[int]checkpoint{}, 0, nil
	}
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()

	done := make(map[int]checkpoint)
	torn := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<28)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var cp checkpoint
		if err := json.Unmarshal(line, &cp); err != nil {
			torn++
			continue
		}
		if cp.Plan != planHash {
			return nil, 0, fmt.Errorf("%w: checkpoint for plan %.12s in journal for plan %.12s",
				ErrPlanMismatch, cp.Plan, planHash)
		}
		if _, ok := done[cp.Shard]; !ok {
			done[cp.Shard] = cp
		}
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return done, torn, nil
}
