package campaign_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"edem/internal/campaign"
	"edem/internal/propane"
	"edem/internal/targets/mp3gain"
)

func forkTarget() mp3gain.System {
	return mp3gain.System{TracksPerCase: 3, SamplesPerTrack: 600}
}

func forkSpec() propane.Spec {
	return propane.Spec{
		Dataset:        "MG-FORK",
		Module:         mp3gain.ModuleRGain,
		InjectAt:       propane.Entry,
		SampleAt:       propane.Exit,
		InjectionTimes: []int{1, 2},
		TestCases:      2,
		Seed:           7,
		BitStride:      8,
	}
}

// TestForkEquivalentToSlowEngine pins the campaign-level acceptance
// criterion of the fast path: Fork on and off produce bit-identical
// records, datasets and ARFF bytes against a real Forkable target.
func TestForkEquivalentToSlowEngine(t *testing.T) {
	spec := forkSpec()
	slow, err := campaign.Run(context.Background(), forkTarget(), spec, campaign.Config{Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := campaign.Run(context.Background(), forkTarget(), spec,
		campaign.Config{Shards: 5, Fork: true})
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, fast.Campaign, slow.Campaign)
	// Fork is an execution knob, not a plan parameter: the journal
	// identity must not depend on it.
	if fast.PlanHash != slow.PlanHash {
		t.Fatalf("plan hash differs across fork setting: %s vs %s", fast.PlanHash, slow.PlanHash)
	}
	if slow.Fork.Forked != 0 || slow.Fork.Fallbacks != 0 {
		t.Fatalf("slow run reported fork stats: %+v", slow.Fork)
	}
	if fast.Fork.Forked == 0 || fast.Fork.Snapshots == 0 {
		t.Fatalf("fast run did not fork: %+v", fast.Fork)
	}
	if fast.Fork.Fallbacks != 0 {
		t.Fatalf("unexpected fallbacks on a Forkable target: %+v", fast.Fork)
	}
}

// TestForkKillAndResume interrupts a journaled forked campaign, resumes
// it with Fork still on, and asserts bit-identity with an uninterrupted
// slow run — the journal is interchangeable between the two paths.
func TestForkKillAndResume(t *testing.T) {
	spec := forkSpec()
	dir := filepath.Join(t.TempDir(), "journal")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := campaign.Config{
		Journal: dir,
		Shards:  8,
		Fork:    true,
		OnCheckpoint: func(done, total int) {
			if done >= 2 {
				cancel()
			}
		},
	}
	if _, err := campaign.Run(ctx, forkTarget(), spec, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: got %v, want context.Canceled", err)
	}

	res, err := campaign.Run(context.Background(), forkTarget(), spec,
		campaign.Config{Journal: dir, Resume: true, Fork: true})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.ShardsRestored == 0 {
		t.Fatal("resume restored nothing; the kill happened too late to exercise restore")
	}

	ref, err := campaign.Run(context.Background(), forkTarget(), spec, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, res.Campaign, ref.Campaign)
	// Restored shards contribute their journaled fork accounting, so the
	// totals still reflect a fully forked campaign.
	if res.Fork.Forked == 0 {
		t.Fatalf("resumed run lost fork accounting: %+v", res.Fork)
	}

	// A slow-path resume of a fork-path journal replays identically: the
	// journal records results, not execution strategy.
	res2, err := campaign.Run(context.Background(), forkTarget(), spec,
		campaign.Config{Journal: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, res2.Campaign, ref.Campaign)
}

// TestForkFallbackNonForkable: Fork on a target that does not implement
// Forkable is a transparent no-op.
func TestForkFallbackNonForkable(t *testing.T) {
	spec := fakeSpec(3)
	slow, err := campaign.Run(context.Background(), newFakeTarget(), spec, campaign.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := campaign.Run(context.Background(), newFakeTarget(), spec, campaign.Config{Fork: true})
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, fast.Campaign, slow.Campaign)
	if fast.Fork != (propane.ForkStats{}) {
		t.Fatalf("non-Forkable target reported fork stats: %+v", fast.Fork)
	}
}
