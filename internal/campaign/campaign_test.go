package campaign_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"edem/internal/bitflip"
	"edem/internal/campaign"
	"edem/internal/dataset"
	"edem/internal/propane"
)

// fakeTarget is a tiny deterministic target whose module doubles a
// float and carries a bool guard. Per-test-case hang injection drives
// the timeout/retry/skip machinery: hangGolden blocks the first
// fault-free invocations of a test case, hangInjected blocks injected
// invocations (the engine always runs goldens before injected runs, so
// the first invocation per test case is the golden one).
type fakeTarget struct {
	mu           sync.Mutex
	calls        map[int]int // tc.ID -> invocation count
	hangGolden   map[int]int // tc.ID -> remaining golden-phase hangs
	hangInjected map[int]int // tc.ID -> remaining injected-phase hangs
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{
		calls:        map[int]int{},
		hangGolden:   map[int]int{},
		hangInjected: map[int]int{},
	}
}

func (f *fakeTarget) Name() string { return "Fake" }

func (f *fakeTarget) Modules() []propane.ModuleInfo {
	return []propane.ModuleInfo{{
		Name: "M",
		Vars: []propane.VarDecl{
			{Name: "x", Kind: bitflip.Float64},
			{Name: "ok", Kind: bitflip.Bool},
		},
	}}
}

func (f *fakeTarget) TestCases(n int, seed uint64) []propane.TestCase {
	tcs := make([]propane.TestCase, n)
	for i := range tcs {
		tcs[i] = propane.TestCase{ID: i, Seed: seed + uint64(i)}
	}
	return tcs
}

func (f *fakeTarget) Run(tc propane.TestCase, probe propane.Probe) (any, error) {
	f.mu.Lock()
	f.calls[tc.ID]++
	golden := f.calls[tc.ID] == 1 || f.hangGolden[tc.ID] > 0
	hang := false
	if golden && f.hangGolden[tc.ID] > 0 {
		f.hangGolden[tc.ID]--
		hang = true
	} else if !golden && f.hangInjected[tc.ID] > 0 {
		f.hangInjected[tc.ID]--
		hang = true
	}
	f.mu.Unlock()
	if hang {
		select {} // hung target: never returns
	}
	x := float64(tc.ID) + 1
	ok := true
	vars := []propane.VarRef{
		propane.Float64Ref("x", &x),
		propane.BoolRef("ok", &ok),
	}
	probe.Visit("M", propane.Entry, vars)
	x *= 2
	probe.Visit("M", propane.Exit, vars)
	if !ok {
		panic("fake: guard corrupted") // a crash failure mode for flipped bools
	}
	return x, nil
}

func (f *fakeTarget) Failed(_ propane.TestCase, golden, observed any) bool {
	g, o := golden.(float64), observed.(float64)
	return g != o && !(math.IsNaN(g) && math.IsNaN(o))
}

func fakeSpec(tcs int) propane.Spec {
	return propane.Spec{
		Dataset:        "FAKE-A2",
		Module:         "M",
		InjectAt:       propane.Entry,
		SampleAt:       propane.Exit,
		InjectionTimes: []int{1},
		TestCases:      tcs,
		Seed:           7,
		BitStride:      1,
	}
}

// sameCampaign asserts the engine output matches a reference campaign
// record for record, and that the derived datasets are byte-identical
// ARFF — the acceptance criterion of the resume guarantee.
func sameCampaign(t *testing.T, got, want *propane.Campaign) {
	t.Helper()
	if got.Target != want.Target || !reflect.DeepEqual(got.VarNames, want.VarNames) {
		t.Fatalf("campaign header mismatch: %v/%v vs %v/%v", got.Target, got.VarNames, want.Target, want.VarNames)
	}
	if len(got.Records) != len(want.Records) {
		t.Fatalf("record count %d, want %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if !reflect.DeepEqual(got.Records[i], want.Records[i]) {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, got.Records[i], want.Records[i])
		}
	}
	var gb, wb bytes.Buffer
	gd, err := propane.ToDataset(got)
	if err != nil {
		t.Fatal(err)
	}
	wd, err := propane.ToDataset(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteARFF(&gb, gd); err != nil {
		t.Fatal(err)
	}
	if err := dataset.WriteARFF(&wb, wd); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gb.Bytes(), wb.Bytes()) {
		t.Fatal("ARFF serialisations differ")
	}
}

// TestEquivalentToPropaneRun pins the bit-identity of the engine's
// in-memory path against the single-shot reference implementation.
func TestEquivalentToPropaneRun(t *testing.T) {
	spec := fakeSpec(3)
	ref, err := propane.Run(context.Background(), newFakeTarget(), spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := campaign.Run(context.Background(), newFakeTarget(), spec, campaign.Config{Shards: 7})
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, res.Campaign, ref)
	if res.ShardsRun != 7 || res.ShardsRestored != 0 {
		t.Fatalf("expected 7 fresh shards, got run=%d restored=%d", res.ShardsRun, res.ShardsRestored)
	}
}

// TestKillAndResume interrupts a journaled campaign after two
// checkpoints (simulating a kill), resumes it, and asserts the resumed
// output is bit-identical to an uninterrupted run — records, dataset
// and ARFF bytes.
func TestKillAndResume(t *testing.T) {
	spec := fakeSpec(3)
	dir := filepath.Join(t.TempDir(), "journal")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := campaign.Config{
		Journal: dir,
		Shards:  10,
		OnCheckpoint: func(done, total int) {
			if done >= 2 {
				cancel()
			}
		},
	}
	if _, err := campaign.Run(ctx, newFakeTarget(), spec, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: got %v, want context.Canceled", err)
	}

	// The journal must hold the checkpoints that completed before the
	// kill; the exact count can exceed 2 with concurrent shards.
	data, err := os.ReadFile(filepath.Join(dir, "checkpoints.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	checkpoints := bytes.Count(data, []byte("\n"))
	if checkpoints < 2 || checkpoints >= 10 {
		t.Fatalf("journal has %d checkpoints, want in [2, 10)", checkpoints)
	}

	res, err := campaign.Run(context.Background(), newFakeTarget(), spec,
		campaign.Config{Journal: dir, Resume: true})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if res.ShardsRestored != checkpoints {
		t.Errorf("restored %d shards, journal had %d", res.ShardsRestored, checkpoints)
	}
	if res.ShardsRun != 10-checkpoints {
		t.Errorf("resume ran %d shards, want %d", res.ShardsRun, 10-checkpoints)
	}

	ref, err := propane.Run(context.Background(), newFakeTarget(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, res.Campaign, ref)

	// A second resume replays everything from the journal: zero runs.
	res2, err := campaign.Run(context.Background(), newFakeTarget(), spec,
		campaign.Config{Journal: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ShardsRun != 0 || res2.ShardsRestored != 10 {
		t.Errorf("full replay: run=%d restored=%d, want 0/10", res2.ShardsRun, res2.ShardsRestored)
	}
	sameCampaign(t, res2.Campaign, ref)
}

// TestResumeToleratesTornTail: a kill mid-append leaves a truncated
// final line; resume must discard it and re-run that shard.
func TestResumeToleratesTornTail(t *testing.T) {
	spec := fakeSpec(2)
	dir := filepath.Join(t.TempDir(), "journal")
	if _, err := campaign.Run(context.Background(), newFakeTarget(), spec,
		campaign.Config{Journal: dir, Shards: 5}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "checkpoints.jsonl")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the last line's tail, simulating a torn append.
	lines := bytes.SplitAfter(data, []byte("\n"))
	last := lines[len(lines)-2]
	torn := append(bytes.Join(lines[:len(lines)-2], nil), last[:len(last)/2]...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := campaign.Run(context.Background(), newFakeTarget(), spec,
		campaign.Config{Journal: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsRestored != 4 || res.ShardsRun != 1 {
		t.Errorf("torn resume: restored=%d run=%d, want 4/1", res.ShardsRestored, res.ShardsRun)
	}
	if res.TornTails != 1 {
		t.Errorf("torn resume: TornTails=%d, want 1", res.TornTails)
	}
	ref, err := propane.Run(context.Background(), newFakeTarget(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, res.Campaign, ref)
}

// TestJournalGuards pins the refusal semantics: an existing journal
// without Resume is an error, and a journal written under a different
// plan (here: another bit stride) cannot be resumed.
func TestJournalGuards(t *testing.T) {
	spec := fakeSpec(2)
	dir := filepath.Join(t.TempDir(), "journal")
	if _, err := campaign.Run(context.Background(), newFakeTarget(), spec,
		campaign.Config{Journal: dir, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	_, err := campaign.Run(context.Background(), newFakeTarget(), spec,
		campaign.Config{Journal: dir})
	if !errors.Is(err, campaign.ErrJournalExists) {
		t.Errorf("re-open without resume: got %v, want ErrJournalExists", err)
	}
	other := spec
	other.BitStride = 2
	_, err = campaign.Run(context.Background(), newFakeTarget(), other,
		campaign.Config{Journal: dir, Resume: true})
	if !errors.Is(err, campaign.ErrPlanMismatch) {
		t.Errorf("resume with different plan: got %v, want ErrPlanMismatch", err)
	}
}

// TestRetryRecoversFlakyTarget: a target that hangs twice on one
// injected run must be retried past the hangs and produce a campaign
// identical to a well-behaved target's.
func TestRetryRecoversFlakyTarget(t *testing.T) {
	spec := fakeSpec(2)
	flaky := newFakeTarget()
	flaky.hangInjected[1] = 2

	res, err := campaign.Run(context.Background(), flaky, spec, campaign.Config{
		Shards:     4,
		Timeout:    50 * time.Millisecond,
		MaxRetries: 3,
		Backoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries < 2 {
		t.Errorf("retries = %d, want >= 2", res.Retries)
	}
	if len(res.Skipped) != 0 {
		t.Fatalf("unexpected skips: %+v", res.Skipped)
	}
	ref, err := propane.Run(context.Background(), newFakeTarget(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sameCampaign(t, res.Campaign, ref)
}

// TestPersistentHangSkipsCells: with retries exhausted, every hung cell
// is skipped-and-recorded (not fatal) and the rest of the campaign
// survives intact.
func TestPersistentHangSkipsCells(t *testing.T) {
	spec := fakeSpec(2)
	flaky := newFakeTarget()
	flaky.hangInjected[1] = 1 << 30 // every injected run of tc 1 hangs

	res, err := campaign.Run(context.Background(), flaky, spec, campaign.Config{
		Shards:     4,
		Timeout:    20 * time.Millisecond,
		MaxRetries: 0,
		Backoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	perTC := len(res.Campaign.Records) / 2
	if len(res.Skipped) != perTC {
		t.Fatalf("skipped %d cells, want %d (all of tc 1)", len(res.Skipped), perTC)
	}
	for _, s := range res.Skipped {
		if s.TC != 1 || !strings.Contains(s.Reason, "timeout") {
			t.Fatalf("unexpected skip %+v", s)
		}
	}
	for _, rec := range res.Campaign.Records {
		if rec.TestCase == 1 && rec.Sampled {
			t.Fatal("skipped cell has a sampled record")
		}
		if rec.TestCase == 0 && !rec.Sampled {
			t.Fatal("healthy cell lost its record")
		}
	}
	// The surviving half still yields a dataset.
	d, err := propane.ToDataset(res.Campaign)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != perTC {
		t.Errorf("dataset has %d instances, want %d", d.Len(), perTC)
	}
}

// TestGoldenFailureSkipsTestCase: a test case whose golden run hangs
// persistently poisons only its own cells, with the golden reason.
func TestGoldenFailureSkipsTestCase(t *testing.T) {
	spec := fakeSpec(2)
	flaky := newFakeTarget()
	flaky.hangGolden[0] = 1 << 30

	res, err := campaign.Run(context.Background(), flaky, spec, campaign.Config{
		Shards:     4,
		Timeout:    20 * time.Millisecond,
		MaxRetries: 1,
		Backoff:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	perTC := len(res.Campaign.Records) / 2
	if len(res.Skipped) != perTC {
		t.Fatalf("skipped %d cells, want %d", len(res.Skipped), perTC)
	}
	for _, s := range res.Skipped {
		if s.TC != 0 || !strings.Contains(s.Reason, "golden run failed") {
			t.Fatalf("unexpected skip %+v", s)
		}
	}
}

// TestStateBitsRoundTrip pins the journal's bit-exact state encoding
// for the values JSON numbers cannot carry: NaN and the infinities
// sampled from corrupted floating-point state.
func TestStateBitsRoundTrip(t *testing.T) {
	spec := fakeSpec(3)
	dir := filepath.Join(t.TempDir(), "journal")
	res, err := campaign.Run(context.Background(), newFakeTarget(), spec,
		campaign.Config{Journal: dir, Shards: 5})
	if err != nil {
		t.Fatal(err)
	}
	hasNonFinite := false
	for _, rec := range res.Campaign.Records {
		for _, v := range rec.State {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				hasNonFinite = true
			}
		}
	}
	if !hasNonFinite {
		t.Skip("campaign produced no non-finite states; exponent flips should have")
	}
	replay, err := campaign.Run(context.Background(), newFakeTarget(), spec,
		campaign.Config{Journal: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if replay.ShardsRun != 0 {
		t.Fatalf("replay executed %d shards, want 0", replay.ShardsRun)
	}
	for i := range res.Campaign.Records {
		a, b := res.Campaign.Records[i], replay.Campaign.Records[i]
		if len(a.State) != len(b.State) {
			t.Fatalf("record %d state length differs", i)
		}
		for k := range a.State {
			if math.Float64bits(a.State[k]) != math.Float64bits(b.State[k]) {
				t.Fatalf("record %d state[%d]: %x != %x", i, k,
					math.Float64bits(a.State[k]), math.Float64bits(b.State[k]))
			}
		}
	}
}
