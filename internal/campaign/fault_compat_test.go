package campaign_test

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"edem/internal/bitflip"
	"edem/internal/campaign"
	"edem/internal/core"
	"edem/internal/dataset"
	"edem/internal/propane"
)

// TestPlanHashCompatPins pins the plan hashes of real Table II datasets
// to their pre-fault-model values. The fault-model axis versioned the
// plan format to v3, but the default transient model must keep emitting
// the legacy v2 canonical text byte for byte — these constants were
// computed before the axis existed, so any drift here means existing
// journals stop resuming.
func TestPlanHashCompatPins(t *testing.T) {
	pins := map[string]string{
		"MG-A1": "e5e0314b9b438ca938ec4bef576e1dd8854abf1f8fa423ea3b8524057f50200a",
		"7Z-B2": "70e5c08761c94d1dd0b43b6be122813f04a121e5566e4f91b4e653994767d056",
		"FG-A2": "622af50bd2920862fb4f0c61b005b1bdecdf569b5395d265c7aa961b1c40ad0f",
	}
	opts := core.DefaultOptions()
	for id, want := range pins {
		target, spec, err := core.SpecFor(id, opts)
		if err != nil {
			t.Fatal(err)
		}
		p, err := campaign.NewPlan(target, spec, 6)
		if err != nil {
			t.Fatal(err)
		}
		if p.Hash != want {
			t.Errorf("%s plan hash drifted:\n got %s\nwant %s", id, p.Hash, want)
		}
	}

	// Section sub-hashes feed incremental invalidation; pin two so a
	// transient section change can't hide behind an unchanged plan hash
	// algorithm.
	target, spec, err := core.SpecFor("MG-A1", opts)
	if err != nil {
		t.Fatal(err)
	}
	p, err := campaign.NewPlan(target, spec, 6)
	if err != nil {
		t.Fatal(err)
	}
	sectionPins := map[int]string{
		0: "1811aae6226bce753d07ac6f6340acf667f93dbea73dc4c962ea2dceab6eadb9",
		1: "d1a24702fbc1434e093c827e127b562cb9bc7c05b4a6a2b6a8a64104db3a4abc",
	}
	for tc, want := range sectionPins {
		if got := p.Sections[tc].Hash; got != want {
			t.Errorf("MG-A1 section %d sub-hash drifted:\n got %s\nwant %s", tc, got, want)
		}
	}
}

// TestTransientARFFPin pins the bytes of a full transient pipeline
// output (campaign → ARFF) for MG-A1 at CI scale. Byte-identical ARFF
// is the acceptance criterion for "default campaigns are unchanged".
func TestTransientARFFPin(t *testing.T) {
	const want = "8b5be281200724449428487563870c8a6b264c57a287d42a7999c602eada35d5"
	opts := core.DefaultOptions()
	opts.TestCases = 2
	opts.BitStride = 16
	d, _, err := core.BuildDataset(context.Background(), "MG-A1", opts)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := dataset.WriteARFF(&b, d); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(b.String()))
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Errorf("MG-A1 transient ARFF drifted:\n got sha256 %s\nwant sha256 %s", got, want)
	}
}

// TestFaultChangesPlanHash: every non-transient configuration hashes
// differently from transient and from each other — the model is a real
// campaign axis, not a silent execution knob.
func TestFaultChangesPlanHash(t *testing.T) {
	spec := fakeSpec(2)
	hashes := map[string]string{}
	for _, f := range []bitflip.Fault{
		{},
		{Model: bitflip.Burst, Width: 2},
		{Model: bitflip.Burst, Width: 3},
		{Model: bitflip.StuckAt},
		{Model: bitflip.Intermittent, Persist: 2},
		{Model: bitflip.Intermittent, Persist: 3},
	} {
		s := spec
		s.Fault = f
		p, err := campaign.NewPlan(newFakeTarget(), s, 4)
		if err != nil {
			t.Fatal(err)
		}
		for other, h := range hashes {
			if h == p.Hash {
				t.Errorf("fault %q and %q share plan hash %s", f, other, h)
			}
		}
		hashes[f.String()] = p.Hash
	}
	// Spelling the defaults explicitly is not a new configuration.
	s := spec
	s.Fault = bitflip.Fault{Model: bitflip.Transient, Width: 1, Persist: 1}
	p, err := campaign.NewPlan(newFakeTarget(), s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Hash != hashes["transient"] {
		t.Error("explicit transient defaults hash differently from the zero value")
	}
}

// TestManifestFaultCompat: transient journals keep the legacy v2
// manifest with no fault fields (so journals written before the axis
// resume unchanged), non-transient journals are v3 with the fault
// recorded, and resuming under a different fault model is a plan
// mismatch, not silent reuse.
func TestManifestFaultCompat(t *testing.T) {
	spec := fakeSpec(2)
	dir := filepath.Join(t.TempDir(), "transient")
	if _, err := campaign.Run(context.Background(), newFakeTarget(), spec,
		campaign.Config{Journal: dir, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Version int `json:"version"`
		Spec    map[string]any `json:"spec"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != 2 {
		t.Errorf("transient manifest version %d, want legacy 2", m.Version)
	}
	for _, k := range []string{"fault_model", "fault_width", "fault_persist"} {
		if _, ok := m.Spec[k]; ok {
			t.Errorf("transient manifest leaked %q", k)
		}
	}

	burst := spec
	burst.Fault = bitflip.Fault{Model: bitflip.Burst, Width: 2}
	bdir := filepath.Join(t.TempDir(), "burst")
	if _, err := campaign.Run(context.Background(), newFakeTarget(), burst,
		campaign.Config{Journal: bdir, Shards: 3}); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(filepath.Join(bdir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Version != 3 {
		t.Errorf("burst manifest version %d, want 3", m.Version)
	}
	if m.Spec["fault_model"] != "burst" || m.Spec["fault_width"] != float64(2) {
		t.Errorf("burst manifest fault fields: %v", m.Spec)
	}

	// A journal written under one model refuses a resume under another.
	other := spec
	other.Fault = bitflip.Fault{Model: bitflip.StuckAt}
	if _, err := campaign.Run(context.Background(), newFakeTarget(), other,
		campaign.Config{Journal: bdir, Resume: true}); !errors.Is(err, campaign.ErrPlanMismatch) {
		t.Errorf("resume under a different fault model: %v, want ErrPlanMismatch", err)
	}
	// And the matching model replays it without running anything.
	res, err := campaign.Run(context.Background(), newFakeTarget(), burst,
		campaign.Config{Journal: bdir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsRun != 0 || res.ShardsRestored != 3 {
		t.Errorf("burst replay: run=%d restored=%d, want 0/3", res.ShardsRun, res.ShardsRestored)
	}
}

// tickTarget is a multi-activation target for the per-model resume
// tests: persistent models only differ from transient when the
// injection location keeps activating after the injection.
type tickTarget struct{}

func (tickTarget) Name() string { return "Tick" }

func (tickTarget) Modules() []propane.ModuleInfo {
	return []propane.ModuleInfo{{
		Name: "M",
		Vars: []propane.VarDecl{
			{Name: "acc", Kind: bitflip.Float64},
			{Name: "gate", Kind: bitflip.Int64},
		},
	}}
}

func (tickTarget) TestCases(n int, seed uint64) []propane.TestCase {
	tcs := make([]propane.TestCase, n)
	for i := range tcs {
		tcs[i] = propane.TestCase{ID: i, Seed: seed + uint64(i)}
	}
	return tcs
}

func (tickTarget) Run(tc propane.TestCase, probe propane.Probe) (any, error) {
	var acc float64
	var gate int64 = 3
	vars := []propane.VarRef{
		propane.Float64Ref("acc", &acc),
		propane.Int64Ref("gate", &gate),
	}
	for i := 0; i < 6; i++ {
		probe.Visit("M", propane.Entry, vars)
		acc += float64(gate) * float64(tc.ID+1)
		probe.Visit("M", propane.Exit, vars)
	}
	return acc, nil
}

func (tickTarget) Failed(_ propane.TestCase, golden, observed any) bool {
	return golden != observed
}

// TestKillAndResumePerModel is the per-model resume acceptance: for
// every fault model, a journaled campaign killed mid-run resumes into
// records (and ARFF bytes) identical to an uninterrupted run.
func TestKillAndResumePerModel(t *testing.T) {
	for _, f := range []bitflip.Fault{
		{},
		{Model: bitflip.Burst, Width: 3},
		{Model: bitflip.StuckAt},
		{Model: bitflip.Intermittent, Persist: 2},
	} {
		t.Run(f.String(), func(t *testing.T) {
			spec := propane.Spec{
				Dataset:        "TK-A2",
				Module:         "M",
				InjectAt:       propane.Entry,
				SampleAt:       propane.Exit,
				InjectionTimes: []int{2, 4},
				TestCases:      2,
				Seed:           11,
				BitStride:      4,
				Fault:          f,
			}
			dir := filepath.Join(t.TempDir(), "journal")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			cfg := campaign.Config{
				Journal: dir,
				Shards:  8,
				OnCheckpoint: func(done, total int) {
					if done >= 2 {
						cancel()
					}
				},
			}
			if _, err := campaign.Run(ctx, tickTarget{}, spec, cfg); !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run: got %v, want context.Canceled", err)
			}
			res, err := campaign.Run(context.Background(), tickTarget{}, spec,
				campaign.Config{Journal: dir, Resume: true})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if res.ShardsRestored == 0 || res.ShardsRun == 0 {
				t.Fatalf("kill/resume split degenerate: restored=%d run=%d", res.ShardsRestored, res.ShardsRun)
			}
			ref, err := propane.Run(context.Background(), tickTarget{}, spec)
			if err != nil {
				t.Fatal(err)
			}
			sameCampaign(t, res.Campaign, ref)
		})
	}
}
