package campaign

import (
	"encoding/json"
	"fmt"
	"sync"

	"edem/internal/propane"
)

// Ledger is the coordinator's view of a campaign journal: the plan, the
// set of completed shards, and a first-wins merge of checkpoint lines
// arriving from any number of workers (or from the coordinator itself).
// It is the authority the fabric protocol defers to — leases are
// advisory scheduling hints, the ledger's first-wins commit keyed by
// plan position is what makes duplicate completions harmless.
//
// All methods are safe for concurrent use.
type Ledger struct {
	plan *Plan

	mu       sync.Mutex
	jnl      *journal
	done     map[int]bool
	restored int
	torn     int
	invalid  int
	reused   int
	dir      string
	closed   bool
}

// OpenLedger builds (or resumes) the journal for (target, spec) exactly
// as campaign.Run would — same manifest, same resume and incremental
// semantics — and returns the coordinator's handle over it. cfg.Journal
// must be set: a ledger without a journal has nothing to merge into.
func OpenLedger(target propane.Target, spec propane.Spec, cfg Config) (*Ledger, error) {
	if cfg.Journal == "" {
		return nil, fmt.Errorf("campaign: ledger requires a journal directory")
	}
	prep, err := preparePlan(target, spec, cfg)
	if err != nil {
		return nil, err
	}
	done := make(map[int]bool, len(prep.restored))
	for s := range prep.restored {
		done[s] = true
	}
	return &Ledger{
		plan:     prep.plan,
		jnl:      prep.jnl,
		done:     done,
		restored: len(prep.restored),
		torn:     prep.torn,
		invalid:  prep.invalidated,
		reused:   prep.reused,
		dir:      cfg.Journal,
	}, nil
}

// Plan returns the ledger's resolved plan.
func (l *Ledger) Plan() *Plan { return l.plan }

// Restored reports how many shards were already complete when the
// ledger opened; TornTails, Invalidated and Reused report the resume
// bookkeeping the same way campaign.Result does.
func (l *Ledger) Restored() int    { return l.restored }
func (l *Ledger) TornTails() int   { return l.torn }
func (l *Ledger) Invalidated() int { return l.invalid }
func (l *Ledger) Reused() int      { return l.reused }

// Pending returns the shards not yet committed, ascending.
func (l *Ledger) Pending() []int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []int
	for s := 0; s < l.plan.Shards; s++ {
		if !l.done[s] {
			out = append(out, s)
		}
	}
	return out
}

// DoneCount returns how many shards are committed.
func (l *Ledger) DoneCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.done)
}

// Complete reports whether every shard is committed.
func (l *Ledger) Complete() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.done) == l.plan.Shards
}

// Commit validates one checkpoint line and merges it first-wins: the
// first commit of a shard is appended to the journal and accepted, any
// later commit of the same shard is a duplicate (accepted=false, no
// error — work-stealing makes duplicates normal, and duplicate shards
// are identical by construction so dropping them loses nothing). The
// line is re-encoded through the canonical encoder before appending, so
// journal bytes never depend on which worker produced them.
func (l *Ledger) Commit(line []byte) (shard int, accepted bool, err error) {
	var cp checkpoint
	if err := json.Unmarshal(line, &cp); err != nil {
		return 0, false, fmt.Errorf("campaign: ledger: undecodable checkpoint: %w", err)
	}
	if cp.Plan != l.plan.Hash {
		return 0, false, fmt.Errorf("%w: checkpoint for plan %.12s, ledger holds %.12s",
			ErrPlanMismatch, cp.Plan, l.plan.Hash)
	}
	if cp.Shard < 0 || cp.Shard >= l.plan.Shards {
		return 0, false, fmt.Errorf("campaign: ledger: shard %d out of range [0,%d)", cp.Shard, l.plan.Shards)
	}
	lo, hi := l.plan.ShardRange(cp.Shard)
	if len(cp.Records) != hi-lo {
		return 0, false, fmt.Errorf("campaign: ledger: shard %d has %d records, want %d",
			cp.Shard, len(cp.Records), hi-lo)
	}
	canonical, err := encodeCheckpointLine(cp)
	if err != nil {
		return 0, false, err
	}

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return cp.Shard, false, fmt.Errorf("campaign: ledger is closed")
	}
	if l.done[cp.Shard] {
		return cp.Shard, false, nil
	}
	if err := l.jnl.appendRaw(canonical); err != nil {
		return cp.Shard, false, fmt.Errorf("campaign: ledger: append shard %d: %w", cp.Shard, err)
	}
	l.done[cp.Shard] = true
	return cp.Shard, true, nil
}

// Seal compacts the completed journal into canonical form (one line per
// shard, ascending, duplicates dropped) and closes the ledger. Sealing
// an incomplete ledger is an error; Close instead leaves a resumable
// journal behind.
func (l *Ledger) Seal() error {
	l.mu.Lock()
	if len(l.done) != l.plan.Shards {
		missing := l.plan.Shards - len(l.done)
		l.mu.Unlock()
		return fmt.Errorf("campaign: ledger: cannot seal with %d shards missing", missing)
	}
	l.mu.Unlock()
	if err := l.Close(); err != nil {
		return err
	}
	return sealJournal(l.dir, l.plan.Hash, l.plan.Shards)
}

// Close releases the journal file handle, leaving the journal resumable.
func (l *Ledger) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.jnl.close()
}
