package serve

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sync"
)

// The columnar binary batch frame: the wire format that lets a serving
// client stream state samples without the JSON costs (float formatting,
// per-token parsing, per-sample allocations). Values travel as raw
// IEEE-754 bit patterns — the same exactness guarantee as the hex
// transport the campaign journal and the JSON Sample codec use, so NaN
// and ±Inf round-trip bit-exactly by construction. The batch is laid
// out column-major (all samples' values for attribute 0, then attribute
// 1, ...), which keeps each attribute's values contiguous for future
// vectorised evaluation and compresses well on the wire.
//
// Frame layout (all integers little-endian):
//
//	u32  length of the remainder (self-delimiting length prefix)
//	u32  magic "EDBF"
//	u8   version (1)
//	u8   kind (1 = request, 2 = response)
//
// Request (kind 1):
//
//	u16  detector ID length, then that many UTF-8 bytes
//	u32  sample count n
//	u32  arity a
//	i64  deadline_ms, i64 delay_ms
//	a×n  u64 IEEE-754 bit patterns, column-major (column j at j*n+i)
//
// Response (kind 2):
//
//	u64  bundle generation
//	u16  degraded reason length, then that many UTF-8 bytes
//	u32  evaluated
//	u32  verdict count n, then ceil(n/8) bitmap bytes (sample i at
//	     byte i/8, bit i%8, LSB-first)
//	u32  alarm count, then that many u32 1-based sample indices
//
// Decoding is strict: trailing bytes, truncated columns or a length
// prefix that disagrees with the body are errors, so the fuzzer can
// demand decode→encode→decode fixed-point stability.

// ContentTypeBinary is the Content-Type under which the binary batch
// frame travels; ContentTypeJSON is the default JSON codec.
const (
	ContentTypeBinary = "application/x-edem-batch"
	ContentTypeJSON   = "application/json"
)

const (
	binMagic           = 0x46424445 // "EDBF"
	binVersion         = 1
	binKindRequest     = 1
	binKindResponse    = 2
	binMaxDetectorID   = 1 << 10
	binMaxDegradedLen  = 1 << 12
	binMaxFrameSamples = maxRequestBody / 8
)

// BinaryRequest is the decoded form of a binary evaluate frame. Decoded
// samples are views into one flat backing array, so a pooled request
// costs O(1) allocations regardless of batch size.
type BinaryRequest struct {
	Detector   string
	Samples    []Sample
	DeadlineMS int64
	DelayMS    int64

	flat    []float64
	sampHdr []Sample
	buf     []byte // scratch the frame was read into (pooled)
}

// binReqPool recycles BinaryRequest parsing state across requests: the
// body buffer, the flat value array and the sample-header slice all
// survive, so steady-state binary parsing allocates nothing per sample.
var binReqPool = sync.Pool{New: func() any { return new(BinaryRequest) }}

// getBinaryRequest fetches a pooled request shell.
func getBinaryRequest() *BinaryRequest { return binReqPool.Get().(*BinaryRequest) }

// Release returns the request's buffers to the pool. Callers must not
// touch the request or its samples afterwards — and must NOT call it
// while an evaluation that references Samples may still be running
// (the deadline-abandonment path leaks the request to the GC instead).
func (br *BinaryRequest) Release() {
	br.Detector = ""
	br.Samples = nil
	br.DeadlineMS, br.DelayMS = 0, 0
	binReqPool.Put(br)
}

// appendUint16/32/64 are the little-endian append helpers shared by
// both frame encoders.
func appendUint16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendUint32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendUint64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// binReader is a bounds-checked little-endian cursor over one frame.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("serve: binary frame: "+format, args...)
	}
}

func (r *binReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.fail("truncated at offset %d (want %d more bytes of %d)", r.off, n, len(r.data))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *binReader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *binReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *binReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *binReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// frameHeader validates the shared prefix and returns the kind.
func (r *binReader) frameHeader() uint8 {
	if m := r.u32(); r.err == nil && m != binMagic {
		r.fail("bad magic %#x", m)
	}
	if v := r.u8(); r.err == nil && v != binVersion {
		r.fail("unsupported version %d", v)
	}
	return r.u8()
}

// EncodeBinaryRequest appends one request frame (including the length
// prefix) to dst and returns the extended slice.
func EncodeBinaryRequest(dst []byte, detector string, samples []Sample, deadlineMS, delayMS int64) ([]byte, error) {
	if len(detector) > binMaxDetectorID {
		return nil, fmt.Errorf("serve: binary frame: detector ID of %d bytes", len(detector))
	}
	arity := 0
	if len(samples) > 0 {
		arity = len(samples[0])
	}
	for i, s := range samples {
		if len(s) != arity {
			return nil, fmt.Errorf("serve: binary frame: sample %d has %d values, sample 0 has %d", i, len(s), arity)
		}
	}
	lenAt := len(dst)
	dst = appendUint32(dst, 0) // length back-patched below
	dst = appendUint32(dst, binMagic)
	dst = append(dst, binVersion, binKindRequest)
	dst = appendUint16(dst, uint16(len(detector)))
	dst = append(dst, detector...)
	dst = appendUint32(dst, uint32(len(samples)))
	dst = appendUint32(dst, uint32(arity))
	dst = appendUint64(dst, uint64(deadlineMS))
	dst = appendUint64(dst, uint64(delayMS))
	for j := 0; j < arity; j++ {
		for i := range samples {
			dst = appendUint64(dst, math.Float64bits(samples[i][j]))
		}
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst, nil
}

// decodeInto parses one request frame into the (pooled) receiver,
// reusing its flat array and sample headers.
func (br *BinaryRequest) decodeInto(data []byte) error {
	r := &binReader{data: data}
	if n := r.u32(); r.err == nil && int(n) != len(data)-4 {
		r.fail("length prefix %d disagrees with body length %d", n, len(data)-4)
	}
	if k := r.frameHeader(); r.err == nil && k != binKindRequest {
		r.fail("kind %d is not a request", k)
	}
	idLen := int(r.u16())
	if r.err == nil && idLen > binMaxDetectorID {
		r.fail("detector ID of %d bytes", idLen)
	}
	id := r.take(idLen)
	n := int(r.u32())
	arity := int(r.u32())
	br.DeadlineMS = int64(r.u64())
	br.DelayMS = int64(r.u64())
	if r.err != nil {
		return r.err
	}
	if n > binMaxFrameSamples || arity > binMaxFrameSamples || (arity > 0 && n > binMaxFrameSamples/arity) {
		return fmt.Errorf("serve: binary frame: %d samples × %d values exceeds the request bound", n, arity)
	}
	total := n * arity
	if cap(br.flat) < total {
		br.flat = make([]float64, total)
	}
	flat := br.flat[:total]
	for j := 0; j < arity; j++ {
		col := r.take(8 * n)
		if r.err != nil {
			return r.err
		}
		for i := 0; i < n; i++ {
			flat[i*arity+j] = math.Float64frombits(binary.LittleEndian.Uint64(col[8*i:]))
		}
	}
	if r.off != len(data) {
		return fmt.Errorf("serve: binary frame: %d trailing bytes", len(data)-r.off)
	}
	br.Detector = string(id)
	if cap(br.sampHdr) < n {
		br.sampHdr = make([]Sample, n)
	}
	samples := br.sampHdr[:n]
	for i := 0; i < n; i++ {
		samples[i] = Sample(flat[i*arity : (i+1)*arity : (i+1)*arity])
	}
	br.Samples = samples
	br.flat = flat[:0:cap(br.flat)]
	br.sampHdr = samples[:0:cap(br.sampHdr)]
	return nil
}

// DecodeBinaryRequest parses one request frame. The returned request
// does not alias data and owns freshly pooled buffers; Release it when
// the evaluation is over.
func DecodeBinaryRequest(data []byte) (*BinaryRequest, error) {
	br := getBinaryRequest()
	if err := br.decodeInto(data); err != nil {
		br.Release()
		return nil, err
	}
	return br, nil
}

// readBinaryRequest slurps a request frame from an HTTP body into the
// pooled scratch buffer and decodes it.
func readBinaryRequest(body io.Reader) (*BinaryRequest, error) {
	br := getBinaryRequest()
	buf := br.buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		m, err := body.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err == io.EOF {
			break
		}
		if err != nil {
			br.buf = buf
			br.Release()
			return nil, err
		}
	}
	br.buf = buf
	if err := br.decodeInto(buf); err != nil {
		br.Release()
		return nil, err
	}
	return br, nil
}

// EncodeBinaryResponse appends one response frame (with length prefix)
// to dst and returns the extended slice. generation is the bundle
// generation that served the evaluation.
func EncodeBinaryResponse(dst []byte, resp *EvalResponse, generation uint64) ([]byte, error) {
	if len(resp.Degraded) > binMaxDegradedLen {
		return nil, fmt.Errorf("serve: binary frame: degraded reason of %d bytes", len(resp.Degraded))
	}
	lenAt := len(dst)
	dst = appendUint32(dst, 0)
	dst = appendUint32(dst, binMagic)
	dst = append(dst, binVersion, binKindResponse)
	dst = appendUint64(dst, generation)
	dst = appendUint16(dst, uint16(len(resp.Degraded)))
	dst = append(dst, resp.Degraded...)
	dst = appendUint32(dst, uint32(resp.Evaluated))
	dst = appendUint32(dst, uint32(len(resp.Verdicts)))
	var acc byte
	for i, v := range resp.Verdicts {
		if v {
			acc |= 1 << (i % 8)
		}
		if i%8 == 7 {
			dst = append(dst, acc)
			acc = 0
		}
	}
	if len(resp.Verdicts)%8 != 0 {
		dst = append(dst, acc)
	}
	dst = appendUint32(dst, uint32(len(resp.Alarms)))
	for _, a := range resp.Alarms {
		dst = appendUint32(dst, uint32(a))
	}
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	return dst, nil
}

// DecodeBinaryResponse parses one response frame into an EvalResponse
// plus the serving bundle generation. Strict like the request decoder:
// padding bits and trailing bytes are rejected.
func DecodeBinaryResponse(data []byte) (*EvalResponse, uint64, error) {
	r := &binReader{data: data}
	if n := r.u32(); r.err == nil && int(n) != len(data)-4 {
		r.fail("length prefix %d disagrees with body length %d", n, len(data)-4)
	}
	if k := r.frameHeader(); r.err == nil && k != binKindResponse {
		r.fail("kind %d is not a response", k)
	}
	gen := r.u64()
	degLen := int(r.u16())
	if r.err == nil && degLen > binMaxDegradedLen {
		r.fail("degraded reason of %d bytes", degLen)
	}
	deg := r.take(degLen)
	evaluated := int(r.u32())
	nv := int(r.u32())
	if r.err == nil && nv > binMaxFrameSamples {
		r.fail("%d verdicts exceeds the request bound", nv)
	}
	bitmap := r.take((nv + 7) / 8)
	if r.err != nil {
		return nil, 0, r.err
	}
	resp := &EvalResponse{Degraded: string(deg), Evaluated: evaluated, BundleGeneration: gen}
	if nv > 0 {
		resp.Verdicts = make([]bool, nv)
		for i := range resp.Verdicts {
			resp.Verdicts[i] = bitmap[i/8]&(1<<(i%8)) != 0
		}
	}
	if nv%8 != 0 && bitmap[nv/8]>>(nv%8) != 0 {
		return nil, 0, fmt.Errorf("serve: binary frame: nonzero verdict padding bits")
	}
	na := int(r.u32())
	if r.err == nil && na > nv {
		r.fail("%d alarms for %d verdicts", na, nv)
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	if na > 0 {
		resp.Alarms = make([]int, na)
		for i := range resp.Alarms {
			resp.Alarms[i] = int(r.u32())
		}
	}
	if r.err != nil {
		return nil, 0, r.err
	}
	if r.off != len(data) {
		return nil, 0, fmt.Errorf("serve: binary frame: %d trailing bytes", len(data)-r.off)
	}
	return resp, gen, nil
}
