package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyServer sheds the first n evaluate requests with 429, then
// answers with a fixed response.
func flakyServer(t *testing.T, shedFirst int64, resp EvalResponse) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= shedFirst {
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(ErrorResponse{Error: "queue full"})
			return
		}
		var req EvalRequest
		json.NewDecoder(r.Body).Decode(&req)
		resp.Detector = req.Detector
		resp.Evaluated = len(req.Samples)
		json.NewEncoder(w).Encode(resp)
	}))
	t.Cleanup(hs.Close)
	return hs, &calls
}

func TestClientRetriesSheds(t *testing.T) {
	hs, calls := flakyServer(t, 2, EvalResponse{Verdicts: []bool{true}, Alarms: []int{1}})
	c := &Client{Base: hs.URL, Backoff: time.Millisecond}
	resp, err := c.Evaluate(context.Background(), "D1", []Sample{{500}})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 (two sheds then success)", calls.Load())
	}
	if len(resp.Alarms) != 1 || resp.Detector != "D1" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(ErrorResponse{Error: "unknown detector"})
	}))
	defer hs.Close()
	c := &Client{Base: hs.URL, Backoff: time.Millisecond}
	_, err := c.Evaluate(context.Background(), "NOPE", []Sample{{1}})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("err = %v, want 404 StatusError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retries on 404)", calls.Load())
	}
}

func TestClientRetryBudgetExhausted(t *testing.T) {
	hs, calls := flakyServer(t, 1<<30, EvalResponse{})
	c := &Client{Base: hs.URL, MaxRetries: 2, Backoff: time.Millisecond}
	_, err := c.Evaluate(context.Background(), "D1", []Sample{{1}})
	if err == nil {
		t.Fatal("want error after exhausted retries")
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("err = %v, want wrapped 429", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 (initial + 2 retries)", calls.Load())
	}
}

// TestClientDeadlineAwareBackoff pins the no-futile-sleep rule: with a
// context budget smaller than the next backoff, the client gives up
// immediately rather than sleeping into the deadline.
func TestClientDeadlineAwareBackoff(t *testing.T) {
	hs, calls := flakyServer(t, 1<<30, EvalResponse{})
	c := &Client{Base: hs.URL, Backoff: time.Hour}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Evaluate(ctx, "D1", []Sample{{1}})
	if err == nil {
		t.Fatal("want error")
	}
	if d := time.Since(start); d > 300*time.Millisecond {
		t.Fatalf("gave up after %v; must not sleep toward an unreachable deadline", d)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}

func TestClientEvaluateChunks(t *testing.T) {
	// A real server end to end: 10 samples in chunks of 3, alarms
	// re-indexed into the caller's numbering.
	_, hs := newTestServer(t, Config{}, "D1")
	c := &Client{Base: hs.URL, Backoff: time.Millisecond}
	samples := make([]Sample, 10)
	for i := range samples {
		samples[i] = Sample{float64(i * 30)} // >100 from i=4 on
	}
	resp, err := c.EvaluateChunks(context.Background(), "D1", samples, 3)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Evaluated != 10 || len(resp.Verdicts) != 10 {
		t.Fatalf("resp = %+v", resp)
	}
	want := []int{5, 6, 7, 8, 9, 10} // 1-based indices of i=4..9
	if len(resp.Alarms) != len(want) {
		t.Fatalf("alarms = %v, want %v", resp.Alarms, want)
	}
	for i := range want {
		if resp.Alarms[i] != want[i] {
			t.Fatalf("alarms = %v, want %v", resp.Alarms, want)
		}
	}
}

func TestClientHealth(t *testing.T) {
	_, hs := newTestServer(t, Config{}, "A", "B")
	c := &Client{Base: hs.URL}
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Detectors != 2 {
		t.Fatalf("health = %+v", h)
	}
}
