package serve

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker state.
type BreakerState int

// The three breaker states. Closed admits traffic, Open rejects it,
// HalfOpen admits a single probe at a time to test recovery.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

// String returns the conventional lowercase spelling.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one detector's circuit breaker. The zero value
// selects the defaults documented on each field.
type BreakerConfig struct {
	// Threshold is the number of consecutive evaluation failures
	// (panics or errors) that trips the breaker open (default 5).
	Threshold int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe (default 5s).
	Cooldown time.Duration
	// Probes is the number of consecutive successful half-open probes
	// required to close the breaker again (default 1).
	Probes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	return c
}

// Breaker is a per-detector circuit breaker: it trips open after
// Threshold consecutive evaluation failures, rejects evaluation while
// open, admits a single probe at a time after Cooldown (half-open),
// and closes again after Probes consecutive probe successes. A failed
// probe re-opens the circuit and restarts the cooldown.
//
// All methods are safe for concurrent use. Outcome reports that arrive
// after the breaker has moved on (e.g. a success recorded while the
// circuit is already open) are ignored — late reports must not mask a
// trip.
type Breaker struct {
	cfg BreakerConfig
	// now is the clock, injectable by tests.
	now func() time.Time
	// onTransition, when non-nil, observes every state change; called
	// with b.mu held, so it must not call back into the breaker.
	onTransition func(from, to BreakerState)

	mu        sync.Mutex
	state     BreakerState
	fails     int // consecutive failures while closed
	successes int // consecutive probe successes while half-open
	probing   bool
	openedAt  time.Time
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now}
}

// State returns the current state, surfacing the open→half-open
// transition that Allow would perform (so status endpoints see
// "half-open" once the cooldown has elapsed, without consuming the
// probe slot).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return HalfOpen
	}
	return b.state
}

// Allow reports whether an evaluation may proceed. While open it
// returns false until the cooldown elapses, then transitions to
// half-open and admits exactly one in-flight probe at a time; every
// admitted caller must report the outcome via Record.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.transition(HalfOpen)
		b.successes = 0
		b.probing = true
		return true
	case HalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Record reports the outcome of an evaluation previously admitted by
// Allow.
func (b *Breaker) Record(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if ok {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.trip()
		}
	case HalfOpen:
		b.probing = false
		if !ok {
			b.trip()
			return
		}
		b.successes++
		if b.successes >= b.cfg.Probes {
			b.transition(Closed)
			b.fails = 0
		}
	case Open:
		// Late report from before the trip; the circuit has moved on.
	}
}

// Cancel releases an admission obtained from Allow without reporting
// an outcome — for requests that were shed or timed out before the
// detector ever evaluated. It frees the half-open probe slot but moves
// no counters: infrastructure pressure is neither detector success nor
// detector failure.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == HalfOpen {
		b.probing = false
	}
}

// trip opens the circuit and restarts the cooldown. Callers hold b.mu.
func (b *Breaker) trip() {
	b.transition(Open)
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
	b.successes = 0
}

// transition moves to state to, notifying the observer. Callers hold
// b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}
