package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

func bitIdentical(t *testing.T, want, got []Sample) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("sample count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("sample %d arity %d, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if math.Float64bits(got[i][j]) != math.Float64bits(want[i][j]) {
				t.Fatalf("sample %d value %d: %x, want %x",
					i, j, math.Float64bits(got[i][j]), math.Float64bits(want[i][j]))
			}
		}
	}
}

func TestBinaryRequestRoundTrip(t *testing.T) {
	samples := []Sample{
		{1.5, math.NaN(), math.Inf(1)},
		{math.Inf(-1), math.Copysign(0, -1), 1e308},
		{math.Float64frombits(0x7ff8000000000001), 0, -1}, // NaN payload survives
	}
	frame, err := EncodeBinaryRequest(nil, "D-1", samples, 250, 7)
	if err != nil {
		t.Fatal(err)
	}
	br, err := DecodeBinaryRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Release()
	if br.Detector != "D-1" || br.DeadlineMS != 250 || br.DelayMS != 7 {
		t.Fatalf("header fields: %q %d %d", br.Detector, br.DeadlineMS, br.DelayMS)
	}
	bitIdentical(t, samples, br.Samples)
}

func TestBinaryRequestEmptyBatch(t *testing.T) {
	frame, err := EncodeBinaryRequest(nil, "D", nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	br, err := DecodeBinaryRequest(frame)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Release()
	if len(br.Samples) != 0 {
		t.Fatalf("decoded %d samples from an empty batch", len(br.Samples))
	}
}

func TestBinaryRequestRejectsRaggedBatch(t *testing.T) {
	if _, err := EncodeBinaryRequest(nil, "D", []Sample{{1, 2}, {3}}, 0, 0); err == nil {
		t.Fatal("ragged batch encoded")
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	in := &EvalResponse{
		Detector:  "", // the response frame does not carry the detector ID
		Verdicts:  []bool{true, false, false, true, true, false, true, false, true},
		Alarms:    []int{1, 4, 5, 7, 9},
		Evaluated: 9,
		Degraded:  "",
	}
	frame, err := EncodeBinaryResponse(nil, in, 42)
	if err != nil {
		t.Fatal(err)
	}
	out, gen, err := DecodeBinaryResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 42 || out.BundleGeneration != 42 {
		t.Fatalf("generation %d/%d, want 42", gen, out.BundleGeneration)
	}
	if out.Evaluated != 9 || out.Degraded != "" {
		t.Fatalf("evaluated=%d degraded=%q", out.Evaluated, out.Degraded)
	}
	if len(out.Verdicts) != len(in.Verdicts) {
		t.Fatalf("verdict count %d, want %d", len(out.Verdicts), len(in.Verdicts))
	}
	for i := range in.Verdicts {
		if out.Verdicts[i] != in.Verdicts[i] {
			t.Fatalf("verdict %d = %v", i, out.Verdicts[i])
		}
	}
	if len(out.Alarms) != len(in.Alarms) {
		t.Fatalf("alarm count %d, want %d", len(out.Alarms), len(in.Alarms))
	}
	for i := range in.Alarms {
		if out.Alarms[i] != in.Alarms[i] {
			t.Fatalf("alarm %d = %d", i, out.Alarms[i])
		}
	}
}

func TestBinaryResponseDegraded(t *testing.T) {
	in := &EvalResponse{Degraded: "breaker-open"}
	frame, err := EncodeBinaryResponse(nil, in, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := DecodeBinaryResponse(frame)
	if err != nil {
		t.Fatal(err)
	}
	if out.Degraded != "breaker-open" || len(out.Verdicts) != 0 {
		t.Fatalf("degraded round trip: %+v", out)
	}
}

// TestBinaryDecodeStrictness pins the decoder's refusal of malformed
// frames: anything but an exact, self-consistent frame is an error, so
// the round-trip fuzzer can demand fixed-point stability.
func TestBinaryDecodeStrictness(t *testing.T) {
	req, err := EncodeBinaryRequest(nil, "D", []Sample{{1, 2}, {3, 4}}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := EncodeBinaryResponse(nil, &EvalResponse{Verdicts: []bool{true, false, true}, Evaluated: 3}, 1)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(frame []byte, mutate func([]byte)) []byte {
		c := bytes.Clone(frame)
		mutate(c)
		return c
	}
	patchLen := func(b []byte) { // keep the length prefix honest after resizing
		binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	}

	for _, tt := range []struct {
		name  string
		frame []byte
	}{
		{"empty", nil},
		{"short-header", req[:6]},
		{"bad-magic", corrupt(req, func(b []byte) { b[4] ^= 0xff })},
		{"bad-version", corrupt(req, func(b []byte) { b[8] = 99 })},
		{"length-prefix-lies", corrupt(req, func(b []byte) { b[0]++ })},
		{"request-trailing-bytes", corrupt(append(bytes.Clone(req), 0), patchLen)},
		{"request-truncated-column", corrupt(req[:len(req)-8], patchLen)},
		{"response-kind-as-request", resp},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if br, err := DecodeBinaryRequest(tt.frame); err == nil {
				br.Release()
				t.Fatal("malformed request frame decoded")
			}
		})
	}

	for _, tt := range []struct {
		name  string
		frame []byte
	}{
		{"request-kind-as-response", req},
		{"response-trailing-bytes", corrupt(append(bytes.Clone(resp), 0), patchLen)},
		{"nonzero-padding-bits", corrupt(resp, func(b []byte) { b[len(b)-5] |= 0x80 })},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := DecodeBinaryResponse(tt.frame); err == nil {
				t.Fatal("malformed response frame decoded")
			}
		})
	}

	// Alarm count beyond the verdict count is self-inconsistent.
	bad, err := EncodeBinaryResponse(nil, &EvalResponse{Verdicts: []bool{true}, Alarms: []int{1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Bump the alarm count field (4 bytes before the single alarm index).
	binary.LittleEndian.PutUint32(bad[len(bad)-8:], 2)
	if _, _, err := DecodeBinaryResponse(bad); err == nil {
		t.Fatal("alarm count beyond verdicts decoded")
	}
}

func TestBinaryRequestOversizeRejected(t *testing.T) {
	// Hand-build a header claiming more samples than the request bound
	// allows; the decoder must refuse before allocating the flat array.
	var b []byte
	b = appendUint32(b, 0)
	b = appendUint32(b, binMagic)
	b = append(b, binVersion, binKindRequest)
	b = appendUint16(b, 1)
	b = append(b, 'D')
	b = appendUint32(b, 1<<31-1) // sample count
	b = appendUint32(b, 1<<20)   // arity
	b = appendUint64(b, 0)
	b = appendUint64(b, 0)
	binary.LittleEndian.PutUint32(b, uint32(len(b)-4))
	if br, err := DecodeBinaryRequest(b); err == nil {
		br.Release()
		t.Fatal("oversize frame decoded")
	}
}
