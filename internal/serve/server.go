package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edem/internal/lifecycle"
	"edem/internal/parallel"
	"edem/internal/predicate"
	"edem/internal/telemetry"
)

// DegradePolicy selects what a request gets when its detector cannot
// evaluate (circuit open, or the evaluation itself fails).
type DegradePolicy int

const (
	// FailClosed returns an explicit error (503/500): no verdict is
	// worse than a missing one. The default.
	FailClosed DegradePolicy = iota
	// FailOpen returns a 200 with no alarms and a Degraded reason: the
	// protected system keeps running without detection coverage.
	FailOpen
)

// String returns the flag spelling of the policy.
func (p DegradePolicy) String() string {
	if p == FailOpen {
		return "fail-open"
	}
	return "fail-closed"
}

// ParsePolicy parses the flag spelling.
func ParsePolicy(s string) (DegradePolicy, error) {
	switch s {
	case "fail-closed":
		return FailClosed, nil
	case "fail-open":
		return FailOpen, nil
	default:
		return 0, fmt.Errorf("serve: unknown degradation policy %q (want fail-open or fail-closed)", s)
	}
}

// Config tunes the serving runtime. The zero value selects the
// defaults documented on each field.
type Config struct {
	// QueueDepth bounds the admission queue; requests arriving while it
	// is full are shed with 429 (default 64).
	QueueDepth int
	// Workers is the evaluation worker count; 0 resolves against the
	// shared parallel budget (all cores). Batch evaluation inside one
	// request additionally fans out through parallel.ForEach under the
	// same global budget.
	Workers int
	// DefaultDeadline is the per-request evaluation deadline applied
	// when the client sends none (default 2s).
	DefaultDeadline time.Duration
	// DrainTimeout bounds the graceful shutdown: after this long,
	// still-unfinished requests are abandoned (default 10s).
	DrainTimeout time.Duration
	// Policy is the degradation policy (default FailClosed).
	Policy DegradePolicy
	// Breaker tunes the per-detector circuit breakers.
	Breaker BreakerConfig
	// AllowDelay honours the request's delay_ms field (synthetic
	// evaluation latency for load and drain testing). Never enable it
	// on a production service.
	AllowDelay bool
	// Interpret forces interpreted predicate evaluation instead of the
	// compiled threshold programs. The two are bit-identical (pinned by
	// the differential suite); the switch exists as the baseline leg of
	// `edem bench-serve` and as an escape hatch should a compiled
	// program ever need to be ruled out in production.
	Interpret bool
	// WrapEval, when non-nil, wraps each detector's evaluation function
	// at bundle-build time (test instrumentation and future model
	// families; the wrapper must be safe for concurrent use).
	WrapEval func(id string, eval func(values []float64) bool) func(values []float64) bool
	// Registry receives the serve.* metrics; nil falls back to the
	// process default registry at construction time.
	Registry *telemetry.Registry
	// Monitor, when non-nil, enables the detector lifecycle: the
	// feedback journal, drift tracking, shadow evaluation and canary
	// promotion (see lifecycle.go in this package). A nil monitor keeps
	// every lifecycle hook off the request path entirely. The monitor is
	// owned by the caller, which must Close it after the server drains.
	Monitor *lifecycle.Monitor
	// Logf, when non-nil, receives operational log lines (reloads,
	// drain progress).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// servedDetector is one live detector: its bundle entry, its breaker
// and its evaluation counters. eval defaults to the predicate's Eval
// and exists so tests (and future model families) can substitute a
// different evaluation function.
type servedDetector struct {
	entry   BundleEntry
	breaker *Breaker
	eval    func(values []float64) bool
	evals   atomic.Int64
	alarms  atomic.Int64
}

// bundleState is one atomically-swappable generation of loaded
// detectors. In-flight requests hold the generation they resolved
// their detector from, so a reload never changes a request mid-way.
type bundleState struct {
	path string
	// gen is the monotone bundle generation: 1 for the initial load,
	// +1 per successful reload. Responses carry it so clients (and the
	// -race reload hammer) can observe swap atomicity.
	gen  uint64
	ids  []string // sorted, for stable status listings
	dets map[string]*servedDetector
	// src is the bundle the state was built from, retained so a
	// lifecycle rollback after a full promote can rebuild the prior
	// bundle without re-reading its file (which may have changed).
	src *Bundle
}

// job is one admitted evaluation request travelling through the
// bounded queue to the worker pool.
type job struct {
	ctx     context.Context
	det     *servedDetector
	samples []Sample
	delay   time.Duration
	done    chan jobResult // buffered(1): workers never block on it
}

type jobResult struct {
	verdicts []bool
	alarms   []int
	err      error
}

// Server is the detector evaluation service. Create it with NewServer,
// expose it with Handler (any http.Server) or Serve (managed listener
// with draining shutdown), and stop it with Close.
type Server struct {
	cfg    Config
	bundle atomic.Pointer[bundleState]
	gens   atomic.Uint64 // bundle generation counter; see bundleState.gen

	queue     chan *job
	stop      chan struct{}
	stopOnce  sync.Once
	workersWG sync.WaitGroup
	draining  atomic.Bool

	reg          *telemetry.Registry
	mRequests    *telemetry.Counter
	mSheds       *telemetry.Counter
	mTrips       *telemetry.Counter
	mTransits    *telemetry.Counter
	mRejections  *telemetry.Counter
	mReloads     *telemetry.Counter
	mEvals       *telemetry.Counter
	mAlarms      *telemetry.Counter
	mEvalErrors  *telemetry.Counter
	mJSONReqs    *telemetry.Counter
	mBinaryReqs  *telemetry.Counter
	mCompiled    *telemetry.Counter
	mCompAtoms   *telemetry.Counter
	mCompFallbks *telemetry.Counter
	gQueue       *telemetry.Gauge
	hRequestNS   *telemetry.Histogram

	// Lifecycle state (all inert when monitor is nil). shadow holds the
	// candidate bundle under dual evaluation; canaryPct the percentage
	// of candidate-answerable traffic it serves; prior the bundle a full
	// promote replaced. lcMu serialises lifecycle transitions (load,
	// promote, rollback) — the request path only loads the atomics.
	monitor     *lifecycle.Monitor
	shadow      atomic.Pointer[bundleState]
	prior       atomic.Pointer[priorBundle]
	canaryPct   atomic.Int64
	canarySeq   atomic.Uint64
	lcMu        sync.Mutex
	mPromotions *telemetry.Counter
	mRollbacks  *telemetry.Counter
}

// NewServer builds a server from a validated bundle and starts its
// evaluation workers. path records where the bundle came from (may be
// empty for in-memory bundles; SIGHUP-style Reload("") then has no
// file to re-read).
func NewServer(b *Bundle, path string, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *job, cfg.QueueDepth),
		stop:  make(chan struct{}),
		reg:   cfg.Registry,
	}
	s.mRequests = s.reg.Counter("serve.requests")
	s.mSheds = s.reg.Counter("serve.sheds")
	s.mTrips = s.reg.Counter("serve.breaker_trips")
	s.mTransits = s.reg.Counter("serve.breaker_transitions")
	s.mRejections = s.reg.Counter("serve.breaker_rejections")
	s.mReloads = s.reg.Counter("serve.reloads")
	s.mEvals = s.reg.Counter("serve.evals")
	s.mAlarms = s.reg.Counter("serve.alarms")
	s.mEvalErrors = s.reg.Counter("serve.eval_errors")
	s.mJSONReqs = s.reg.Counter("serve.json_requests")
	s.mBinaryReqs = s.reg.Counter("serve.binary_requests")
	s.mCompiled = s.reg.Counter("predicate.compile_programs")
	s.mCompAtoms = s.reg.Counter("predicate.compile_atoms")
	s.mCompFallbks = s.reg.Counter("predicate.compile_fallbacks")
	s.gQueue = s.reg.Gauge("serve.queue_depth")
	s.hRequestNS = s.reg.Histogram("serve.request_ns")
	s.monitor = cfg.Monitor
	if s.monitor != nil {
		s.mPromotions = s.reg.Counter("lifecycle.promotions")
		s.mRollbacks = s.reg.Counter("lifecycle.rollbacks")
	}

	st, err := s.buildState(b, path)
	if err != nil {
		return nil, err
	}
	s.bundle.Store(st)

	workers := parallel.Workers(cfg.Workers, 0)
	s.workersWG.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s, nil
}

// buildState validates the bundle, compiles every predicate into its
// flat threshold program (interpreted fallback when the compiler
// refuses one — predicate.compile_fallbacks counts those), and wires
// fresh breakers (reload deliberately resets breaker state: a new
// predicate generation starts with a clean slate).
func (s *Server) buildState(b *Bundle, path string) (*bundleState, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	st := &bundleState{
		path: path,
		gen:  s.gens.Add(1),
		dets: make(map[string]*servedDetector, len(b.Detectors)),
		src:  b,
	}
	for _, e := range b.Detectors {
		pred := e.Predicate
		eval := pred.Eval
		if s.cfg.Interpret {
			// Baseline leg: walk the AST per sample.
		} else if prog, err := predicate.Compile(pred); err == nil {
			eval = prog.Eval
			s.mCompiled.Inc()
			s.mCompAtoms.Add(int64(prog.Atoms()))
		} else {
			s.mCompFallbks.Inc()
			s.cfg.Logf("serve: detector %s: compile fallback to interpreter: %v", e.ID, err)
		}
		if s.cfg.WrapEval != nil {
			eval = s.cfg.WrapEval(e.ID, eval)
		}
		det := &servedDetector{
			entry:   e,
			breaker: NewBreaker(s.cfg.Breaker),
			eval:    eval,
		}
		det.breaker.onTransition = func(from, to BreakerState) {
			s.mTransits.Inc()
			if to == Open {
				s.mTrips.Inc()
			}
		}
		st.dets[e.ID] = det
		st.ids = append(st.ids, e.ID)
	}
	sort.Strings(st.ids)
	return st, nil
}

// Reload loads a bundle file and atomically swaps it in. An empty path
// re-reads the bundle the current generation came from (the SIGHUP
// behaviour). In-flight requests finish on the old generation.
func (s *Server) Reload(path string) ([]string, error) {
	if path == "" {
		path = s.bundle.Load().path
	}
	if path == "" {
		return nil, fmt.Errorf("serve: reload: no bundle path on record")
	}
	b, err := LoadBundle(path)
	if err != nil {
		return nil, err
	}
	st, err := s.buildState(b, path)
	if err != nil {
		return nil, err
	}
	s.bundle.Store(st)
	s.mReloads.Inc()
	s.cfg.Logf("serve: reloaded %d detectors from %s", len(st.ids), path)
	return st.ids, nil
}

// Detectors lists the IDs of the current bundle generation.
func (s *Server) Detectors() []string {
	return append([]string(nil), s.bundle.Load().ids...)
}

// Generation reports the monotone generation number of the currently
// loaded bundle (1 for the initial load, +1 per successful reload).
func (s *Server) Generation() uint64 {
	return s.bundle.Load().gen
}

// Close stops the evaluation workers. Call after the HTTP layer has
// drained; queued jobs whose handlers are gone resolve harmlessly into
// their buffered channels.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	s.workersWG.Wait()
}

// worker is one evaluation worker: it pulls admitted jobs off the
// bounded queue, evaluates them with panic isolation, and reports the
// outcome to both the breaker and the waiting handler.
func (s *Server) worker() {
	defer s.workersWG.Done()
	for {
		select {
		case <-s.stop:
			return
		case j := <-s.queue:
			s.gQueue.Add(-1)
			j.done <- s.runJob(j)
		}
	}
}

// runJob evaluates one job. The job's context bounds everything,
// including the synthetic AllowDelay sleep.
func (s *Server) runJob(j *job) jobResult {
	if err := j.ctx.Err(); err != nil {
		return jobResult{err: err}
	}
	if j.delay > 0 {
		t := time.NewTimer(j.delay)
		select {
		case <-t.C:
		case <-j.ctx.Done():
			t.Stop()
			return jobResult{err: j.ctx.Err()}
		}
	}
	verdicts := make([]bool, len(j.samples))
	var err error
	if len(j.samples) <= inlineEvalBatch {
		// Small batches evaluate inline: one compiled-program eval is
		// tens of nanoseconds, far below the cost of fanning the batch
		// out through the worker pool.
		err = func() (rerr error) {
			defer func() {
				if r := recover(); r != nil {
					rerr = fmt.Errorf("serve: evaluation panic: %v", r)
				}
			}()
			for i := range j.samples {
				verdicts[i] = j.det.eval(j.samples[i])
			}
			return nil
		}()
	} else {
		err = parallel.ForEach(j.ctx, len(j.samples), s.cfg.Workers, func(i int) (rerr error) {
			defer func() {
				if r := recover(); r != nil {
					rerr = fmt.Errorf("serve: evaluation panic: %v", r)
				}
			}()
			verdicts[i] = j.det.eval(j.samples[i])
			return nil
		})
	}
	if err != nil {
		return jobResult{err: err}
	}
	var alarms []int
	for i, v := range verdicts {
		if v {
			alarms = append(alarms, i+1)
		}
	}
	return jobResult{verdicts: verdicts, alarms: alarms}
}

// Handler returns the service's HTTP handler on a dedicated mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/detectors", s.handleDetectors)
	mux.HandleFunc("/v1/evaluate", s.handleEvaluate)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/v1/feedback", s.handleFeedback)
	mux.HandleFunc("/admin/shadow", s.handleShadow)
	mux.HandleFunc("/admin/promote", s.handlePromote)
	mux.HandleFunc("/admin/rollback", s.handleRollback)
	mux.HandleFunc("/admin/baseline", s.handleBaseline)
	mux.HandleFunc("/admin/lifecycle", s.handleLifecycle)
	return mux
}

// Serve runs the service on ln until ctx is cancelled, then drains:
// stop accepting, let in-flight requests finish (bounded by
// DrainTimeout), stop the workers. Returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	err := RunHTTP(ctx, ln, s.Handler(), HTTPConfig{
		DrainTimeout: s.cfg.DrainTimeout,
		OnDrain:      func() { s.draining.Store(true) },
		Logf:         s.cfg.Logf,
	})
	s.Close()
	return err
}

// ListenAndServe listens on addr and calls Serve. It reports the bound
// address through onListen (useful with ":0") before serving.
func (s *Server) ListenAndServe(ctx context.Context, addr string, onListen func(addr net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return s.Serve(ctx, ln)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	st := s.bundle.Load()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining", Detectors: len(st.ids)})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok", Detectors: len(st.ids)})
}

func (s *Server) handleDetectors(w http.ResponseWriter, r *http.Request) {
	st := s.bundle.Load()
	out := make([]DetectorStatus, 0, len(st.ids))
	for _, id := range st.ids {
		d := st.dets[id]
		out = append(out, DetectorStatus{
			ID:       d.entry.ID,
			Module:   d.entry.Module,
			Location: d.entry.Location,
			Clauses:  len(d.entry.Predicate.Clauses),
			Atoms:    d.entry.Predicate.Complexity(),
			Breaker:  d.breaker.State().String(),
			Evals:    d.evals.Load(),
			Alarms:   d.alarms.Load(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req ReloadRequest
	if r.Body != nil {
		// An empty body means "re-read the current bundle".
		_ = json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req)
	}
	ids, err := s.Reload(req.Path)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	st := s.bundle.Load()
	writeJSON(w, http.StatusOK, ReloadResponse{Path: st.path, Detectors: ids, Generation: st.gen})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "telemetry disabled"})
		return
	}
	snap := s.reg.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	_ = snap.WriteJSON(w)
}

// maxRequestBody bounds an evaluate request body (16 MiB of samples is
// far past any sane batch; reject early rather than buffer).
const maxRequestBody = 16 << 20

// inlineEvalBatch is the batch size at or below which a job evaluates
// inline on its worker instead of fanning out through the shared pool.
const inlineEvalBatch = 64

// binRespPool recycles binary response encode buffers; the HTTP layer
// copies on Write, so a buffer is reusable as soon as Write returns.
var binRespPool = sync.Pool{New: func() any { return new([]byte) }}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mRequests.Inc()
	defer func() { s.hRequestNS.ObserveDuration(time.Since(start)) }()

	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: "server draining"})
		return
	}

	// Codec negotiation: the request Content-Type selects JSON or the
	// columnar binary batch frame; the response mirrors the request's
	// codec. Error bodies stay JSON under both (clients key off the
	// status code first).
	isBinary := strings.HasPrefix(r.Header.Get("Content-Type"), ContentTypeBinary)
	var req EvalRequest
	var br *BinaryRequest
	if isBinary {
		s.mBinaryReqs.Inc()
		var err error
		br, err = readBinaryRequest(http.MaxBytesReader(w, r.Body, maxRequestBody))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
			return
		}
		req = EvalRequest{
			Detector: br.Detector, Samples: br.Samples,
			DeadlineMS: br.DeadlineMS, DelayMS: br.DelayMS,
		}
	} else {
		s.mJSONReqs.Inc()
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody)).Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
			return
		}
	}
	// release returns the pooled binary parse state. It must not run
	// while an evaluation may still read req.Samples — the abandoned-
	// deadline path below leaves the buffers to the GC instead.
	release := func() {
		if br != nil {
			br.Release()
			br = nil
		}
	}

	// Lifecycle routing: with a candidate loaded, one side serves and
	// the other mirrors after the response is written. A canary routes
	// canaryPct% of candidate-answerable requests to the candidate;
	// everything else (and everything when no candidate is loaded)
	// serves from the live bundle exactly as before.
	st := s.bundle.Load()
	var mirror *bundleState
	canaried := false
	if s.monitor != nil {
		if cand := s.shadow.Load(); cand != nil {
			mirror = cand
			if pct := s.canaryPct.Load(); pct > 0 && cand.dets[req.Detector] != nil &&
				int64(s.canarySeq.Add(1)%100) < pct {
				st, mirror, canaried = cand, st, true
			}
		}
	}
	gen := st.gen
	writeEval := func(code int, resp EvalResponse) {
		resp.BundleGeneration = gen
		if !isBinary {
			writeJSON(w, code, resp)
			return
		}
		bufp := binRespPool.Get().(*[]byte)
		buf, err := EncodeBinaryResponse((*bufp)[:0], &resp, gen)
		if err != nil {
			binRespPool.Put(bufp)
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
			return
		}
		w.Header().Set("Content-Type", ContentTypeBinary)
		w.WriteHeader(code)
		_, _ = w.Write(buf)
		*bufp = buf
		binRespPool.Put(bufp)
	}

	det, ok := st.dets[req.Detector]
	if !ok {
		release()
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: fmt.Sprintf("unknown detector %q", req.Detector)})
		return
	}
	if len(req.Samples) == 0 {
		release()
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "no samples"})
		return
	}
	arity := len(det.entry.Predicate.Vars)
	for i, sm := range req.Samples {
		if len(sm) != arity {
			release()
			writeJSON(w, http.StatusBadRequest, ErrorResponse{
				Error: fmt.Sprintf("sample %d has %d values, detector %s wants %d", i, len(sm), req.Detector, arity)})
			return
		}
	}

	// Per-request deadline: the client's deadline_ms wins over the
	// server default; both propagate through the job context into the
	// evaluation fan-out.
	deadline := s.cfg.DefaultDeadline
	if req.DeadlineMS > 0 {
		deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	// Circuit check. A tripped detector degrades per policy; the other
	// detectors keep serving untouched.
	if !det.breaker.Allow() {
		s.mRejections.Inc()
		release()
		if s.cfg.Policy == FailOpen {
			writeEval(http.StatusOK, EvalResponse{
				Detector: req.Detector,
				Degraded: "breaker-open",
			})
			return
		}
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{
			Error: fmt.Sprintf("detector %s: circuit open", req.Detector)})
		return
	}

	var delay time.Duration
	if s.cfg.AllowDelay && req.DelayMS > 0 {
		delay = time.Duration(req.DelayMS) * time.Millisecond
	}
	j := &job{
		ctx:     ctx,
		det:     det,
		samples: req.Samples,
		delay:   delay,
		done:    make(chan jobResult, 1),
	}

	// Bounded admission: a full queue sheds immediately with an
	// explicit rejection — the queue never grows past QueueDepth and a
	// shed costs the client one cheap round-trip, not a timeout.
	select {
	case s.queue <- j:
		s.gQueue.Add(1)
	default:
		s.mSheds.Inc()
		det.breaker.Cancel() // shedding is not a detector outcome
		release()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: "admission queue full"})
		return
	}

	select {
	case res := <-j.done:
		if res.err != nil {
			// The evaluation is over: the pooled request buffers are
			// free (verdicts/alarms never alias them).
			release()
			if ctx.Err() != nil {
				// Deadline, not a detector fault.
				det.breaker.Cancel()
				writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "deadline exceeded"})
				return
			}
			s.mEvalErrors.Inc()
			det.breaker.Record(false)
			if s.cfg.Policy == FailOpen {
				writeEval(http.StatusOK, EvalResponse{
					Detector: req.Detector,
					Degraded: "eval-error: " + res.err.Error(),
				})
				return
			}
			writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: res.err.Error()})
			return
		}
		det.breaker.Record(true)
		det.evals.Add(int64(len(res.verdicts)))
		det.alarms.Add(int64(len(res.alarms)))
		s.mEvals.Add(int64(len(res.verdicts)))
		s.mAlarms.Add(int64(len(res.alarms)))
		writeEval(http.StatusOK, EvalResponse{
			Detector:  req.Detector,
			Verdicts:  res.verdicts,
			Alarms:    res.alarms,
			Evaluated: len(res.verdicts),
		})
		// Lifecycle post-processing runs after the response bytes are
		// written (so it cannot perturb the served verdict or its
		// latency-to-first-byte) but before release() — it reads
		// req.Samples, which may alias the pooled binary buffers.
		if s.monitor != nil {
			s.lifecyclePost(req.Detector, req.Samples, res.verdicts, st, mirror, canaried)
		}
		release()
	case <-ctx.Done():
		// The job may still be queued or running; the worker will
		// resolve it into the buffered channel, and the pooled request
		// state stays out of the pool (GC reclaims it) because the
		// evaluation may still be reading the samples. A queue-stuck
		// deadline is load, not a detector fault: no breaker penalty.
		det.breaker.Cancel()
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "deadline exceeded"})
	}
}
