package serve

import (
	"testing"
	"time"
)

// fakeClock drives a breaker through time without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock, *[]string) {
	b := NewBreaker(cfg)
	clk := &fakeClock{t: time.Unix(0, 0)}
	b.now = clk.now
	var transitions []string
	b.onTransition = func(from, to BreakerState) {
		transitions = append(transitions, from.String()+"->"+to.String())
	}
	return b, clk, &transitions
}

func TestBreakerTripHalfOpenClose(t *testing.T) {
	b, clk, transitions := newTestBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Second, Probes: 2})

	// Failures below the threshold keep the circuit closed; a success
	// resets the consecutive count.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.Record(false)
	}
	b.Record(true)
	for i := 0; i < 2; i++ {
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (success reset the streak)", b.State())
	}

	// Third consecutive failure trips.
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must reject")
	}

	// Cooldown elapses: one probe at a time.
	clk.advance(time.Second)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open after cooldown", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open breaker must admit the first probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker must admit only one in-flight probe")
	}

	// Two successful probes (Probes: 2) close the circuit.
	b.Record(true)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open after 1/2 probes", b.State())
	}
	if !b.Allow() {
		t.Fatal("next probe must be admitted")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after 2/2 probes", b.State())
	}

	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	if len(*transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", *transitions, want)
	}
	for i := range want {
		if (*transitions)[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", *transitions, want)
		}
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk, _ := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	b.Allow()
	b.Record(false) // trip
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe must be admitted")
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open after failed probe", b.State())
	}
	// The cooldown restarted at the failed probe.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("cooldown must restart after a failed probe")
	}
	clk.advance(500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe must be admitted after the restarted cooldown")
	}
}

func TestBreakerCancelReleasesProbe(t *testing.T) {
	b, clk, _ := newTestBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second})
	b.Allow()
	b.Record(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe must be admitted")
	}
	b.Cancel() // probe shed/timed out: no outcome
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open after cancel", b.State())
	}
	if !b.Allow() {
		t.Fatal("cancel must release the probe slot")
	}
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}
}

func TestBreakerLateReportsIgnored(t *testing.T) {
	b, _, _ := newTestBreaker(BreakerConfig{Threshold: 2, Cooldown: time.Minute})
	b.Allow()
	b.Allow()
	b.Record(false)
	b.Record(false) // trips
	// A success admitted before the trip reports late: must not close.
	b.Record(true)
	if b.State() != Open {
		t.Fatalf("state = %v, want open (late success ignored)", b.State())
	}
}
