package serve

// Shared HTTP plumbing: the managed listen/drain server loop and the
// deadline-aware retry policy. The detector-serving runtime
// (Server.Serve, Client) and the campaign fabric (internal/fabric
// coordinator and worker) both run on these, so drain semantics and
// retry behaviour stay identical across the two services.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"
)

// HTTPConfig tunes RunHTTP. The zero value selects the defaults
// documented on each field.
type HTTPConfig struct {
	// DrainTimeout bounds the graceful shutdown: after this long,
	// still-unfinished requests are abandoned (default 10s).
	DrainTimeout time.Duration
	// OnDrain, when non-nil, is called once when draining begins —
	// before Shutdown stops accepting — so the handler can start
	// refusing new work (health checks flip, admission closes).
	OnDrain func()
	// Logf, when non-nil, receives drain progress lines.
	Logf func(format string, args ...any)
}

// RunHTTP serves handler on ln until ctx is cancelled, then drains:
// stop accepting, let in-flight requests finish (bounded by
// DrainTimeout). Returns nil on a clean drain, the serve error if the
// listener fails first.
func RunHTTP(ctx context.Context, ln net.Listener, handler http.Handler, cfg HTTPConfig) error {
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	hs := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       time.Minute,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	if cfg.OnDrain != nil {
		cfg.OnDrain()
	}
	cfg.Logf("serve: draining (timeout %v)", cfg.DrainTimeout)
	dctx, cancel := context.WithTimeout(context.Background(), cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	cfg.Logf("serve: drained cleanly")
	return nil
}

// ListenAndServeHTTP listens on addr and calls RunHTTP. It reports the
// bound address through onListen (useful with ":0") before serving.
func ListenAndServeHTTP(ctx context.Context, addr string, handler http.Handler, cfg HTTPConfig, onListen func(addr net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return RunHTTP(ctx, ln, handler, cfg)
}

// Backoff is the shared bounded-exponential retry policy: the first
// retry waits Base, each further retry doubles, capped at Max, for at
// most MaxRetries additional attempts. Every wait is deadline-aware —
// Retry never sleeps past the context deadline just to fail afterwards.
type Backoff struct {
	// MaxRetries is the number of additional attempts after the first;
	// 0 defaults to 3, negative means none.
	MaxRetries int
	// Base is the delay before the first retry (default 50ms).
	Base time.Duration
	// Max caps the doubling (default 2s).
	Max time.Duration
}

func (b Backoff) maxRetries() int {
	if b.MaxRetries < 0 {
		return 0
	}
	if b.MaxRetries == 0 {
		return 3
	}
	return b.MaxRetries
}

// Delay returns the wait before retry number attempt (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base := b.Base
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := b.Max
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	return d
}

// Retry runs fn until it succeeds, fails permanently, the context
// expires or the retry budget runs out. permanent, when non-nil,
// classifies errors not worth another attempt (they return
// immediately, unwrapped). op prefixes the terminal error messages.
func (b Backoff) Retry(ctx context.Context, op string, permanent func(error) bool, fn func() error) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		lastErr = err
		if permanent != nil && permanent(err) {
			return err
		}
		if ctx.Err() != nil {
			return fmt.Errorf("%s: %w (last error: %v)", op, ctx.Err(), lastErr)
		}
		if attempt >= b.maxRetries() {
			return fmt.Errorf("%s: %d attempts exhausted: %w", op, attempt+1, lastErr)
		}
		delay := b.Delay(attempt)
		// Deadline-aware: when the remaining context budget cannot cover
		// the sleep, give up now instead of sleeping into the deadline.
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < delay {
			return fmt.Errorf("%s: deadline too close to retry: %w", op, lastErr)
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("%s: %w (last error: %v)", op, ctx.Err(), lastErr)
		}
	}
}
