package serve

import (
	"context"
	"net/http/httptest"
	"testing"

	"edem/internal/predicate"
	"edem/internal/stats"
	"edem/internal/telemetry"
)

// benchBundle is a moderately complex detector (3 vars, 3 clauses) so
// the evaluation loop does real comparison work per sample.
func benchBundle() *Bundle {
	pred := &predicate.Predicate{
		Name: "bench",
		Vars: []string{"a", "b", "c"},
		Clauses: []predicate.Clause{
			{{Var: "a", Index: 0, Op: predicate.GT, Threshold: 90},
				{Var: "b", Index: 1, Op: predicate.LE, Threshold: 10}},
			{{Var: "c", Index: 2, Op: predicate.GT, Threshold: 95}},
			{{Var: "a", Index: 0, Op: predicate.LE, Threshold: -90},
				{Var: "c", Index: 2, Op: predicate.NE, Threshold: 0}},
		},
	}
	return &Bundle{Version: BundleVersion, Detectors: []BundleEntry{
		{ID: "B1", Module: "M", Location: "Exit", Predicate: pred},
	}}
}

func benchSamples(n int) []Sample {
	rng := stats.NewRNG(7)
	out := make([]Sample, n)
	for i := range out {
		out[i] = Sample{rng.Float64()*200 - 100, rng.Float64()*200 - 100, rng.Float64()*200 - 100}
	}
	return out
}

// benchServe runs the end-to-end request loop — client encode, HTTP
// round trip, server decode, evaluation, response — for one codec and
// evaluation mode, reporting allocations.
func benchServe(b *testing.B, codec Codec, interpret bool) {
	s, err := NewServer(benchBundle(), "", Config{
		Interpret: interpret,
		Registry:  telemetry.New(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	cl := &Client{Base: hs.URL, Codec: codec, MaxRetries: -1}
	samples := benchSamples(64)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cl.Evaluate(ctx, "B1", samples)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Evaluated != len(samples) {
			b.Fatalf("evaluated %d of %d", resp.Evaluated, len(samples))
		}
	}
	b.ReportMetric(float64(b.N*len(samples))/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkServeJSON(b *testing.B)   { benchServe(b, CodecJSON, false) }
func BenchmarkServeBinary(b *testing.B) { benchServe(b, CodecBinary, false) }

// BenchmarkServeJSONInterpreted is the full baseline configuration the
// bench-serve harness compares against.
func BenchmarkServeJSONInterpreted(b *testing.B) { benchServe(b, CodecJSON, true) }

// BenchmarkBinaryCodec isolates the frame codec round trip from HTTP:
// encode a 64-sample request, decode it, encode the response — the
// per-request codec work the binary path adds over raw evaluation.
func BenchmarkBinaryCodec(b *testing.B) {
	samples := benchSamples(64)
	resp := &EvalResponse{Verdicts: make([]bool, 64), Evaluated: 64}
	var reqBuf, respBuf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		reqBuf, err = EncodeBinaryRequest(reqBuf[:0], "B1", samples, 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		br, err := DecodeBinaryRequest(reqBuf)
		if err != nil {
			b.Fatal(err)
		}
		br.Release()
		respBuf, err = EncodeBinaryResponse(respBuf[:0], resp, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
}
