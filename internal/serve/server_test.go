package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"edem/internal/predicate"
	"edem/internal/telemetry"
)

// testPredicate flags v > 100.
func testPredicate(name string) *predicate.Predicate {
	return &predicate.Predicate{
		Name: name,
		Vars: []string{"v"},
		Clauses: []predicate.Clause{
			{{Var: "v", Index: 0, Op: predicate.GT, Threshold: 100}},
		},
	}
}

func testBundle(ids ...string) *Bundle {
	b := &Bundle{Version: BundleVersion}
	for _, id := range ids {
		b.Detectors = append(b.Detectors, BundleEntry{
			ID: id, Module: "M", Location: "Exit", Predicate: testPredicate(id),
		})
	}
	return b
}

// newTestServer builds a server plus an httptest front end. The
// returned cleanup stops both.
func newTestServer(t *testing.T, cfg Config, ids ...string) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = telemetry.New()
	}
	s, err := NewServer(testBundle(ids...), "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, hs
}

func postEval(t *testing.T, base string, req EvalRequest) (int, EvalResponse, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(base+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var ok EvalResponse
	var bad ErrorResponse
	dec := json.NewDecoder(res.Body)
	if res.StatusCode == http.StatusOK {
		if err := dec.Decode(&ok); err != nil {
			t.Fatal(err)
		}
	} else {
		if err := dec.Decode(&bad); err != nil {
			t.Fatal(err)
		}
	}
	return res.StatusCode, ok, bad
}

func TestServeEvaluate(t *testing.T) {
	_, hs := newTestServer(t, Config{}, "D1")
	code, ok, _ := postEval(t, hs.URL, EvalRequest{
		Detector: "D1",
		Samples:  []Sample{{5}, {500}, {math.NaN()}, {101}},
	})
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	wantV := []bool{false, true, false, true}
	if len(ok.Verdicts) != len(wantV) {
		t.Fatalf("verdicts = %v", ok.Verdicts)
	}
	for i := range wantV {
		if ok.Verdicts[i] != wantV[i] {
			t.Fatalf("verdicts = %v, want %v", ok.Verdicts, wantV)
		}
	}
	if len(ok.Alarms) != 2 || ok.Alarms[0] != 2 || ok.Alarms[1] != 4 {
		t.Fatalf("alarms = %v, want [2 4]", ok.Alarms)
	}
	if ok.Evaluated != 4 || ok.Degraded != "" {
		t.Fatalf("evaluated = %d degraded = %q", ok.Evaluated, ok.Degraded)
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{}, "D1")
	// Unknown detector.
	code, _, bad := postEval(t, hs.URL, EvalRequest{Detector: "NOPE", Samples: []Sample{{1}}})
	if code != http.StatusNotFound {
		t.Fatalf("unknown detector: code = %d (%s)", code, bad.Error)
	}
	// Arity mismatch.
	code, _, _ = postEval(t, hs.URL, EvalRequest{Detector: "D1", Samples: []Sample{{1, 2}}})
	if code != http.StatusBadRequest {
		t.Fatalf("arity mismatch: code = %d", code)
	}
	// Empty batch.
	code, _, _ = postEval(t, hs.URL, EvalRequest{Detector: "D1"})
	if code != http.StatusBadRequest {
		t.Fatalf("empty batch: code = %d", code)
	}
}

// TestServeQueueFullSheds saturates a 1-deep queue behind a single
// busy worker and requires the explicit 429 rejection — bounded
// admission, no deadlock, and the queued work still completes.
func TestServeQueueFullSheds(t *testing.T) {
	reg := telemetry.New()
	s, hs := newTestServer(t, Config{
		QueueDepth: 1,
		Workers:    1,
		AllowDelay: true,
		Registry:   reg,
	}, "D1")

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, _, _ := postEval(t, hs.URL, EvalRequest{
				Detector: "D1", Samples: []Sample{{500}}, DelayMS: 400,
			})
			codes[i] = code
		}(i)
		// Let request 0 reach the worker and request 1 occupy the queue.
		time.Sleep(100 * time.Millisecond)
	}

	// Queue full: this one must shed immediately.
	start := time.Now()
	code, _, bad := postEval(t, hs.URL, EvalRequest{Detector: "D1", Samples: []Sample{{500}}})
	if code != http.StatusTooManyRequests {
		t.Fatalf("saturated queue: code = %d (%s), want 429", code, bad.Error)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("shed took %v; rejection must be immediate, not queued", d)
	}
	if got := reg.Counter("serve.sheds").Value(); got != 1 {
		t.Fatalf("serve.sheds = %d, want 1", got)
	}

	// The admitted requests complete normally: shedding degraded the
	// excess, not the queue.
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("admitted request %d: code = %d", i, c)
		}
	}
	if got := reg.Gauge("serve.queue_depth").Value(); got != 0 {
		t.Fatalf("queue depth after drain = %d, want 0", got)
	}
	_ = s
}

// TestServeBreakerCycleFailClosed drives one detector through
// trip → open → half-open → closed while a healthy detector keeps
// serving throughout.
func TestServeBreakerCycleFailClosed(t *testing.T) {
	reg := telemetry.New()
	s, hs := newTestServer(t, Config{
		Policy:   FailClosed,
		Breaker:  BreakerConfig{Threshold: 2, Cooldown: 100 * time.Millisecond},
		Registry: reg,
	}, "BAD", "OK")

	det := s.bundle.Load().dets["BAD"]
	goodEval := det.eval
	det.eval = func([]float64) bool { panic("synthetic detector fault") }

	// Two panicking evaluations trip the breaker; each is an explicit
	// 500 under fail-closed.
	for i := 0; i < 2; i++ {
		code, _, _ := postEval(t, hs.URL, EvalRequest{Detector: "BAD", Samples: []Sample{{1}}})
		if code != http.StatusInternalServerError {
			t.Fatalf("panic eval %d: code = %d, want 500", i, code)
		}
	}
	if got := reg.Counter("serve.breaker_trips").Value(); got != 1 {
		t.Fatalf("serve.breaker_trips = %d, want 1", got)
	}

	// Open circuit: explicit 503 without evaluating.
	code, _, bad := postEval(t, hs.URL, EvalRequest{Detector: "BAD", Samples: []Sample{{1}}})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("open circuit: code = %d (%s), want 503", code, bad.Error)
	}

	// The healthy detector is unaffected — per-detector isolation.
	code, ok, _ := postEval(t, hs.URL, EvalRequest{Detector: "OK", Samples: []Sample{{500}}})
	if code != http.StatusOK || len(ok.Alarms) != 1 {
		t.Fatalf("healthy detector: code = %d alarms = %v", code, ok.Alarms)
	}

	// After the cooldown, a successful probe closes the circuit.
	det.eval = goodEval
	time.Sleep(150 * time.Millisecond)
	code, ok, _ = postEval(t, hs.URL, EvalRequest{Detector: "BAD", Samples: []Sample{{500}}})
	if code != http.StatusOK || len(ok.Alarms) != 1 {
		t.Fatalf("half-open probe: code = %d alarms = %v", code, ok.Alarms)
	}
	if st := det.breaker.State(); st != Closed {
		t.Fatalf("breaker state = %v, want closed", st)
	}
	if got := reg.Counter("serve.breaker_transitions").Value(); got != 3 {
		t.Fatalf("serve.breaker_transitions = %d, want 3 (trip, half-open, close)", got)
	}
}

// TestServeFailOpen pins the other degradation policy: evaluation
// faults and open circuits yield 200-with-degraded instead of errors.
func TestServeFailOpen(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Policy:  FailOpen,
		Breaker: BreakerConfig{Threshold: 1, Cooldown: time.Hour},
	}, "BAD")
	s.bundle.Load().dets["BAD"].eval = func([]float64) bool { panic("synthetic fault") }

	code, ok, _ := postEval(t, hs.URL, EvalRequest{Detector: "BAD", Samples: []Sample{{1}}})
	if code != http.StatusOK {
		t.Fatalf("fail-open eval error: code = %d, want 200", code)
	}
	if ok.Degraded == "" || ok.Evaluated != 0 || len(ok.Verdicts) != 0 {
		t.Fatalf("fail-open eval error: %+v, want degraded empty response", ok)
	}

	// Now tripped: still 200, with the breaker-open reason.
	code, ok, _ = postEval(t, hs.URL, EvalRequest{Detector: "BAD", Samples: []Sample{{1}}})
	if code != http.StatusOK || ok.Degraded != "breaker-open" {
		t.Fatalf("fail-open tripped: code = %d degraded = %q", code, ok.Degraded)
	}
}

func TestServeDeadline(t *testing.T) {
	_, hs := newTestServer(t, Config{AllowDelay: true}, "D1")
	code, _, bad := postEval(t, hs.URL, EvalRequest{
		Detector: "D1", Samples: []Sample{{1}}, DelayMS: 2000, DeadlineMS: 50,
	})
	if code != http.StatusGatewayTimeout {
		t.Fatalf("deadline: code = %d (%s), want 504", code, bad.Error)
	}
}

func TestServeReload(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	if err := testBundle("OLD").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	s, err := NewServer(b, path, Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	if code, _, _ := postEval(t, hs.URL, EvalRequest{Detector: "OLD", Samples: []Sample{{1}}}); code != http.StatusOK {
		t.Fatalf("pre-reload: code = %d", code)
	}

	// Swap the bundle file and reload via the admin endpoint.
	if err := testBundle("NEW1", "NEW2").WriteFile(path); err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(hs.URL+"/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rr ReloadResponse
	if err := json.NewDecoder(res.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || len(rr.Detectors) != 2 {
		t.Fatalf("reload: code = %d detectors = %v", res.StatusCode, rr.Detectors)
	}

	if code, _, _ := postEval(t, hs.URL, EvalRequest{Detector: "NEW2", Samples: []Sample{{500}}}); code != http.StatusOK {
		t.Fatalf("post-reload new detector: code = %d", code)
	}
	if code, _, _ := postEval(t, hs.URL, EvalRequest{Detector: "OLD", Samples: []Sample{{1}}}); code != http.StatusNotFound {
		t.Fatalf("post-reload old detector: code = %d, want 404", code)
	}
	if got := reg.Counter("serve.reloads").Value(); got != 1 {
		t.Fatalf("serve.reloads = %d, want 1", got)
	}
}

// TestServeDrainUnderLoad cancels the serve context while a slow
// request is in flight: the request must complete, the drain must
// return nil, and the listener must stop accepting.
func TestServeDrainUnderLoad(t *testing.T) {
	reg := telemetry.New()
	s, err := NewServer(testBundle("D1"), "", Config{
		AllowDelay:   true,
		DrainTimeout: 5 * time.Second,
		Registry:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + ln.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx, ln) }()

	// Slow request in flight...
	type result struct {
		code int
		ok   EvalResponse
	}
	reqDone := make(chan result, 1)
	go func() {
		code, ok, _ := postEval(t, base, EvalRequest{
			Detector: "D1", Samples: []Sample{{500}}, DelayMS: 400, DeadlineMS: 3000,
		})
		reqDone <- result{code, ok}
	}()
	time.Sleep(100 * time.Millisecond)

	// ...when the shutdown signal arrives.
	cancel()

	r := <-reqDone
	if r.code != http.StatusOK || len(r.ok.Alarms) != 1 {
		t.Fatalf("in-flight request during drain: code = %d alarms = %v", r.code, r.ok.Alarms)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drained: the listener is closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("listener still accepting after drain")
	}
}

// TestServeCountersWorkerInvariant pins the scheduling invariance of
// the serve counters: the same request stream yields identical
// serve.requests/evals/alarms for any worker count.
func TestServeCountersWorkerInvariant(t *testing.T) {
	counts := func(workers int) (reqs, evals, alarms int64) {
		reg := telemetry.New()
		_, hs := newTestServer(t, Config{Workers: workers, Registry: reg}, "D1")
		for i := 0; i < 5; i++ {
			samples := []Sample{{5}, {500}, {float64(i * 60)}}
			code, _, _ := postEval(t, hs.URL, EvalRequest{Detector: "D1", Samples: samples})
			if code != http.StatusOK {
				t.Fatalf("workers=%d request %d: code = %d", workers, i, code)
			}
		}
		return reg.Counter("serve.requests").Value(),
			reg.Counter("serve.evals").Value(),
			reg.Counter("serve.alarms").Value()
	}
	r1, e1, a1 := counts(1)
	for _, w := range []int{2, 8} {
		r, e, a := counts(w)
		if r != r1 || e != e1 || a != a1 {
			t.Fatalf("workers=%d: (reqs,evals,alarms) = (%d,%d,%d), want (%d,%d,%d)",
				w, r, e, a, r1, e1, a1)
		}
	}
	if e1 != 15 {
		t.Fatalf("evals = %d, want 15", e1)
	}
	// 5 requests × alarms at {500} plus {i*60 > 100} for i ∈ {2,3,4}.
	if a1 != 8 {
		t.Fatalf("alarms = %d, want 8", a1)
	}
}

func TestServeHealthAndDetectors(t *testing.T) {
	_, hs := newTestServer(t, Config{}, "A", "B")
	res, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(res.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusOK || h.Status != "ok" || h.Detectors != 2 {
		t.Fatalf("healthz: %d %+v", res.StatusCode, h)
	}

	res, err = http.Get(hs.URL + "/v1/detectors")
	if err != nil {
		t.Fatal(err)
	}
	var ds []DetectorStatus
	if err := json.NewDecoder(res.Body).Decode(&ds); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if len(ds) != 2 || ds[0].ID != "A" || ds[1].ID != "B" || ds[0].Breaker != "closed" {
		t.Fatalf("detectors: %+v", ds)
	}
}
