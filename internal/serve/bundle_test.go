package serve

import (
	"path/filepath"
	"strings"
	"testing"

	"edem/internal/propane"
)

func TestBundleRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundle.json")
	in := testBundle("MG-A1", "FG-B2")
	in.Detectors[1].Location = "Entry"
	if err := in.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	out, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Detectors) != 2 {
		t.Fatalf("detectors = %d", len(out.Detectors))
	}
	for i, e := range out.Detectors {
		want := in.Detectors[i]
		if e.ID != want.ID || e.Module != want.Module || e.Location != want.Location {
			t.Fatalf("entry %d = %+v, want %+v", i, e, want)
		}
		if e.Predicate == nil || len(e.Predicate.Clauses) != len(want.Predicate.Clauses) {
			t.Fatalf("entry %d predicate did not round-trip: %+v", i, e.Predicate)
		}
		// The decoded predicate must evaluate identically.
		for _, v := range []float64{5, 100, 100.5, 500} {
			if e.Predicate.Eval([]float64{v}) != want.Predicate.Eval([]float64{v}) {
				t.Fatalf("entry %d predicate diverges at %g", i, v)
			}
		}
	}
	if loc, err := out.Detectors[1].ParseLocation(); err != nil || loc != propane.Entry {
		t.Fatalf("location = %v, %v", loc, err)
	}
}

func TestBundleValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Bundle)
		want string
	}{
		{"bad version", func(b *Bundle) { b.Version = 99 }, "version"},
		{"no detectors", func(b *Bundle) { b.Detectors = nil }, "no detectors"},
		{"empty id", func(b *Bundle) { b.Detectors[0].ID = "" }, "empty id"},
		{"duplicate id", func(b *Bundle) { b.Detectors[1].ID = b.Detectors[0].ID }, "duplicate"},
		{"bad location", func(b *Bundle) { b.Detectors[0].Location = "Middle" }, "location"},
		{"nil predicate", func(b *Bundle) { b.Detectors[0].Predicate = nil }, "no predicate"},
	}
	for _, tc := range cases {
		b := testBundle("A", "B")
		tc.mut(b)
		err := b.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if err := testBundle("A", "B").Validate(); err != nil {
		t.Errorf("valid bundle rejected: %v", err)
	}
}
