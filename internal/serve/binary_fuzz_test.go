package serve

import (
	"bytes"
	"math"
	"testing"
)

// FuzzBinaryFrameRoundTrip asserts write stability of the columnar
// batch codec, dispatching on the frame kind byte: any bytes the strict
// request or response decoder accepts must re-encode to a frame the
// decoder accepts again, and encode(decode(x)) must be a fixed point
// after the first write (which may normalise exotic-but-valid frames,
// e.g. a declared arity on a zero-sample batch).
func FuzzBinaryFrameRoundTrip(f *testing.F) {
	if seed, err := EncodeBinaryRequest(nil, "D-1", []Sample{
		{1.5, math.NaN()}, {math.Inf(-1), math.Copysign(0, -1)},
	}, 250, 7); err == nil {
		f.Add(seed)
	}
	if seed, err := EncodeBinaryRequest(nil, "", nil, 0, 0); err == nil {
		f.Add(seed)
	}
	if seed, err := EncodeBinaryResponse(nil, &EvalResponse{
		Verdicts: []bool{true, false, true}, Alarms: []int{1, 3}, Evaluated: 3,
	}, 9); err == nil {
		f.Add(seed)
	}
	if seed, err := EncodeBinaryResponse(nil, &EvalResponse{Degraded: "breaker-open"}, 1); err == nil {
		f.Add(seed)
	}
	f.Add([]byte("EDBF garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		if br, err := DecodeBinaryRequest(data); err == nil {
			first, err := EncodeBinaryRequest(nil, br.Detector, br.Samples, br.DeadlineMS, br.DelayMS)
			if err != nil {
				t.Fatalf("re-encode of accepted request failed: %v", err)
			}
			br.Release()
			again, err := DecodeBinaryRequest(first)
			if err != nil {
				t.Fatalf("re-decode of own request encoding failed: %v", err)
			}
			second, err := EncodeBinaryRequest(nil, again.Detector, again.Samples, again.DeadlineMS, again.DelayMS)
			again.Release()
			if err != nil {
				t.Fatalf("second request encode failed: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("request encode cycle not stable:\nfirst:  %x\nsecond: %x", first, second)
			}
		}
		if resp, gen, err := DecodeBinaryResponse(data); err == nil {
			first, err := EncodeBinaryResponse(nil, resp, gen)
			if err != nil {
				t.Fatalf("re-encode of accepted response failed: %v", err)
			}
			resp2, gen2, err := DecodeBinaryResponse(first)
			if err != nil {
				t.Fatalf("re-decode of own response encoding failed: %v", err)
			}
			if gen2 != gen {
				t.Fatalf("generation not stable: %d -> %d", gen, gen2)
			}
			second, err := EncodeBinaryResponse(nil, resp2, gen2)
			if err != nil {
				t.Fatalf("second response encode failed: %v", err)
			}
			if !bytes.Equal(first, second) {
				t.Fatalf("response encode cycle not stable:\nfirst:  %x\nsecond: %x", first, second)
			}
		}
	})
}
