// Package serve is the online detector-serving runtime: it takes the
// predicates the methodology learns (paper §VII-D deploys them as
// runtime assertions) and serves them as a long-running network
// service with production robustness semantics — per-request deadlines
// with context propagation, a bounded admission queue that sheds load
// with explicit rejections once full, a per-detector circuit breaker
// with half-open probing, configurable fail-open/fail-closed
// degradation, hot predicate reload via atomic bundle swap, draining
// shutdown, and a detector lifecycle — shadow evaluation of a
// candidate bundle beside the live one, canary promotion with
// automatic rollback, and feedback/drift journalling through
// internal/lifecycle (see lifecycle.go). The design follows ZOFI's
// zero-overhead stance: the detection path stays cheap and bounded
// even under stress, and overload degrades to explicit rejection
// instead of queue collapse.
//
// Role in the methodology: the deployment half of Step 4 and §VII-D —
// `edem export` packages learnt predicates into a bundle, `edem serve`
// evaluates streamed state samples against them, serve.Client
// re-validates datasets against a remote service, and `edem lifecycle`
// closes the loop back into refinement.
//
// Ownership and concurrency: a Bundle is immutable once loaded. A
// Server is safe for unrestricted concurrent use. Up to two bundle
// generations are live at once — the serving bundle and an optional
// shadow candidate — each swapped atomically; a request resolves the
// generation that serves it exactly once, in-flight requests finish on
// the generation they started with, and the client-visible response is
// produced solely by the serving generation (candidate evaluation
// happens after the response is written). A Client is safe for
// concurrent use.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"edem/internal/predicate"
	"edem/internal/propane"
)

// BundleVersion is the current on-disk bundle format version.
const BundleVersion = 1

// Bundle is the deployable detector artefact written by `edem export`:
// one or more learnt predicates, each tagged with the module and
// instrumentation location it guards, so the serving runtime (and any
// future in-process deployment) knows where each detector belongs.
type Bundle struct {
	Version   int           `json:"version"`
	Detectors []BundleEntry `json:"detectors"`
}

// BundleEntry is one deployable detector.
type BundleEntry struct {
	// ID names the detector; requests select it by this key. By
	// convention it is the Table II dataset ID the predicate was learnt
	// from (e.g. "MG-B1").
	ID string `json:"id"`
	// Module and Location identify the guarded code location — the
	// sampling location of the campaign the predicate was learnt from.
	Module string `json:"module"`
	// Location is the instrumentation point, "Entry" or "Exit".
	Location string `json:"location"`
	// Predicate is the detection predicate in DNF.
	Predicate *predicate.Predicate `json:"predicate"`
}

// predicateJSON mirrors predicate.Predicate field-for-field so bundles
// embed predicates as plain JSON objects. (Predicate's TextMarshaler
// would otherwise encode them as escaped strings, which encoding/json
// cannot decode back into the struct.)
type predicateJSON struct {
	Name    string             `json:"name"`
	Vars    []string           `json:"vars"`
	Clauses []predicate.Clause `json:"clauses"`
}

type entryJSON struct {
	ID        string         `json:"id"`
	Module    string         `json:"module"`
	Location  string         `json:"location"`
	Predicate *predicateJSON `json:"predicate"`
}

// MarshalJSON encodes the entry with the predicate as a nested object.
func (e BundleEntry) MarshalJSON() ([]byte, error) {
	out := entryJSON{ID: e.ID, Module: e.Module, Location: e.Location}
	if e.Predicate != nil {
		out.Predicate = &predicateJSON{
			Name: e.Predicate.Name, Vars: e.Predicate.Vars, Clauses: e.Predicate.Clauses,
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes the nested-object form written by MarshalJSON.
func (e *BundleEntry) UnmarshalJSON(data []byte) error {
	var in entryJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	e.ID, e.Module, e.Location = in.ID, in.Module, in.Location
	e.Predicate = nil
	if in.Predicate != nil {
		e.Predicate = &predicate.Predicate{
			Name: in.Predicate.Name, Vars: in.Predicate.Vars, Clauses: in.Predicate.Clauses,
		}
	}
	return nil
}

// ParseLocation resolves the entry's location string.
func (e BundleEntry) ParseLocation() (propane.Location, error) {
	switch e.Location {
	case propane.Entry.String():
		return propane.Entry, nil
	case propane.Exit.String():
		return propane.Exit, nil
	default:
		return 0, fmt.Errorf("serve: detector %q: unknown location %q", e.ID, e.Location)
	}
}

// Validate checks structural invariants: supported version, at least
// one detector, unique non-empty IDs, parseable locations, non-nil
// predicates.
func (b *Bundle) Validate() error {
	if b.Version != BundleVersion {
		return fmt.Errorf("serve: unsupported bundle version %d (want %d)", b.Version, BundleVersion)
	}
	if len(b.Detectors) == 0 {
		return fmt.Errorf("serve: bundle has no detectors")
	}
	seen := make(map[string]bool, len(b.Detectors))
	for _, e := range b.Detectors {
		if e.ID == "" {
			return fmt.Errorf("serve: bundle entry with empty id")
		}
		if seen[e.ID] {
			return fmt.Errorf("serve: duplicate detector id %q", e.ID)
		}
		seen[e.ID] = true
		if _, err := e.ParseLocation(); err != nil {
			return err
		}
		if e.Predicate == nil {
			return fmt.Errorf("serve: detector %q has no predicate", e.ID)
		}
	}
	return nil
}

// ReadBundle decodes and validates a bundle stream.
func ReadBundle(r io.Reader) (*Bundle, error) {
	var b Bundle
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("serve: decode bundle: %w", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// LoadBundle reads and validates a bundle file.
func LoadBundle(path string) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serve: open bundle: %w", err)
	}
	defer f.Close()
	b, err := ReadBundle(f)
	if err != nil {
		return nil, fmt.Errorf("serve: bundle %s: %w", path, err)
	}
	return b, nil
}

// Write serialises the bundle as stable indented JSON (the artefact is
// meant to be diffed and version-controlled).
func (b *Bundle) Write(w io.Writer) error {
	if err := b.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteFile writes the bundle to path.
func (b *Bundle) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
