package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// StatusError is a non-2xx response from the serving runtime. Code 429
// (shed) and 503 (draining / circuit open under fail-closed) are
// retryable; the client retries them automatically.
type StatusError struct {
	Code int
	Msg  string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: server returned %d: %s", e.Code, e.Msg)
}

// retryable reports whether the status is worth another attempt:
// shedding and transient unavailability are; client errors are not.
func retryable(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return code >= 500 && code != http.StatusInternalServerError
}

// Codec selects the wire format a Client speaks to the serving runtime.
type Codec int

const (
	// CodecJSON is the default human-debuggable JSON transport (hex
	// bit-pattern escapes carry NaN/±Inf).
	CodecJSON Codec = iota
	// CodecBinary is the columnar binary batch frame: raw IEEE-754 bit
	// patterns, no per-sample parsing cost, exact by construction.
	CodecBinary
)

// String returns the flag spelling of the codec.
func (c Codec) String() string {
	if c == CodecBinary {
		return "binary"
	}
	return "json"
}

// ParseCodec parses the flag spelling.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "json":
		return CodecJSON, nil
	case "binary":
		return CodecBinary, nil
	default:
		return 0, fmt.Errorf("serve: unknown codec %q (want json or binary)", s)
	}
}

// Client is a retrying client for the serving runtime, built for batch
// re-validation against a remote service: transient failures (network
// errors, sheds, drains) retry with bounded exponential backoff, and
// every retry is deadline-aware — the client never sleeps past the
// context deadline just to fail afterwards. Safe for concurrent use.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient
	// (per-call deadlines come from the context).
	HTTP *http.Client
	// Codec selects the evaluate wire format (default CodecJSON). Both
	// codecs yield bit-identical verdicts; binary skips the JSON
	// formatting and parsing costs on large batches.
	Codec Codec
	// MaxRetries is the number of additional attempts after the first
	// (default 3).
	MaxRetries int
	// Backoff is the delay before the first retry, doubling per attempt
	// (default 50ms).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 2s).
	MaxBackoff time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// policy returns the client's shared Backoff retry policy.
func (c *Client) policy() Backoff {
	return Backoff{MaxRetries: c.MaxRetries, Base: c.Backoff, Max: c.MaxBackoff}
}

// permanentStatus classifies errors not worth another attempt: any
// non-retryable HTTP status (client errors, straight 500s).
func permanentStatus(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && !retryable(se.Code)
}

// Evaluate posts one batch of samples to the named detector over the
// client's codec, retrying transient failures until ctx expires or the
// retry budget runs out.
func (c *Client) Evaluate(ctx context.Context, detector string, samples []Sample) (*EvalResponse, error) {
	var body []byte
	var err error
	if c.Codec == CodecBinary {
		body, err = EncodeBinaryRequest(nil, detector, samples, 0, 0)
	} else {
		body, err = json.Marshal(EvalRequest{Detector: detector, Samples: samples})
	}
	if err != nil {
		return nil, err
	}
	var out *EvalResponse
	err = c.policy().Retry(ctx, "serve: evaluate", permanentStatus, func() error {
		resp, err := c.post(ctx, "/v1/evaluate", body)
		if err != nil {
			return err
		}
		out = resp
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EvaluateChunks re-validates a large batch by splitting it into
// chunks of at most chunk samples (default 256), evaluating each with
// the full retry policy, and merging the responses — alarms are
// re-indexed into the caller's 1-based sample numbering.
func (c *Client) EvaluateChunks(ctx context.Context, detector string, samples []Sample, chunk int) (*EvalResponse, error) {
	if chunk <= 0 {
		chunk = 256
	}
	out := &EvalResponse{Detector: detector}
	for lo := 0; lo < len(samples); lo += chunk {
		hi := lo + chunk
		if hi > len(samples) {
			hi = len(samples)
		}
		resp, err := c.Evaluate(ctx, detector, samples[lo:hi])
		if err != nil {
			return nil, fmt.Errorf("serve: chunk [%d,%d): %w", lo, hi, err)
		}
		if resp.Degraded != "" && out.Degraded == "" {
			out.Degraded = resp.Degraded
		}
		out.Verdicts = append(out.Verdicts, resp.Verdicts...)
		for _, a := range resp.Alarms {
			out.Alarms = append(out.Alarms, lo+a)
		}
		out.Evaluated += resp.Evaluated
	}
	return out, nil
}

// Health fetches /healthz; it does not retry (health checks must
// reflect the instant, not the trend).
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	res, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(io.LimitReader(res.Body, 1<<16)).Decode(&h); err != nil {
		return nil, fmt.Errorf("serve: health: %w", err)
	}
	return &h, nil
}

// post performs one attempt and maps non-2xx statuses to StatusError.
// The response codec follows the response Content-Type (the server
// mirrors the request codec for evaluations; errors stay JSON).
func (c *Client) post(ctx context.Context, path string, body []byte) (*EvalResponse, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if c.Codec == CodecBinary {
		req.Header.Set("Content-Type", ContentTypeBinary)
	} else {
		req.Header.Set("Content-Type", ContentTypeJSON)
	}
	res, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, maxRequestBody))
	if err != nil {
		return nil, err
	}
	if res.StatusCode/100 != 2 {
		var er ErrorResponse
		msg := string(data)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, &StatusError{Code: res.StatusCode, Msg: msg}
	}
	if strings.HasPrefix(res.Header.Get("Content-Type"), ContentTypeBinary) {
		out, _, err := DecodeBinaryResponse(data)
		if err != nil {
			return nil, fmt.Errorf("serve: decode response: %w", err)
		}
		return out, nil
	}
	var out EvalResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("serve: decode response: %w", err)
	}
	return &out, nil
}
