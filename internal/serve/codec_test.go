package serve

import (
	"encoding/json"
	"math"
	"testing"
)

func TestSampleRoundTripNaNInf(t *testing.T) {
	in := Sample{1.5, math.NaN(), math.Inf(1), math.Inf(-1), -0.0, 1e308, math.Float64frombits(0x7ff8000000000001)}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Sample
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if math.Float64bits(in[i]) != math.Float64bits(out[i]) {
			t.Errorf("value %d: %x -> %x", i, math.Float64bits(in[i]), math.Float64bits(out[i]))
		}
	}
}

func TestSampleDecodeMixedForms(t *testing.T) {
	var s Sample
	if err := json.Unmarshal([]byte(`[1, "7ff0000000000000", 2.5]`), &s); err != nil {
		t.Fatal(err)
	}
	if s[0] != 1 || !math.IsInf(s[1], 1) || s[2] != 2.5 {
		t.Fatalf("decoded %v", s)
	}
}

func TestSampleDecodeRejectsGarbage(t *testing.T) {
	for _, bad := range []string{`["xyz"]`, `[true]`, `{"a":1}`, `["7ff00000000000000000"]`} {
		var s Sample
		if err := json.Unmarshal([]byte(bad), &s); err == nil {
			t.Errorf("decode %s should fail, got %v", bad, s)
		}
	}
}

// FuzzSampleRoundTrip asserts write stability of the state-sample
// transport: anything the decoder accepts must re-encode and re-decode
// to bit-identical values.
func FuzzSampleRoundTrip(f *testing.F) {
	f.Add(`[1,2.5,-3]`)
	f.Add(`["7ff8000000000000","fff0000000000000",0]`)
	f.Add(`[1e308,-0.0,"0"]`)
	f.Add(`[]`)
	f.Fuzz(func(t *testing.T, data string) {
		var s Sample
		if err := json.Unmarshal([]byte(data), &s); err != nil {
			t.Skip()
		}
		enc, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("re-encode of accepted sample failed: %v", err)
		}
		var again Sample
		if err := json.Unmarshal(enc, &again); err != nil {
			t.Fatalf("re-decode of own encoding failed: %v (enc %s)", err, enc)
		}
		if len(again) != len(s) {
			t.Fatalf("round trip changed length: %d -> %d", len(s), len(again))
		}
		for i := range s {
			if math.Float64bits(s[i]) != math.Float64bits(again[i]) {
				t.Fatalf("value %d not bit-stable: %x -> %x (enc %s)",
					i, math.Float64bits(s[i]), math.Float64bits(again[i]), enc)
			}
		}
	})
}
