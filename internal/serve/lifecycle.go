package serve

// Detector lifecycle: shadow evaluation, canary promotion and
// automatic rollback, built on the server's atomic bundle-swap and
// generation machinery and accounted by a lifecycle.Monitor
// (internal/lifecycle). The state machine:
//
//	idle ──LoadShadow──▶ shadow ──Promote(1..99)──▶ canary
//	  ▲                     │                          │
//	  │                  Rollback                 Promote(100)
//	  │                     │                          │
//	  └─────────────────────┴──◀── rollback ──── promoted
//
// In shadow and canary states every evaluate request that both bundles
// can answer is dual-evaluated: the routed side's verdict is served,
// the mirrored side runs after the response bytes are written (so the
// client-visible response is byte-identical with shadowing on or off),
// and per-sample disagreements are journalled. While a canary routes
// traffic, the monitor's disagreement and alarm-regression thresholds
// can trigger an automatic rollback, which drops the candidate and
// returns all traffic to the unchanged live generation. A full promote
// (100%) swaps the candidate in as the live bundle and remembers the
// prior bundle so a later rollback can rebuild it under a fresh
// generation.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"edem/internal/lifecycle"
)

// errLifecycleDisabled reports lifecycle verbs on a server without a
// monitor.
var errLifecycleDisabled = fmt.Errorf("serve: lifecycle disabled (start serve with -lifecycle DIR)")

// priorBundle remembers the bundle a full promote replaced, so a
// rollback can rebuild it (with a fresh monotone generation — the
// generation counter never goes backwards, even when the predicates do).
type priorBundle struct {
	b    *Bundle
	path string
	gen  uint64 // the generation the bundle served under, for status
}

// LoadShadow loads the bundle at path as the shadow candidate: it is
// dual-evaluated beside the live bundle on every request but serves no
// traffic until promoted. Loading a new candidate replaces the current
// one; it is refused while a canary routes traffic (roll back first).
func (s *Server) LoadShadow(path string) (*ShadowResponse, error) {
	if s.monitor == nil {
		return nil, errLifecycleDisabled
	}
	if path == "" {
		return nil, fmt.Errorf("serve: shadow needs a bundle path")
	}
	s.lcMu.Lock()
	defer s.lcMu.Unlock()
	if s.canaryPct.Load() > 0 {
		return nil, fmt.Errorf("serve: canary at %d%% is active; roll back before loading a new candidate", s.canaryPct.Load())
	}
	b, err := LoadBundle(path)
	if err != nil {
		return nil, err
	}
	st, err := s.buildState(b, path)
	if err != nil {
		return nil, err
	}
	s.shadow.Store(st)
	s.monitor.ResetWindow()
	s.cfg.Logf("serve: shadowing %d detectors from %s (candidate generation %d)", len(st.ids), path, st.gen)
	return &ShadowResponse{Path: path, Detectors: st.ids, Generation: st.gen}, nil
}

// Promote routes percent% of candidate-answerable traffic to the
// shadow candidate (1–99: canary), or swaps the candidate in as the
// live bundle (100: full promote, prior bundle retained for rollback).
func (s *Server) Promote(percent int) (*PromoteResponse, error) {
	if s.monitor == nil {
		return nil, errLifecycleDisabled
	}
	if percent < 1 || percent > 100 {
		return nil, fmt.Errorf("serve: promote percent %d out of range [1, 100]", percent)
	}
	s.lcMu.Lock()
	defer s.lcMu.Unlock()
	cand := s.shadow.Load()
	if cand == nil {
		return nil, fmt.Errorf("serve: no shadow candidate to promote (load one first)")
	}
	if percent < 100 {
		s.canaryPct.Store(int64(percent))
		s.monitor.ResetWindow()
		s.cfg.Logf("serve: canary at %d%% to candidate generation %d", percent, cand.gen)
		return &PromoteResponse{State: "canary", Percent: percent, Generation: s.bundle.Load().gen, CandidateGeneration: cand.gen}, nil
	}
	cur := s.bundle.Load()
	s.prior.Store(&priorBundle{b: cur.src, path: cur.path, gen: cur.gen})
	s.bundle.Store(cand)
	s.shadow.Store(nil)
	s.canaryPct.Store(0)
	s.monitor.ResetWindow()
	s.monitor.ResetDrift()
	s.mPromotions.Inc()
	s.cfg.Logf("serve: promoted candidate generation %d to live (prior generation %d retained for rollback)", cand.gen, cur.gen)
	return &PromoteResponse{State: "promoted", Percent: 100, Generation: cand.gen, CandidateGeneration: cand.gen}, nil
}

// Rollback abandons the candidate: in shadow or canary state it drops
// the candidate and all traffic stays on the (unchanged) live
// generation; after a full promote it rebuilds the prior bundle as the
// live one under a fresh generation. Returns an error when there is
// nothing to roll back.
func (s *Server) Rollback(reason string) (*RollbackResponse, error) {
	if s.monitor == nil {
		return nil, errLifecycleDisabled
	}
	if reason == "" {
		reason = "operator request"
	}
	s.lcMu.Lock()
	defer s.lcMu.Unlock()
	return s.rollbackLocked(reason)
}

func (s *Server) rollbackLocked(reason string) (*RollbackResponse, error) {
	if cand := s.shadow.Load(); cand != nil {
		s.shadow.Store(nil)
		s.canaryPct.Store(0)
		s.monitor.ResetWindow()
		s.monitor.NoteRollback(reason)
		s.mRollbacks.Inc()
		live := s.bundle.Load()
		s.cfg.Logf("serve: rollback (%s): dropped candidate generation %d, all traffic on live generation %d",
			reason, cand.gen, live.gen)
		return &RollbackResponse{From: "candidate", Reason: reason, Generation: live.gen}, nil
	}
	if pb := s.prior.Load(); pb != nil {
		st, err := s.buildState(pb.b, pb.path)
		if err != nil {
			return nil, fmt.Errorf("serve: rollback: rebuilding prior bundle: %w", err)
		}
		s.bundle.Store(st)
		s.prior.Store(nil)
		s.monitor.ResetWindow()
		s.monitor.ResetDrift()
		s.monitor.NoteRollback(reason)
		s.mRollbacks.Inc()
		s.cfg.Logf("serve: rollback (%s): restored prior bundle %s as generation %d (was generation %d before promote)",
			reason, pb.path, st.gen, pb.gen)
		return &RollbackResponse{From: "promoted", Reason: reason, Generation: st.gen}, nil
	}
	return nil, fmt.Errorf("serve: nothing to roll back")
}

// autoRollback is the monitor-triggered canary rollback. The monitor
// latches its verdict so this runs at most once per candidate window;
// the re-check under the lock covers an operator transition racing the
// verdict.
func (s *Server) autoRollback(reason string) {
	s.lcMu.Lock()
	defer s.lcMu.Unlock()
	if s.shadow.Load() == nil || s.canaryPct.Load() == 0 {
		return
	}
	if _, err := s.rollbackLocked("auto: " + reason); err != nil {
		s.cfg.Logf("serve: auto-rollback failed: %v", err)
	}
}

// lifecycleState names the current lifecycle mode.
func (s *Server) lifecycleState() string {
	if s.shadow.Load() != nil {
		if s.canaryPct.Load() > 0 {
			return "canary"
		}
		return "shadow"
	}
	if s.prior.Load() != nil {
		return "promoted"
	}
	return "idle"
}

// LifecycleStatus assembles the operator status: state, generations,
// the shadow/canary window and the deterministic drift report.
func (s *Server) LifecycleStatus() *LifecycleStatusResponse {
	live := s.bundle.Load()
	resp := &LifecycleStatusResponse{
		State:          s.lifecycleState(),
		LivePath:       live.path,
		LiveGeneration: live.gen,
		Enabled:        s.monitor != nil,
	}
	if cand := s.shadow.Load(); cand != nil {
		resp.CandidatePath = cand.path
		resp.CandidateGeneration = cand.gen
		resp.CanaryPercent = int(s.canaryPct.Load())
	}
	if pb := s.prior.Load(); pb != nil {
		resp.PriorPath = pb.path
		resp.PriorGeneration = pb.gen
	}
	if s.monitor != nil {
		resp.Window = s.monitor.Window()
		resp.HasBaseline = s.monitor.HasBaseline()
		resp.Drift = s.monitor.Drift()
		resp.FeedbackRecords = s.monitor.FeedbackCount()
		resp.LastRollback = s.monitor.LastRollback()
	}
	return resp
}

// evalMirror evaluates the non-served side of a dual evaluation
// inline, with panic isolation and without touching breakers or the
// admission queue — mirror pressure must never shed or trip the
// serving path. ok is false on arity mismatch or panic.
func evalMirror(st *bundleState, detID string, samples []Sample) (verdicts []bool, ok bool) {
	det := st.dets[detID]
	if det == nil {
		return nil, false
	}
	if len(samples) > 0 && len(samples[0]) != len(det.entry.Predicate.Vars) {
		return nil, false
	}
	defer func() {
		if recover() != nil {
			verdicts, ok = nil, false
		}
	}()
	verdicts = make([]bool, len(samples))
	for i := range samples {
		verdicts[i] = det.eval(samples[i])
	}
	return verdicts, true
}

// lifecyclePost runs after the response bytes are written: it mirrors
// the evaluation onto the other bundle (when a candidate is loaded),
// records the verdict diff, feeds the drift tracker with the live
// side's behaviour, and applies the monitor's rollback verdict. It
// must complete before the pooled request buffers are released —
// everything it retains (journal records) is copied.
func (s *Server) lifecyclePost(detID string, samples []Sample, servedV []bool,
	servedSt, mirrorSt *bundleState, canaried bool) {
	vals := make([][]float64, len(samples))
	for i := range samples {
		vals[i] = samples[i]
	}
	// The drift tracker must see the LIVE bundle's behaviour: the served
	// verdicts when live served, the mirror's when a canary served. A
	// failed mirror on a canaried request leaves no live verdicts to
	// observe — that request contributes nothing to drift.
	liveV, liveOK := servedV, !canaried
	if mirrorSt != nil {
		if mirrorV, ok := evalMirror(mirrorSt, detID, samples); ok {
			candV := servedV
			liveGen, candGen := servedSt.gen, mirrorSt.gen
			served := "live"
			if canaried {
				liveV, liveOK = mirrorV, true
				liveGen, candGen = mirrorSt.gen, servedSt.gen
				served = "candidate"
			} else {
				candV = mirrorV
			}
			rollback, reason := s.monitor.RecordShadow(detID, served, liveV, candV,
				vals, liveGen, candGen, canaried)
			if rollback {
				s.autoRollback(reason)
			}
		}
	}
	if liveOK {
		s.monitor.ObserveLive(detID, vals, liveV)
	}
}

// --- HTTP surface -----------------------------------------------------

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	if s.monitor == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: errLifecycleDisabled.Error()})
		return
	}
	var req FeedbackRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	rec := lifecycle.FeedbackRecord{
		UnixMS:     time.Now().UnixMilli(),
		Detector:   req.Detector,
		Generation: s.bundle.Load().gen,
		Alarm:      req.Alarm,
		Outcome:    lifecycle.Outcome(req.Outcome),
		Source:     lifecycle.Source(req.Source),
		State:      lifecycle.EncodeState(req.Sample),
		Note:       req.Note,
	}
	if err := s.monitor.RecordFeedback(rec); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, FeedbackResponse{Recorded: true, Generation: rec.Generation})
}

func (s *Server) handleShadow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req ShadowRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	resp, err := s.LoadShadow(req.Path)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req PromoteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	resp, err := s.Promote(req.Percent)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleRollback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req RollbackRequest
	if r.Body != nil {
		_ = json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req)
	}
	resp, err := s.Rollback(req.Reason)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBaseline(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	if s.monitor == nil {
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: errLifecycleDisabled.Error()})
		return
	}
	s.monitor.Baseline()
	s.cfg.Logf("serve: drift baseline frozen")
	writeJSON(w, http.StatusOK, s.LifecycleStatus())
}

func (s *Server) handleLifecycle(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.LifecycleStatus())
}

// --- Wire types -------------------------------------------------------

// FeedbackRequest is the POST /v1/feedback body: a ground-truth label
// for a served verdict, journalled (fsynced) before the 200 returns.
type FeedbackRequest struct {
	// Detector is the bundle entry the labelled verdict came from.
	Detector string `json:"detector"`
	// Alarm is the verdict being labelled.
	Alarm bool `json:"alarm"`
	// Outcome is the label: "true-alarm", "false-alarm",
	// "missed-failure" or "benign".
	Outcome string `json:"outcome"`
	// Source tells where the label came from: "operator" or
	// "golden-run".
	Source string `json:"source"`
	// Sample is the sampled state the verdict was for (optional; hex
	// bit patterns accepted for non-finite values, like /v1/evaluate).
	Sample Sample `json:"sample,omitempty"`
	// Note is free-form operator context (optional).
	Note string `json:"note,omitempty"`
}

// FeedbackResponse acknowledges a journalled feedback record.
type FeedbackResponse struct {
	Recorded bool `json:"recorded"`
	// Generation is the live bundle generation the record was stamped
	// with.
	Generation uint64 `json:"generation"`
}

// ShadowRequest is the POST /admin/shadow body.
type ShadowRequest struct {
	// Path is the candidate bundle file to load for shadow evaluation.
	Path string `json:"path"`
}

// ShadowResponse reports the loaded candidate.
type ShadowResponse struct {
	Path      string   `json:"path"`
	Detectors []string `json:"detectors"`
	// Generation is the candidate's bundle generation (it gets one from
	// the same monotone counter as live reloads).
	Generation uint64 `json:"generation"`
}

// PromoteRequest is the POST /admin/promote body.
type PromoteRequest struct {
	// Percent routes that percentage of candidate-answerable traffic to
	// the candidate (1–99: canary; 100: full promote).
	Percent int `json:"percent"`
}

// PromoteResponse reports the promotion.
type PromoteResponse struct {
	// State is "canary" (partial) or "promoted" (full).
	State   string `json:"state"`
	Percent int    `json:"percent"`
	// Generation is the live bundle generation after the promotion;
	// CandidateGeneration the candidate's (equal after a full promote).
	Generation          uint64 `json:"generation"`
	CandidateGeneration uint64 `json:"candidate_generation"`
}

// RollbackRequest is the (optional) POST /admin/rollback body.
type RollbackRequest struct {
	// Reason is recorded in the lifecycle status (defaults to
	// "operator request").
	Reason string `json:"reason,omitempty"`
}

// RollbackResponse reports a completed rollback.
type RollbackResponse struct {
	// From is "candidate" (a shadow/canary was dropped; live bundle
	// untouched) or "promoted" (the prior bundle was rebuilt as live).
	From   string `json:"from"`
	Reason string `json:"reason"`
	// Generation is the live bundle generation after the rollback.
	Generation uint64 `json:"generation"`
}

// LifecycleStatusResponse is the GET /admin/lifecycle body — the full
// operator view of the lifecycle state machine.
type LifecycleStatusResponse struct {
	// Enabled is false when the server runs without a lifecycle monitor
	// (every other monitor-backed field is then zero).
	Enabled bool `json:"enabled"`
	// State is "idle", "shadow", "canary" or "promoted".
	State          string `json:"state"`
	LivePath       string `json:"live_path"`
	LiveGeneration uint64 `json:"live_generation"`

	CandidatePath       string `json:"candidate_path,omitempty"`
	CandidateGeneration uint64 `json:"candidate_generation,omitempty"`
	CanaryPercent       int    `json:"canary_percent,omitempty"`

	PriorPath       string `json:"prior_path,omitempty"`
	PriorGeneration uint64 `json:"prior_generation,omitempty"`

	// Window is the shadow/canary accounting window since the last
	// lifecycle transition.
	Window lifecycle.WindowStats `json:"window"`
	// HasBaseline reports whether a drift baseline is frozen; Drift is
	// the per-detector drift report against it.
	HasBaseline bool                `json:"has_baseline"`
	Drift       []lifecycle.DriftRow `json:"drift,omitempty"`
	// FeedbackRecords counts feedback journalled by this process.
	FeedbackRecords int64 `json:"feedback_records"`
	// LastRollback is the reason of the most recent rollback ("" if
	// none this process).
	LastRollback string `json:"last_rollback,omitempty"`
}
