package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// Sample is one sampled state vector on the wire. Finite values travel
// as ordinary JSON numbers; NaN and ±Inf — which corrupted runs
// legitimately sample, and which encoding/json rejects — travel as
// 16-digit hex IEEE-754 bit patterns, the same transport the campaign
// journal uses (internal/campaign). Decoding accepts either form for
// every element; encoding uses hex only where JSON numbers cannot
// round-trip the value exactly.
type Sample []float64

// MarshalJSON encodes the sample, escaping non-finite values as hex
// bit-pattern strings.
func (s Sample) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte('[')
	for i, v := range s {
		if i > 0 {
			buf.WriteByte(',')
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			buf.WriteByte('"')
			buf.WriteString(strconv.FormatUint(math.Float64bits(v), 16))
			buf.WriteByte('"')
			continue
		}
		b, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		buf.Write(b)
	}
	buf.WriteByte(']')
	return buf.Bytes(), nil
}

// UnmarshalJSON decodes a sample whose elements are JSON numbers or
// hex bit-pattern strings.
func (s *Sample) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make(Sample, len(raw))
	for i, r := range raw {
		if len(r) > 0 && r[0] == '"' {
			var hex string
			if err := json.Unmarshal(r, &hex); err != nil {
				return err
			}
			bits, err := strconv.ParseUint(hex, 16, 64)
			if err != nil {
				return fmt.Errorf("serve: bad state bits %q: %w", hex, err)
			}
			out[i] = math.Float64frombits(bits)
			continue
		}
		var v float64
		if err := json.Unmarshal(r, &v); err != nil {
			return err
		}
		out[i] = v
	}
	*s = out
	return nil
}

// EvalRequest is the POST /v1/evaluate body.
type EvalRequest struct {
	// Detector selects the bundle entry by ID.
	Detector string `json:"detector"`
	// Samples are the state vectors to evaluate; each must match the
	// detector's variable arity.
	Samples []Sample `json:"samples"`
	// DeadlineMS, when positive, overrides the server's default
	// per-request deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// DelayMS injects a synthetic per-request evaluation delay. Honoured
	// only when the server runs with AllowDelay (load and drain testing);
	// ignored otherwise.
	DelayMS int64 `json:"delay_ms,omitempty"`
}

// EvalResponse is the evaluation result.
type EvalResponse struct {
	Detector string `json:"detector"`
	// Verdicts holds one flag per sample: true = the predicate flagged
	// the state as failure-inducing.
	Verdicts []bool `json:"verdicts,omitempty"`
	// Alarms lists the 1-based indices of flagged samples.
	Alarms []int `json:"alarms,omitempty"`
	// Evaluated is the number of samples actually evaluated (0 when the
	// request was degraded).
	Evaluated int `json:"evaluated"`
	// Degraded is empty on a full evaluation; otherwise it names why the
	// response carries no verdicts ("breaker-open", "eval-error: ...")
	// under the fail-open policy.
	Degraded string `json:"degraded,omitempty"`
	// BundleGeneration is the monotone generation number of the bundle
	// that served the evaluation; it increments on every hot reload, so
	// clients can observe reload atomicity.
	BundleGeneration uint64 `json:"bundle_generation,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ReloadRequest is the POST /admin/reload body. An empty path re-reads
// the bundle the server was started with (the SIGHUP behaviour).
type ReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// ReloadResponse reports the detectors loaded by a reload.
type ReloadResponse struct {
	Path      string   `json:"path"`
	Detectors []string `json:"detectors"`
	// Generation is the bundle generation the reload installed.
	Generation uint64 `json:"generation"`
}

// DetectorStatus is one row of GET /v1/detectors.
type DetectorStatus struct {
	ID       string `json:"id"`
	Module   string `json:"module"`
	Location string `json:"location"`
	Clauses  int    `json:"clauses"`
	Atoms    int    `json:"atoms"`
	// Breaker is the circuit state: "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
	Evals   int64  `json:"evals"`
	Alarms  int64  `json:"alarms"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status    string `json:"status"` // "ok" or "draining"
	Detectors int    `json:"detectors"`
}
