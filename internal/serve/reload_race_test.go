package serve

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edem/internal/predicate"
	"edem/internal/propane"
	"edem/internal/stats"
	"edem/internal/telemetry"
)

// thresholdBundle builds a two-detector bundle: HOT flags v > thr (the
// hammered detector — the threshold identifies the bundle variant) and
// TRIP is the breaker-trip target.
func thresholdBundle(thr float64) *Bundle {
	pred := func(name string, t float64) *predicate.Predicate {
		return &predicate.Predicate{
			Name: name,
			Vars: []string{"v"},
			Clauses: []predicate.Clause{
				{{Var: "v", Index: 0, Op: predicate.GT, Threshold: t}},
			},
		}
	}
	return &Bundle{Version: BundleVersion, Detectors: []BundleEntry{
		{ID: "HOT", Module: "M", Location: "Exit", Predicate: pred("HOT", thr)},
		{ID: "TRIP", Module: "M", Location: "Exit", Predicate: pred("TRIP", 0)},
	}}
}

// TestServeReloadHammerRace is the hot-reload torture drill, meant for
// -race: four hammer goroutines (two per codec) stream evaluations at
// the HOT detector while bundle variants A (threshold 100) and B
// (threshold 200) are swapped in through alternating admin-endpoint and
// SIGHUP-style reloads, and a fifth goroutine keeps tripping and
// re-closing the TRIP breaker. Every response must be internally
// consistent with the generation it reports — variant A is installed at
// odd generations, so the verdict on sample 150 must equal the parity
// of BundleGeneration (no torn table reads) — and every goroutine must
// observe a non-decreasing generation sequence.
func TestServeReloadHammerRace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bundle.json")
	variant := func(gen uint64) float64 { // gen odd -> A(100), even -> B(200)
		if gen%2 == 1 {
			return 100
		}
		return 200
	}
	if err := thresholdBundle(variant(1)).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(b, path, Config{
		Registry: telemetry.New(),
		Breaker:  BreakerConfig{Threshold: 1, Cooldown: 5 * time.Millisecond},
		// The TRIP detector faults on the sentinel value; everything else
		// evaluates normally. Wrapping at build time keeps the injection
		// race-free across reloads.
		WrapEval: func(id string, eval func([]float64) bool) func([]float64) bool {
			if id != "TRIP" {
				return eval
			}
			return func(vs []float64) bool {
				if len(vs) > 0 && vs[0] == -777 {
					panic("synthetic TRIP fault")
				}
				return eval(vs)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	ctx := context.Background()
	var stopHammer atomic.Bool
	var wg sync.WaitGroup

	// Hammers: both codecs, two goroutines each.
	for _, codec := range []Codec{CodecJSON, CodecBinary, CodecJSON, CodecBinary} {
		wg.Add(1)
		go func(codec Codec) {
			defer wg.Done()
			cl := &Client{Base: hs.URL, Codec: codec}
			var lastGen uint64
			for !stopHammer.Load() {
				resp, err := cl.Evaluate(ctx, "HOT", []Sample{{150}, {250}})
				if err != nil {
					t.Errorf("%v hammer: %v", codec, err)
					return
				}
				gen := resp.BundleGeneration
				if gen < lastGen {
					t.Errorf("%v hammer: generation went backwards: %d after %d", codec, gen, lastGen)
					return
				}
				lastGen = gen
				if len(resp.Verdicts) != 2 || !resp.Verdicts[1] {
					t.Errorf("%v hammer: verdicts = %v (sample 250 must always alarm)", codec, resp.Verdicts)
					return
				}
				if want := variant(gen) == 100; resp.Verdicts[0] != want {
					t.Errorf("%v hammer: gen %d (threshold %v) but verdict on 150 = %v — torn bundle read",
						codec, gen, variant(gen), resp.Verdicts[0])
					return
				}
			}
		}(codec)
	}

	// Breaker agitator: trips TRIP with the fault sentinel, then pokes it
	// until the half-open probe closes the circuit again. 500 (fault) and
	// 503 (open circuit) are the expected rejections; anything else is a
	// bug.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cl := &Client{Base: hs.URL, MaxRetries: -1}
		for !stopHammer.Load() {
			for _, v := range []float64{-777, 50, 50} {
				_, err := cl.Evaluate(ctx, "TRIP", []Sample{{v}})
				if err == nil {
					continue
				}
				var se *StatusError
				if errors.As(err, &se) &&
					(se.Code == http.StatusInternalServerError ||
						se.Code == http.StatusServiceUnavailable ||
						se.Code == http.StatusTooManyRequests) {
					continue
				}
				t.Errorf("trip agitator: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Reloader: alternate the bundle variant on disk, reloading through
	// the admin endpoint and the SIGHUP path (Reload("")) in turn. The
	// installed generation must advance by exactly one per reload.
	const reloads = 30
	for k := 1; k <= reloads; k++ {
		gen := uint64(k + 1)
		if err := thresholdBundle(variant(gen)).WriteFile(path); err != nil {
			t.Fatal(err)
		}
		if k%2 == 0 {
			res, err := http.Post(hs.URL+"/admin/reload", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			var rr ReloadResponse
			if err := json.NewDecoder(res.Body).Decode(&rr); err != nil {
				t.Fatal(err)
			}
			res.Body.Close()
			if res.StatusCode != http.StatusOK || rr.Generation != gen {
				t.Fatalf("admin reload %d: code %d generation %d, want %d", k, res.StatusCode, rr.Generation, gen)
			}
		} else {
			if _, err := s.Reload(""); err != nil { // the SIGHUP behaviour
				t.Fatalf("SIGHUP reload %d: %v", k, err)
			}
			if got := s.Generation(); got != gen {
				t.Fatalf("SIGHUP reload %d: generation %d, want %d", k, got, gen)
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	stopHammer.Store(true)
	wg.Wait()
}

// TestServeChunkedAgreesWithDetectorVisit pins the end-to-end
// agreement the deployment story depends on: an interpreted in-process
// Detector (paper §VII-D's runtime assertion, built literally so it
// carries no compiled program) and the compiled serving path must
// report the same visit count and the same 1-based alarm indices, even
// when the client chops the batch into chunks and re-indexes alarms.
func TestServeChunkedAgreesWithDetectorVisit(t *testing.T) {
	pred := &predicate.Predicate{
		Name: "agree",
		Vars: []string{"a", "b", "c"},
		Clauses: []predicate.Clause{
			{{Var: "a", Index: 0, Op: predicate.GT, Threshold: 2},
				{Var: "b", Index: 1, Op: predicate.LE, Threshold: 0.5}},
			{{Var: "c", Index: 2, Op: predicate.EQ, Threshold: 7}},
			{{Var: "a", Index: 0, Op: predicate.NE, Threshold: 0},
				{Var: "c", Index: 2, Op: predicate.LE, Threshold: -3}},
		},
	}

	// Seeded sample stream with NaN (missing) contamination.
	rng := stats.NewRNG(42)
	samples := make([]Sample, 500)
	for i := range samples {
		s := Sample{rng.Float64()*8 - 4, rng.Float64()*2 - 1, rng.Float64() * 10}
		if i%17 == 0 {
			s[rng.Intn(3)] = math.NaN()
		}
		if i%23 == 0 {
			s[2] = 7 // force clause-2 hits
		}
		samples[i] = s
	}

	// Interpreted reference: a literal Detector (nil compiled program)
	// driven through the Probe interface, one Visit per sample.
	det := &predicate.Detector{Module: "M", Location: propane.Exit, Pred: pred}
	var a, b, c float64
	refs := []propane.VarRef{
		propane.Float64Ref("a", &a),
		propane.Float64Ref("b", &b),
		propane.Float64Ref("c", &c),
	}
	for _, s := range samples {
		a, b, c = s[0], s[1], s[2]
		det.Visit("M", propane.Exit, refs)
	}

	// Compiled serving path: the same samples through the server, chunked
	// small enough that alarm re-indexing has to do real work.
	bundle := &Bundle{Version: BundleVersion, Detectors: []BundleEntry{
		{ID: "A1", Module: "M", Location: "Exit", Predicate: pred},
	}}
	reg := telemetry.New()
	s, err := NewServer(bundle, "", Config{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()
	if reg.Counter("predicate.compile_programs").Value() != 1 {
		t.Fatal("serving path did not compile the predicate")
	}

	for _, codec := range []Codec{CodecJSON, CodecBinary} {
		cl := &Client{Base: hs.URL, Codec: codec}
		resp, err := cl.EvaluateChunks(context.Background(), "A1", samples, 7)
		if err != nil {
			t.Fatalf("%v: %v", codec, err)
		}
		if resp.Evaluated != det.VisitCount() {
			t.Fatalf("%v: served %d evaluations, detector visited %d", codec, resp.Evaluated, det.VisitCount())
		}
		wantAlarms := det.AlarmIndices()
		if len(resp.Alarms) != len(wantAlarms) {
			t.Fatalf("%v: %d alarms served, detector raised %d", codec, len(resp.Alarms), len(wantAlarms))
		}
		for i := range wantAlarms {
			if resp.Alarms[i] != wantAlarms[i] {
				t.Fatalf("%v: alarm %d at sample %d, detector at %d", codec, i, resp.Alarms[i], wantAlarms[i])
			}
		}
		if len(wantAlarms) == 0 {
			t.Fatal("degenerate stream: no alarms raised")
		}
	}
}

// TestServeCodecCountersWorkerInvariant extends the scheduling
// invariance of the serve counters to the codec and compilation
// metrics: the same request stream yields identical
// serve.json_requests / serve.binary_requests /
// predicate.compile_programs / predicate.compile_atoms for any worker
// count.
func TestServeCodecCountersWorkerInvariant(t *testing.T) {
	counts := func(workers int) [4]int64 {
		reg := telemetry.New()
		_, hs := newTestServer(t, Config{Workers: workers, Registry: reg}, "D1")
		ctx := context.Background()
		for _, codec := range []Codec{CodecJSON, CodecJSON, CodecJSON, CodecBinary, CodecBinary} {
			cl := &Client{Base: hs.URL, Codec: codec}
			if _, err := cl.Evaluate(ctx, "D1", []Sample{{5}, {500}}); err != nil {
				t.Fatalf("workers=%d %v: %v", workers, codec, err)
			}
		}
		return [4]int64{
			reg.Counter("serve.json_requests").Value(),
			reg.Counter("serve.binary_requests").Value(),
			reg.Counter("predicate.compile_programs").Value(),
			reg.Counter("predicate.compile_atoms").Value(),
		}
	}
	want := counts(1)
	if want != [4]int64{3, 2, 1, 1} {
		t.Fatalf("baseline counters = %v, want [3 2 1 1]", want)
	}
	for _, w := range []int{2, 8} {
		if got := counts(w); got != want {
			t.Fatalf("workers=%d: counters = %v, want %v", w, got, want)
		}
	}
}

// TestServeInterpretFallbackCounters pins the two off-paths of the
// compilation scheme: Interpret skips compilation entirely, and a
// predicate the compiler refuses falls back to the interpreter with
// predicate.compile_fallbacks counting it — in both cases verdicts are
// unchanged.
func TestServeInterpretFallbackCounters(t *testing.T) {
	reg := telemetry.New()
	_, hs := newTestServer(t, Config{Interpret: true, Registry: reg}, "D1")
	code, ok, _ := postEval(t, hs.URL, EvalRequest{Detector: "D1", Samples: []Sample{{500}, {5}}})
	if code != http.StatusOK || len(ok.Alarms) != 1 || ok.Alarms[0] != 1 {
		t.Fatalf("interpreted leg: code %d alarms %v", code, ok.Alarms)
	}
	if reg.Counter("predicate.compile_programs").Value() != 0 {
		t.Fatal("Interpret leg still compiled")
	}

	// An uncompilable predicate (index beyond the int32 table range)
	// falls back per detector.
	reg2 := telemetry.New()
	huge := &predicate.Predicate{
		Name: "huge",
		Vars: []string{"v"},
		Clauses: []predicate.Clause{
			{{Var: "v", Index: 0, Op: predicate.GT, Threshold: 100}},
			{{Var: "ghost", Index: math.MaxInt32 + 1, Op: predicate.GT, Threshold: 0}},
		},
	}
	bundle := &Bundle{Version: BundleVersion, Detectors: []BundleEntry{
		{ID: "HUGE", Module: "M", Location: "Exit", Predicate: huge},
	}}
	s, err := NewServer(bundle, "", Config{Registry: reg2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hs2 := httptest.NewServer(s.Handler())
	defer hs2.Close()
	code, ok, _ = postEval(t, hs2.URL, EvalRequest{Detector: "HUGE", Samples: []Sample{{500}}})
	if code != http.StatusOK || len(ok.Alarms) != 1 {
		t.Fatalf("fallback leg: code %d alarms %v", code, ok.Alarms)
	}
	if reg2.Counter("predicate.compile_fallbacks").Value() != 1 ||
		reg2.Counter("predicate.compile_programs").Value() != 0 {
		t.Fatalf("fallback counters: programs=%d fallbacks=%d",
			reg2.Counter("predicate.compile_programs").Value(),
			reg2.Counter("predicate.compile_fallbacks").Value())
	}
}
