package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"edem/internal/lifecycle"
	"edem/internal/predicate"
	"edem/internal/telemetry"
)

// alwaysPredicate flags every sample (v > -MaxFloat64): the candidate
// that disagrees with testPredicate on all benign traffic.
func alwaysPredicate(name string) *predicate.Predicate {
	return &predicate.Predicate{
		Name: name,
		Vars: []string{"v"},
		Clauses: []predicate.Clause{
			{{Var: "v", Index: 0, Op: predicate.GT, Threshold: -1e308}},
		},
	}
}

// writeBundleFile writes a bundle to a temp file and returns its path.
func writeBundleFile(t *testing.T, b *Bundle) string {
	t.Helper()
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bundle.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// newLifecycleServer builds a server with a lifecycle monitor over a
// fresh journal directory. Returns the server, the HTTP front end and
// the monitor (closed via cleanup after the server).
func newLifecycleServer(t *testing.T, mcfg lifecycle.MonitorConfig, cfg Config, ids ...string) (*Server, *httptest.Server, *lifecycle.Monitor) {
	t.Helper()
	if mcfg.Dir == "" {
		mcfg.Dir = t.TempDir()
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.New()
	}
	if mcfg.Registry == nil {
		mcfg.Registry = cfg.Registry
	}
	mon, err := lifecycle.NewMonitor(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Monitor = mon
	s, err := NewServer(testBundle(ids...), "", cfg)
	if err != nil {
		mon.Close()
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
		mon.Close()
	})
	return s, hs, mon
}

// rawEval POSTs an evaluate request and returns status plus the exact
// response bytes (for byte-identity comparisons).
func rawEval(t *testing.T, base string, req EvalRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	res, err := http.Post(base+"/v1/evaluate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	data, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, data
}

// TestShadowDifferentialByteIdentical pins the shadow contract: with a
// maximally disagreeing candidate under shadow evaluation, every
// client-visible response byte is identical to a server running
// without any lifecycle at all.
func TestShadowDifferentialByteIdentical(t *testing.T) {
	plain, plainHS := newTestServer(t, Config{}, "d1")
	_ = plain
	shadowed, shadowHS, _ := newLifecycleServer(t, lifecycle.MonitorConfig{}, Config{}, "d1")

	cand := &Bundle{Version: BundleVersion, Detectors: []BundleEntry{
		{ID: "d1", Module: "M", Location: "Exit", Predicate: alwaysPredicate("d1")},
	}}
	if _, err := shadowed.LoadShadow(writeBundleFile(t, cand)); err != nil {
		t.Fatal(err)
	}

	reqs := []EvalRequest{
		{Detector: "d1", Samples: []Sample{{0}, {50}, {150}}},
		{Detector: "d1", Samples: []Sample{{-1}, {101}}},
		{Detector: "d1", Samples: []Sample{{99.999}}},
		{Detector: "nope", Samples: []Sample{{1}}},
		{Detector: "d1"},
	}
	for i, req := range reqs {
		codeA, bodyA := rawEval(t, plainHS.URL, req)
		codeB, bodyB := rawEval(t, shadowHS.URL, req)
		if codeA != codeB {
			t.Fatalf("request %d: status %d (plain) != %d (shadowed)", i, codeA, codeB)
		}
		if !bytes.Equal(bodyA, bodyB) {
			t.Fatalf("request %d: response bytes differ:\nplain:    %s\nshadowed: %s", i, bodyA, bodyB)
		}
	}

	// The disagreements were real — they just never reached the client.
	w := shadowed.monitor.Window()
	if w.Disagreements == 0 {
		t.Fatal("disagreeing candidate produced no recorded disagreements")
	}
	if w.CanaryRequests != 0 {
		t.Fatalf("shadow (no canary) served %d candidate requests", w.CanaryRequests)
	}
}

// TestCanaryAutoRollback drives a canary whose candidate disagrees on
// every sample past the rollback window and asserts the server rolls
// back by itself: candidate dropped, live generation unchanged, diff
// journal populated.
func TestCanaryAutoRollback(t *testing.T) {
	reg := telemetry.New()
	dir := t.TempDir()
	s, hs, mon := newLifecycleServer(t, lifecycle.MonitorConfig{
		Dir:             dir,
		MinRequests:     5,
		MaxDisagreeRate: 0.2,
	}, Config{Registry: reg}, "d1")

	cand := &Bundle{Version: BundleVersion, Detectors: []BundleEntry{
		{ID: "d1", Module: "M", Location: "Exit", Predicate: alwaysPredicate("d1")},
	}}
	if _, err := s.LoadShadow(writeBundleFile(t, cand)); err != nil {
		t.Fatal(err)
	}
	liveGen := s.Generation()
	if _, err := s.Promote(50); err != nil {
		t.Fatal(err)
	}

	// Benign traffic: live says false, candidate says true — 100%
	// disagreement. Well past MinRequests the rollback must have fired.
	for i := 0; i < 40; i++ {
		code, _ := rawEval(t, hs.URL, EvalRequest{Detector: "d1", Samples: []Sample{{0}, {1}}})
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}

	st := s.LifecycleStatus()
	if st.State != "idle" {
		t.Fatalf("state after regression = %q, want idle (auto rollback)", st.State)
	}
	if got := s.Generation(); got != liveGen {
		t.Fatalf("live generation changed across canary rollback: %d -> %d", liveGen, got)
	}
	if st.LastRollback == "" {
		t.Fatal("rollback reason not recorded")
	}
	if v := reg.Counter("lifecycle.rollbacks").Value(); v != 1 {
		t.Fatalf("lifecycle.rollbacks = %d, want 1", v)
	}

	// The diff journal has the disagreeing samples (drain the async
	// writer first).
	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := lifecycle.ReadDiffs(filepath.Join(dir, lifecycle.DiffsName))
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("fresh journal has %d torn lines", torn)
	}
	if len(recs) == 0 {
		t.Fatal("no verdict diffs journalled")
	}
	if recs[0].Detector != "d1" || len(recs[0].Index) == 0 {
		t.Fatalf("bad diff record: %+v", recs[0])
	}
}

// TestPromoteFullAndRollback exercises the promoted state: a full
// promote swaps the candidate live, a rollback rebuilds the prior
// bundle under a fresh generation with its original verdicts.
func TestPromoteFullAndRollback(t *testing.T) {
	s, hs, _ := newLifecycleServer(t, lifecycle.MonitorConfig{}, Config{}, "d1")

	cand := &Bundle{Version: BundleVersion, Detectors: []BundleEntry{
		{ID: "d1", Module: "M", Location: "Exit", Predicate: alwaysPredicate("d1")},
	}}
	shResp, err := s.LoadShadow(writeBundleFile(t, cand))
	if err != nil {
		t.Fatal(err)
	}
	prResp, err := s.Promote(100)
	if err != nil {
		t.Fatal(err)
	}
	if prResp.State != "promoted" || prResp.Generation != shResp.Generation {
		t.Fatalf("promote = %+v, want promoted at candidate generation %d", prResp, shResp.Generation)
	}
	// The candidate now serves: benign samples alarm.
	code, resp, _ := postEval(t, hs.URL, EvalRequest{Detector: "d1", Samples: []Sample{{0}}})
	if code != http.StatusOK || len(resp.Alarms) != 1 {
		t.Fatalf("promoted candidate: code %d alarms %v, want an alarm on benign input", code, resp.Alarms)
	}
	if s.lifecycleState() != "promoted" {
		t.Fatalf("state = %q, want promoted", s.lifecycleState())
	}

	rbResp, err := s.Rollback("test")
	if err != nil {
		t.Fatal(err)
	}
	if rbResp.From != "promoted" {
		t.Fatalf("rollback from %q, want promoted", rbResp.From)
	}
	if rbResp.Generation <= prResp.Generation {
		t.Fatalf("rollback generation %d not past promote generation %d (generations must stay monotone)",
			rbResp.Generation, prResp.Generation)
	}
	// Prior verdicts are back: benign samples pass again.
	code, resp, _ = postEval(t, hs.URL, EvalRequest{Detector: "d1", Samples: []Sample{{0}}})
	if code != http.StatusOK || len(resp.Alarms) != 0 {
		t.Fatalf("after rollback: code %d alarms %v, want no alarms", code, resp.Alarms)
	}
	if _, err := s.Rollback("again"); err == nil {
		t.Fatal("second rollback succeeded with nothing to roll back")
	}
}

// TestCanaryBlocksShadowReplace pins the state machine: while a canary
// routes traffic, loading a new candidate is refused.
func TestCanaryBlocksShadowReplace(t *testing.T) {
	s, _, _ := newLifecycleServer(t, lifecycle.MonitorConfig{}, Config{}, "d1")
	cand := &Bundle{Version: BundleVersion, Detectors: []BundleEntry{
		{ID: "d1", Module: "M", Location: "Exit", Predicate: alwaysPredicate("d1")},
	}}
	path := writeBundleFile(t, cand)
	if _, err := s.LoadShadow(path); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Promote(10); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadShadow(path); err == nil {
		t.Fatal("LoadShadow succeeded while a canary was active")
	}
	if _, err := s.Rollback(""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadShadow(path); err != nil {
		t.Fatalf("LoadShadow after rollback: %v", err)
	}
}

// TestLifecycleDisabled pins the no-monitor behaviour: lifecycle verbs
// fail with a clear error and the admin surface reports disabled.
func TestLifecycleDisabled(t *testing.T) {
	s, hs := newTestServer(t, Config{}, "d1")
	if _, err := s.LoadShadow("x.json"); err == nil {
		t.Fatal("LoadShadow succeeded without a monitor")
	}
	if _, err := s.Promote(10); err == nil {
		t.Fatal("Promote succeeded without a monitor")
	}
	res, err := http.Get(hs.URL + "/admin/lifecycle")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var st LifecycleStatusResponse
	if err := json.NewDecoder(res.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatal("lifecycle reported enabled without a monitor")
	}
	if st.State != "idle" {
		t.Fatalf("state = %q, want idle", st.State)
	}
}

// TestFeedbackJournalled posts feedback over HTTP and reads it back
// from the journal; invalid labels are rejected before touching disk.
func TestFeedbackJournalled(t *testing.T) {
	dir := t.TempDir()
	_, hs, mon := newLifecycleServer(t, lifecycle.MonitorConfig{Dir: dir}, Config{}, "d1")

	post := func(req FeedbackRequest) (int, FeedbackResponse) {
		body, _ := json.Marshal(req)
		res, err := http.Post(hs.URL+"/v1/feedback", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var fr FeedbackResponse
		_ = json.NewDecoder(res.Body).Decode(&fr)
		return res.StatusCode, fr
	}

	code, fr := post(FeedbackRequest{
		Detector: "d1", Alarm: true, Outcome: "false-alarm", Source: "operator",
		Sample: Sample{101.5}, Note: "benign spike",
	})
	if code != http.StatusOK || !fr.Recorded {
		t.Fatalf("feedback: code %d resp %+v", code, fr)
	}
	if code, _ := post(FeedbackRequest{Detector: "d1", Outcome: "not-a-label", Source: "operator"}); code != http.StatusBadRequest {
		t.Fatalf("invalid outcome accepted: code %d", code)
	}
	if code, _ := post(FeedbackRequest{Detector: "d1", Outcome: "benign", Source: "guess"}); code != http.StatusBadRequest {
		t.Fatalf("invalid source accepted: code %d", code)
	}

	if err := mon.Close(); err != nil {
		t.Fatal(err)
	}
	recs, torn, err := lifecycle.ReadFeedback(filepath.Join(dir, lifecycle.FeedbackName))
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 || len(recs) != 1 {
		t.Fatalf("journal: %d records, %d torn, want exactly the 1 valid record", len(recs), torn)
	}
	rec := recs[0]
	if rec.Detector != "d1" || rec.Outcome != lifecycle.OutcomeFalseAlarm || rec.Source != lifecycle.SourceOperator {
		t.Fatalf("bad record: %+v", rec)
	}
	vals, err := lifecycle.DecodeState(rec.State)
	if err != nil || len(vals) != 1 || vals[0] != 101.5 {
		t.Fatalf("state round-trip: %v %v", vals, err)
	}
	if rec.Generation != 1 {
		t.Fatalf("generation = %d, want 1", rec.Generation)
	}
}

// TestCanaryServesCandidateGeneration pins canary routing visibility:
// canaried responses carry the candidate's bundle generation, so a
// client can tell which side answered.
func TestCanaryServesCandidateGeneration(t *testing.T) {
	s, hs, _ := newLifecycleServer(t, lifecycle.MonitorConfig{MinRequests: 1 << 30}, Config{}, "d1")
	cand := &Bundle{Version: BundleVersion, Detectors: []BundleEntry{
		{ID: "d1", Module: "M", Location: "Exit", Predicate: alwaysPredicate("d1")},
	}}
	shResp, err := s.LoadShadow(writeBundleFile(t, cand))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Promote(99); err != nil {
		t.Fatal(err)
	}
	liveGen := s.Generation()
	seen := map[uint64]int{}
	for i := 0; i < 100; i++ {
		code, resp, _ := postEval(t, hs.URL, EvalRequest{Detector: "d1", Samples: []Sample{{0}}})
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
		seen[resp.BundleGeneration]++
	}
	if seen[shResp.Generation] == 0 {
		t.Fatal("no response served from the candidate at 99% canary")
	}
	if seen[liveGen] == 0 {
		t.Fatal("no response served from live at 99% canary (1% must remain)")
	}
	if unknown := 100 - seen[shResp.Generation] - seen[liveGen]; unknown != 0 {
		t.Fatalf("%d responses from neither live nor candidate generation: %v", unknown, seen)
	}
}
