package core

import (
	"context"
	"fmt"
	"testing"
)

// TestBaselineQuality runs Steps 1-3 on representative datasets at the
// default laptop scale and checks the Table III shape invariants: high
// AUC everywhere, near-zero FPR, and the FG-B completeness plateau.
func TestBaselineQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short mode")
	}
	opts := DefaultOptions()
	for _, tt := range []struct {
		id     string
		minTPR float64
		maxTPR float64
		maxFPR float64
		minAUC float64
	}{
		{id: "7Z-A1", minTPR: 0.85, maxTPR: 1.0, maxFPR: 0.02, minAUC: 0.92},
		{id: "7Z-B1", minTPR: 0.85, maxTPR: 1.0, maxFPR: 0.02, minAUC: 0.92},
		{id: "FG-A2", minTPR: 0.88, maxTPR: 1.0, maxFPR: 0.02, minAUC: 0.93},
		{id: "FG-B1", minTPR: 0.70, maxTPR: 0.93, maxFPR: 0.03, minAUC: 0.83},
		{id: "MG-A1", minTPR: 0.82, maxTPR: 1.0, maxFPR: 0.01, minAUC: 0.90},
		{id: "MG-B1", minTPR: 0.90, maxTPR: 1.0, maxFPR: 0.01, minAUC: 0.94},
	} {
		tt := tt
		t.Run(tt.id, func(t *testing.T) {
			t.Parallel()
			row, err := Table3Row(context.Background(), tt.id, opts)
			if err != nil {
				t.Fatalf("Table3Row: %v", err)
			}
			t.Log(fmt.Sprintf("%s FPR=%.2e TPR=%.4f AUC=%.4f Comp=%.1f Var=%.2e",
				row.Dataset, row.FPR, row.TPR, row.AUC, row.Comp, row.Var))
			if row.TPR < tt.minTPR || row.TPR > tt.maxTPR {
				t.Errorf("TPR %.4f outside [%.2f, %.2f]", row.TPR, tt.minTPR, tt.maxTPR)
			}
			if row.FPR > tt.maxFPR {
				t.Errorf("FPR %.2e above %.2e", row.FPR, tt.maxFPR)
			}
			if row.AUC < tt.minAUC {
				t.Errorf("AUC %.4f below %.2f", row.AUC, tt.minAUC)
			}
		})
	}
}
