package core

import (
	"context"
	"fmt"

	"edem/internal/mining/eval"
	"edem/internal/predicate"
	"edem/internal/telemetry"
)

// ValidationResult is the outcome of re-validating a deployed detector
// (paper §VII-D): the predicate is installed at the sampled location as
// a runtime assertion and the fault-injection experiments are repeated
// on a fresh workload to confirm the observed rates.
type ValidationResult struct {
	ID string
	// Counts cross-tabulates the detector's verdicts against the actual
	// failure labels of the fresh campaign.
	Counts eval.BinaryCounts
	// Runs is the number of usable (sampled) injected runs.
	Runs int
}

// ValidateDetector repeats the fault injection experiments for the
// dataset ID with the predicate conceptually installed at the sampling
// location, and scores its verdicts against the actual failure labels —
// the paper's §VII-D procedure ("all fault injection experiments were
// then repeated to ensure that the observed FPR and TPR values were
// commensurate with the rates presented"). Pass a different opts.Seed
// to measure generalisation to an unseen workload instead.
func ValidateDetector(ctx context.Context, id string, pred *predicate.Predicate, opts Options) (*ValidationResult, error) {
	ctx, span := telemetry.StartSpan(ctx, "validate")
	defer span.End()
	camp, err := Campaign(ctx, id, opts)
	if err != nil {
		return nil, err
	}
	res := &ValidationResult{ID: id}
	for i := range camp.Records {
		r := &camp.Records[i]
		if !r.Sampled {
			continue
		}
		res.Runs++
		flagged := pred.Eval(r.State)
		switch {
		case r.Failure && flagged:
			res.Counts.TP++
		case r.Failure && !flagged:
			res.Counts.FN++
		case !r.Failure && flagged:
			res.Counts.FP++
		default:
			res.Counts.TN++
		}
	}
	if res.Runs == 0 {
		return nil, fmt.Errorf("core: validation campaign %s produced no sampled runs", id)
	}
	reg := telemetry.FromContext(ctx)
	reg.Counter("validate.runs").Add(int64(res.Runs))
	reg.Counter("validate.flagged").Add(int64(res.Counts.TP + res.Counts.FP))
	return res, nil
}
