package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"edem/internal/dataset"
	"edem/internal/parallel"
	"edem/internal/stats"
)

// refineDataset builds a small imbalanced two-class dataset directly,
// so Refine's scheduling can be tested without running a campaign.
// Class 1 (the positive/failure class) is the ~20% minority.
func refineDataset(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("refine", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
	}, []string{"ok", "fail"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		class := 0
		if x > 0.8 || (y > 0.9 && x > 0.3) {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, y}, Class: class, Weight: 1})
	}
	return d
}

// TestRefineErrorNoDeadlock is the regression test for the worker-pool
// error path: with every grid cell failing and more cells than workers,
// the old pool deadlocked because a worker exiting on error stopped
// draining the unbuffered job channel while the dispatcher kept
// sending. Refine must instead return the error promptly.
func TestRefineErrorNoDeadlock(t *testing.T) {
	parallel.SetBudget(4)
	defer parallel.SetBudget(0)

	d := refineDataset(120, 1)
	// Percent <= 0 makes every Undersampling transform fail.
	grid := make([]SamplingConfig, 20)
	for i := range grid {
		grid[i] = SamplingConfig{Kind: Undersampling, Percent: -5}
	}
	opts := DefaultOptions()
	opts.Folds = 5
	opts.Workers = 2

	done := make(chan error, 1)
	go func() {
		_, err := Refine(context.Background(), d, grid, opts)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Refine succeeded with an always-failing grid")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Refine deadlocked on the error path")
	}
}

// TestRefineWorkerCountInvariant pins Refine's determinism contract:
// Workers=1 and Workers=8 must produce identical results (per-cell RNGs
// are derived from (seed, fold, config) alone; aggregation is serial).
func TestRefineWorkerCountInvariant(t *testing.T) {
	parallel.SetBudget(8)
	defer parallel.SetBudget(0)

	grid := []SamplingConfig{
		{Kind: Undersampling, Percent: 50},
		{Kind: Oversampling, Percent: 300},
		{Kind: Smote, Percent: 300, K: 3},
		{Kind: Smote, Percent: 500, K: 5},
	}
	for _, seed := range []uint64{7, 23} {
		d := refineDataset(200, seed)
		opts := DefaultOptions()
		opts.Seed = seed
		opts.Folds = 5

		opts.Workers = 1
		serial, err := Refine(context.Background(), d, grid, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Workers = 8
		par, err := Refine(context.Background(), d, grid, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial.Evaluated, par.Evaluated) {
			t.Errorf("seed %d: Workers=1 and Workers=8 grid evaluations differ", seed)
		}
		if serial.Best != par.Best {
			t.Errorf("seed %d: winning config differs: %+v vs %+v", seed, serial.Best, par.Best)
		}
	}
}
