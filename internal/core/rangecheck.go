package core

import (
	"context"
	"fmt"

	"edem/internal/mining/eval"
	"edem/internal/predicate"
	"edem/internal/propane"
)

// EAComparison contrasts the classical golden-range executable
// assertion (the specification/experience-derived detector of paper
// §II-A) with the methodology's learnt predicate on the same injected
// runs. This is the paper's core claim made measurable: detectors
// "obtained by design" versus the state of practice.
type EAComparison struct {
	ID string
	// RangeCheck is the golden-range EA's confusion counts.
	RangeCheck eval.BinaryCounts
	// Learned is the learnt predicate's confusion counts on the same
	// records (§VII-D style repetition of the experiments).
	Learned eval.BinaryCounts
	// Runs is the number of evaluated injected runs.
	Runs int
	// EA is the range-check predicate, for inspection.
	EA *predicate.Predicate
}

// CompareWithRangeCheckEA profiles the golden runs of the dataset's
// campaign, builds a range-check executable assertion with the given
// slack fraction, learns the methodology's predicate from the same
// campaign, and scores both against the failure labels.
func CompareWithRangeCheckEA(ctx context.Context, id string, slack float64, opts Options) (*EAComparison, error) {
	target, spec, err := SpecFor(id, opts)
	if err != nil {
		return nil, err
	}
	profiles, err := propane.ProfileGolden(target, spec)
	if err != nil {
		return nil, fmt.Errorf("core: golden profile %s: %w", id, err)
	}
	ea, err := predicate.RangeCheck(profiles, slack, id+"-rangecheck")
	if err != nil {
		return nil, fmt.Errorf("core: range check %s: %w", id, err)
	}

	camp, err := propane.Run(ctx, target, spec)
	if err != nil {
		return nil, fmt.Errorf("core: campaign %s: %w", id, err)
	}
	d, err := Preprocess(ctx, camp)
	if err != nil {
		return nil, err
	}
	t, err := DefaultLearner().FitTree(d)
	if err != nil {
		return nil, fmt.Errorf("core: fit %s: %w", id, err)
	}
	learned, err := predicate.FromTree(t, eval.PositiveClass, id)
	if err != nil {
		return nil, err
	}

	res := &EAComparison{ID: id, EA: ea}
	for i := range camp.Records {
		r := &camp.Records[i]
		if !r.Sampled {
			continue
		}
		res.Runs++
		score(&res.RangeCheck, ea.Eval(r.State), r.Failure)
		score(&res.Learned, learned.Eval(r.State), r.Failure)
	}
	if res.Runs == 0 {
		return nil, fmt.Errorf("core: campaign %s produced no sampled runs", id)
	}
	return res, nil
}

func score(b *eval.BinaryCounts, flagged, failure bool) {
	switch {
	case failure && flagged:
		b.TP++
	case failure && !flagged:
		b.FN++
	case !failure && flagged:
		b.FP++
	default:
		b.TN++
	}
}
