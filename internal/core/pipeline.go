package core

import (
	"context"
	"fmt"

	"edem/internal/dataset"
	"edem/internal/mining/eval"
	"edem/internal/mining/sampling"
	"edem/internal/mining/tree"
	"edem/internal/predicate"
	"edem/internal/stats"
	"edem/internal/telemetry"
)

// SamplingKind selects the imbalance treatment of a refinement
// configuration.
type SamplingKind int

// Available treatments.
const (
	// NoSampling leaves the training distribution untouched (the
	// baseline configuration of Table III).
	NoSampling SamplingKind = iota + 1
	// Undersampling keeps Percent% of the majority class.
	Undersampling
	// Oversampling adds Percent% minority copies with replacement
	// (SMOTE with q=0).
	Oversampling
	// Smote adds Percent% synthetic minority instances interpolated
	// towards K nearest neighbours.
	Smote
)

// SamplingConfig is one point of the Step 4 refinement grid.
type SamplingConfig struct {
	Kind    SamplingKind
	Percent float64
	K       int
}

// Label renders the configuration in Table IV's S/N notation:
// "85(U)", "300(O)" etc.; K is reported separately.
func (c SamplingConfig) Label() string {
	switch c.Kind {
	case Undersampling:
		return fmt.Sprintf("%.0f(U)", c.Percent)
	case Oversampling, Smote:
		return fmt.Sprintf("%.0f(O)", c.Percent)
	default:
		return "-"
	}
}

// KLabel renders the N column of Table IV ("-" when no neighbour count
// applies).
func (c SamplingConfig) KLabel() string {
	if c.Kind == Smote {
		return fmt.Sprintf("%d", c.K)
	}
	return "-"
}

// Transform returns the cross-validation training transform for the
// configuration, or nil for NoSampling.
func (c SamplingConfig) Transform() eval.TrainTransform {
	switch c.Kind {
	case Undersampling:
		return func(d *dataset.Dataset, rng *stats.RNG) (*dataset.Dataset, error) {
			return sampling.Undersample(d, 0, c.Percent, rng)
		}
	case Oversampling:
		return func(d *dataset.Dataset, rng *stats.RNG) (*dataset.Dataset, error) {
			return sampling.Oversample(d, eval.PositiveClass, c.Percent, rng)
		}
	case Smote:
		return func(d *dataset.Dataset, rng *stats.RNG) (*dataset.Dataset, error) {
			return sampling.SMOTE(d, eval.PositiveClass, c.Percent, c.K, rng)
		}
	default:
		return nil
	}
}

// ViewTransform returns the columnar training transform for the
// configuration, or nil for NoSampling. It consumes the same RNG
// stream as Transform, so a run may mix the two paths and stay
// bit-identical.
func (c SamplingConfig) ViewTransform() eval.ViewTransform {
	switch c.Kind {
	case Undersampling:
		return func(st *dataset.Store, rng *stats.RNG) (*dataset.View, error) {
			return sampling.UndersampleView(st, 0, c.Percent, rng)
		}
	case Oversampling:
		return func(st *dataset.Store, rng *stats.RNG) (*dataset.View, error) {
			return sampling.OversampleView(st, eval.PositiveClass, c.Percent, rng)
		}
	case Smote:
		return func(st *dataset.Store, rng *stats.RNG) (*dataset.View, error) {
			return sampling.SMOTEView(st, eval.PositiveClass, c.Percent, c.K, rng)
		}
	default:
		return nil
	}
}

// DefaultLearner returns the paper's Step 3 configuration: C4.5 with
// standard settings (CF=0.25, min leaf 2, gain ratio, pruning).
func DefaultLearner() tree.Learner { return tree.Learner{} }

// Baseline runs Step 3: stratified k-fold cross-validation of the
// baseline C4.5 configuration, producing one Table III row. The run is
// recorded as a "baseline" telemetry phase (with the cross-validation
// nested under it as "baseline/crossval").
func Baseline(ctx context.Context, d *dataset.Dataset, opts Options) (*eval.CVResult, error) {
	ctx, span := telemetry.StartSpan(ctx, "baseline")
	defer span.End()
	return eval.CrossValidate(ctx, DefaultLearner(), d, eval.CVConfig{
		Folds:   opts.folds(),
		Seed:    opts.Seed,
		Workers: opts.Workers,
	})
}

// RefineGrid returns the Step 4 search grid. The full grid is the
// paper's: 10 undersampling levels over [5,100], 15 oversampling levels
// over [100,1500], SMOTE neighbour counts over [1,15]. The reduced grid
// (full=false) covers the same ranges with fewer points for laptop-scale
// runs.
func RefineGrid(full bool) []SamplingConfig {
	var grid []SamplingConfig
	if full {
		for i := 0; i < 10; i++ {
			grid = append(grid, SamplingConfig{Kind: Undersampling, Percent: 5 + float64(i)*(95.0/9)})
		}
		for i := 0; i < 15; i++ {
			pct := 100 + float64(i)*100
			grid = append(grid, SamplingConfig{Kind: Oversampling, Percent: pct})
			for _, k := range []int{1, 4, 7, 11, 15} {
				grid = append(grid, SamplingConfig{Kind: Smote, Percent: pct, K: k})
			}
		}
		return grid
	}
	for _, pct := range []float64{5, 35, 65, 85} {
		grid = append(grid, SamplingConfig{Kind: Undersampling, Percent: pct})
	}
	for _, pct := range []float64{100, 300, 500, 900, 1500} {
		grid = append(grid, SamplingConfig{Kind: Oversampling, Percent: pct})
		for _, k := range []int{1, 7, 14} {
			grid = append(grid, SamplingConfig{Kind: Smote, Percent: pct, K: k})
		}
	}
	return grid
}

// RefineResult is the outcome of Step 4 for one dataset.
type RefineResult struct {
	Best   SamplingConfig
	BestCV *eval.CVResult
	// Evaluated lists every grid point with its cross-validation
	// result, in grid order.
	Evaluated []struct {
		Config SamplingConfig
		CV     *eval.CVResult
	}
}

// Report is the complete methodology output for one dataset: the
// Table III and Table IV rows plus the deployable predicate.
type Report struct {
	ID        string
	Instances int
	Failures  int

	Baseline *eval.CVResult
	Refined  *RefineResult

	// Tree is the final model fitted on the full (transformed) dataset
	// with the winning configuration.
	Tree *tree.Tree
	// Predicate is the detector predicate extracted from Tree.
	Predicate *predicate.Predicate
}

// RunMethodology executes all four steps for one dataset ID and fits
// the final detector predicate.
func RunMethodology(ctx context.Context, id string, grid []SamplingConfig, opts Options) (*Report, error) {
	d, camp, err := BuildDataset(ctx, id, opts)
	if err != nil {
		return nil, err
	}
	return RunMethodologyOn(ctx, id, d, camp.Failures(), grid, opts)
}

// RunMethodologyOn runs Steps 3-4 on an already-built dataset and fits
// the final predicate.
func RunMethodologyOn(ctx context.Context, id string, d *dataset.Dataset, failures int, grid []SamplingConfig, opts Options) (*Report, error) {
	baseline, err := Baseline(ctx, d, opts)
	if err != nil {
		return nil, fmt.Errorf("core: baseline %s: %w", id, err)
	}
	refined, err := Refine(ctx, d, grid, opts)
	if err != nil {
		return nil, err
	}

	final := d
	if tf := refined.Best.Transform(); tf != nil {
		final, err = tf(d, stats.NewRNG(opts.Seed^0xfeed))
		if err != nil {
			return nil, fmt.Errorf("core: final transform %s: %w", id, err)
		}
	}
	t, err := DefaultLearner().FitTree(final)
	if err != nil {
		return nil, fmt.Errorf("core: final fit %s: %w", id, err)
	}
	pred, err := predicate.FromTree(t, eval.PositiveClass, id)
	if err != nil {
		return nil, fmt.Errorf("core: predicate %s: %w", id, err)
	}
	return &Report{
		ID:        id,
		Instances: d.Len(),
		Failures:  failures,
		Baseline:  baseline,
		Refined:   refined,
		Tree:      t,
		Predicate: pred,
	}, nil
}
