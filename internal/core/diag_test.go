package core

import (
	"context"
	"fmt"
	"sort"
	"testing"
)

// TestDiagnosticsPerVariable prints, for every dataset, the failure
// fraction per injected variable — the structural fingerprint the
// decision trees learn from. Run with -v to inspect. It asserts only
// the coarse invariants every dataset must satisfy.
func TestDiagnosticsPerVariable(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are expensive; skipped in -short mode")
	}
	opts := DefaultOptions()
	opts.TestCases = 3
	opts.BitStride = 4
	for _, id := range AllDatasetIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			camp, err := Campaign(context.Background(), id, opts)
			if err != nil {
				t.Fatalf("campaign: %v", err)
			}
			type agg struct{ fail, total, crash int }
			perVar := map[string]*agg{}
			for i := range camp.Records {
				r := &camp.Records[i]
				a := perVar[r.Var]
				if a == nil {
					a = &agg{}
					perVar[r.Var] = a
				}
				if r.Injected {
					a.total++
					if r.Failure {
						a.fail++
					}
					if r.Crashed {
						a.crash++
					}
				}
			}
			names := make([]string, 0, len(perVar))
			for n := range perVar {
				names = append(names, n)
			}
			sort.Strings(names)
			failSum, totSum := 0, 0
			for _, n := range names {
				a := perVar[n]
				failSum += a.fail
				totSum += a.total
				t.Log(fmt.Sprintf("%-16s fail=%4d/%4d (%.2f) crash=%d", n, a.fail, a.total, float64(a.fail)/float64(a.total+1e-9*0+1), a.crash))
			}
			frac := float64(failSum) / float64(totSum)
			t.Log(fmt.Sprintf("TOTAL fail=%d/%d frac=%.3f usable=%d", failSum, totSum, frac, camp.Usable()))
			if failSum == 0 {
				t.Error("no failures: no positive class")
			}
			if frac > 0.45 {
				t.Errorf("failure fraction %.2f too high: imbalance structure lost", frac)
			}
		})
	}
}
