package core

import (
	"context"
	"fmt"
	"sync"

	"edem/internal/dataset"
	"edem/internal/mining/eval"
	"edem/internal/mining/sampling"
	"edem/internal/parallel"
	"edem/internal/stats"
	"edem/internal/telemetry"
)

// Refine runs Step 4: every grid configuration is cross-validated on
// the SAME stratified folds as the baseline and the configuration with
// the best mean AUC is selected (ties: fewer mean nodes). The baseline
// configuration competes too, so refinement never reports a worse model
// than Step 3.
//
// The unit of scheduling is one (configuration, fold) cell, so
// parallelism scales to configurations × folds workers rather than
// stopping at the fold count. Results are bit-identical for any worker
// count: each cell derives its RNG from (seed, fold, config) alone, and
// the per-fold shared artifacts (training partition, SMOTE neighbour
// index) are built once on first use and only read afterwards.
func Refine(ctx context.Context, d *dataset.Dataset, grid []SamplingConfig, opts Options) (*RefineResult, error) {
	ctx, span := telemetry.StartSpan(ctx, "refine")
	defer span.End()
	full := append([]SamplingConfig{{Kind: NoSampling}}, grid...)

	// Folds must match Baseline: same RNG construction as
	// eval.CrossValidate with the same seed.
	rng := stats.NewRNG(opts.Seed)
	folds, err := dataset.StratifiedKFold(d, opts.folds(), rng)
	if err != nil {
		return nil, fmt.Errorf("core: refine folds: %w", err)
	}

	maxK := 0
	for _, cfg := range full {
		if cfg.Kind == Smote && cfg.K > maxK {
			maxK = cfg.K
		}
	}

	nCfg := len(full)
	cells := make([]refineCell, nCfg*len(folds))
	shared := make([]foldShared, len(folds))

	reg := telemetry.FromContext(ctx)
	reg.Counter("refine.grid_configs").Add(int64(nCfg))
	cellsScored := reg.Counter("refine.cells_scored")
	cellNS := reg.Histogram("refine.cell_ns")
	ctrs := refineCounters{
		storeBuilds: reg.Counter("refine.store_builds"),
		viewHits:    reg.Counter("refine.view_hits"),
		mergeSyn:    reg.Counter("refine.merge_synthetic_rows"),
	}

	// Cell index layout: fold-major, so the cells of one fold are
	// adjacent in the claim order and the fold's lazily-built artifacts
	// are hot when its remaining cells run.
	err = parallel.ForEach(ctx, len(cells), opts.Workers, func(idx int) error {
		_, cellSpan := telemetry.StartSpan(ctx, "cell")
		fi, ci := idx/nCfg, idx%nCfg
		if err := refineCellEval(d, folds[fi], &shared[fi], full[ci], maxK, opts, fi, ci, &cells[idx], ctrs); err != nil {
			cellSpan.End()
			return fmt.Errorf("core: refine fold %d %s: %w", fi, full[ci].Label(), err)
		}
		cellNS.Observe(int64(cellSpan.End()))
		cellsScored.Inc()
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &RefineResult{}
	for ci, cfg := range full {
		cv := &eval.CVResult{}
		var aucW, tprW, fprW, compW stats.Welford
		for fi := range folds {
			cell := &cells[fi*nCfg+ci]
			aucW.Add(cell.counts.AUC())
			tprW.Add(cell.counts.TPR())
			fprW.Add(cell.counts.FPR())
			compW.Add(float64(cell.size))
		}
		cv.MeanAUC = aucW.Mean()
		cv.MeanTPR = tprW.Mean()
		cv.MeanFPR = fprW.Mean()
		cv.MeanComp = compW.Mean()
		cv.VarAUC = aucW.Variance()
		res.Evaluated = append(res.Evaluated, struct {
			Config SamplingConfig
			CV     *eval.CVResult
		}{cfg, cv})
		if res.BestCV == nil ||
			cv.MeanAUC > res.BestCV.MeanAUC ||
			(cv.MeanAUC == res.BestCV.MeanAUC && cv.MeanComp < res.BestCV.MeanComp) {
			res.Best = cfg
			res.BestCV = cv
		}
	}
	return res, nil
}

// refineCell is one (configuration, fold) evaluation.
type refineCell struct {
	counts eval.BinaryCounts
	size   int
}

// foldShared holds the artifacts every cell of one fold reads: the
// columnar training store (DESIGN.md §10) and (when the grid contains
// SMOTE points) the minority neighbour index over it. Both are built
// exactly once, by whichever cell of the fold is scheduled first, and
// are immutable afterwards.
type foldShared struct {
	storeOnce sync.Once
	store     *dataset.Store

	niOnce sync.Once
	ni     *sampling.NeighborIndex
	niErr  error
}

// refineCounters carries the telemetry handles hoisted out of the cell
// loop; all three are worker-count-invariant by construction.
type refineCounters struct {
	storeBuilds *telemetry.Counter
	viewHits    *telemetry.Counter
	mergeSyn    *telemetry.Counter
}

func (s *foldShared) trainStore(d *dataset.Dataset, fold dataset.Fold, storeBuilds *telemetry.Counter) *dataset.Store {
	s.storeOnce.Do(func() {
		s.store = dataset.NewStore(d, fold.Train)
		storeBuilds.Inc()
	})
	return s.store
}

func (s *foldShared) index(st *dataset.Store, maxK int) (*sampling.NeighborIndex, error) {
	s.niOnce.Do(func() {
		s.ni, s.niErr = sampling.BuildViewIndex(st, eval.PositiveClass, maxK)
		if s.niErr != nil {
			s.niErr = fmt.Errorf("neighbour index: %w", s.niErr)
		}
	})
	return s.ni, s.niErr
}

// refineCellEval evaluates one configuration on one fold. The cell RNG
// is seeded from (seed, fold, config) so the result does not depend on
// which worker runs the cell or in what order. Each cell trains from a
// per-configuration view of the fold's shared store; the sampling
// views consume the same RNG streams as their dataset counterparts, so
// results are bit-identical to the instance-based path.
func refineCellEval(d *dataset.Dataset, fold dataset.Fold, sh *foldShared, cfg SamplingConfig, maxK int, opts Options, fi, ci int, cell *refineCell, ctrs refineCounters) error {
	st := sh.trainStore(d, fold, ctrs.storeBuilds)

	rng := stats.NewRNG(opts.Seed ^ (uint64(fi+1) << 20) ^ uint64(ci+1))
	v := st.IdentityView()
	var err error
	switch cfg.Kind {
	case Undersampling:
		v, err = sampling.UndersampleView(st, 0, cfg.Percent, rng)
	case Oversampling:
		if maxK > 0 {
			ni, nerr := sh.index(st, maxK)
			if nerr != nil {
				return nerr
			}
			v, err = ni.OversampleView(cfg.Percent, rng)
		} else {
			v, err = sampling.OversampleView(st, eval.PositiveClass, cfg.Percent, rng)
		}
	case Smote:
		if maxK <= 0 {
			return fmt.Errorf("smote config without neighbour index")
		}
		ni, nerr := sh.index(st, maxK)
		if nerr != nil {
			return nerr
		}
		v, err = ni.SMOTEView(cfg.Percent, cfg.K, rng)
	}
	if err != nil {
		return fmt.Errorf("transform: %w", err)
	}
	if !v.HasMissing() {
		ctrs.viewHits.Inc()
		if cfg.Kind == Smote {
			ctrs.mergeSyn.Add(int64(v.Appended()))
		}
	}
	model, err := DefaultLearner().FitTreeView(v)
	if err != nil {
		return fmt.Errorf("fit: %w", err)
	}
	cm := eval.NewConfusionMatrix(d.ClassValues)
	for _, ti := range fold.Test {
		in := &d.Instances[ti]
		if err := cm.Record(in.Class, model.Classify(in.Values), in.Weight); err != nil {
			return err
		}
	}
	cell.counts = cm.Binary(eval.PositiveClass)
	cell.size = model.Size()
	return nil
}
