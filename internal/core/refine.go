package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"edem/internal/dataset"
	"edem/internal/mining/eval"
	"edem/internal/mining/sampling"
	"edem/internal/stats"
)

// Refine runs Step 4: every grid configuration is cross-validated on
// the SAME stratified folds as the baseline and the configuration with
// the best mean AUC is selected (ties: fewer mean nodes). The baseline
// configuration competes too, so refinement never reports a worse model
// than Step 3.
//
// The fold loop is the outer loop: each training partition's SMOTE
// neighbour lists are computed once and shared by every (percent, k)
// grid point, and folds are evaluated in parallel.
func Refine(ctx context.Context, d *dataset.Dataset, grid []SamplingConfig, opts Options) (*RefineResult, error) {
	full := append([]SamplingConfig{{Kind: NoSampling}}, grid...)

	// Folds must match Baseline: same RNG construction as
	// eval.CrossValidate with the same seed.
	rng := stats.NewRNG(opts.Seed)
	folds, err := dataset.StratifiedKFold(d, opts.folds(), rng)
	if err != nil {
		return nil, fmt.Errorf("core: refine folds: %w", err)
	}

	maxK := 0
	for _, cfg := range full {
		if cfg.Kind == Smote && cfg.K > maxK {
			maxK = cfg.K
		}
	}

	cells := make([][]refineCell, len(full))
	for i := range cells {
		cells[i] = make([]refineCell, len(folds))
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(folds) {
		workers = len(folds)
	}
	foldCh := make(chan int)
	errCh := make(chan error, len(folds))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for fi := range foldCh {
				if err := refineFold(d, folds[fi], full, maxK, opts, fi, cells); err != nil {
					errCh <- fmt.Errorf("core: refine fold %d: %w", fi, err)
					return
				}
			}
		}()
	}
dispatch:
	for fi := range folds {
		select {
		case foldCh <- fi:
		case <-ctx.Done():
			errCh <- ctx.Err()
			break dispatch
		}
	}
	close(foldCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}

	res := &RefineResult{}
	for ci, cfg := range full {
		cv := &eval.CVResult{}
		var aucW, tprW, fprW, compW stats.Welford
		for fi := range folds {
			b := cells[ci][fi].counts
			aucW.Add(b.AUC())
			tprW.Add(b.TPR())
			fprW.Add(b.FPR())
			compW.Add(float64(cells[ci][fi].size))
		}
		cv.MeanAUC = aucW.Mean()
		cv.MeanTPR = tprW.Mean()
		cv.MeanFPR = fprW.Mean()
		cv.MeanComp = compW.Mean()
		cv.VarAUC = aucW.Variance()
		res.Evaluated = append(res.Evaluated, struct {
			Config SamplingConfig
			CV     *eval.CVResult
		}{cfg, cv})
		if res.BestCV == nil ||
			cv.MeanAUC > res.BestCV.MeanAUC ||
			(cv.MeanAUC == res.BestCV.MeanAUC && cv.MeanComp < res.BestCV.MeanComp) {
			res.Best = cfg
			res.BestCV = cv
		}
	}
	return res, nil
}

// refineFold evaluates every configuration on one fold, filling the
// (config, fold) cells.
// refineCell is one (configuration, fold) evaluation.
type refineCell struct {
	counts eval.BinaryCounts
	size   int
}

func refineFold(d *dataset.Dataset, fold dataset.Fold, full []SamplingConfig, maxK int, opts Options, fi int, cells [][]refineCell) error {
	train := d.Subset(fold.Train)

	var ni *sampling.NeighborIndex
	if maxK > 0 {
		var err error
		ni, err = sampling.BuildNeighborIndex(train, eval.PositiveClass, maxK)
		if err != nil {
			return fmt.Errorf("neighbour index: %w", err)
		}
	}

	learner := DefaultLearner()
	for ci, cfg := range full {
		rng := stats.NewRNG(opts.Seed ^ (uint64(fi+1) << 20) ^ uint64(ci+1))
		td := train
		var err error
		switch cfg.Kind {
		case Undersampling:
			td, err = sampling.Undersample(train, 0, cfg.Percent, rng)
		case Oversampling:
			if ni != nil {
				td, err = ni.Oversample(cfg.Percent, rng)
			} else {
				td, err = sampling.Oversample(train, eval.PositiveClass, cfg.Percent, rng)
			}
		case Smote:
			if ni == nil {
				return fmt.Errorf("smote config without neighbour index")
			}
			td, err = ni.SMOTE(cfg.Percent, cfg.K, rng)
		}
		if err != nil {
			return fmt.Errorf("transform %s: %w", cfg.Label(), err)
		}
		model, err := learner.FitTree(td)
		if err != nil {
			return fmt.Errorf("fit %s: %w", cfg.Label(), err)
		}
		cm := eval.NewConfusionMatrix(d.ClassValues)
		for _, ti := range fold.Test {
			in := &d.Instances[ti]
			if err := cm.Record(in.Class, model.Classify(in.Values), in.Weight); err != nil {
				return err
			}
		}
		cells[ci][fi].counts = cm.Binary(eval.PositiveClass)
		cells[ci][fi].size = model.Size()
	}
	return nil
}
