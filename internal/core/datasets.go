// Package core implements the paper's four-step methodology (Figure 1):
//
//  1. Fault injection analysis — run a PROPANE campaign against a
//     target system (internal/propane, internal/targets).
//  2. Algorithm selection & preprocessing — convert the campaign log to
//     a mining dataset and prepare imbalance handling.
//  3. Data mining / model generation — induce a baseline C4.5 tree and
//     evaluate it with stratified 10-fold cross-validation (Table III).
//  4. Model refinement — grid-search sampling levels and SMOTE
//     neighbour counts for the best mean AUC (Table IV), then extract
//     the winning tree as a detector predicate.
//
// It also defines the 18 fault-injection dataset configurations of
// Table II and the re-validation procedure of §VII-D.
//
// Concurrency: the package fans work out internally (datasets, folds,
// grid cells, campaign shards) through the shared internal/parallel
// budget and is safe to call from multiple goroutines with distinct
// Options values; results are deterministic and worker-count-invariant.
// Options is a value type — each call owns its copy. Journaled campaign
// state (Options.Journal) follows internal/campaign's contract: one
// running campaign per journal directory.
package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"edem/internal/bitflip"
	"edem/internal/campaign"
	"edem/internal/dataset"
	"edem/internal/propane"
	"edem/internal/targets/flightgear"
	"edem/internal/targets/kvstore"
	"edem/internal/targets/mp3gain"
	"edem/internal/targets/sevenzip"
	"edem/internal/telemetry"
)

// Options scales and seeds the experiment suite. The paper's campaigns
// (250 test cases, every bit position) take CPU-days; the defaults here
// preserve the structure (all 18 datasets, every variable, 3-4 injection
// times, stratified bit coverage) at laptop scale. Paper-scale runs are
// a matter of raising TestCases and setting BitStride to 1.
type Options struct {
	// Seed drives workload generation and fold assignment.
	Seed uint64
	// Workers bounds the parallelism of every pipeline stage —
	// campaigns, CV folds, refinement cells, table rows all share one
	// budget (0 = the process-wide default, all cores). Results never
	// depend on it.
	Workers int
	// BitStride samples every n-th bit position (default 2; the paper
	// uses 1).
	BitStride int
	// TestCases is the number of test cases for the 7-Zip and Mp3Gain
	// campaigns (default 10; the paper uses 250). FlightGear always
	// uses the paper's 9-case grid.
	TestCases int
	// Folds is the cross-validation fold count (default 10).
	Folds int

	// Journal, when set, is the root checkpoint directory of the
	// campaign engine: each dataset journals to Journal/<ID>, a killed
	// run resumes from its last checkpoint, and a complete journal
	// rebuilds the dataset without executing a single target run.
	Journal string
	// Resume permits continuing existing journals under Journal; the
	// table/dataset consumers set it implicitly, `edem campaign`
	// requires the explicit -resume flag.
	Resume bool
	// Incremental relaxes the resume plan-identity check to a
	// per-section diff: after a spec or target change, only shards
	// whose test-case sections changed re-run (campaign.Config.
	// Incremental). Requires Resume.
	Incremental bool
	// Shards overrides the engine's checkpoint shard count (0 = auto).
	Shards int
	// RunTimeout bounds one target run attempt (0 = no watchdog).
	RunTimeout time.Duration
	// MaxRetries is the number of extra attempts for an infrastructure
	// failure (hang, engine panic) before a cell is skipped.
	MaxRetries int
	// Fork enables the campaign engine's golden-state forking fast
	// path (bit-identical to the slow path; see campaign.Config.Fork).
	Fork bool

	// Fault selects the fault model for every campaign built from these
	// options (transient single bit-flip by default; see bitflip.Fault).
	// The zero value reproduces today's campaigns byte-for-byte.
	Fault bitflip.Fault
}

// CampaignConfig derives the engine configuration for one dataset. The
// journal root fans out to one directory per dataset so an 18-dataset
// table sweep is 18 independently resumable journals.
func (o Options) CampaignConfig(id string) campaign.Config {
	cfg := campaign.Config{
		Shards:     o.Shards,
		Timeout:    o.RunTimeout,
		MaxRetries: o.MaxRetries,
		Fork:       o.Fork,
	}
	if o.Journal != "" {
		cfg.Journal = filepath.Join(o.Journal, id)
		cfg.Resume = o.Resume
		cfg.Incremental = o.Incremental
	}
	return cfg
}

// DefaultOptions returns the laptop-scale defaults.
func DefaultOptions() Options {
	return Options{Seed: 1, BitStride: 2, TestCases: 10, Folds: 10}
}

func (o Options) bitStride() int {
	if o.BitStride <= 0 {
		return 2
	}
	return o.BitStride
}

func (o Options) testCases() int {
	if o.TestCases <= 0 {
		return 10
	}
	return o.TestCases
}

func (o Options) folds() int {
	if o.Folds <= 0 {
		return 10
	}
	return o.Folds
}

// DatasetInfo describes one Table II row.
type DatasetInfo struct {
	ID       string
	Target   string
	Module   string
	InjectAt propane.Location
	SampleAt propane.Location
}

// locationTriple returns the (inject, sample) pair for suffix 1..3:
// 1 = Entry/Entry, 2 = Entry/Exit, 3 = Exit/Exit (Table II).
func locationTriple(n int) (propane.Location, propane.Location) {
	switch n {
	case 1:
		return propane.Entry, propane.Entry
	case 2:
		return propane.Entry, propane.Exit
	case 3:
		return propane.Exit, propane.Exit
	default:
		return 0, 0
	}
}

// systems maps dataset prefixes to target constructors and module roles.
var systems = map[string]struct {
	target  func(Options) propane.Target
	modules map[byte]string // 'A'/'B' -> module name
	times   func(Options) []int
	cases   func(Options) int
}{
	"7Z": {
		target: func(Options) propane.Target { return sevenzip.System{} },
		modules: map[byte]string{
			'A': sevenzip.ModuleFHandle,
			'B': sevenzip.ModuleLDecode,
		},
		times: func(Options) []int { return []int{2, 5, 7, 9} },
		cases: func(o Options) int { return o.testCases() },
	},
	"FG": {
		target: func(Options) propane.Target { return flightgear.System{} },
		modules: map[byte]string{
			'A': flightgear.ModuleGear,
			'B': flightgear.ModuleMass,
		},
		// The paper injects at three times uniformly distributed across
		// the post-initialisation window, spanning ground roll, rotation
		// and climb-out.
		times: func(Options) []int { return []int{900, 1400, 1900} },
		cases: func(Options) int { return 9 },
	},
	"MG": {
		target: func(Options) propane.Target { return mp3gain.System{} },
		modules: map[byte]string{
			'A': mp3gain.ModuleGAnalysis,
			'B': mp3gain.ModuleRGain,
		},
		times: func(Options) []int { return []int{2, 4, 6, 8} },
		cases: func(o Options) int { return o.testCases() },
	},
	// KV is the replicated key-value store target. It is not part of the
	// paper's Table II (AllDatasetIDs stays at the 18 published rows) but
	// resolves through the same ID grammar, so KV-A1..KV-B3 run the full
	// pipeline like any published dataset.
	"KV": {
		target: func(Options) propane.Target { return kvstore.System{} },
		modules: map[byte]string{
			'A': kvstore.ModuleReplicate,
			'B': kvstore.ModuleQuorum,
		},
		times: func(Options) []int { return []int{2, 5, 8, 11} },
		cases: func(o Options) int { return o.testCases() },
	},
}

// AllDatasetIDs returns the 18 dataset names of Table II in table order.
func AllDatasetIDs() []string {
	prefixes := []string{"7Z", "FG", "MG"}
	ids := make([]string, 0, 18)
	for _, p := range prefixes {
		for _, m := range []byte{'A', 'B'} {
			for n := 1; n <= 3; n++ {
				ids = append(ids, fmt.Sprintf("%s-%c%d", p, m, n))
			}
		}
	}
	return ids
}

// Info resolves a dataset ID into its Table II description.
func Info(id string, opts Options) (DatasetInfo, error) {
	target, spec, err := SpecFor(id, opts)
	if err != nil {
		return DatasetInfo{}, err
	}
	return DatasetInfo{
		ID:       id,
		Target:   target.Name(),
		Module:   spec.Module,
		InjectAt: spec.InjectAt,
		SampleAt: spec.SampleAt,
	}, nil
}

// SpecFor resolves a dataset ID ("7Z-A1" ... "MG-B3") into a target and
// a campaign spec.
func SpecFor(id string, opts Options) (propane.Target, propane.Spec, error) {
	if len(id) != 5 || id[2] != '-' {
		return nil, propane.Spec{}, fmt.Errorf("core: malformed dataset id %q", id)
	}
	sys, ok := systems[id[:2]]
	if !ok {
		return nil, propane.Spec{}, fmt.Errorf("core: unknown system prefix in %q", id)
	}
	module, ok := sys.modules[id[3]]
	if !ok {
		return nil, propane.Spec{}, fmt.Errorf("core: unknown module letter in %q", id)
	}
	n := int(id[4] - '0')
	injectAt, sampleAt := locationTriple(n)
	if injectAt == 0 {
		return nil, propane.Spec{}, fmt.Errorf("core: unknown location triple in %q", id)
	}
	target := sys.target(opts)
	spec := propane.Spec{
		Dataset:        id,
		Module:         module,
		InjectAt:       injectAt,
		SampleAt:       sampleAt,
		InjectionTimes: sys.times(opts),
		TestCases:      sys.cases(opts),
		Seed:           opts.Seed,
		Workers:        opts.Workers,
		BitStride:      opts.bitStride(),
		Fault:          opts.Fault,
	}
	return target, spec, nil
}

// Campaign runs Step 1 (fault injection analysis) for the dataset ID.
// All dataset generation flows through the resumable campaign engine
// (internal/campaign): without a journal configured the engine runs
// in-memory and is bit-identical to propane.Run; with Options.Journal
// set, the run checkpoints to Journal/<ID> and resumes from there.
func Campaign(ctx context.Context, id string, opts Options) (*propane.Campaign, error) {
	res, err := CampaignResult(ctx, id, opts)
	if err != nil {
		return nil, err
	}
	return res.Campaign, nil
}

// CampaignResult runs Step 1 through the campaign engine and returns
// the full engine result: the records plus resume accounting and any
// skipped cells. `edem campaign` reports from this.
func CampaignResult(ctx context.Context, id string, opts Options) (*campaign.Result, error) {
	target, spec, err := SpecFor(id, opts)
	if err != nil {
		return nil, err
	}
	res, err := campaign.Run(ctx, target, spec, opts.CampaignConfig(id))
	if err != nil {
		return nil, fmt.Errorf("core: campaign %s: %w", id, err)
	}
	return res, nil
}

// Preprocess runs Step 2's format transformation: the campaign log
// becomes a mining dataset (the PROPANE → ARFF conversion of §VII-B).
// Class-imbalance handling is deferred to the cross-validation
// transforms of Steps 3-4, as the paper does. The conversion is
// recorded as a "preprocess" telemetry phase with the emitted instance
// count in preprocess.instances.
func Preprocess(ctx context.Context, c *propane.Campaign) (*dataset.Dataset, error) {
	ctx, span := telemetry.StartSpan(ctx, "preprocess")
	defer span.End()
	d, err := propane.ToDataset(c)
	if err != nil {
		return nil, fmt.Errorf("core: preprocess %s: %w", c.Spec.Dataset, err)
	}
	reg := telemetry.FromContext(ctx)
	reg.Counter("preprocess.instances").Add(int64(d.Len()))
	reg.Counter("preprocess.attributes").Add(int64(len(d.Attrs)))
	return d, nil
}

// BuildDataset runs Steps 1-2 for a dataset ID.
func BuildDataset(ctx context.Context, id string, opts Options) (*dataset.Dataset, *propane.Campaign, error) {
	c, err := Campaign(ctx, id, opts)
	if err != nil {
		return nil, nil, err
	}
	d, err := Preprocess(ctx, c)
	if err != nil {
		return nil, nil, err
	}
	return d, c, nil
}

// SortedDatasetIDs returns ids sorted in Table II/III/IV order.
func SortedDatasetIDs(ids []string) []string {
	order := make(map[string]int, 18)
	for i, id := range AllDatasetIDs() {
		order[id] = i
	}
	out := make([]string, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return order[out[i]] < order[out[j]] })
	return out
}
