package core

import (
	"fmt"
	"io"
)

// WriteReport renders a methodology Report as a self-contained markdown
// document: campaign summary, Table III/IV rows for the dataset, the
// winning configuration, the induced tree and the extracted predicate.
// It is what `edem run -report` writes for archival next to the
// detector artefact.
func WriteReport(w io.Writer, rep *Report) error {
	if rep == nil {
		return fmt.Errorf("core: nil report")
	}
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# Detector generation report — %s\n\n", rep.ID)
	p("Instances: %d sampled injected runs, %d failure-inducing (%.1f%%).\n\n",
		rep.Instances, rep.Failures, 100*float64(rep.Failures)/float64(max(rep.Instances, 1)))

	p("## Step 3 — baseline C4.5 (stratified cross-validation)\n\n")
	p("| FPR | TPR | AUC | Comp | Var |\n|---|---|---|---|---|\n")
	b := rep.Baseline
	p("| %.2e | %.4f | %.4f | %.1f | %.2e |\n\n", b.MeanFPR, b.MeanTPR, b.MeanAUC, b.MeanComp, b.VarAUC)

	p("## Step 4 — refinement\n\n")
	p("Best configuration: S=%s, N=%s (of %d evaluated).\n\n",
		rep.Refined.Best.Label(), rep.Refined.Best.KLabel(), len(rep.Refined.Evaluated))
	p("| FPR | TPR | AUC | Comp | Var |\n|---|---|---|---|---|\n")
	r := rep.Refined.BestCV
	p("| %.2e | %.4f | %.4f | %.1f | %.2e |\n\n", r.MeanFPR, r.MeanTPR, r.MeanAUC, r.MeanComp, r.VarAUC)

	p("### Grid detail\n\n")
	p("| S | N | FPR | TPR | AUC | Comp |\n|---|---|---|---|---|---|\n")
	for _, e := range rep.Refined.Evaluated {
		p("| %s | %s | %.2e | %.4f | %.4f | %.1f |\n",
			e.Config.Label(), e.Config.KLabel(),
			e.CV.MeanFPR, e.CV.MeanTPR, e.CV.MeanAUC, e.CV.MeanComp)
	}
	p("\n")

	if rep.Tree != nil {
		p("## Induced decision tree (%d nodes, depth %d)\n\n```\n%s\n```\n\n",
			rep.Tree.Size(), rep.Tree.Depth(), rep.Tree.String())
		p("### Variable importance\n\n```\n%s```\n\n", rep.Tree.FormatImportance())
	}
	if rep.Predicate != nil {
		p("## Detector predicate (%d clauses, %d atoms)\n\n```\n%s```\n",
			len(rep.Predicate.Clauses), rep.Predicate.Complexity(), rep.Predicate.String())
	}
	return nil
}
