package core

import (
	"context"
	"fmt"
	"testing"

	"edem/internal/propane"
	"edem/internal/targets/flightgear"
)

// TestGoldenRunsPass verifies that every target passes its own failure
// specification on fault-free runs — the precondition for the entire
// methodology (a golden run that fails would poison every label).
func TestGoldenRunsPass(t *testing.T) {
	opts := DefaultOptions()
	seen := map[string]bool{}
	for _, id := range AllDatasetIDs() {
		target, spec, err := SpecFor(id, opts)
		if err != nil {
			t.Fatalf("SpecFor(%s): %v", id, err)
		}
		if seen[target.Name()] {
			continue
		}
		seen[target.Name()] = true
		for _, tc := range target.TestCases(spec.TestCases, spec.Seed) {
			out, err := target.Run(tc, propane.NopProbe{})
			if err != nil {
				t.Fatalf("%s golden run tc=%d: %v", target.Name(), tc.ID, err)
			}
			if target.Failed(tc, out, out) {
				t.Errorf("%s golden run tc=%d violates its own failure spec: %+v", target.Name(), tc.ID, out)
			}
			if fg, ok := out.(flightgear.Outcome); ok {
				t.Logf("FG tc=%d: dist=%.1f clear=%v maxQ=%.2f", tc.ID, fg.TakeoffDistance, fg.ClearedObstacle, fg.MaxPitchRateBeforeClear)
			}
		}
	}
}

// TestCampaignClassBalance is a diagnostic: each dataset must contain
// both classes with failures in the minority (the imbalance the
// methodology is designed around).
func TestCampaignClassBalance(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns are expensive; skipped in -short mode")
	}
	opts := DefaultOptions()
	opts.TestCases = 3
	opts.BitStride = 4
	for _, id := range AllDatasetIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			camp, err := Campaign(context.Background(), id, opts)
			if err != nil {
				t.Fatalf("campaign: %v", err)
			}
			usable, failures := camp.Usable(), camp.Failures()
			frac := float64(failures) / float64(usable)
			t.Log(fmt.Sprintf("usable=%d failures=%d frac=%.3f records=%d", usable, failures, frac, len(camp.Records)))
			if usable == 0 {
				t.Fatal("campaign produced no usable records")
			}
			if failures == 0 {
				t.Error("campaign produced no failures: no positive class to learn")
			}
			if failures == usable {
				t.Error("every injected run failed: no negative class to learn")
			}
		})
	}
}
