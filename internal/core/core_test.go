package core

import (
	"context"
	"strings"
	"testing"

	"edem/internal/mining/eval"
	"edem/internal/predicate"
	"edem/internal/propane"
)

func TestAllDatasetIDs(t *testing.T) {
	ids := AllDatasetIDs()
	if len(ids) != 18 {
		t.Fatalf("ids = %d, want 18 (Table II)", len(ids))
	}
	if ids[0] != "7Z-A1" || ids[17] != "MG-B3" {
		t.Fatalf("ordering: %v", ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestSpecForAllIDs(t *testing.T) {
	opts := DefaultOptions()
	for _, id := range AllDatasetIDs() {
		target, spec, err := SpecFor(id, opts)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: invalid spec: %v", id, err)
		}
		if _, ok := propane.Module(target, spec.Module); !ok {
			t.Fatalf("%s: module %q not in target %q", id, spec.Module, target.Name())
		}
		// Location triples must follow Table II.
		switch id[4] {
		case '1':
			if spec.InjectAt != propane.Entry || spec.SampleAt != propane.Entry {
				t.Errorf("%s: locations %v/%v", id, spec.InjectAt, spec.SampleAt)
			}
		case '2':
			if spec.InjectAt != propane.Entry || spec.SampleAt != propane.Exit {
				t.Errorf("%s: locations %v/%v", id, spec.InjectAt, spec.SampleAt)
			}
		case '3':
			if spec.InjectAt != propane.Exit || spec.SampleAt != propane.Exit {
				t.Errorf("%s: locations %v/%v", id, spec.InjectAt, spec.SampleAt)
			}
		}
	}
}

func TestSpecForErrors(t *testing.T) {
	opts := DefaultOptions()
	for _, id := range []string{"", "XX-A1", "7Z-Z1", "7Z-A9", "7ZA1", "7Z_A1"} {
		if _, _, err := SpecFor(id, opts); err == nil {
			t.Errorf("SpecFor(%q) should fail", id)
		}
	}
}

func TestInfo(t *testing.T) {
	info, err := Info("FG-B2", DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if info.Target != "FlightGear" || info.Module != "Mass" ||
		info.InjectAt != propane.Entry || info.SampleAt != propane.Exit {
		t.Fatalf("info = %+v", info)
	}
}

func TestSortedDatasetIDs(t *testing.T) {
	got := SortedDatasetIDs([]string{"MG-B3", "7Z-A1", "FG-A2"})
	if got[0] != "7Z-A1" || got[1] != "FG-A2" || got[2] != "MG-B3" {
		t.Fatalf("sorted = %v", got)
	}
}

func TestRefineGridShapes(t *testing.T) {
	reduced := RefineGrid(false)
	full := RefineGrid(true)
	if len(full) <= len(reduced) {
		t.Fatalf("full grid (%d) should exceed reduced (%d)", len(full), len(reduced))
	}
	// The paper's full grid: 10 undersampling levels in [5,100], 15
	// oversampling levels in [100,1500], SMOTE k in [1,15].
	var u, o, s int
	for _, cfg := range full {
		switch cfg.Kind {
		case Undersampling:
			u++
			if cfg.Percent < 5 || cfg.Percent > 100 {
				t.Errorf("undersampling level %v out of [5,100]", cfg.Percent)
			}
		case Oversampling:
			o++
			if cfg.Percent < 100 || cfg.Percent > 1500 {
				t.Errorf("oversampling level %v out of [100,1500]", cfg.Percent)
			}
		case Smote:
			s++
			if cfg.K < 1 || cfg.K > 15 {
				t.Errorf("SMOTE k %d out of [1,15]", cfg.K)
			}
		}
	}
	if u != 10 || o != 15 || s == 0 {
		t.Errorf("full grid composition: %d U, %d O, %d SMOTE", u, o, s)
	}
}

func TestSamplingConfigLabels(t *testing.T) {
	if (SamplingConfig{Kind: Undersampling, Percent: 85}).Label() != "85(U)" {
		t.Error("undersampling label")
	}
	if (SamplingConfig{Kind: Oversampling, Percent: 300}).Label() != "300(O)" {
		t.Error("oversampling label")
	}
	if (SamplingConfig{Kind: Smote, Percent: 500, K: 7}).Label() != "500(O)" {
		t.Error("smote label")
	}
	if (SamplingConfig{Kind: Smote, K: 7}).KLabel() != "7" {
		t.Error("smote k label")
	}
	if (SamplingConfig{Kind: Undersampling}).KLabel() != "-" {
		t.Error("undersampling k label")
	}
	if (SamplingConfig{Kind: NoSampling}).Label() != "-" {
		t.Error("baseline label")
	}
}

func TestFormatTable(t *testing.T) {
	rows := []Row{{Dataset: "7Z-A1", FPR: 2e-5, TPR: 0.9979, AUC: 0.9989, Comp: 19, Var: 3e-8}}
	s := FormatTable("Table III", rows)
	if !strings.Contains(s, "7Z-A1") || !strings.Contains(s, "Dataset") {
		t.Errorf("format:\n%s", s)
	}
	rows[0].S, rows[0].N = "85(U)", "-"
	s4 := FormatTable("Table IV", rows)
	if !strings.Contains(s4, "85(U)") {
		t.Errorf("refined format:\n%s", s4)
	}
}

func TestPaperTablesComplete(t *testing.T) {
	for _, id := range AllDatasetIDs() {
		if _, ok := PaperTable3[id]; !ok {
			t.Errorf("PaperTable3 missing %s", id)
		}
		if _, ok := PaperTable4[id]; !ok {
			t.Errorf("PaperTable4 missing %s", id)
		}
	}
}

// TestPipelineEndToEnd runs the full methodology (Steps 1-4) on a small
// campaign and validates the deployed predicate (§VII-D).
func TestPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped in -short mode")
	}
	opts := DefaultOptions()
	opts.TestCases = 4
	opts.BitStride = 4
	opts.Folds = 5

	grid := []SamplingConfig{
		{Kind: Undersampling, Percent: 50},
		{Kind: Oversampling, Percent: 300},
		{Kind: Smote, Percent: 300, K: 3},
	}
	rep, err := RunMethodology(context.Background(), "MG-B1", grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Baseline == nil || rep.Refined == nil || rep.Tree == nil || rep.Predicate == nil {
		t.Fatal("incomplete report")
	}
	if rep.Refined.BestCV.MeanAUC+1e-9 < rep.Baseline.MeanAUC {
		t.Errorf("refinement regressed AUC: %v < %v", rep.Refined.BestCV.MeanAUC, rep.Baseline.MeanAUC)
	}
	if len(rep.Refined.Evaluated) != len(grid)+1 {
		t.Errorf("evaluated %d configs, want %d", len(rep.Refined.Evaluated), len(grid)+1)
	}

	// Re-validation on a fresh workload: rates must be commensurate
	// with cross-validation (paper §VII-D).
	val, err := ValidateDetector(context.Background(), rep.ID, rep.Predicate, opts)
	if err != nil {
		t.Fatal(err)
	}
	if val.Runs == 0 {
		t.Fatal("no validation runs")
	}
	if tpr := val.Counts.TPR(); tpr < rep.Refined.BestCV.MeanTPR-0.25 {
		t.Errorf("deployed TPR %.3f far below CV %.3f", tpr, rep.Refined.BestCV.MeanTPR)
	}
	if fpr := val.Counts.FPR(); fpr > 0.08 {
		t.Errorf("deployed FPR %.3f too high", fpr)
	}
}

// TestRefineMatchesBaselineOnNoSampling checks that Refine's internal
// evaluation of the untouched configuration reproduces Baseline exactly
// (same folds, same learner).
func TestRefineMatchesBaselineOnNoSampling(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	opts := DefaultOptions()
	opts.TestCases = 3
	opts.BitStride = 8
	opts.Folds = 5
	d, _, err := BuildDataset(context.Background(), "MG-A1", opts)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Baseline(context.Background(), d, opts)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Refine(context.Background(), d, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	noSampling := ref.Evaluated[0]
	if noSampling.Config.Kind != NoSampling {
		t.Fatal("first evaluated config should be the baseline")
	}
	if noSampling.CV.MeanAUC != base.MeanAUC || noSampling.CV.MeanTPR != base.MeanTPR {
		t.Errorf("refine baseline AUC %v != baseline %v", noSampling.CV.MeanAUC, base.MeanAUC)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("18 campaigns; skipped in -short mode")
	}
	opts := DefaultOptions()
	opts.TestCases = 2
	opts.BitStride = 16
	rows, err := Table2(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 {
		t.Fatalf("rows = %d", len(rows))
	}
	s := FormatTable2Rows(rows)
	for _, want := range []string{"7Z-A1", "FlightGear", "GAnalysis", "Exit"} {
		if !strings.Contains(s, want) {
			t.Errorf("table II missing %q", want)
		}
	}
	for _, r := range rows {
		if r.Instances == 0 {
			t.Errorf("%s: empty campaign", r.ID)
		}
	}
}

func TestValidationCounts(t *testing.T) {
	// eval.BinaryCounts arithmetic on the validation path.
	var v ValidationResult
	v.Counts = eval.BinaryCounts{TP: 9, FN: 1, FP: 0, TN: 90}
	if v.Counts.TPR() != 0.9 || v.Counts.FPR() != 0 {
		t.Fatal("counts arithmetic")
	}
}

// TestMeasureLatency traces every failing run of a small campaign with
// a learnt detector installed and checks the latency accounting.
func TestMeasureLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("tracing campaign; skipped in -short mode")
	}
	opts := DefaultOptions()
	opts.TestCases = 3
	opts.BitStride = 8
	ctx := context.Background()
	d, _, err := BuildDataset(ctx, "MG-B1", opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := DefaultLearner().FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := predicate.FromTree(tr, eval.PositiveClass, "MG-B1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureLatency(ctx, "MG-B1", pred, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatal("no failures traced")
	}
	if res.Detected+res.Missed != res.Failures {
		t.Fatalf("accounting: %d + %d != %d", res.Detected, res.Missed, res.Failures)
	}
	if res.Detected == 0 {
		t.Fatal("detector found nothing")
	}
	if res.MeanLatency < 0 || float64(res.MaxLatency) < res.MeanLatency {
		t.Fatalf("latency stats inconsistent: mean %v max %d", res.MeanLatency, res.MaxLatency)
	}
	if res.ImmediateRate < 0 || res.ImmediateRate > 1 {
		t.Fatalf("immediate rate = %v", res.ImmediateRate)
	}
	t.Logf("failures=%d detected=%d missed=%d meanLat=%.2f maxLat=%d immediate=%.2f",
		res.Failures, res.Detected, res.Missed, res.MeanLatency, res.MaxLatency, res.ImmediateRate)
}

// TestRangeCheckEAComparison measures the paper's headline contrast:
// the learnt predicate must dominate the golden-range executable
// assertion on at least one of completeness and accuracy without being
// worse on the other (AUC strictly higher).
func TestRangeCheckEAComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns; skipped in -short mode")
	}
	opts := DefaultOptions()
	opts.TestCases = 4
	opts.BitStride = 8
	for _, id := range []string{"MG-B1", "FG-B1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			cmp, err := CompareWithRangeCheckEA(context.Background(), id, 0.05, opts)
			if err != nil {
				t.Fatal(err)
			}
			if cmp.Runs == 0 {
				t.Fatal("no runs")
			}
			t.Logf("range-check EA: TPR=%.4f FPR=%.2e AUC=%.4f", cmp.RangeCheck.TPR(), cmp.RangeCheck.FPR(), cmp.RangeCheck.AUC())
			t.Logf("learnt        : TPR=%.4f FPR=%.2e AUC=%.4f", cmp.Learned.TPR(), cmp.Learned.FPR(), cmp.Learned.AUC())
			if cmp.Learned.AUC() <= cmp.RangeCheck.AUC() {
				t.Errorf("learnt predicate AUC %.4f does not beat range-check EA %.4f",
					cmp.Learned.AUC(), cmp.RangeCheck.AUC())
			}
		})
	}
}

// TestProfileGolden sanity-checks the golden profiling substrate.
func TestProfileGolden(t *testing.T) {
	opts := DefaultOptions()
	opts.TestCases = 2
	target, spec, err := SpecFor("MG-B1", opts)
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := propane.ProfileGolden(target, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) == 0 {
		t.Fatal("no profiles")
	}
	for _, p := range profiles {
		if p.Samples == 0 {
			t.Errorf("%s never observed", p.Var)
		}
		if p.Min > p.Max {
			t.Errorf("%s range inverted: [%v, %v]", p.Var, p.Min, p.Max)
		}
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline; skipped in -short mode")
	}
	opts := DefaultOptions()
	opts.TestCases = 3
	opts.BitStride = 8
	opts.Folds = 5
	rep, err := RunMethodology(context.Background(), "MG-B1",
		[]SamplingConfig{{Kind: Oversampling, Percent: 300}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteReport(&sb, rep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Detector generation report — MG-B1",
		"## Step 3", "## Step 4", "Detector predicate", "Grid detail", "300(O)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if err := WriteReport(&sb, nil); err == nil {
		t.Error("nil report should fail")
	}
}
