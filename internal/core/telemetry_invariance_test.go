package core

import (
	"context"
	"reflect"
	"testing"

	"edem/internal/telemetry"
)

// TestTelemetryCountersWorkerInvariant is the telemetry analogue of the
// pipeline's determinism guarantee: the counters accumulated across
// concurrent workers must equal the serial counts for any -workers
// value. Durations and allocation deltas legitimately vary with
// scheduling, so the property covers counters, histogram counts and
// phase counts — everything that counts work rather than measuring it.
func TestTelemetryCountersWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign; skipped in -short mode")
	}
	type counts struct {
		Counters  map[string]int64
		HistCount map[string]int64
		PhaseN    map[string]int64
	}
	runAt := func(workers int) counts {
		opts := DefaultOptions()
		opts.TestCases = 2
		opts.BitStride = 16
		opts.Workers = workers
		// A context-local registry isolates this run from the process
		// default and from the other worker counts.
		reg := telemetry.New()
		ctx := telemetry.WithRegistry(context.Background(), reg)
		d, _, err := BuildDataset(ctx, "MG-B1", opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if _, err := Baseline(ctx, d, opts); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// Two undersampling points plus an oversampling and a SMOTE point,
		// so the store/view counters (refine.store_builds,
		// refine.view_hits, refine.merge_synthetic_rows) all accumulate.
		grid := RefineGrid(false)
		sub := append(grid[:2:2], grid[4:6]...)
		if _, err := Refine(ctx, d, sub, opts); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		snap := reg.Snapshot()
		c := counts{
			Counters:  snap.Counters,
			HistCount: map[string]int64{},
			PhaseN:    map[string]int64{},
		}
		for name, h := range snap.Hists {
			c.HistCount[name] = h.Count
		}
		for path, p := range snap.Phases {
			c.PhaseN[path] = p.Count
		}
		return c
	}

	serial := runAt(1)
	if len(serial.Counters) == 0 {
		t.Fatal("serial run recorded no counters")
	}
	for _, name := range []string{"refine.store_builds", "refine.view_hits", "refine.merge_synthetic_rows"} {
		if serial.Counters[name] <= 0 {
			t.Errorf("counter %s not accumulated: %d", name, serial.Counters[name])
		}
	}
	for _, workers := range []int{2, 8} {
		par := runAt(workers)
		if !reflect.DeepEqual(serial.Counters, par.Counters) {
			t.Errorf("counters diverge at workers=%d:\nserial: %v\npar:    %v",
				workers, serial.Counters, par.Counters)
		}
		if !reflect.DeepEqual(serial.HistCount, par.HistCount) {
			t.Errorf("histogram counts diverge at workers=%d:\nserial: %v\npar:    %v",
				workers, serial.HistCount, par.HistCount)
		}
		if !reflect.DeepEqual(serial.PhaseN, par.PhaseN) {
			t.Errorf("phase counts diverge at workers=%d:\nserial: %v\npar:    %v",
				workers, serial.PhaseN, par.PhaseN)
		}
	}
}
