package core

import (
	"context"
	"reflect"
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining/eval"
	"edem/internal/mining/sampling"
	"edem/internal/parallel"
	"edem/internal/stats"
)

// refineReference is the pre-columnar-store refinement loop: per-fold
// deep-copied training subsets, dataset-returning sampling transforms,
// FitTree on materialised instances. It is kept here as the oracle the
// view-based Refine must match bit for bit — same cell RNG derivation,
// same fold construction, same serial aggregation.
func refineReference(d *dataset.Dataset, grid []SamplingConfig, opts Options) (*RefineResult, error) {
	full := append([]SamplingConfig{{Kind: NoSampling}}, grid...)
	rng := stats.NewRNG(opts.Seed)
	folds, err := dataset.StratifiedKFold(d, opts.folds(), rng)
	if err != nil {
		return nil, err
	}
	maxK := 0
	for _, cfg := range full {
		if cfg.Kind == Smote && cfg.K > maxK {
			maxK = cfg.K
		}
	}

	nCfg := len(full)
	cells := make([]refineCell, nCfg*len(folds))
	for fi, fold := range folds {
		train := d.Subset(fold.Train)
		var ni *sampling.NeighborIndex
		if maxK > 0 {
			if ni, err = sampling.BuildNeighborIndex(train, eval.PositiveClass, maxK); err != nil {
				return nil, err
			}
		}
		for ci, cfg := range full {
			cellRNG := stats.NewRNG(opts.Seed ^ (uint64(fi+1) << 20) ^ uint64(ci+1))
			td := train
			switch cfg.Kind {
			case Undersampling:
				td, err = sampling.Undersample(train, 0, cfg.Percent, cellRNG)
			case Oversampling:
				if maxK > 0 {
					td, err = ni.Oversample(cfg.Percent, cellRNG)
				} else {
					td, err = sampling.Oversample(train, eval.PositiveClass, cfg.Percent, cellRNG)
				}
			case Smote:
				td, err = ni.SMOTE(cfg.Percent, cfg.K, cellRNG)
			}
			if err != nil {
				return nil, err
			}
			model, err := DefaultLearner().FitTree(td)
			if err != nil {
				return nil, err
			}
			cm := eval.NewConfusionMatrix(d.ClassValues)
			for _, ti := range fold.Test {
				in := &d.Instances[ti]
				if err := cm.Record(in.Class, model.Classify(in.Values), in.Weight); err != nil {
					return nil, err
				}
			}
			cells[fi*nCfg+ci] = refineCell{counts: cm.Binary(eval.PositiveClass), size: model.Size()}
		}
	}

	res := &RefineResult{}
	for ci, cfg := range full {
		cv := &eval.CVResult{}
		var aucW, tprW, fprW, compW stats.Welford
		for fi := range folds {
			cell := &cells[fi*nCfg+ci]
			aucW.Add(cell.counts.AUC())
			tprW.Add(cell.counts.TPR())
			fprW.Add(cell.counts.FPR())
			compW.Add(float64(cell.size))
		}
		cv.MeanAUC = aucW.Mean()
		cv.MeanTPR = tprW.Mean()
		cv.MeanFPR = fprW.Mean()
		cv.MeanComp = compW.Mean()
		cv.VarAUC = aucW.Variance()
		res.Evaluated = append(res.Evaluated, struct {
			Config SamplingConfig
			CV     *eval.CVResult
		}{cfg, cv})
		if res.BestCV == nil ||
			cv.MeanAUC > res.BestCV.MeanAUC ||
			(cv.MeanAUC == res.BestCV.MeanAUC && cv.MeanComp < res.BestCV.MeanComp) {
			res.Best = cfg
			res.BestCV = cv
		}
	}
	return res, nil
}

// TestRefineMatchesInstancePath pins the tentpole invariant: the
// store/view-based grid produces byte-identical results to the
// instance-based path, at every worker count. Every grid shape is
// exercised (no-sampling, undersample, oversample, SMOTE at two
// percent/K points, including percent<100 planning).
func TestRefineMatchesInstancePath(t *testing.T) {
	parallel.SetBudget(8)
	defer parallel.SetBudget(0)

	grid := []SamplingConfig{
		{Kind: Undersampling, Percent: 35},
		{Kind: Undersampling, Percent: 85},
		{Kind: Oversampling, Percent: 40},
		{Kind: Oversampling, Percent: 300},
		{Kind: Smote, Percent: 60, K: 3},
		{Kind: Smote, Percent: 400, K: 5},
	}
	for _, seed := range []uint64{3, 17} {
		d := refineDataset(250, seed)
		opts := DefaultOptions()
		opts.Seed = seed
		opts.Folds = 5

		want, err := refineReference(d, grid, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 8} {
			opts.Workers = workers
			got, err := Refine(context.Background(), d, grid, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("seed %d workers %d: view-based Refine diverges from instance path", seed, workers)
			}
		}
	}
}

// TestRefineMatchesInstancePathMissing covers the fallback route: a
// dataset with missing values disables the store's merge orders, so
// every cell materialises its view and lands in the general builder —
// still byte-identical to the instance path.
func TestRefineMatchesInstancePathMissing(t *testing.T) {
	grid := []SamplingConfig{
		{Kind: Undersampling, Percent: 50},
		{Kind: Oversampling, Percent: 200},
		{Kind: Smote, Percent: 200, K: 3},
	}
	d := refineDataset(150, 29)
	for i := 0; i < 150; i += 11 {
		d.Instances[i].Values[1] = dataset.Missing
	}
	d.InvalidateMissing()
	opts := DefaultOptions()
	opts.Seed = 29
	opts.Folds = 5

	want, err := refineReference(d, grid, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		opts.Workers = workers
		got, err := Refine(context.Background(), d, grid, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers %d: missing-value fallback diverges from instance path", workers)
		}
	}
}
