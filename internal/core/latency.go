package core

import (
	"context"
	"fmt"

	"edem/internal/predicate"
	"edem/internal/propane"
	"edem/internal/stats"
)

// LatencyResult summarises detection latency for a deployed detector:
// for every failure-inducing injected run, how many activations of the
// detector's location pass between the injection and the first alarm.
// Low latency contains error propagation (paper §II: "EAs exhibiting
// high coverage and low latency serve to reduce error propagation").
type LatencyResult struct {
	ID string
	// Failures is the number of failure-inducing runs traced.
	Failures int
	// Detected counts failures the detector flagged at some activation.
	Detected int
	// Missed counts failures never flagged along the whole trace.
	Missed int
	// MeanLatency is the mean activation distance from injection to the
	// first alarm, over detected failures (0 = flagged at the very
	// activation the fault appeared).
	MeanLatency float64
	// MaxLatency is the worst observed detection distance.
	MaxLatency int
	// ImmediateRate is the fraction of detected failures flagged with
	// zero latency.
	ImmediateRate float64
}

// MeasureLatency traces every failure-inducing run of a campaign with
// the predicate installed at the sampling location, recording how long
// each error propagates before the detector first flags module state.
// The campaign itself provides the set of failing (test case, variable,
// bit, time) coordinates; each is then re-executed in trace mode.
func MeasureLatency(ctx context.Context, id string, pred *predicate.Predicate, opts Options) (*LatencyResult, error) {
	target, spec, err := SpecFor(id, opts)
	if err != nil {
		return nil, err
	}
	camp, err := propane.Run(ctx, target, spec)
	if err != nil {
		return nil, fmt.Errorf("core: latency campaign %s: %w", id, err)
	}

	tcs := target.TestCases(spec.TestCases, spec.Seed)
	goldens := make(map[int]any, len(tcs))
	for _, tc := range tcs {
		out, err := target.Run(tc, propane.NopProbe{})
		if err != nil {
			return nil, fmt.Errorf("core: golden run %d: %w", tc.ID, err)
		}
		goldens[tc.ID] = out
	}
	tcByID := make(map[int]propane.TestCase, len(tcs))
	for _, tc := range tcs {
		tcByID[tc.ID] = tc
	}

	res := &LatencyResult{ID: id}
	var latW stats.Welford
	immediate := 0
	for i := range camp.Records {
		r := &camp.Records[i]
		if !r.Failure || !r.Injected {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: latency cancelled: %w", err)
		}
		res.Failures++
		tr, err := propane.RunTrace(target, tcByID[r.TestCase], goldens[r.TestCase], propane.TraceSpec{
			Module:        spec.Module,
			InjectAt:      spec.InjectAt,
			TraceAt:       spec.SampleAt,
			Var:           r.Var,
			Bit:           r.Bit,
			InjectionTime: r.InjectionTime,
		})
		if err != nil {
			return nil, fmt.Errorf("core: trace %s bit %d: %w", r.Var, r.Bit, err)
		}
		detectedAt := -1
		for ei, e := range tr.Entries {
			if pred.Eval(e.State) {
				detectedAt = ei
				break
			}
		}
		if detectedAt < 0 {
			res.Missed++
			continue
		}
		res.Detected++
		latW.Add(float64(detectedAt))
		if detectedAt == 0 {
			immediate++
		}
		if detectedAt > res.MaxLatency {
			res.MaxLatency = detectedAt
		}
	}
	res.MeanLatency = latW.Mean()
	if res.Detected > 0 {
		res.ImmediateRate = float64(immediate) / float64(res.Detected)
	}
	return res, nil
}
