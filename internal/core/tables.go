package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"edem/internal/mining/eval"
	"edem/internal/parallel"
)

// Row is one line of Table III or Table IV.
type Row struct {
	Dataset string
	S       string // sampling level, Table IV only
	N       string // SMOTE neighbour count, Table IV only
	FPR     float64
	TPR     float64
	AUC     float64
	Comp    float64
	Var     float64
}

// rowFromCV converts a cross-validation aggregate into a table row.
func rowFromCV(id string, cv *eval.CVResult) Row {
	return Row{
		Dataset: id,
		FPR:     cv.MeanFPR,
		TPR:     cv.MeanTPR,
		AUC:     cv.MeanAUC,
		Comp:    cv.MeanComp,
		Var:     cv.VarAUC,
	}
}

// Table3Row runs Steps 1-3 for one dataset and returns its Table III
// row. Per-phase cost attribution comes from the telemetry layer (the
// "campaign", "preprocess" and "baseline" phases), not from the row
// builder.
func Table3Row(ctx context.Context, id string, opts Options) (Row, error) {
	d, _, err := BuildDataset(ctx, id, opts)
	if err != nil {
		return Row{}, err
	}
	cv, err := Baseline(ctx, d, opts)
	if err != nil {
		return Row{}, err
	}
	return rowFromCV(id, cv), nil
}

// Table4Row runs Steps 1-4 for one dataset and returns its Table IV row.
func Table4Row(ctx context.Context, id string, grid []SamplingConfig, opts Options) (Row, error) {
	d, _, err := BuildDataset(ctx, id, opts)
	if err != nil {
		return Row{}, err
	}
	ref, err := Refine(ctx, d, grid, opts)
	if err != nil {
		return Row{}, err
	}
	row := rowFromCV(id, ref.BestCV)
	row.S = ref.Best.Label()
	row.N = ref.Best.KLabel()
	return row, nil
}

// Table3Rows computes the Table III rows of ids concurrently on the
// shared scheduler, preserving ids order in the result. progress, if
// non-nil, is called once per finished dataset (serialized, but not in
// any guaranteed order — datasets finish as they complete).
func Table3Rows(ctx context.Context, ids []string, opts Options, progress func(id string, row Row)) ([]Row, error) {
	return tableRows(ctx, ids, opts, progress, func(id string) (Row, error) {
		return Table3Row(ctx, id, opts)
	})
}

// Table4Rows computes the Table IV rows of ids concurrently on the
// shared scheduler, preserving ids order in the result.
func Table4Rows(ctx context.Context, ids []string, grid []SamplingConfig, opts Options, progress func(id string, row Row)) ([]Row, error) {
	return tableRows(ctx, ids, opts, progress, func(id string) (Row, error) {
		return Table4Row(ctx, id, grid, opts)
	})
}

func tableRows(ctx context.Context, ids []string, opts Options, progress func(string, Row), one func(string) (Row, error)) ([]Row, error) {
	rows := make([]Row, len(ids))
	var mu sync.Mutex
	err := parallel.ForEach(ctx, len(ids), opts.Workers, func(i int) error {
		row, err := one(ids[i])
		if err != nil {
			return err
		}
		rows[i] = row
		if progress != nil {
			mu.Lock()
			progress(ids[i], row)
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable renders rows in the layout of Tables III/IV. When any row
// carries an S label the refinement columns are included.
func FormatTable(title string, rows []Row) string {
	refined := false
	for _, r := range rows {
		if r.S != "" {
			refined = true
			break
		}
	}
	var sb strings.Builder
	sb.WriteString(title)
	sb.WriteByte('\n')
	if refined {
		fmt.Fprintf(&sb, "%-8s %-8s %-3s %-9s %-7s %-7s %-7s %-9s\n",
			"Dataset", "S", "N", "FPR", "TPR", "AUC", "Comp", "Var")
	} else {
		fmt.Fprintf(&sb, "%-8s %-9s %-7s %-7s %-7s %-9s\n",
			"Dataset", "FPR", "TPR", "AUC", "Comp", "Var")
	}
	for _, r := range rows {
		if refined {
			fmt.Fprintf(&sb, "%-8s %-8s %-3s %-9.1e %-7.4f %-7.4f %-7.1f %-9.1e\n",
				r.Dataset, r.S, r.N, r.FPR, r.TPR, r.AUC, r.Comp, r.Var)
		} else {
			fmt.Fprintf(&sb, "%-8s %-9.1e %-7.4f %-7.4f %-7.1f %-9.1e\n",
				r.Dataset, r.FPR, r.TPR, r.AUC, r.Comp, r.Var)
		}
	}
	return sb.String()
}

// FormatTable2 renders Table II (the dataset inventory) with measured
// campaign sizes appended.
type Table2Row struct {
	DatasetInfo
	Instances int
	Failures  int
}

// Table2 runs Step 1 for every dataset ID and returns the inventory.
// Campaigns run concurrently on the shared scheduler; rows keep
// Table II order.
func Table2(ctx context.Context, opts Options) ([]Table2Row, error) {
	ids := AllDatasetIDs()
	rows := make([]Table2Row, len(ids))
	err := parallel.ForEach(ctx, len(ids), opts.Workers, func(i int) error {
		info, err := Info(ids[i], opts)
		if err != nil {
			return err
		}
		camp, err := Campaign(ctx, ids[i], opts)
		if err != nil {
			return err
		}
		rows[i] = Table2Row{
			DatasetInfo: info,
			Instances:   camp.Usable(),
			Failures:    camp.Failures(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatTable2Rows renders the Table II inventory.
func FormatTable2Rows(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table II: summary of fault injection datasets\n")
	fmt.Fprintf(&sb, "%-8s %-11s %-10s %-9s %-8s %10s %10s\n",
		"Dataset", "Target", "Module", "Injection", "Sample", "Instances", "Failures")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %-11s %-10s %-9s %-8s %10d %10d\n",
			r.ID, r.Target, r.Module, r.InjectAt, r.SampleAt, r.Instances, r.Failures)
	}
	return sb.String()
}

// PaperTable3 holds the paper's published Table III values, used by
// EXPERIMENTS.md and the shape-check tests.
var PaperTable3 = map[string]Row{
	"7Z-A1": {Dataset: "7Z-A1", FPR: 2e-05, TPR: 0.9979, AUC: 0.9989, Comp: 19.0, Var: 3e-08},
	"7Z-A2": {Dataset: "7Z-A2", FPR: 0, TPR: 0.9979, AUC: 0.9989, Comp: 11.0, Var: 1e-08},
	"7Z-A3": {Dataset: "7Z-A3", FPR: 0, TPR: 0.9987, AUC: 0.9993, Comp: 11.0, Var: 1e-08},
	"7Z-B1": {Dataset: "7Z-B1", FPR: 1e-04, TPR: 0.9435, AUC: 0.9717, Comp: 58.1, Var: 3e-04},
	"7Z-B2": {Dataset: "7Z-B2", FPR: 0, TPR: 0.9691, AUC: 0.9845, Comp: 5.0, Var: 1e-09},
	"7Z-B3": {Dataset: "7Z-B3", FPR: 0, TPR: 0.9654, AUC: 0.9827, Comp: 9.0, Var: 9e-10},
	"FG-A1": {Dataset: "FG-A1", FPR: 2e-04, TPR: 0.9906, AUC: 0.9951, Comp: 100.3, Var: 7e-08},
	"FG-A2": {Dataset: "FG-A2", FPR: 3e-03, TPR: 0.9807, AUC: 0.9891, Comp: 136.4, Var: 3e-06},
	"FG-A3": {Dataset: "FG-A3", FPR: 6e-04, TPR: 0.9878, AUC: 0.9936, Comp: 75.9, Var: 3e-06},
	"FG-B1": {Dataset: "FG-B1", FPR: 1e-04, TPR: 0.7929, AUC: 0.8964, Comp: 61.1, Var: 1e-32},
	"FG-B2": {Dataset: "FG-B2", FPR: 1e-05, TPR: 0.9584, AUC: 0.9791, Comp: 172.3, Var: 1e-06},
	"FG-B3": {Dataset: "FG-B3", FPR: 1e-04, TPR: 0.8223, AUC: 0.9111, Comp: 62.8, Var: 6e-08},
	"MG-A1": {Dataset: "MG-A1", FPR: 1e-09, TPR: 0.9938, AUC: 0.9969, Comp: 7.0, Var: 1e-09},
	"MG-A2": {Dataset: "MG-A2", FPR: 3e-04, TPR: 0.9938, AUC: 0.9967, Comp: 7.2, Var: 7e-08},
	"MG-A3": {Dataset: "MG-A3", FPR: 0, TPR: 0.9989, AUC: 0.9995, Comp: 9.2, Var: 1e-32},
	"MG-B1": {Dataset: "MG-B1", FPR: 0, TPR: 0.9740, AUC: 0.9870, Comp: 7.0, Var: 1e-32},
	"MG-B2": {Dataset: "MG-B2", FPR: 0, TPR: 0.9740, AUC: 0.9870, Comp: 7.0, Var: 1e-32},
	"MG-B3": {Dataset: "MG-B3", FPR: 0, TPR: 0.9728, AUC: 0.9864, Comp: 3.2, Var: 1e-30},
}

// PaperTable4 holds the paper's published Table IV values.
var PaperTable4 = map[string]Row{
	"7Z-A1": {Dataset: "7Z-A1", S: "85(U)", N: "-", FPR: 2e-05, TPR: 0.9982, AUC: 0.9991, Comp: 19.0, Var: 2e-09},
	"7Z-A2": {Dataset: "7Z-A2", S: "300(O)", N: "4", FPR: 5e-05, TPR: 0.9983, AUC: 0.9991, Comp: 34.3, Var: 5e-08},
	"7Z-A3": {Dataset: "7Z-A3", S: "500(O)", N: "14", FPR: 0, TPR: 0.9991, AUC: 0.9996, Comp: 11.9, Var: 6e-32},
	"7Z-B1": {Dataset: "7Z-B1", S: "300(O)", N: "12", FPR: 1e-03, TPR: 0.9984, AUC: 0.9985, Comp: 67.4, Var: 6e-07},
	"7Z-B2": {Dataset: "7Z-B2", S: "900(O)", N: "6", FPR: 3e-04, TPR: 0.9876, AUC: 0.9937, Comp: 9.9, Var: 6e-05},
	"7Z-B3": {Dataset: "7Z-B3", S: "700(O)", N: "7", FPR: 7e-05, TPR: 0.9999, AUC: 0.9999, Comp: 13.5, Var: 3e-08},
	"FG-A1": {Dataset: "FG-A1", S: "500(O)", N: "12", FPR: 1e-03, TPR: 0.9966, AUC: 0.9977, Comp: 113.7, Var: 8e-08},
	"FG-A2": {Dataset: "FG-A2", S: "900(O)", N: "1", FPR: 4e-03, TPR: 0.9995, AUC: 0.9978, Comp: 174.5, Var: 1e-08},
	"FG-A3": {Dataset: "FG-A3", S: "500(O)", N: "11", FPR: 1e-03, TPR: 0.9963, AUC: 0.9974, Comp: 113.2, Var: 1e-07},
	"FG-B1": {Dataset: "FG-B1", S: "35(U)", N: "-", FPR: 1e-02, TPR: 0.7963, AUC: 0.8964, Comp: 68.3, Var: 2e-05},
	"FG-B2": {Dataset: "FG-B2", S: "500(O)", N: "-", FPR: 2e-04, TPR: 0.9628, AUC: 0.9813, Comp: 173.1, Var: 3e-10},
	"FG-B3": {Dataset: "FG-B3", S: "500(O)", N: "-", FPR: 2e-04, TPR: 0.8229, AUC: 0.9114, Comp: 61.2, Var: 3e-10},
	"MG-A1": {Dataset: "MG-A1", S: "100(O)", N: "2", FPR: 0, TPR: 0.9938, AUC: 0.9969, Comp: 7.0, Var: 1e-32},
	"MG-A2": {Dataset: "MG-A2", S: "40(U)", N: "-", FPR: 0, TPR: 0.9938, AUC: 0.9969, Comp: 7.0, Var: 1e-32},
	"MG-A3": {Dataset: "MG-A3", S: "5(U)", N: "-", FPR: 0, TPR: 0.9989, AUC: 0.9995, Comp: 9.0, Var: 1e-32},
	"MG-B1": {Dataset: "MG-B1", S: "75(U)", N: "-", FPR: 0, TPR: 0.9740, AUC: 0.9870, Comp: 7.0, Var: 1e-32},
	"MG-B2": {Dataset: "MG-B2", S: "5(U)", N: "-", FPR: 0, TPR: 0.9740, AUC: 0.9870, Comp: 7.0, Var: 4e-17},
	"MG-B3": {Dataset: "MG-B3", S: "5(U)", N: "-", FPR: 0, TPR: 0.9728, AUC: 0.9864, Comp: 3.3, Var: 1e-28},
}
