package fabric

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"crypto/tls"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"edem/internal/campaign"
	"edem/internal/propane"
	"edem/internal/serve"
	"edem/internal/telemetry"
)

// CoordinatorConfig tunes the coordinator. The zero value selects the
// defaults documented on each field.
type CoordinatorConfig struct {
	// LeaseTTL is how long a granted (or renewed) lease lives without a
	// heartbeat before its shard returns to pending (default 30s).
	LeaseTTL time.Duration
	// MaxLeases caps concurrent leases per shard — the work-stealing
	// fan-out limit (default 2: the original plus one thief).
	MaxLeases int
	// Linger is how long the coordinator keeps serving after the last
	// shard commits, so idle workers observe Complete on their next
	// poll instead of a connection error (default 1s).
	Linger time.Duration
	// DrainTimeout bounds the graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// Registry receives the fabric.* metrics; nil falls back to the
	// process default registry.
	Registry *telemetry.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// AuthToken, when non-empty, requires every /fabric/v1 request to
	// carry "Authorization: Bearer <token>". Tokens are compared in
	// constant time (over SHA-256 digests, so length leaks nothing).
	// /healthz stays open for load-balancer probes.
	AuthToken string
	// TLSCert/TLSKey are PEM file paths; when both are set Serve wraps
	// its listener in TLS, protecting the bearer token (and the shard
	// payloads) on cross-machine deployments.
	TLSCert string
	TLSKey  string
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 30 * time.Second
	}
	if c.MaxLeases <= 0 {
		c.MaxLeases = 2
	}
	if c.Linger <= 0 {
		c.Linger = time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// lease is one outstanding grant. Leases live only in coordinator
// memory: they are scheduling hints, not correctness state, so a
// coordinator restart forgets them and simply re-leases (completions
// for forgotten leases still merge first-wins).
type lease struct {
	id      string
	shard   int
	worker  string
	granted time.Time
	expiry  time.Time
	stolen  bool
}

// Coordinator owns one campaign's plan and journal and arbitrates
// shard leases over HTTP. Create with NewCoordinator, expose with
// Serve (or Handler for tests), stop by cancelling the context —
// or let it stop itself once the campaign completes.
type Coordinator struct {
	cfg    CoordinatorConfig
	ledger *campaign.Ledger

	mu     sync.Mutex
	leases map[string]*lease
	seq    int

	doneCh   chan struct{}
	doneOnce sync.Once

	mLeases      *telemetry.Counter
	mRenewals    *telemetry.Counter
	mExpiries    *telemetry.Counter
	mSteals      *telemetry.Counter
	mDupShards   *telemetry.Counter
	mDupCells    *telemetry.Counter
	mMerged      *telemetry.Counter
	mInvalid     *telemetry.Counter
	mReused      *telemetry.Counter
	gOutstanding *telemetry.Gauge
}

// NewCoordinator opens (or resumes) the journal for (target, spec)
// exactly as a local campaign.Run would — ccfg.Journal must be set;
// Resume and Incremental behave identically — and returns the
// coordinator ready to serve.
func NewCoordinator(target propane.Target, spec propane.Spec, ccfg campaign.Config, cfg CoordinatorConfig) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	ledger, err := campaign.OpenLedger(target, spec, ccfg)
	if err != nil {
		return nil, err
	}
	co := &Coordinator{
		cfg:    cfg,
		ledger: ledger,
		leases: make(map[string]*lease),
		doneCh: make(chan struct{}),
	}
	reg := cfg.Registry
	co.mLeases = reg.Counter("fabric.leases")
	co.mRenewals = reg.Counter("fabric.lease_renewals")
	co.mExpiries = reg.Counter("fabric.lease_expiries")
	co.mSteals = reg.Counter("fabric.steals")
	co.mDupShards = reg.Counter("fabric.duplicate_shards")
	co.mDupCells = reg.Counter("fabric.duplicate_cells")
	co.mMerged = reg.Counter("fabric.shards_merged")
	co.mInvalid = reg.Counter("fabric.shards_invalidated")
	co.mReused = reg.Counter("fabric.shards_reused")
	co.gOutstanding = reg.Gauge("fabric.leases_outstanding")
	co.mInvalid.Add(int64(ledger.Invalidated()))
	co.mReused.Add(int64(ledger.Reused()))
	if ledger.Complete() {
		co.doneOnce.Do(func() { close(co.doneCh) })
	}
	return co, nil
}

// Plan returns the coordinator's resolved plan.
func (co *Coordinator) Plan() *campaign.Plan { return co.ledger.Plan() }

// Done is closed once every shard has committed.
func (co *Coordinator) Done() <-chan struct{} { return co.doneCh }

// Status snapshots progress.
func (co *Coordinator) Status() PlanStatus {
	co.mu.Lock()
	co.sweepLocked(time.Now())
	nLeases := len(co.leases)
	co.mu.Unlock()
	p := co.ledger.Plan()
	done := co.ledger.DoneCount()
	st := PlanStatus{
		Plan:     p.Hash,
		Dataset:  p.Spec.Dataset,
		Target:   p.Target,
		Jobs:     len(p.Jobs),
		Shards:   p.Shards,
		Done:     done,
		Leases:   nLeases,
		Complete: done == p.Shards,
	}
	if f := p.Spec.Fault.Normalized(); !f.IsTransient() {
		st.Fault = f.String()
	}
	return st
}

// sweepLocked drops expired leases. Callers hold co.mu.
func (co *Coordinator) sweepLocked(now time.Time) {
	for id, l := range co.leases {
		if now.After(l.expiry) {
			delete(co.leases, id)
			co.mExpiries.Inc()
			co.gOutstanding.Add(-1)
			co.cfg.Logf("fabric: lease %s (shard %d, worker %s) expired", id, l.shard, l.worker)
		}
	}
}

// grant implements the lease state machine: lowest pending shard
// first; when nothing is pending, steal the slowest outstanding shard
// (oldest grant, fewest leases, under the MaxLeases cap).
func (co *Coordinator) grant(worker string) LeaseResponse {
	if co.ledger.Complete() {
		return LeaseResponse{Shard: -1, Complete: true}
	}
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked(now)

	held := make(map[int]int)  // shard → active lease count
	mine := make(map[int]bool) // shards this worker already holds
	oldest := make(map[int]time.Time)
	for _, l := range co.leases {
		held[l.shard]++
		if l.worker == worker {
			mine[l.shard] = true
		}
		if t, ok := oldest[l.shard]; !ok || l.granted.Before(t) {
			oldest[l.shard] = l.granted
		}
	}

	pending := co.ledger.Pending()
	shard, stolen := -1, false
	for _, s := range pending {
		if held[s] == 0 {
			shard = s
			break
		}
	}
	if shard < 0 {
		// Work-stealing: race the slowest straggler. Deterministic
		// preference order: fewest leases, oldest grant, lowest shard.
		best := -1
		for _, s := range pending {
			if mine[s] || held[s] >= co.cfg.MaxLeases {
				continue
			}
			if best < 0 ||
				held[s] < held[best] ||
				(held[s] == held[best] && oldest[s].Before(oldest[best])) ||
				(held[s] == held[best] && oldest[s].Equal(oldest[best]) && s < best) {
				best = s
			}
		}
		if best < 0 {
			return LeaseResponse{Shard: -1}
		}
		shard, stolen = best, true
		co.mSteals.Inc()
	}

	co.seq++
	l := &lease{
		id:      fmt.Sprintf("l%d-s%d", co.seq, shard),
		shard:   shard,
		worker:  worker,
		granted: now,
		expiry:  now.Add(co.cfg.LeaseTTL),
		stolen:  stolen,
	}
	co.leases[l.id] = l
	co.mLeases.Inc()
	co.gOutstanding.Add(1)
	if stolen {
		co.cfg.Logf("fabric: worker %s steals shard %d (lease %s)", worker, shard, l.id)
	}
	return LeaseResponse{Shard: shard, Lease: l.id, TTLMS: co.cfg.LeaseTTL.Milliseconds(), Stolen: stolen}
}

// renew heartbeats one lease.
func (co *Coordinator) renew(id string) RenewResponse {
	now := time.Now()
	co.mu.Lock()
	defer co.mu.Unlock()
	co.sweepLocked(now)
	l, ok := co.leases[id]
	if !ok {
		// Expired, superseded by a completed shard, or granted by a
		// previous coordinator incarnation. The worker decides whether
		// to keep going (first-wins makes either choice safe).
		return RenewResponse{OK: false}
	}
	l.expiry = now.Add(co.cfg.LeaseTTL)
	co.mRenewals.Inc()
	return RenewResponse{OK: true}
}

// complete merges one uploaded shard first-wins and dissolves every
// lease on it (whoever held them).
func (co *Coordinator) complete(worker string, line []byte) (CompleteResponse, error) {
	shard, accepted, err := co.ledger.Commit(line)
	if err != nil {
		return CompleteResponse{}, err
	}
	co.mu.Lock()
	for id, l := range co.leases {
		if l.shard == shard {
			delete(co.leases, id)
			co.gOutstanding.Add(-1)
		}
	}
	co.mu.Unlock()
	if accepted {
		co.mMerged.Inc()
	} else {
		co.mDupShards.Inc()
		lo, hi := co.ledger.Plan().ShardRange(shard)
		co.mDupCells.Add(int64(hi - lo))
		co.cfg.Logf("fabric: worker %s: shard %d is a duplicate (first completion won)", worker, shard)
	}
	complete := co.ledger.Complete()
	if complete {
		co.doneOnce.Do(func() { close(co.doneCh) })
	}
	return CompleteResponse{Shard: shard, Accepted: accepted, Duplicate: !accepted, Complete: complete}, nil
}

// Handler returns the coordinator's HTTP handler on a dedicated mux.
// With cfg.AuthToken set, every /fabric/v1 endpoint demands bearer
// auth; /healthz stays open.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/fabric/v1/plan", co.handlePlan)
	mux.HandleFunc("/fabric/v1/lease", co.handleLease)
	mux.HandleFunc("/fabric/v1/renew", co.handleRenew)
	mux.HandleFunc("/fabric/v1/complete", co.handleComplete)
	mux.HandleFunc("/healthz", co.handlePlan)
	if co.cfg.AuthToken == "" {
		return mux
	}
	return requireBearer(co.cfg.AuthToken, mux)
}

// requireBearer rejects /fabric/v1 requests whose Authorization header
// does not carry the expected bearer token. Both sides are hashed
// before comparing so the comparison is constant-time and independent
// of token length.
func requireBearer(token string, next http.Handler) http.Handler {
	want := sha256.Sum256([]byte(token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/fabric/v1/") {
			next.ServeHTTP(w, r)
			return
		}
		auth := r.Header.Get("Authorization")
		const prefix = "Bearer "
		ok := false
		if strings.HasPrefix(auth, prefix) {
			got := sha256.Sum256([]byte(auth[len(prefix):]))
			ok = subtle.ConstantTimeCompare(got[:], want[:]) == 1
		}
		if !ok {
			writeJSON(w, http.StatusUnauthorized, ErrorResponse{Error: "unauthorized"})
			return
		}
		next.ServeHTTP(w, r)
	})
}

// Serve runs the coordinator on ln until ctx is cancelled or the
// campaign completes (plus the linger window), then drains, closes the
// ledger and — when complete — seals the journal into canonical form.
// When cfg.TLSCert/TLSKey are set the listener is wrapped in TLS.
func (co *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	if co.cfg.TLSCert != "" || co.cfg.TLSKey != "" {
		cert, err := tls.LoadX509KeyPair(co.cfg.TLSCert, co.cfg.TLSKey)
		if err != nil {
			return fmt.Errorf("fabric: load TLS keypair: %w", err)
		}
		ln = tls.NewListener(ln, &tls.Config{Certificates: []tls.Certificate{cert}})
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go func() {
		select {
		case <-co.doneCh:
			co.cfg.Logf("fabric: campaign complete, lingering %v for worker goodbyes", co.cfg.Linger)
			t := time.NewTimer(co.cfg.Linger)
			defer t.Stop()
			select {
			case <-t.C:
			case <-sctx.Done():
			}
			cancel()
		case <-sctx.Done():
		}
	}()
	err := serve.RunHTTP(sctx, ln, co.Handler(), serve.HTTPConfig{
		DrainTimeout: co.cfg.DrainTimeout,
		Logf:         co.cfg.Logf,
	})
	if co.ledger.Complete() {
		if serr := co.ledger.Seal(); serr != nil && err == nil {
			err = serr
		}
	} else if cerr := co.ledger.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// ListenAndServe listens on addr and calls Serve, reporting the bound
// address through onListen (useful with ":0") before serving.
func (co *Coordinator) ListenAndServe(ctx context.Context, addr string, onListen func(addr net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return co.Serve(ctx, ln)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (co *Coordinator) handlePlan(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, co.Status())
}

func (co *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	if req.Worker == "" {
		req.Worker = r.RemoteAddr
	}
	writeJSON(w, http.StatusOK, co.grant(req.Worker))
}

func (co *Coordinator) handleRenew(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	var req RenewRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	resp := co.renew(req.Lease)
	if !resp.OK {
		// Hint Done when the shard is already committed so the worker
		// can abandon it. Lease IDs encode their shard (l<seq>-s<shard>);
		// parsing it back avoids a second lease table for dead IDs.
		if shard, ok := shardOfLease(req.Lease); ok {
			for _, s := range co.ledger.Pending() {
				if s == shard {
					writeJSON(w, http.StatusOK, resp)
					return
				}
			}
			resp.Done = true
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardOfLease recovers the shard index embedded in a lease ID.
func shardOfLease(id string) (int, bool) {
	var seq, shard int
	if _, err := fmt.Sscanf(id, "l%d-s%d", &seq, &shard); err != nil {
		return 0, false
	}
	return shard, true
}

func (co *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, ErrorResponse{Error: "POST only"})
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxFrameLineLen+1024))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	worker, _, line, err := DecodeCompletion(data)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	resp, err := co.complete(worker, line)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
