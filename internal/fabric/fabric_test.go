package fabric

import (
	"bytes"
	"context"
	"errors"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"edem/internal/bitflip"
	"edem/internal/campaign"
	"edem/internal/propane"
	"edem/internal/serve"
	"edem/internal/telemetry"
)

// testTarget is a tiny deterministic target (a module that doubles a
// float, guarded by a bool). Stateless, so one value can safely back
// any number of executors and workers.
type testTarget struct{}

func (testTarget) Name() string { return "FabricFake" }

func (testTarget) Modules() []propane.ModuleInfo {
	return []propane.ModuleInfo{{
		Name: "M",
		Vars: []propane.VarDecl{
			{Name: "x", Kind: bitflip.Float64},
			{Name: "ok", Kind: bitflip.Bool},
		},
	}}
}

func (testTarget) TestCases(n int, seed uint64) []propane.TestCase {
	tcs := make([]propane.TestCase, n)
	for i := range tcs {
		tcs[i] = propane.TestCase{ID: i, Seed: seed + uint64(i)}
	}
	return tcs
}

func (testTarget) Run(tc propane.TestCase, probe propane.Probe) (any, error) {
	x := float64(tc.ID) + 1
	ok := true
	vars := []propane.VarRef{
		propane.Float64Ref("x", &x),
		propane.BoolRef("ok", &ok),
	}
	probe.Visit("M", propane.Entry, vars)
	x *= 2
	probe.Visit("M", propane.Exit, vars)
	if !ok {
		panic("testTarget: guard corrupted")
	}
	return x, nil
}

func (testTarget) Failed(_ propane.TestCase, golden, observed any) bool {
	g, o := golden.(float64), observed.(float64)
	return g != o && !(math.IsNaN(g) && math.IsNaN(o))
}

func testSpec(tcs int) propane.Spec {
	return propane.Spec{
		Dataset:        "FAB-A1",
		Module:         "M",
		InjectAt:       propane.Entry,
		SampleAt:       propane.Exit,
		InjectionTimes: []int{1},
		TestCases:      tcs,
		Seed:           7,
		BitStride:      1,
	}
}

func TestCompletionFrameRoundTrip(t *testing.T) {
	line := []byte(`{"plan":"abc","shard":3}` + "\n")
	frame, err := EncodeCompletion("worker-1", "l7-s3", line)
	if err != nil {
		t.Fatal(err)
	}
	worker, lease, got, err := DecodeCompletion(frame)
	if err != nil {
		t.Fatal(err)
	}
	if worker != "worker-1" || lease != "l7-s3" || !bytes.Equal(got, line) {
		t.Errorf("round trip: worker=%q lease=%q line=%q", worker, lease, got)
	}

	bad := map[string][]byte{
		"empty":          {},
		"truncated":      frame[:len(frame)-3],
		"trailing bytes": append(append([]byte{}, frame...), 0xff),
		"length lies":    append([]byte{byte(len(frame)), 0, 0, 0}, frame[4:]...),
	}
	corrupt := append([]byte{}, frame...)
	corrupt[4] ^= 0xff // magic
	bad["bad magic"] = corrupt
	vers := append([]byte{}, frame...)
	vers[8] = 99
	bad["bad version"] = vers
	for name, data := range bad {
		if _, _, _, err := DecodeCompletion(data); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}

	if _, err := EncodeCompletion(string(make([]byte, maxNameLen+1)), "l", line); err == nil {
		t.Error("oversized worker name: encode succeeded, want error")
	}
}

func coordConfig(ttl time.Duration) CoordinatorConfig {
	return CoordinatorConfig{
		LeaseTTL:     ttl,
		Linger:       20 * time.Millisecond,
		DrainTimeout: 2 * time.Second,
		Registry:     telemetry.New(),
	}
}

// TestLeaseExpiryReleasesShard simulates a worker crash mid-shard: the
// lease expires without renewal or completion, and the shard becomes
// leasable again for another worker.
func TestLeaseExpiryReleasesShard(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	cfg := coordConfig(40 * time.Millisecond)
	cfg.MaxLeases = 1 // no stealing: expiry is the only way back
	co, err := NewCoordinator(testTarget{}, testSpec(2), campaign.Config{Journal: dir, Shards: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lr1 := co.grant("w1")
	lr2 := co.grant("w2")
	if lr1.Shard != 0 || lr2.Shard != 1 {
		t.Fatalf("grants: %d, %d; want 0, 1 (lowest pending first)", lr1.Shard, lr2.Shard)
	}
	if lr3 := co.grant("w3"); lr3.Shard != -1 {
		t.Fatalf("saturated grant: shard %d, want -1", lr3.Shard)
	}

	// w1 "crashes": never renews, never completes. Past the TTL its
	// shard is re-leased — a fresh grant, not a steal.
	time.Sleep(100 * time.Millisecond)
	lr4 := co.grant("w3")
	if lr4.Shard != 0 || lr4.Stolen {
		t.Fatalf("post-expiry grant: shard=%d stolen=%v, want shard 0, not stolen", lr4.Shard, lr4.Stolen)
	}
	if !co.renew(lr4.Lease).OK {
		t.Error("renewing a live lease failed")
	}
	if co.renew(lr1.Lease).OK {
		t.Error("renewing the expired lease succeeded")
	}
}

// TestStealAndDuplicateFirstWins drives the straggler path: a second
// worker steals the only shard, both complete, the first completion
// wins and the loser is reported (not errored) as a duplicate.
func TestStealAndDuplicateFirstWins(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	ccfg := campaign.Config{Journal: dir, Shards: 1}
	co, err := NewCoordinator(testTarget{}, testSpec(1), ccfg, coordConfig(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	lr1 := co.grant("w1")
	lr2 := co.grant("w2")
	if lr1.Shard != 0 || lr2.Shard != 0 || !lr2.Stolen {
		t.Fatalf("grants: %+v then %+v; want both shard 0, second stolen", lr1, lr2)
	}
	if lr3 := co.grant("w3"); lr3.Shard != -1 {
		t.Fatalf("grant past MaxLeases: shard %d, want -1", lr3.Shard)
	}

	x, err := campaign.NewExecutorShards(context.Background(), testTarget{}, testSpec(1), campaign.Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	line, err := x.RunShard(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	first, err := co.complete("w2", line)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Accepted || !first.Complete {
		t.Errorf("first completion: %+v, want accepted and complete", first)
	}
	// The thief won; the original holder's renew now reports Done so it
	// can abandon the shard (exercised end-to-end by the worker loop).
	if r := co.renew(lr1.Lease); r.OK {
		t.Error("lease survived its shard's completion")
	}
	second, err := co.complete("w1", line)
	if err != nil {
		t.Fatal(err)
	}
	if second.Accepted || !second.Duplicate {
		t.Errorf("second completion: %+v, want duplicate, not accepted", second)
	}

	data, err := os.ReadFile(filepath.Join(dir, "checkpoints.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != 1 {
		t.Errorf("journal has %d lines, want 1 (duplicate dropped)", n)
	}
}

// TestCoordinatorRestart kills a coordinator with a lease outstanding
// and a shard committed, restarts it over the same journal, and checks
// that committed work is restored, forgotten leases re-grant, and a
// completion computed under the dead coordinator's lease still merges.
func TestCoordinatorRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	spec := testSpec(2)
	ccfg := campaign.Config{Journal: dir, Shards: 3}
	co1, err := NewCoordinator(testTarget{}, spec, ccfg, coordConfig(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- co1.Serve(ctx1, ln) }()

	orphan := co1.grant("w1") // will outlive its coordinator
	if orphan.Shard != 0 {
		t.Fatalf("grant: shard %d, want 0", orphan.Shard)
	}
	x, err := campaign.NewExecutorShards(context.Background(), testTarget{}, spec, campaign.Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	line1, err := x.RunShard(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := co1.complete("w1", line1); err != nil || !resp.Accepted {
		t.Fatalf("commit shard 1: resp=%+v err=%v", resp, err)
	}
	cancel1()
	if err := <-serveErr; err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("serve: %v", err)
	}

	// Restart. The committed shard is restored; the lease is forgotten.
	ccfg.Resume = true
	co2, err := NewCoordinator(testTarget{}, spec, ccfg, coordConfig(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	st := co2.Status()
	if st.Done != 1 || st.Leases != 0 || st.Complete {
		t.Fatalf("restarted status: %+v, want 1 done, 0 leases", st)
	}
	if lr := co2.grant("w2"); lr.Shard != 0 {
		t.Fatalf("post-restart grant: shard %d, want 0 (lease forgotten)", lr.Shard)
	}

	// A completion for shard 0 computed under the dead coordinator's
	// lease still wins: leases are hints, the ledger is the authority.
	line0, err := x.RunShard(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := co2.complete("w1", line0); err != nil || !resp.Accepted {
		t.Fatalf("orphaned completion: resp=%+v err=%v", resp, err)
	}
	line2, err := x.RunShard(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := co2.complete("w3", line2)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Complete {
		t.Errorf("final completion: %+v, want Complete", resp)
	}
	select {
	case <-co2.Done():
	default:
		t.Error("Done channel open after final commit")
	}
}

// TestTwoWorkersMatchLocalRun is the fabric acceptance test: a
// coordinator and two workers over loopback HTTP produce a sealed
// journal byte-identical to a plain local campaign.Run. Run under
// -race this also exercises the coordinator's concurrency.
func TestTwoWorkersMatchLocalRun(t *testing.T) {
	spec := testSpec(2)
	localDir := filepath.Join(t.TempDir(), "local")
	if _, err := campaign.Run(context.Background(), testTarget{}, spec,
		campaign.Config{Journal: localDir, Shards: 5}); err != nil {
		t.Fatal(err)
	}

	fabricDir := filepath.Join(t.TempDir(), "fabric")
	co, err := NewCoordinator(testTarget{}, spec, campaign.Config{Journal: fabricDir, Shards: 5},
		coordConfig(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve(ctx, ln) }()

	wcfg := WorkerConfig{
		Coordinator: "http://" + ln.Addr().String(),
		Poll:        10 * time.Millisecond,
		Retry:       serve.Backoff{MaxRetries: 5, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		Registry:    telemetry.New(),
	}
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		cfg := wcfg
		cfg.Name = []string{"alpha", "beta"}[i]
		w, err := NewWorker(ctx, testTarget{}, spec, campaign.Config{}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}

	local := readJournal(t, localDir)
	fabric := readJournal(t, fabricDir)
	if !bytes.Equal(local, fabric) {
		t.Errorf("fabric journal differs from local journal (%d vs %d bytes)", len(fabric), len(local))
	}

	// And the sealed journal resumes into a fully-restored local run.
	res, err := campaign.Run(context.Background(), testTarget{}, spec,
		campaign.Config{Journal: fabricDir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardsRestored != 5 || res.ShardsRun != 0 {
		t.Errorf("resume of fabric journal: restored=%d run=%d, want 5/0", res.ShardsRestored, res.ShardsRun)
	}
}

// TestWorkerRefusesForeignPlan pins the identity check: a worker whose
// spec disagrees with the coordinator's must refuse to start.
func TestWorkerRefusesForeignPlan(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	co, err := NewCoordinator(testTarget{}, testSpec(2), campaign.Config{Journal: dir, Shards: 2},
		coordConfig(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve(ctx, ln) }()

	other := testSpec(2)
	other.BitStride = 2
	_, err = NewWorker(ctx, testTarget{}, other, campaign.Config{}, WorkerConfig{
		Coordinator: "http://" + ln.Addr().String(),
		Registry:    telemetry.New(),
	})
	if err == nil {
		t.Fatal("worker with mismatched spec started, want refusal")
	}
	cancel()
	<-serveErr
}

func readJournal(t *testing.T, dir string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dir, "checkpoints.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	return data
}
