// Package fabric distributes a fault-injection campaign across
// machines: one coordinator owns the plan and the journal, any number
// of workers lease pending shards, execute them with the ordinary
// campaign engine (fork fast path included) and stream the resulting
// checkpoint lines back. The coordinator merges first-wins into the
// same checkpoints.jsonl format the local engine writes, so `-resume`
// and the bit-identity guarantee hold across machines: a single-machine
// fabric run seals to a journal byte-identical to a local run.
//
// # Protocol
//
// The fabric speaks HTTP on the shared internal/serve plumbing
// (RunHTTP drain semantics, Backoff retries). Control messages are
// JSON; completed shards travel as a length-prefixed binary frame
// wrapping the canonical journal line, whose sampled states are hex
// IEEE-754 bit patterns — the same exact transport the journal and the
// serving codecs use, so records cross the wire bit-exactly.
//
//	GET  /fabric/v1/plan      → PlanStatus (identity check + progress)
//	POST /fabric/v1/lease     LeaseRequest → LeaseResponse
//	POST /fabric/v1/renew     RenewRequest → RenewResponse
//	POST /fabric/v1/complete  completion frame → CompleteResponse
//
// # Leases
//
// A lease is a time-bounded scheduling hint: it tells other workers to
// look elsewhere, nothing more. Correctness never depends on lease
// validity — the ledger's first-wins merge keyed by plan position does
// all the deduplication — so a coordinator restart (leases are in
// memory only) silently accepts completions for leases it never issued,
// and an expired lease's completion still wins if it arrives first.
//
// The lease state machine, per shard:
//
//	pending  no active lease, not committed; lowest pending shard is
//	         granted first (deterministic scheduling)
//	leased   one or more active leases; expiry (TTL without renewal)
//	         returns the shard to pending, heartbeat renewal extends it
//	done     committed to the journal; all its leases dissolve and any
//	         further completion is a counted duplicate
//
// Work-stealing: when nothing is pending but leases are outstanding,
// an idle worker is granted a duplicate lease on the slowest
// outstanding shard (oldest grant, fewest leases first) — stragglers
// get raced instead of stalling the tail of the campaign. First
// completion wins; the loser becomes fabric.duplicate_cells.
//
// # Incremental invalidation
//
// The coordinator opens its journal through the same preparePlan path
// as a local campaign, so campaign.Config.Incremental works unchanged:
// per-section sub-hash diffing marks only invalidated shards pending,
// and workers re-execute exactly those.
package fabric

import (
	"encoding/binary"
	"fmt"
)

// Wire types of the JSON control endpoints.

// PlanStatus is the coordinator's identity and progress: workers check
// Plan (and build their executor with Shards) before leasing; `edem
// fabric serve` polls it for progress logging.
type PlanStatus struct {
	Plan    string `json:"plan"`
	Dataset string `json:"dataset"`
	Target  string `json:"target"`
	// Fault is the campaign's fault-model axis ("burst(width=3)", ...),
	// omitted for the default transient model — older coordinators and
	// workers that predate the axis interoperate unchanged on transient
	// campaigns, and a fault-model mismatch still fails the plan-hash
	// identity check before any shard is leased.
	Fault    string `json:"fault,omitempty"`
	Jobs     int    `json:"jobs"`
	Shards   int    `json:"shards"`
	Done     int    `json:"done"`
	Leases   int    `json:"leases"`
	Complete bool   `json:"complete"`
}

// LeaseRequest asks for one shard to execute.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse grants a shard (Shard >= 0) or reports why not:
// Complete means the campaign is finished, otherwise nothing is
// leasable right now (every pending shard saturated) and the worker
// should poll again. Stolen marks a duplicate lease on a straggler.
type LeaseResponse struct {
	Shard    int    `json:"shard"`
	Lease    string `json:"lease,omitempty"`
	TTLMS    int64  `json:"ttl_ms,omitempty"`
	Stolen   bool   `json:"stolen,omitempty"`
	Complete bool   `json:"complete,omitempty"`
}

// RenewRequest heartbeats a lease.
type RenewRequest struct {
	Lease string `json:"lease"`
}

// RenewResponse: OK extends the lease by one TTL. A dead lease with
// Done set means the shard was committed (by anyone) — stop working on
// it; dead without Done means the lease expired or the coordinator
// restarted, and finishing the shard is still worthwhile (first-wins).
type RenewResponse struct {
	OK   bool `json:"ok"`
	Done bool `json:"done,omitempty"`
}

// CompleteResponse reports the merge outcome of one uploaded shard.
type CompleteResponse struct {
	Shard     int  `json:"shard"`
	Accepted  bool `json:"accepted"`
	Duplicate bool `json:"duplicate"`
	Complete  bool `json:"complete"`
}

// ErrorResponse mirrors serve's error body shape.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Completion frame layout (all integers little-endian):
//
//	u32  length of the remainder (self-delimiting length prefix)
//	u32  magic "EDFB"
//	u8   version (1)
//	u16  worker name length, then that many UTF-8 bytes
//	u16  lease ID length, then that many UTF-8 bytes
//	u32  checkpoint line length, then that many bytes — the canonical
//	     journal line (encodeCheckpointLine output), hex-IEEE-754
//	     states inside
//
// Decoding is strict: truncated fields, trailing bytes or a
// disagreeing length prefix are errors.
const (
	frameMagic      = 0x42464445 // "EDFB"
	frameVersion    = 1
	maxNameLen      = 1 << 10
	maxFrameLineLen = 256 << 20 // a shard of very wide records; generous
)

// EncodeCompletion renders one completion frame.
func EncodeCompletion(worker, lease string, line []byte) ([]byte, error) {
	if len(worker) > maxNameLen || len(lease) > maxNameLen {
		return nil, fmt.Errorf("fabric: frame: name too long")
	}
	if len(line) > maxFrameLineLen {
		return nil, fmt.Errorf("fabric: frame: checkpoint line of %d bytes exceeds limit", len(line))
	}
	n := 4 + 1 + 2 + len(worker) + 2 + len(lease) + 4 + len(line)
	buf := make([]byte, 0, 4+n)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, frameMagic)
	buf = append(buf, frameVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(worker)))
	buf = append(buf, worker...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(lease)))
	buf = append(buf, lease...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(line)))
	buf = append(buf, line...)
	return buf, nil
}

// DecodeCompletion parses one completion frame.
func DecodeCompletion(data []byte) (worker, lease string, line []byte, err error) {
	r := frameReader{data: data}
	if n := r.u32(); int(n) != len(data)-4 {
		return "", "", nil, fmt.Errorf("fabric: frame: length prefix %d disagrees with body %d", n, len(data)-4)
	}
	if m := r.u32(); m != frameMagic {
		return "", "", nil, fmt.Errorf("fabric: frame: bad magic %#x", m)
	}
	if v := r.u8(); v != frameVersion {
		return "", "", nil, fmt.Errorf("fabric: frame: unsupported version %d", v)
	}
	worker = r.str(int(r.u16()), maxNameLen)
	lease = r.str(int(r.u16()), maxNameLen)
	lineLen := int(r.u32())
	if lineLen > maxFrameLineLen {
		return "", "", nil, fmt.Errorf("fabric: frame: checkpoint line of %d bytes exceeds limit", lineLen)
	}
	line = r.take(lineLen)
	if r.err != nil {
		return "", "", nil, r.err
	}
	if r.off != len(data) {
		return "", "", nil, fmt.Errorf("fabric: frame: %d trailing bytes", len(data)-r.off)
	}
	return worker, lease, line, nil
}

// frameReader is a bounds-checked little-endian cursor (the serve
// binary codec's reader, specialised for this frame).
type frameReader struct {
	data []byte
	off  int
	err  error
}

func (r *frameReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = fmt.Errorf("fabric: frame: truncated (want %d bytes at offset %d of %d)", n, r.off, len(r.data))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

func (r *frameReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *frameReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *frameReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *frameReader) str(n, max int) string {
	if r.err == nil && n > max {
		r.err = fmt.Errorf("fabric: frame: name of %d bytes exceeds limit %d", n, max)
		return ""
	}
	return string(r.take(n))
}
