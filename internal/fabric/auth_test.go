package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"edem/internal/campaign"
	"edem/internal/serve"
	"edem/internal/telemetry"
)

// TestBearerAuthRejectsUnauthenticated: with an auth token configured,
// every /fabric/v1 endpoint rejects missing and wrong tokens with 401
// (no lease granted, no frame merged), accepts the right one, and
// leaves /healthz open for probes.
func TestBearerAuthRejectsUnauthenticated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	cfg := coordConfig(time.Minute)
	cfg.AuthToken = "hunter2"
	co, err := NewCoordinator(testTarget{}, testSpec(1), campaign.Config{Journal: dir, Shards: 1}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(co.Handler())
	defer srv.Close()

	post := func(path, token string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, srv.URL+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		res, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		return res
	}

	lease, _ := json.Marshal(LeaseRequest{Worker: "intruder"})
	frame, err := EncodeCompletion("intruder", "l0-s0", []byte("{}\n"))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		path string
		body []byte
	}{
		{"/fabric/v1/lease", lease},
		{"/fabric/v1/complete", frame},
		{"/fabric/v1/renew", []byte(`{"lease":"x"}`)},
	} {
		if res := post(c.path, "", c.body); res.StatusCode != http.StatusUnauthorized {
			t.Errorf("POST %s without token: %d, want 401", c.path, res.StatusCode)
		}
		if res := post(c.path, "wrong", c.body); res.StatusCode != http.StatusUnauthorized {
			t.Errorf("POST %s with wrong token: %d, want 401", c.path, res.StatusCode)
		}
	}
	if res, err := http.Get(srv.URL + "/fabric/v1/plan"); err != nil || res.StatusCode != http.StatusUnauthorized {
		t.Errorf("GET plan without token: %v %v, want 401", res.StatusCode, err)
	}

	// Nothing leaked through: no lease outstanding, no shard committed.
	if st := co.Status(); st.Leases != 0 || st.Done != 0 {
		t.Errorf("unauthenticated calls mutated state: %+v", st)
	}

	// The right token works end to end.
	if res := post("/fabric/v1/lease", "hunter2", lease); res.StatusCode != http.StatusOK {
		t.Errorf("authenticated lease: %d, want 200", res.StatusCode)
	}
	if st := co.Status(); st.Leases != 1 {
		t.Errorf("authenticated lease not granted: %+v", st)
	}
	// Health stays open for load-balancer probes.
	if res, err := http.Get(srv.URL + "/healthz"); err != nil || res.StatusCode != http.StatusOK {
		t.Errorf("GET /healthz: %v %v, want 200 without auth", res.StatusCode, err)
	}
}

// TestAuthenticatedWorkerCompletes: a worker configured with the token
// drives a campaign to completion against an auth-requiring
// coordinator; one without the token refuses to start.
func TestAuthenticatedWorkerCompletes(t *testing.T) {
	spec := testSpec(1)
	dir := filepath.Join(t.TempDir(), "journal")
	cfg := coordConfig(2 * time.Second)
	cfg.AuthToken = "fabric-secret"
	co, err := NewCoordinator(testTarget{}, spec, campaign.Config{Journal: dir, Shards: 2}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- co.Serve(ctx, ln) }()

	wcfg := WorkerConfig{
		Coordinator: "http://" + ln.Addr().String(),
		Name:        "tokenless",
		Poll:        10 * time.Millisecond,
		Retry:       serve.Backoff{MaxRetries: 2, Base: 10 * time.Millisecond, Max: 50 * time.Millisecond},
		Registry:    telemetry.New(),
	}
	if _, err := NewWorker(ctx, testTarget{}, spec, campaign.Config{}, wcfg); err == nil {
		t.Fatal("worker without token started against an auth-requiring coordinator")
	}

	wcfg.Name = "authorized"
	wcfg.AuthToken = "fabric-secret"
	w, err := NewWorker(ctx, testTarget{}, spec, campaign.Config{}, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("authorized worker: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
	if st := co.Status(); !st.Complete {
		t.Errorf("campaign not complete: %+v", st)
	}
}
