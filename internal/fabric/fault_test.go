package fabric

import (
	"bytes"
	"context"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"edem/internal/bitflip"
	"edem/internal/campaign"
	"edem/internal/serve"
	"edem/internal/telemetry"
)

// TestTwoWorkersMatchLocalRunPerModel extends the fabric acceptance
// test across the fault-model axis: for burst, stuck-at and
// intermittent campaigns, a coordinator plus two workers seal a
// journal byte-identical to a local run, and the coordinator
// advertises the fault axis in PlanStatus.
func TestTwoWorkersMatchLocalRunPerModel(t *testing.T) {
	for _, f := range []bitflip.Fault{
		{Model: bitflip.Burst, Width: 2},
		{Model: bitflip.StuckAt},
		{Model: bitflip.Intermittent, Persist: 2},
	} {
		t.Run(f.String(), func(t *testing.T) {
			spec := testSpec(2)
			spec.Fault = f
			localDir := filepath.Join(t.TempDir(), "local")
			if _, err := campaign.Run(context.Background(), testTarget{}, spec,
				campaign.Config{Journal: localDir, Shards: 4}); err != nil {
				t.Fatal(err)
			}

			fabricDir := filepath.Join(t.TempDir(), "fabric")
			co, err := NewCoordinator(testTarget{}, spec, campaign.Config{Journal: fabricDir, Shards: 4},
				coordConfig(2*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			if st := co.Status(); st.Fault != f.String() {
				t.Errorf("PlanStatus.Fault = %q, want %q", st.Fault, f.String())
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
			defer cancel()
			serveErr := make(chan error, 1)
			go func() { serveErr <- co.Serve(ctx, ln) }()

			wcfg := WorkerConfig{
				Coordinator: "http://" + ln.Addr().String(),
				Poll:        10 * time.Millisecond,
				Retry:       serve.Backoff{MaxRetries: 5, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
				Registry:    telemetry.New(),
			}
			var wg sync.WaitGroup
			errs := make([]error, 2)
			for i := range errs {
				cfg := wcfg
				cfg.Name = []string{"alpha", "beta"}[i]
				w, err := NewWorker(ctx, testTarget{}, spec, campaign.Config{}, cfg)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					errs[i] = w.Run(ctx)
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			if err := <-serveErr; err != nil {
				t.Fatalf("serve: %v", err)
			}

			local := readJournal(t, localDir)
			fabric := readJournal(t, fabricDir)
			if !bytes.Equal(local, fabric) {
				t.Errorf("fabric journal differs from local journal (%d vs %d bytes)", len(fabric), len(local))
			}
		})
	}
}

// TestTransientPlanStatusOmitsFault: transient coordinators advertise
// no fault axis, keeping the wire format identical for old workers.
func TestTransientPlanStatusOmitsFault(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	co, err := NewCoordinator(testTarget{}, testSpec(1), campaign.Config{Journal: dir, Shards: 1},
		coordConfig(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if st := co.Status(); st.Fault != "" {
		t.Errorf("transient PlanStatus.Fault = %q, want empty", st.Fault)
	}
}
