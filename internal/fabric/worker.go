package fabric

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"edem/internal/campaign"
	"edem/internal/propane"
	"edem/internal/serve"
	"edem/internal/telemetry"
)

// WorkerConfig tunes one fabric worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g.
	// "http://127.0.0.1:9090".
	Coordinator string
	// Name identifies this worker in leases and logs (default
	// "worker").
	Name string
	// Poll is the idle wait between lease attempts when nothing is
	// leasable (default 200ms).
	Poll time.Duration
	// Retry is the shared backoff policy for every coordinator call.
	Retry serve.Backoff
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// Registry receives the fabric.worker_* metrics; nil falls back to
	// the process default registry.
	Registry *telemetry.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
	// AuthToken, when non-empty, is sent as "Authorization: Bearer
	// <token>" on every coordinator call — required when the
	// coordinator was started with an auth token.
	AuthToken string
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Name == "" {
		c.Name = "worker"
	}
	if c.Poll <= 0 {
		c.Poll = 200 * time.Millisecond
	}
	if c.Registry == nil {
		c.Registry = telemetry.Default()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Worker executes leased shards against a coordinator. Create with
// NewWorker (which prepares the campaign executor — goldens and all —
// and verifies the plan identity against the coordinator), run with
// Run.
type Worker struct {
	cfg WorkerConfig
	x   *campaign.Executor

	mShards    *telemetry.Counter
	mStolen    *telemetry.Counter
	mAbandoned *telemetry.Counter
	mDupes     *telemetry.Counter
}

// NewWorker fetches the coordinator's plan, builds the local executor
// with the coordinator's shard count, and refuses to start when the
// plan hashes disagree — a worker with a different target build, spec
// or test-case generator would otherwise poison the journal.
func NewWorker(ctx context.Context, target propane.Target, spec propane.Spec, ccfg campaign.Config, cfg WorkerConfig) (*Worker, error) {
	cfg = cfg.withDefaults()
	w := &Worker{cfg: cfg}
	reg := cfg.Registry
	w.mShards = reg.Counter("fabric.worker_shards")
	w.mStolen = reg.Counter("fabric.worker_steals")
	w.mAbandoned = reg.Counter("fabric.worker_abandoned")
	w.mDupes = reg.Counter("fabric.worker_duplicates")

	st, err := w.fetchPlan(ctx)
	if err != nil {
		return nil, err
	}
	x, err := campaign.NewExecutorShards(ctx, target, spec, ccfg, st.Shards)
	if err != nil {
		return nil, err
	}
	if x.Plan().Hash != st.Plan {
		return nil, fmt.Errorf("fabric: worker plan %.12s disagrees with coordinator plan %.12s (different target build or spec?)",
			x.Plan().Hash, st.Plan)
	}
	w.x = x
	return w, nil
}

// errShardDone aborts a shard whose result is already merged.
var errShardDone = errors.New("fabric: shard completed elsewhere")

// Run leases, executes and uploads shards until the coordinator
// reports the campaign complete (returns nil), ctx is cancelled, or
// the coordinator stays unreachable past the retry budget.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		lr, err := w.lease(ctx)
		if err != nil {
			return err
		}
		if lr.Complete {
			w.cfg.Logf("fabric: %s: campaign complete", w.cfg.Name)
			return nil
		}
		if lr.Shard < 0 {
			select {
			case <-time.After(w.cfg.Poll):
			case <-ctx.Done():
				return ctx.Err()
			}
			continue
		}
		if lr.Stolen {
			w.mStolen.Inc()
			w.cfg.Logf("fabric: %s: stealing shard %d", w.cfg.Name, lr.Shard)
		}
		done, err := w.runLeased(ctx, lr)
		if err != nil {
			if errors.Is(err, errShardDone) {
				w.mAbandoned.Inc()
				w.cfg.Logf("fabric: %s: abandoning shard %d (completed elsewhere)", w.cfg.Name, lr.Shard)
				continue
			}
			return err
		}
		if done {
			w.cfg.Logf("fabric: %s: campaign complete", w.cfg.Name)
			return nil
		}
	}
}

// runLeased executes one leased shard under a heartbeat and uploads
// its checkpoint line. The returned bool reports whether the campaign
// is now complete.
func (w *Worker) runLeased(ctx context.Context, lr LeaseResponse) (bool, error) {
	// The heartbeat renews at a third of the TTL. Losing the lease
	// (expiry, coordinator restart) does NOT abort the shard — first
	// completion wins, so finishing is still worthwhile; only a Done
	// verdict (someone else's completion merged) abandons the work.
	hctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	ttl := time.Duration(lr.TTLMS) * time.Millisecond
	if ttl > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			t := time.NewTicker(ttl / 3)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					resp, err := w.renew(hctx, lr.Lease)
					if err == nil && !resp.OK && resp.Done {
						cancel(errShardDone)
						return
					}
				case <-stop:
					return
				case <-hctx.Done():
					return
				}
			}
		}()
	}

	line, err := w.x.RunShard(hctx, lr.Shard)
	if err != nil {
		if errors.Is(context.Cause(hctx), errShardDone) {
			return false, errShardDone
		}
		return false, err
	}
	resp, err := w.complete(ctx, lr.Lease, line)
	if err != nil {
		return false, err
	}
	w.mShards.Inc()
	if resp.Duplicate {
		w.mDupes.Inc()
	}
	return resp.Complete, nil
}

// fetchPlan GETs /fabric/v1/plan with retries.
func (w *Worker) fetchPlan(ctx context.Context) (PlanStatus, error) {
	var st PlanStatus
	err := w.cfg.Retry.Retry(ctx, "fabric: plan", permanentStatus, func() error {
		return w.getJSON(ctx, "/fabric/v1/plan", &st)
	})
	return st, err
}

func (w *Worker) lease(ctx context.Context) (LeaseResponse, error) {
	var lr LeaseResponse
	err := w.cfg.Retry.Retry(ctx, "fabric: lease", permanentStatus, func() error {
		return w.postJSON(ctx, "/fabric/v1/lease", LeaseRequest{Worker: w.cfg.Name}, &lr)
	})
	return lr, err
}

func (w *Worker) renew(ctx context.Context, lease string) (RenewResponse, error) {
	var rr RenewResponse
	// Renewals do not retry: the next tick is another chance, and a
	// retry storm during a coordinator hiccup helps nobody.
	err := w.postJSON(ctx, "/fabric/v1/renew", RenewRequest{Lease: lease}, &rr)
	return rr, err
}

func (w *Worker) complete(ctx context.Context, lease string, line []byte) (CompleteResponse, error) {
	frame, err := EncodeCompletion(w.cfg.Name, lease, line)
	if err != nil {
		return CompleteResponse{}, err
	}
	var cr CompleteResponse
	err = w.cfg.Retry.Retry(ctx, "fabric: complete", permanentStatus, func() error {
		return w.postRaw(ctx, "/fabric/v1/complete", frame, &cr)
	})
	return cr, err
}

// permanentStatus mirrors the serve client's classification: 4xx (bad
// frame, plan mismatch) will not improve with retries; 5xx and
// transport errors might.
func permanentStatus(err error) bool {
	var se *statusError
	return errors.As(err, &se) && se.code >= 400 && se.code < 500
}

type statusError struct {
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("fabric: coordinator returned %d: %s", e.code, e.msg)
}

func (w *Worker) httpClient() *http.Client {
	if w.cfg.HTTP != nil {
		return w.cfg.HTTP
	}
	return http.DefaultClient
}

func (w *Worker) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.cfg.Coordinator+path, nil)
	if err != nil {
		return err
	}
	return w.do(req, out)
}

func (w *Worker) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return w.do(req, out)
}

func (w *Worker) postRaw(ctx context.Context, path string, body []byte, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.cfg.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	return w.do(req, out)
}

func (w *Worker) do(req *http.Request, out any) error {
	if w.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+w.cfg.AuthToken)
	}
	res, err := w.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return err
	}
	if res.StatusCode/100 != 2 {
		var er ErrorResponse
		msg := string(data)
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &statusError{code: res.StatusCode, msg: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("fabric: decode %s response: %w", req.URL.Path, err)
	}
	return nil
}
