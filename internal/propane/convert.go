package propane

import (
	"errors"
	"math"

	"edem/internal/dataset"
)

// Class labels of fault-injection datasets. The positive (minority)
// concept is the failure-inducing state, at class index 1, matching the
// convention of internal/mining/eval.
const (
	ClassNonFailure = "nonfailure"
	ClassFailure    = "failure"
)

// ErrNoRecords reports a campaign with no usable (sampled) records.
var ErrNoRecords = errors.New("propane: campaign has no sampled records")

// ToDataset converts a campaign into a mining dataset: one instance per
// sampled injected run, attributes the module's variables, class
// failure / nonfailure. Non-finite sampled values (NaN/Inf produced by
// corrupted floating-point state) are clamped to large sentinels so the
// learners see them as extreme but ordered magnitudes.
//
// Campaigns run under a non-transient fault model additionally carry
// three fault-model attributes (fault_model as the Model ordinal,
// fault_width, fault_persist) so the fault axis is available to mining
// when datasets from several models are merged. Transient campaigns
// omit them, keeping their ARFF output byte-identical to datasets
// generated before the fault-model axis existed.
func ToDataset(c *Campaign) (*dataset.Dataset, error) {
	fault := c.Spec.Fault.Normalized()
	faultAttrs := !fault.IsTransient()
	attrs := make([]dataset.Attribute, len(c.VarNames), len(c.VarNames)+3)
	for i, name := range c.VarNames {
		attrs[i] = dataset.NumericAttr(name)
	}
	if faultAttrs {
		attrs = append(attrs,
			dataset.NumericAttr("fault_model"),
			dataset.NumericAttr("fault_width"),
			dataset.NumericAttr("fault_persist"))
	}
	d := dataset.New(c.Spec.Dataset, attrs, []string{ClassNonFailure, ClassFailure})
	for i := range c.Records {
		r := &c.Records[i]
		if !r.Sampled {
			continue
		}
		vals := make([]float64, len(r.State), len(attrs))
		for j, v := range r.State {
			vals[j] = finite(v)
		}
		if faultAttrs {
			vals = append(vals,
				float64(fault.Model), float64(fault.Width), float64(fault.Persist))
		}
		class := 0
		if r.Failure {
			class = 1
		}
		if err := d.Add(dataset.Instance{Values: vals, Class: class, Weight: 1}); err != nil {
			return nil, err
		}
	}
	if d.Len() == 0 {
		return nil, ErrNoRecords
	}
	return d, nil
}

// finiteBound is the sentinel magnitude substituted for non-finite
// sampled values. It exceeds any legitimate value produced by the
// bundled targets by many orders of magnitude, so threshold splits can
// isolate corrupted states.
const finiteBound = 1e308

func finite(v float64) float64 {
	switch {
	case math.IsNaN(v):
		// NaN carries no ordering; map it beyond the positive sentinel
		// region is ambiguous, so use the positive bound: a NaN state is
		// as anomalous as an overflowed one.
		return finiteBound
	case math.IsInf(v, 1):
		return finiteBound
	case math.IsInf(v, -1):
		return -finiteBound
	default:
		return v
	}
}
