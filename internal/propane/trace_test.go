package propane

import (
	"testing"
)

func TestRunTraceRecordsPostInjectionStates(t *testing.T) {
	target := &toyTarget{Ticks: 6}
	tc := target.TestCases(1, 1)[0]
	golden, err := target.Run(tc, NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTrace(target, tc, golden, TraceSpec{
		Module:        "M",
		InjectAt:      Entry,
		TraceAt:       Exit,
		Var:           "gate",
		Bit:           10,
		InjectionTime: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Injected {
		t.Fatal("injection not reached")
	}
	// Exit visits 3..6 are post-injection: 4 entries.
	if len(tr.Entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(tr.Entries))
	}
	if tr.Entries[0].Activation != 3 || tr.Entries[3].Activation != 6 {
		t.Fatalf("activations = %d..%d", tr.Entries[0].Activation, tr.Entries[3].Activation)
	}
	// The corrupted gate (7 ^ 1<<10) is visible in every entry.
	want := float64(7 ^ 1<<10)
	for _, e := range tr.Entries {
		if e.State[1] != want {
			t.Fatalf("gate in trace = %v, want %v", e.State[1], want)
		}
	}
	if !tr.Failure {
		t.Fatal("corrupted gate must fail")
	}
}

func TestRunTraceSameLocation(t *testing.T) {
	target := &toyTarget{Ticks: 5}
	tc := target.TestCases(1, 1)[0]
	golden, err := target.Run(tc, NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTrace(target, tc, golden, TraceSpec{
		Module:   "M",
		InjectAt: Entry,
		TraceAt:  Entry,
		Var:      "acc", Bit: 62, InjectionTime: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Entry visits 2..5 post-injection, including the injection visit.
	if len(tr.Entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(tr.Entries))
	}
	if tr.Entries[0].Activation != 2 {
		t.Fatalf("first activation = %d, want 2 (the injection visit)", tr.Entries[0].Activation)
	}
}

func TestRunTraceUnreachedInjection(t *testing.T) {
	target := &toyTarget{Ticks: 3}
	tc := target.TestCases(1, 1)[0]
	golden, _ := target.Run(tc, NopProbe{})
	tr, err := RunTrace(target, tc, golden, TraceSpec{
		Module: "M", InjectAt: Entry, TraceAt: Exit,
		Var: "acc", Bit: 0, InjectionTime: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Injected || len(tr.Entries) != 0 || tr.Failure {
		t.Fatalf("unreached injection: %+v", tr)
	}
}

func TestRunTraceBadSpec(t *testing.T) {
	target := &toyTarget{}
	tc := target.TestCases(1, 1)[0]
	if _, err := RunTrace(target, tc, nil, TraceSpec{InjectionTime: 0}); err == nil {
		t.Fatal("zero injection time should fail")
	}
}

func TestRunTraceCrash(t *testing.T) {
	target := &toyTarget{Ticks: 6, CrashOn: 1e6}
	tc := target.TestCases(1, 1)[0]
	golden, err := target.Run(tc, NopProbe{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunTrace(target, tc, golden, TraceSpec{
		Module: "M", InjectAt: Entry, TraceAt: Entry,
		// Bit 61 is a clear exponent bit of small accumulator values:
		// flipping it makes acc astronomically large, tripping the
		// toy target's panic guard.
		Var: "acc", Bit: 61, InjectionTime: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Crashed || !tr.Failure {
		t.Fatalf("crash not classified: %+v", tr)
	}
	// The injection visit's state was recorded before the panic fired.
	if len(tr.Entries) != 1 {
		t.Fatalf("entries = %d, want the single pre-crash state", len(tr.Entries))
	}
	if tr.Entries[0].State[0] < 1e6 {
		t.Fatalf("recorded state should show the corrupted accumulator: %v", tr.Entries[0].State)
	}
}
