package propane

import (
	"bytes"
	"testing"
)

// FuzzReadLog checks write stability of the PROPANE log codec: any
// input ReadLog accepts must serialise to a form ReadLog accepts again,
// and the write→read→write cycle must reach a fixed point after the
// first write (which may normalise exotic-but-valid inputs, e.g. a
// state vector on an unsampled run is dropped).
func FuzzReadLog(f *testing.F) {
	f.Add([]byte(`#PROPANE v1
#target 7-Zip
#dataset 7Z-A2
#module FHandle
#inject Entry
#sample Exit
#vars bytesIn bytesOut crc
RUN tc=3 var=crc bit=17 t=2 inj=1 smp=1 fail=0 crash=0 state=1024,2048,3.5
RUN tc=4 var=bytesIn bit=0 t=5 inj=1 smp=0 fail=1 crash=1
`))
	f.Add([]byte("#PROPANE v1\nRUN tc=0 var= bit=-1 t=0 inj=0 smp=0 fail=0 crash=0\n"))
	f.Add([]byte("#PROPANE v1\n#vars a\nRUN tc=1 var=a bit=2 t=1 inj=1 smp=1 fail=1 crash=0 state=NaN\n"))
	f.Add([]byte("#target\n#module m\n#sample Entry\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		c1, err := ReadLog(bytes.NewReader(data))
		if err != nil {
			return // invalid input: nothing to round-trip
		}
		var b1 bytes.Buffer
		if err := WriteLog(&b1, c1); err != nil {
			t.Fatalf("write of parsed campaign failed: %v", err)
		}
		c2, err := ReadLog(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written log failed: %v\nwritten:\n%s", err, b1.Bytes())
		}
		var b2 bytes.Buffer
		if err := WriteLog(&b2, c2); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("write cycle not stable:\nfirst:\n%s\nsecond:\n%s", b1.Bytes(), b2.Bytes())
		}
	})
}
