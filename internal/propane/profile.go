package propane

import (
	"fmt"
	"math"
)

// VarProfile is the observed healthy range of one instrumented variable
// at a location, collected over golden (fault-free) runs. Range-check
// executable assertions — the specification/experience-derived
// detectors of Hiller et al. that the paper's methodology is contrasted
// with — are built directly from these profiles.
type VarProfile struct {
	Var string
	Min float64
	Max float64
	// Samples is the number of observations behind the range.
	Samples int
}

// ProfileGolden runs every test case fault-free and records the value
// range of each module variable at the given location.
func ProfileGolden(target Target, spec Spec) ([]VarProfile, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mod, ok := Module(target, spec.Module)
	if !ok {
		return nil, fmt.Errorf("%w: %q in %q", ErrModuleNotFound, spec.Module, target.Name())
	}
	probe := &profileProbe{
		module: spec.Module,
		loc:    spec.SampleAt,
		mins:   make([]float64, len(mod.Vars)),
		maxs:   make([]float64, len(mod.Vars)),
	}
	for i := range probe.mins {
		probe.mins[i] = math.Inf(1)
		probe.maxs[i] = math.Inf(-1)
	}
	for _, tc := range target.TestCases(spec.TestCases, spec.Seed) {
		if _, err := runSafely(target, tc, probe); err != nil {
			return nil, fmt.Errorf("propane: golden profile run %d: %w", tc.ID, err)
		}
	}
	profiles := make([]VarProfile, len(mod.Vars))
	for i, v := range mod.Vars {
		profiles[i] = VarProfile{
			Var:     v.Name,
			Min:     probe.mins[i],
			Max:     probe.maxs[i],
			Samples: probe.samples,
		}
	}
	return profiles, nil
}

// profileProbe accumulates per-variable min/max at one location.
type profileProbe struct {
	module  string
	loc     Location
	mins    []float64
	maxs    []float64
	samples int
}

var _ Probe = (*profileProbe)(nil)

func (p *profileProbe) Visit(module string, loc Location, vars []VarRef) {
	if module != p.module || loc != p.loc {
		return
	}
	p.samples++
	for i, v := range vars {
		if i >= len(p.mins) {
			break
		}
		x := v.Read()
		if x < p.mins[i] {
			p.mins[i] = x
		}
		if x > p.maxs[i] {
			p.maxs[i] = x
		}
	}
}
