package propane

// ChainProbe fans instrumentation visits out to several probes in
// order. It composes an injecting probe with observing probes such as a
// runtime detector, so a detector can be exercised during an injection
// campaign exactly as it would run in production.
type ChainProbe []Probe

var _ Probe = ChainProbe{}

// Visit implements Probe.
func (c ChainProbe) Visit(module string, loc Location, vars []VarRef) {
	for _, p := range c {
		p.Visit(module, loc, vars)
	}
}

// Chain combines probes into a single probe.
func Chain(probes ...Probe) Probe { return ChainProbe(probes) }
