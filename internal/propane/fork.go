// Golden-state forking and benign-convergence memoization — the
// campaign fast path (ROADMAP item 1, after ZOFI's fork-from-snapshot
// and FastFlip's memoized verdicts).
//
// The slow path executes every cell of the injection space from
// iteration zero, re-running the fault-free prefix before the injection
// point once per cell. Forking factors that prefix out: a Forkable
// target captures the complete pre-injection execution state once per
// (test case, injection time) column, and every bit-flip cell of that
// column resumes from a clone of the snapshot. On top of that, cells
// whose post-injection state re-converges with the golden trajectory
// (or matches a previously memoized post-injection state) terminate
// early with the golden (or memoized) verdict instead of running to
// completion.
//
// Bit-identity with the slow path rests on one invariant: State
// captures the COMPLETE resumable execution state, so equal digests at
// the same step imply identical remaining execution and therefore an
// identical final outcome. Early termination is additionally gated on
// the probe having sampled, so Record.State is always the cell's own
// post-injection sample, never inferred.
package propane

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"edem/internal/telemetry"
)

// Digest is a 128-bit fingerprint of a State: two independent
// multiply-xorshift streams over the same word encoding. 64 bits would
// make campaign-scale collisions (which would silently mislabel a
// record) merely unlikely; 128 bits makes them negligible.
type Digest [2]uint64

// StateHasher accumulates a Digest over state fields. Targets feed
// every field of their resumable state — position counters, module
// variables, accumulated outputs — through one hasher in a fixed order.
// The zero value is NOT ready; use NewStateHasher.
//
// The streams mix one 64-bit word per round (a xor, a multiply and an
// xorshift each) rather than one byte, because states routinely carry
// multi-kilobyte codec windows and the digest sits on the convergence
// hot path. For a fixed stream value each round is a bijection of the
// incoming word, so states differing in a single word never collide.
type StateHasher struct {
	a, b uint64
}

const (
	hashBasisA = 14695981039346656037
	hashBasisB = 0x9e3779b97f4a7c15
	hashMulA   = 0xff51afd7ed558ccd
	hashMulB   = 0xc2b2ae3d27d4eb4f
)

// NewStateHasher returns a hasher with both streams at their offset
// basis.
func NewStateHasher() StateHasher {
	return StateHasher{a: hashBasisA, b: hashBasisB}
}

// Uint64 folds one 64-bit word into both streams.
func (h *StateHasher) Uint64(v uint64) {
	x := (h.a ^ v) * hashMulA
	h.a = x ^ (x >> 29)
	y := (h.b ^ v) * hashMulB
	h.b = y ^ (y >> 31)
}

// Int64 folds one int64.
func (h *StateHasher) Int64(v int64) { h.Uint64(uint64(v)) }

// Int folds one int.
func (h *StateHasher) Int(v int) { h.Uint64(uint64(int64(v))) }

// Float64 folds one float64 by IEEE-754 bit pattern, so NaN payloads
// and signed zeros — which corrupted runs legitimately produce —
// distinguish states exactly.
func (h *StateHasher) Float64(v float64) { h.Uint64(math.Float64bits(v)) }

// Bool folds one bool.
func (h *StateHasher) Bool(v bool) {
	if v {
		h.Uint64(1)
	} else {
		h.Uint64(0)
	}
}

// Bytes folds a length-prefixed byte slice, so adjacent variable-length
// fields cannot alias each other's encodings. Full 8-byte words are
// folded directly; the tail is zero-padded, which cannot alias because
// the length prefix already separates inputs of different sizes.
func (h *StateHasher) Bytes(p []byte) {
	h.Uint64(uint64(len(p)))
	for len(p) >= 8 {
		h.Uint64(binary.LittleEndian.Uint64(p))
		p = p[8:]
	}
	if len(p) > 0 {
		var tail [8]byte
		copy(tail[:], p)
		h.Uint64(binary.LittleEndian.Uint64(tail[:]))
	}
}

// Sum returns the accumulated digest.
func (h *StateHasher) Sum() Digest { return Digest{h.a, h.b} }

// State is a snapshot of a Forkable target's mid-run execution state.
// It must capture everything that determines the remainder of the run —
// loop positions, module variables, codec/simulation internals AND
// accumulated outputs (or rolling digests of them) — because the
// convergence argument is "equal State ⇒ identical remaining execution
// ⇒ identical outcome".
type State interface {
	// Clone returns an independent deep copy: mutating the clone (or
	// running a target from it) must not affect the original. Read-only
	// workload data (input files, tracks) may be shared.
	Clone() State
	// Digest fingerprints the complete state.
	Digest() Digest
}

// ErrConverged is returned by Forkable.RunFrom when the engine's
// RunControl asked the run to stop. It signals early termination, not a
// target failure.
var ErrConverged = errors.New("propane: run stopped by convergence control")

// RunControl lets the engine observe a resumed run at step boundaries.
type RunControl struct {
	// Check is consulted at the end of every completed step (one
	// iteration, track or file) with the 1-based step count since the
	// resume point and the live state. Returning true asks the target
	// to stop and return ErrConverged. The state is live: Check must
	// not retain or mutate it.
	Check func(step int, st State) bool
}

// Checkpoint is the nil-safe helper targets call at each step boundary:
//
//	if ctl.Checkpoint(step, st) { return nil, propane.ErrConverged }
func (c *RunControl) Checkpoint(step int, st State) bool {
	if c == nil || c.Check == nil {
		return false
	}
	return c.Check(step, st)
}

// Forkable is the optional fast-path contract of a Target. A target
// that implements it can snapshot the fault-free prefix of a run once
// and resume many injected runs from clones of that snapshot.
type Forkable interface {
	Target
	// Snapshot runs the fault-free prefix of tc up to (but not
	// including) the activation-th visit of (module, at) and returns
	// the positioned state. ok=false (with nil error) means the
	// position is unreachable or unsupported — callers fall back to the
	// slow path. The returned State is owned by the caller.
	Snapshot(tc TestCase, module string, at Location, activation int) (st State, ok bool, err error)
	// RunFrom resumes execution from st (which it consumes/mutates),
	// issuing probe visits exactly as the equivalent tail of Run would,
	// and consulting ctl at step boundaries. It returns ErrConverged
	// when ctl stopped the run.
	RunFrom(st State, probe Probe, ctl *RunControl) (any, error)
}

// nextCheckStep is the convergence-comparison backoff schedule: dense
// right after the injection (steps 1-4, where most transient flips are
// overwritten or masked), then geometric (×1.5), so a divergent run
// pays O(log n) digest computations instead of one per step.
func nextCheckStep(s int) int {
	if s < 4 {
		return s + 1
	}
	return s + s/2
}

// ForkStats counts fast-path events. Snapshots counts golden columns
// captured; Forked counts cells executed from a snapshot; Converged and
// MemoHits count early terminations; Fallbacks counts cells that had to
// take the slow path (no snapshot, unreachable position, or a golden
// fork that failed verification).
type ForkStats struct {
	Snapshots int64
	Forked    int64
	Converged int64
	MemoHits  int64
	Fallbacks int64
}

// ForkOutcome classifies how a fork-path cell was resolved.
type ForkOutcome int

const (
	// ForkFellBack: no usable snapshot — the caller must run the cell
	// on the slow path.
	ForkFellBack ForkOutcome = iota
	// ForkRan: executed from the snapshot to natural completion.
	ForkRan
	// ForkConverged: early-terminated on golden-trajectory
	// re-convergence.
	ForkConverged
	// ForkMemoized: early-terminated on a memoized verdict.
	ForkMemoized
)

// FromFork reports whether the cell was resolved on the fast path.
func (o ForkOutcome) FromFork() bool { return o != ForkFellBack }

// ForkRunner executes injection cells on the fork fast path. It caches
// one golden column per (test case, injection time) — the snapshot, the
// golden trajectory's digest trail and the golden output — and a
// per-column memo of post-injection verdicts. Safe for concurrent use.
type ForkRunner struct {
	target Forkable
	spec   Spec
	mod    ModuleInfo

	snapshots atomic.Int64
	forked    atomic.Int64
	converged atomic.Int64
	memoHits  atomic.Int64
	fallbacks atomic.Int64

	mu   sync.Mutex
	cols map[colKey]*forkColumn
}

type colKey struct {
	tc   int // index into the generated test-case list
	time int // injection activation
}

type verdict struct {
	failure, crashed bool
}

// forkColumn is the cached golden context of one (test case, injection
// time) column.
type forkColumn struct {
	once sync.Once
	ok   bool
	base State
	// trail maps scheduled step numbers to the golden trajectory's
	// digests at those steps.
	trail     map[int]Digest
	goldenOut any

	memoMu sync.Mutex
	memo   map[Digest]verdict
}

func (c *forkColumn) memoGet(d Digest) (verdict, bool) {
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	v, ok := c.memo[d]
	return v, ok
}

func (c *forkColumn) memoPut(d Digest, v verdict) {
	c.memoMu.Lock()
	defer c.memoMu.Unlock()
	if _, ok := c.memo[d]; !ok {
		c.memo[d] = v
	}
}

// NewForkRunner builds a fork runner for one campaign. spec and mod
// must be the validated spec and resolved module the campaign runs.
func NewForkRunner(target Forkable, spec Spec, mod ModuleInfo) *ForkRunner {
	return &ForkRunner{target: target, spec: spec, mod: mod, cols: make(map[colKey]*forkColumn)}
}

// Stats returns a snapshot of the fast-path counters.
func (f *ForkRunner) Stats() ForkStats {
	return ForkStats{
		Snapshots: f.snapshots.Load(),
		Forked:    f.forked.Load(),
		Converged: f.converged.Load(),
		MemoHits:  f.memoHits.Load(),
		Fallbacks: f.fallbacks.Load(),
	}
}

// Report publishes the fast-path counters to reg as campaign.fork_*.
func (f *ForkRunner) Report(reg *telemetry.Registry) {
	st := f.Stats()
	reg.Counter("campaign.fork_snapshots").Add(st.Snapshots)
	reg.Counter("campaign.fork_cells").Add(st.Forked)
	reg.Counter("campaign.fork_converged").Add(st.Converged)
	reg.Counter("campaign.fork_memo_hits").Add(st.MemoHits)
	reg.Counter("campaign.fork_fallbacks").Add(st.Fallbacks)
}

// column returns (building on first use) the golden column for the
// test case at index tcIdx and injection time t. Concurrent callers of
// the same column block on one build.
func (f *ForkRunner) column(tcIdx int, tc TestCase, golden any, t int) *forkColumn {
	key := colKey{tc: tcIdx, time: t}
	f.mu.Lock()
	col, ok := f.cols[key]
	if !ok {
		col = &forkColumn{}
		f.cols[key] = col
	}
	f.mu.Unlock()

	col.once.Do(func() {
		base, ok, err := f.target.Snapshot(tc, f.spec.Module, f.spec.InjectAt, t)
		if err != nil || !ok || base == nil {
			return // col.ok stays false: every cell of this column falls back
		}
		// Golden fork: replay the remainder fault-free, recording the
		// digest trail at the comparison schedule.
		trail := make(map[int]Digest)
		next := 1
		ctl := &RunControl{Check: func(step int, st State) bool {
			if step == next {
				trail[step] = st.Digest()
				next = nextCheckStep(step)
			}
			return false
		}}
		out, err := runFromSafely(f.target, base.Clone(), NopProbe{}, ctl)
		if err != nil {
			return
		}
		// Self-check: the golden fork must reproduce the golden verdict.
		// If it does not, the target's Snapshot/RunFrom decomposition is
		// unsound for this column — refuse the fast path rather than
		// risk mislabelled records.
		if f.target.Failed(tc, golden, out) {
			return
		}
		col.base = base
		col.trail = trail
		col.goldenOut = out
		col.memo = make(map[Digest]verdict)
		col.ok = true
		f.snapshots.Add(1)
	})
	return col
}

// RunJob executes one cell on the fast path. tcIdx, tc and golden must
// correspond to j.TC. When the returned outcome is ForkFellBack the
// record is meaningless and the caller must run the slow path.
func (f *ForkRunner) RunJob(tcIdx int, tc TestCase, golden any, j Job) (Record, ForkOutcome) {
	// Persistent fault models (stuck-at, intermittent) break the fast
	// path's soundness argument: convergence and memoization both rest
	// on "equal complete state ⇒ identical remaining execution", but a
	// persistent probe carries future re-assertions that no target
	// snapshot captures — two runs in equal states can still diverge
	// when the fault re-asserts. Refuse the whole cell up front; the
	// fallback is counted (campaign.fork_fallbacks, ForkStats), never
	// silent.
	if f.spec.Fault.Persistent() {
		f.fallbacks.Add(1)
		return Record{}, ForkFellBack
	}
	col := f.column(tcIdx, tc, golden, j.Time)
	if !col.ok {
		f.fallbacks.Add(1)
		return Record{}, ForkFellBack
	}

	// The resumed visit stream starts exactly at the trigger visit, so
	// the probe fires on its first activation.
	probe := &injectProbe{
		module:   f.spec.Module,
		injectAt: f.spec.InjectAt,
		sampleAt: f.spec.SampleAt,
		injTime:  1,
		varName:  f.mod.Vars[j.Var].Name,
		bit:      j.Bit,
		fault:    f.spec.Fault.Normalized(),
	}

	var (
		memoV   *verdict
		next    = 1
		d1      Digest
		haveD1  bool
		matched bool
	)
	ctl := &RunControl{Check: func(step int, st State) bool {
		if step != next {
			return false
		}
		next = nextCheckStep(step)
		// Never stop before the cell's own post-injection sample is
		// taken: Record.State must come from this run, not be inferred.
		if !probe.sampled {
			return false
		}
		d := st.Digest()
		if step == 1 {
			d1, haveD1 = d, true
			if v, ok := col.memoGet(d); ok {
				memoV = &v
				return true
			}
		}
		if g, ok := col.trail[step]; ok && g == d {
			matched = true
			return true
		}
		return false
	}}

	out, err := runFromSafely(f.target, col.base.Clone(), probe, ctl)
	f.forked.Add(1)

	rec := Record{
		TestCase:      tc.ID,
		Var:           f.mod.Vars[j.Var].Name,
		Bit:           j.Bit,
		InjectionTime: j.Time,
		State:         probe.state,
		Injected:      probe.injected,
		Sampled:       probe.sampled,
		FlipErr:       probe.flipErr,
	}
	outcome := ForkRan
	switch {
	case errors.Is(err, ErrConverged) && memoV != nil:
		// An earlier cell of this column reached the same complete
		// post-injection state at step 1, so the remainder — and the
		// verdict — are identical by determinism.
		rec.Failure, rec.Crashed = memoV.failure, memoV.crashed
		f.memoHits.Add(1)
		outcome = ForkMemoized
	case errors.Is(err, ErrConverged) && matched:
		// Re-converged with the golden trajectory: the remainder equals
		// the golden remainder, so the outcome equals the golden output
		// and the slow path's Failed call reduces to this one.
		rec.Failure = f.target.Failed(tc, golden, col.goldenOut)
		f.converged.Add(1)
		outcome = ForkConverged
		if haveD1 {
			col.memoPut(d1, verdict{failure: rec.Failure, crashed: false})
		}
	case err != nil:
		rec.Crashed = true
		rec.Failure = probe.injected
		if haveD1 {
			col.memoPut(d1, verdict{failure: rec.Failure, crashed: true})
		}
	default:
		if probe.injected {
			rec.Failure = f.target.Failed(tc, golden, out)
		}
		if haveD1 {
			col.memoPut(d1, verdict{failure: rec.Failure, crashed: false})
		}
	}
	return rec, outcome
}

// runFromSafely mirrors runSafely for resumed runs: target panics
// (legitimately provoked by corrupted values) become errors.
func runFromSafely(t Forkable, st State, probe Probe, ctl *RunControl) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("propane: target panicked: %v", r)
		}
	}()
	return t.RunFrom(st, probe, ctl)
}
