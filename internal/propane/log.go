package propane

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"edem/internal/bitflip"
)

// The PROPANE-style log format: a self-describing line-oriented text
// format, one injected run per RUN line. The purpose-built conversion
// tool of paper §VII-B is WriteLog/ReadLog plus ToDataset (log → ARFF).
//
//	#PROPANE v1
//	#target 7-Zip
//	#dataset 7Z-A2
//	#module FHandle
//	#inject Entry
//	#sample Exit
//	#fault burst 3 1
//	#vars bytesIn bytesOut crc ...
//	RUN tc=3 var=crc bit=17 t=2 inj=1 smp=1 fail=0 crash=0 state=1024,2048,...
//
// Fields are space-separated; the state vector is comma-separated and
// omitted when no sample was captured. The #fault header carries the
// campaign's fault model as "<model> <width> <persist>" and, like every
// absent-value header, is omitted entirely for the default transient
// model — transient logs are byte-identical to logs written before the
// fault-model axis existed.

// WriteLog serialises a campaign in the PROPANE log format. Header
// lines whose value is absent (empty name, zero location, no vars) are
// omitted entirely: a header keyword with no value is not parseable, so
// emitting it would make the writer's own output unreadable.
func WriteLog(w io.Writer, c *Campaign) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "#PROPANE v1")
	writeHeader(bw, "#target", c.Target)
	writeHeader(bw, "#dataset", c.Spec.Dataset)
	writeHeader(bw, "#module", c.Spec.Module)
	if c.Spec.InjectAt == Entry || c.Spec.InjectAt == Exit {
		fmt.Fprintf(bw, "#inject %s\n", c.Spec.InjectAt)
	}
	if c.Spec.SampleAt == Entry || c.Spec.SampleAt == Exit {
		fmt.Fprintf(bw, "#sample %s\n", c.Spec.SampleAt)
	}
	if f := c.Spec.Fault.Normalized(); !f.IsTransient() {
		fmt.Fprintf(bw, "#fault %s %d %d\n", f.Model, f.Width, f.Persist)
	}
	if len(c.VarNames) > 0 {
		fmt.Fprintf(bw, "#vars %s\n", strings.Join(c.VarNames, " "))
	}
	for i := range c.Records {
		r := &c.Records[i]
		fmt.Fprintf(bw, "RUN tc=%d var=%s bit=%d t=%d inj=%s smp=%s fail=%s crash=%s",
			r.TestCase, r.Var, r.Bit, r.InjectionTime,
			bool01(r.Injected), bool01(r.Sampled), bool01(r.Failure), bool01(r.Crashed))
		// A sampled run can still carry an empty state vector (e.g. a
		// module with no variables); "state=" with no values would not
		// reparse, so the field appears only when there are values.
		if r.Sampled && len(r.State) > 0 {
			parts := make([]string, len(r.State))
			for j, v := range r.State {
				parts[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
			fmt.Fprintf(bw, " state=%s", strings.Join(parts, ","))
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

func writeHeader(w io.Writer, keyword, value string) {
	if value != "" {
		fmt.Fprintf(w, "%s %s\n", keyword, value)
	}
}

// ReadLog parses a PROPANE log stream written by WriteLog.
func ReadLog(r io.Reader) (*Campaign, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	c := &Campaign{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "#PROPANE"):
			// version line; only v1 exists.
		case line == "#target" || line == "#dataset" || line == "#module" || line == "#vars":
			// A header keyword with an empty value (hand-written logs, or
			// logs from writers that emitted empty headers): nothing to set.
		case strings.HasPrefix(line, "#target "):
			c.Target = line[len("#target "):]
		case strings.HasPrefix(line, "#dataset "):
			c.Spec.Dataset = line[len("#dataset "):]
		case strings.HasPrefix(line, "#module "):
			c.Spec.Module = line[len("#module "):]
		case strings.HasPrefix(line, "#inject "):
			loc, err := parseLocation(line[len("#inject "):])
			if err != nil {
				return nil, fmt.Errorf("propane: line %d: %w", lineNo, err)
			}
			c.Spec.InjectAt = loc
		case strings.HasPrefix(line, "#sample "):
			loc, err := parseLocation(line[len("#sample "):])
			if err != nil {
				return nil, fmt.Errorf("propane: line %d: %w", lineNo, err)
			}
			c.Spec.SampleAt = loc
		case line == "#fault":
			// Empty fault header: nothing to set (transient default).
		case strings.HasPrefix(line, "#fault "):
			f, err := parseFaultHeader(line[len("#fault "):])
			if err != nil {
				return nil, fmt.Errorf("propane: line %d: %w", lineNo, err)
			}
			c.Spec.Fault = f
		case strings.HasPrefix(line, "#vars "):
			c.VarNames = strings.Fields(line[len("#vars "):])
		case strings.HasPrefix(line, "RUN "):
			rec, err := parseRun(line[len("RUN "):])
			if err != nil {
				return nil, fmt.Errorf("propane: line %d: %w", lineNo, err)
			}
			c.Records = append(c.Records, rec)
		default:
			return nil, fmt.Errorf("propane: line %d: unrecognised line %q", lineNo, line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("propane: read log: %w", err)
	}
	return c, nil
}

// parseFaultHeader parses the "#fault <model> <width> <persist>" header
// value. Width and persist are optional and default to 1.
func parseFaultHeader(s string) (bitflip.Fault, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 || len(fields) > 3 {
		return bitflip.Fault{}, fmt.Errorf("bad fault header %q", s)
	}
	model, err := bitflip.ParseModel(fields[0])
	if err != nil {
		return bitflip.Fault{}, err
	}
	f := bitflip.Fault{Model: model, Width: 1, Persist: 1}
	if len(fields) > 1 {
		if f.Width, err = strconv.Atoi(fields[1]); err != nil {
			return bitflip.Fault{}, fmt.Errorf("bad fault width %q", fields[1])
		}
	}
	if len(fields) > 2 {
		if f.Persist, err = strconv.Atoi(fields[2]); err != nil {
			return bitflip.Fault{}, fmt.Errorf("bad fault persist %q", fields[2])
		}
	}
	if err := f.Validate(); err != nil {
		return bitflip.Fault{}, err
	}
	return f, nil
}

func parseLocation(s string) (Location, error) {
	switch strings.TrimSpace(s) {
	case "Entry":
		return Entry, nil
	case "Exit":
		return Exit, nil
	default:
		return 0, fmt.Errorf("bad location %q", s)
	}
}

func parseRun(rest string) (Record, error) {
	var rec Record
	for _, field := range strings.Fields(rest) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return rec, fmt.Errorf("bad field %q", field)
		}
		var err error
		switch key {
		case "tc":
			rec.TestCase, err = strconv.Atoi(val)
		case "var":
			rec.Var = val
		case "bit":
			rec.Bit, err = strconv.Atoi(val)
		case "t":
			rec.InjectionTime, err = strconv.Atoi(val)
		case "inj":
			rec.Injected, err = parse01(val)
		case "smp":
			rec.Sampled, err = parse01(val)
		case "fail":
			rec.Failure, err = parse01(val)
		case "crash":
			rec.Crashed, err = parse01(val)
		case "state":
			parts := strings.Split(val, ",")
			rec.State = make([]float64, len(parts))
			for i, p := range parts {
				rec.State[i], err = strconv.ParseFloat(p, 64)
				if err != nil {
					return rec, fmt.Errorf("bad state value %q", p)
				}
			}
		default:
			return rec, fmt.Errorf("unknown field %q", key)
		}
		if err != nil {
			return rec, fmt.Errorf("field %q: %w", field, err)
		}
	}
	return rec, nil
}

func bool01(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

func parse01(s string) (bool, error) {
	switch s {
	case "0":
		return false, nil
	case "1":
		return true, nil
	default:
		return false, fmt.Errorf("bad boolean %q", s)
	}
}
