package propane

import (
	"context"
	"errors"
	"math"
	"testing"

	"edem/internal/dataset"
)

func TestToDataset(t *testing.T) {
	camp, err := Run(context.Background(), &toyTarget{}, toySpec())
	if err != nil {
		t.Fatal(err)
	}
	d, err := ToDataset(camp)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.Name != "TOY-1" {
		t.Errorf("name = %q", d.Name)
	}
	if d.Len() != camp.Usable() {
		t.Errorf("instances = %d, usable = %d", d.Len(), camp.Usable())
	}
	if len(d.Attrs) != 3 || d.Attrs[0].Name != "acc" {
		t.Errorf("attrs = %v", d.Attrs)
	}
	if d.ClassValues[0] != ClassNonFailure || d.ClassValues[1] != ClassFailure {
		t.Errorf("classes = %v", d.ClassValues)
	}
	counts := d.ClassCounts()
	if counts[1] != camp.Failures() {
		t.Errorf("positives = %d, failures = %d", counts[1], camp.Failures())
	}
}

func TestToDatasetSkipsUnsampled(t *testing.T) {
	c := &Campaign{
		Spec:     Spec{Dataset: "D"},
		VarNames: []string{"a"},
		Records: []Record{
			{Injected: true, Sampled: false, Failure: true},
			{Injected: true, Sampled: true, State: []float64{1}, Failure: false},
		},
	}
	d, err := ToDataset(c)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("instances = %d, want 1", d.Len())
	}
}

func TestToDatasetEmpty(t *testing.T) {
	c := &Campaign{Spec: Spec{Dataset: "D"}, VarNames: []string{"a"}}
	if _, err := ToDataset(c); !errors.Is(err, ErrNoRecords) {
		t.Fatalf("err = %v, want ErrNoRecords", err)
	}
}

func TestToDatasetClampsNonFinite(t *testing.T) {
	c := &Campaign{
		Spec:     Spec{Dataset: "D"},
		VarNames: []string{"a", "b", "c"},
		Records: []Record{
			{Sampled: true, State: []float64{math.NaN(), math.Inf(1), math.Inf(-1)}, Failure: true},
		},
	}
	d, err := ToDataset(c)
	if err != nil {
		t.Fatal(err)
	}
	vs := d.Instances[0].Values
	if vs[0] != 1e308 || vs[1] != 1e308 || vs[2] != -1e308 {
		t.Fatalf("clamped values = %v", vs)
	}
	if dataset.IsMissing(vs[0]) {
		t.Fatal("NaN must be clamped, not treated as missing")
	}
}
