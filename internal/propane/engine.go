package propane

import (
	"context"
	"errors"
	"fmt"
	"time"

	"edem/internal/bitflip"
	"edem/internal/parallel"
	"edem/internal/telemetry"
)

// Spec configures one fault-injection campaign, producing one dataset in
// the sense of Table II: a (target, module, injection location, sampling
// location) combination exercised across test cases, variables, bit
// positions and injection times.
type Spec struct {
	// Dataset is the dataset name, e.g. "FG-A2".
	Dataset string
	// Module is the instrumented module under injection.
	Module string
	// InjectAt and SampleAt choose the instrumentation locations.
	InjectAt Location
	SampleAt Location
	// InjectionTimes lists the 1-based activation indices of the
	// injection location at which the flip is performed. Each run uses
	// exactly one of them (single-fault model).
	InjectionTimes []int
	// TestCases is the number of workload configurations to generate.
	TestCases int
	// Seed drives test-case generation.
	Seed uint64
	// Workers bounds campaign parallelism; 0 draws on the process-wide
	// scheduler budget (parallel.SetBudget, default all cores).
	Workers int
	// BitStride samples every BitStride-th bit position (1 = every bit,
	// the paper's configuration). Larger strides scale campaigns down
	// while preserving coverage of sign, exponent and mantissa regions.
	BitStride int
	// Fault selects the fault model applied at each cell. The zero
	// value is the default transient single-bit flip, which keeps the
	// spec's plan hash, journal and ARFF output byte-identical to specs
	// that predate the fault-model axis. The model does not change the
	// job enumeration — every model injects at the same (tc, var, bit,
	// time) cells — only what each injection does to the variable.
	Fault bitflip.Fault
	// Fork opts into the golden-state forking fast path for targets
	// implementing Forkable (see fork.go). It is an execution knob, not
	// a result-determining parameter: records are bit-identical with it
	// on or off, and it is deliberately excluded from campaign plan
	// hashes. Non-Forkable targets fall back to the slow path.
	Fork bool
}

// Validate checks the spec for structural problems.
func (s *Spec) Validate() error {
	switch {
	case s.Dataset == "":
		return errors.New("propane: spec missing dataset name")
	case s.Module == "":
		return errors.New("propane: spec missing module")
	case s.InjectAt != Entry && s.InjectAt != Exit:
		return fmt.Errorf("propane: bad injection location %v", s.InjectAt)
	case s.SampleAt != Entry && s.SampleAt != Exit:
		return fmt.Errorf("propane: bad sampling location %v", s.SampleAt)
	case len(s.InjectionTimes) == 0:
		return errors.New("propane: spec needs at least one injection time")
	case s.TestCases <= 0:
		return errors.New("propane: spec needs at least one test case")
	}
	for _, t := range s.InjectionTimes {
		if t < 1 {
			return fmt.Errorf("propane: injection time %d must be >= 1", t)
		}
	}
	if s.BitStride < 0 {
		return fmt.Errorf("propane: bit stride %d must be >= 0", s.BitStride)
	}
	if err := s.Fault.Validate(); err != nil {
		return err
	}
	return nil
}

func (s *Spec) bitStride() int {
	if s.BitStride <= 0 {
		return 1
	}
	return s.BitStride
}

// BitPlan returns the bit positions a campaign injects for a variable
// kind. With stride 1 every bit is flipped, the paper's configuration.
// Larger strides thin out only the low-order bits (for float64, the low
// mantissa; for integers, the low magnitude bits) while always covering
// the top 16 bits densely — the sign, exponent and high-order region
// where flips are consequential. A uniform stride would silently skip
// most of that region and with it most failure modes.
func BitPlan(kind bitflip.Kind, stride int) []int {
	n := kind.Bits()
	if stride <= 1 {
		stride = 1
	}
	const denseTop = 16
	if n <= denseTop || stride == 1 {
		bits := make([]int, n)
		for i := range bits {
			bits[i] = i
		}
		return bits
	}
	var bits []int
	for b := 0; b < n-denseTop; b += stride {
		bits = append(bits, b)
	}
	for b := n - denseTop; b < n; b++ {
		bits = append(bits, b)
	}
	return bits
}

// Job identifies one injected run within a campaign's injection space:
// indices into the generated test-case list and the module's variable
// list, plus the bit position and the 1-based injection activation.
// Jobs are pure coordinates — they carry no results — so a campaign's
// work plan can be enumerated, sharded and journaled without executing
// anything (internal/campaign builds on this).
type Job struct {
	TC   int
	Var  int
	Bit  int
	Time int
}

// Jobs enumerates the spec's injection space against a module in
// canonical order: test case (outermost), variable, bit plan, injection
// time (innermost). Every execution path — Run here and the journaled
// engine in internal/campaign — derives its work from this single
// enumeration, which is what makes sharded, resumed and uninterrupted
// campaigns produce records in identical order.
func (s *Spec) Jobs(mod ModuleInfo) []Job {
	var jobs []Job
	stride := s.bitStride()
	for tc := 0; tc < s.TestCases; tc++ {
		for v, vd := range mod.Vars {
			for _, bit := range BitPlan(vd.Kind, stride) {
				for _, t := range s.InjectionTimes {
					jobs = append(jobs, Job{TC: tc, Var: v, Bit: bit, Time: t})
				}
			}
		}
	}
	return jobs
}

// Record is the outcome of one injected run: which fault was injected,
// the module state sampled at the sampling location, and whether the run
// violated the failure specification.
type Record struct {
	TestCase      int
	Var           string
	Bit           int
	InjectionTime int
	// State holds the sampled values of the module's variables, in
	// ModuleInfo order. Nil if the sampling point was never reached
	// after injection (e.g. the run crashed first).
	State []float64
	// Injected reports whether the injection activation was reached.
	Injected bool
	// Sampled reports whether the state was captured post-injection.
	Sampled bool
	// Failure reports whether the run violated the failure spec (an
	// output deviation from the golden run, a domain-specific violation,
	// or a crash).
	Failure bool
	// Crashed reports whether the run panicked or returned an error.
	Crashed bool
	// FlipErr reports that the bit flip itself failed (VarRef.FlipBit
	// returned an error), i.e. the injection was a silent no-op. Such
	// records are visible rather than masquerading as benign runs.
	FlipErr bool
}

// Campaign is the result of running a Spec against a target.
type Campaign struct {
	Spec     Spec
	Target   string
	VarNames []string
	Records  []Record
	// Golden holds one output per test case from the fault-free runs.
	goldenOutputs []any
}

// Failures counts records labelled as failures.
func (c *Campaign) Failures() int {
	n := 0
	for i := range c.Records {
		if c.Records[i].Failure {
			n++
		}
	}
	return n
}

// Usable counts records that produced a sampled state (and therefore a
// dataset instance).
func (c *Campaign) Usable() int {
	n := 0
	for i := range c.Records {
		if c.Records[i].Sampled {
			n++
		}
	}
	return n
}

// NewCampaign assembles a Campaign from externally executed runs:
// records must be in Jobs order (one per job) and golden holds one
// fault-free output per test case (nil when the assembling layer
// restored every record from a journal without re-running goldens).
// internal/campaign uses this to materialise resumed campaigns.
func NewCampaign(spec Spec, targetName string, varNames []string, records []Record, golden []any) *Campaign {
	return &Campaign{
		Spec:          spec,
		Target:        targetName,
		VarNames:      varNames,
		Records:       records,
		goldenOutputs: golden,
	}
}

// ErrModuleNotFound reports a spec naming a module the target lacks.
var ErrModuleNotFound = errors.New("propane: module not found in target")

// Run executes the full campaign: golden runs for every test case, then
// one injected run per (test case, variable, bit, injection time),
// fanned out across workers. Results are deterministic for a given spec
// and target: records appear in job order regardless of scheduling.
//
// Each campaign is recorded as a "campaign" telemetry phase; the
// campaign.* counters (runs injected, states sampled, failure labels,
// crashes, golden runs) and the campaign.run_ns per-run wall-clock
// histogram report where fault-injection volume goes.
func Run(ctx context.Context, target Target, spec Spec) (*Campaign, error) {
	ctx, span := telemetry.StartSpan(ctx, "campaign")
	defer span.End()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mod, ok := Module(target, spec.Module)
	if !ok {
		return nil, fmt.Errorf("%w: %q in %q", ErrModuleNotFound, spec.Module, target.Name())
	}

	tcs := target.TestCases(spec.TestCases, spec.Seed)
	golden := make([]any, len(tcs))
	for i, tc := range tcs {
		out, err := RunGolden(target, tc)
		if err != nil {
			return nil, fmt.Errorf("propane: golden run for test case %d: %w", tc.ID, err)
		}
		golden[i] = out
	}

	jobs := spec.Jobs(mod)

	reg := telemetry.FromContext(ctx)
	reg.Counter("campaign.golden_runs").Add(int64(len(tcs)))
	metrics := NewRunMetrics(reg).WithFault(spec.Fault)

	// Fast path: fork every cell of a column from one golden snapshot
	// instead of re-running the fault-free prefix per cell. Opt-in, and
	// only for targets that implement the Forkable contract; results
	// are bit-identical either way (see fork.go).
	var fork *ForkRunner
	if spec.Fork {
		if ft, ok := target.(Forkable); ok {
			fork = NewForkRunner(ft, spec, mod)
		}
	}

	// Injected runs are independent, so they fan out on the shared
	// scheduler; indexed writes keep records in job order regardless of
	// scheduling, and spec.Workers (0 = the global budget) bounds this
	// campaign's share of it.
	records := make([]Record, len(jobs))
	if err := parallel.ForEach(ctx, len(jobs), spec.Workers, func(idx int) error {
		var runStart time.Time
		if metrics.Enabled() {
			runStart = time.Now()
		}
		j := jobs[idx]
		var rec Record
		fromFork := false
		if fork != nil {
			var outcome ForkOutcome
			rec, outcome = fork.RunJob(j.TC, tcs[j.TC], golden[j.TC], j)
			fromFork = outcome.FromFork()
		}
		if !fromFork {
			rec = RunJob(target, spec, mod, tcs[j.TC], golden[j.TC], j)
		}
		records[idx] = rec
		if metrics.Enabled() {
			metrics.Observe(rec, time.Since(runStart))
		}
		return nil
	}); err != nil {
		return nil, fmt.Errorf("propane: campaign cancelled: %w", err)
	}
	if fork != nil {
		fork.Report(reg)
	}

	varNames := make([]string, len(mod.Vars))
	for i, v := range mod.Vars {
		varNames[i] = v.Name
	}
	return NewCampaign(spec, target.Name(), varNames, records, golden), nil
}

// RunMetrics hoists the per-run campaign.* telemetry handles out of the
// injection loop so every execution path (Run above and the journaled
// engine in internal/campaign) reports identical counters. A RunMetrics
// built from a nil registry absorbs observations behind Enabled.
type RunMetrics struct {
	reg            *telemetry.Registry
	cInjected      *telemetry.Counter
	cActivated     *telemetry.Counter
	cSampled       *telemetry.Counter
	cFailures      *telemetry.Counter
	cCrashes       *telemetry.Counter
	cFlipErrs      *telemetry.Counter
	cFaultModelErr *telemetry.Counter
	faultModel     bool
	hRunNS         *telemetry.Histogram
}

// NewRunMetrics resolves the campaign.* run counters (runs injected,
// injections activated, states sampled, failure labels, crashes) and
// the campaign.run_ns wall-clock histogram against reg. A nil reg
// yields a disabled RunMetrics.
func NewRunMetrics(reg *telemetry.Registry) *RunMetrics {
	return &RunMetrics{
		reg:            reg,
		cInjected:      reg.Counter("campaign.runs_injected"),
		cActivated:     reg.Counter("campaign.injections_activated"),
		cSampled:       reg.Counter("campaign.states_sampled"),
		cFailures:      reg.Counter("campaign.failures"),
		cCrashes:       reg.Counter("campaign.crashes"),
		cFlipErrs:      reg.Counter("campaign.flip_errors"),
		cFaultModelErr: reg.Counter("campaign.fault_model_errors"),
		hRunNS:         reg.Histogram("campaign.run_ns"),
	}
}

// WithFault tells the metrics which fault model the campaign runs
// under, so flip errors on a non-transient campaign are additionally
// attributed to campaign.fault_model_errors — the counter that makes
// unsupported fault-model × variable combinations visible instead of
// letting them hide among ordinary flip errors. Returns m for chaining.
func (m *RunMetrics) WithFault(f bitflip.Fault) *RunMetrics {
	if m != nil {
		m.faultModel = !f.IsTransient()
	}
	return m
}

// Enabled reports whether observations will be recorded; hot loops use
// it to skip the time.Now calls feeding the run histogram.
func (m *RunMetrics) Enabled() bool { return m != nil && m.reg != nil }

// Observe records the outcome and wall-clock duration of one injected
// run.
func (m *RunMetrics) Observe(rec Record, d time.Duration) {
	if !m.Enabled() {
		return
	}
	m.hRunNS.ObserveDuration(d)
	m.cInjected.Inc()
	if rec.Injected {
		m.cActivated.Inc()
	}
	if rec.Sampled {
		m.cSampled.Inc()
	}
	if rec.Failure {
		m.cFailures.Inc()
	}
	if rec.Crashed {
		m.cCrashes.Inc()
	}
	if rec.FlipErr {
		m.cFlipErrs.Inc()
		if m.faultModel {
			m.cFaultModelErr.Inc()
		}
	}
}

// RunGolden executes one fault-free run of a test case, converting
// target panics into errors. The returned output is the reference the
// failure specification compares injected outputs against.
func RunGolden(target Target, tc TestCase) (any, error) {
	return runSafely(target, tc, NopProbe{})
}

// RunJob performs the single injected run identified by j and
// classifies its outcome. tc and golden must correspond to j.TC, and
// mod to spec.Module. It never returns an error: crashes provoked by
// the injected corruption are data (Record.Crashed), not failures of
// the campaign machinery.
func RunJob(target Target, spec Spec, mod ModuleInfo, tc TestCase, golden any, j Job) Record {
	return runInjected(target, spec, mod, tc, golden, j.Var, j.Bit, j.Time)
}

// runInjected performs one injected run and classifies the outcome.
func runInjected(target Target, spec Spec, mod ModuleInfo, tc TestCase, golden any, varIdx, bit, injTime int) Record {
	probe := &injectProbe{
		module:   spec.Module,
		injectAt: spec.InjectAt,
		sampleAt: spec.SampleAt,
		injTime:  injTime,
		varName:  mod.Vars[varIdx].Name,
		bit:      bit,
		fault:    spec.Fault.Normalized(),
	}
	out, err := runSafely(target, tc, probe)
	rec := Record{
		TestCase:      tc.ID,
		Var:           mod.Vars[varIdx].Name,
		Bit:           bit,
		InjectionTime: injTime,
		State:         probe.state,
		Injected:      probe.injected,
		Sampled:       probe.sampled,
		FlipErr:       probe.flipErr,
	}
	switch {
	case err != nil:
		rec.Crashed = true
		rec.Failure = probe.injected
	case probe.injected:
		rec.Failure = target.Failed(tc, golden, out)
	}
	return rec
}

// runSafely executes target.Run converting panics (which corrupted
// values can legitimately provoke inside target code) into errors, so a
// crash is just another observable failure mode of an injected run.
func runSafely(target Target, tc TestCase, probe Probe) (out any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("propane: target panicked: %v", r)
		}
	}()
	return target.Run(tc, probe)
}

// injectProbe corrupts one variable at the configured activation of the
// injection location, then samples the module state at the first
// subsequent visit of the sampling location. When injection and sampling
// share a location the sample is taken in the same visit, immediately
// after the corruption (paper §VI-A: "inject errors at the end of a
// module, and sample straight after the injection").
//
// The corruption shape is the probe's fault model. All four models
// apply the same XOR mask at the injection activation (for transient
// and burst that is the whole fault); the persistent models (stuck-at,
// intermittent) additionally re-assert the corrupted bit value at every
// subsequent activation of the injection location — stuck-at for the
// rest of the run, intermittent for fault.Persist activations in total
// — so the probe keeps receiving visits after the state was sampled.
type injectProbe struct {
	module   string
	injectAt Location
	sampleAt Location
	injTime  int
	varName  string
	bit      int
	fault    bitflip.Fault

	activations int
	injected    bool
	sampled     bool
	flipErr     bool
	state       []float64

	// Persistent-model bookkeeping: the masked stuck bit value being
	// re-asserted, how many activations have asserted it, and whether
	// the fault has been released (intermittent past its persist count,
	// or an apply-time fault-model error).
	stuckMask uint64
	stuckVal  uint64
	asserts   int
	released  bool
}

var _ Probe = (*injectProbe)(nil)

func (p *injectProbe) Visit(module string, loc Location, vars []VarRef) {
	if module != p.module {
		return
	}
	reasserting := p.injected && !p.released && p.fault.Persistent()
	if p.sampled && !reasserting {
		return
	}
	if loc == p.injectAt {
		p.activations++
		if !p.injected && p.activations == p.injTime {
			p.apply(vars)
			p.injected = true
			if p.sampleAt == loc && !p.sampled {
				p.sample(vars)
			}
			return
		}
		if reasserting {
			p.reassert(vars)
		}
	}
	if loc == p.sampleAt && p.injected && !p.sampled {
		p.sample(vars)
	}
}

// apply performs the injection-activation corruption on the probe's
// variable. A fault that cannot be applied (mask outside the variable's
// kind, or a hand-built VarRef without raw-bit accessors under a
// non-transient model) is a flip error: surfaced on the record and in
// campaign.fault_model_errors, never a silently benign run.
func (p *injectProbe) apply(vars []VarRef) {
	for _, v := range vars {
		if v.Name != p.varName {
			continue
		}
		if p.fault.IsTransient() {
			if err := v.FlipBit(p.bit); err != nil {
				p.flipErr = true
			}
			return
		}
		mask, err := p.fault.Mask(v.Kind, p.bit)
		if err != nil || v.Bits == nil || v.SetBits == nil {
			p.flipErr = true
			p.released = true
			return
		}
		raw := v.Bits() ^ mask
		v.SetBits(raw)
		if p.fault.Persistent() {
			p.stuckMask = mask
			p.stuckVal = raw & mask
			p.noteAssert()
		}
		return
	}
}

// reassert forces the stuck bit value back into the variable at a
// post-injection activation of the injection location.
func (p *injectProbe) reassert(vars []VarRef) {
	for _, v := range vars {
		if v.Name != p.varName {
			continue
		}
		v.SetBits(v.Bits()&^p.stuckMask | p.stuckVal)
		p.noteAssert()
		return
	}
}

// noteAssert counts one assertion of the stuck value and releases an
// intermittent fault once it has been asserted fault.Persist times.
// Stuck-at faults never release.
func (p *injectProbe) noteAssert() {
	p.asserts++
	if p.fault.Model == bitflip.Intermittent && p.asserts >= p.fault.Persist {
		p.released = true
	}
}

func (p *injectProbe) sample(vars []VarRef) {
	p.state = make([]float64, len(vars))
	for i, v := range vars {
		p.state[i] = v.Read()
	}
	p.sampled = true
}
