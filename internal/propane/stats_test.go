package propane

import (
	"context"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	camp, err := Run(context.Background(), &toyTarget{}, toySpec())
	if err != nil {
		t.Fatal(err)
	}
	stats := Summarize(camp)
	if len(stats) != 3 {
		t.Fatalf("stats = %d vars", len(stats))
	}
	// Order follows the module declaration.
	if stats[0].Var != "acc" || stats[1].Var != "gate" || stats[2].Var != "junk" {
		t.Fatalf("order: %v %v %v", stats[0].Var, stats[1].Var, stats[2].Var)
	}
	totalInjected, totalFailures := 0, 0
	for _, s := range stats {
		totalInjected += s.Injected
		totalFailures += s.Failures
		if s.Injected != 64*3*2 { // bits x test cases x times
			t.Errorf("%s injected = %d", s.Var, s.Injected)
		}
	}
	if totalFailures != camp.Failures() {
		t.Fatalf("stats failures %d != campaign %d", totalFailures, camp.Failures())
	}
	// The dead variable never fails.
	if stats[2].Failures != 0 {
		t.Errorf("junk failures = %d", stats[2].Failures)
	}
	if stats[0].FailureRate() <= 0 {
		t.Error("acc failure rate should be positive")
	}
}

func TestFormatStats(t *testing.T) {
	stats := []VarStat{
		{Var: "quiet", Injected: 10, Failures: 0},
		{Var: "loud", Injected: 10, Failures: 8, Crashes: 2, Unsampled: 1},
	}
	s := FormatStats(stats)
	if !strings.Contains(s, "loud") || !strings.Contains(s, "80.0%") {
		t.Errorf("format:\n%s", s)
	}
	// Sorted by failure rate: loud first.
	if strings.Index(s, "loud") > strings.Index(s, "quiet") {
		t.Error("stats not sorted by failure rate")
	}
}

func TestVarStatZero(t *testing.T) {
	var v VarStat
	if v.FailureRate() != 0 {
		t.Fatal("zero stat rate")
	}
}
