// Package propane implements the fault-injection environment the paper
// builds on (PROPANE, Hiller et al. [12]): golden-run capture, single
// transient bit-flip injection into instrumented variables at configured
// activation times, module-state sampling at entry/exit locations, a
// textual log format, and parallel campaign execution.
//
// A target system exposes instrumented modules. During a run the target
// calls Probe.Visit at every instrumentation point (module entry or exit)
// passing live references to its variables; the engine uses those
// references to inject exactly one bit flip per run and to record the
// sampled state that becomes one row of a fault-injection dataset.
//
// Role in the methodology: Step 1 (fault injection analysis) and, via
// ToDataset, the input to Step 2. Ownership/concurrency: Target
// implementations must be stateless values whose Run builds all mutable
// state per call, because campaign workers invoke Run concurrently on
// one shared Target; a Probe instance, by contrast, belongs to exactly
// one run. Run (and the campaign engine wrapping it) parallelises over
// the shared internal/parallel budget with per-cell determinism — the
// resulting Campaign is scheduling-invariant and owned by the caller.
package propane

import (
	"fmt"
	"math"

	"edem/internal/bitflip"
)

// Location is an instrumentation point within a module.
type Location int

// Instrumented locations: the entry point and exit point of a module
// (paper §VI-D: "the entry-point and exit-point of each module were
// instrumented locations").
const (
	Entry Location = iota + 1
	Exit
)

// String returns the paper's spelling of the location.
func (l Location) String() string {
	switch l {
	case Entry:
		return "Entry"
	case Exit:
		return "Exit"
	default:
		return fmt.Sprintf("Location(%d)", int(l))
	}
}

// VarRef is a live reference to one instrumented variable, provided by
// the target at each instrumentation visit. Read returns a numeric view
// of the current value (used for state sampling); FlipBit mutates the
// underlying variable by toggling one bit of its machine representation
// (the transient fault model). Bits and SetBits expose the raw machine
// representation, zero-extended to 64 bits — the richer fault models
// (burst, stuck-at, intermittent) corrupt and re-assert through them.
//
// Hand-built VarRefs may leave Bits/SetBits nil; such variables support
// only the transient model and every other model surfaces a flip error
// at apply time rather than silently recording an uninjected run.
type VarRef struct {
	Name    string
	Kind    bitflip.Kind
	Read    func() float64
	FlipBit func(bit int) error
	Bits    func() uint64
	SetBits func(bits uint64)
}

// Float64Ref adapts a *float64 to a VarRef.
func Float64Ref(name string, p *float64) VarRef {
	return VarRef{
		Name: name,
		Kind: bitflip.Float64,
		Read: func() float64 { return *p },
		FlipBit: func(bit int) error {
			v, err := bitflip.Float64Bit(*p, bit)
			if err != nil {
				return err
			}
			*p = v
			return nil
		},
		Bits:    func() uint64 { return math.Float64bits(*p) },
		SetBits: func(bits uint64) { *p = math.Float64frombits(bits) },
	}
}

// Float32Ref adapts a *float32 to a VarRef.
func Float32Ref(name string, p *float32) VarRef {
	return VarRef{
		Name: name,
		Kind: bitflip.Float32,
		Read: func() float64 { return float64(*p) },
		FlipBit: func(bit int) error {
			v, err := bitflip.Float32Bit(*p, bit)
			if err != nil {
				return err
			}
			*p = v
			return nil
		},
		Bits:    func() uint64 { return uint64(math.Float32bits(*p)) },
		SetBits: func(bits uint64) { *p = math.Float32frombits(uint32(bits)) },
	}
}

// Int64Ref adapts a *int64 to a VarRef.
func Int64Ref(name string, p *int64) VarRef {
	return VarRef{
		Name: name,
		Kind: bitflip.Int64,
		Read: func() float64 { return float64(*p) },
		FlipBit: func(bit int) error {
			v, err := bitflip.Int64Bit(*p, bit)
			if err != nil {
				return err
			}
			*p = v
			return nil
		},
		Bits:    func() uint64 { return uint64(*p) },
		SetBits: func(bits uint64) { *p = int64(bits) },
	}
}

// Int32Ref adapts a *int32 to a VarRef.
func Int32Ref(name string, p *int32) VarRef {
	return VarRef{
		Name: name,
		Kind: bitflip.Int32,
		Read: func() float64 { return float64(*p) },
		FlipBit: func(bit int) error {
			v, err := bitflip.Int32Bit(*p, bit)
			if err != nil {
				return err
			}
			*p = v
			return nil
		},
		Bits:    func() uint64 { return uint64(uint32(*p)) },
		SetBits: func(bits uint64) { *p = int32(uint32(bits)) },
	}
}

// Uint64Ref adapts a *uint64 to a VarRef.
func Uint64Ref(name string, p *uint64) VarRef {
	return VarRef{
		Name: name,
		Kind: bitflip.Uint64,
		Read: func() float64 { return float64(*p) },
		FlipBit: func(bit int) error {
			v, err := bitflip.Uint64Bit(*p, bit)
			if err != nil {
				return err
			}
			*p = v
			return nil
		},
		Bits:    func() uint64 { return *p },
		SetBits: func(bits uint64) { *p = bits },
	}
}

// IntRef adapts a *int to a VarRef, treating it as 64-bit.
func IntRef(name string, p *int) VarRef {
	return VarRef{
		Name: name,
		Kind: bitflip.Int64,
		Read: func() float64 { return float64(*p) },
		FlipBit: func(bit int) error {
			v, err := bitflip.Int64Bit(int64(*p), bit)
			if err != nil {
				return err
			}
			*p = int(v)
			return nil
		},
		Bits:    func() uint64 { return uint64(int64(*p)) },
		SetBits: func(bits uint64) { *p = int(int64(bits)) },
	}
}

// BoolRef adapts a *bool to a VarRef (false=0, true=1).
func BoolRef(name string, p *bool) VarRef {
	return VarRef{
		Name: name,
		Kind: bitflip.Bool,
		Read: func() float64 {
			if *p {
				return 1
			}
			return 0
		},
		FlipBit: func(bit int) error {
			v, err := bitflip.BoolBit(*p, bit)
			if err != nil {
				return err
			}
			*p = v
			return nil
		},
		Bits: func() uint64 {
			if *p {
				return 1
			}
			return 0
		},
		SetBits: func(bits uint64) { *p = bits&1 == 1 },
	}
}

// Probe receives instrumentation visits from a running target. The
// engine installs probes that inject and sample; golden runs install a
// recording probe; detector validation installs an asserting probe.
type Probe interface {
	// Visit is called by the target at every instrumentation point with
	// live references to the module's variables, in a stable order.
	Visit(module string, loc Location, vars []VarRef)
}

// NopProbe ignores all visits. Targets can use it for plain execution.
type NopProbe struct{}

// Visit implements Probe.
func (NopProbe) Visit(string, Location, []VarRef) {}

var _ Probe = NopProbe{}

// VarDecl declares an instrumented variable in a module's interface.
type VarDecl struct {
	Name string
	Kind bitflip.Kind
}

// ModuleInfo describes one instrumented module of a target system.
type ModuleInfo struct {
	Name string
	Vars []VarDecl
}

// TestCase is one workload configuration for a target run. ID is unique
// within a generated suite; Seed makes the workload reproducible.
type TestCase struct {
	ID   int
	Seed uint64
	// Params carries target-specific knobs (e.g. aircraft mass, wind
	// speed, file count) purely for reporting.
	Params map[string]float64
}

// Target is a system under fault injection. Implementations live in
// internal/targets.
type Target interface {
	// Name returns the short system name (e.g. "7-Zip").
	Name() string
	// Modules lists the instrumented modules and their variables.
	Modules() []ModuleInfo
	// TestCases generates n deterministic workload configurations.
	TestCases(n int, seed uint64) []TestCase
	// Run executes one test case, calling probe at every
	// instrumentation point, and returns an opaque output value.
	Run(tc TestCase, probe Probe) (any, error)
	// Failed decides whether an injected run's output constitutes a
	// failure with respect to the golden run's output (the failure
	// specification of paper §VI-F).
	Failed(tc TestCase, golden, observed any) bool
}

// Module returns the ModuleInfo with the given name from a target.
func Module(t Target, name string) (ModuleInfo, bool) {
	for _, m := range t.Modules() {
		if m.Name == name {
			return m, true
		}
	}
	return ModuleInfo{}, false
}
