package propane

import (
	"fmt"
)

// TraceEntry is one sampled state in a propagation trace.
type TraceEntry struct {
	// Activation is the 1-based activation index of the traced location.
	Activation int
	// State holds the module variables at that activation.
	State []float64
}

// Trace is the full post-injection history of a module's state — the
// propagation analysis PROPANE is named for. Where a campaign samples
// one state per injected run, a trace samples every activation of the
// location from the injection onward, which is what detection-latency
// measurement needs.
type Trace struct {
	Module        string
	Location      Location
	Var           string
	Bit           int
	InjectionTime int
	// Injected reports whether the injection activation was reached.
	Injected bool
	// Entries holds the state at every activation of the traced
	// location from the injection onward (the injection activation
	// itself included when the locations coincide).
	Entries []TraceEntry
	// Failure and Crashed classify the run outcome.
	Failure bool
	Crashed bool
}

// TraceSpec configures one traced injection run.
type TraceSpec struct {
	Module        string
	InjectAt      Location
	TraceAt       Location
	Var           string
	Bit           int
	InjectionTime int
}

// RunTrace executes one injected run recording the module state at
// every activation of the traced location from the injection onward.
// The golden output must come from a prior fault-free run of the same
// test case.
func RunTrace(target Target, tc TestCase, golden any, spec TraceSpec) (*Trace, error) {
	if spec.InjectionTime < 1 {
		return nil, fmt.Errorf("propane: trace injection time %d must be >= 1", spec.InjectionTime)
	}
	probe := &traceProbe{
		module:   spec.Module,
		injectAt: spec.InjectAt,
		traceAt:  spec.TraceAt,
		injTime:  spec.InjectionTime,
		varName:  spec.Var,
		bit:      spec.Bit,
	}
	out, err := runSafely(target, tc, probe)
	tr := &Trace{
		Module:        spec.Module,
		Location:      spec.TraceAt,
		Var:           spec.Var,
		Bit:           spec.Bit,
		InjectionTime: spec.InjectionTime,
		Injected:      probe.injected,
		Entries:       probe.entries,
	}
	switch {
	case err != nil:
		tr.Crashed = true
		tr.Failure = probe.injected
	case probe.injected:
		tr.Failure = target.Failed(tc, golden, out)
	}
	return tr, nil
}

// traceProbe injects one bit flip and then records the state at every
// visit of the traced location.
type traceProbe struct {
	module   string
	injectAt Location
	traceAt  Location
	injTime  int
	varName  string
	bit      int

	injections int
	traces     int
	injected   bool
	entries    []TraceEntry
}

var _ Probe = (*traceProbe)(nil)

func (p *traceProbe) Visit(module string, loc Location, vars []VarRef) {
	if module != p.module {
		return
	}
	inject := false
	if loc == p.injectAt {
		p.injections++
		if !p.injected && p.injections == p.injTime {
			inject = true
		}
	}
	if inject {
		for _, v := range vars {
			if v.Name == p.varName {
				_ = v.FlipBit(p.bit)
				break
			}
		}
		p.injected = true
	}
	if loc == p.traceAt {
		p.traces++
		if p.injected {
			p.record(vars, p.traces)
		}
	}
}

func (p *traceProbe) record(vars []VarRef, activation int) {
	state := make([]float64, len(vars))
	for i, v := range vars {
		state[i] = v.Read()
	}
	p.entries = append(p.entries, TraceEntry{Activation: activation, State: state})
}
