package propane

import (
	"fmt"
	"sort"
	"strings"
)

// VarStat aggregates a campaign's outcomes for one injected variable —
// the per-variable failure fingerprint that drives what the decision
// trees can learn.
type VarStat struct {
	Var      string
	Injected int
	Failures int
	Crashes  int
	// Unsampled counts injected runs whose sampling point was never
	// reached (typically crashes between injection and sampling).
	Unsampled int
}

// FailureRate returns failures over injected runs (0 when none ran).
func (v VarStat) FailureRate() float64 {
	if v.Injected == 0 {
		return 0
	}
	return float64(v.Failures) / float64(v.Injected)
}

// Summarize aggregates the campaign's records per injected variable, in
// the module's variable order.
func Summarize(c *Campaign) []VarStat {
	byVar := make(map[string]*VarStat, len(c.VarNames))
	order := make([]string, 0, len(c.VarNames))
	for _, name := range c.VarNames {
		byVar[name] = &VarStat{Var: name}
		order = append(order, name)
	}
	for i := range c.Records {
		r := &c.Records[i]
		st, ok := byVar[r.Var]
		if !ok {
			st = &VarStat{Var: r.Var}
			byVar[r.Var] = st
			order = append(order, r.Var)
		}
		if !r.Injected {
			continue
		}
		st.Injected++
		if r.Failure {
			st.Failures++
		}
		if r.Crashed {
			st.Crashes++
		}
		if !r.Sampled {
			st.Unsampled++
		}
	}
	out := make([]VarStat, 0, len(order))
	for _, name := range order {
		out = append(out, *byVar[name])
	}
	return out
}

// FormatStats renders the per-variable summary as a table, sorted by
// descending failure rate for quick inspection of a campaign's failure
// structure.
func FormatStats(stats []VarStat) string {
	sorted := make([]VarStat, len(stats))
	copy(sorted, stats)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].FailureRate() > sorted[j].FailureRate()
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %9s %9s %8s %7s %10s\n",
		"variable", "injected", "failures", "rate", "crashes", "unsampled")
	for _, v := range sorted {
		fmt.Fprintf(&sb, "%-18s %9d %9d %7.1f%% %7d %10d\n",
			v.Var, v.Injected, v.Failures, 100*v.FailureRate(), v.Crashes, v.Unsampled)
	}
	return sb.String()
}
