package propane

import (
	"context"
	"math"
	"testing"

	"edem/internal/bitflip"
)

// forkToy is the Forkable analog of toyTarget: module "M" activates
// Ticks times per run, acc accumulates through gate, junk is dead
// state recomputed every activation. The run loop is phase-structured
// so any visit position can be snapshot.
type forkToy struct {
	Ticks int
	// badResume, when set, makes RunFrom corrupt the state before
	// resuming — the golden-fork self-check must catch this and refuse
	// the fast path.
	badResume bool
}

type ftState struct {
	tick, phase int
	acc         float64
	gate        int64
	junk        float64
	tc          TestCase
	vars        []VarRef
}

func (s *ftState) Clone() State {
	return &ftState{tick: s.tick, phase: s.phase, acc: s.acc, gate: s.gate, junk: s.junk, tc: s.tc}
}

func (s *ftState) Digest() Digest {
	h := NewStateHasher()
	h.Int(s.tick)
	h.Int(s.phase)
	h.Float64(s.acc)
	h.Int64(s.gate)
	h.Float64(s.junk)
	return h.Sum()
}

func (s *ftState) refs() []VarRef {
	if s.vars == nil {
		s.vars = []VarRef{
			Float64Ref("acc", &s.acc),
			Int64Ref("gate", &s.gate),
			Float64Ref("junk", &s.junk),
		}
	}
	return s.vars
}

func (ft *forkToy) ticks() int {
	if ft.Ticks == 0 {
		return 5
	}
	return ft.Ticks
}

func (ft *forkToy) Name() string { return "ForkToy" }

func (ft *forkToy) Modules() []ModuleInfo {
	return []ModuleInfo{{
		Name: "M",
		Vars: []VarDecl{
			{Name: "acc", Kind: bitflip.Float64},
			{Name: "gate", Kind: bitflip.Int64},
			{Name: "junk", Kind: bitflip.Float64},
		},
	}}
}

func (ft *forkToy) TestCases(n int, seed uint64) []TestCase {
	tcs := make([]TestCase, n)
	for i := range tcs {
		tcs[i] = TestCase{ID: i, Seed: seed + uint64(i)}
	}
	return tcs
}

func (ft *forkToy) exec(st *ftState, probe Probe, ctl *RunControl, stopTick, stopPhase int) (any, error) {
	_, nop := probe.(NopProbe)
	var vars []VarRef
	if !nop {
		vars = st.refs()
	}
	step := 0
	for st.tick < ft.ticks() {
		if st.phase == 0 {
			if st.tick == stopTick && stopPhase == 0 {
				return nil, nil
			}
			if !nop {
				probe.Visit("M", Entry, vars)
			}
			st.acc += float64(st.gate) * float64(st.tc.ID+1)
			st.junk = st.acc * 2
			st.phase = 1
		}
		if st.phase == 1 {
			if st.tick == stopTick && stopPhase == 1 {
				return nil, nil
			}
			if !nop {
				probe.Visit("M", Exit, vars)
			}
			st.phase = 0
			st.tick++
			step++
			if ctl.Checkpoint(step, st) {
				return nil, ErrConverged
			}
		}
	}
	return toyOutput{Sum: st.acc}, nil
}

func (ft *forkToy) Run(tc TestCase, probe Probe) (any, error) {
	return ft.exec(&ftState{gate: 7, tc: tc}, probe, nil, -1, 0)
}

func (ft *forkToy) Failed(_ TestCase, golden, observed any) bool {
	g, ok1 := golden.(toyOutput)
	o, ok2 := observed.(toyOutput)
	if !ok1 || !ok2 {
		return true
	}
	return g != o
}

func (ft *forkToy) Snapshot(tc TestCase, module string, at Location, activation int) (State, bool, error) {
	if module != "M" || activation < 1 || activation > ft.ticks() {
		return nil, false, nil
	}
	phase := 0
	if at == Exit {
		phase = 1
	}
	st := &ftState{gate: 7, tc: tc}
	if _, err := ft.exec(st, NopProbe{}, nil, activation-1, phase); err != nil {
		return nil, false, err
	}
	return st, true, nil
}

func (ft *forkToy) RunFrom(st State, probe Probe, ctl *RunControl) (any, error) {
	s := st.(*ftState)
	if ft.badResume {
		s.acc += 1000 // deliberately unsound decomposition
	}
	return ft.exec(s, probe, ctl, -1, 0)
}

var _ Forkable = (*forkToy)(nil)

// sameRecords compares record slices bit-exactly: sampled states are
// compared by IEEE-754 bit pattern, since corrupted runs legitimately
// sample NaN (where == would lie).
func sameRecords(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("record count %d, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		same := g.TestCase == w.TestCase && g.Var == w.Var && g.Bit == w.Bit &&
			g.InjectionTime == w.InjectionTime && g.Injected == w.Injected &&
			g.Sampled == w.Sampled && g.Failure == w.Failure &&
			g.Crashed == w.Crashed && g.FlipErr == w.FlipErr &&
			len(g.State) == len(w.State)
		if same {
			for k := range g.State {
				if math.Float64bits(g.State[k]) != math.Float64bits(w.State[k]) {
					same = false
					break
				}
			}
		}
		if !same {
			t.Fatalf("record %d differs:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func TestStateHasher(t *testing.T) {
	h1 := NewStateHasher()
	h1.Int(1)
	h1.Float64(2.5)
	h2 := NewStateHasher()
	h2.Int(1)
	h2.Float64(2.5)
	if h1.Sum() != h2.Sum() {
		t.Fatal("hashing is not deterministic")
	}
	h3 := NewStateHasher()
	h3.Float64(2.5)
	h3.Int(1)
	if h3.Sum() == h1.Sum() {
		t.Fatal("field order does not distinguish digests")
	}
	// NaN payloads are distinct states.
	nan1 := math.Float64frombits(0x7ff8000000000001)
	nan2 := math.Float64frombits(0x7ff8000000000002)
	a, b := NewStateHasher(), NewStateHasher()
	a.Float64(nan1)
	b.Float64(nan2)
	if a.Sum() == b.Sum() {
		t.Fatal("NaN payloads collide")
	}
	// Length prefixing prevents adjacent slices from aliasing.
	c, d := NewStateHasher(), NewStateHasher()
	c.Bytes([]byte{1})
	c.Bytes(nil)
	d.Bytes(nil)
	d.Bytes([]byte{1})
	if c.Sum() == d.Sum() {
		t.Fatal("byte-slice boundaries alias")
	}
	var zero StateHasher
	init := NewStateHasher()
	if zero.Sum() == init.Sum() {
		t.Fatal("zero-value hasher must differ from initialised one (zero value is not ready)")
	}
}

func TestNextCheckStep(t *testing.T) {
	want := []int{1, 2, 3, 4, 6, 9, 13, 19, 28}
	s := 0
	for i, w := range want {
		s = nextCheckStep(s)
		if s != w {
			t.Fatalf("schedule[%d] = %d, want %d", i, s, w)
		}
	}
}

// TestForkEquivalence pins the tentpole invariant at the propane level:
// the same spec with and without Fork yields bit-identical records.
func TestForkEquivalence(t *testing.T) {
	for _, at := range []struct {
		name           string
		inject, sample Location
	}{
		{"entry-exit", Entry, Exit},
		{"entry-entry", Entry, Entry},
		{"exit-exit", Exit, Exit},
	} {
		t.Run(at.name, func(t *testing.T) {
			spec := toySpec()
			spec.InjectAt, spec.SampleAt = at.inject, at.sample
			slow, err := Run(context.Background(), &forkToy{}, spec)
			if err != nil {
				t.Fatal(err)
			}
			spec.Fork = true
			fast, err := Run(context.Background(), &forkToy{}, spec)
			if err != nil {
				t.Fatal(err)
			}
			sameRecords(t, fast.Records, slow.Records)
		})
	}
}

// TestForkNonForkableFallback: Fork on a target without the Forkable
// interface is a silent no-op, not an error.
func TestForkNonForkableFallback(t *testing.T) {
	spec := toySpec()
	slow, err := Run(context.Background(), &toyTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Fork = true
	fast, err := Run(context.Background(), &toyTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, fast.Records, slow.Records)
}

// TestForkRunnerStats: the fast path actually forks, converges on dead
// state and memoizes repeated post-injection states.
func TestForkRunnerStats(t *testing.T) {
	target := &forkToy{Ticks: 40}
	spec := toySpec()
	spec.Fork = true
	camp, err := Run(context.Background(), target, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Records) == 0 {
		t.Fatal("no records")
	}
	// Rebuild a runner directly to observe the counters.
	mod, _ := Module(target, "M")
	f := NewForkRunner(target, spec, mod)
	tcs := target.TestCases(spec.TestCases, spec.Seed)
	goldens := make([]any, len(tcs))
	for i, tc := range tcs {
		out, err := RunGolden(target, tc)
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = out
	}
	slow, err := Run(context.Background(), target, func() Spec { s := spec; s.Fork = false; return s }())
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	for _, j := range spec.Jobs(mod) {
		rec, oc := f.RunJob(j.TC, tcs[j.TC], goldens[j.TC], j)
		if !oc.FromFork() {
			t.Fatalf("job %+v fell back", j)
		}
		recs = append(recs, rec)
	}
	sameRecords(t, recs, slow.Records)
	st := f.Stats()
	if st.Snapshots == 0 || st.Forked == 0 {
		t.Fatalf("fast path did not fork: %+v", st)
	}
	// Dead-state (junk) flips re-converge with the golden trajectory at
	// the next checkpoint; identical post-injection states memoize.
	if st.Converged == 0 {
		t.Errorf("no convergence hits: %+v", st)
	}
	if st.MemoHits == 0 {
		t.Errorf("no memo hits: %+v", st)
	}
	if st.Fallbacks != 0 {
		t.Errorf("unexpected fallbacks: %+v", st)
	}
}

// TestForkSelfCheck: a Forkable whose fork does not reproduce the
// golden outcome must be refused (every cell falls back) rather than
// produce mislabelled records.
func TestForkSelfCheck(t *testing.T) {
	target := &forkToy{badResume: true}
	spec := toySpec()
	mod, _ := Module(target, "M")
	tcs := target.TestCases(spec.TestCases, spec.Seed)
	golden, err := RunGolden(target, tcs[0])
	if err != nil {
		t.Fatal(err)
	}
	f := NewForkRunner(target, spec, mod)
	jobs := spec.Jobs(mod)
	_, oc := f.RunJob(jobs[0].TC, tcs[jobs[0].TC], golden, jobs[0])
	if oc != ForkFellBack {
		t.Fatalf("unsound decomposition not refused: outcome %v", oc)
	}
	if st := f.Stats(); st.Fallbacks == 0 || st.Snapshots != 0 {
		t.Fatalf("self-check stats: %+v", st)
	}
	// End-to-end, the engine's fallback keeps results correct anyway.
	slow, err := Run(context.Background(), &forkToy{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Fork = true
	fast, err := Run(context.Background(), target, spec)
	if err != nil {
		t.Fatal(err)
	}
	sameRecords(t, fast.Records, slow.Records)
}
