package propane

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"edem/internal/bitflip"
	"edem/internal/telemetry"
)

// TestVarRefRawAccessors: every constructor-built VarRef exposes the
// raw machine representation, and applying an XOR mask twice through
// Bits/SetBits restores the original bit pattern exactly — including
// NaN payloads and infinities, where value comparison would lie. This
// is the apply/revert round-trip every fault model relies on.
func TestVarRefRawAccessors(t *testing.T) {
	var (
		f64 float64
		f32 float32
		i64 int64
		i32 int32
		i   int
		u64 uint64
		b   bool
	)
	refs := map[string]struct {
		ref  VarRef
		set  func(bits uint64)
		vals []uint64 // interesting raw patterns to start from
	}{
		"float64": {Float64Ref("v", &f64), func(x uint64) { f64 = math.Float64frombits(x) },
			[]uint64{0, math.Float64bits(1.5), math.Float64bits(math.Inf(1)), math.Float64bits(math.Inf(-1)),
				0x7ff8000000000001 /* NaN payload */, math.Float64bits(math.Copysign(0, -1))}},
		"float32": {Float32Ref("v", &f32), func(x uint64) { f32 = math.Float32frombits(uint32(x)) },
			[]uint64{0, uint64(math.Float32bits(2.25)), uint64(math.Float32bits(float32(math.Inf(1)))),
				0x7fc00001 /* NaN payload */}},
		"int64": {Int64Ref("v", &i64), func(x uint64) { i64 = int64(x) },
			[]uint64{0, 7, ^uint64(0) /* -1 */, 1 << 63}},
		"int32": {Int32Ref("v", &i32), func(x uint64) { i32 = int32(uint32(x)) },
			[]uint64{0, 42, 0xffffffff /* -1, zero-extended */, 1 << 31}},
		"int": {IntRef("v", &i), func(x uint64) { i = int(int64(x)) },
			[]uint64{0, 99, ^uint64(0)}},
		"uint64": {Uint64Ref("v", &u64), func(x uint64) { u64 = x },
			[]uint64{0, 1, ^uint64(0)}},
		"bool": {BoolRef("v", &b), func(x uint64) { b = x&1 == 1 },
			[]uint64{0, 1}},
	}
	for name, c := range refs {
		if c.ref.Bits == nil || c.ref.SetBits == nil {
			t.Fatalf("%s: constructor left Bits/SetBits nil", name)
		}
		width := c.ref.Kind.Bits()
		for _, start := range c.vals {
			for bit := 0; bit < width; bit += 7 { // sample positions incl. 0
				mask, err := (bitflip.Fault{Model: bitflip.Burst, Width: 1 + bit%3}).Mask(c.ref.Kind, bit)
				if err != nil {
					continue // burst spills past the top bit; covered elsewhere
				}
				c.set(start)
				if got := c.ref.Bits(); got != start {
					t.Fatalf("%s: Bits() = %#x after set %#x", name, got, start)
				}
				c.ref.SetBits(c.ref.Bits() ^ mask)
				if got := c.ref.Bits(); got != start^mask {
					t.Fatalf("%s: apply: Bits() = %#x, want %#x", name, got, start^mask)
				}
				c.ref.SetBits(c.ref.Bits() ^ mask) // XOR is self-inverse: revert
				if got := c.ref.Bits(); got != start {
					t.Fatalf("%s: revert: Bits() = %#x, want %#x (bit %d mask %#x)", name, got, start, bit, mask)
				}
			}
		}
	}
}

// fv builds the visit slice for the probe-level model tests.
func faultVars(x *int64, y *float64) []VarRef {
	return []VarRef{Int64Ref("x", x), Float64Ref("y", y)}
}

// TestInjectProbeBurst: a burst flips Width adjacent bits once and
// never touches the variable again.
func TestInjectProbeBurst(t *testing.T) {
	x, y := int64(0), 0.0
	p := &injectProbe{
		module: "M", injectAt: Entry, sampleAt: Exit, injTime: 2, varName: "x",
		bit: 1, fault: bitflip.Fault{Model: bitflip.Burst, Width: 3}.Normalized(),
	}
	p.Visit("M", Entry, faultVars(&x, &y)) // activation 1: no injection
	if x != 0 {
		t.Fatalf("injected before injTime: x=%d", x)
	}
	p.Visit("M", Entry, faultVars(&x, &y)) // activation 2: burst
	if x != 0b1110 {
		t.Fatalf("burst width 3 at bit 1: x=%#b, want 0b1110", x)
	}
	if !p.injected || p.flipErr {
		t.Fatalf("probe state after burst: %+v", p)
	}
	p.Visit("M", Exit, faultVars(&x, &y)) // sample
	if !p.sampled || p.state[0] != float64(x) {
		t.Fatalf("sample after burst: sampled=%v state=%v", p.sampled, p.state)
	}
	x = 5
	p.Visit("M", Entry, faultVars(&x, &y)) // later activations: no re-assertion
	if x != 5 {
		t.Fatalf("burst re-asserted: x=%d, want 5", x)
	}
}

// TestInjectProbeStuckAt: the corrupted bit value is re-asserted at
// every later activation of the injection location, even after the
// target overwrites the variable, and other bits pass through.
func TestInjectProbeStuckAt(t *testing.T) {
	x, y := int64(0), 0.0
	p := &injectProbe{
		module: "M", injectAt: Entry, sampleAt: Exit, injTime: 1, varName: "x",
		bit: 0, fault: bitflip.Fault{Model: bitflip.StuckAt}.Normalized(),
	}
	p.Visit("M", Entry, faultVars(&x, &y))
	if x != 1 {
		t.Fatalf("stuck-at complement at injection: x=%d, want 1", x)
	}
	p.Visit("M", Exit, faultVars(&x, &y))
	if !p.sampled {
		t.Fatal("state not sampled")
	}
	// The target overwrites x with an even value; bit 0 must be forced
	// back to its stuck value (1) at the next injection-location visit,
	// while the high bits survive.
	x = 8
	p.Visit("M", Entry, faultVars(&x, &y))
	if x != 9 {
		t.Fatalf("stuck-at re-assertion: x=%d, want 9", x)
	}
	x = 3 // bit already at the stuck value: re-assertion is a no-op
	p.Visit("M", Entry, faultVars(&x, &y))
	if x != 3 {
		t.Fatalf("stuck-at disturbed a matching value: x=%d, want 3", x)
	}
	// Sampling-location visits after the sample do not re-assert.
	x = 4
	p.Visit("M", Exit, faultVars(&x, &y))
	if x != 4 {
		t.Fatalf("stuck-at asserted at the sampling location: x=%d, want 4", x)
	}
}

// TestInjectProbeIntermittent: the fault holds for Persist activations
// in total, then releases the variable for good.
func TestInjectProbeIntermittent(t *testing.T) {
	x, y := int64(0), 0.0
	p := &injectProbe{
		module: "M", injectAt: Entry, sampleAt: Entry, injTime: 1, varName: "x",
		bit: 2, fault: bitflip.Fault{Model: bitflip.Intermittent, Persist: 2}.Normalized(),
	}
	p.Visit("M", Entry, faultVars(&x, &y)) // assertion 1 (the injection) + same-visit sample
	if x != 4 || !p.sampled {
		t.Fatalf("injection activation: x=%d sampled=%v", x, p.sampled)
	}
	x = 0
	p.Visit("M", Entry, faultVars(&x, &y)) // assertion 2: still held
	if x != 4 {
		t.Fatalf("persist=2 second assertion: x=%d, want 4", x)
	}
	x = 0
	p.Visit("M", Entry, faultVars(&x, &y)) // released
	if x != 0 {
		t.Fatalf("released intermittent still asserting: x=%d, want 0", x)
	}
}

// faultlessTarget exposes one variable through a hand-built VarRef with
// no raw-bit accessors — legal for the transient model, a per-record
// flip error for every other model.
type faultlessTarget struct{}

func (faultlessTarget) Name() string { return "NoRaw" }
func (faultlessTarget) Modules() []ModuleInfo {
	return []ModuleInfo{{Name: "M", Vars: []VarDecl{{Name: "x", Kind: bitflip.Float64}}}}
}
func (faultlessTarget) TestCases(n int, seed uint64) []TestCase {
	tcs := make([]TestCase, n)
	for i := range tcs {
		tcs[i] = TestCase{ID: i, Seed: seed}
	}
	return tcs
}
func (faultlessTarget) Run(tc TestCase, probe Probe) (any, error) {
	x := 1.0
	vars := []VarRef{{
		Name: "x", Kind: bitflip.Float64,
		Read: func() float64 { return x },
		FlipBit: func(bit int) error {
			v, err := bitflip.Float64Bit(x, bit)
			x = v
			return err
		},
	}}
	probe.Visit("M", Entry, vars)
	x *= 2
	probe.Visit("M", Exit, vars)
	return x, nil
}
func (faultlessTarget) Failed(_ TestCase, golden, observed any) bool { return golden != observed }

// TestFaultModelErrSurfaced: non-transient models on a VarRef without
// raw accessors mark every record FlipErr and count each one in
// campaign.fault_model_errors; the transient model is unaffected.
func TestFaultModelErrSurfaced(t *testing.T) {
	spec := Spec{
		Dataset: "NR-A2", Module: "M", InjectAt: Entry, SampleAt: Exit,
		InjectionTimes: []int{1}, TestCases: 1, Seed: 1, BitStride: 16,
		Fault: bitflip.Fault{Model: bitflip.StuckAt},
	}
	reg := telemetry.New()
	ctx := telemetry.WithRegistry(context.Background(), reg)
	camp, err := Run(ctx, faultlessTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(camp.Records) == 0 {
		t.Fatal("no records")
	}
	for i, r := range camp.Records {
		if !r.FlipErr {
			t.Fatalf("record %d: stuckat on accessor-less VarRef not surfaced as FlipErr: %+v", i, r)
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["campaign.fault_model_errors"]; got != int64(len(camp.Records)) {
		t.Errorf("campaign.fault_model_errors = %d, want %d", got, len(camp.Records))
	}

	// Transient on the same target: no flip errors, and the fault-model
	// counter stays silent even for genuine flip errors.
	spec.Fault = bitflip.Fault{}
	reg2 := telemetry.New()
	camp2, err := Run(telemetry.WithRegistry(context.Background(), reg2), faultlessTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range camp2.Records {
		if r.FlipErr {
			t.Fatalf("transient record %d has FlipErr", i)
		}
	}
	if got := reg2.Snapshot().Counters["campaign.fault_model_errors"]; got != 0 {
		t.Errorf("transient campaign.fault_model_errors = %d, want 0", got)
	}
}

// TestFaultModelErrBurstTooWide: a burst wider than a variable (bool)
// is a per-record flip error on that variable only; wider variables in
// the same campaign inject normally.
func TestFaultModelErrBurstTooWide(t *testing.T) {
	spec := toySpec()
	spec.Fault = bitflip.Fault{Model: bitflip.Burst, Width: 2}
	target := &boolToy{}
	camp, err := Run(context.Background(), target, spec)
	if err != nil {
		t.Fatal(err)
	}
	sawBool, sawWide := false, false
	for _, r := range camp.Records {
		switch {
		case r.Var == "flag" || r.Bit == 63:
			// The burst spills past the variable's top bit: bool has a
			// single bit, and bit 63+2 exceeds int64's 64. Both surface.
			sawBool = sawBool || r.Var == "flag"
			if !r.FlipErr {
				t.Fatalf("out-of-range burst not surfaced: %+v", r)
			}
		default:
			sawWide = true
			if r.FlipErr {
				t.Fatalf("burst on %s: unexpected FlipErr: %+v", r.Var, r)
			}
		}
	}
	if !sawBool || !sawWide {
		t.Fatalf("campaign did not cover both variables (bool=%v, wide=%v)", sawBool, sawWide)
	}
}

// boolToy pairs a bool with an int64 in one module so unsupported and
// supported combos coexist in one campaign.
type boolToy struct{}

func (boolToy) Name() string { return "BoolToy" }
func (boolToy) Modules() []ModuleInfo {
	return []ModuleInfo{{Name: "M", Vars: []VarDecl{
		{Name: "acc", Kind: bitflip.Int64},
		{Name: "flag", Kind: bitflip.Bool},
	}}}
}
func (boolToy) TestCases(n int, seed uint64) []TestCase {
	tcs := make([]TestCase, n)
	for i := range tcs {
		tcs[i] = TestCase{ID: i, Seed: seed}
	}
	return tcs
}
func (boolToy) Run(tc TestCase, probe Probe) (any, error) {
	var acc int64
	flag := true
	vars := []VarRef{Int64Ref("acc", &acc), BoolRef("flag", &flag)}
	for i := 0; i < 5; i++ {
		probe.Visit("M", Entry, vars)
		if flag {
			acc += int64(tc.ID + 1)
		}
		probe.Visit("M", Exit, vars)
	}
	return acc, nil
}
func (boolToy) Failed(_ TestCase, golden, observed any) bool { return golden != observed }

// TestRunDeterminismPerModel: every model is deterministic — two runs
// of the same spec produce bit-identical records.
func TestRunDeterminismPerModel(t *testing.T) {
	faults := map[string]bitflip.Fault{
		"transient":    {},
		"burst":        {Model: bitflip.Burst, Width: 3},
		"stuckat":      {Model: bitflip.StuckAt},
		"intermittent": {Model: bitflip.Intermittent, Persist: 2},
	}
	for name, f := range faults {
		t.Run(name, func(t *testing.T) {
			spec := toySpec()
			spec.Fault = f
			a, err := Run(context.Background(), &toyTarget{}, spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(context.Background(), &toyTarget{}, spec)
			if err != nil {
				t.Fatal(err)
			}
			sameRecords(t, a.Records, b.Records)
			if len(a.Records) != len(b.Records) || len(a.Records) == 0 {
				t.Fatal("empty campaign")
			}
		})
	}
	// The models genuinely differ: stuck-at must diverge from transient
	// on some record (the re-assertions change downstream behavior).
	spec := toySpec()
	tr, _ := Run(context.Background(), &toyTarget{}, spec)
	spec.Fault = bitflip.Fault{Model: bitflip.StuckAt}
	sa, _ := Run(context.Background(), &toyTarget{}, spec)
	differ := false
	for i := range tr.Records {
		if tr.Records[i].Failure != sa.Records[i].Failure || len(tr.Records[i].State) != len(sa.Records[i].State) {
			differ = true
			break
		}
		for k := range tr.Records[i].State {
			if math.Float64bits(tr.Records[i].State[k]) != math.Float64bits(sa.Records[i].State[k]) {
				differ = true
			}
		}
	}
	if !differ {
		t.Error("stuck-at campaign is record-identical to transient; re-assertion is a no-op?")
	}
}

// TestForkEquivalenceBurst extends the fork bit-identity invariant to
// the burst model: Fork on/off yields identical records.
func TestForkEquivalenceBurst(t *testing.T) {
	for _, at := range []struct {
		name           string
		inject, sample Location
	}{
		{"entry-exit", Entry, Exit},
		{"exit-exit", Exit, Exit},
	} {
		t.Run(at.name, func(t *testing.T) {
			spec := toySpec()
			spec.InjectAt, spec.SampleAt = at.inject, at.sample
			spec.Fault = bitflip.Fault{Model: bitflip.Burst, Width: 4}
			slow, err := Run(context.Background(), &forkToy{}, spec)
			if err != nil {
				t.Fatal(err)
			}
			spec.Fork = true
			fast, err := Run(context.Background(), &forkToy{}, spec)
			if err != nil {
				t.Fatal(err)
			}
			sameRecords(t, fast.Records, slow.Records)
		})
	}
}

// TestPersistentModelsRefuseFork pins the soundness guard: stuck-at and
// intermittent cells never take the fork fast path — every cell is a
// counted fallback, no snapshot is taken, and the end-to-end result
// still matches the slow path bit for bit.
func TestPersistentModelsRefuseFork(t *testing.T) {
	for _, f := range []bitflip.Fault{
		{Model: bitflip.StuckAt},
		{Model: bitflip.Intermittent, Persist: 3},
	} {
		t.Run(f.String(), func(t *testing.T) {
			spec := toySpec()
			spec.Fault = f
			target := &forkToy{}
			mod, _ := Module(target, "M")
			tcs := target.TestCases(spec.TestCases, spec.Seed)
			golden, err := RunGolden(target, tcs[0])
			if err != nil {
				t.Fatal(err)
			}
			fr := NewForkRunner(target, spec, mod)
			jobs := spec.Jobs(mod)
			for _, j := range jobs[:4] {
				if _, oc := fr.RunJob(j.TC, tcs[j.TC], golden, j); oc != ForkFellBack {
					t.Fatalf("job %+v took the fork path under %s", j, f)
				}
			}
			st := fr.Stats()
			if st.Fallbacks != 4 || st.Snapshots != 0 || st.Forked != 0 {
				t.Fatalf("persistent fork stats: %+v, want 4 fallbacks and nothing else", st)
			}

			slow, err := Run(context.Background(), target, spec)
			if err != nil {
				t.Fatal(err)
			}
			fast := func() *Campaign {
				s := spec
				s.Fork = true
				c, err := Run(context.Background(), target, s)
				if err != nil {
					t.Fatal(err)
				}
				return c
			}()
			sameRecords(t, fast.Records, slow.Records)
		})
	}
}

// TestLogFaultHeaderRoundTrip: non-transient campaigns write a #fault
// header that survives the log round trip; transient logs stay
// byte-free of it.
func TestLogFaultHeaderRoundTrip(t *testing.T) {
	spec := toySpec()
	spec.Fault = bitflip.Fault{Model: bitflip.Intermittent, Persist: 4}
	camp, err := Run(context.Background(), &toyTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteLog(&buf, camp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#fault intermittent 1 4\n") {
		t.Fatalf("log missing fault header:\n%s", buf.String()[:200])
	}
	back, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Spec.Fault != spec.Fault.Normalized() {
		t.Fatalf("fault after round trip: %+v, want %+v", back.Spec.Fault, spec.Fault.Normalized())
	}
	sameRecords(t, back.Records, camp.Records)

	// Transient logs are unchanged — no #fault line at all.
	spec.Fault = bitflip.Fault{}
	camp2, err := Run(context.Background(), &toyTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteLog(&buf, camp2); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#fault") {
		t.Error("transient log contains a #fault header")
	}
}

// TestDatasetFaultAttrs: the ARFF conversion appends the fault-model
// features exactly when the campaign is non-transient.
func TestDatasetFaultAttrs(t *testing.T) {
	spec := toySpec()
	camp, err := Run(context.Background(), &toyTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := ToDataset(camp)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range d.Attrs {
		if strings.HasPrefix(a.Name, "fault_") {
			t.Fatalf("transient dataset has fault attribute %q", a.Name)
		}
	}

	spec.Fault = bitflip.Fault{Model: bitflip.Burst, Width: 5}
	camp2, err := Run(context.Background(), &toyTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := ToDataset(camp2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Attrs) != len(d.Attrs)+3 {
		t.Fatalf("burst dataset has %d attrs, want %d+3", len(d2.Attrs), len(d.Attrs))
	}
	want := map[string]float64{"fault_model": float64(bitflip.Burst), "fault_width": 5, "fault_persist": 1}
	found := 0
	for i, a := range d2.Attrs {
		v, ok := want[a.Name]
		if !ok {
			continue
		}
		found++
		for r, inst := range d2.Instances {
			if got := inst.Values[i]; got != v {
				t.Fatalf("instance %d: %s = %v, want %v", r, a.Name, got, v)
			}
		}
	}
	if found != 3 {
		t.Fatalf("found %d fault attributes, want 3", found)
	}
}
