package propane

import (
	"context"
	"strings"
	"testing"
)

func TestLogRoundTrip(t *testing.T) {
	camp, err := Run(context.Background(), &toyTarget{}, toySpec())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteLog(&sb, camp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Target != camp.Target || got.Spec.Dataset != camp.Spec.Dataset ||
		got.Spec.Module != camp.Spec.Module ||
		got.Spec.InjectAt != camp.Spec.InjectAt || got.Spec.SampleAt != camp.Spec.SampleAt {
		t.Fatalf("header mismatch: %+v", got.Spec)
	}
	if len(got.VarNames) != len(camp.VarNames) {
		t.Fatalf("var names = %v", got.VarNames)
	}
	if len(got.Records) != len(camp.Records) {
		t.Fatalf("records = %d, want %d", len(got.Records), len(camp.Records))
	}
	for i := range camp.Records {
		a, b := camp.Records[i], got.Records[i]
		if a.TestCase != b.TestCase || a.Var != b.Var || a.Bit != b.Bit ||
			a.InjectionTime != b.InjectionTime || a.Injected != b.Injected ||
			a.Sampled != b.Sampled || a.Failure != b.Failure || a.Crashed != b.Crashed {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, a, b)
		}
		if len(a.State) != len(b.State) {
			t.Fatalf("record %d state arity", i)
		}
		for j := range a.State {
			if a.State[j] != b.State[j] {
				t.Fatalf("record %d state[%d]: %v != %v", i, j, a.State[j], b.State[j])
			}
		}
	}
}

func TestLogUnsampledRecord(t *testing.T) {
	c := &Campaign{
		Target:   "T",
		Spec:     Spec{Dataset: "D", Module: "M", InjectAt: Entry, SampleAt: Exit},
		VarNames: []string{"a"},
		Records: []Record{
			{TestCase: 1, Var: "a", Bit: 2, InjectionTime: 3, Injected: true, Crashed: true, Failure: true},
		},
	}
	var sb strings.Builder
	if err := WriteLog(&sb, c); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "state=") {
		t.Fatal("unsampled record must not serialise a state vector")
	}
	got, err := ReadLog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	r := got.Records[0]
	if r.Sampled || r.State != nil || !r.Crashed || !r.Failure {
		t.Fatalf("record = %+v", r)
	}
}

func TestLogParseErrors(t *testing.T) {
	cases := map[string]string{
		"bad location":  "#inject Sideways\n",
		"bad field":     "RUN notafield\n",
		"bad int":       "RUN tc=xyz\n",
		"bad bool":      "RUN inj=2\n",
		"bad state":     "RUN state=1,bad\n",
		"unknown field": "RUN zz=1\n",
		"garbage line":  "WHAT is this\n",
	}
	for name, src := range cases {
		if _, err := ReadLog(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLogSpecialFloats(t *testing.T) {
	c := &Campaign{
		Target:   "T",
		Spec:     Spec{Dataset: "D", Module: "M", InjectAt: Entry, SampleAt: Entry},
		VarNames: []string{"a", "b"},
		Records: []Record{
			{Var: "a", Injected: true, Sampled: true, State: []float64{1e308, -5e-324}},
		},
	}
	var sb strings.Builder
	if err := WriteLog(&sb, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Records[0].State[0] != 1e308 || got.Records[0].State[1] != -5e-324 {
		t.Fatalf("state = %v", got.Records[0].State)
	}
}
