package propane

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"edem/internal/bitflip"
)

// toyTarget is a deterministic miniature system: module "M" activates
// Ticks times per run; variable "acc" accumulates, variable "gate"
// (int64, normally 7) controls the output, and "junk" is dead state.
// The run fails when the final output differs from the fault-free value.
type toyTarget struct {
	Ticks    int
	CrashOn  float64 // if acc exceeds this, the run panics (0 = never)
	FailHook func(gate int64) bool
}

type toyOutput struct{ Sum float64 }

func (tt *toyTarget) Name() string { return "Toy" }

func (tt *toyTarget) Modules() []ModuleInfo {
	return []ModuleInfo{{
		Name: "M",
		Vars: []VarDecl{
			{Name: "acc", Kind: bitflip.Float64},
			{Name: "gate", Kind: bitflip.Int64},
			{Name: "junk", Kind: bitflip.Float64},
		},
	}}
}

func (tt *toyTarget) TestCases(n int, seed uint64) []TestCase {
	tcs := make([]TestCase, n)
	for i := range tcs {
		tcs[i] = TestCase{ID: i, Seed: seed + uint64(i)}
	}
	return tcs
}

func (tt *toyTarget) Run(tc TestCase, probe Probe) (any, error) {
	var (
		acc  float64
		gate int64 = 7
		junk float64
	)
	vars := []VarRef{
		Float64Ref("acc", &acc),
		Int64Ref("gate", &gate),
		Float64Ref("junk", &junk),
	}
	ticks := tt.Ticks
	if ticks == 0 {
		ticks = 5
	}
	for i := 0; i < ticks; i++ {
		probe.Visit("M", Entry, vars)
		if tt.CrashOn > 0 && acc > tt.CrashOn {
			panic("toy target corrupted beyond recovery")
		}
		acc += float64(gate) * float64(tc.ID+1)
		junk = acc * 2 // dead: recomputed every activation
		probe.Visit("M", Exit, vars)
	}
	return toyOutput{Sum: acc}, nil
}

func (tt *toyTarget) Failed(_ TestCase, golden, observed any) bool {
	g, ok1 := golden.(toyOutput)
	o, ok2 := observed.(toyOutput)
	if !ok1 || !ok2 {
		return true
	}
	return g != o
}

var _ Target = (*toyTarget)(nil)

func toySpec() Spec {
	return Spec{
		Dataset:        "TOY-1",
		Module:         "M",
		InjectAt:       Entry,
		SampleAt:       Exit,
		InjectionTimes: []int{2, 4},
		TestCases:      3,
		Seed:           1,
		BitStride:      1,
	}
}

func TestSpecValidate(t *testing.T) {
	good := toySpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("good spec: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Dataset = "" },
		func(s *Spec) { s.Module = "" },
		func(s *Spec) { s.InjectAt = 0 },
		func(s *Spec) { s.SampleAt = 99 },
		func(s *Spec) { s.InjectionTimes = nil },
		func(s *Spec) { s.InjectionTimes = []int{0} },
		func(s *Spec) { s.TestCases = 0 },
		func(s *Spec) { s.BitStride = -1 },
	}
	for i, mutate := range bad {
		s := toySpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d should fail validation", i)
		}
	}
}

func TestBitPlan(t *testing.T) {
	if got := len(BitPlan(bitflip.Float64, 1)); got != 64 {
		t.Errorf("stride 1 covers %d bits, want 64", got)
	}
	if got := len(BitPlan(bitflip.Bool, 4)); got != 1 {
		t.Errorf("bool plan = %d bits, want 1", got)
	}
	plan := BitPlan(bitflip.Float64, 4)
	// Dense top: sign, exponent and top mantissa always present.
	for b := 48; b < 64; b++ {
		found := false
		for _, p := range plan {
			if p == b {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("bit %d missing from strided plan", b)
		}
	}
	// Strided low region.
	if plan[0] != 0 || plan[1] != 4 {
		t.Errorf("low region not strided: %v", plan[:2])
	}
	// No duplicates.
	seen := map[int]bool{}
	for _, b := range plan {
		if seen[b] {
			t.Errorf("duplicate bit %d", b)
		}
		seen[b] = true
	}
}

func TestRunCampaign(t *testing.T) {
	target := &toyTarget{}
	camp, err := Run(context.Background(), target, toySpec())
	if err != nil {
		t.Fatal(err)
	}
	// 3 test cases x (64+64+64) bits x 2 times.
	want := 3 * 192 * 2
	if len(camp.Records) != want {
		t.Fatalf("records = %d, want %d", len(camp.Records), want)
	}
	if camp.Target != "Toy" {
		t.Errorf("target = %q", camp.Target)
	}
	if len(camp.VarNames) != 3 || camp.VarNames[1] != "gate" {
		t.Errorf("var names = %v", camp.VarNames)
	}
	for i := range camp.Records {
		r := &camp.Records[i]
		if !r.Injected || !r.Sampled {
			t.Fatalf("record %d not injected/sampled: %+v", i, r)
		}
		if len(r.State) != 3 {
			t.Fatalf("record %d state arity %d", i, len(r.State))
		}
	}
	// acc and gate faults corrupt the sum; junk faults are dead.
	perVar := map[string][2]int{}
	for i := range camp.Records {
		r := &camp.Records[i]
		c := perVar[r.Var]
		c[0]++
		if r.Failure {
			c[1]++
		}
		perVar[r.Var] = c
	}
	if perVar["junk"][1] != 0 {
		t.Errorf("junk caused %d failures, want 0", perVar["junk"][1])
	}
	if perVar["gate"][1] == 0 || perVar["acc"][1] == 0 {
		t.Errorf("live variables caused no failures: %v", perVar)
	}
	if camp.Failures() == 0 || camp.Failures() == camp.Usable() {
		t.Errorf("degenerate failure count %d of %d", camp.Failures(), camp.Usable())
	}
}

func TestRunDeterminism(t *testing.T) {
	target := &toyTarget{}
	c1, err := Run(context.Background(), target, toySpec())
	if err != nil {
		t.Fatal(err)
	}
	spec := toySpec()
	spec.Workers = 1
	c2, err := Run(context.Background(), target, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(c1.Records) != len(c2.Records) {
		t.Fatal("record counts differ across worker counts")
	}
	for i := range c1.Records {
		a, b := c1.Records[i], c2.Records[i]
		if a.Var != b.Var || a.Bit != b.Bit || a.Failure != b.Failure || a.TestCase != b.TestCase {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestRunHandlesPanics(t *testing.T) {
	target := &toyTarget{CrashOn: 1e6}
	camp, err := Run(context.Background(), target, toySpec())
	if err != nil {
		t.Fatal(err)
	}
	crashed := 0
	for i := range camp.Records {
		if camp.Records[i].Crashed {
			crashed++
			if !camp.Records[i].Failure {
				t.Fatal("crashed run must be a failure")
			}
		}
	}
	if crashed == 0 {
		t.Fatal("expected some corrupted runs to panic")
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	target := &toyTarget{Ticks: 100}
	if _, err := Run(ctx, target, toySpec()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunUnknownModule(t *testing.T) {
	spec := toySpec()
	spec.Module = "nope"
	if _, err := Run(context.Background(), &toyTarget{}, spec); !errors.Is(err, ErrModuleNotFound) {
		t.Fatalf("err = %v, want ErrModuleNotFound", err)
	}
}

func TestInjectionNotReached(t *testing.T) {
	spec := toySpec()
	spec.InjectionTimes = []int{1000} // toy target has 5 activations
	camp, err := Run(context.Background(), &toyTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := range camp.Records {
		r := &camp.Records[i]
		if r.Injected || r.Sampled || r.Failure {
			t.Fatalf("unreachable injection produced %+v", r)
		}
	}
	if camp.Usable() != 0 {
		t.Fatal("no record should be usable")
	}
}

func TestSampleSameLocation(t *testing.T) {
	// Entry/Entry sampling captures the state immediately after the
	// flip, in the same visit.
	spec := toySpec()
	spec.InjectAt, spec.SampleAt = Entry, Entry
	spec.InjectionTimes = []int{1}
	camp, err := Run(context.Background(), &toyTarget{}, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Find a gate-bit-0 record for test case 0: gate was 7, flip bit 0
	// gives 6; the entry sample must show the corrupted value.
	found := false
	for i := range camp.Records {
		r := &camp.Records[i]
		if r.Var == "gate" && r.Bit == 0 && r.TestCase == 0 {
			found = true
			if r.State[1] != 6 {
				t.Fatalf("sampled gate = %v, want 6", r.State[1])
			}
		}
	}
	if !found {
		t.Fatal("expected gate bit-0 record")
	}
}

func TestChainProbe(t *testing.T) {
	var log []string
	mk := func(name string) Probe {
		return probeFunc(func(module string, loc Location, _ []VarRef) {
			log = append(log, fmt.Sprintf("%s:%s:%s", name, module, loc))
		})
	}
	chain := Chain(mk("a"), mk("b"))
	chain.Visit("M", Entry, nil)
	if strings.Join(log, ",") != "a:M:Entry,b:M:Entry" {
		t.Fatalf("chain order: %v", log)
	}
}

type probeFunc func(string, Location, []VarRef)

func (f probeFunc) Visit(m string, l Location, v []VarRef) { f(m, l, v) }

func TestLocationString(t *testing.T) {
	if Entry.String() != "Entry" || Exit.String() != "Exit" {
		t.Fatal("location names")
	}
	if Location(9).String() != "Location(9)" {
		t.Fatal("unknown location rendering")
	}
}

func TestVarRefAdapters(t *testing.T) {
	f := 1.5
	fr := Float64Ref("f", &f)
	if fr.Read() != 1.5 {
		t.Fatal("float read")
	}
	if err := fr.FlipBit(63); err != nil || f != -1.5 {
		t.Fatalf("float flip: %v %v", err, f)
	}
	if err := fr.FlipBit(64); err == nil {
		t.Fatal("bad bit should error")
	}

	i := int64(4)
	ir := Int64Ref("i", &i)
	if err := ir.FlipBit(0); err != nil || i != 5 || ir.Read() != 5 {
		t.Fatalf("int64 flip: %v %v", err, i)
	}
	if err := ir.FlipBit(64); err == nil {
		t.Fatal("bad bit should error")
	}

	n := 2
	nr := IntRef("n", &n)
	if err := nr.FlipBit(0); err != nil || n != 3 {
		t.Fatalf("int flip: %v %v", err, n)
	}

	var i32 int32 = 1
	i32r := Int32Ref("i32", &i32)
	if err := i32r.FlipBit(1); err != nil || i32 != 3 || i32r.Read() != 3 {
		t.Fatalf("int32 flip: %v %v", err, i32)
	}

	b := false
	br := BoolRef("b", &b)
	if br.Read() != 0 {
		t.Fatal("bool read")
	}
	if err := br.FlipBit(0); err != nil || !b || br.Read() != 1 {
		t.Fatalf("bool flip: %v %v", err, b)
	}
	if err := br.FlipBit(1); err == nil {
		t.Fatal("bad bool bit should error")
	}
}

func TestModuleLookup(t *testing.T) {
	if _, ok := Module(&toyTarget{}, "M"); !ok {
		t.Fatal("module M should exist")
	}
	if _, ok := Module(&toyTarget{}, "X"); ok {
		t.Fatal("module X should not exist")
	}
}
