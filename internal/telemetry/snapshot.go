package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"strings"
	"time"
)

// Snapshot is a consistent-enough copy of a registry's state, suitable
// for JSON serialisation (`edem ... -metrics-out`), expvar exposure and
// the -trace span tree. Counters and phases are read individually with
// atomic loads; a snapshot taken while the pipeline runs may therefore
// be torn across metrics, but any snapshot taken after the instrumented
// work completed is exact.
type Snapshot struct {
	// WallNS is the wall-clock nanoseconds from registry creation to the
	// snapshot — the denominator for phase coverage checks.
	WallNS   int64                        `json:"wall_ns"`
	Counters map[string]int64             `json:"counters,omitempty"`
	Gauges   map[string]int64             `json:"gauges,omitempty"`
	Hists    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Phases maps span paths ("refine/cell") to their aggregates.
	Phases map[string]PhaseSnapshot `json:"phases,omitempty"`
}

// PhaseSnapshot is the aggregate of every ended span under one path.
type PhaseSnapshot struct {
	Count int64 `json:"count"`
	// NS is the summed wall-clock of the spans. Spans on concurrent
	// goroutines accumulate independently, so under parallelism this is
	// busy time, not elapsed time; it equals elapsed time only for
	// serial execution (-workers 1).
	NS int64 `json:"ns"`
	// Allocs is the heap objects allocated during the spans
	// (process-wide counter deltas — an upper bound under parallelism).
	Allocs int64 `json:"allocs"`
}

// HistogramSnapshot summarises a histogram: count, sum and power-of-two
// bucket quantile bounds.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// Snapshot captures the registry state. Returns an empty snapshot on a
// nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistogramSnapshot{},
		Phases:   map[string]PhaseSnapshot{},
	}
	if r == nil {
		return s
	}
	s.WallNS = int64(r.Wall())
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Hists[name] = HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
			Max:   h.Quantile(1),
		}
	}
	for path, p := range r.phases {
		s.Phases[path] = PhaseSnapshot{
			Count:  p.count.Load(),
			NS:     p.ns.Load(),
			Allocs: p.allocs.Load(),
		}
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON with sorted keys
// (encoding/json sorts map keys), so output is diffable.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// RootPhaseNS sums the durations of top-level phases (paths without a
// '/'). Nested spans are excluded, so the sum does not double-count;
// for a serial run it should account for nearly all of WallNS.
func (s *Snapshot) RootPhaseNS() int64 {
	var total int64
	for path, p := range s.Phases {
		if !strings.Contains(path, "/") {
			total += p.NS
		}
	}
	return total
}

// FormatTree renders the phase aggregates as an indented tree with
// counts, total and mean durations and allocation deltas — the -trace
// output. Sibling order is by first-segment path order (alphabetical),
// which is stable across runs.
func (s *Snapshot) FormatTree() string {
	if len(s.Phases) == 0 {
		return "no spans recorded\n"
	}
	paths := sortedKeys(s.Phases)
	// Parents always sort before their children ("refine" < "refine/cell"
	// fails lexically: '/' < any letter is false — '/' is 0x2f, letters
	// 0x41+, so "refine" < "refine/cell" holds by prefix rule). Render in
	// sorted order with depth = number of separators.
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-36s %9s %12s %12s %12s\n", "phase", "count", "total", "mean", "allocs")
	for _, path := range paths {
		p := s.Phases[path]
		depth := strings.Count(path, "/")
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		indent := strings.Repeat("  ", depth)
		mean := time.Duration(0)
		if p.Count > 0 {
			mean = time.Duration(p.NS / p.Count)
		}
		fmt.Fprintf(&sb, "%-36s %9d %12s %12s %12d\n",
			indent+name, p.Count,
			time.Duration(p.NS).Round(time.Microsecond),
			mean.Round(time.Microsecond),
			p.Allocs)
	}
	wall := time.Duration(s.WallNS).Round(time.Microsecond)
	root := time.Duration(s.RootPhaseNS()).Round(time.Microsecond)
	fmt.Fprintf(&sb, "wall %s, root phases %s", wall, root)
	if s.WallNS > 0 {
		fmt.Fprintf(&sb, " (%.1f%% coverage; >100%% means parallel phases)",
			100*float64(s.RootPhaseNS())/float64(s.WallNS))
	}
	sb.WriteByte('\n')
	return sb.String()
}

// CounterNames returns the counter names present in the snapshot,
// sorted.
func (s *Snapshot) CounterNames() []string { return sortedKeys(s.Counters) }

// PublishExpvar exposes the process-default registry under the given
// expvar name as a function variable that snapshots on demand
// (GET /debug/vars). It reads Default() per request, so it tracks
// registry swaps (and reports an empty snapshot while disabled). Like
// expvar.Publish it must be called at most once per name per process.
func PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any { return Default().Snapshot() }))
}
