package telemetry

import (
	"context"
	"runtime/metrics"
	"time"
)

// Context keys. Registry and span path travel separately: the path is
// what makes nested StartSpan calls aggregate under "parent/child".
type (
	registryKey struct{}
	pathKey     struct{}
)

// WithRegistry returns a context that carries r; instrumented pipeline
// stages called with the returned context report into r instead of the
// process default. Passing nil r returns ctx unchanged.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey{}, r)
}

// FromContext returns the registry carried by ctx, falling back to the
// process default. Returns nil when telemetry is disabled on both
// paths — callers use the result directly; every method is nil-safe.
func FromContext(ctx context.Context) *Registry {
	if ctx != nil {
		if r, ok := ctx.Value(registryKey{}).(*Registry); ok {
			return r
		}
	}
	return Default()
}

// Span measures one execution of a named pipeline phase. Spans nest
// through context: a span started from a context whose active span path
// is "refine" and named "cell" aggregates under "refine/cell". Ending a
// span folds its wall-clock, one call count and the heap allocations
// that occurred during it into the phase aggregate; individual spans
// are not retained, so span volume does not grow memory.
type Span struct {
	ph      *phase
	start   time.Time
	allocs0 uint64
}

// StartSpan begins a phase span named name. When no registry is active
// (neither in ctx nor as the process default) it returns ctx unchanged
// and a nil span whose End is a no-op — the disabled fast path costs
// two pointer lookups and no allocation.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	reg := FromContext(ctx)
	if reg == nil {
		return ctx, nil
	}
	path := name
	if parent, ok := ctx.Value(pathKey{}).(string); ok && parent != "" {
		path = parent + "/" + name
	}
	s := &Span{ph: reg.phase(path), start: time.Now(), allocs0: heapAllocs()}
	return context.WithValue(ctx, pathKey{}, path), s
}

// End finishes the span and returns its wall-clock duration. Safe on a
// nil span (returns zero). End must be called at most once.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	s.ph.ns.Add(int64(d))
	s.ph.count.Add(1)
	if a := heapAllocs(); a > s.allocs0 {
		s.ph.allocs.Add(int64(a - s.allocs0))
	}
	return d
}

// heapAllocsSample names the runtime metric used for per-span
// allocation deltas: cumulative heap objects allocated. runtime/metrics
// reads are cheap (no stop-the-world), but the count is process-wide,
// so spans that overlap concurrent work attribute each other's
// allocations; treat the column as an upper bound under parallelism.
const heapAllocsSample = "/gc/heap/allocs:objects"

func heapAllocs() uint64 {
	s := []metrics.Sample{{Name: heapAllocsSample}}
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}
