package telemetry

import "testing"

func TestDistance(t *testing.T) {
	cases := []struct {
		name string
		a, b []int64
		want float64
	}{
		{"both empty", nil, nil, 0},
		{"both zero mass", []int64{0, 0}, []int64{0, 0}, 0},
		{"one empty", []int64{1, 2}, nil, 1},
		{"one zero mass", []int64{0}, []int64{3}, 1},
		{"identical", []int64{1, 2, 3}, []int64{1, 2, 3}, 0},
		{"proportional", []int64{1, 1}, []int64{10, 10}, 0},
		{"disjoint", []int64{4, 0}, []int64{0, 4}, 1},
		{"half moved", []int64{2, 2, 0}, []int64{2, 0, 2}, 0.5},
		{"length mismatch zero pads", []int64{1, 1}, []int64{1, 1, 0, 0}, 0},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("%s: Distance(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
	// Symmetry and range on an arbitrary pair.
	a, b := []int64{5, 0, 3, 9}, []int64{1, 7, 0, 2}
	d1, d2 := Distance(a, b), Distance(b, a)
	if d1 != d2 {
		t.Errorf("asymmetric: %v vs %v", d1, d2)
	}
	if d1 < 0 || d1 > 1 {
		t.Errorf("out of [0,1]: %v", d1)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Buckets(); len(got) != histBuckets {
		t.Fatalf("nil histogram buckets length %d, want %d", len(got), histBuckets)
	}
	h := &Histogram{}
	h.Observe(0) // bucket 0
	h.Observe(1) // bucket 1
	h.Observe(1)
	h.Observe(1 << 21) // bucket 22
	bk := h.Buckets()
	if bk[0] != 1 || bk[1] != 2 || bk[22] != 1 {
		t.Fatalf("buckets = %v", bk[:24])
	}
	var total int64
	for _, v := range bk {
		total += v
	}
	if total != h.Count() {
		t.Fatalf("bucket mass %d != count %d", total, h.Count())
	}
}
