package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestSpanDisabledFastPath(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	SetDefault(nil)

	ctx := context.Background()
	ctx2, span := StartSpan(ctx, "phase")
	if span != nil {
		t.Fatal("disabled StartSpan must return nil span")
	}
	if ctx2 != ctx {
		t.Fatal("disabled StartSpan must not derive a new context")
	}
	if d := span.End(); d != 0 {
		t.Fatal("nil span End must return 0")
	}
}

func TestSpanNesting(t *testing.T) {
	r := New()
	ctx := WithRegistry(context.Background(), r)

	ctx1, outer := StartSpan(ctx, "refine")
	for i := 0; i < 3; i++ {
		_, inner := StartSpan(ctx1, "cell")
		time.Sleep(time.Millisecond)
		if inner.End() <= 0 {
			t.Fatal("span duration must be positive")
		}
	}
	outer.End()

	snap := r.Snapshot()
	root, ok := snap.Phases["refine"]
	if !ok {
		t.Fatalf("missing root phase, got %v", snap.Phases)
	}
	cell, ok := snap.Phases["refine/cell"]
	if !ok {
		t.Fatalf("missing nested phase, got %v", snap.Phases)
	}
	if root.Count != 1 || cell.Count != 3 {
		t.Fatalf("counts root=%d cell=%d, want 1 and 3", root.Count, cell.Count)
	}
	if root.NS < cell.NS {
		t.Fatalf("outer span (%d ns) must cover nested spans (%d ns)", root.NS, cell.NS)
	}
	if snap.RootPhaseNS() != root.NS {
		t.Fatalf("RootPhaseNS %d must count only top-level phases (%d)", snap.RootPhaseNS(), root.NS)
	}
}

func TestSpanSiblingsShareAggregate(t *testing.T) {
	r := New()
	ctx := WithRegistry(context.Background(), r)
	for i := 0; i < 5; i++ {
		_, s := StartSpan(ctx, "campaign")
		s.End()
	}
	if got := r.Snapshot().Phases["campaign"].Count; got != 5 {
		t.Fatalf("aggregate count = %d, want 5", got)
	}
}

func TestContextRegistryOverridesDefault(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	def := New()
	SetDefault(def)

	local := New()
	ctx := WithRegistry(context.Background(), local)
	_, s := StartSpan(ctx, "p")
	s.End()
	if n := local.Snapshot().Phases["p"].Count; n != 1 {
		t.Fatalf("context registry must receive the span, got %d", n)
	}
	if n := def.Snapshot().Phases["p"].Count; n != 0 {
		t.Fatalf("default registry must not receive the span, got %d", n)
	}

	// Without a context registry, spans fall back to the default.
	_, s2 := StartSpan(context.Background(), "q")
	s2.End()
	if n := def.Snapshot().Phases["q"].Count; n != 1 {
		t.Fatalf("default registry fallback broken, got %d", n)
	}
}

func TestSpanAllocsTracked(t *testing.T) {
	r := New()
	ctx := WithRegistry(context.Background(), r)
	_, s := StartSpan(ctx, "alloc")
	sink := make([][]byte, 0, 1000)
	for i := 0; i < 1000; i++ {
		sink = append(sink, make([]byte, 64))
	}
	s.End()
	if len(sink) != 1000 {
		t.Fatal("unreachable")
	}
	if got := r.Snapshot().Phases["alloc"].Allocs; got < 1000 {
		t.Fatalf("allocs = %d, want >= 1000", got)
	}
}

func TestFormatTreeRendersNesting(t *testing.T) {
	r := New()
	ctx := WithRegistry(context.Background(), r)
	c1, outer := StartSpan(ctx, "refine")
	_, inner := StartSpan(c1, "cell")
	inner.End()
	outer.End()
	tree := r.Snapshot().FormatTree()
	if !strings.Contains(tree, "refine") || !strings.Contains(tree, "  cell") {
		t.Fatalf("tree missing indented child:\n%s", tree)
	}
	if !strings.Contains(tree, "wall ") {
		t.Fatalf("tree missing wall summary:\n%s", tree)
	}
}
