package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("x").Add(3)
	r.Counter("x").Inc()
	r.Gauge("g").Set(7)
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(10)
	r.Histogram("h").ObserveDuration(time.Second)
	if r.Counter("x").Value() != 0 || r.Gauge("g").Value() != 0 || r.Histogram("h").Count() != 0 {
		t.Fatal("nil registry must absorb all updates")
	}
	if r.Wall() != 0 {
		t.Fatal("nil registry wall must be zero")
	}
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || snap.WallNS != 0 {
		t.Fatalf("nil registry snapshot must be empty, got %+v", snap)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	r.Counter("runs").Add(5)
	r.Counter("runs").Inc()
	if got := r.Counter("runs").Value(); got != 6 {
		t.Fatalf("counter = %d, want 6", got)
	}
	r.Gauge("budget").Set(8)
	r.Gauge("budget").Add(-3)
	if got := r.Gauge("budget").Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	h := r.Histogram("lat")
	for _, v := range []int64{1, 2, 3, 100, -5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("hist count = %d, want 5", h.Count())
	}
	if h.Sum() != 106 { // -5 clamps to 0
		t.Fatalf("hist sum = %d, want 106", h.Sum())
	}
	if h.Mean() != 106.0/5 {
		t.Fatalf("hist mean = %v", h.Mean())
	}
	if q := h.Quantile(1); q < 100 {
		t.Fatalf("max quantile bound %d should cover 100", q)
	}
	if q := h.Quantile(0); q > 1 {
		t.Fatalf("min quantile bound %d too high", q)
	}
}

func TestRegistryMetricsAreStable(t *testing.T) {
	r := New()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return same counter")
	}
	if r.Gauge("a") == nil || r.Histogram("a") == nil {
		t.Fatal("gauge/histogram share the namespace without clashing")
	}
}

func TestConcurrentCounters(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("n")
			h := r.Histogram("h")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("concurrent hist count = %d, want 8000", got)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.Counter("campaign.runs_injected").Add(42)
	r.Gauge("workers").Set(4)
	r.Histogram("cell_ns").Observe(1500)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON must parse: %v\n%s", err, buf.String())
	}
	if back.Counters["campaign.runs_injected"] != 42 {
		t.Fatalf("counter lost in round trip: %+v", back)
	}
	if back.Gauges["workers"] != 4 {
		t.Fatalf("gauge lost in round trip: %+v", back)
	}
	if back.Hists["cell_ns"].Count != 1 {
		t.Fatalf("histogram lost in round trip: %+v", back)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int64]int{0: 0, 1: 1, 2: 2, 3: 2, 4: 3, 1023: 10, 1024: 11}
	for v, want := range cases {
		if got := bucketOf(v); got != want {
			t.Errorf("bucketOf(%d) = %d, want %d", v, got, want)
		}
	}
	if got := bucketOf(1 << 62); got != histBuckets-1 {
		t.Errorf("huge value bucket = %d, want %d", got, histBuckets-1)
	}
}

func TestDefaultRegistry(t *testing.T) {
	old := Default()
	defer SetDefault(old)
	r := New()
	SetDefault(r)
	if Default() != r {
		t.Fatal("SetDefault/Default mismatch")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) must disable")
	}
}

func TestFormatTreeEmpty(t *testing.T) {
	if !strings.Contains(New().Snapshot().FormatTree(), "no spans") {
		t.Error("empty tree should say so")
	}
}
