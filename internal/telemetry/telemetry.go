// Package telemetry is the observability substrate of the pipeline: a
// dependency-free metrics registry (counters, gauges, duration
// histograms) plus lightweight phase spans that nest through context
// and aggregate per-phase wall-clock, call counts and heap allocations.
//
// Every instrumented layer — fault-injection campaigns (propane.Run),
// preprocessing (core.Preprocess), baseline cross-validation
// (core.Baseline, eval.CrossValidate), the refinement grid's cells
// (core.Refine) and detector re-validation (core.ValidateDetector) —
// reports into whichever Registry is active. A Registry reaches the
// pipeline one of two ways:
//
//   - through context (WithRegistry), which scopes metrics to one
//     pipeline invocation and makes concurrent runs independently
//     observable, or
//   - through the process default (SetDefault), which is what the CLI's
//     -metrics-out / -trace flags and the expvar endpoint use.
//
// Telemetry is disabled by default and the disabled path is engineered
// to be near-free: a nil *Registry is a valid receiver for every method,
// a nil *Counter/*Gauge/*Histogram absorbs updates with a single
// predictable branch, and StartSpan on a disabled context returns a nil
// *Span whose End is a no-op. Hot loops therefore hoist the metric
// lookup out of the loop once and call Add unconditionally; see
// BenchmarkTelemetryOverhead for the measured cost (<2% on tree
// induction, the tightest instrumented loop).
//
// Role in the methodology: cross-cutting — it observes all four steps
// without participating in any result. Concurrency: a Registry and all
// its metrics are safe for unrestricted concurrent use (atomic
// updates); counter values are scheduling-invariant, so snapshots after
// completion are exact for any worker count. A *Span belongs to the
// goroutine (or context subtree) that started it; End it exactly once.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds the metrics of one observation scope. The zero value
// is not used directly; create instances with New. All methods are safe
// for concurrent use, and all methods tolerate a nil receiver (they
// no-op or return nil), which is the disabled fast path.
type Registry struct {
	start atomic.Int64 // registry epoch, ns since Unix epoch

	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	phases   map[string]*phase
}

// New returns an empty registry with its wall-clock epoch set to now.
func New() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		phases:   make(map[string]*phase),
	}
	r.start.Store(time.Now().UnixNano())
	return r
}

// defaultRegistry is the process-wide registry used when none travels in
// the context — nil means telemetry is disabled, the default.
var defaultRegistry atomic.Pointer[Registry]

// SetDefault installs r as the process-wide default registry. Passing
// nil disables telemetry for every code path that does not carry an
// explicit registry in its context.
func SetDefault(r *Registry) { defaultRegistry.Store(r) }

// Default returns the process-wide registry, or nil when telemetry is
// disabled.
func Default() *Registry { return defaultRegistry.Load() }

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil registry; a nil *Counter accepts Add/Inc as no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// phase returns the aggregate for a span path, creating it on first use.
func (r *Registry) phase(path string) *phase {
	r.mu.RLock()
	p := r.phases[path]
	r.mu.RUnlock()
	if p != nil {
		return p
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if p = r.phases[path]; p == nil {
		p = &phase{}
		r.phases[path] = p
	}
	return p
}

// Wall returns the wall-clock time elapsed since the registry was
// created (zero on a nil registry).
func (r *Registry) Wall() time.Duration {
	if r == nil {
		return 0
	}
	return time.Duration(time.Now().UnixNano() - r.start.Load())
}

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; a nil *Counter absorbs updates.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n. No-op on a nil counter.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil counter.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer metric (e.g. a configured worker
// budget or grid size). A nil *Gauge absorbs updates.
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value. No-op on a nil gauge.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adjusts the gauge by delta. No-op on a nil gauge.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value (zero on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the bucket count of a Histogram: observations land in
// bucket floor(log2(v))+1, so 64 buckets cover the whole non-negative
// int64 range. Bucket 0 holds v <= 0.
const histBuckets = 64

// Histogram records a distribution of non-negative int64 observations
// (durations in nanoseconds, sizes) in power-of-two buckets. The hot
// path is two atomic adds plus a bit-length; there is no locking. A nil
// *Histogram absorbs observations.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one observation. Values below zero clamp to zero.
// No-op on a nil histogram.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	if v < 0 {
		v = 0
	}
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// ObserveDuration records a duration observation in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// bucketOf maps an observation to its power-of-two bucket index.
func bucketOf(v int64) int {
	idx := 0
	for v > 0 {
		idx++
		v >>= 1
	}
	if idx >= histBuckets {
		idx = histBuckets - 1
	}
	return idx
}

// Buckets returns a copy of the power-of-two bucket counts (bucket i
// holds values whose bit length is i; bucket 0 holds v <= 0). Nil-safe:
// a nil histogram returns a zero slice of the standard length, so
// comparators never branch on presence.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, histBuckets)
	if h == nil {
		return out
	}
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Distance is the deterministic histogram comparator used by drift
// detection (internal/lifecycle): the total-variation distance between
// the two bucket-mass distributions, in [0, 1]. 0 means identical
// shape, 1 means disjoint support. Edge semantics are fixed so drift
// verdicts are reproducible:
//
//   - both histograms empty → 0 (no evidence is not drift),
//   - exactly one empty → 1 (mass appeared from, or vanished to, nothing),
//   - different lengths → the shorter is treated as zero-padded.
//
// Normalisation and summation happen in ascending bucket order with
// IEEE-754 float64 arithmetic, so the result is bit-reproducible for
// the same inputs on any conforming platform.
func Distance(a, b []int64) float64 {
	var na, nb int64
	for _, v := range a {
		na += v
	}
	for _, v := range b {
		nb += v
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	var sum float64
	for i := 0; i < n; i++ {
		var av, bv int64
		if i < len(a) {
			av = a[i]
		}
		if i < len(b) {
			bv = b[i]
		}
		d := float64(av)/float64(na) - float64(bv)/float64(nb)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / 2
}

// Count returns the number of observations (zero on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (zero on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation, or zero before any observation.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) from
// the power-of-two buckets: the top of the bucket containing the
// q-quantile observation. Zero before any observation.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.Count()
	if h == nil || n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n-1))
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return bucketTop(i)
		}
	}
	return bucketTop(histBuckets - 1)
}

// bucketTop returns the largest value that lands in bucket i.
func bucketTop(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

// phase aggregates every span ended under one path.
type phase struct {
	count  atomic.Int64
	ns     atomic.Int64
	allocs atomic.Int64
}

// sortedKeys returns the keys of a map in sorted order — snapshots and
// rendered trees must be deterministic for golden tests and diffs.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
