package dataset

import (
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	d := sampleDataset(t, 20)
	d.Instances[2].Values[0] = Missing
	d.Instances[5].Values[2] = Missing

	var sb strings.Builder
	if err := WriteCSV(&sb, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(strings.NewReader(sb.String()), "rt")
	if err != nil {
		t.Fatalf("ReadCSV: %v\n%s", err, sb.String())
	}
	if got.Len() != d.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), d.Len())
	}
	for a := range d.Attrs {
		if got.Attrs[a].Type != d.Attrs[a].Type {
			t.Fatalf("attr %d type %v, want %v", a, got.Attrs[a].Type, d.Attrs[a].Type)
		}
	}
	for i := range d.Instances {
		want := d.Instances[i]
		have := got.Instances[i]
		if d.ClassValues[want.Class] != got.ClassValues[have.Class] {
			t.Fatalf("row %d class mismatch", i)
		}
		for j := range want.Values {
			wv, hv := want.Values[j], have.Values[j]
			if IsMissing(wv) != IsMissing(hv) {
				t.Fatalf("row %d col %d missing mismatch", i, j)
			}
			if IsMissing(wv) {
				continue
			}
			if d.Attrs[j].Type == Nominal {
				if d.Attrs[j].Values[int(wv)] != got.Attrs[j].Values[int(hv)] {
					t.Fatalf("row %d col %d nominal mismatch", i, j)
				}
			} else if wv != hv {
				t.Fatalf("row %d col %d: %v != %v", i, j, wv, hv)
			}
		}
	}
}

func TestReadCSVTypeInference(t *testing.T) {
	src := "x,mode,class\n1.5,on,a\n2.5,off,b\n?,on,a\n"
	d, err := ReadCSV(strings.NewReader(src), "ti")
	if err != nil {
		t.Fatal(err)
	}
	if d.Attrs[0].Type != Numeric {
		t.Error("x should be numeric")
	}
	if d.Attrs[1].Type != Nominal || len(d.Attrs[1].Values) != 2 {
		t.Errorf("mode attr = %+v", d.Attrs[1])
	}
	if len(d.ClassValues) != 2 {
		t.Errorf("classes = %v", d.ClassValues)
	}
	if !IsMissing(d.Instances[2].Values[0]) {
		t.Error("'?' should be missing")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"header only":   "x,class\n",
		"single column": "class\na\n",
		"missing class": "x,class\n1,?\n",
		"ragged row":    "x,class\n1,a,b\n",
	}
	for name, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src), "e"); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadCSVMixedColumnIsNominal(t *testing.T) {
	src := "v,class\n1.5,a\nhello,b\n2.5,a\n"
	d, err := ReadCSV(strings.NewReader(src), "m")
	if err != nil {
		t.Fatal(err)
	}
	if d.Attrs[0].Type != Nominal {
		t.Error("mixed column should fall back to nominal")
	}
	if len(d.Attrs[0].Values) != 3 {
		t.Errorf("domain = %v", d.Attrs[0].Values)
	}
}
