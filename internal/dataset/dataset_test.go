package dataset

import (
	"errors"
	"math"
	"testing"

	"edem/internal/stats"
)

func twoClassSchema() ([]Attribute, []string) {
	return []Attribute{
		NumericAttr("x"),
		NumericAttr("y"),
		NominalAttr("color", "red", "green", "blue"),
	}, []string{"neg", "pos"}
}

func sampleDataset(t *testing.T, n int) *Dataset {
	t.Helper()
	attrs, classes := twoClassSchema()
	d := New("sample", attrs, classes)
	rng := stats.NewRNG(1)
	for i := 0; i < n; i++ {
		class := 0
		if i%5 == 0 {
			class = 1
		}
		d.MustAdd(Instance{
			Values: []float64{rng.Float64() * 10, rng.Float64(), float64(rng.Intn(3))},
			Class:  class,
			Weight: 1,
		})
	}
	return d
}

func TestNewCopiesSchema(t *testing.T) {
	attrs, classes := twoClassSchema()
	d := New("n", attrs, classes)
	attrs[0].Name = "mutated"
	classes[0] = "mutated"
	if d.Attrs[0].Name != "x" || d.ClassValues[0] != "neg" {
		t.Fatal("New must copy the schema slices")
	}
}

func TestAddValidation(t *testing.T) {
	attrs, classes := twoClassSchema()
	d := New("v", attrs, classes)
	if err := d.Add(Instance{Values: []float64{1}, Class: 0}); !errors.Is(err, ErrArity) {
		t.Errorf("arity error = %v", err)
	}
	if err := d.Add(Instance{Values: []float64{1, 2, 0}, Class: 7}); !errors.Is(err, ErrClassRange) {
		t.Errorf("class error = %v", err)
	}
	if err := d.Add(Instance{Values: []float64{1, 2, 0}, Class: 1}); err != nil {
		t.Errorf("valid add: %v", err)
	}
	// Zero weight defaults to 1.
	if d.Instances[0].Weight != 1 {
		t.Errorf("weight = %v, want 1", d.Instances[0].Weight)
	}
}

func TestClassCountsAndWeights(t *testing.T) {
	d := sampleDataset(t, 20)
	counts := d.ClassCounts()
	if counts[0] != 16 || counts[1] != 4 {
		t.Fatalf("counts = %v", counts)
	}
	ws := d.ClassWeights()
	if ws[0] != 16 || ws[1] != 4 {
		t.Fatalf("weights = %v", ws)
	}
	if d.MajorityClass() != 0 {
		t.Fatalf("majority = %d", d.MajorityClass())
	}
	if d.TotalWeight() != 20 {
		t.Fatalf("total weight = %v", d.TotalWeight())
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := sampleDataset(t, 5)
	c := d.Clone()
	c.Instances[0].Values[0] = -999
	if d.Instances[0].Values[0] == -999 {
		t.Fatal("Clone shares value slices")
	}
}

func TestSubsetAndFilter(t *testing.T) {
	d := sampleDataset(t, 10)
	sub := d.Subset([]int{0, 2, 4})
	if sub.Len() != 3 {
		t.Fatalf("subset len = %d", sub.Len())
	}
	pos := d.Filter(func(in Instance) bool { return in.Class == 1 })
	if pos.Len() != 2 {
		t.Fatalf("filter len = %d", pos.Len())
	}
	for i := range pos.Instances {
		if pos.Instances[i].Class != 1 {
			t.Fatal("filter kept wrong class")
		}
	}
}

func TestAttrIndex(t *testing.T) {
	d := sampleDataset(t, 1)
	if i, ok := d.AttrIndex("y"); !ok || i != 1 {
		t.Fatalf("AttrIndex(y) = %d, %v", i, ok)
	}
	if _, ok := d.AttrIndex("missing"); ok {
		t.Fatal("AttrIndex(missing) should fail")
	}
}

func TestValueIndex(t *testing.T) {
	a := NominalAttr("c", "x", "y")
	if i, ok := a.ValueIndex("y"); !ok || i != 1 {
		t.Fatalf("ValueIndex = %d, %v", i, ok)
	}
	if _, ok := a.ValueIndex("z"); ok {
		t.Fatal("ValueIndex(z) should fail")
	}
}

func TestMissingSentinel(t *testing.T) {
	if !IsMissing(Missing) {
		t.Fatal("Missing must be missing")
	}
	if IsMissing(0) || IsMissing(math.Inf(1)) {
		t.Fatal("0 and Inf are not missing")
	}
}

func TestValidate(t *testing.T) {
	attrs, classes := twoClassSchema()
	d := New("v", attrs, classes)
	d.MustAdd(Instance{Values: []float64{1, 2, 1}, Class: 0, Weight: 1})
	if err := d.Validate(); err != nil {
		t.Fatalf("valid dataset: %v", err)
	}
	// Out-of-domain nominal index.
	d.Instances[0].Values[2] = 9
	if err := d.Validate(); err == nil {
		t.Fatal("nominal out of domain must fail validation")
	}
	d.Instances[0].Values[2] = 0.5
	if err := d.Validate(); err == nil {
		t.Fatal("non-integer nominal index must fail validation")
	}
	// Missing nominal is allowed.
	d.Instances[0].Values[2] = Missing
	if err := d.Validate(); err != nil {
		t.Fatalf("missing nominal should validate: %v", err)
	}

	empty := New("e", nil, classes)
	if err := empty.Validate(); !errors.Is(err, ErrNoAttributes) {
		t.Errorf("empty attrs error = %v", err)
	}
	noClass := New("e", attrs, nil)
	if err := noClass.Validate(); !errors.Is(err, ErrNoClass) {
		t.Errorf("no class error = %v", err)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	d1 := sampleDataset(t, 30)
	d2 := sampleDataset(t, 30)
	d1.Shuffle(stats.NewRNG(9))
	d2.Shuffle(stats.NewRNG(9))
	for i := range d1.Instances {
		if d1.Instances[i].Values[0] != d2.Instances[i].Values[0] {
			t.Fatal("same-seed shuffles differ")
		}
	}
}

func TestMajorityClassTieBreaksLow(t *testing.T) {
	attrs, classes := twoClassSchema()
	d := New("tie", attrs, classes)
	d.MustAdd(Instance{Values: []float64{0, 0, 0}, Class: 0, Weight: 1})
	d.MustAdd(Instance{Values: []float64{0, 0, 0}, Class: 1, Weight: 1})
	if d.MajorityClass() != 0 {
		t.Fatal("ties must resolve to the lower class index")
	}
}
