package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The ARFF subset implemented here covers what the methodology needs:
// @relation, @attribute (numeric and {nominal}) and dense @data rows with
// '?' for missing values — the format the purpose-built conversion tool
// of paper §VII-B emits for the Weka suite. The last attribute is the
// class, following Weka's convention.

// ParseError reports a malformed ARFF input.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("arff: line %d: %s", e.Line, e.Msg)
}

// WriteARFF serialises the dataset in ARFF. The class is emitted as the
// final attribute, named "class".
func WriteARFF(w io.Writer, d *Dataset) error {
	bw := bufio.NewWriter(w)
	name := d.Name
	if name == "" {
		name = "unnamed"
	}
	fmt.Fprintf(bw, "@relation %s\n\n", quoteIfNeeded(name))
	for _, a := range d.Attrs {
		switch a.Type {
		case Numeric:
			fmt.Fprintf(bw, "@attribute %s numeric\n", quoteIfNeeded(a.Name))
		case Nominal:
			vals := make([]string, len(a.Values))
			for i, v := range a.Values {
				vals[i] = quoteIfNeeded(v)
			}
			fmt.Fprintf(bw, "@attribute %s {%s}\n", quoteIfNeeded(a.Name), strings.Join(vals, ","))
		default:
			return fmt.Errorf("arff: attribute %q has unsupported type %v", a.Name, a.Type)
		}
	}
	classVals := make([]string, len(d.ClassValues))
	for i, v := range d.ClassValues {
		classVals[i] = quoteIfNeeded(v)
	}
	fmt.Fprintf(bw, "@attribute class {%s}\n\n@data\n", strings.Join(classVals, ","))

	for i := range d.Instances {
		in := &d.Instances[i]
		fields := make([]string, 0, len(in.Values)+1)
		for j, v := range in.Values {
			switch {
			case IsMissing(v):
				fields = append(fields, "?")
			case d.Attrs[j].Type == Nominal:
				fields = append(fields, quoteIfNeeded(d.Attrs[j].Values[int(v)]))
			default:
				fields = append(fields, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		fields = append(fields, quoteIfNeeded(d.ClassValues[in.Class]))
		fmt.Fprintln(bw, strings.Join(fields, ","))
	}
	return bw.Flush()
}

// ReadARFF parses an ARFF stream produced by WriteARFF or a compatible
// tool. The final attribute is taken as the class and must be nominal.
func ReadARFF(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)

	var (
		name    string
		attrs   []Attribute
		lineNo  int
		inData  bool
		dataset *Dataset
	)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if !inData {
			lower := strings.ToLower(line)
			switch {
			case strings.HasPrefix(lower, "@relation"):
				name = unquote(strings.TrimSpace(line[len("@relation"):]))
			case strings.HasPrefix(lower, "@attribute"):
				attr, err := parseAttribute(strings.TrimSpace(line[len("@attribute"):]), lineNo)
				if err != nil {
					return nil, err
				}
				attrs = append(attrs, attr)
			case strings.HasPrefix(lower, "@data"):
				if len(attrs) < 2 {
					return nil, &ParseError{Line: lineNo, Msg: "need at least one attribute plus a class"}
				}
				class := attrs[len(attrs)-1]
				if class.Type != Nominal {
					return nil, &ParseError{Line: lineNo, Msg: "class attribute must be nominal"}
				}
				dataset = New(name, attrs[:len(attrs)-1], class.Values)
				inData = true
			default:
				return nil, &ParseError{Line: lineNo, Msg: "unexpected header line: " + line}
			}
			continue
		}
		if err := parseDataRow(dataset, line, lineNo); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("arff: read: %w", err)
	}
	if dataset == nil {
		return nil, &ParseError{Line: lineNo, Msg: "missing @data section"}
	}
	return dataset, nil
}

func parseAttribute(rest string, lineNo int) (Attribute, error) {
	attrName, rest, err := takeToken(rest)
	if err != nil {
		return Attribute{}, &ParseError{Line: lineNo, Msg: "attribute missing name"}
	}
	rest = strings.TrimSpace(rest)
	lower := strings.ToLower(rest)
	switch {
	case lower == "numeric" || lower == "real" || lower == "integer":
		return NumericAttr(attrName), nil
	case strings.HasPrefix(rest, "{") && strings.HasSuffix(rest, "}"):
		inner := rest[1 : len(rest)-1]
		parts := splitCSV(inner)
		vals := make([]string, 0, len(parts))
		for _, p := range parts {
			vals = append(vals, unquote(strings.TrimSpace(p)))
		}
		return NominalAttr(attrName, vals...), nil
	default:
		return Attribute{}, &ParseError{Line: lineNo, Msg: "unsupported attribute type: " + rest}
	}
}

func parseDataRow(d *Dataset, line string, lineNo int) error {
	parts := splitCSV(line)
	if len(parts) != len(d.Attrs)+1 {
		return &ParseError{Line: lineNo, Msg: fmt.Sprintf("got %d fields, want %d", len(parts), len(d.Attrs)+1)}
	}
	in := Instance{Values: make([]float64, len(d.Attrs)), Weight: 1}
	for j := 0; j < len(d.Attrs); j++ {
		field := unquote(strings.TrimSpace(parts[j]))
		if field == "?" {
			in.Values[j] = Missing
			continue
		}
		if d.Attrs[j].Type == Nominal {
			idx, ok := d.Attrs[j].ValueIndex(field)
			if !ok {
				return &ParseError{Line: lineNo, Msg: fmt.Sprintf("value %q not in domain of %q", field, d.Attrs[j].Name)}
			}
			in.Values[j] = float64(idx)
			continue
		}
		v, err := strconv.ParseFloat(field, 64)
		if err != nil {
			return &ParseError{Line: lineNo, Msg: fmt.Sprintf("bad numeric value %q", field)}
		}
		in.Values[j] = v
	}
	classField := unquote(strings.TrimSpace(parts[len(parts)-1]))
	found := false
	for c, v := range d.ClassValues {
		if v == classField {
			in.Class = c
			found = true
			break
		}
	}
	if !found {
		return &ParseError{Line: lineNo, Msg: fmt.Sprintf("unknown class %q", classField)}
	}
	return d.Add(in)
}

// takeToken splits off the first whitespace- or quote-delimited token.
// Inside quotes a backslash escapes the next byte (the form
// quoteIfNeeded emits); the returned token is unescaped.
func takeToken(s string) (token, rest string, err error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", "", fmt.Errorf("empty")
	}
	if s[0] == '\'' || s[0] == '"' {
		q := s[0]
		for i := 1; i < len(s); i++ {
			switch s[i] {
			case '\\':
				i++ // skip the escaped byte
			case q:
				return unescape(s[1:i]), s[i+1:], nil
			}
		}
		return "", "", fmt.Errorf("unterminated quote")
	}
	for i := 0; i < len(s); i++ {
		if s[i] == ' ' || s[i] == '\t' {
			return s[:i], s[i:], nil
		}
	}
	return s, "", nil
}

// splitCSV splits on commas while respecting single/double quotes.
// Inside quotes a backslash escapes the next byte, so escaped quote
// characters neither close the quote nor allow a split.
func splitCSV(s string) []string {
	var parts []string
	var sb strings.Builder
	var quote byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case quote != 0:
			if c == '\\' && i+1 < len(s) {
				sb.WriteByte(c)
				i++
				sb.WriteByte(s[i])
				continue
			}
			if c == quote {
				quote = 0
			}
			sb.WriteByte(c)
		case c == '\'' || c == '"':
			quote = c
			sb.WriteByte(c)
		case c == ',':
			parts = append(parts, sb.String())
			sb.Reset()
		default:
			sb.WriteByte(c)
		}
	}
	parts = append(parts, sb.String())
	return parts
}

// quoteIfNeeded wraps values containing ARFF metacharacters in single
// quotes, backslash-escaping backslashes and single quotes so the
// reader's escape-aware scanners (takeToken, splitCSV, unquote) recover
// the value byte-for-byte.
func quoteIfNeeded(s string) string {
	if s == "" || strings.ContainsAny(s, " ,\t{}%'\"\\") {
		s = strings.ReplaceAll(s, `\`, `\\`)
		s = strings.ReplaceAll(s, "'", `\'`)
		return "'" + s + "'"
	}
	return s
}

func unquote(s string) string {
	if len(s) >= 2 {
		if (s[0] == '\'' && s[len(s)-1] == '\'') || (s[0] == '"' && s[len(s)-1] == '"') {
			return unescape(s[1 : len(s)-1])
		}
	}
	return s
}

// unescape resolves backslash escapes left-to-right; a ReplaceAll pair
// would corrupt adjacent escapes (`\\` followed by `\'`).
func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var sb strings.Builder
	sb.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		sb.WriteByte(s[i])
	}
	return sb.String()
}
