package dataset

import (
	"fmt"

	"edem/internal/stats"
)

// Fold is one train/test split of a cross-validation.
type Fold struct {
	Train []int // instance indices
	Test  []int
}

// StratifiedKFold partitions the dataset into k folds whose class
// distribution approximates the full dataset's ("10 stratified samples",
// paper §VII-C). The assignment is deterministic for a given rng seed.
//
// Each instance appears in exactly one Test set; Train is its complement.
func StratifiedKFold(d *Dataset, k int, rng *stats.RNG) ([]Fold, error) {
	if k < 2 {
		return nil, fmt.Errorf("dataset: k-fold requires k >= 2, got %d", k)
	}
	if d.Len() < k {
		return nil, fmt.Errorf("dataset: %d instances cannot fill %d folds", d.Len(), k)
	}

	// Group instance indices by class, shuffle within each class, then
	// deal them round-robin across folds so every fold receives a
	// proportional share of each class.
	byClass := make([][]int, len(d.ClassValues))
	for i := range d.Instances {
		c := d.Instances[i].Class
		byClass[c] = append(byClass[c], i)
	}
	testSets := make([][]int, k)
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		for pos, idx := range idxs {
			f := pos % k
			testSets[f] = append(testSets[f], idx)
		}
	}

	folds := make([]Fold, k)
	inTest := make([]int, d.Len()) // fold number + 1, 0 = unassigned
	for f, set := range testSets {
		for _, idx := range set {
			inTest[idx] = f + 1
		}
	}
	for f := 0; f < k; f++ {
		folds[f].Test = testSets[f]
		train := make([]int, 0, d.Len()-len(testSets[f]))
		for i := range d.Instances {
			if inTest[i] != f+1 {
				train = append(train, i)
			}
		}
		folds[f].Train = train
	}
	return folds, nil
}

// StratifiedSplit returns a single train/test split with testFraction of
// each class held out. Useful for quick examples; cross-validation is the
// evaluation method used for the tables.
func StratifiedSplit(d *Dataset, testFraction float64, rng *stats.RNG) (train, test []int, err error) {
	if testFraction <= 0 || testFraction >= 1 {
		return nil, nil, fmt.Errorf("dataset: test fraction must be in (0,1), got %v", testFraction)
	}
	byClass := make([][]int, len(d.ClassValues))
	for i := range d.Instances {
		c := d.Instances[i].Class
		byClass[c] = append(byClass[c], i)
	}
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(i, j int) { idxs[i], idxs[j] = idxs[j], idxs[i] })
		nTest := int(float64(len(idxs)) * testFraction)
		test = append(test, idxs[:nTest]...)
		train = append(train, idxs[nTest:]...)
	}
	return train, test, nil
}
