package dataset

import (
	"math"
	"sort"
	"testing"

	"edem/internal/stats"
)

func storeTestDataset(n int, seed uint64) *Dataset {
	attrs := []Attribute{
		NumericAttr("x"),
		NominalAttr("mode", "a", "b", "c"),
		NumericAttr("y"),
	}
	d := New("store-test", attrs, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 10
		mode := float64(rng.Intn(3))
		y := rng.Float64() * 5
		class := 0
		if x > 7 {
			class = 1
		}
		d.MustAdd(Instance{Values: []float64{x, mode, y}, Class: class, Weight: 1})
	}
	return d
}

// checkSorted verifies a view's per-attribute orders: each numeric
// order must be a value-ascending permutation of exactly the view's
// rows (duplicates included).
func checkSorted(t *testing.T, v *View) {
	t.Helper()
	want := make(map[int32]int)
	for _, r := range v.Rows() {
		want[r]++
	}
	for a, attr := range v.Attrs() {
		if attr.Type != Numeric {
			if v.Sorted()[a] != nil {
				t.Fatalf("attr %d: nominal attribute has a sort order", a)
			}
			continue
		}
		idx := v.Sorted()[a]
		if len(idx) != v.Len() {
			t.Fatalf("attr %d: sorted len %d, want %d", a, len(idx), v.Len())
		}
		col := v.Cols()[a]
		got := make(map[int32]int)
		for i, r := range idx {
			got[r]++
			if i > 0 && col[idx[i-1]] > col[r] {
				t.Fatalf("attr %d: order violated at %d (%v > %v)", a, i, col[idx[i-1]], col[r])
			}
		}
		for r, c := range want {
			if got[r] != c {
				t.Fatalf("attr %d: row %d appears %d times in order, want %d", a, r, got[r], c)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("attr %d: order covers %d distinct rows, want %d", a, len(got), len(want))
		}
	}
}

func TestStoreMatchesSubset(t *testing.T) {
	d := storeTestDataset(60, 3)
	rows := []int{5, 1, 12, 40, 33, 7}
	st := NewStore(d, rows)
	sub := d.Subset(rows)
	md := st.Dataset()
	if md.Len() != sub.Len() {
		t.Fatalf("store holds %d rows, want %d", md.Len(), sub.Len())
	}
	for i := range sub.Instances {
		a, b := sub.Instances[i], md.Instances[i]
		if a.Class != b.Class || a.Weight != b.Weight {
			t.Fatalf("row %d: class/weight mismatch", i)
		}
		for j := range a.Values {
			if a.Values[j] != b.Values[j] {
				t.Fatalf("row %d attr %d: %v != %v", i, j, a.Values[j], b.Values[j])
			}
		}
	}
	checkSorted(t, st.IdentityView())
}

func TestStoreSortMatchesSortSlice(t *testing.T) {
	// The store's permutation must equal sort.Slice on the same
	// comparator and input sequence — ties included — so view-based
	// induction partitions rows exactly like the instance path.
	d := storeTestDataset(100, 9)
	// Force ties.
	for i := 0; i < 100; i += 3 {
		d.Instances[i].Values[0] = 5
	}
	st := NewStore(d, nil)
	for a, attr := range d.Attrs {
		if attr.Type != Numeric {
			continue
		}
		want := make([]int32, d.Len())
		for i := range want {
			want[i] = int32(i)
		}
		col := st.Cols()[a]
		sort.Slice(want, func(i, j int) bool { return col[want[i]] < col[want[j]] })
		got := st.Sorted()[a]
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("attr %d: permutation diverges at %d: %d != %d", a, i, got[i], want[i])
			}
		}
	}
}

func TestSelectView(t *testing.T) {
	d := storeTestDataset(50, 5)
	st := NewStore(d, nil)
	rows := []int32{49, 3, 17, 8, 30}
	v := st.SelectView(rows)
	if v.Len() != len(rows) {
		t.Fatalf("len %d, want %d", v.Len(), len(rows))
	}
	checkSorted(t, v)
	md := v.Materialize()
	for i, r := range rows {
		if md.Instances[i].Values[0] != d.Instances[r].Values[0] {
			t.Fatalf("row %d: wrong instance", i)
		}
	}
}

func TestRepeatView(t *testing.T) {
	d := storeTestDataset(40, 7)
	st := NewStore(d, nil)
	extra := []int32{3, 3, 17, 0, 39, 3}
	v := st.RepeatView(extra)
	if v.Len() != 40+len(extra) {
		t.Fatalf("len %d, want %d", v.Len(), 40+len(extra))
	}
	if v.Appended() != len(extra) {
		t.Fatalf("appended %d, want %d", v.Appended(), len(extra))
	}
	checkSorted(t, v)
	md := v.Materialize()
	for i, r := range extra {
		got := md.Instances[40+i]
		if got.Values[0] != d.Instances[r].Values[0] || got.Class != d.Instances[r].Class {
			t.Fatalf("duplicate %d: wrong source row", i)
		}
	}
}

func TestExtendView(t *testing.T) {
	d := storeTestDataset(30, 11)
	st := NewStore(d, nil)
	syn := []Synthetic{
		{Values: []float64{2.5, 1, 0.5}, Class: 1, Weight: 1},
		{Values: []float64{9.9, 0, 4.4}, Class: 1, Weight: 1},
		{Values: []float64{0.1, 2, 2.2}, Class: 1, Weight: 1},
	}
	v := st.ExtendView(syn)
	if v.Len() != 33 || v.Appended() != 3 {
		t.Fatalf("len %d appended %d", v.Len(), v.Appended())
	}
	checkSorted(t, v)
	md := v.Materialize()
	for i, s := range syn {
		got := md.Instances[30+i]
		if got.Class != s.Class {
			t.Fatalf("synthetic %d: class %d", i, got.Class)
		}
		for j := range s.Values {
			if got.Values[j] != s.Values[j] {
				t.Fatalf("synthetic %d attr %d: %v != %v", i, j, got.Values[j], s.Values[j])
			}
		}
	}
}

// Base rows must win ties against synthetic rows in the merged order,
// matching the stability of the instance path's root sort input (base
// instances precede synthetics in instance order).
func TestExtendViewTieOrder(t *testing.T) {
	d := New("ties", []Attribute{NumericAttr("x")}, []string{"n", "p"})
	for _, x := range []float64{1, 2, 2, 3} {
		d.MustAdd(Instance{Values: []float64{x}, Class: 0, Weight: 1})
	}
	st := NewStore(d, nil)
	v := st.ExtendView([]Synthetic{{Values: []float64{2}, Class: 1, Weight: 1}})
	idx := v.Sorted()[0]
	want := []int32{0, 1, 2, 4, 3}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("merged order %v, want %v", idx, want)
		}
	}
}

func TestStoreMissingDisablesSorted(t *testing.T) {
	d := storeTestDataset(20, 13)
	d.Instances[4].Values[2] = Missing
	st := NewStore(d, nil)
	if !st.HasMissing() {
		t.Fatal("missing not detected")
	}
	if st.Sorted() != nil {
		t.Fatal("sorted orders built despite missing values")
	}
	for _, v := range []*View{st.IdentityView(), st.SelectView([]int32{0, 1, 2}), st.RepeatView([]int32{5})} {
		if !v.HasMissing() {
			t.Fatal("view over a missing store must report missing")
		}
	}
}

// A synthetic row that interpolates to NaN (possible from infinite base
// values) must disable the merge order so induction falls back to the
// general missing-value builder, exactly like the instance path.
func TestExtendViewNaNSynthetic(t *testing.T) {
	d := storeTestDataset(10, 17)
	st := NewStore(d, nil)
	v := st.ExtendView([]Synthetic{{Values: []float64{math.NaN(), 0, 1}, Class: 1, Weight: 1}})
	if !v.HasMissing() {
		t.Fatal("NaN synthetic must disable the merge order")
	}
	if !v.Materialize().HasMissing() {
		t.Fatal("materialised fallback dataset must contain the NaN")
	}
}

func TestHasMissingCache(t *testing.T) {
	d := storeTestDataset(10, 19)
	if d.HasMissing() {
		t.Fatal("fresh dataset reported missing")
	}
	// Add maintains the cached answer incrementally.
	vals := make([]float64, 3)
	vals[0] = Missing
	d.MustAdd(Instance{Values: vals, Class: 0, Weight: 1})
	if !d.HasMissing() {
		t.Fatal("Add did not maintain the cache")
	}
	// Clone copies the full answer; subsetting only preserves a
	// missing-free answer.
	if !d.Clone().HasMissing() {
		t.Fatal("clone lost the missing answer")
	}
	clean := storeTestDataset(10, 19)
	_ = clean.HasMissing()
	sub := clean.Subset([]int{0, 1})
	if sub.missing != missingNo {
		t.Fatal("subset of a missing-free dataset should inherit the answer")
	}
	dirtySub := d.Subset([]int{0, 1})
	if dirtySub.missing != missingUnknown {
		t.Fatal("subset of a dataset with missing values must rescan")
	}
	// Direct mutation requires invalidation.
	clean.Instances[0].Values[0] = Missing
	if clean.HasMissing() {
		t.Fatal("stale cache expected before invalidation")
	}
	clean.InvalidateMissing()
	if !clean.HasMissing() {
		t.Fatal("invalidation did not force a rescan")
	}
}

func TestSharedVariantsAliasValues(t *testing.T) {
	d := storeTestDataset(6, 23)
	cs := d.CloneShared()
	if &cs.Instances[0].Values[0] != &d.Instances[0].Values[0] {
		t.Fatal("CloneShared must alias Values")
	}
	cs.Instances[0].Weight = 42
	if d.Instances[0].Weight == 42 {
		t.Fatal("CloneShared weight mutation leaked into the receiver")
	}
	ss := d.SubsetShared([]int{2, 4})
	if &ss.Instances[0].Values[0] != &d.Instances[2].Values[0] {
		t.Fatal("SubsetShared must alias Values")
	}
	deep := d.Subset([]int{2, 4})
	if &deep.Instances[0].Values[0] == &d.Instances[2].Values[0] {
		t.Fatal("Subset must deep-copy Values")
	}
}
