// Package dataset provides the relational data model consumed by the
// mining algorithms: attributes, weighted instances, datasets, stratified
// cross-validation folds, and the two on-disk formats used by the
// methodology — the PROPANE fault-injection log format and the ARFF
// format of the Weka suite (paper §V-C step 1: format transformation).
//
// Role in the methodology: Step 2 (preprocessing) — campaign logs
// become weighted instances here, and every later step consumes this
// model. Ownership/concurrency: Clone/Subset/Filter deep-copy and
// yield independently mutable datasets; CloneShared/SubsetShared alias
// the Values slices and are for read-only consumers; Store and View
// (DESIGN.md §10) are immutable after construction and safe for
// concurrent read — many fold workers train from one store without
// locking. A plain *Dataset is not synchronised: share it only after
// mutation stops.
package dataset

import (
	"errors"
	"fmt"
	"math"

	"edem/internal/stats"
)

// AttrType distinguishes numeric from nominal attributes.
type AttrType int

// Attribute types.
const (
	Numeric AttrType = iota + 1
	Nominal
)

// String returns the ARFF spelling of the type.
func (t AttrType) String() string {
	switch t {
	case Numeric:
		return "numeric"
	case Nominal:
		return "nominal"
	default:
		return fmt.Sprintf("AttrType(%d)", int(t))
	}
}

// Attribute describes one column of a dataset.
type Attribute struct {
	Name string
	Type AttrType
	// Values is the domain of a nominal attribute, in declaration order.
	// Instance values for nominal attributes are indices into this slice.
	Values []string
}

// NumericAttr constructs a numeric attribute.
func NumericAttr(name string) Attribute {
	return Attribute{Name: name, Type: Numeric}
}

// NominalAttr constructs a nominal attribute over the given domain.
func NominalAttr(name string, values ...string) Attribute {
	vs := make([]string, len(values))
	copy(vs, values)
	return Attribute{Name: name, Type: Nominal, Values: vs}
}

// ValueIndex returns the index of v in a nominal attribute's domain.
func (a Attribute) ValueIndex(v string) (int, bool) {
	for i, s := range a.Values {
		if s == v {
			return i, true
		}
	}
	return 0, false
}

// Missing is the sentinel for an absent attribute value.
var Missing = math.NaN()

// IsMissing reports whether v is the missing-value sentinel.
func IsMissing(v float64) bool { return math.IsNaN(v) }

// Instance is one sampled program state: attribute values plus a class
// label and an instance weight (C4.5 uses fractional weights both for
// missing-value handling and for cost-sensitive instance weighting).
type Instance struct {
	// Values holds one entry per attribute: the numeric value for numeric
	// attributes, or the index into Attribute.Values for nominal ones.
	// NaN marks a missing value.
	Values []float64
	// Class is the index into Dataset.ClassValues.
	Class int
	// Weight is the instance weight; 1 for raw data.
	Weight float64
}

// Clone returns a deep copy of the instance.
func (in Instance) Clone() Instance {
	vs := make([]float64, len(in.Values))
	copy(vs, in.Values)
	return Instance{Values: vs, Class: in.Class, Weight: in.Weight}
}

// Dataset is a named relation with a distinguished nominal class.
//
// Ownership contract: constructors that deep-copy (Clone, Subset,
// Filter) hand the caller instances whose Values it may mutate freely.
// The Shared variants (CloneShared, SubsetShared) alias the receiver's
// Values backing arrays instead; datasets built that way are read-only
// views — callers must treat every Values slice as immutable and
// deep-copy (Instance.Clone) before writing. Learners already promise
// not to mutate their training data (mining.Learner), so read-only
// pipelines (cross-validation partitions, sampling inputs) use the
// Shared variants to avoid cloning churn.
type Dataset struct {
	Name        string
	Attrs       []Attribute
	ClassValues []string
	Instances   []Instance

	// missing caches the HasMissing answer; see missingUnknown et al.
	missing int8
}

// HasMissing cache states.
const (
	missingUnknown int8 = iota
	missingNo
	missingYes
)

// Common validation errors.
var (
	ErrNoAttributes = errors.New("dataset: no attributes")
	ErrNoClass      = errors.New("dataset: no class values")
	ErrArity        = errors.New("dataset: instance arity does not match attributes")
	ErrClassRange   = errors.New("dataset: class index out of range")
)

// New constructs an empty dataset with the given schema.
func New(name string, attrs []Attribute, classValues []string) *Dataset {
	as := make([]Attribute, len(attrs))
	copy(as, attrs)
	cs := make([]string, len(classValues))
	copy(cs, classValues)
	return &Dataset{Name: name, Attrs: as, ClassValues: cs}
}

// Add appends an instance after validating it against the schema.
func (d *Dataset) Add(in Instance) error {
	if len(in.Values) != len(d.Attrs) {
		return fmt.Errorf("%w: got %d values, want %d", ErrArity, len(in.Values), len(d.Attrs))
	}
	if in.Class < 0 || in.Class >= len(d.ClassValues) {
		return fmt.Errorf("%w: %d", ErrClassRange, in.Class)
	}
	if in.Weight == 0 {
		in.Weight = 1
	}
	if d.missing == missingNo && instanceHasMissing(in) {
		d.missing = missingYes
	}
	d.Instances = append(d.Instances, in)
	return nil
}

func instanceHasMissing(in Instance) bool {
	for _, v := range in.Values {
		if IsMissing(v) {
			return true
		}
	}
	return false
}

// HasMissing reports whether any instance value is missing. The answer
// is computed on the first call and cached; Add maintains the cache
// incrementally, and Clone/Subset/Filter propagate what the cache can
// prove (a subset of a missing-free dataset is missing-free). Code that
// appends to Instances directly, or mutates Values after the first
// call, must call InvalidateMissing. Not safe for a concurrent first
// call with other accesses; compute it before fanning out.
func (d *Dataset) HasMissing() bool {
	if d.missing == missingUnknown {
		d.missing = missingNo
		for i := range d.Instances {
			if instanceHasMissing(d.Instances[i]) {
				d.missing = missingYes
				break
			}
		}
	}
	return d.missing == missingYes
}

// InvalidateMissing drops the cached HasMissing answer. Call it after
// mutating Instances or Values outside Add.
func (d *Dataset) InvalidateMissing() { d.missing = missingUnknown }

// inheritMissing propagates the receiver's cache to a dataset holding a
// subset of its instances: only the missing-free answer survives (a
// subset of a dataset with missing values may or may not have any).
func (d *Dataset) inheritMissing(out *Dataset) {
	if d.missing == missingNo {
		out.missing = missingNo
	}
}

// MustAdd appends an instance and panics on schema mismatch. It is meant
// for tests and generators whose schema is statically correct.
func (d *Dataset) MustAdd(in Instance) {
	if err := d.Add(in); err != nil {
		panic(err)
	}
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Instances) }

// TotalWeight returns the sum of instance weights.
func (d *Dataset) TotalWeight() float64 {
	w := 0.0
	for i := range d.Instances {
		w += d.Instances[i].Weight
	}
	return w
}

// ClassCounts returns the number of instances per class label.
func (d *Dataset) ClassCounts() []int {
	counts := make([]int, len(d.ClassValues))
	for i := range d.Instances {
		counts[d.Instances[i].Class]++
	}
	return counts
}

// ClassWeights returns the total instance weight per class label.
func (d *Dataset) ClassWeights() []float64 {
	ws := make([]float64, len(d.ClassValues))
	for i := range d.Instances {
		ws[d.Instances[i].Class] += d.Instances[i].Weight
	}
	return ws
}

// MajorityClass returns the class index with the largest total weight.
// Ties resolve to the lower index, matching C4.5's deterministic choice.
func (d *Dataset) MajorityClass() int {
	ws := d.ClassWeights()
	best := 0
	for c := 1; c < len(ws); c++ {
		if ws[c] > ws[best] {
			best = c
		}
	}
	return best
}

// CloneSchema returns an empty dataset with the same schema.
func (d *Dataset) CloneSchema() *Dataset {
	return New(d.Name, d.Attrs, d.ClassValues)
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	out := d.CloneSchema()
	out.missing = d.missing
	out.Instances = make([]Instance, 0, len(d.Instances))
	for i := range d.Instances {
		out.Instances = append(out.Instances, d.Instances[i].Clone())
	}
	return out
}

// CloneShared returns a copy of the dataset whose instances alias the
// receiver's Values backing arrays (class and weight are copied — they
// live in the Instance struct). The result is a read-only view per the
// ownership contract above: mutate weights or class labels freely,
// never the shared Values.
func (d *Dataset) CloneShared() *Dataset {
	out := d.CloneSchema()
	out.missing = d.missing
	out.Instances = make([]Instance, len(d.Instances))
	copy(out.Instances, d.Instances)
	return out
}

// Subset returns a new dataset containing clones of the instances at the
// given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := d.CloneSchema()
	d.inheritMissing(out)
	out.Instances = make([]Instance, 0, len(idx))
	for _, i := range idx {
		out.Instances = append(out.Instances, d.Instances[i].Clone())
	}
	return out
}

// SubsetShared returns a new dataset containing the instances at the
// given indices with their Values backing arrays shared (not cloned).
// The result is a read-only view per the ownership contract above.
func (d *Dataset) SubsetShared(idx []int) *Dataset {
	out := d.CloneSchema()
	d.inheritMissing(out)
	out.Instances = make([]Instance, 0, len(idx))
	for _, i := range idx {
		out.Instances = append(out.Instances, d.Instances[i])
	}
	return out
}

// Filter returns a new dataset containing clones of instances for which
// keep returns true.
func (d *Dataset) Filter(keep func(Instance) bool) *Dataset {
	out := d.CloneSchema()
	d.inheritMissing(out)
	for i := range d.Instances {
		if keep(d.Instances[i]) {
			out.Instances = append(out.Instances, d.Instances[i].Clone())
		}
	}
	return out
}

// Shuffle permutes the instance order in place.
func (d *Dataset) Shuffle(rng *stats.RNG) {
	rng.Shuffle(len(d.Instances), func(i, j int) {
		d.Instances[i], d.Instances[j] = d.Instances[j], d.Instances[i]
	})
}

// AttrIndex returns the index of the attribute with the given name.
func (d *Dataset) AttrIndex(name string) (int, bool) {
	for i, a := range d.Attrs {
		if a.Name == name {
			return i, true
		}
	}
	return 0, false
}

// Validate checks the structural invariants of the dataset: non-empty
// schema, matching arities, in-range class and nominal indices.
func (d *Dataset) Validate() error {
	if len(d.Attrs) == 0 {
		return ErrNoAttributes
	}
	if len(d.ClassValues) == 0 {
		return ErrNoClass
	}
	for i := range d.Instances {
		in := &d.Instances[i]
		if len(in.Values) != len(d.Attrs) {
			return fmt.Errorf("instance %d: %w", i, ErrArity)
		}
		if in.Class < 0 || in.Class >= len(d.ClassValues) {
			return fmt.Errorf("instance %d: %w", i, ErrClassRange)
		}
		for j, v := range in.Values {
			if d.Attrs[j].Type == Nominal && !IsMissing(v) {
				k := int(v)
				if float64(k) != v || k < 0 || k >= len(d.Attrs[j].Values) {
					return fmt.Errorf("instance %d attr %q: nominal index %v out of domain", i, d.Attrs[j].Name, v)
				}
			}
		}
	}
	return nil
}
