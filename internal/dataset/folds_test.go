package dataset

import (
	"testing"
	"testing/quick"

	"edem/internal/stats"
)

func TestStratifiedKFoldPartition(t *testing.T) {
	d := sampleDataset(t, 100)
	folds, err := StratifiedKFold(d, 10, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 10 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := make([]int, d.Len())
	for _, f := range folds {
		for _, i := range f.Test {
			seen[i]++
		}
		if len(f.Train)+len(f.Test) != d.Len() {
			t.Fatalf("train+test = %d, want %d", len(f.Train)+len(f.Test), d.Len())
		}
		inTest := map[int]bool{}
		for _, i := range f.Test {
			inTest[i] = true
		}
		for _, i := range f.Train {
			if inTest[i] {
				t.Fatal("instance in both train and test")
			}
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("instance %d appears in %d test sets", i, n)
		}
	}
}

func TestStratifiedKFoldStratification(t *testing.T) {
	d := sampleDataset(t, 100) // 20 positives
	folds, err := StratifiedKFold(d, 10, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range folds {
		pos := 0
		for _, i := range f.Test {
			if d.Instances[i].Class == 1 {
				pos++
			}
		}
		if pos != 2 {
			t.Errorf("fold %d has %d positives in test, want 2", fi, pos)
		}
	}
}

func TestStratifiedKFoldErrors(t *testing.T) {
	d := sampleDataset(t, 5)
	if _, err := StratifiedKFold(d, 1, stats.NewRNG(1)); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := StratifiedKFold(d, 6, stats.NewRNG(1)); err == nil {
		t.Error("k > n should fail")
	}
}

func TestStratifiedKFoldDeterminism(t *testing.T) {
	d := sampleDataset(t, 60)
	f1, _ := StratifiedKFold(d, 5, stats.NewRNG(77))
	f2, _ := StratifiedKFold(d, 5, stats.NewRNG(77))
	for i := range f1 {
		if len(f1[i].Test) != len(f2[i].Test) {
			t.Fatal("same-seed folds differ")
		}
		for j := range f1[i].Test {
			if f1[i].Test[j] != f2[i].Test[j] {
				t.Fatal("same-seed folds differ")
			}
		}
	}
}

func TestStratifiedKFoldProperty(t *testing.T) {
	// For arbitrary dataset sizes and fold counts, the partition
	// property must hold.
	f := func(nRaw, kRaw uint8, seed uint64) bool {
		n := int(nRaw%200) + 20
		k := int(kRaw%8) + 2
		d := New("p", []Attribute{NumericAttr("x")}, []string{"a", "b"})
		rng := stats.NewRNG(seed)
		for i := 0; i < n; i++ {
			d.MustAdd(Instance{Values: []float64{rng.Float64()}, Class: rng.Intn(2), Weight: 1})
		}
		folds, err := StratifiedKFold(d, k, rng)
		if err != nil {
			return false
		}
		total := 0
		for _, fd := range folds {
			total += len(fd.Test)
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestStratifiedSplit(t *testing.T) {
	d := sampleDataset(t, 100)
	train, test, err := StratifiedSplit(d, 0.25, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(train)+len(test) != d.Len() {
		t.Fatalf("split sizes %d+%d != %d", len(train), len(test), d.Len())
	}
	posTest := 0
	for _, i := range test {
		if d.Instances[i].Class == 1 {
			posTest++
		}
	}
	if posTest != 5 { // 25% of 20 positives
		t.Errorf("test positives = %d, want 5", posTest)
	}
	if _, _, err := StratifiedSplit(d, 0, stats.NewRNG(1)); err == nil {
		t.Error("fraction 0 should fail")
	}
	if _, _, err := StratifiedSplit(d, 1, stats.NewRNG(1)); err == nil {
		t.Error("fraction 1 should fail")
	}
}
