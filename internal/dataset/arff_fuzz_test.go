package dataset

import (
	"bytes"
	"testing"
)

// FuzzARFFRoundTrip checks write stability: any input ReadARFF accepts
// must serialise to a form that (a) ReadARFF accepts again and (b) is a
// fixed point of the write→read→write cycle. Byte-equality of the two
// written forms (rather than deep equality of the datasets) makes the
// property robust to one-time normalisation of exotic inputs — e.g. a
// nominal value spelled "?" reads back as a missing value — while still
// catching every quoting, escaping and domain-handling asymmetry.
func FuzzARFFRoundTrip(f *testing.F) {
	f.Add([]byte(`@relation demo
@attribute x numeric
@attribute mode {low,high}
@attribute class {pass,fail}
@data
1.5,low,pass
?,high,fail
2.25e-3,?,pass
`))
	f.Add([]byte(`@relation 'quoted name'
@attribute 'attr with space' numeric
@attribute class {'a,b','it''s'}
@data
3,'a,b'
`))
	f.Add([]byte(`@relation n
% comment
@attribute a numeric
@attribute class {yes,no}

@data
NaN,yes
+Inf,no
-Inf,yes
`))
	f.Add([]byte("@relation r\n@attribute \"d'q\" numeric\n@attribute class {\"a',b\",z}\n@data\n1,\"a',b\"\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d1, err := ReadARFF(bytes.NewReader(data))
		if err != nil {
			return // invalid input: nothing to round-trip
		}
		var b1 bytes.Buffer
		if err := WriteARFF(&b1, d1); err != nil {
			t.Fatalf("write of parsed dataset failed: %v", err)
		}
		d2, err := ReadARFF(bytes.NewReader(b1.Bytes()))
		if err != nil {
			t.Fatalf("reparse of written ARFF failed: %v\nwritten:\n%s", err, b1.Bytes())
		}
		var b2 bytes.Buffer
		if err := WriteARFF(&b2, d2); err != nil {
			t.Fatalf("second write failed: %v", err)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("write cycle not stable:\nfirst:\n%s\nsecond:\n%s", b1.Bytes(), b2.Bytes())
		}
	})
}
