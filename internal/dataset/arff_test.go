package dataset

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"edem/internal/stats"
)

func TestARFFRoundTrip(t *testing.T) {
	d := sampleDataset(t, 25)
	d.Instances[3].Values[1] = Missing
	d.Instances[7].Values[2] = Missing

	var sb strings.Builder
	if err := WriteARFF(&sb, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadARFF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadARFF: %v\n%s", err, sb.String())
	}
	if got.Name != d.Name || got.Len() != d.Len() {
		t.Fatalf("round trip changed shape: %q %d", got.Name, got.Len())
	}
	for i := range d.Instances {
		a, b := d.Instances[i], got.Instances[i]
		if a.Class != b.Class {
			t.Fatalf("instance %d class %d != %d", i, a.Class, b.Class)
		}
		for j := range a.Values {
			av, bv := a.Values[j], b.Values[j]
			if IsMissing(av) != IsMissing(bv) {
				t.Fatalf("instance %d value %d missing mismatch", i, j)
			}
			if !IsMissing(av) && av != bv {
				t.Fatalf("instance %d value %d: %v != %v", i, j, av, bv)
			}
		}
	}
}

func TestARFFRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		attrs := []Attribute{NumericAttr("a"), NominalAttr("b", "u", "v", "w")}
		d := New("prop", attrs, []string{"c0", "c1", "c2"})
		rng := stats.NewRNG(seed)
		for i := 0; i < n; i++ {
			v := rng.Float64()*2e6 - 1e6
			if rng.Intn(10) == 0 {
				v = Missing
			}
			d.MustAdd(Instance{
				Values: []float64{v, float64(rng.Intn(3))},
				Class:  rng.Intn(3),
				Weight: 1,
			})
		}
		var sb strings.Builder
		if err := WriteARFF(&sb, d); err != nil {
			return false
		}
		got, err := ReadARFF(strings.NewReader(sb.String()))
		if err != nil || got.Len() != d.Len() {
			return false
		}
		for i := range d.Instances {
			for j := range d.Instances[i].Values {
				av, bv := d.Instances[i].Values[j], got.Instances[i].Values[j]
				if IsMissing(av) != IsMissing(bv) || (!IsMissing(av) && av != bv) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestARFFQuotedNames(t *testing.T) {
	d := New("data set", []Attribute{
		NumericAttr("weird name"),
		NominalAttr("mode", "on off", "half,way"),
	}, []string{"no", "yes"})
	d.MustAdd(Instance{Values: []float64{1.5, 1}, Class: 1, Weight: 1})
	var sb strings.Builder
	if err := WriteARFF(&sb, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadARFF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ReadARFF: %v\n%s", err, sb.String())
	}
	if got.Attrs[0].Name != "weird name" {
		t.Errorf("attr name = %q", got.Attrs[0].Name)
	}
	if got.Attrs[1].Values[0] != "on off" || got.Attrs[1].Values[1] != "half,way" {
		t.Errorf("nominal domain = %v", got.Attrs[1].Values)
	}
	if got.Instances[0].Values[1] != 1 {
		t.Errorf("nominal value = %v", got.Instances[0].Values[1])
	}
}

func TestARFFExtremeValues(t *testing.T) {
	d := New("x", []Attribute{NumericAttr("v")}, []string{"a", "b"})
	for _, v := range []float64{0, -0, 1e308, -1e308, 5e-324, math.MaxFloat64} {
		d.MustAdd(Instance{Values: []float64{v}, Class: 0, Weight: 1})
	}
	var sb strings.Builder
	if err := WriteARFF(&sb, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadARFF(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Instances {
		if got.Instances[i].Values[0] != d.Instances[i].Values[0] {
			t.Errorf("value %d: %v != %v", i, got.Instances[i].Values[0], d.Instances[i].Values[0])
		}
	}
}

func TestARFFComments(t *testing.T) {
	src := `% a comment
@relation demo

@attribute x numeric
@attribute class {a,b}

@data
% another comment
1.5,a
2.5,b
`
	d, err := ReadARFF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Instances[1].Class != 1 {
		t.Fatalf("parsed %d instances", d.Len())
	}
}

func TestARFFParseErrors(t *testing.T) {
	cases := map[string]string{
		"no data section":    "@relation r\n@attribute x numeric\n@attribute class {a,b}\n",
		"class not nominal":  "@relation r\n@attribute x numeric\n@attribute class numeric\n@data\n",
		"too few attributes": "@relation r\n@attribute class {a,b}\n@data\n",
		"bad field count":    "@relation r\n@attribute x numeric\n@attribute class {a,b}\n@data\n1,2,a\n",
		"unknown class":      "@relation r\n@attribute x numeric\n@attribute class {a,b}\n@data\n1,zzz\n",
		"bad numeric":        "@relation r\n@attribute x numeric\n@attribute class {a,b}\n@data\nqq,a\n",
		"bad nominal":        "@relation r\n@attribute x {u,v}\n@attribute class {a,b}\n@data\nw,a\n",
		"bad attribute type": "@relation r\n@attribute x matrix\n@attribute class {a,b}\n@data\n",
		"garbage header":     "@relation r\nnonsense\n@data\n",
	}
	for name, src := range cases {
		if _, err := ReadARFF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected parse error", name)
		}
	}
}

func TestARFFMissingClassNotAllowed(t *testing.T) {
	// '?' in the class column is rejected: concept learning requires
	// labelled instances.
	src := "@relation r\n@attribute x numeric\n@attribute class {a,b}\n@data\n1,?\n"
	if _, err := ReadARFF(strings.NewReader(src)); err == nil {
		t.Fatal("missing class label should be rejected")
	}
}
