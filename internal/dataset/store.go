package dataset

import "sort"

// Store is an immutable, column-major snapshot of a training partition,
// built once per cross-validation fold and shared by every refinement
// cell that trains on that fold. It holds what tree induction and the
// sampling transforms otherwise recompute per cell: per-attribute value
// columns, class and (clamped) weight arrays, the ascending row order
// of every numeric attribute, and the missingness answer.
//
// Concurrency contract: a Store is immutable after NewStore returns.
// Views hand the store's arrays to concurrent tree builders, which read
// them only; anything per-cell (scratch buffers, partitions) lives in
// the builder, never in the store.
type Store struct {
	name        string
	attrs       []Attribute
	classValues []string
	n           int
	nNumeric    int

	cols    [][]float64 // [attr][row]
	classes []int
	weights []float64 // clamped: w <= 0 stored as 1, matching induction
	sorted  [][]int32 // [attr] ascending row order; nil for nominal attrs
	// and nil everywhere when the partition has missing values (the
	// general missing-value builder re-sorts per node anyway).
	identity   []int32 // cached rows 0..n-1 for identity views
	hasMissing bool
}

// NewStore snapshots the instances of d at the given indices (all of d
// when rows is nil), in index order — the same instance order
// d.Subset(rows) would produce, so induction from the store is
// bit-identical to induction from the cloned subset.
func NewStore(d *Dataset, rows []int) *Store {
	n := len(rows)
	if rows == nil {
		n = len(d.Instances)
	}
	at := func(i int) *Instance {
		if rows == nil {
			return &d.Instances[i]
		}
		return &d.Instances[rows[i]]
	}

	s := &Store{
		name:        d.Name,
		attrs:       d.Attrs,
		classValues: d.ClassValues,
		n:           n,
		cols:        make([][]float64, len(d.Attrs)),
		classes:     make([]int, n),
		weights:     make([]float64, n),
		identity:    make([]int32, n),
	}
	colArena := make([]float64, n*len(d.Attrs))
	for a := range d.Attrs {
		col := colArena[a*n : (a+1)*n]
		for i := 0; i < n; i++ {
			v := at(i).Values[a]
			col[i] = v
			if IsMissing(v) {
				s.hasMissing = true
			}
		}
		s.cols[a] = col
		if d.Attrs[a].Type == Numeric {
			s.nNumeric++
		}
	}
	for i := 0; i < n; i++ {
		in := at(i)
		s.classes[i] = in.Class
		w := in.Weight
		if w <= 0 {
			w = 1
		}
		s.weights[i] = w
		s.identity[i] = int32(i)
	}
	if !s.hasMissing {
		s.sorted = make([][]int32, len(d.Attrs))
		sortArena := make([]int32, n*s.nNumeric)
		slab := 0
		for a := range d.Attrs {
			if d.Attrs[a].Type != Numeric {
				continue
			}
			idx := sortArena[slab : slab+n]
			slab += n
			copy(idx, s.identity)
			col := s.cols[a]
			// Same comparator newFastBuilder's root sort uses, so the
			// permutation (ties included) matches the instance path.
			sort.Slice(idx, func(i, j int) bool { return col[idx[i]] < col[idx[j]] })
			s.sorted[a] = idx
		}
	}
	return s
}

// Len returns the number of base rows in the store.
func (s *Store) Len() int { return s.n }

// Attrs returns the schema attributes (shared; read-only).
func (s *Store) Attrs() []Attribute { return s.attrs }

// ClassValues returns the class domain (shared; read-only).
func (s *Store) ClassValues() []string { return s.classValues }

// HasMissing reports whether any stored value is missing.
func (s *Store) HasMissing() bool { return s.hasMissing }

// Cols returns the column-major value arrays (shared; read-only).
func (s *Store) Cols() [][]float64 { return s.cols }

// Classes returns the per-row class indices (shared; read-only).
func (s *Store) Classes() []int { return s.classes }

// Weights returns the per-row clamped weights (shared; read-only).
func (s *Store) Weights() []float64 { return s.weights }

// Sorted returns the per-numeric-attribute ascending row orders, or nil
// when the store holds missing values (the general builder re-sorts per
// node anyway).
func (s *Store) Sorted() [][]int32 { return s.sorted }

// Dataset materialises the store back into an instance-major dataset,
// in store row order. Used by the missing-value fallback path and by
// equivalence tests; the hot paths never call it.
func (s *Store) Dataset() *Dataset {
	out := New(s.name, s.attrs, s.classValues)
	out.Instances = make([]Instance, 0, s.n)
	for i := 0; i < s.n; i++ {
		vs := make([]float64, len(s.attrs))
		for a := range s.attrs {
			vs[a] = s.cols[a][i]
		}
		out.Instances = append(out.Instances, Instance{Values: vs, Class: s.classes[i], Weight: s.weights[i]})
	}
	if s.hasMissing {
		out.missing = missingYes
	} else {
		out.missing = missingNo
	}
	return out
}

// Synthetic is one generated training row (a SMOTE interpolation) to be
// appended to a store's base rows through ExtendView.
type Synthetic struct {
	Values []float64
	Class  int
	Weight float64
}

// View is a training set described against a Store: the base rows it
// keeps (possibly repeated), any synthetic rows appended after them,
// and — when the store is missing-free — the pre-merged ascending row
// order of every numeric attribute, so tree induction starts without
// re-sorting anything. Views are cheap (O(rows) to build, no instance
// cloning) and immutable; all cells of a fold may read them, and the
// arrays they share with the store, concurrently.
type View struct {
	store *Store
	// rows lists the view's training rows in instance order — the order
	// the equivalent materialised dataset would hold them. Entries are
	// row ids into cols/classes/weights; ids < store.Len() are base
	// rows (and may repeat), ids >= store.Len() are synthetic.
	rows []int32
	// cols/classes/weights are the store's arrays, or extended copies
	// when synthetic rows exist.
	cols    [][]float64
	classes []int
	weights []float64
	// sorted is the per-numeric-attribute ascending order over exactly
	// the ids in rows (duplicates included); nil when the store has
	// missing values, in which case FitView falls back to the general
	// builder via Materialize.
	sorted   [][]int32
	appended int // rows beyond the base partition (duplicates + synthetic)
}

// IdentityView returns the whole-partition view (the NoSampling
// configuration): no filtering, no appended rows, the store's own
// sorted orders. O(1) — everything is shared.
func (s *Store) IdentityView() *View {
	return &View{
		store:   s,
		rows:    s.identity,
		cols:    s.cols,
		classes: s.classes,
		weights: s.weights,
		sorted:  s.sorted,
	}
}

// SelectView returns the view keeping exactly the given base rows (no
// duplicates), in the given instance order — the undersampling shape.
// Each numeric attribute's sorted order is the store's presorted order
// filtered by membership: O(n) per attribute instead of O(k log k)
// re-sorting.
func (s *Store) SelectView(rows []int32) *View {
	v := &View{
		store:   s,
		rows:    rows,
		cols:    s.cols,
		classes: s.classes,
		weights: s.weights,
	}
	if s.sorted == nil {
		return v
	}
	keep := make([]bool, s.n)
	for _, r := range rows {
		keep[r] = true
	}
	v.sorted = make([][]int32, len(s.attrs))
	arena := make([]int32, len(rows)*s.nNumeric)
	slab := 0
	for a := range s.attrs {
		if s.sorted[a] == nil {
			continue
		}
		out := arena[slab : slab+len(rows)]
		slab += len(rows)
		i := 0
		for _, r := range s.sorted[a] {
			if keep[r] {
				out[i] = r
				i++
			}
		}
		v.sorted[a] = out
	}
	return v
}

// RepeatView returns the view holding every base row plus the given
// duplicate row references appended in order — the oversampling-with-
// replacement shape. A duplicate's sorted position is already known
// (it is its base row's), so each numeric attribute's order is the
// store's presorted order with every id emitted once per occurrence:
// O(n + m), no sorting and no value copies at all.
func (s *Store) RepeatView(extra []int32) *View {
	n, m := s.n, len(extra)
	rows := make([]int32, n+m)
	copy(rows, s.identity)
	copy(rows[n:], extra)
	v := &View{
		store:    s,
		rows:     rows,
		cols:     s.cols,
		classes:  s.classes,
		weights:  s.weights,
		appended: m,
	}
	if s.sorted == nil {
		return v
	}
	times := make([]int32, n)
	for _, r := range extra {
		times[r]++
	}
	v.sorted = make([][]int32, len(s.attrs))
	arena := make([]int32, (n+m)*s.nNumeric)
	slab := 0
	for a := range s.attrs {
		if s.sorted[a] == nil {
			continue
		}
		out := arena[slab : slab+n+m]
		slab += n + m
		i := 0
		for _, r := range s.sorted[a] {
			out[i] = r
			i++
			for t := times[r]; t > 0; t-- {
				out[i] = r
				i++
			}
		}
		v.sorted[a] = out
	}
	return v
}

// ExtendView returns the view holding every base row plus the given
// synthetic rows appended in order — the SMOTE shape. Columns, classes
// and weights are extended copies (flat arenas, no per-instance
// allocations); each numeric attribute's order sorts only the m
// synthetic rows and merges them into the store's presorted base order
// in O(n + m), with base rows winning ties.
func (s *Store) ExtendView(syn []Synthetic) *View {
	n, m := s.n, len(syn)
	rows := make([]int32, n+m)
	copy(rows, s.identity)
	v := &View{
		store:    s,
		rows:     rows,
		cols:     make([][]float64, len(s.attrs)),
		classes:  make([]int, n+m),
		weights:  make([]float64, n+m),
		appended: m,
	}
	colArena := make([]float64, (n+m)*len(s.attrs))
	synMissing := false
	for a := range s.attrs {
		col := colArena[a*(n+m) : (a+1)*(n+m)]
		copy(col, s.cols[a])
		for j := range syn {
			val := syn[j].Values[a]
			col[n+j] = val
			if IsMissing(val) {
				synMissing = true
			}
		}
		v.cols[a] = col
	}
	copy(v.classes, s.classes)
	copy(v.weights, s.weights)
	for j := range syn {
		rows[n+j] = int32(n + j)
		v.classes[n+j] = syn[j].Class
		w := syn[j].Weight
		if w <= 0 {
			w = 1
		}
		v.weights[n+j] = w
	}
	// Interpolating infinite base values can produce NaN synthetics on
	// a missing-free store; those views fall back like missing data,
	// exactly as the instance path's dataset would.
	if s.sorted == nil || synMissing {
		return v
	}
	v.sorted = make([][]int32, len(s.attrs))
	arena := make([]int32, (n+m)*s.nNumeric)
	synIdx := make([]int32, m)
	slab := 0
	for a := range s.attrs {
		if s.sorted[a] == nil {
			continue
		}
		col := v.cols[a]
		for j := range synIdx {
			synIdx[j] = int32(n + j)
		}
		sort.Slice(synIdx, func(i, j int) bool { return col[synIdx[i]] < col[synIdx[j]] })
		out := arena[slab : slab+n+m]
		slab += n + m
		base := s.sorted[a]
		i, j, k := 0, 0, 0
		for i < n && j < m {
			if col[synIdx[j]] < col[base[i]] {
				out[k] = synIdx[j]
				j++
			} else {
				out[k] = base[i]
				i++
			}
			k++
		}
		for ; i < n; i++ {
			out[k] = base[i]
			k++
		}
		for ; j < m; j++ {
			out[k] = synIdx[j]
			k++
		}
		v.sorted[a] = out
	}
	return v
}

// Store returns the backing store.
func (v *View) Store() *Store { return v.store }

// Len returns the number of training rows in the view.
func (v *View) Len() int { return len(v.rows) }

// Appended returns how many rows the view holds beyond the base
// partition (duplicate references plus synthetic rows).
func (v *View) Appended() int { return v.appended }

// Attrs returns the schema attributes (shared; read-only).
func (v *View) Attrs() []Attribute { return v.store.attrs }

// ClassValues returns the class domain (shared; read-only).
func (v *View) ClassValues() []string { return v.store.classValues }

// Rows returns the view's row ids in instance order (shared; read-only).
func (v *View) Rows() []int32 { return v.rows }

// Cols returns the column-major values covering every id in Rows
// (shared; read-only).
func (v *View) Cols() [][]float64 { return v.cols }

// Classes returns per-row class indices (shared; read-only).
func (v *View) Classes() []int { return v.classes }

// Weights returns per-row clamped weights (shared; read-only).
func (v *View) Weights() []float64 { return v.weights }

// Sorted returns the per-numeric-attribute ascending row orders, or nil
// when the view cannot guarantee them (missing values in the store, or
// NaN-valued synthetics); see FitView's fallback.
func (v *View) Sorted() [][]int32 { return v.sorted }

// HasMissing reports whether fast induction must fall back to the
// general missing-value builder for this view. It is true exactly when
// Sorted is unavailable: the store holds missing values, or a synthetic
// row interpolated to NaN.
func (v *View) HasMissing() bool { return v.sorted == nil }

// Materialize builds the instance-major dataset the view describes, in
// the view's instance order — byte-identical to what the corresponding
// dataset-based sampling transform returns. Cold path: used by the
// missing-value fallback and by equivalence tests.
func (v *View) Materialize() *Dataset {
	out := New(v.store.name, v.store.attrs, v.store.classValues)
	out.Instances = make([]Instance, 0, len(v.rows))
	for _, r := range v.rows {
		vs := make([]float64, len(v.store.attrs))
		for a := range v.store.attrs {
			vs[a] = v.cols[a][r]
		}
		out.Instances = append(out.Instances, Instance{Values: vs, Class: v.classes[r], Weight: v.weights[r]})
	}
	return out
}
