package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV interoperability: a header row of attribute names plus a final
// "class" column. Nominal attribute domains are inferred from the data
// in first-appearance order when reading; '?' and empty cells are
// missing values. This is the lingua franca for moving fault-injection
// datasets into and out of other toolchains.

// WriteCSV serialises the dataset with a header row; nominal values are
// written symbolically, the class label last.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(d.Attrs)+1)
	for _, a := range d.Attrs {
		header = append(header, a.Name)
	}
	header = append(header, "class")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("csv: header: %w", err)
	}
	row := make([]string, len(header))
	for i := range d.Instances {
		in := &d.Instances[i]
		for j, v := range in.Values {
			switch {
			case IsMissing(v):
				row[j] = "?"
			case d.Attrs[j].Type == Nominal:
				row[j] = d.Attrs[j].Values[int(v)]
			default:
				row[j] = strconv.FormatFloat(v, 'g', -1, 64)
			}
		}
		row[len(row)-1] = d.ClassValues[in.Class]
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("csv: row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV stream produced by WriteCSV or a compatible
// tool. Columns whose every non-missing cell parses as a number become
// numeric attributes; the rest become nominal with domains in
// first-appearance order. The final column is the class.
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("csv: need a header and at least one data row")
	}
	header := records[0]
	if len(header) < 2 {
		return nil, fmt.Errorf("csv: need at least one attribute plus a class column")
	}
	nAttr := len(header) - 1
	rows := records[1:]
	for i, rec := range rows {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("csv: row %d has %d fields, want %d", i+1, len(rec), len(header))
		}
	}

	// Column typing: numeric iff every non-missing cell parses.
	numeric := make([]bool, nAttr)
	for a := 0; a < nAttr; a++ {
		numeric[a] = true
		seen := false
		for _, rec := range rows {
			cell := rec[a]
			if cell == "?" || cell == "" {
				continue
			}
			seen = true
			if _, err := strconv.ParseFloat(cell, 64); err != nil {
				numeric[a] = false
				break
			}
		}
		if !seen {
			numeric[a] = false // all-missing columns default to nominal
		}
	}

	attrs := make([]Attribute, nAttr)
	domains := make([]map[string]int, nAttr)
	for a := 0; a < nAttr; a++ {
		if numeric[a] {
			attrs[a] = NumericAttr(header[a])
			continue
		}
		attrs[a] = Attribute{Name: header[a], Type: Nominal}
		domains[a] = map[string]int{}
		for _, rec := range rows {
			cell := rec[a]
			if cell == "?" || cell == "" {
				continue
			}
			if _, ok := domains[a][cell]; !ok {
				domains[a][cell] = len(attrs[a].Values)
				attrs[a].Values = append(attrs[a].Values, cell)
			}
		}
	}

	classIdx := map[string]int{}
	var classes []string
	for _, rec := range rows {
		label := rec[nAttr]
		if label == "" || label == "?" {
			return nil, fmt.Errorf("csv: missing class label")
		}
		if _, ok := classIdx[label]; !ok {
			classIdx[label] = len(classes)
			classes = append(classes, label)
		}
	}

	d := New(name, attrs, classes)
	for ri, rec := range rows {
		in := Instance{Values: make([]float64, nAttr), Weight: 1}
		for a := 0; a < nAttr; a++ {
			cell := rec[a]
			if cell == "?" || cell == "" {
				in.Values[a] = Missing
				continue
			}
			if numeric[a] {
				v, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("csv: row %d column %q: %w", ri+1, header[a], err)
				}
				in.Values[a] = v
			} else {
				in.Values[a] = float64(domains[a][cell])
			}
		}
		in.Class = classIdx[rec[nAttr]]
		if err := d.Add(in); err != nil {
			return nil, fmt.Errorf("csv: row %d: %w", ri+1, err)
		}
	}
	return d, nil
}
