package predicate

import (
	"errors"
	"fmt"

	"edem/internal/mining/rules"
)

// Rule-induction predicates: the paper's Step 2 allows "a symbolic
// pattern learning algorithm, such as decision tree induction or rule
// induction" (§V-C). A PRISM rule set whose rules all predict the
// failure class converts directly into a DNF detection predicate — each
// rule is one conjunctive clause.

// ErrUnsoundRuleSet reports a rule set whose list semantics cannot be
// flattened into an order-free disjunction.
var ErrUnsoundRuleSet = errors.New("predicate: rule set is not a pure positive-class covering")

// FromRules extracts a detection predicate from a covering rule set.
// The conversion is sound only when every rule predicts positiveClass
// and the default class is not positiveClass: then the ordered rule
// list degenerates to an unordered disjunction, and the predicate fires
// exactly when the rule set would classify the state as positive.
func FromRules(rs *rules.RuleSet, positiveClass int, vars []string, name string) (*Predicate, error) {
	if rs == nil {
		return nil, errors.New("predicate: nil rule set")
	}
	if rs.Default == positiveClass {
		return nil, fmt.Errorf("%w: default class is the positive class", ErrUnsoundRuleSet)
	}
	p := &Predicate{Name: name, Vars: append([]string(nil), vars...)}
	for i, r := range rs.Rules {
		if r.Class != positiveClass {
			return nil, fmt.Errorf("%w: rule %d predicts class %d", ErrUnsoundRuleSet, i, r.Class)
		}
		clause := make(Clause, 0, len(r.Conds))
		for _, c := range r.Conds {
			atom := Atom{Index: c.Attr, Threshold: c.Threshold}
			if c.Attr < len(vars) {
				atom.Var = vars[c.Attr]
			} else {
				atom.Var = fmt.Sprintf("attr%d", c.Attr)
			}
			switch {
			case c.Nominal:
				atom.Op = EQ
				atom.Threshold = float64(c.Value)
			case c.LessEq:
				atom.Op = LE
			default:
				atom.Op = GT
			}
			clause = append(clause, atom)
		}
		if simplified, ok := simplify(clause); ok {
			p.Clauses = append(p.Clauses, simplified)
		}
	}
	return p, nil
}
