package predicate

import (
	"strings"
	"testing"
	"testing/quick"

	"edem/internal/dataset"
	"edem/internal/mining/tree"
	"edem/internal/stats"
)

func trainTree(t testing.TB, n int, seed uint64) (*tree.Tree, *dataset.Dataset) {
	t.Helper()
	d := dataset.New("train", []dataset.Attribute{
		dataset.NumericAttr("a"),
		dataset.NumericAttr("b"),
		dataset.NominalAttr("mode", "m0", "m1", "m2"),
	}, []string{"nonfailure", "failure"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		a, b := rng.Float64()*10, rng.Float64()*10
		mode := rng.Intn(3)
		class := 0
		if (a > 7 && mode == 1) || b > 9 {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{a, b, float64(mode)}, Class: class, Weight: 1})
	}
	model, err := tree.Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	return model, d
}

// TestPredicateMatchesTree is the core extraction property: for every
// complete (non-missing) instance, the predicate fires exactly when the
// tree predicts the positive class.
func TestPredicateMatchesTree(t *testing.T) {
	model, d := trainTree(t, 600, 1)
	pred, err := FromTree(model, 1, "demo")
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Instances {
		vs := d.Instances[i].Values
		if pred.Eval(vs) != (model.Classify(vs) == 1) {
			t.Fatalf("predicate and tree disagree on instance %d: %v", i, vs)
		}
	}
}

func TestPredicateMatchesTreeProperty(t *testing.T) {
	model, _ := trainTree(t, 400, 2)
	pred, err := FromTree(model, 1, "prop")
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint16, modeRaw uint8) bool {
		vs := []float64{
			float64(aRaw) / 65535 * 12,
			float64(bRaw) / 65535 * 12,
			float64(modeRaw % 3),
		}
		return pred.Eval(vs) == (model.Classify(vs) == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPredicateComplexity(t *testing.T) {
	model, _ := trainTree(t, 600, 3)
	pred, err := FromTree(model, 1, "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Clauses) == 0 {
		t.Fatal("no failure clauses extracted")
	}
	if pred.Complexity() < len(pred.Clauses) {
		t.Fatalf("complexity %d < clauses %d", pred.Complexity(), len(pred.Clauses))
	}
}

func TestFromTreeNil(t *testing.T) {
	if _, err := FromTree(nil, 1, "x"); err == nil {
		t.Fatal("nil tree should fail")
	}
}

func TestPredicateString(t *testing.T) {
	model, _ := trainTree(t, 500, 4)
	pred, err := FromTree(model, 1, "render")
	if err != nil {
		t.Fatal(err)
	}
	s := pred.String()
	if !strings.Contains(s, "render") || !strings.Contains(s, "flag erroneous iff") {
		t.Errorf("rendering: %s", s)
	}
	empty := &Predicate{Name: "none"}
	if !strings.Contains(empty.String(), "FALSE") {
		t.Error("empty predicate rendering")
	}
}

func TestPredicateJSONRoundTrip(t *testing.T) {
	model, d := trainTree(t, 500, 5)
	pred, err := FromTree(model, 1, "json")
	if err != nil {
		t.Fatal(err)
	}
	data, err := pred.MarshalText()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != pred.Name || len(got.Clauses) != len(pred.Clauses) {
		t.Fatalf("round trip changed shape")
	}
	for i := range d.Instances {
		vs := d.Instances[i].Values
		if got.Eval(vs) != pred.Eval(vs) {
			t.Fatalf("parsed predicate disagrees on instance %d", i)
		}
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("{")); err == nil {
		t.Error("bad JSON should fail")
	}
	if _, err := Parse([]byte(`{"clauses":[[{"op":"??"}]]}`)); err == nil {
		t.Error("bad operator should fail")
	}
}

func TestAtomEval(t *testing.T) {
	for _, tt := range []struct {
		atom Atom
		val  float64
		want bool
	}{
		{Atom{Index: 0, Op: LE, Threshold: 5}, 5, true},
		{Atom{Index: 0, Op: LE, Threshold: 5}, 5.1, false},
		{Atom{Index: 0, Op: GT, Threshold: 5}, 5.1, true},
		{Atom{Index: 0, Op: GT, Threshold: 5}, 5, false},
		{Atom{Index: 0, Op: EQ, Threshold: 2}, 2, true},
		{Atom{Index: 0, Op: EQ, Threshold: 2}, 1, false},
		{Atom{Index: 0, Op: NE, Threshold: 2}, 1, true},
	} {
		if got := tt.atom.Eval([]float64{tt.val}); got != tt.want {
			t.Errorf("%v on %v = %v", tt.atom, tt.val, got)
		}
	}
	// Missing values and out-of-range indices never fire.
	if (Atom{Index: 0, Op: LE, Threshold: 5}).Eval([]float64{dataset.Missing}) {
		t.Error("missing value fired an atom")
	}
	if (Atom{Index: 3, Op: LE, Threshold: 5}).Eval([]float64{1}) {
		t.Error("out-of-range index fired an atom")
	}
	if (Atom{Index: 0, Op: Op(0), Threshold: 5}).Eval([]float64{1}) {
		t.Error("unknown operator fired")
	}
}

func TestSimplifyMergesBounds(t *testing.T) {
	// x <= 5 AND x <= 3 collapses to x <= 3.
	c, ok := simplify(Clause{
		{Var: "x", Index: 0, Op: LE, Threshold: 5},
		{Var: "x", Index: 0, Op: LE, Threshold: 3},
	})
	if !ok {
		t.Fatal("satisfiable clause dropped")
	}
	if len(c) != 1 || c[0].Threshold != 3 {
		t.Fatalf("merged clause = %v", c)
	}
	// Contradiction: x <= 2 AND x > 5.
	if _, ok := simplify(Clause{
		{Index: 0, Op: LE, Threshold: 2},
		{Index: 0, Op: GT, Threshold: 5},
	}); ok {
		t.Fatal("contradictory clause survived")
	}
	// Contradictory equalities.
	if _, ok := simplify(Clause{
		{Index: 0, Op: EQ, Threshold: 1},
		{Index: 0, Op: EQ, Threshold: 2},
	}); ok {
		t.Fatal("contradictory equalities survived")
	}
}

func TestOpStrings(t *testing.T) {
	for op, want := range map[Op]string{LE: "<=", GT: ">", EQ: "=", NE: "!="} {
		if op.String() != want {
			t.Errorf("%d renders %q", op, op.String())
		}
	}
	if Op(9).String() != "Op(9)" {
		t.Error("unknown op rendering")
	}
}
