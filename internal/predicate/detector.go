package predicate

import (
	"edem/internal/propane"
)

// Detector is an error detection mechanism: a predicate installed as a
// runtime assertion at a program location (paper §VII-D: "a cross
// validation for each model had its predicate implemented as a runtime
// assertion in its corresponding code location"). It observes the
// instrumented variables at every activation of its location and raises
// an alarm whenever the predicate flags the state as failure-inducing.
type Detector struct {
	// Module and Location identify the code location the detector
	// guards; they must match the sampling location of the campaign the
	// predicate was learnt from.
	Module   string
	Location propane.Location
	// Pred is the detection predicate.
	Pred *Predicate
	// GuardActivations, when non-empty, restricts evaluation to these
	// 1-based activation indices — the activations whose states the
	// predicate was trained on. Other visits are counted but not
	// asserted.
	GuardActivations []int

	// Visits counts location activations observed.
	Visits int
	// Alarms records the activation indices (1-based) at which the
	// predicate flagged the state.
	Alarms []int
}

var _ propane.Probe = (*Detector)(nil)

// NewDetector installs pred at the given location.
func NewDetector(module string, loc propane.Location, pred *Predicate) *Detector {
	return &Detector{Module: module, Location: loc, Pred: pred}
}

// Visit implements propane.Probe.
func (d *Detector) Visit(module string, loc propane.Location, vars []propane.VarRef) {
	if module != d.Module || loc != d.Location {
		return
	}
	d.Visits++
	if len(d.GuardActivations) > 0 {
		guarded := false
		for _, a := range d.GuardActivations {
			if a == d.Visits {
				guarded = true
				break
			}
		}
		if !guarded {
			return
		}
	}
	state := make([]float64, len(vars))
	for i, v := range vars {
		state[i] = v.Read()
	}
	if d.Pred.Eval(state) {
		d.Alarms = append(d.Alarms, d.Visits)
	}
}

// Triggered reports whether the detector raised at least one alarm.
func (d *Detector) Triggered() bool { return len(d.Alarms) > 0 }

// Reset clears the detector's counters for reuse across runs.
func (d *Detector) Reset() {
	d.Visits = 0
	d.Alarms = nil
}
