package predicate

import (
	"sync"

	"edem/internal/propane"
)

// Detector is an error detection mechanism: a predicate installed as a
// runtime assertion at a program location (paper §VII-D: "a cross
// validation for each model had its predicate implemented as a runtime
// assertion in its corresponding code location"). It observes the
// instrumented variables at every activation of its location and raises
// an alarm whenever the predicate flags the state as failure-inducing.
//
// Concurrency: Visit, Triggered, AlarmIndices, VisitCount and Reset are
// safe for concurrent use — instrumented targets may activate the same
// location from several goroutines. Note that Visits still orders
// activations by arrival, so under concurrent visits the activation
// numbering (and therefore GuardActivations matching) depends on
// scheduling; single-goroutine targets keep deterministic numbering.
// The exported configuration fields must not be mutated after the
// first Visit. Direct reads of Visits/Alarms are safe only after the
// visiting goroutines have been joined.
type Detector struct {
	// Module and Location identify the code location the detector
	// guards; they must match the sampling location of the campaign the
	// predicate was learnt from.
	Module   string
	Location propane.Location
	// Pred is the detection predicate.
	Pred *Predicate
	// GuardActivations, when non-empty, restricts evaluation to these
	// 1-based activation indices — the activations whose states the
	// predicate was trained on. Other visits are counted but not
	// asserted. Do not mutate after the first Visit.
	GuardActivations []int

	// Visits counts location activations observed.
	Visits int
	// Alarms records the activation indices (1-based) at which the
	// predicate flagged the state.
	Alarms []int

	mu sync.Mutex
	// guardSet is the set form of GuardActivations, built on the first
	// guarded Visit so membership is O(1) instead of a linear scan.
	guardSet map[int]struct{}
	// prog is the compiled form of Pred, used by Visit when present. It
	// is bit-identical to the interpreted Pred.Eval (pinned by the
	// differential suite), so detectors built literally — with a nil
	// prog — observe exactly the same alarms, just slower.
	prog *Program
}

var _ propane.Probe = (*Detector)(nil)

// NewDetector installs pred at the given location. The predicate is
// compiled to a flat threshold program where possible; a predicate the
// compiler refuses falls back to interpreted evaluation.
func NewDetector(module string, loc propane.Location, pred *Predicate) *Detector {
	d := &Detector{Module: module, Location: loc, Pred: pred}
	if prog, err := Compile(pred); err == nil {
		d.prog = prog
	}
	return d
}

// Visit implements propane.Probe.
func (d *Detector) Visit(module string, loc propane.Location, vars []propane.VarRef) {
	if module != d.Module || loc != d.Location {
		return
	}
	d.mu.Lock()
	d.Visits++
	visit := d.Visits
	if len(d.GuardActivations) > 0 {
		if d.guardSet == nil {
			d.guardSet = make(map[int]struct{}, len(d.GuardActivations))
			for _, a := range d.GuardActivations {
				d.guardSet[a] = struct{}{}
			}
		}
		if _, guarded := d.guardSet[visit]; !guarded {
			d.mu.Unlock()
			return
		}
	}
	d.mu.Unlock()
	// Read and evaluate outside the lock: VarRef reads and predicate
	// evaluation are the expensive part and touch no detector state.
	state := make([]float64, len(vars))
	for i, v := range vars {
		state[i] = v.Read()
	}
	flagged := false
	if d.prog != nil {
		flagged = d.prog.Eval(state)
	} else {
		flagged = d.Pred.Eval(state)
	}
	if flagged {
		d.mu.Lock()
		d.Alarms = append(d.Alarms, visit)
		d.mu.Unlock()
	}
}

// Triggered reports whether the detector raised at least one alarm.
func (d *Detector) Triggered() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.Alarms) > 0
}

// AlarmIndices returns a copy of the alarm activation indices.
func (d *Detector) AlarmIndices() []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), d.Alarms...)
}

// VisitCount returns the number of activations observed so far.
func (d *Detector) VisitCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.Visits
}

// Reset clears the detector's counters for reuse across runs.
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.Visits = 0
	d.Alarms = nil
	d.guardSet = nil
}
