package predicate

import (
	"errors"
	"fmt"
	"math"
)

// Compilation lowers the Clause/Atom AST into a flat, branch-lean
// threshold program: all atoms of all clauses live in three contiguous
// parallel arrays (attribute index, operator, constant) with a fourth
// array marking where each clause's atom run ends. Evaluation is one
// tight loop over those arrays — no interface dispatch, no per-clause
// slice headers chased through the heap, no allocation — which is what
// lets the serving runtime walk a detector per sample at wire speed
// (the "efficient" in the paper's title, paid at build time in the
// ZOFI spirit: cost at compile, not per evaluation).
//
// The compiled form is required to be bit-identical to the interpreted
// Predicate.Eval on every input, including NaN (missing) values, ±Inf
// thresholds and state vectors whose length disagrees with the
// predicate's arity. The differential suite and FuzzCompiledEval pin
// this equivalence; the serving runtime additionally falls back to the
// interpreter whenever Compile refuses a predicate.

// opcode is the compiled operator encoding. It deliberately mirrors Op
// but is its own 8-bit type so the comparison table stays dense.
type opcode uint8

const (
	opLE opcode = iota // value <= constant
	opGT               // value >  constant
	opEQ               // value == constant
	opNE               // value != constant
)

// Program is a compiled predicate: a contiguous per-detector comparison
// table evaluated clause by clause. A Program is immutable once built
// and safe for unrestricted concurrent evaluation.
type Program struct {
	// Name and Arity mirror the source predicate (Arity = len(Vars)).
	Name  string
	Arity int

	// The atom table, one entry per atom across all clauses, in clause
	// order. idx is the state-vector position, ops the comparison,
	// consts the threshold.
	ops    []opcode
	idx    []int32
	consts []float64
	// clauseEnds[k] is the end (exclusive) of clause k's atom run in the
	// atom table; clause k starts at clauseEnds[k-1] (0 for k = 0). An
	// empty run is a vacuously-true clause, matching Clause.Eval.
	clauseEnds []int32
}

// ErrNoPredicate is returned by Compile for a nil predicate.
var ErrNoPredicate = errors.New("predicate: compile: nil predicate")

// Compile lowers a predicate into a flat threshold program. It fails
// only on operators the table cannot encode (the zero Op or corrupt
// values); callers keep the interpreter as fallback. Atoms whose index
// can never be in range (negative) make their clause unsatisfiable —
// exactly as in the interpreter, where such an atom always fails — so
// the whole clause is dropped at compile time.
func Compile(p *Predicate) (*Program, error) {
	if p == nil {
		return nil, ErrNoPredicate
	}
	prog := &Program{Name: p.Name, Arity: len(p.Vars)}
	n := 0
	for _, c := range p.Clauses {
		n += len(c)
	}
	prog.ops = make([]opcode, 0, n)
	prog.idx = make([]int32, 0, n)
	prog.consts = make([]float64, 0, n)
	prog.clauseEnds = make([]int32, 0, len(p.Clauses))
	for ci, c := range p.Clauses {
		dead := false
		for _, a := range c {
			if a.Index < 0 {
				dead = true // always-false atom: the clause can never fire
				continue
			}
			if a.Index > math.MaxInt32 {
				// The index column is int32; refusing keeps the compiled
				// form exactly equivalent instead of silently wrapping.
				return nil, fmt.Errorf("predicate: compile %s: clause %d has index %d beyond the table range", p.Name, ci, a.Index)
			}
			var op opcode
			switch a.Op {
			case LE:
				op = opLE
			case GT:
				op = opGT
			case EQ:
				op = opEQ
			case NE:
				op = opNE
			default:
				return nil, fmt.Errorf("predicate: compile %s: clause %d has unsupported operator %v", p.Name, ci, a.Op)
			}
			if !dead {
				prog.ops = append(prog.ops, op)
				prog.idx = append(prog.idx, int32(a.Index))
				prog.consts = append(prog.consts, a.Threshold)
			}
		}
		if dead {
			// Rewind any atoms emitted before the dead one was seen.
			last := 0
			if len(prog.clauseEnds) > 0 {
				last = int(prog.clauseEnds[len(prog.clauseEnds)-1])
			}
			prog.ops = prog.ops[:last]
			prog.idx = prog.idx[:last]
			prog.consts = prog.consts[:last]
			continue
		}
		prog.clauseEnds = append(prog.clauseEnds, int32(len(prog.ops)))
	}
	return prog, nil
}

// Eval runs the compiled program over a state vector. It is
// bit-identical to the interpreted Predicate.Eval: NaN values (the
// missing marker) fail every atom, as do indices outside the vector.
// Zero allocations per call.
func (p *Program) Eval(values []float64) bool {
	start := int32(0)
	for _, end := range p.clauseEnds {
		matched := true
		for k := start; k < end; k++ {
			ix := p.idx[k]
			if int(ix) >= len(values) {
				matched = false
				break
			}
			v := values[ix]
			if v != v { // NaN: missing values fail every atom
				matched = false
				break
			}
			c := p.consts[k]
			var ok bool
			switch p.ops[k] {
			case opLE:
				ok = v <= c
			case opGT:
				ok = v > c
			case opEQ:
				ok = v == c
			default: // opNE
				ok = v != c
			}
			if !ok {
				matched = false
				break
			}
		}
		if matched {
			return true
		}
		start = end
	}
	return false
}

// Atoms reports the number of atoms in the comparison table (satisfiable
// clauses only — compile-time-dead clauses are not counted).
func (p *Program) Atoms() int { return len(p.ops) }

// Clauses reports the number of live clauses in the table.
func (p *Program) Clauses() int { return len(p.clauseEnds) }
