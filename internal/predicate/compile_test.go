package predicate

import (
	"math"
	"testing"

	"edem/internal/mining/eval"
	"edem/internal/mining/rules"
	"edem/internal/propane"
	"edem/internal/stats"
)

// The differential equivalence suite: for every predicate family the
// pipeline can emit — tree-derived, rule-derived, range-check baselines
// and hand-built edge cases — the compiled program must agree with the
// interpreted Predicate.Eval on every input, including exhaustive
// boundary grids around every threshold (just below, exactly at, just
// above, ±Inf, NaN) and seeded random sweeps. This is the contract that
// lets the serving runtime swap the compiler in without a behavioural
// review: FastFlip-style, the cheap form is validated against the
// reference form cell by cell instead of being trusted.

// boundaryValues returns the probe values for one threshold: the exact
// constant, one ulp either side, and the global specials.
func boundaryValues(c float64) []float64 {
	vals := []float64{c}
	if !math.IsNaN(c) {
		vals = append(vals,
			math.Nextafter(c, math.Inf(-1)),
			math.Nextafter(c, math.Inf(1)),
		)
	}
	return append(vals,
		math.Inf(1), math.Inf(-1), math.NaN(),
		0, math.Copysign(0, -1), 1, -1,
	)
}

// assertEquivalent drives pred and its compiled form through boundary
// grids and seeded random samples and demands bit-identical verdicts.
func assertEquivalent(t *testing.T, pred *Predicate, seed uint64) {
	t.Helper()
	prog, err := Compile(pred)
	if err != nil {
		t.Fatalf("compile %s: %v", pred.Name, err)
	}
	arity := len(pred.Vars)
	check := func(vs []float64) {
		t.Helper()
		if got, want := prog.Eval(vs), pred.Eval(vs); got != want {
			t.Fatalf("%s: compiled=%v interpreted=%v on %v", pred.Name, got, want, vs)
		}
	}

	// Per-atom boundary sweeps: every atom's threshold probed at and
	// around its constant in that atom's own position, with every other
	// position at a neutral base and then at each special.
	base := make([]float64, arity)
	for _, c := range pred.Clauses {
		for _, a := range c {
			if a.Index < 0 || a.Index >= arity {
				continue
			}
			for _, fill := range []float64{0, 1, math.NaN(), math.Inf(1)} {
				vs := make([]float64, arity)
				for i := range vs {
					vs[i] = fill
				}
				for _, v := range boundaryValues(a.Threshold) {
					vs[a.Index] = v
					check(vs)
				}
			}
		}
	}
	check(base)

	// Cross-atom grid: pairs of atoms set to boundary values together
	// (clause conjunctions flip exactly at these corners).
	var atoms []Atom
	for _, c := range pred.Clauses {
		atoms = append(atoms, c...)
	}
	for i := 0; i < len(atoms) && i < 12; i++ {
		for j := i + 1; j < len(atoms) && j < 12; j++ {
			ai, aj := atoms[i], atoms[j]
			if ai.Index < 0 || ai.Index >= arity || aj.Index < 0 || aj.Index >= arity {
				continue
			}
			vs := make([]float64, arity)
			for _, vi := range boundaryValues(ai.Threshold) {
				for _, vj := range boundaryValues(aj.Threshold) {
					vs[ai.Index], vs[aj.Index] = vi, vj
					check(vs)
				}
			}
		}
	}

	// Seeded random sweep, including occasional NaN/Inf contamination
	// and wrong-arity vectors (shorter and longer than the predicate).
	rng := stats.NewRNG(seed)
	for n := 0; n < 3000; n++ {
		size := arity
		switch n % 10 {
		case 7:
			size = rng.Intn(arity + 1) // short vector
		case 9:
			size = arity + 1 + rng.Intn(3) // long vector
		}
		vs := make([]float64, size)
		for i := range vs {
			switch rng.Intn(12) {
			case 0:
				vs[i] = math.NaN()
			case 1:
				vs[i] = math.Inf(1)
			case 2:
				vs[i] = math.Inf(-1)
			default:
				vs[i] = (rng.Float64() - 0.5) * 200
			}
		}
		check(vs)
	}
}

func TestCompiledEquivalenceFromTree(t *testing.T) {
	model, _ := trainTree(t, 600, 11)
	pred, err := FromTree(model, 1, "tree-diff")
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Clauses) == 0 {
		t.Fatal("tree yielded no clauses")
	}
	assertEquivalent(t, pred, 101)
}

func TestCompiledEquivalenceFromRules(t *testing.T) {
	_, d := trainTree(t, 500, 12)
	model, err := (rules.PRISM{}).Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	rs, ok := model.(*rules.RuleSet)
	if !ok {
		t.Fatalf("unexpected model type %T", model)
	}
	vars := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		vars[i] = a.Name
	}
	pred, err := FromRules(rs, eval.PositiveClass, vars, "rules-diff")
	if err != nil {
		t.Skipf("rule set not convertible: %v", err)
	}
	assertEquivalent(t, pred, 102)
}

func TestCompiledEquivalenceRangeCheck(t *testing.T) {
	pred, err := RangeCheck([]propane.VarProfile{
		{Var: "a", Min: -3, Max: 7.5, Samples: 40},
		{Var: "b", Min: 2, Max: 2, Samples: 40},     // constant variable
		{Var: "c", Min: 0, Max: 1e300, Samples: 40}, // huge span
		{Var: "d", Samples: 0},                      // never observed
	}, 0.2, "range-diff")
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, pred, 103)
}

// TestCompiledEquivalenceEdgeCases drives the hand-built shapes the
// learners cannot easily produce: empty predicates, vacuous clauses,
// NaN constants, NE atoms, out-of-range and negative indices.
func TestCompiledEquivalenceEdgeCases(t *testing.T) {
	for _, tt := range []struct {
		name string
		pred *Predicate
	}{
		{"empty-predicate", &Predicate{Name: "empty", Vars: []string{"x"}}},
		{"empty-clause", &Predicate{Name: "vacuous", Vars: []string{"x"},
			Clauses: []Clause{{}}}}, // zero atoms: always fires
		{"single-atom", &Predicate{Name: "single", Vars: []string{"x"},
			Clauses: []Clause{{{Var: "x", Index: 0, Op: GT, Threshold: 3.5}}}}},
		{"nan-constant", &Predicate{Name: "nan-const", Vars: []string{"x", "y"},
			Clauses: []Clause{
				{{Var: "x", Index: 0, Op: LE, Threshold: math.NaN()}},
				{{Var: "y", Index: 1, Op: NE, Threshold: math.NaN()}},
				{{Var: "y", Index: 1, Op: EQ, Threshold: math.NaN()}},
			}}},
		{"ne-atoms", &Predicate{Name: "ne", Vars: []string{"x", "y"},
			Clauses: []Clause{
				{{Var: "x", Index: 0, Op: NE, Threshold: 0}},
				{{Var: "y", Index: 1, Op: NE, Threshold: -1}, {Var: "x", Index: 0, Op: LE, Threshold: 10}},
			}}},
		{"inf-thresholds", &Predicate{Name: "inf", Vars: []string{"x"},
			Clauses: []Clause{
				{{Var: "x", Index: 0, Op: GT, Threshold: math.Inf(1)}},
				{{Var: "x", Index: 0, Op: LE, Threshold: math.Inf(-1)}},
			}}},
		{"index-past-arity", &Predicate{Name: "past", Vars: []string{"x"},
			Clauses: []Clause{
				{{Var: "ghost", Index: 5, Op: GT, Threshold: 1}},
				{{Var: "x", Index: 0, Op: GT, Threshold: 1}},
			}}},
		{"negative-index", &Predicate{Name: "neg", Vars: []string{"x"},
			Clauses: []Clause{
				{{Var: "bad", Index: -1, Op: GT, Threshold: 1}, {Var: "x", Index: 0, Op: LE, Threshold: 5}},
				{{Var: "x", Index: 0, Op: GT, Threshold: 7}},
			}}},
		{"signed-zero", &Predicate{Name: "zero", Vars: []string{"x"},
			Clauses: []Clause{
				{{Var: "x", Index: 0, Op: EQ, Threshold: math.Copysign(0, -1)}},
				{{Var: "x", Index: 0, Op: GT, Threshold: 0}},
			}}},
	} {
		t.Run(tt.name, func(t *testing.T) { assertEquivalent(t, tt.pred, 104) })
	}
}

// TestCompileRefusesUnknownOp pins the fallback rule: an operator the
// table cannot encode is a compile error, never a silent misencoding;
// the serving runtime then keeps the interpreter.
func TestCompileRefusesUnknownOp(t *testing.T) {
	pred := &Predicate{Name: "bad-op", Vars: []string{"x"},
		Clauses: []Clause{{{Var: "x", Index: 0, Op: Op(0), Threshold: 1}}}}
	if _, err := Compile(pred); err == nil {
		t.Fatal("unknown operator must refuse to compile")
	}
	if _, err := Compile(nil); err == nil {
		t.Fatal("nil predicate must refuse to compile")
	}
}

// TestCompiledTableShape pins the lowering itself: dead clauses vanish,
// live atoms stay in clause order.
func TestCompiledTableShape(t *testing.T) {
	pred := &Predicate{Name: "shape", Vars: []string{"x", "y"},
		Clauses: []Clause{
			{{Index: 0, Op: LE, Threshold: 1}, {Index: 1, Op: GT, Threshold: 2}},
			{{Index: -1, Op: GT, Threshold: 9}, {Index: 0, Op: LE, Threshold: 3}}, // dead
			{{Index: 1, Op: NE, Threshold: 4}},
		}}
	prog, err := Compile(pred)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Clauses() != 2 {
		t.Fatalf("live clauses = %d, want 2 (dead clause dropped)", prog.Clauses())
	}
	if prog.Atoms() != 3 {
		t.Fatalf("atoms = %d, want 3", prog.Atoms())
	}
	if prog.Arity != 2 {
		t.Fatalf("arity = %d, want 2", prog.Arity)
	}
	assertEquivalent(t, pred, 105)
}

// TestCompiledEvalAllocFree pins the zero-allocation evaluation
// contract the serving hot path depends on.
func TestCompiledEvalAllocFree(t *testing.T) {
	model, d := trainTree(t, 600, 13)
	pred, err := FromTree(model, 1, "alloc")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(pred)
	if err != nil {
		t.Fatal(err)
	}
	vs := d.Instances[0].Values
	if avg := testing.AllocsPerRun(200, func() { prog.Eval(vs) }); avg != 0 {
		t.Fatalf("compiled eval allocates %.1f allocs/op, want 0", avg)
	}
}

// benchProgram builds a learnt predicate of realistic shape for the
// eval benchmarks, plus a seeded sample stream.
func benchProgram(b *testing.B) (*Predicate, *Program, [][]float64) {
	b.Helper()
	model, _ := trainTree(b, 800, 21)
	pred, err := FromTree(model, 1, "bench")
	if err != nil {
		b.Fatal(err)
	}
	prog, err := Compile(pred)
	if err != nil {
		b.Fatal(err)
	}
	samples := make([][]float64, 256)
	rng := stats.NewRNG(42)
	for i := range samples {
		vs := make([]float64, len(pred.Vars))
		for j := range vs {
			vs[j] = rng.Float64() * 12
		}
		samples[i] = vs
	}
	return pred, prog, samples
}

// BenchmarkCompiledEval measures the compiled threshold-program hot
// loop; BenchmarkInterpretedEval is the AST walk it replaces.
func BenchmarkCompiledEval(b *testing.B) {
	_, prog, samples := benchProgram(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prog.Eval(samples[i%len(samples)])
	}
}

func BenchmarkInterpretedEval(b *testing.B) {
	pred, _, samples := benchProgram(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.Eval(samples[i%len(samples)])
	}
}
