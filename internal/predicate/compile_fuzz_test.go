package predicate

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzCompiledEval is the adversarial arm of the differential suite:
// the fuzzer invents predicates (as the JSON text Parse accepts) and
// state vectors (as raw IEEE-754 bit patterns, so NaN payloads, ±Inf
// and subnormals all occur), and the compiled program must agree with
// the interpreter on every one — including vectors shorter and longer
// than the predicate's arity.
func FuzzCompiledEval(f *testing.F) {
	f.Add(`{"name":"p","vars":["a","b"],"clauses":[[{"var":"a","index":0,"op":"<=","threshold":3.5}],[{"var":"b","index":1,"op":">","threshold":-1}]]}`,
		[]byte{0, 0, 0, 0, 0, 0, 12, 64, 0, 0, 0, 0, 0, 0, 240, 127})
	f.Add(`{"name":"q","vars":["x"],"clauses":[[{"var":"x","index":0,"op":"=","threshold":0}]]}`,
		[]byte{0, 0, 0, 0, 0, 0, 0, 128})
	f.Add(`{"name":"r","vars":["x","y"],"clauses":[[{"var":"x","index":5,"op":"!=","threshold":1},{"var":"y","index":-1,"op":">","threshold":0}]]}`,
		[]byte{1, 0, 0, 0, 0, 0, 248, 127})
	f.Add(`{"name":"v","vars":["x"],"clauses":[[]]}`, []byte{})
	f.Fuzz(func(t *testing.T, predText string, raw []byte) {
		pred, err := Parse([]byte(predText))
		if err != nil {
			t.Skip() // not a predicate: nothing to compare
		}
		prog, err := Compile(pred)
		if err != nil {
			t.Skip() // refused at compile time: the runtime keeps the interpreter
		}
		values := make([]float64, len(raw)/8)
		for i := range values {
			values[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		// Compare on the fuzzed vector and on every truncation of it, so
		// out-of-range index handling is probed at each length.
		for n := len(values); n >= 0; n-- {
			vs := values[:n]
			if got, want := prog.Eval(vs), pred.Eval(vs); got != want {
				t.Fatalf("compiled=%v interpreted=%v on %v for %s", got, want, vs, predText)
			}
		}
	})
}
