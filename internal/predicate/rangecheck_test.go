package predicate

import (
	"testing"

	"edem/internal/propane"
)

func TestRangeCheck(t *testing.T) {
	profiles := []propane.VarProfile{
		{Var: "a", Min: 0, Max: 10, Samples: 100},
		{Var: "b", Min: 5, Max: 5, Samples: 100}, // constant
	}
	pred, err := RangeCheck(profiles, 0.1, "ea")
	if err != nil {
		t.Fatal(err)
	}
	// Inside both ranges: silent.
	if pred.Eval([]float64{5, 5}) {
		t.Error("healthy state flagged")
	}
	// Slack tolerated: span 10, pad 1.
	if pred.Eval([]float64{10.5, 5}) {
		t.Error("within-slack state flagged")
	}
	// Outside: flagged.
	if !pred.Eval([]float64{12, 5}) {
		t.Error("high excursion missed")
	}
	if !pred.Eval([]float64{-2, 5}) {
		t.Error("low excursion missed")
	}
	// Constant variable with relative pad: 5 +- 0.5.
	if !pred.Eval([]float64{5, 6}) {
		t.Error("constant-variable excursion missed")
	}
	if pred.Eval([]float64{5, 5.3}) {
		t.Error("constant-variable within-pad flagged")
	}
}

func TestRangeCheckErrors(t *testing.T) {
	if _, err := RangeCheck(nil, 0.1, "e"); err == nil {
		t.Error("empty profiles should fail")
	}
	if _, err := RangeCheck([]propane.VarProfile{{Var: "a"}}, -1, "e"); err == nil {
		t.Error("negative slack should fail")
	}
	// All-unobserved profiles yield no constraints.
	if _, err := RangeCheck([]propane.VarProfile{{Var: "a", Samples: 0}}, 0.1, "e"); err == nil {
		t.Error("unobserved profiles should fail")
	}
}
