// Package predicate turns induced decision trees into error detection
// predicates and wraps them as runtime assertions (detectors). This is
// the payoff of the methodology: "implementing an error detection
// mechanism based on a model generated using our methodology reduces to
// the, almost trivial, process of interpreting a decision tree" (paper
// §VIII). A predicate is the disjunction of the conjunctive paths that
// reach failure-labelled leaves (Figure 2 read as a conjunction of
// disjunctions).
//
// Role in the methodology: the output of Step 4 — the refined tree
// becomes the deployable detector here — and the subject of the §VII-D
// re-validation. Ownership/concurrency: a Predicate is immutable once
// built and safe for concurrent evaluation. A Detector accumulates
// visit counts and alarm indices under an internal mutex, so concurrent
// Visit calls are safe — but activation numbering is then
// scheduling-dependent, so each deterministic run (each injection
// campaign cell) should still own its own Detector instance.
package predicate

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"

	"edem/internal/dataset"
	"edem/internal/mining/tree"
)

// Op is a comparison operator of an atomic condition.
type Op int

// Atomic condition operators.
const (
	LE Op = iota + 1 // value <= threshold
	GT               // value >  threshold
	EQ               // nominal equality
	NE               // nominal inequality
)

// String returns the surface syntax of the operator.
func (o Op) String() string {
	switch o {
	case LE:
		return "<="
	case GT:
		return ">"
	case EQ:
		return "="
	case NE:
		return "!="
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// MarshalJSON encodes the operator as its surface syntax.
func (o Op) MarshalJSON() ([]byte, error) { return json.Marshal(o.String()) }

// UnmarshalJSON decodes the surface syntax.
func (o *Op) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "<=":
		*o = LE
	case ">":
		*o = GT
	case "=":
		*o = EQ
	case "!=":
		*o = NE
	default:
		return fmt.Errorf("predicate: unknown operator %q", s)
	}
	return nil
}

// Atom is one comparison over a single variable.
type Atom struct {
	// Var is the variable (attribute) name.
	Var string `json:"var"`
	// Index is the variable's position in the sampled state vector.
	Index int `json:"index"`
	Op    Op  `json:"op"`
	// Threshold is the numeric bound (LE/GT) or the nominal value index
	// (EQ/NE).
	Threshold float64 `json:"threshold"`
}

// Eval tests the atom against a state vector. Missing values fail every
// atom (a detector cannot flag what it cannot read).
func (a Atom) Eval(values []float64) bool {
	if a.Index < 0 || a.Index >= len(values) {
		return false
	}
	v := values[a.Index]
	if dataset.IsMissing(v) {
		return false
	}
	switch a.Op {
	case LE:
		return v <= a.Threshold
	case GT:
		return v > a.Threshold
	case EQ:
		return v == a.Threshold
	case NE:
		return v != a.Threshold
	default:
		return false
	}
}

func (a Atom) String() string {
	return fmt.Sprintf("%s %s %g", a.Var, a.Op, a.Threshold)
}

// Clause is a conjunction of atoms.
type Clause []Atom

// Eval reports whether every atom holds.
func (c Clause) Eval(values []float64) bool {
	for _, a := range c {
		if !a.Eval(values) {
			return false
		}
	}
	return true
}

func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, a := range c {
		parts[i] = a.String()
	}
	return strings.Join(parts, " AND ")
}

// Predicate is a DNF error detection predicate: it flags a state as
// failure-inducing when any clause holds.
type Predicate struct {
	// Name identifies the predicate (usually the dataset it was learnt
	// from, e.g. "FG-A2").
	Name string `json:"name"`
	// Vars names the state vector positions the atoms index.
	Vars []string `json:"vars"`
	// Clauses is the disjunction of conjunctive failure paths.
	Clauses []Clause `json:"clauses"`
}

// ErrNoTree is returned when extraction is given a nil tree.
var ErrNoTree = errors.New("predicate: nil tree")

// FromTree extracts the predicate from a decision tree: every root-to-
// leaf path whose leaf predicts positiveClass becomes one conjunctive
// clause. Redundant bounds within a clause are merged (two "x <= t"
// atoms keep the tighter t) and contradictory clauses are dropped.
func FromTree(t *tree.Tree, positiveClass int, name string) (*Predicate, error) {
	if t == nil || t.Root == nil {
		return nil, ErrNoTree
	}
	vars := make([]string, len(t.Attrs))
	for i, a := range t.Attrs {
		vars[i] = a.Name
	}
	p := &Predicate{Name: name, Vars: vars}
	var walk func(n *tree.Node, path Clause)
	walk = func(n *tree.Node, path Clause) {
		if n.IsLeaf() {
			if n.Class == positiveClass {
				if clause, ok := simplify(path); ok {
					p.Clauses = append(p.Clauses, clause)
				}
			}
			return
		}
		attr := t.Attrs[n.Attr]
		for i, ch := range n.Children {
			var atom Atom
			if attr.Type == dataset.Numeric {
				op := LE
				if i == 1 {
					op = GT
				}
				atom = Atom{Var: attr.Name, Index: n.Attr, Op: op, Threshold: n.Threshold}
			} else {
				atom = Atom{Var: attr.Name, Index: n.Attr, Op: EQ, Threshold: float64(i)}
			}
			next := make(Clause, len(path), len(path)+1)
			copy(next, path)
			next = append(next, atom)
			walk(ch, next)
		}
	}
	walk(t.Root, nil)
	return p, nil
}

// simplify merges redundant numeric bounds per variable and reports
// whether the clause is satisfiable.
func simplify(c Clause) (Clause, bool) {
	type bounds struct {
		hasLE, hasGT bool
		le, gt       float64
	}
	numeric := map[int]*bounds{}
	eq := map[int]float64{}
	var out Clause
	for _, a := range c {
		switch a.Op {
		case LE:
			b := numeric[a.Index]
			if b == nil {
				b = &bounds{le: math.Inf(1), gt: math.Inf(-1)}
				numeric[a.Index] = b
			}
			if !b.hasLE || a.Threshold < b.le {
				b.le = a.Threshold
			}
			b.hasLE = true
		case GT:
			b := numeric[a.Index]
			if b == nil {
				b = &bounds{le: math.Inf(1), gt: math.Inf(-1)}
				numeric[a.Index] = b
			}
			if !b.hasGT || a.Threshold > b.gt {
				b.gt = a.Threshold
			}
			b.hasGT = true
		case EQ:
			if prev, ok := eq[a.Index]; ok && prev != a.Threshold {
				return nil, false // contradictory equalities
			}
			eq[a.Index] = a.Threshold
			out = append(out, a)
		default:
			out = append(out, a)
		}
	}
	for _, a := range c {
		if a.Op != LE && a.Op != GT {
			continue
		}
		b := numeric[a.Index]
		if b == nil {
			continue
		}
		if b.hasLE && b.hasGT && b.gt >= b.le {
			return nil, false // empty interval
		}
		if b.hasLE && a.Op == LE && a.Threshold == b.le {
			out = append(out, a)
			b.hasLE = false // emit once
		}
		if b.hasGT && a.Op == GT && a.Threshold == b.gt {
			out = append(out, a)
			b.hasGT = false
		}
	}
	return out, true
}

// Eval flags the state as failure-inducing when any clause holds.
func (p *Predicate) Eval(values []float64) bool {
	for _, c := range p.Clauses {
		if c.Eval(values) {
			return true
		}
	}
	return false
}

// Complexity is the total number of atomic conditions.
func (p *Predicate) Complexity() int {
	n := 0
	for _, c := range p.Clauses {
		n += len(c)
	}
	return n
}

// String renders the predicate as readable DNF.
func (p *Predicate) String() string {
	if len(p.Clauses) == 0 {
		return fmt.Sprintf("%s: FALSE (no failure paths)", p.Name)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: flag erroneous iff\n", p.Name)
	for i, c := range p.Clauses {
		if i > 0 {
			sb.WriteString("  OR\n")
		}
		fmt.Fprintf(&sb, "  (%s)\n", c.String())
	}
	return sb.String()
}

// plainPredicate strips the TextMarshaler method so JSON encoding does
// not recurse back into MarshalText.
type plainPredicate Predicate

// MarshalText implements encoding.TextMarshaler via JSON for stable
// on-disk detector artefacts.
func (p *Predicate) MarshalText() ([]byte, error) {
	return json.MarshalIndent((*plainPredicate)(p), "", "  ")
}

// Parse decodes a predicate serialised by MarshalText.
func Parse(data []byte) (*Predicate, error) {
	var p plainPredicate
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("predicate: parse: %w", err)
	}
	out := Predicate(p)
	return &out, nil
}
