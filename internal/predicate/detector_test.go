package predicate

import (
	"sync"
	"testing"

	"edem/internal/propane"
)

func TestDetectorFlagsCorruptState(t *testing.T) {
	pred := &Predicate{
		Name: "d",
		Vars: []string{"v"},
		Clauses: []Clause{
			{{Var: "v", Index: 0, Op: GT, Threshold: 100}},
		},
	}
	det := NewDetector("M", propane.Exit, pred)

	v := 5.0
	vars := []propane.VarRef{propane.Float64Ref("v", &v)}

	det.Visit("M", propane.Exit, vars) // healthy
	v = 500
	det.Visit("M", propane.Exit, vars) // corrupt
	v = 50
	det.Visit("M", propane.Exit, vars) // healthy again

	if det.Visits != 3 {
		t.Fatalf("visits = %d", det.Visits)
	}
	if !det.Triggered() || len(det.Alarms) != 1 || det.Alarms[0] != 2 {
		t.Fatalf("alarms = %v", det.Alarms)
	}
}

func TestDetectorIgnoresOtherLocations(t *testing.T) {
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 0}}}}
	det := NewDetector("M", propane.Exit, pred)
	v := 5.0
	vars := []propane.VarRef{propane.Float64Ref("v", &v)}
	det.Visit("M", propane.Entry, vars)
	det.Visit("Other", propane.Exit, vars)
	if det.Visits != 0 || det.Triggered() {
		t.Fatalf("detector observed foreign locations: %+v", det)
	}
}

func TestDetectorReset(t *testing.T) {
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 0}}}}
	det := NewDetector("M", propane.Exit, pred)
	v := 5.0
	det.Visit("M", propane.Exit, []propane.VarRef{propane.Float64Ref("v", &v)})
	if !det.Triggered() {
		t.Fatal("should trigger")
	}
	det.Reset()
	if det.Visits != 0 || det.Triggered() {
		t.Fatal("reset did not clear state")
	}
}

func TestDetectorInChain(t *testing.T) {
	// A detector composes with other probes via propane.Chain.
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 10}}}}
	det := NewDetector("M", propane.Exit, pred)
	v := 50.0
	vars := []propane.VarRef{propane.Float64Ref("v", &v)}
	chain := propane.Chain(propane.NopProbe{}, det)
	chain.Visit("M", propane.Exit, vars)
	if !det.Triggered() {
		t.Fatal("chained detector did not observe the visit")
	}
}

// TestDetectorConcurrentVisits exercises the concurrency contract
// under -race: many goroutines visiting (and one resetting between
// rounds) must neither race nor lose counts.
func TestDetectorConcurrentVisits(t *testing.T) {
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 10}}}}
	det := NewDetector("M", propane.Exit, pred)
	const goroutines, visitsEach = 8, 200
	for round := 0; round < 3; round++ {
		det.Reset()
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				v := float64(g * 10) // g>1 exceeds the threshold
				vars := []propane.VarRef{propane.Float64Ref("v", &v)}
				for i := 0; i < visitsEach; i++ {
					det.Visit("M", propane.Exit, vars)
				}
			}(g)
		}
		wg.Wait()
		if got := det.VisitCount(); got != goroutines*visitsEach {
			t.Fatalf("round %d: visits = %d, want %d", round, got, goroutines*visitsEach)
		}
		// Goroutines with g*10 > 10 (six of eight) alarm on every visit.
		if got := len(det.AlarmIndices()); got != 6*visitsEach {
			t.Fatalf("round %d: alarms = %d, want %d", round, got, 6*visitsEach)
		}
	}
}

// TestDetectorConcurrentGuardedVisits runs the guarded path under
// -race: the guard set is built once and read concurrently.
func TestDetectorConcurrentGuardedVisits(t *testing.T) {
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 0}}}}
	det := NewDetector("M", propane.Exit, pred)
	det.GuardActivations = []int{1, 3, 5, 7, 11, 400}
	v := 5.0
	vars := []propane.VarRef{propane.Float64Ref("v", &v)}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				det.Visit("M", propane.Exit, vars)
			}
		}()
	}
	wg.Wait()
	if got := det.VisitCount(); got != 400 {
		t.Fatalf("visits = %d, want 400", got)
	}
	// All six guarded activation numbers occur within 400 visits, and
	// every guarded visit alarms (v > 0).
	if got := len(det.AlarmIndices()); got != len(det.GuardActivations) {
		t.Fatalf("alarms = %d, want %d", got, len(det.GuardActivations))
	}
}

func TestDetectorGuardActivations(t *testing.T) {
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 0}}}}
	det := NewDetector("M", propane.Exit, pred)
	det.GuardActivations = []int{2}
	v := 5.0 // always above threshold
	vars := []propane.VarRef{propane.Float64Ref("v", &v)}
	det.Visit("M", propane.Exit, vars) // activation 1: not guarded
	det.Visit("M", propane.Exit, vars) // activation 2: guarded
	det.Visit("M", propane.Exit, vars) // activation 3: not guarded
	if det.Visits != 3 {
		t.Fatalf("visits = %d", det.Visits)
	}
	if len(det.Alarms) != 1 || det.Alarms[0] != 2 {
		t.Fatalf("alarms = %v, want [2]", det.Alarms)
	}
}
