package predicate

import (
	"testing"

	"edem/internal/propane"
)

func TestDetectorFlagsCorruptState(t *testing.T) {
	pred := &Predicate{
		Name: "d",
		Vars: []string{"v"},
		Clauses: []Clause{
			{{Var: "v", Index: 0, Op: GT, Threshold: 100}},
		},
	}
	det := NewDetector("M", propane.Exit, pred)

	v := 5.0
	vars := []propane.VarRef{propane.Float64Ref("v", &v)}

	det.Visit("M", propane.Exit, vars) // healthy
	v = 500
	det.Visit("M", propane.Exit, vars) // corrupt
	v = 50
	det.Visit("M", propane.Exit, vars) // healthy again

	if det.Visits != 3 {
		t.Fatalf("visits = %d", det.Visits)
	}
	if !det.Triggered() || len(det.Alarms) != 1 || det.Alarms[0] != 2 {
		t.Fatalf("alarms = %v", det.Alarms)
	}
}

func TestDetectorIgnoresOtherLocations(t *testing.T) {
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 0}}}}
	det := NewDetector("M", propane.Exit, pred)
	v := 5.0
	vars := []propane.VarRef{propane.Float64Ref("v", &v)}
	det.Visit("M", propane.Entry, vars)
	det.Visit("Other", propane.Exit, vars)
	if det.Visits != 0 || det.Triggered() {
		t.Fatalf("detector observed foreign locations: %+v", det)
	}
}

func TestDetectorReset(t *testing.T) {
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 0}}}}
	det := NewDetector("M", propane.Exit, pred)
	v := 5.0
	det.Visit("M", propane.Exit, []propane.VarRef{propane.Float64Ref("v", &v)})
	if !det.Triggered() {
		t.Fatal("should trigger")
	}
	det.Reset()
	if det.Visits != 0 || det.Triggered() {
		t.Fatal("reset did not clear state")
	}
}

func TestDetectorInChain(t *testing.T) {
	// A detector composes with other probes via propane.Chain.
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 10}}}}
	det := NewDetector("M", propane.Exit, pred)
	v := 50.0
	vars := []propane.VarRef{propane.Float64Ref("v", &v)}
	chain := propane.Chain(propane.NopProbe{}, det)
	chain.Visit("M", propane.Exit, vars)
	if !det.Triggered() {
		t.Fatal("chained detector did not observe the visit")
	}
}

func TestDetectorGuardActivations(t *testing.T) {
	pred := &Predicate{Clauses: []Clause{{{Index: 0, Op: GT, Threshold: 0}}}}
	det := NewDetector("M", propane.Exit, pred)
	det.GuardActivations = []int{2}
	v := 5.0 // always above threshold
	vars := []propane.VarRef{propane.Float64Ref("v", &v)}
	det.Visit("M", propane.Exit, vars) // activation 1: not guarded
	det.Visit("M", propane.Exit, vars) // activation 2: guarded
	det.Visit("M", propane.Exit, vars) // activation 3: not guarded
	if det.Visits != 3 {
		t.Fatalf("visits = %d", det.Visits)
	}
	if len(det.Alarms) != 1 || det.Alarms[0] != 2 {
		t.Fatalf("alarms = %v, want [2]", det.Alarms)
	}
}
