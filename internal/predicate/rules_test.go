package predicate

import (
	"errors"
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining/rules"
	"edem/internal/stats"
)

func TestFromRulesMatchesRuleSet(t *testing.T) {
	// Learn a PRISM rule set on threshold data, convert to a predicate,
	// and check decision equivalence on the training points.
	d := trainDataForRules(400, 1)
	model, err := rules.PRISM{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	rs := model.(*rules.RuleSet)
	vars := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		vars[i] = a.Name
	}
	pred, err := FromRules(rs, 1, vars, "rules")
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Instances {
		vs := d.Instances[i].Values
		if pred.Eval(vs) != (rs.Classify(vs) == 1) {
			t.Fatalf("predicate and rule set disagree on instance %d", i)
		}
	}
	if len(pred.Clauses) != len(rs.Rules) {
		t.Fatalf("clauses = %d, rules = %d", len(pred.Clauses), len(rs.Rules))
	}
}

func trainDataForRules(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("rules", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
	}, []string{"nonfailure", "failure"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		class := 0
		if x > 0.7 && y < 0.4 {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, y}, Class: class, Weight: 1})
	}
	return d
}

func TestFromRulesRejectsUnsound(t *testing.T) {
	// Default class positive: unsound.
	rs := &rules.RuleSet{Default: 1}
	if _, err := FromRules(rs, 1, []string{"x"}, "u"); !errors.Is(err, ErrUnsoundRuleSet) {
		t.Fatalf("err = %v", err)
	}
	// Rule predicting the negative class: unsound.
	rs = &rules.RuleSet{
		Default: 0,
		Rules:   []rules.Rule{{Class: 0, Conds: []rules.Condition{{Attr: 0, LessEq: true, Threshold: 1}}}},
	}
	if _, err := FromRules(rs, 1, []string{"x"}, "u"); !errors.Is(err, ErrUnsoundRuleSet) {
		t.Fatalf("err = %v", err)
	}
	if _, err := FromRules(nil, 1, nil, "u"); err == nil {
		t.Fatal("nil rule set should fail")
	}
}

func TestFromRulesNominalConditions(t *testing.T) {
	rs := &rules.RuleSet{
		Default: 0,
		Rules: []rules.Rule{{
			Class: 1,
			Conds: []rules.Condition{
				{Attr: 0, Nominal: true, Value: 2},
				{Attr: 1, LessEq: false, Threshold: 5},
			},
		}},
	}
	pred, err := FromRules(rs, 1, []string{"mode", "x"}, "nom")
	if err != nil {
		t.Fatal(err)
	}
	if !pred.Eval([]float64{2, 6}) {
		t.Error("matching state should fire")
	}
	if pred.Eval([]float64{1, 6}) || pred.Eval([]float64{2, 5}) {
		t.Error("non-matching states should not fire")
	}
}
