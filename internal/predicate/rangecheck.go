package predicate

import (
	"errors"
	"math"

	"edem/internal/propane"
)

// RangeCheck builds the classical executable-assertion baseline the
// paper contrasts its methodology with (§II-A, Hiller [6]): flag a
// state as erroneous when any variable leaves its golden-run range,
// widened by slack (a fraction of the observed span) to absorb workload
// variation the golden profile did not cover.
//
// The result is an ordinary Predicate — one clause per bound — so the
// baseline plugs into the same deployment and validation machinery as
// the learnt detectors.
func RangeCheck(profiles []propane.VarProfile, slack float64, name string) (*Predicate, error) {
	if len(profiles) == 0 {
		return nil, errors.New("predicate: no variable profiles")
	}
	if slack < 0 {
		return nil, errors.New("predicate: negative slack")
	}
	p := &Predicate{Name: name}
	for i, prof := range profiles {
		p.Vars = append(p.Vars, prof.Var)
		if prof.Samples == 0 || math.IsInf(prof.Min, 1) {
			continue // never observed: no constraint
		}
		span := prof.Max - prof.Min
		pad := span * slack
		if span == 0 {
			// Constant variable: allow a relative pad around the value.
			pad = math.Abs(prof.Max) * slack
		}
		lo := prof.Min - pad
		hi := prof.Max + pad
		// value < lo  ==  NOT(value > lo-) — expressed with the atom set
		// available: flag when value <= lo-epsilon or value > hi.
		p.Clauses = append(p.Clauses,
			Clause{{Var: prof.Var, Index: i, Op: GT, Threshold: hi}},
		)
		if !math.IsInf(lo, -1) {
			p.Clauses = append(p.Clauses,
				Clause{{Var: prof.Var, Index: i, Op: LE, Threshold: lo}},
			)
		}
	}
	if len(p.Clauses) == 0 {
		return nil, errors.New("predicate: profiles yielded no constraints")
	}
	return p, nil
}
