package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// withBudget runs f under an explicit global budget and restores the
// default afterwards, so tests behave identically on 1-core CI and
// 32-core laptops.
func withBudget(t *testing.T, n int, f func()) {
	t.Helper()
	SetBudget(n)
	defer SetBudget(0)
	f()
}

func TestWorkersResolution(t *testing.T) {
	withBudget(t, 8, func() {
		cases := []struct {
			requested, jobs, want int
		}{
			{0, 100, 8}, // 0 = global budget
			{0, 3, 3},   // clamped to jobs
			{4, 100, 4}, // explicit request
			{4, 2, 2},   // explicit request clamped to jobs
			{-1, 5, 5},  // negative = budget, clamped
			{2, 0, 2},   // jobs unknown: request passes through
			{0, 0, 8},   // both defaulted
		}
		for _, c := range cases {
			if got := Workers(c.requested, c.jobs); got != c.want {
				t.Errorf("Workers(%d, %d) = %d, want %d", c.requested, c.jobs, got, c.want)
			}
		}
	})
	withBudget(t, 0, func() {
		if got := Workers(0, 1<<30); got != runtime.GOMAXPROCS(0) {
			t.Errorf("default budget = %d, want GOMAXPROCS", got)
		}
	})
}

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	withBudget(t, 8, func() {
		const n = 1000
		counts := make([]int32, n)
		if err := ForEach(context.Background(), n, 0, func(i int) error {
			atomic.AddInt32(&counts[i], 1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("index %d executed %d times", i, c)
			}
		}
	})
}

// TestForEachErrorNoDeadlock is the scheduler-level regression test for
// the old worker-pool deadlock: with every job failing and far more
// jobs than workers, the old channel pool wedged forever once all
// workers had exited; the claim-counter scheduler must return promptly.
func TestForEachErrorNoDeadlock(t *testing.T) {
	withBudget(t, 4, func() {
		boom := errors.New("boom")
		done := make(chan error, 1)
		go func() {
			done <- ForEach(context.Background(), 500, 4, func(i int) error {
				return fmt.Errorf("job %d: %w", i, boom)
			})
		}()
		select {
		case err := <-done:
			if !errors.Is(err, boom) {
				t.Fatalf("err = %v, want wrapped boom", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("ForEach deadlocked on the all-failing workload")
		}
	})
}

func TestForEachStopsClaimingAfterError(t *testing.T) {
	withBudget(t, 1, func() { // serial: deterministic claim order
		var ran int32
		err := ForEach(context.Background(), 100, 1, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 3 {
				return errors.New("stop here")
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
		if got := atomic.LoadInt32(&ran); got != 4 {
			t.Fatalf("ran %d jobs after serial failure at index 3, want 4", got)
		}
	})
}

func TestForEachReturnsSmallestFailingIndex(t *testing.T) {
	withBudget(t, 8, func() {
		err := ForEach(context.Background(), 64, 8, func(i int) error {
			if i%2 == 1 {
				return fmt.Errorf("odd %d", i)
			}
			return nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
		// Index 1 always runs (claimed before any failure can halt
		// claiming), so the min-index rule must surface it.
		if err.Error() != "odd 1" {
			t.Fatalf("err = %v, want the smallest failing index (odd 1)", err)
		}
	})
}

func TestForEachContextCancel(t *testing.T) {
	withBudget(t, 2, func() {
		ctx, cancel := context.WithCancel(context.Background())
		var ran int32
		err := ForEach(ctx, 1<<20, 2, func(i int) error {
			if atomic.AddInt32(&ran, 1) == 10 {
				cancel()
			}
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if atomic.LoadInt32(&ran) >= 1<<20 {
			t.Fatal("cancellation did not stop the loop early")
		}
	})
}

// TestForEachNestingRespectsBudget drives a 3-level nest and checks the
// peak number of concurrently running innermost bodies never exceeds
// the global budget. Each leaf body occupies one goroutine for its full
// duration, so leaf concurrency equals busy-goroutine concurrency —
// the quantity the budget bounds (1 root + budget-1 helpers).
func TestForEachNestingRespectsBudget(t *testing.T) {
	const budget = 4
	withBudget(t, budget, func() {
		var cur, peak int64
		err := ForEach(context.Background(), 6, 0, func(int) error {
			return ForEach(context.Background(), 6, 0, func(int) error {
				return ForEach(context.Background(), 6, 0, func(int) error {
					c := atomic.AddInt64(&cur, 1)
					for {
						p := atomic.LoadInt64(&peak)
						if c <= p || atomic.CompareAndSwapInt64(&peak, p, c) {
							break
						}
					}
					time.Sleep(100 * time.Microsecond)
					atomic.AddInt64(&cur, -1)
					return nil
				})
			})
		})
		if err != nil {
			t.Fatal(err)
		}
		if p := atomic.LoadInt64(&peak); p > budget {
			t.Fatalf("peak leaf concurrency %d exceeds global budget %d", p, budget)
		}
	})
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	for _, n := range []int{0, -5} {
		if err := ForEach(context.Background(), n, 4, func(int) error {
			called = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if called {
		t.Fatal("fn called for empty job set")
	}
}

func TestForEachHelperTokensReleased(t *testing.T) {
	withBudget(t, 8, func() {
		for round := 0; round < 50; round++ {
			if err := ForEach(context.Background(), 32, 0, func(int) error { return nil }); err != nil {
				t.Fatal(err)
			}
		}
		if h := helpers.Load(); h != 0 {
			t.Fatalf("leaked %d helper tokens", h)
		}
	})
}

func TestForEachDeterministicResultSlots(t *testing.T) {
	// Indexed writes make results order-independent: run the same
	// workload at several worker counts and compare.
	compute := func(workers int) []int {
		out := make([]int, 200)
		if err := ForEach(context.Background(), len(out), workers, func(i int) error {
			out[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	withBudget(t, 8, func() {
		ref := compute(1)
		for _, w := range []int{2, 8} {
			got := compute(w)
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("workers=%d: slot %d = %d, want %d", w, i, got[i], ref[i])
				}
			}
		}
	})
}
