// Package parallel is the shared bounded work scheduler used by every
// hot loop in the repository: fault-injection campaigns (propane.Run),
// cross-validation folds (eval.CrossValidate), the refinement grid's
// (configuration × fold) cells (core.Refine) and the per-dataset table
// loops (core.Table3Rows / core.Table4Rows).
//
// The design solves two problems the previous per-package worker pools
// had:
//
//  1. Oversubscription under nesting. Each layer used to size its own
//     pool at GOMAXPROCS, so a parallel dataset loop running parallel
//     cross-validations running parallel campaigns could spawn
//     GOMAXPROCS³ busy goroutines. Here a single process-wide budget
//     (SetBudget, default GOMAXPROCS) bounds the number of concurrently
//     working goroutines across all nesting levels: extra workers are
//     acquired from a global token pool, and a ForEach whose budget is
//     exhausted simply degrades to running on its caller's goroutine.
//
//  2. Error-path deadlock. The old channel-based pools let a worker
//     exit on error without draining its channel, wedging the dispatch
//     loop forever. ForEach has no dispatch loop to wedge: workers claim
//     indices from a shared atomic counter, the caller is always one of
//     the workers, and the first error halts claiming. Completion is
//     therefore guaranteed by construction, whatever fn does.
//
// Role in the methodology: infrastructure for Steps 1, 3 and 4 — it
// carries the campaign fan-out, the fold fan-out and the grid fan-out
// under one budget. Concurrency contract: SetBudget/ForEach are safe to
// call from any goroutine at any nesting depth; fn must tolerate
// running on the caller's goroutine; result determinism is fn's job
// (write to indexed slots, derive RNGs from the index).
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// budget holds the requested global worker budget; <= 0 selects
// GOMAXPROCS at the point of use.
var budget atomic.Int64

// helpers counts live helper goroutines across every ForEach in the
// process. The calling goroutine of each ForEach is not counted: the
// root caller contributes the +1 that makes the total concurrency equal
// to Budget().
var helpers atomic.Int64

// SetBudget sets the process-wide worker budget shared by every ForEach
// call. n <= 0 restores the default (GOMAXPROCS). The budget is the
// total number of goroutines doing work at any instant, regardless of
// how deeply parallel sections nest.
func SetBudget(n int) { budget.Store(int64(n)) }

// Budget returns the effective global worker budget.
func Budget() int {
	if b := int(budget.Load()); b > 0 {
		return b
	}
	return runtime.GOMAXPROCS(0)
}

// Workers resolves a per-call worker request against the global budget
// and the number of jobs: requested <= 0 means "use the budget", and
// the result is clamped to jobs (when jobs > 0) and floored at 1. This
// is the single worker-count resolution rule; call sites must not
// reimplement it.
func Workers(requested, jobs int) int {
	w := requested
	if w <= 0 {
		w = Budget()
	}
	if jobs > 0 && w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// tryAcquire reserves one helper slot from the global pool, failing
// without blocking when the budget is spent. Helpers never block on the
// pool: blocked helpers would be the nesting deadlock this package
// exists to remove.
func tryAcquire() bool {
	limit := int64(Budget() - 1)
	for {
		cur := helpers.Load()
		if cur >= limit {
			return false
		}
		if helpers.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func release() { helpers.Add(-1) }

// ForEach runs fn(i) for every i in [0, n) using at most
// Workers(workers, n) concurrent goroutines, further bounded by the
// global budget. The calling goroutine always participates, so ForEach
// makes progress even when the budget is exhausted (it then runs fn
// serially), and nested ForEach calls cannot deadlock or oversubscribe.
//
// On the first fn error, no new indices are claimed; in-flight calls
// finish and the error anchored at the smallest failing index is
// returned. Cancelling ctx likewise stops claiming and returns
// ctx.Err(). fn must be safe for concurrent invocation; writes it makes
// for distinct indices must not alias.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers, n)

	var (
		next    atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		failIdx int
		failErr error
	)
	fail := func(i int, err error) {
		mu.Lock()
		if failErr == nil || i < failIdx {
			failIdx, failErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	run := func() {
		for !stop.Load() && ctx.Err() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			if err := fn(i); err != nil {
				fail(i, err)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for extra := w - 1; extra > 0 && tryAcquire(); extra-- {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer release()
			run()
		}()
	}
	run()
	wg.Wait()

	mu.Lock()
	err := failErr
	mu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}
