package bitflip

import "fmt"

// Model identifies a fault model — the shape of the corruption a
// campaign applies at each (variable, bit, time) cell. The zero value
// is Transient, the paper's single bit-flip, so specs that predate the
// fault-model axis keep their meaning (and their plan hashes)
// unchanged.
type Model int

const (
	// Transient flips one bit once at the injection activation — the
	// paper's fault model and the default everywhere.
	Transient Model = iota
	// Burst flips Width adjacent bits (bit .. bit+Width-1) once at the
	// injection activation.
	Burst
	// StuckAt forces the bit to the complement of its value at the
	// injection activation and re-asserts that stuck value at every
	// subsequent activation of the variable for the rest of the run.
	StuckAt
	// Intermittent flips the bit at the injection activation and
	// re-asserts the flipped value at the next Persist-1 activations
	// (Persist assertions in total), then releases the variable.
	Intermittent
)

var modelNames = map[Model]string{
	Transient:    "transient",
	Burst:        "burst",
	StuckAt:      "stuckat",
	Intermittent: "intermittent",
}

func (m Model) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// ParseModel resolves a fault-model name as spelt on the command line
// and in PROPANE log headers.
func ParseModel(s string) (Model, error) {
	for m, name := range modelNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("bitflip: unknown fault model %q (want transient, burst, stuckat or intermittent)", s)
}

// Set implements flag.Value so a *Model can back a -fault-model flag.
func (m *Model) Set(s string) error {
	parsed, err := ParseModel(s)
	if err != nil {
		return err
	}
	*m = parsed
	return nil
}

// Fault is one fault-model configuration: the model plus its knobs.
// The zero value is the default transient single-bit flip.
type Fault struct {
	// Model selects the corruption shape.
	Model Model
	// Width is the number of adjacent bits a Burst flips. Zero means 1;
	// values above 1 are only valid for Burst.
	Width int
	// Persist is the total number of consecutive activations an
	// Intermittent fault is asserted for. Zero means 1; values above 1
	// are only valid for Intermittent.
	Persist int
}

// Normalized fills the defaulted knobs (Width and Persist zero → 1) so
// equal configurations compare and hash equal however they were spelt.
func (f Fault) Normalized() Fault {
	if f.Width == 0 {
		f.Width = 1
	}
	if f.Persist == 0 {
		f.Persist = 1
	}
	return f
}

// IsTransient reports whether f is the default single transient flip —
// the configuration that must keep hashing and journalling exactly as
// it did before the fault-model axis existed.
func (f Fault) IsTransient() bool {
	n := f.Normalized()
	return n.Model == Transient && n.Width == 1 && n.Persist == 1
}

// Persistent reports whether the model re-asserts its corruption at
// activations after the injection one. Persistent faults are unsound
// on the fork fast path: the probe carries hidden future re-assertions
// that no target state snapshot can capture, so equal states no longer
// imply equal remaining executions.
func (f Fault) Persistent() bool {
	return f.Model == StuckAt || f.Model == Intermittent
}

// Validate rejects configurations that are malformed regardless of the
// variable they would be applied to. Per-variable range checks (a
// burst wider than the variable, a bit outside the kind) are apply
// time errors, surfaced per record — see Mask.
func (f Fault) Validate() error {
	n := f.Normalized()
	if _, ok := modelNames[n.Model]; !ok {
		return fmt.Errorf("bitflip: unknown fault model %d", int(n.Model))
	}
	if n.Width < 1 {
		return fmt.Errorf("bitflip: burst width %d must be >= 1", n.Width)
	}
	if n.Width > 1 && n.Model != Burst {
		return fmt.Errorf("bitflip: width %d is only valid for the burst model, not %s", n.Width, n.Model)
	}
	if n.Width > 64 {
		return fmt.Errorf("bitflip: burst width %d exceeds 64 bits", n.Width)
	}
	if n.Persist < 1 {
		return fmt.Errorf("bitflip: persist count %d must be >= 1", n.Persist)
	}
	if n.Persist > 1 && n.Model != Intermittent {
		return fmt.Errorf("bitflip: persist %d is only valid for the intermittent model, not %s", n.Persist, n.Model)
	}
	return nil
}

// String renders the normalized configuration for logs and -stats
// output: "transient", "burst(width=3)", "stuckat",
// "intermittent(persist=4)".
func (f Fault) String() string {
	n := f.Normalized()
	switch {
	case n.Model == Burst && n.Width > 1:
		return fmt.Sprintf("burst(width=%d)", n.Width)
	case n.Model == Intermittent && n.Persist > 1:
		return fmt.Sprintf("intermittent(persist=%d)", n.Persist)
	default:
		return n.Model.String()
	}
}

// Mask returns the XOR mask of the fault's first-activation corruption
// for a variable of the given kind: bits bit .. bit+Width-1. All four
// models corrupt identically at the injection activation — forcing a
// bit to the complement of its current value is the same XOR — so one
// mask serves them all; the models differ only in what happens at
// later activations. The error reports unsupported model × kind
// combinations (burst wider than the variable, bit outside the kind),
// which callers surface as per-record flip errors rather than dropping
// the cell silently.
func (f Fault) Mask(kind Kind, bit int) (uint64, error) {
	n := f.Normalized()
	bits := kind.Bits()
	if bit < 0 || bit >= bits {
		return 0, &BadBitError{Kind: kind, Bit: bit}
	}
	if bit+n.Width > bits {
		return 0, fmt.Errorf("bitflip: %s at bit %d spans bits %d..%d, outside %s's %d bits",
			f, bit, bit, bit+n.Width-1, kind, bits)
	}
	var mask uint64
	if n.Width >= 64 {
		mask = ^uint64(0)
	} else {
		mask = (uint64(1)<<uint(n.Width) - 1)
	}
	return mask << uint(bit), nil
}
