// Package bitflip implements the transient data-value fault model assumed
// by the paper (§III-B): a single bit flip in the in-memory representation
// of a program variable, modelling transient hardware faults that corrupt
// values held in memory.
//
// Values are flipped at the representation level: float64 faults toggle a
// bit of the IEEE-754 encoding, integer faults toggle a bit of the two's
// complement encoding, and bool faults invert the value. This matches the
// error space explored by PROPANE-style single-bit-flip campaigns: one
// injected run per (variable, bit position, injection time).
//
// Role in the methodology: the fault model of Step 1 (fault injection
// analysis) — every injected campaign run applies exactly one of these
// flips. Concurrency: the package is stateless pure functions over
// values; everything here is safe for unrestricted concurrent use.
package bitflip

import (
	"fmt"
	"math"
)

// Kind identifies the machine representation of an instrumented variable.
type Kind int

// Supported variable representations.
const (
	Float64 Kind = iota + 1
	Float32
	Int64
	Int32
	Uint64
	Bool
)

// String returns the lower-case Go-like name of the kind.
func (k Kind) String() string {
	switch k {
	case Float64:
		return "float64"
	case Float32:
		return "float32"
	case Int64:
		return "int64"
	case Int32:
		return "int32"
	case Uint64:
		return "uint64"
	case Bool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Bits returns the number of distinct single-bit faults for the kind,
// i.e. the width of its machine representation (1 for bool).
func (k Kind) Bits() int {
	switch k {
	case Float64, Int64, Uint64:
		return 64
	case Float32, Int32:
		return 32
	case Bool:
		return 1
	default:
		return 0
	}
}

// BadBitError reports a bit index outside the representation width.
type BadBitError struct {
	Kind Kind
	Bit  int
}

func (e *BadBitError) Error() string {
	return fmt.Sprintf("bitflip: bit %d out of range for %s (width %d)", e.Bit, e.Kind, e.Kind.Bits())
}

// Float64 flips bit (0 = least significant of the IEEE-754 encoding) of x.
func Float64Bit(x float64, bit int) (float64, error) {
	if bit < 0 || bit >= 64 {
		return x, &BadBitError{Kind: Float64, Bit: bit}
	}
	return math.Float64frombits(math.Float64bits(x) ^ (1 << uint(bit))), nil
}

// Float32Bit flips bit of the IEEE-754 single-precision encoding of x.
func Float32Bit(x float32, bit int) (float32, error) {
	if bit < 0 || bit >= 32 {
		return x, &BadBitError{Kind: Float32, Bit: bit}
	}
	return math.Float32frombits(math.Float32bits(x) ^ (1 << uint(bit))), nil
}

// Int64Bit flips bit of the two's-complement encoding of x.
func Int64Bit(x int64, bit int) (int64, error) {
	if bit < 0 || bit >= 64 {
		return x, &BadBitError{Kind: Int64, Bit: bit}
	}
	return x ^ (1 << uint(bit)), nil
}

// Int32Bit flips bit of the two's-complement encoding of x.
func Int32Bit(x int32, bit int) (int32, error) {
	if bit < 0 || bit >= 32 {
		return x, &BadBitError{Kind: Int32, Bit: bit}
	}
	return x ^ (1 << uint(bit)), nil
}

// Uint64Bit flips bit of x.
func Uint64Bit(x uint64, bit int) (uint64, error) {
	if bit < 0 || bit >= 64 {
		return x, &BadBitError{Kind: Uint64, Bit: bit}
	}
	return x ^ (1 << uint(bit)), nil
}

// BoolBit inverts x. Only bit 0 exists for booleans.
func BoolBit(x bool, bit int) (bool, error) {
	if bit != 0 {
		return x, &BadBitError{Kind: Bool, Bit: bit}
	}
	return !x, nil
}
