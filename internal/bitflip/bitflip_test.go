package bitflip

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestKindBits(t *testing.T) {
	for _, tt := range []struct {
		kind Kind
		want int
	}{
		{Float64, 64}, {Float32, 32}, {Int64, 64}, {Int32, 32}, {Uint64, 64}, {Bool, 1},
		{Kind(0), 0},
	} {
		if got := tt.kind.Bits(); got != tt.want {
			t.Errorf("%v.Bits() = %d, want %d", tt.kind, got, tt.want)
		}
	}
}

func TestKindString(t *testing.T) {
	for _, tt := range []struct {
		kind Kind
		want string
	}{
		{Float64, "float64"}, {Float32, "float32"}, {Int64, "int64"},
		{Int32, "int32"}, {Uint64, "uint64"}, {Bool, "bool"}, {Kind(99), "Kind(99)"},
	} {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestFloat64BitKnown(t *testing.T) {
	// Sign bit flip negates.
	got, err := Float64Bit(1.5, 63)
	if err != nil || got != -1.5 {
		t.Errorf("sign flip = %v, %v", got, err)
	}
	// Lowest exponent bit of 1.0 (exp 1023 -> 1022) gives 0.5.
	got, err = Float64Bit(1.0, 52)
	if err != nil || got != 0.5 {
		t.Errorf("exponent flip = %v, %v", got, err)
	}
	// Lowest mantissa bit of 1.0 yields the next representable number.
	got, err = Float64Bit(1.0, 0)
	if err != nil || got != math.Nextafter(1.0, 2.0) {
		t.Errorf("mantissa flip = %v, %v", got, err)
	}
}

func TestFlipSelfInverse(t *testing.T) {
	// Flipping the same bit twice restores the value — the defining
	// property of a transient single-bit fault.
	f := func(x float64, bit uint8) bool {
		b := int(bit % 64)
		y, err := Float64Bit(x, b)
		if err != nil {
			return false
		}
		z, err := Float64Bit(y, b)
		if err != nil {
			return false
		}
		return math.Float64bits(z) == math.Float64bits(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	g := func(x int64, bit uint8) bool {
		b := int(bit % 64)
		y, _ := Int64Bit(x, b)
		z, _ := Int64Bit(y, b)
		return z == x
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestFlipChangesValue(t *testing.T) {
	f := func(x uint64, bit uint8) bool {
		b := int(bit % 64)
		y, _ := Uint64Bit(x, b)
		return y != x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInt64BitKnown(t *testing.T) {
	got, err := Int64Bit(0, 3)
	if err != nil || got != 8 {
		t.Errorf("Int64Bit(0,3) = %v, %v", got, err)
	}
	got, err = Int64Bit(8, 3)
	if err != nil || got != 0 {
		t.Errorf("Int64Bit(8,3) = %v, %v", got, err)
	}
	got, err = Int64Bit(0, 63)
	if err != nil || got != math.MinInt64 {
		t.Errorf("Int64Bit(0,63) = %v, %v", got, err)
	}
}

func TestInt32Float32Bool(t *testing.T) {
	i32, err := Int32Bit(1, 1)
	if err != nil || i32 != 3 {
		t.Errorf("Int32Bit = %v, %v", i32, err)
	}
	f32, err := Float32Bit(1.0, 31)
	if err != nil || f32 != -1.0 {
		t.Errorf("Float32Bit sign = %v, %v", f32, err)
	}
	b, err := BoolBit(false, 0)
	if err != nil || b != true {
		t.Errorf("BoolBit = %v, %v", b, err)
	}
	b, err = BoolBit(true, 0)
	if err != nil || b != false {
		t.Errorf("BoolBit = %v, %v", b, err)
	}
}

func TestBadBitErrors(t *testing.T) {
	var badBit *BadBitError
	if _, err := Float64Bit(1, 64); !errors.As(err, &badBit) {
		t.Errorf("Float64Bit(1, 64) error = %v", err)
	}
	if _, err := Float64Bit(1, -1); err == nil {
		t.Error("negative bit should error")
	}
	if _, err := Float32Bit(1, 32); err == nil {
		t.Error("Float32Bit(32) should error")
	}
	if _, err := Int64Bit(1, 64); err == nil {
		t.Error("Int64Bit(64) should error")
	}
	if _, err := Int32Bit(1, 32); err == nil {
		t.Error("Int32Bit(32) should error")
	}
	if _, err := Uint64Bit(1, 64); err == nil {
		t.Error("Uint64Bit(64) should error")
	}
	if _, err := BoolBit(true, 1); err == nil {
		t.Error("BoolBit(1) should error")
	}
	if _, err := Float64Bit(1, 64); err == nil || err.Error() == "" {
		t.Error("BadBitError should render a message")
	}
}
