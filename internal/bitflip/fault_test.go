package bitflip

import (
	"errors"
	"flag"
	"strings"
	"testing"
)

func TestParseModelRoundTrip(t *testing.T) {
	for _, m := range []Model{Transient, Burst, StuckAt, Intermittent} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", m.String(), got, err, m)
		}
	}
	if _, err := ParseModel("cosmic-ray"); err == nil {
		t.Error("ParseModel accepted an unknown model")
	}
	if got := Model(99).String(); got != "Model(99)" {
		t.Errorf("unknown model String() = %q", got)
	}
}

func TestModelIsFlagValue(t *testing.T) {
	var m Model
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(&strings.Builder{})
	fs.Var(&m, "fault-model", "")
	if err := fs.Parse([]string{"-fault-model", "stuckat"}); err != nil || m != StuckAt {
		t.Fatalf("flag parse: model=%v err=%v", m, err)
	}
	if err := fs.Parse([]string{"-fault-model", "bogus"}); err == nil {
		t.Error("flag parse accepted an unknown model")
	}
}

func TestFaultValidate(t *testing.T) {
	good := []Fault{
		{},
		{Model: Transient},
		{Model: Burst, Width: 8},
		{Model: Burst}, // width defaults to 1
		{Model: StuckAt},
		{Model: Intermittent, Persist: 5},
	}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", f, err)
		}
	}
	bad := []Fault{
		{Model: Model(42)},
		{Width: -1},
		{Model: Transient, Width: 2},    // width needs burst
		{Model: StuckAt, Width: 3},      // width needs burst
		{Model: Burst, Width: 65},       // wider than any kind
		{Persist: -1},
		{Model: Burst, Persist: 2},      // persist needs intermittent
		{Model: StuckAt, Persist: 2},    // persist needs intermittent
		{Model: Transient, Persist: 3},  // persist needs intermittent
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", f)
		}
	}
}

func TestFaultNormalizedAndString(t *testing.T) {
	n := Fault{}.Normalized()
	if n.Width != 1 || n.Persist != 1 {
		t.Fatalf("Normalized zero value: %+v, want width/persist 1", n)
	}
	if !(Fault{}).IsTransient() || !(Fault{Model: Transient, Width: 1, Persist: 1}).IsTransient() {
		t.Error("default configurations must be transient")
	}
	for _, f := range []Fault{{Model: Burst, Width: 2}, {Model: StuckAt}, {Model: Intermittent, Persist: 2}} {
		if f.IsTransient() {
			t.Errorf("%+v claims to be transient", f)
		}
	}
	if (Fault{Model: Burst}).Persistent() || !(Fault{Model: StuckAt}).Persistent() || !(Fault{Model: Intermittent}).Persistent() {
		t.Error("Persistent() misclassifies models")
	}
	cases := map[string]Fault{
		"transient":              {},
		"burst(width=3)":         {Model: Burst, Width: 3},
		"burst":                  {Model: Burst},
		"stuckat":                {Model: StuckAt},
		"intermittent(persist=4)": {Model: Intermittent, Persist: 4},
		"intermittent":           {Model: Intermittent},
	}
	for want, f := range cases {
		if got := f.String(); got != want {
			t.Errorf("String(%+v) = %q, want %q", f, got, want)
		}
	}
}

func TestFaultMask(t *testing.T) {
	cases := []struct {
		f    Fault
		kind Kind
		bit  int
		want uint64
	}{
		{Fault{}, Float64, 0, 1},
		{Fault{}, Float64, 63, 1 << 63},
		{Fault{Model: Burst, Width: 3}, Int64, 4, 0b111 << 4},
		{Fault{Model: Burst, Width: 64}, Uint64, 0, ^uint64(0)},
		{Fault{Model: StuckAt}, Bool, 0, 1},
		{Fault{Model: Intermittent, Persist: 9}, Int32, 31, 1 << 31},
	}
	for _, c := range cases {
		got, err := c.f.Mask(c.kind, c.bit)
		if err != nil || got != c.want {
			t.Errorf("Mask(%+v, %v, %d) = %#x, %v; want %#x", c.f, c.kind, c.bit, got, err, c.want)
		}
	}

	// Out-of-range bit positions are BadBitError, like FlipBit.
	var bbe *BadBitError
	if _, err := (Fault{}).Mask(Bool, 1); !errors.As(err, &bbe) {
		t.Errorf("Mask(bool, bit 1) = %v, want BadBitError", err)
	}
	if _, err := (Fault{Model: StuckAt}).Mask(Float32, -1); !errors.As(err, &bbe) {
		t.Errorf("Mask(float32, bit -1) = %v, want BadBitError", err)
	}
	// A burst spilling past the variable's width is an apply-time error,
	// not a silent truncation.
	if _, err := (Fault{Model: Burst, Width: 2}).Mask(Bool, 0); err == nil {
		t.Error("burst wider than bool masked without error")
	}
	if _, err := (Fault{Model: Burst, Width: 8}).Mask(Int32, 30); err == nil {
		t.Error("burst past the top of int32 masked without error")
	}
}
