package tree

import (
	"errors"
	"strings"
	"testing"

	"edem/internal/dataset"
	"edem/internal/stats"
)

// andDataset: class = (x>0.5) AND (y>0.5); requires a depth-2 tree but,
// unlike XOR, leaves marginal gain for C4.5's greedy root split.
func andDataset(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("and", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
	}, []string{"no", "yes"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x, y := rng.Float64(), rng.Float64()
		class := 0
		if x > 0.5 && y > 0.5 {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, y}, Class: class, Weight: 1})
	}
	return d
}

// thresholdDataset: class = x > cut, with a noisy distractor attribute.
func thresholdDataset(n int, cut float64, seed uint64) *dataset.Dataset {
	d := dataset.New("thr", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("noise"),
	}, []string{"lo", "hi"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := rng.Float64()
		class := 0
		if x > cut {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, rng.Float64()}, Class: class, Weight: 1})
	}
	return d
}

// weatherDataset is the classic (nominal) play-tennis set from Quinlan.
func weatherDataset() *dataset.Dataset {
	d := dataset.New("weather", []dataset.Attribute{
		dataset.NominalAttr("outlook", "sunny", "overcast", "rainy"),
		dataset.NominalAttr("temperature", "hot", "mild", "cool"),
		dataset.NominalAttr("humidity", "high", "normal"),
		dataset.NominalAttr("windy", "false", "true"),
	}, []string{"no", "yes"})
	rows := []struct {
		o, te, h, w float64
		class       int
	}{
		{0, 0, 0, 0, 0}, {0, 0, 0, 1, 0}, {1, 0, 0, 0, 1}, {2, 1, 0, 0, 1},
		{2, 2, 1, 0, 1}, {2, 2, 1, 1, 0}, {1, 2, 1, 1, 1}, {0, 1, 0, 0, 0},
		{0, 2, 1, 0, 1}, {2, 1, 1, 0, 1}, {0, 1, 1, 1, 1}, {1, 1, 0, 1, 1},
		{1, 0, 1, 0, 1}, {2, 1, 0, 1, 0},
	}
	for _, r := range rows {
		d.MustAdd(dataset.Instance{Values: []float64{r.o, r.te, r.h, r.w}, Class: r.class, Weight: 1})
	}
	return d
}

func resubAccuracy(t *testing.T, model *Tree, d *dataset.Dataset) float64 {
	t.Helper()
	correct := 0
	for i := range d.Instances {
		if model.Classify(d.Instances[i].Values) == d.Instances[i].Class {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

func TestFitThreshold(t *testing.T) {
	d := thresholdDataset(400, 0.37, 1)
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := resubAccuracy(t, model, d); acc < 0.995 {
		t.Errorf("resubstitution accuracy %.3f on separable data", acc)
	}
	// The root should split on x near the cut, not on noise.
	if model.Root.IsLeaf() {
		t.Fatal("tree degenerated to a leaf")
	}
	if model.Root.Attr != 0 {
		t.Errorf("root splits on attr %d, want x(0)", model.Root.Attr)
	}
	if model.Root.Threshold < 0.3 || model.Root.Threshold > 0.45 {
		t.Errorf("root threshold %.3f not near 0.37", model.Root.Threshold)
	}
}

func TestFitInteraction(t *testing.T) {
	d := andDataset(800, 2)
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := resubAccuracy(t, model, d); acc < 0.97 {
		t.Errorf("AND accuracy %.3f", acc)
	}
	if model.Depth() < 2 {
		t.Errorf("AND needs depth >= 2, got %d", model.Depth())
	}
}

func TestFitXORIsMyopic(t *testing.T) {
	// Balanced XOR has no marginal gain at the root: C4.5's greedy
	// search degenerates to the majority leaf — the documented myopia
	// of single-attribute split selection.
	d := dataset.New("xor", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
	}, []string{"no", "yes"})
	rng := stats.NewRNG(2)
	for i := 0; i < 800; i++ {
		x, y := rng.Float64(), rng.Float64()
		class := 0
		if (x > 0.5) != (y > 0.5) {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, y}, Class: class, Weight: 1})
	}
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Root.IsLeaf() {
		t.Logf("note: sampling noise gave XOR a root split (size %d)", model.Size())
	}
}

func TestFitWeather(t *testing.T) {
	d := weatherDataset()
	model, err := Learner{Config: Config{NoPrune: true}}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	// C4.5 famously splits the weather data on outlook first.
	if model.Root.IsLeaf() || model.Root.Attr != 0 {
		t.Errorf("root attr = %d, want outlook(0)", model.Root.Attr)
	}
	// The overcast branch is pure "yes".
	overcast := model.Root.Children[1]
	if !overcast.IsLeaf() || overcast.Class != 1 {
		t.Errorf("overcast branch should be a pure yes leaf")
	}
	if acc := resubAccuracy(t, model, d); acc != 1 {
		t.Errorf("unpruned weather accuracy = %.3f, want 1", acc)
	}
}

func TestPureDatasetIsLeaf(t *testing.T) {
	d := dataset.New("pure", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	for i := 0; i < 10; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{float64(i)}, Class: 1, Weight: 1})
	}
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if !model.Root.IsLeaf() || model.Root.Class != 1 || model.Size() != 1 {
		t.Fatalf("pure data should yield a single leaf, got size %d", model.Size())
	}
}

func TestEmptyTraining(t *testing.T) {
	d := dataset.New("e", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	if _, err := (Learner{}).FitTree(d); !errors.Is(err, ErrEmptyTraining) {
		t.Fatalf("err = %v", err)
	}
}

func TestMaxDepth(t *testing.T) {
	d := andDataset(500, 3)
	model, err := Learner{Config: Config{MaxDepth: 1, NoPrune: true}}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if model.Depth() > 1 {
		t.Errorf("depth = %d, want <= 1", model.Depth())
	}
}

func TestMinLeaf(t *testing.T) {
	d := thresholdDataset(100, 0.5, 5)
	big, err := Learner{Config: Config{MinLeaf: 40, NoPrune: true}}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	small, err := Learner{Config: Config{MinLeaf: 2, NoPrune: true}}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if big.Size() > small.Size() {
		t.Errorf("larger MinLeaf should not grow a bigger tree (%d vs %d)", big.Size(), small.Size())
	}
}

func TestPruningShrinksNoisyTrees(t *testing.T) {
	// Noisy labels: pruning should remove spurious structure.
	d := thresholdDataset(500, 0.5, 7)
	rng := stats.NewRNG(8)
	for i := range d.Instances {
		if rng.Float64() < 0.15 {
			d.Instances[i].Class = 1 - d.Instances[i].Class
		}
	}
	unpruned, err := Learner{Config: Config{NoPrune: true}}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.Size() >= unpruned.Size() {
		t.Errorf("pruned %d >= unpruned %d", pruned.Size(), unpruned.Size())
	}
}

func TestSizeLeavesDepthConsistency(t *testing.T) {
	d := andDataset(300, 9)
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	// A binary-split tree with L leaves has L-1 internal nodes.
	if model.Size() != 2*model.Leaves()-1 {
		t.Errorf("size %d, leaves %d: inconsistent for binary tree", model.Size(), model.Leaves())
	}
}

func TestDistributionSumsToOne(t *testing.T) {
	d := andDataset(300, 10)
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		dist := model.Distribution(d.Instances[i].Values)
		sum := 0.0
		for _, p := range dist {
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("distribution sums to %v", sum)
		}
	}
}

func TestClassifyMissingValue(t *testing.T) {
	d := thresholdDataset(300, 0.5, 11)
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	// Missing split value: classification must still return a valid
	// class via fractional descent.
	got := model.Classify([]float64{dataset.Missing, 0.5})
	if got != 0 && got != 1 {
		t.Fatalf("class = %d", got)
	}
}

func TestFitWithMissingValues(t *testing.T) {
	// The general (weighted) path handles missing values end to end.
	d := thresholdDataset(400, 0.5, 12)
	rng := stats.NewRNG(13)
	for i := range d.Instances {
		if rng.Float64() < 0.1 {
			d.Instances[i].Values[1] = dataset.Missing
		}
	}
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := resubAccuracy(t, model, d); acc < 0.98 {
		t.Errorf("accuracy with missing distractor = %.3f", acc)
	}
	// Missing values on the split attribute itself.
	for i := 0; i < 40; i++ {
		d.Instances[i].Values[0] = dataset.Missing
	}
	model, err = Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := resubAccuracy(t, model, d); acc < 0.85 {
		t.Errorf("accuracy with missing split attr = %.3f", acc)
	}
}

func TestStringRendering(t *testing.T) {
	d := weatherDataset()
	model, err := Learner{Config: Config{NoPrune: true}}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	s := model.String()
	for _, want := range []string{"outlook = sunny", "outlook = overcast", ": yes", ": no"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering missing %q:\n%s", want, s)
		}
	}
	// Numeric rendering.
	dn := thresholdDataset(100, 0.5, 1)
	mn, _ := Learner{}.FitTree(dn)
	sn := mn.String()
	if !strings.Contains(sn, "x <=") || !strings.Contains(sn, "x >") {
		t.Errorf("numeric rendering:\n%s", sn)
	}
}

func TestWeightedInstances(t *testing.T) {
	// A heavily weighted minority flips the majority class.
	d := dataset.New("w", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	for i := 0; i < 10; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{0.5}, Class: 0, Weight: 1})
	}
	d.MustAdd(dataset.Instance{Values: []float64{0.5}, Class: 1, Weight: 100})
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if model.Classify([]float64{0.5}) != 1 {
		t.Fatal("instance weights must drive the majority")
	}
}

func TestLearnerName(t *testing.T) {
	if (Learner{}).Name() != "C4.5" {
		t.Fatal("name")
	}
}

func TestGainRatioVsPlainGain(t *testing.T) {
	// An id-like nominal attribute (many values, each nearly unique)
	// seduces plain gain; gain ratio resists it.
	d := dataset.New("id", []dataset.Attribute{
		dataset.NominalAttr("id", "a", "b", "c", "d", "e", "f", "g", "h"),
		dataset.NumericAttr("x"),
	}, []string{"no", "yes"})
	rng := stats.NewRNG(21)
	for i := 0; i < 240; i++ {
		x := rng.Float64()
		class := 0
		if x > 0.5 {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{float64(i % 8), x}, Class: class, Weight: 1})
	}
	gr, err := Learner{Config: Config{NoPrune: true}}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if gr.Root.Attr != 1 {
		t.Errorf("gain ratio root = attr %d, want x(1)", gr.Root.Attr)
	}
}

func TestImportanceSumsToOne(t *testing.T) {
	d := andDataset(400, 12)
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	scores := model.Importance()
	if len(scores) != len(d.Attrs) {
		t.Fatalf("scores = %d", len(scores))
	}
	total := 0.0
	for _, s := range scores {
		if s < 0 {
			t.Fatalf("negative importance %v", s)
		}
		total += s
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("importance sums to %v", total)
	}
}

func TestImportancePicksSignal(t *testing.T) {
	// Threshold concept on x with a pure-noise distractor: x must carry
	// (almost) all the importance.
	d := thresholdDataset(500, 0.5, 13)
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	scores := model.Importance()
	if scores[0] < 0.8 {
		t.Errorf("signal attribute importance = %v", scores[0])
	}
	rendered := model.FormatImportance()
	if !strings.Contains(rendered, "x") {
		t.Errorf("rendering: %q", rendered)
	}
}

func TestImportanceLeafOnlyTree(t *testing.T) {
	d := dataset.New("pure", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	for i := 0; i < 5; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{1}, Class: 0, Weight: 1})
	}
	model, err := Learner{}.FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range model.Importance() {
		if s != 0 {
			t.Fatal("leaf-only tree should have zero importances")
		}
	}
}
