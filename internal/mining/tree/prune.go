package tree

import (
	"math"

	"edem/internal/stats"
)

// prune applies C4.5's pessimistic error-based pruning by subtree
// replacement: bottom-up, a subtree is collapsed into a leaf whenever
// the leaf's estimated (upper-confidence-bound) error count does not
// exceed the sum of its branches' estimates.
func prune(n *Node, cf float64) float64 {
	if n.IsLeaf() {
		return leafErrors(n, cf)
	}
	subtreeErr := 0.0
	for _, ch := range n.Children {
		subtreeErr += prune(ch, cf)
	}
	asLeafErr := leafErrors(n, cf)
	if asLeafErr <= subtreeErr+1e-9 {
		n.Attr = -1
		n.Children = nil
		n.Class = argmax(n.Dist)
		return asLeafErr
	}
	return subtreeErr
}

// leafErrors estimates the error count of the node treated as a leaf:
// observed errors plus the pessimistic correction.
func leafErrors(n *Node, cf float64) float64 {
	total := sum(n.Dist)
	if total <= 0 {
		return 0
	}
	errs := total - n.Dist[argmax(n.Dist)]
	return errs + addErrs(total, errs, cf)
}

// addErrs computes the C4.5 pessimistic correction: the number of
// additional errors implied by the upper limit of a confidence interval
// (confidence cf) around the observed error rate e/N. The special cases
// for e < 1 and e close to N follow Quinlan's implementation.
func addErrs(n, e, cf float64) float64 {
	if cf >= 0.5 {
		// No statistical correction requested.
		return 0
	}
	if e < 1 {
		// Base case: upper bound when no errors were observed.
		base := n * (1 - math.Pow(cf, 1/n))
		if e == 0 {
			return base
		}
		return base + e*(addErrs(n, 1, cf)-base)
	}
	if e+0.5 >= n {
		return math.Max(n-e, 0)
	}
	z := stats.NormalInverse(1 - cf)
	f := (e + 0.5) / n
	r := (f + z*z/(2*n) + z*math.Sqrt(f/n-f*f/n+z*z/(4*n*n))) / (1 + z*z/n)
	return r*n - e
}
