package tree

import (
	"reflect"
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining/sampling"
	"edem/internal/stats"
)

// nodesEqual compares two trees structurally, distributions included —
// byte-identity, not just equal predictions.
func nodesEqual(a, b *Node) bool {
	if a.Attr != b.Attr || a.Threshold != b.Threshold || a.Class != b.Class {
		return false
	}
	if !reflect.DeepEqual(a.Dist, b.Dist) {
		return false
	}
	if len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !nodesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// FitTreeView on the identity view must reproduce FitTree on the same
// partition bit for bit: same columns, same instance order, same sort
// comparator.
func TestFitTreeViewMatchesFitTree(t *testing.T) {
	d := mixedDataset(400, 21)
	want, err := (Learner{}).FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.NewStore(d, nil)
	got, err := (Learner{}).FitTreeView(st.IdentityView())
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(want.Root, got.Root) {
		t.Fatal("view-based tree diverges from instance-based tree")
	}
}

// Every sampling view shape (select, repeat, extend) must induce the
// identical tree to FitTree on the materialised dataset produced by the
// corresponding dataset transform.
func TestFitTreeViewMatchesSampledDatasets(t *testing.T) {
	d := mixedDataset(300, 22)
	// mixedDataset classes come from its own rule; relabel a slice of
	// rows to get a clear minority for the sampling transforms.
	for i := range d.Instances {
		d.Instances[i].Class = 0
	}
	for i := 0; i < 40; i++ {
		d.Instances[i*7].Class = 1
	}
	st := dataset.NewStore(d, nil)

	cases := []struct {
		name string
		ds   func(rng *stats.RNG) (*dataset.Dataset, error)
		view func(rng *stats.RNG) (*dataset.View, error)
	}{
		{
			name: "undersample",
			ds:   func(rng *stats.RNG) (*dataset.Dataset, error) { return sampling.Undersample(d, 0, 35, rng) },
			view: func(rng *stats.RNG) (*dataset.View, error) { return sampling.UndersampleView(st, 0, 35, rng) },
		},
		{
			name: "oversample",
			ds:   func(rng *stats.RNG) (*dataset.Dataset, error) { return sampling.Oversample(d, 1, 400, rng) },
			view: func(rng *stats.RNG) (*dataset.View, error) { return sampling.OversampleView(st, 1, 400, rng) },
		},
		{
			name: "smote",
			ds:   func(rng *stats.RNG) (*dataset.Dataset, error) { return sampling.SMOTE(d, 1, 300, 5, rng) },
			view: func(rng *stats.RNG) (*dataset.View, error) { return sampling.SMOTEView(st, 1, 300, 5, rng) },
		},
	}
	for _, tc := range cases {
		td, err := tc.ds(stats.NewRNG(31))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		want, err := (Learner{}).FitTree(td)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		v, err := tc.view(stats.NewRNG(31))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		got, err := (Learner{}).FitTreeView(v)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !nodesEqual(want.Root, got.Root) {
			t.Fatalf("%s: view-based tree diverges from instance-based tree", tc.name)
		}
	}
}

// A view over a store with missing values must fall back to the general
// fractional-weight builder and still match the instance path.
func TestFitTreeViewMissingFallback(t *testing.T) {
	d := mixedDataset(200, 23)
	for i := 0; i < 200; i += 9 {
		d.Instances[i].Values[0] = dataset.Missing
	}
	d.InvalidateMissing()
	want, err := (Learner{}).FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	st := dataset.NewStore(d, nil)
	v := st.IdentityView()
	if !v.HasMissing() {
		t.Fatal("view must report missing values")
	}
	got, err := (Learner{}).FitTreeView(v)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(want.Root, got.Root) {
		t.Fatal("fallback tree diverges from instance-based tree")
	}
}

// FitTree must route missing-valued data through the general builder
// even when the cached answer was computed before the data existed —
// pinning the cache-maintenance contract of dataset.Add.
func TestFitTreeMissingFallbackAfterAdd(t *testing.T) {
	d := mixedDataset(100, 24)
	if d.HasMissing() {
		t.Fatal("unexpected missing values")
	}
	vals := make([]float64, len(d.Attrs))
	vals[0] = dataset.Missing
	vals[2] = 0
	d.MustAdd(dataset.Instance{Values: vals, Class: 0, Weight: 1})
	if !d.HasMissing() {
		t.Fatal("Add must maintain the missing cache")
	}
	general := fitGeneral(Config{}, d)
	got, err := (Learner{}).FitTree(d)
	if err != nil {
		t.Fatal(err)
	}
	if !nodesEqual(general, got.Root) {
		t.Fatal("FitTree did not use the general builder for missing data")
	}
}

func TestFitTreeViewEmpty(t *testing.T) {
	d := mixedDataset(10, 25)
	st := dataset.NewStore(d, []int{})
	if _, err := (Learner{}).FitTreeView(st.IdentityView()); err != ErrEmptyTraining {
		t.Fatalf("got %v, want ErrEmptyTraining", err)
	}
}
