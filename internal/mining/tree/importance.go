package tree

import (
	"fmt"
	"sort"
	"strings"
)

// Importance scores each attribute by the total training weight routed
// through the decision nodes that test it — a simple, widely used
// attribution of how much of the model's discrimination each variable
// carries. For detector design this answers the practical question
// "which module variables does the predicate actually watch?".
//
// Scores are normalised to sum to 1 over the attributes used; unused
// attributes score 0.
func (t *Tree) Importance() []float64 {
	scores := make([]float64, len(t.Attrs))
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil || n.IsLeaf() {
			return
		}
		scores[n.Attr] += sum(n.Dist)
		for _, ch := range n.Children {
			walk(ch)
		}
	}
	walk(t.Root)
	total := 0.0
	for _, s := range scores {
		total += s
	}
	if total > 0 {
		for i := range scores {
			scores[i] /= total
		}
	}
	return scores
}

// FormatImportance renders the non-zero importance scores in descending
// order.
func (t *Tree) FormatImportance() string {
	scores := t.Importance()
	type item struct {
		name  string
		score float64
	}
	var items []item
	for i, s := range scores {
		if s > 0 {
			items = append(items, item{name: t.Attrs[i].Name, score: s})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })
	var sb strings.Builder
	for _, it := range items {
		fmt.Fprintf(&sb, "%-18s %6.1f%%\n", it.name, 100*it.score)
	}
	return sb.String()
}
