package tree

import (
	"testing"
	"testing/quick"

	"edem/internal/dataset"
	"edem/internal/stats"
)

// fitGeneral forces the general (weighted) builder by the same entry
// point the fast path uses, so both can be compared on identical data.
func fitGeneral(cfg Config, d *dataset.Dataset) *Node {
	b := &builder{cfg: cfg, d: d}
	items := make([]item, d.Len())
	for i := range d.Instances {
		in := &d.Instances[i]
		w := in.Weight
		if w <= 0 {
			w = 1
		}
		items[i] = item{values: in.Values, class: in.Class, w: w}
	}
	root := b.build(items, 0)
	if !cfg.NoPrune {
		prune(root, cfg.confidence())
	}
	return root
}

func treesEqual(a, b *Node) bool {
	if a.IsLeaf() != b.IsLeaf() {
		return false
	}
	if a.IsLeaf() {
		return a.Class == b.Class
	}
	if a.Attr != b.Attr || a.Threshold != b.Threshold || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !treesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// TestFastMatchesGeneral verifies the optimisation is behaviour-
// preserving: on missing-free data the fast and general builders must
// produce identical trees.
func TestFastMatchesGeneral(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{NoPrune: true},
		{PlainGain: true},
		{MinLeaf: 5},
		{NoMDLPenalty: true},
		{MaxDepth: 3},
	} {
		for seed := uint64(1); seed <= 4; seed++ {
			d := mixedDataset(300, seed)
			fb := newFastBuilder(cfg, d)
			fast := fb.build(fb.rootNode(), 0)
			if !cfg.NoPrune {
				prune(fast, cfg.confidence())
			}
			general := fitGeneral(cfg, d)
			if !treesEqual(fast, general) {
				t.Errorf("cfg %+v seed %d: fast and general trees differ", cfg, seed)
			}
		}
	}
}

// mixedDataset mixes numeric and nominal attributes with an interaction
// concept and label noise.
func mixedDataset(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("mixed", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
		dataset.NominalAttr("mode", "m0", "m1", "m2"),
	}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x, y := rng.Float64(), rng.Float64()*4
		mode := rng.Intn(3)
		class := 0
		if (mode == 2 && x > 0.3) || y > 3.5 {
			class = 1
		}
		if rng.Float64() < 0.05 {
			class = 1 - class
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, y, float64(mode)}, Class: class, Weight: 1})
	}
	return d
}

func TestFastMatchesGeneralProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%150) + 20
		d := mixedDataset(n, seed)
		cfg := Config{}
		fb := newFastBuilder(cfg, d)
		fast := fb.build(fb.rootNode(), 0)
		prune(fast, cfg.confidence())
		general := fitGeneral(cfg, d)
		return treesEqual(fast, general)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestHasMissing(t *testing.T) {
	d := mixedDataset(10, 1)
	if d.HasMissing() {
		t.Fatal("no missing expected")
	}
	// Direct Values mutation bypasses the cache maintenance in Add, so
	// the cached answer must be dropped explicitly.
	d.Instances[3].Values[0] = dataset.Missing
	d.InvalidateMissing()
	if !d.HasMissing() {
		t.Fatal("missing not detected")
	}
}

func BenchmarkFastInduction(b *testing.B) {
	d := mixedDataset(5000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Learner{}).FitTree(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralInduction(b *testing.B) {
	d := mixedDataset(5000, 1)
	// A single missing value routes induction through the general path.
	d.Instances[0].Values[0] = dataset.Missing
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (Learner{}).FitTree(d); err != nil {
			b.Fatal(err)
		}
	}
}
