package tree

import (
	"math"
	"sort"

	"edem/internal/dataset"
)

// The fast induction path applies when the training data has no missing
// values: attribute columns are sorted once and the sort order is
// preserved through partitioning, removing the per-node sort that
// dominates induction cost on large fault-injection datasets. Datasets
// with missing values fall back to the general builder, which handles
// fractional instance weights.

// hasMissing reports whether any instance value is missing.
func hasMissing(d *dataset.Dataset) bool {
	for i := range d.Instances {
		for _, v := range d.Instances[i].Values {
			if dataset.IsMissing(v) {
				return true
			}
		}
	}
	return false
}

type fastBuilder struct {
	cfg      Config
	d        *dataset.Dataset
	cols     [][]float64 // column-major attribute values [attr][row]
	classes  []int
	weights  []float64
	nClasses int
}

// fastNode is the per-node view: row ids, plus per-numeric-attribute row
// ids in ascending value order.
type fastNode struct {
	rows   []int32
	sorted [][]int32 // indexed by attr; nil for nominal attributes
}

func newFastBuilder(cfg Config, d *dataset.Dataset) *fastBuilder {
	n := d.Len()
	fb := &fastBuilder{
		cfg:      cfg,
		d:        d,
		cols:     make([][]float64, len(d.Attrs)),
		classes:  make([]int, n),
		weights:  make([]float64, n),
		nClasses: len(d.ClassValues),
	}
	for a := range d.Attrs {
		col := make([]float64, n)
		for i := range d.Instances {
			col[i] = d.Instances[i].Values[a]
		}
		fb.cols[a] = col
	}
	for i := range d.Instances {
		fb.classes[i] = d.Instances[i].Class
		w := d.Instances[i].Weight
		if w <= 0 {
			w = 1
		}
		fb.weights[i] = w
	}
	return fb
}

func (fb *fastBuilder) rootNode() *fastNode {
	n := len(fb.classes)
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	nd := &fastNode{rows: rows, sorted: make([][]int32, len(fb.d.Attrs))}
	for a := range fb.d.Attrs {
		if fb.d.Attrs[a].Type != dataset.Numeric {
			continue
		}
		idx := make([]int32, n)
		copy(idx, rows)
		col := fb.cols[a]
		sort.Slice(idx, func(i, j int) bool { return col[idx[i]] < col[idx[j]] })
		nd.sorted[a] = idx
	}
	return nd
}

func (fb *fastBuilder) distribution(rows []int32) []float64 {
	dist := make([]float64, fb.nClasses)
	for _, r := range rows {
		dist[fb.classes[r]] += fb.weights[r]
	}
	return dist
}

func (fb *fastBuilder) build(nd *fastNode, depthSoFar int) *Node {
	dist := fb.distribution(nd.rows)
	node := &Node{Attr: -1, Dist: dist, Class: argmax(dist)}

	totalW := sum(dist)
	if totalW < 2*fb.cfg.minLeaf() || isPure(dist) {
		return node
	}
	if fb.cfg.MaxDepth > 0 && depthSoFar >= fb.cfg.MaxDepth {
		return node
	}

	best := fb.bestSplit(nd, dist, totalW)
	if best == nil {
		return node
	}

	children := fb.partition(nd, best)
	strong := 0
	for _, ch := range children {
		if fb.weightOfRows(ch.rows) >= fb.cfg.minLeaf() {
			strong++
		}
	}
	if strong < 2 {
		return node
	}

	node.Attr = best.attr
	node.Threshold = best.threshold
	node.Children = make([]*Node, len(children))
	for i, ch := range children {
		if len(ch.rows) == 0 {
			node.Children[i] = &Node{Attr: -1, Dist: make([]float64, fb.nClasses), Class: node.Class}
			continue
		}
		node.Children[i] = fb.build(ch, depthSoFar+1)
	}
	return node
}

func (fb *fastBuilder) weightOfRows(rows []int32) float64 {
	w := 0.0
	for _, r := range rows {
		w += fb.weights[r]
	}
	return w
}

func (fb *fastBuilder) bestSplit(nd *fastNode, dist []float64, totalW float64) *split {
	candidates := make([]*split, 0, len(fb.d.Attrs))
	for a := range fb.d.Attrs {
		var s *split
		if fb.d.Attrs[a].Type == dataset.Numeric {
			s = fb.numericSplit(nd.sorted[a], a, dist, totalW)
		} else {
			s = fb.nominalSplit(nd.rows, a, dist, totalW)
		}
		if s != nil && s.gain > 1e-12 {
			candidates = append(candidates, s)
		}
	}
	return selectSplit(candidates, fb.cfg.PlainGain)
}

// numericSplit scans the pre-sorted rows of a numeric attribute.
func (fb *fastBuilder) numericSplit(sorted []int32, attr int, dist []float64, totalW float64) *split {
	if len(sorted) < 2 {
		return nil
	}
	col := fb.cols[attr]
	baseEntropy := entropy(dist)

	left := make([]float64, fb.nClasses)
	right := make([]float64, fb.nClasses)
	copy(right, dist)

	var (
		bestGain   = -1.0
		bestThresh float64
		bestLeftW  float64
		distinct   = 1
		leftW      = 0.0
	)
	for i := 0; i < len(sorted)-1; i++ {
		r := sorted[i]
		w := fb.weights[r]
		c := fb.classes[r]
		left[c] += w
		right[c] -= w
		leftW += w
		if col[r] == col[sorted[i+1]] {
			continue
		}
		distinct++
		if leftW < fb.cfg.minLeaf() || totalW-leftW < fb.cfg.minLeaf() {
			continue
		}
		childEntropy := (leftW*entropy(left) + (totalW-leftW)*entropy(right)) / totalW
		gain := baseEntropy - childEntropy
		if gain > bestGain {
			bestGain = gain
			bestThresh = col[r]
			bestLeftW = leftW
		}
	}
	if bestGain < 0 {
		return nil
	}
	gain := bestGain
	if !fb.cfg.NoMDLPenalty && distinct > 1 {
		gain -= math.Log2(float64(distinct-1)) / totalW
	}
	if gain <= 0 {
		return nil
	}
	si := splitInfo([]float64{bestLeftW, totalW - bestLeftW}, totalW)
	gr := gain
	if si > 1e-12 {
		gr = gain / si
	}
	return &split{attr: attr, threshold: bestThresh, gain: gain, gainRatio: gr}
}

func (fb *fastBuilder) nominalSplit(rows []int32, attr int, dist []float64, totalW float64) *split {
	nVals := len(fb.d.Attrs[attr].Values)
	if nVals < 2 {
		return nil
	}
	branch := make([][]float64, nVals)
	for i := range branch {
		branch[i] = make([]float64, fb.nClasses)
	}
	col := fb.cols[attr]
	for _, r := range rows {
		branch[int(col[r])][fb.classes[r]] += fb.weights[r]
	}
	nonEmpty := 0
	childEntropy := 0.0
	branchW := make([]float64, 0, nVals)
	for _, bd := range branch {
		w := sum(bd)
		branchW = append(branchW, w)
		if w > 0 {
			nonEmpty++
			childEntropy += w * entropy(bd)
		}
	}
	if nonEmpty < 2 {
		return nil
	}
	childEntropy /= totalW
	gain := entropy(dist) - childEntropy
	if gain <= 0 {
		return nil
	}
	si := splitInfo(branchW, totalW)
	gr := gain
	if si > 1e-12 {
		gr = gain / si
	}
	return &split{attr: attr, gain: gain, gainRatio: gr}
}

// partition splits the node preserving every attribute's sort order.
func (fb *fastBuilder) partition(nd *fastNode, s *split) []*fastNode {
	numeric := fb.d.Attrs[s.attr].Type == dataset.Numeric
	nBranches := 2
	if !numeric {
		nBranches = len(fb.d.Attrs[s.attr].Values)
	}
	col := fb.cols[s.attr]
	branchOf := func(r int32) int {
		if numeric {
			if col[r] <= s.threshold {
				return 0
			}
			return 1
		}
		return int(col[r])
	}

	children := make([]*fastNode, nBranches)
	for b := range children {
		children[b] = &fastNode{sorted: make([][]int32, len(fb.d.Attrs))}
	}
	for _, r := range nd.rows {
		b := branchOf(r)
		children[b].rows = append(children[b].rows, r)
	}
	for a := range fb.d.Attrs {
		if nd.sorted[a] == nil {
			continue
		}
		for _, r := range nd.sorted[a] {
			b := branchOf(r)
			children[b].sorted[a] = append(children[b].sorted[a], r)
		}
	}
	return children
}

// selectSplit applies C4.5's rule: among candidates whose gain is at
// least the average gain, pick the best gain ratio (or plain gain).
func selectSplit(candidates []*split, plainGain bool) *split {
	if len(candidates) == 0 {
		return nil
	}
	avgGain := 0.0
	for _, s := range candidates {
		avgGain += s.gain
	}
	avgGain /= float64(len(candidates))

	var best *split
	for _, s := range candidates {
		if s.gain+1e-12 < avgGain {
			continue
		}
		score := s.gainRatio
		if plainGain {
			score = s.gain
		}
		if best == nil {
			best = s
			continue
		}
		bestScore := best.gainRatio
		if plainGain {
			bestScore = best.gain
		}
		if score > bestScore || (score == bestScore && s.attr < best.attr) {
			best = s
		}
	}
	return best
}
