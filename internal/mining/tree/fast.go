package tree

import (
	"math"
	"sort"

	"edem/internal/dataset"
)

// The fast induction path applies when the training data has no missing
// values: attribute columns are sorted once and the sort order is
// preserved through partitioning, removing the per-node sort that
// dominates induction cost on large fault-injection datasets. Datasets
// with missing values fall back to the general builder, which handles
// fractional instance weights.
//
// A second cost on large campaigns is allocation churn: the refinement
// grid induces thousands of trees per dataset, so per-node garbage adds
// up. The builder therefore keeps split-scan scratch (class
// distributions, candidate splits, branch counters) on the builder and
// partitions nodes count-then-fill into single arena allocations
// instead of per-child append chains. A builder is used by one
// goroutine; fold- and grid-level parallelism each construct their own.

type fastBuilder struct {
	cfg      Config
	attrs    []dataset.Attribute
	cols     [][]float64 // column-major attribute values [attr][row]
	classes  []int
	weights  []float64
	nClasses int
	nNumeric int // numeric attribute count: sorted-order slabs per node

	// Root state. rootRows is the training rows in instance order;
	// rootSorted, when non-nil, is the pre-merged per-attribute sort
	// order handed over by a dataset.View, letting rootNode skip its
	// sort entirely. Both are read-only: they may be shared with a
	// fold-wide store that other goroutines are reading.
	rootRows   []int32
	rootSorted [][]int32

	// Split-scan scratch, reused across bestSplit calls. Safe because a
	// node's best split is fully consumed (partition + node labelling)
	// before any child recursion runs the next scan.
	leftBuf   []float64
	rightBuf  []float64
	branchBuf []float64 // flat [nVals*nClasses] nominal class counts
	branchW   []float64
	splitBuf  []split  // cap len(Attrs): addresses stay stable
	candBuf   []*split // views into splitBuf for selectSplit
	countBuf  []int    // per-branch row counts
	startBuf  []int    // per-branch arena offsets
	fillBuf   []int    // per-branch fill cursors
}

// fastNode is the per-node view: row ids, plus per-numeric-attribute row
// ids in ascending value order.
type fastNode struct {
	rows   []int32
	sorted [][]int32 // indexed by attr; nil for nominal attributes
}

func newFastBuilder(cfg Config, d *dataset.Dataset) *fastBuilder {
	n := d.Len()
	fb := &fastBuilder{
		cfg:      cfg,
		attrs:    d.Attrs,
		cols:     make([][]float64, len(d.Attrs)),
		classes:  make([]int, n),
		weights:  make([]float64, n),
		nClasses: len(d.ClassValues),
	}
	for a := range d.Attrs {
		col := make([]float64, n)
		for i := range d.Instances {
			col[i] = d.Instances[i].Values[a]
		}
		fb.cols[a] = col
	}
	for i := range d.Instances {
		fb.classes[i] = d.Instances[i].Class
		w := d.Instances[i].Weight
		if w <= 0 {
			w = 1
		}
		fb.weights[i] = w
	}
	rows := make([]int32, n)
	for i := range rows {
		rows[i] = int32(i)
	}
	fb.rootRows = rows
	fb.initScratch()
	return fb
}

// newViewBuilder wires a builder straight to a columnar view's arrays:
// no column materialisation, no weight clamp pass (the store clamps at
// build), and — when the view carries merge-order sorts — no root sort.
func newViewBuilder(cfg Config, v *dataset.View) *fastBuilder {
	fb := &fastBuilder{
		cfg:        cfg,
		attrs:      v.Attrs(),
		cols:       v.Cols(),
		classes:    v.Classes(),
		weights:    v.Weights(),
		nClasses:   len(v.ClassValues()),
		rootRows:   v.Rows(),
		rootSorted: v.Sorted(),
	}
	fb.initScratch()
	return fb
}

// initScratch sizes the split-scan scratch from the schema; attrs, cols
// and nClasses must already be set.
func (fb *fastBuilder) initScratch() {
	maxBranches := 2
	for a := range fb.attrs {
		if fb.attrs[a].Type == dataset.Numeric {
			fb.nNumeric++
		} else if v := len(fb.attrs[a].Values); v > maxBranches {
			maxBranches = v
		}
	}
	fb.leftBuf = make([]float64, fb.nClasses)
	fb.rightBuf = make([]float64, fb.nClasses)
	fb.branchBuf = make([]float64, maxBranches*fb.nClasses)
	fb.branchW = make([]float64, 0, maxBranches)
	fb.splitBuf = make([]split, 0, len(fb.attrs))
	fb.candBuf = make([]*split, 0, len(fb.attrs))
	fb.countBuf = make([]int, maxBranches)
	fb.startBuf = make([]int, maxBranches)
	fb.fillBuf = make([]int, maxBranches)
}

func (fb *fastBuilder) rootNode() *fastNode {
	nd := &fastNode{rows: fb.rootRows, sorted: make([][]int32, len(fb.attrs))}
	if fb.rootSorted != nil {
		// Pre-merged orders from the view; partition only reads them.
		copy(nd.sorted, fb.rootSorted)
		return nd
	}
	n := len(fb.rootRows)
	for a := range fb.attrs {
		if fb.attrs[a].Type != dataset.Numeric {
			continue
		}
		idx := make([]int32, n)
		copy(idx, fb.rootRows)
		col := fb.cols[a]
		sort.Slice(idx, func(i, j int) bool { return col[idx[i]] < col[idx[j]] })
		nd.sorted[a] = idx
	}
	return nd
}

// distribution allocates a fresh class distribution — the result escapes
// into Node.Dist, so it cannot come from scratch.
func (fb *fastBuilder) distribution(rows []int32) []float64 {
	dist := make([]float64, fb.nClasses)
	for _, r := range rows {
		dist[fb.classes[r]] += fb.weights[r]
	}
	return dist
}

func (fb *fastBuilder) build(nd *fastNode, depthSoFar int) *Node {
	dist := fb.distribution(nd.rows)
	node := &Node{Attr: -1, Dist: dist, Class: argmax(dist)}

	totalW := sum(dist)
	if totalW < 2*fb.cfg.minLeaf() || isPure(dist) {
		return node
	}
	if fb.cfg.MaxDepth > 0 && depthSoFar >= fb.cfg.MaxDepth {
		return node
	}

	best := fb.bestSplit(nd, dist, totalW)
	if best == nil {
		return node
	}

	children := fb.partition(nd, best)
	strong := 0
	for i := range children {
		if fb.weightOfRows(children[i].rows) >= fb.cfg.minLeaf() {
			strong++
		}
	}
	if strong < 2 {
		return node
	}

	node.Attr = best.attr
	node.Threshold = best.threshold
	node.Children = make([]*Node, len(children))
	for i := range children {
		if len(children[i].rows) == 0 {
			node.Children[i] = &Node{Attr: -1, Dist: make([]float64, fb.nClasses), Class: node.Class}
			continue
		}
		node.Children[i] = fb.build(&children[i], depthSoFar+1)
	}
	return node
}

func (fb *fastBuilder) weightOfRows(rows []int32) float64 {
	w := 0.0
	for _, r := range rows {
		w += fb.weights[r]
	}
	return w
}

// bestSplit scans every attribute, collecting candidates into the
// builder's split scratch. The returned pointer aims into splitBuf and
// is only valid until the next bestSplit call.
func (fb *fastBuilder) bestSplit(nd *fastNode, dist []float64, totalW float64) *split {
	fb.splitBuf = fb.splitBuf[:0]
	fb.candBuf = fb.candBuf[:0]
	for a := range fb.attrs {
		var s split
		var ok bool
		if fb.attrs[a].Type == dataset.Numeric {
			ok = fb.numericSplit(nd.sorted[a], a, dist, totalW, &s)
		} else {
			ok = fb.nominalSplit(nd.rows, a, dist, totalW, &s)
		}
		if ok && s.gain > 1e-12 {
			fb.splitBuf = append(fb.splitBuf, s)
			fb.candBuf = append(fb.candBuf, &fb.splitBuf[len(fb.splitBuf)-1])
		}
	}
	return selectSplit(fb.candBuf, fb.cfg.PlainGain)
}

// numericSplit scans the pre-sorted rows of a numeric attribute, writing
// the winning split into out. It reports whether a split was found.
func (fb *fastBuilder) numericSplit(sorted []int32, attr int, dist []float64, totalW float64, out *split) bool {
	if len(sorted) < 2 {
		return false
	}
	col := fb.cols[attr]
	baseEntropy := entropy(dist)

	left, right := fb.leftBuf, fb.rightBuf
	for i := range left {
		left[i] = 0
	}
	copy(right, dist)

	var (
		bestGain   = -1.0
		bestThresh float64
		bestLeftW  float64
		distinct   = 1
		leftW      = 0.0
	)
	for i := 0; i < len(sorted)-1; i++ {
		r := sorted[i]
		w := fb.weights[r]
		c := fb.classes[r]
		left[c] += w
		right[c] -= w
		leftW += w
		if col[r] == col[sorted[i+1]] {
			continue
		}
		distinct++
		if leftW < fb.cfg.minLeaf() || totalW-leftW < fb.cfg.minLeaf() {
			continue
		}
		childEntropy := (leftW*entropy(left) + (totalW-leftW)*entropy(right)) / totalW
		gain := baseEntropy - childEntropy
		if gain > bestGain {
			bestGain = gain
			bestThresh = col[r]
			bestLeftW = leftW
		}
	}
	if bestGain < 0 {
		return false
	}
	gain := bestGain
	if !fb.cfg.NoMDLPenalty && distinct > 1 {
		gain -= math.Log2(float64(distinct-1)) / totalW
	}
	if gain <= 0 {
		return false
	}
	si := splitInfo([]float64{bestLeftW, totalW - bestLeftW}, totalW)
	gr := gain
	if si > 1e-12 {
		gr = gain / si
	}
	*out = split{attr: attr, threshold: bestThresh, gain: gain, gainRatio: gr}
	return true
}

// nominalSplit evaluates a multi-way nominal split into out, counting
// branch distributions in the builder's flat scratch.
func (fb *fastBuilder) nominalSplit(rows []int32, attr int, dist []float64, totalW float64, out *split) bool {
	nVals := len(fb.attrs[attr].Values)
	if nVals < 2 {
		return false
	}
	flat := fb.branchBuf[:nVals*fb.nClasses]
	for i := range flat {
		flat[i] = 0
	}
	col := fb.cols[attr]
	for _, r := range rows {
		flat[int(col[r])*fb.nClasses+fb.classes[r]] += fb.weights[r]
	}
	nonEmpty := 0
	childEntropy := 0.0
	branchW := fb.branchW[:0]
	for b := 0; b < nVals; b++ {
		bd := flat[b*fb.nClasses : (b+1)*fb.nClasses]
		w := sum(bd)
		branchW = append(branchW, w)
		if w > 0 {
			nonEmpty++
			childEntropy += w * entropy(bd)
		}
	}
	if nonEmpty < 2 {
		return false
	}
	childEntropy /= totalW
	gain := entropy(dist) - childEntropy
	if gain <= 0 {
		return false
	}
	si := splitInfo(branchW, totalW)
	gr := gain
	if si > 1e-12 {
		gr = gain / si
	}
	*out = split{attr: attr, gain: gain, gainRatio: gr}
	return true
}

// partition splits the node preserving every attribute's sort order.
// Branch sizes are counted first, then every child's row list and
// per-attribute sort order are carved out of one arena: three
// allocations per node (arena, headers, child nodes) in place of
// per-child append chains that each re-grow logarithmically.
func (fb *fastBuilder) partition(nd *fastNode, s *split) []fastNode {
	numeric := fb.attrs[s.attr].Type == dataset.Numeric
	nBranches := 2
	if !numeric {
		nBranches = len(fb.attrs[s.attr].Values)
	}
	col := fb.cols[s.attr]
	branchOf := func(r int32) int {
		if numeric {
			if col[r] <= s.threshold {
				return 0
			}
			return 1
		}
		return int(col[r])
	}

	counts := fb.countBuf[:nBranches]
	for b := range counts {
		counts[b] = 0
	}
	for _, r := range nd.rows {
		counts[branchOf(r)]++
	}
	starts := fb.startBuf[:nBranches]
	off := 0
	for b := range counts {
		starts[b] = off
		off += counts[b]
	}

	n := len(nd.rows)
	nAttrs := len(fb.attrs)
	// One arena backs the row lists and every numeric attribute's sort
	// order; hdrs backs each child's per-attribute slice table.
	arena := make([]int32, n*(1+fb.nNumeric))
	hdrs := make([][]int32, nBranches*nAttrs)
	nodes := make([]fastNode, nBranches)

	rowsArena := arena[:n]
	for b := range nodes {
		nodes[b].rows = rowsArena[starts[b] : starts[b]+counts[b]]
		nodes[b].sorted = hdrs[b*nAttrs : (b+1)*nAttrs]
	}
	fill := fb.fillBuf[:nBranches]
	copy(fill, starts)
	for _, r := range nd.rows {
		b := branchOf(r)
		rowsArena[fill[b]] = r
		fill[b]++
	}

	slabOff := n
	for a := 0; a < nAttrs; a++ {
		if nd.sorted[a] == nil {
			continue
		}
		slab := arena[slabOff : slabOff+n]
		slabOff += n
		copy(fill, starts)
		for _, r := range nd.sorted[a] {
			b := branchOf(r)
			slab[fill[b]] = r
			fill[b]++
		}
		for b := range nodes {
			nodes[b].sorted[a] = slab[starts[b] : starts[b]+counts[b]]
		}
	}
	return nodes
}

// selectSplit applies C4.5's rule: among candidates whose gain is at
// least the average gain, pick the best gain ratio (or plain gain).
func selectSplit(candidates []*split, plainGain bool) *split {
	if len(candidates) == 0 {
		return nil
	}
	avgGain := 0.0
	for _, s := range candidates {
		avgGain += s.gain
	}
	avgGain /= float64(len(candidates))

	var best *split
	for _, s := range candidates {
		if s.gain+1e-12 < avgGain {
			continue
		}
		score := s.gainRatio
		if plainGain {
			score = s.gain
		}
		if best == nil {
			best = s
			continue
		}
		bestScore := best.gainRatio
		if plainGain {
			bestScore = best.gain
		}
		if score > bestScore || (score == bestScore && s.attr < best.attr) {
			best = s
		}
	}
	return best
}
