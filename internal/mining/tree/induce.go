package tree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"edem/internal/dataset"
	"edem/internal/mining"
)

// Config controls C4.5 induction. The zero value selects the standard
// C4.5 defaults used throughout the paper (CF=0.25, min leaf weight 2,
// gain ratio, pruning on).
type Config struct {
	// MinLeaf is the minimum total instance weight required in at least
	// two branches of a split (C4.5's -m). Default 2.
	MinLeaf float64
	// ConfidenceFactor is the pruning confidence (C4.5's -c). Default
	// 0.25; values >= 0.5 disable the statistical correction.
	ConfidenceFactor float64
	// NoPrune disables pessimistic error pruning.
	NoPrune bool
	// PlainGain uses raw information gain instead of gain ratio for
	// split selection (for the ablation benchmarks).
	PlainGain bool
	// NoMDLPenalty disables the log2(distinct-1)/|D| correction applied
	// to continuous-attribute gains.
	NoMDLPenalty bool
	// MaxDepth caps tree depth; 0 means unlimited.
	MaxDepth int
}

func (c Config) minLeaf() float64 {
	if c.MinLeaf <= 0 {
		return 2
	}
	return c.MinLeaf
}

func (c Config) confidence() float64 {
	if c.ConfidenceFactor <= 0 {
		return 0.25
	}
	return c.ConfidenceFactor
}

// Learner induces C4.5 decision trees.
type Learner struct {
	Config Config
}

var _ mining.Learner = Learner{}

// Name implements mining.Learner.
func (Learner) Name() string { return "C4.5" }

// Fit implements mining.Learner.
func (l Learner) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	t, err := l.FitTree(d)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// ErrEmptyTraining is returned when the training set has no instances.
var ErrEmptyTraining = errors.New("tree: empty training set")

// FitTree induces a tree and returns it with its concrete type, for
// callers that need predicate extraction or rendering.
func (l Learner) FitTree(d *dataset.Dataset) (*Tree, error) {
	if d.Len() == 0 {
		return nil, ErrEmptyTraining
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("tree: %w", err)
	}
	var root *Node
	if d.HasMissing() {
		// General path: fractional instance weights across branches.
		b := &builder{cfg: l.Config, d: d}
		items := make([]item, d.Len())
		for i := range d.Instances {
			in := &d.Instances[i]
			w := in.Weight
			if w <= 0 {
				w = 1
			}
			items[i] = item{values: in.Values, class: in.Class, w: w}
		}
		root = b.build(items, 0)
	} else {
		// Fast path: columns sorted once, order preserved by partition.
		fb := newFastBuilder(l.Config, d)
		root = fb.build(fb.rootNode(), 0)
	}
	t := &Tree{Root: root, Attrs: d.Attrs, ClassValues: d.ClassValues}
	if !l.Config.NoPrune {
		prune(t.Root, l.Config.confidence())
	}
	return t, nil
}

// FitView implements mining.ViewFitter: induction straight from a
// columnar training view, skipping instance materialisation.
func (l Learner) FitView(v *dataset.View) (mining.Classifier, error) {
	t, err := l.FitTreeView(v)
	if err != nil {
		return nil, err
	}
	return t, nil
}

var _ mining.ViewFitter = Learner{}

// FitTreeView induces a tree from a columnar dataset.View. When the
// view carries pre-merged sort orders the builder starts directly on
// the shared arrays — no missing-value rescan, no column build, no root
// sort. A view without sort orders (missing values in the store, or
// NaN-valued synthetics) is materialised and routed through FitTree,
// which lands in the general fractional-weight builder exactly as the
// instance-based path would. The view's arrays are only read, so one
// view may feed many concurrent FitTreeView calls.
func (l Learner) FitTreeView(v *dataset.View) (*Tree, error) {
	if v.Len() == 0 {
		return nil, ErrEmptyTraining
	}
	if v.HasMissing() {
		return l.FitTree(v.Materialize())
	}
	fb := newViewBuilder(l.Config, v)
	root := fb.build(fb.rootNode(), 0)
	t := &Tree{Root: root, Attrs: v.Attrs(), ClassValues: v.ClassValues()}
	if !l.Config.NoPrune {
		prune(t.Root, l.Config.confidence())
	}
	return t, nil
}

// item is one (possibly fractional) training case at a node.
type item struct {
	values []float64
	class  int
	w      float64
}

type builder struct {
	cfg Config
	d   *dataset.Dataset
}

// build grows the subtree for the given cases.
func (b *builder) build(items []item, depthSoFar int) *Node {
	dist := b.distribution(items)
	node := &Node{Attr: -1, Dist: dist, Class: argmax(dist)}

	totalW := sum(dist)
	if totalW < 2*b.cfg.minLeaf() || isPure(dist) {
		return node
	}
	if b.cfg.MaxDepth > 0 && depthSoFar >= b.cfg.MaxDepth {
		return node
	}

	split := b.bestSplit(items, dist)
	if split == nil {
		return node
	}

	groups := b.partition(items, split)
	// Require at least two branches holding MinLeaf weight, as C4.5 does.
	strong := 0
	for _, g := range groups {
		if weightOf(g) >= b.cfg.minLeaf() {
			strong++
		}
	}
	if strong < 2 {
		return node
	}

	node.Attr = split.attr
	node.Threshold = split.threshold
	node.Children = make([]*Node, len(groups))
	for i, g := range groups {
		if len(g) == 0 {
			// Empty branch becomes a leaf predicting the parent majority.
			node.Children[i] = &Node{Attr: -1, Dist: make([]float64, len(dist)), Class: node.Class}
			continue
		}
		node.Children[i] = b.build(g, depthSoFar+1)
	}
	return node
}

func (b *builder) distribution(items []item) []float64 {
	dist := make([]float64, len(b.d.ClassValues))
	for i := range items {
		dist[items[i].class] += items[i].w
	}
	return dist
}

// split describes a candidate test.
type split struct {
	attr      int
	threshold float64 // numeric only
	gain      float64
	gainRatio float64
}

// bestSplit evaluates every attribute and applies C4.5's selection rule:
// among attributes whose information gain is at least the average of all
// positive gains, pick the best gain ratio (or plain gain when
// configured).
func (b *builder) bestSplit(items []item, dist []float64) *split {
	totalW := sum(dist)

	candidates := make([]*split, 0, len(b.d.Attrs))
	for a := range b.d.Attrs {
		var s *split
		if b.d.Attrs[a].Type == dataset.Numeric {
			s = b.numericSplit(items, a, totalW)
		} else {
			s = b.nominalSplit(items, a, totalW)
		}
		if s != nil && s.gain > 1e-12 {
			candidates = append(candidates, s)
		}
	}
	return selectSplit(candidates, b.cfg.PlainGain)
}

// numericSplit finds the best binary threshold for a numeric attribute.
func (b *builder) numericSplit(items []item, attr int, totalW float64) *split {
	type vw struct {
		v     float64
		w     float64
		class int
	}
	known := make([]vw, 0, len(items))
	missingW := 0.0
	for i := range items {
		v := items[i].values[attr]
		if dataset.IsMissing(v) {
			missingW += items[i].w
			continue
		}
		known = append(known, vw{v: v, w: items[i].w, class: items[i].class})
	}
	if len(known) < 2 {
		return nil
	}
	sort.Slice(known, func(i, j int) bool { return known[i].v < known[j].v })

	knownW := totalW - missingW
	if knownW <= 0 {
		return nil
	}
	nClasses := len(b.d.ClassValues)
	left := make([]float64, nClasses)
	right := make([]float64, nClasses)
	for _, k := range known {
		right[k.class] += k.w
	}
	knownDist := make([]float64, nClasses)
	copy(knownDist, right)
	knownEntropy := entropy(knownDist)

	var (
		bestGain   = math.Inf(-1)
		bestThresh float64
		bestLeftW  float64
		distinct   = 1
		leftW      = 0.0
	)
	for i := 0; i < len(known)-1; i++ {
		left[known[i].class] += known[i].w
		right[known[i].class] -= known[i].w
		leftW += known[i].w
		if known[i].v == known[i+1].v {
			continue
		}
		distinct++
		if leftW < b.cfg.minLeaf() || knownW-leftW < b.cfg.minLeaf() {
			continue
		}
		childEntropy := (leftW*entropy(left) + (knownW-leftW)*entropy(right)) / knownW
		gain := knownEntropy - childEntropy
		if gain > bestGain {
			bestGain = gain
			// C4.5 style: threshold at the largest observed value below
			// the boundary keeps the test expressible in data values.
			bestThresh = known[i].v
			bestLeftW = leftW
		}
	}
	if math.IsInf(bestGain, -1) {
		return nil
	}

	// Discount for unknown values, then the MDL correction for having
	// chosen among distinct-1 candidate thresholds.
	gain := (knownW / totalW) * bestGain
	if !b.cfg.NoMDLPenalty && distinct > 1 {
		gain -= math.Log2(float64(distinct-1)) / totalW
	}
	if gain <= 0 {
		return nil
	}

	si := splitInfo([]float64{bestLeftW, knownW - bestLeftW, missingW}, totalW)
	gr := gain
	if si > 1e-12 {
		gr = gain / si
	}
	return &split{attr: attr, threshold: bestThresh, gain: gain, gainRatio: gr}
}

// nominalSplit evaluates the multiway split on a nominal attribute.
func (b *builder) nominalSplit(items []item, attr int, totalW float64) *split {
	nVals := len(b.d.Attrs[attr].Values)
	if nVals < 2 {
		return nil
	}
	nClasses := len(b.d.ClassValues)
	branch := make([][]float64, nVals)
	for i := range branch {
		branch[i] = make([]float64, nClasses)
	}
	known := make([]float64, nClasses)
	missingW := 0.0
	for i := range items {
		v := items[i].values[attr]
		if dataset.IsMissing(v) {
			missingW += items[i].w
			continue
		}
		idx := int(v)
		branch[idx][items[i].class] += items[i].w
		known[items[i].class] += items[i].w
	}
	knownW := sum(known)
	if knownW <= 0 {
		return nil
	}
	nonEmpty := 0
	childEntropy := 0.0
	branchW := make([]float64, 0, nVals+1)
	for _, dist := range branch {
		w := sum(dist)
		branchW = append(branchW, w)
		if w > 0 {
			nonEmpty++
			childEntropy += w * entropy(dist)
		}
	}
	if nonEmpty < 2 {
		return nil
	}
	childEntropy /= knownW
	gain := (knownW / totalW) * (entropy(known) - childEntropy)
	if gain <= 0 {
		return nil
	}
	branchW = append(branchW, missingW)
	si := splitInfo(branchW, totalW)
	gr := gain
	if si > 1e-12 {
		gr = gain / si
	}
	return &split{attr: attr, gain: gain, gainRatio: gr}
}

// partition distributes cases into the split's branches, spreading
// missing-valued cases fractionally in proportion to branch weight
// (C4.5's probabilistic missing-value handling).
func (b *builder) partition(items []item, s *split) [][]item {
	numeric := b.d.Attrs[s.attr].Type == dataset.Numeric
	nBranches := 2
	if !numeric {
		nBranches = len(b.d.Attrs[s.attr].Values)
	}
	groups := make([][]item, nBranches)
	var missing []item
	branchW := make([]float64, nBranches)
	for i := range items {
		v := items[i].values[s.attr]
		if dataset.IsMissing(v) {
			missing = append(missing, items[i])
			continue
		}
		var g int
		if numeric {
			if v <= s.threshold {
				g = 0
			} else {
				g = 1
			}
		} else {
			g = int(v)
		}
		groups[g] = append(groups[g], items[i])
		branchW[g] += items[i].w
	}
	knownW := sum(branchW)
	if len(missing) > 0 && knownW > 0 {
		for _, m := range missing {
			for g := range groups {
				if branchW[g] <= 0 {
					continue
				}
				frac := branchW[g] / knownW
				groups[g] = append(groups[g], item{values: m.values, class: m.class, w: m.w * frac})
			}
		}
	}
	return groups
}

// splitInfo is the entropy of the branch weight distribution, the
// denominator of gain ratio.
func splitInfo(branchW []float64, totalW float64) float64 {
	if totalW <= 0 {
		return 0
	}
	si := 0.0
	for _, w := range branchW {
		if w > 0 {
			p := w / totalW
			si -= p * math.Log2(p)
		}
	}
	return si
}

func weightOf(items []item) float64 {
	w := 0.0
	for i := range items {
		w += items[i].w
	}
	return w
}

func isPure(dist []float64) bool {
	seen := false
	for _, w := range dist {
		if w > 0 {
			if seen {
				return false
			}
			seen = true
		}
	}
	return true
}

func argmax(dist []float64) int {
	best := 0
	for c := 1; c < len(dist); c++ {
		if dist[c] > dist[best] {
			best = c
		}
	}
	return best
}
