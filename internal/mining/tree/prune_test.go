package tree

import (
	"math"
	"testing"
)

func TestAddErrsKnownValues(t *testing.T) {
	// Values cross-checked against Quinlan's published formula
	// behaviour: the upper confidence bound grows with CF tightening.
	if got := addErrs(100, 0, 0.25); got <= 0 || got >= 2 {
		t.Errorf("addErrs(100,0,0.25) = %v, want small positive", got)
	}
	// e=0 base case: N*(1-CF^(1/N)).
	want := 10 * (1 - math.Pow(0.25, 0.1))
	if got := addErrs(10, 0, 0.25); math.Abs(got-want) > 1e-9 {
		t.Errorf("addErrs(10,0,0.25) = %v, want %v", got, want)
	}
	// CF >= 0.5 disables the correction.
	if got := addErrs(50, 5, 0.5); got != 0 {
		t.Errorf("addErrs with CF 0.5 = %v, want 0", got)
	}
	// e close to N.
	if got := addErrs(10, 9.8, 0.25); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("addErrs near N = %v, want ~0.2", got)
	}
}

func TestAddErrsMonotonicInE(t *testing.T) {
	prev := addErrs(100, 1, 0.25) + 1
	for e := 2.0; e < 50; e += 3 {
		total := addErrs(100, e, 0.25) + e
		if total < prev {
			t.Errorf("pessimistic total errors not monotone at e=%v", e)
		}
		prev = total
	}
}

func TestAddErrsTighterConfidenceIsMorePessimistic(t *testing.T) {
	loose := addErrs(100, 10, 0.4)
	tight := addErrs(100, 10, 0.05)
	if tight <= loose {
		t.Errorf("CF 0.05 (%v) should exceed CF 0.4 (%v)", tight, loose)
	}
}

func TestPruneCollapsesUselessSplit(t *testing.T) {
	// A split whose children predict the same class as the parent with
	// no error reduction must collapse.
	leafA := &Node{Attr: -1, Dist: []float64{30, 2}, Class: 0}
	leafB := &Node{Attr: -1, Dist: []float64{28, 3}, Class: 0}
	root := &Node{
		Attr: 0, Threshold: 0.5,
		Children: []*Node{leafA, leafB},
		Dist:     []float64{58, 5},
		Class:    0,
	}
	prune(root, 0.25)
	if !root.IsLeaf() {
		t.Fatal("useless split should be pruned to a leaf")
	}
	if root.Class != 0 {
		t.Fatalf("pruned class = %d", root.Class)
	}
}

func TestPruneKeepsUsefulSplit(t *testing.T) {
	leafA := &Node{Attr: -1, Dist: []float64{50, 0}, Class: 0}
	leafB := &Node{Attr: -1, Dist: []float64{0, 50}, Class: 1}
	root := &Node{
		Attr: 0, Threshold: 0.5,
		Children: []*Node{leafA, leafB},
		Dist:     []float64{50, 50},
		Class:    0,
	}
	prune(root, 0.25)
	if root.IsLeaf() {
		t.Fatal("a perfectly discriminating split must survive pruning")
	}
}

func TestLeafErrorsEmpty(t *testing.T) {
	n := &Node{Attr: -1, Dist: []float64{0, 0}, Class: 0}
	if got := leafErrors(n, 0.25); got != 0 {
		t.Fatalf("empty leaf errors = %v", got)
	}
}
