// Package tree implements C4.5 decision tree induction (Quinlan [34]),
// the symbolic pattern learning algorithm used by the paper to generate
// error detection predicates: gain-ratio splitting with the average-gain
// gate, MDL-corrected continuous thresholds, fractional instance weights
// for missing values, and pessimistic error-based pruning.
//
// Role in the methodology: the model generator of Step 3 and, re-run
// per sampling configuration, of Step 4; its trees are what
// internal/predicate reads off as detectors. Concurrency: Learner is a
// value-type configuration safe to share; every Fit call constructs its
// own builder (scratch buffers, arenas), so concurrent fits from fold
// and grid workers never share mutable state; a fitted *Node tree is
// immutable and safe for concurrent classification. Fit reads the
// training data without mutating it and may retain store-backed sorted
// orders only for the duration of the call.
package tree

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"edem/internal/dataset"
	"edem/internal/mining"
)

// Node is one node of an induced decision tree. Internal nodes test an
// attribute (a binary threshold for numeric attributes, a multiway
// branch for nominal ones); every node carries the training class
// distribution observed at it, used for missing-value classification
// and pruning.
type Node struct {
	// Attr is the tested attribute index, or -1 for a leaf.
	Attr int
	// Threshold splits numeric attributes: <= goes to Children[0],
	// > to Children[1].
	Threshold float64
	// Children are the branch subtrees: two for numeric splits, one per
	// domain value for nominal splits. Nil for leaves.
	Children []*Node

	// Dist is the training class weight distribution at this node.
	Dist []float64
	// Class is the majority class at this node.
	Class int
}

// IsLeaf reports whether the node is a leaf.
func (n *Node) IsLeaf() bool { return n.Attr < 0 }

// Tree is an induced C4.5 model.
type Tree struct {
	Root        *Node
	Attrs       []dataset.Attribute
	ClassValues []string
}

var (
	_ mining.Classifier  = (*Tree)(nil)
	_ mining.Distributor = (*Tree)(nil)
	_ mining.Sizer       = (*Tree)(nil)
)

// Classify returns the majority class of the distribution reached by
// the instance (fractional across branches for missing values).
func (t *Tree) Classify(values []float64) int {
	dist := t.Distribution(values)
	best := 0
	for c := 1; c < len(dist); c++ {
		if dist[c] > dist[best] {
			best = c
		}
	}
	return best
}

// Distribution returns normalised class scores for the instance.
func (t *Tree) Distribution(values []float64) []float64 {
	dist := make([]float64, len(t.ClassValues))
	t.accumulate(t.Root, values, 1, dist)
	total := 0.0
	for _, v := range dist {
		total += v
	}
	if total <= 0 {
		// Degenerate: fall back to the root's training distribution.
		copy(dist, t.Root.Dist)
		total = 0
		for _, v := range dist {
			total += v
		}
		if total == 0 {
			return dist
		}
	}
	for i := range dist {
		dist[i] /= total
	}
	return dist
}

// accumulate walks the tree adding weight*P(class|leaf) into dist,
// splitting the instance's weight across branches when the tested value
// is missing (C4.5's fractional classification).
func (t *Tree) accumulate(n *Node, values []float64, weight float64, dist []float64) {
	if weight <= 0 {
		return
	}
	if n.IsLeaf() {
		total := 0.0
		for _, w := range n.Dist {
			total += w
		}
		if total <= 0 {
			dist[n.Class] += weight
			return
		}
		for c, w := range n.Dist {
			dist[c] += weight * w / total
		}
		return
	}
	v := values[n.Attr]
	if dataset.IsMissing(v) {
		// Distribute across children in proportion to training weight.
		var childW []float64
		total := 0.0
		for _, ch := range n.Children {
			w := sum(ch.Dist)
			childW = append(childW, w)
			total += w
		}
		if total <= 0 {
			t.accumulate(n.Children[0], values, weight, dist)
			return
		}
		for i, ch := range n.Children {
			t.accumulate(ch, values, weight*childW[i]/total, dist)
		}
		return
	}
	if t.Attrs[n.Attr].Type == dataset.Numeric {
		if v <= n.Threshold {
			t.accumulate(n.Children[0], values, weight, dist)
		} else {
			t.accumulate(n.Children[1], values, weight, dist)
		}
		return
	}
	idx := int(v)
	if idx < 0 || idx >= len(n.Children) {
		// Out-of-domain nominal value: treat as missing.
		t.accumulate(n.Children[0], values, weight, dist)
		return
	}
	t.accumulate(n.Children[idx], values, weight, dist)
}

// Size returns the total number of nodes (decision plus leaf), the
// complexity measure of the Comp column in Tables III and IV.
func (t *Tree) Size() int { return countNodes(t.Root) }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return countLeaves(t.Root) }

// Depth returns the maximum root-to-leaf depth (a single leaf has
// depth 0).
func (t *Tree) Depth() int { return depth(t.Root) }

func countNodes(n *Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, ch := range n.Children {
		total += countNodes(ch)
	}
	return total
}

func countLeaves(n *Node) int {
	if n == nil {
		return 0
	}
	if n.IsLeaf() {
		return 1
	}
	total := 0
	for _, ch := range n.Children {
		total += countLeaves(ch)
	}
	return total
}

func depth(n *Node) int {
	if n == nil || n.IsLeaf() {
		return 0
	}
	d := 0
	for _, ch := range n.Children {
		if cd := depth(ch); cd > d {
			d = cd
		}
	}
	return d + 1
}

// String renders the tree in the indented style of Figure 2.
func (t *Tree) String() string {
	var sb strings.Builder
	t.render(&sb, t.Root, 0)
	return sb.String()
}

func (t *Tree) render(sb *strings.Builder, n *Node, indent int) {
	if n.IsLeaf() {
		fmt.Fprintf(sb, ": %s (%s)", t.ClassValues[n.Class], formatDist(n.Dist, n.Class))
		return
	}
	attr := t.Attrs[n.Attr]
	for i, ch := range n.Children {
		sb.WriteByte('\n')
		for k := 0; k < indent; k++ {
			sb.WriteString("|   ")
		}
		if attr.Type == dataset.Numeric {
			op := "<="
			if i == 1 {
				op = ">"
			}
			fmt.Fprintf(sb, "%s %s %s", attr.Name, op, strconv.FormatFloat(n.Threshold, 'g', 6, 64))
		} else {
			fmt.Fprintf(sb, "%s = %s", attr.Name, attr.Values[i])
		}
		t.render(sb, ch, indent+1)
	}
}

func formatDist(dist []float64, class int) string {
	total, correct := 0.0, 0.0
	for c, w := range dist {
		total += w
		if c == class {
			correct = w
		}
	}
	wrong := total - correct
	if wrong < 1e-9 {
		return strconv.FormatFloat(total, 'f', 1, 64)
	}
	return strconv.FormatFloat(total, 'f', 1, 64) + "/" + strconv.FormatFloat(wrong, 'f', 1, 64)
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func entropy(dist []float64) float64 {
	total := sum(dist)
	if total <= 0 {
		return 0
	}
	e := 0.0
	for _, w := range dist {
		if w > 0 {
			p := w / total
			e -= p * math.Log2(p)
		}
	}
	return e
}
