package bayes

import (
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/stats"
)

func gaussianDataset(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("g", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NominalAttr("m", "a", "b"),
	}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			// Negative: x ~ N(0,1), mode mostly "a".
			m := 0.0
			if rng.Float64() < 0.2 {
				m = 1
			}
			d.MustAdd(dataset.Instance{Values: []float64{rng.NormFloat64(), m}, Class: 0, Weight: 1})
		} else {
			// Positive: x ~ N(4,1), mode mostly "b".
			m := 1.0
			if rng.Float64() < 0.2 {
				m = 0
			}
			d.MustAdd(dataset.Instance{Values: []float64{4 + rng.NormFloat64(), m}, Class: 1, Weight: 1})
		}
	}
	return d
}

func accuracy(c mining.Classifier, d *dataset.Dataset) float64 {
	correct := 0
	for i := range d.Instances {
		if c.Classify(d.Instances[i].Values) == d.Instances[i].Class {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

func TestNaiveBayesSeparatesGaussians(t *testing.T) {
	d := gaussianDataset(600, 1)
	model, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, d); acc < 0.95 {
		t.Errorf("accuracy = %.3f", acc)
	}
}

func TestNaiveBayesDistribution(t *testing.T) {
	d := gaussianDataset(400, 2)
	model, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	dist := model.(mining.Distributor).Distribution([]float64{4, 1})
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution sums to %v", sum)
	}
	if dist[1] < 0.9 {
		t.Errorf("clear positive scored %v", dist[1])
	}
}

func TestNaiveBayesMissingValues(t *testing.T) {
	d := gaussianDataset(400, 3)
	d.Instances[0].Values[0] = dataset.Missing
	model, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	// Classifying with a missing value uses the prior + remaining attrs.
	got := model.Classify([]float64{dataset.Missing, 1})
	if got != 1 {
		t.Errorf("missing-x classification = %d, want mode-driven 1", got)
	}
}

func TestNaiveBayesLogMapHandlesExtremes(t *testing.T) {
	// Bit-flip magnitudes (1e300) overflow plain Gaussian likelihoods;
	// the signed log mapping keeps them ordered. Both variants must at
	// least not crash and must classify the training data sensibly.
	d := dataset.New("x", []dataset.Attribute{dataset.NumericAttr("v")}, []string{"neg", "pos"})
	rng := stats.NewRNG(4)
	for i := 0; i < 200; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{rng.Float64() * 100}, Class: 0, Weight: 1})
	}
	for i := 0; i < 40; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{1e250 * (1 + rng.Float64())}, Class: 1, Weight: 1})
	}
	plain, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	logm, err := Learner{LogMap: true}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(logm, d); acc < 0.99 {
		t.Errorf("logmap accuracy = %.3f", acc)
	}
	_ = plain.Classify([]float64{1e308}) // must not panic
}

func TestNaiveBayesNames(t *testing.T) {
	if (Learner{}).Name() != "NaiveBayes" {
		t.Error("name")
	}
	if (Learner{LogMap: true}).Name() != "NaiveBayes+logmap" {
		t.Error("logmap name")
	}
}

func TestNaiveBayesInvalidDataset(t *testing.T) {
	d := dataset.New("bad", nil, []string{"a"})
	if _, err := (Learner{}).Fit(d); err == nil {
		t.Error("invalid dataset should fail")
	}
}

func TestNaiveBayesPriors(t *testing.T) {
	// With identical likelihoods the prior dominates.
	d := dataset.New("p", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	for i := 0; i < 90; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{1}, Class: 0, Weight: 1})
	}
	for i := 0; i < 10; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{1}, Class: 1, Weight: 1})
	}
	model, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if model.Classify([]float64{1}) != 0 {
		t.Error("prior-dominated classification should pick the majority")
	}
}
