// Package bayes implements a Naïve Bayes classifier: Gaussian
// likelihoods for numeric attributes and Laplace-smoothed frequency
// estimates for nominal ones. The paper (§V-C) notes that learners of
// this family benefit from the signed logarithmic attribute mapping on
// fault-injection data; the learner applies it optionally.
//
// Role in the methodology: a Step 3 comparator in the learner-comparison
// ablation (non-symbolic, so not a predicate source). Concurrency: it
// follows the internal/mining contract — Fit neither mutates nor
// retains the training data, and the fitted classifier is immutable and
// safe for concurrent use.
package bayes

import (
	"math"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/stats"
)

// Learner fits Naïve Bayes models.
type Learner struct {
	// LogMap applies the paper's signed log transformation g(x) to
	// numeric attributes before fitting and classifying.
	LogMap bool
}

var _ mining.Learner = Learner{}

// Name implements mining.Learner.
func (l Learner) Name() string {
	if l.LogMap {
		return "NaiveBayes+logmap"
	}
	return "NaiveBayes"
}

// Model is a fitted Naïve Bayes classifier.
type Model struct {
	logMap bool
	attrs  []dataset.Attribute
	prior  []float64 // log priors per class

	// Numeric attributes: per class, per attribute Gaussian params.
	mean, stdev [][]float64
	// Nominal attributes: per class, per attribute, per value log
	// probability.
	nominal [][][]float64
}

var (
	_ mining.Classifier  = (*Model)(nil)
	_ mining.Distributor = (*Model)(nil)
)

// minStdev floors the Gaussian spread to keep densities finite on
// constant attributes.
const minStdev = 1e-6

// Fit implements mining.Learner.
func (l Learner) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	nClass := len(d.ClassValues)
	nAttr := len(d.Attrs)

	m := &Model{logMap: l.LogMap, attrs: d.Attrs}
	m.prior = make([]float64, nClass)
	m.mean = make2D(nClass, nAttr)
	m.stdev = make2D(nClass, nAttr)
	m.nominal = make([][][]float64, nClass)

	welford := make([][]stats.Welford, nClass)
	counts := make([][][]float64, nClass)
	classW := make([]float64, nClass)
	for c := 0; c < nClass; c++ {
		welford[c] = make([]stats.Welford, nAttr)
		counts[c] = make([][]float64, nAttr)
		m.nominal[c] = make([][]float64, nAttr)
		for a := 0; a < nAttr; a++ {
			if d.Attrs[a].Type == dataset.Nominal {
				counts[c][a] = make([]float64, len(d.Attrs[a].Values))
			}
		}
	}

	totalW := 0.0
	for i := range d.Instances {
		in := &d.Instances[i]
		c := in.Class
		classW[c] += in.Weight
		totalW += in.Weight
		for a, v := range in.Values {
			if dataset.IsMissing(v) {
				continue
			}
			if d.Attrs[a].Type == dataset.Numeric {
				welford[c][a].Add(l.transform(v))
			} else {
				counts[c][a][int(v)] += in.Weight
			}
		}
	}
	for c := 0; c < nClass; c++ {
		// Laplace-smoothed log prior.
		m.prior[c] = math.Log((classW[c] + 1) / (totalW + float64(nClass)))
		for a := 0; a < nAttr; a++ {
			if d.Attrs[a].Type == dataset.Numeric {
				m.mean[c][a] = welford[c][a].Mean()
				sd := math.Sqrt(welford[c][a].SampleVariance())
				if sd < minStdev {
					sd = minStdev
				}
				m.stdev[c][a] = sd
				continue
			}
			vals := len(d.Attrs[a].Values)
			total := 0.0
			for _, w := range counts[c][a] {
				total += w
			}
			m.nominal[c][a] = make([]float64, vals)
			for v := 0; v < vals; v++ {
				m.nominal[c][a][v] = math.Log((counts[c][a][v] + 1) / (total + float64(vals)))
			}
		}
	}
	return m, nil
}

func (l Learner) transform(v float64) float64 {
	if l.LogMap {
		return stats.SignedLog(v)
	}
	return v
}

// Classify implements mining.Classifier.
func (m *Model) Classify(values []float64) int {
	dist := m.Distribution(values)
	best := 0
	for c := 1; c < len(dist); c++ {
		if dist[c] > dist[best] {
			best = c
		}
	}
	return best
}

// Distribution implements mining.Distributor.
func (m *Model) Distribution(values []float64) []float64 {
	nClass := len(m.prior)
	logs := make([]float64, nClass)
	for c := 0; c < nClass; c++ {
		lp := m.prior[c]
		for a, v := range values {
			if a >= len(m.attrs) || dataset.IsMissing(v) {
				continue
			}
			if m.attrs[a].Type == dataset.Numeric {
				x := v
				if m.logMap {
					x = stats.SignedLog(v)
				}
				lp += logGaussian(x, m.mean[c][a], m.stdev[c][a])
			} else {
				idx := int(v)
				if idx >= 0 && idx < len(m.nominal[c][a]) {
					lp += m.nominal[c][a][idx]
				}
			}
		}
		logs[c] = lp
	}
	// Normalise in log space.
	maxLog := logs[0]
	for _, lv := range logs[1:] {
		if lv > maxLog {
			maxLog = lv
		}
	}
	dist := make([]float64, nClass)
	total := 0.0
	for c, lv := range logs {
		dist[c] = math.Exp(lv - maxLog)
		total += dist[c]
	}
	if total > 0 {
		for c := range dist {
			dist[c] /= total
		}
	}
	return dist
}

func logGaussian(x, mean, sd float64) float64 {
	if math.IsInf(x, 0) || math.IsNaN(x) {
		// Corrupted magnitudes beyond float range: treat as extremely
		// unlikely under any finite Gaussian, equally for all classes.
		return -745 // ~log(smallest positive float64)
	}
	z := (x - mean) / sd
	return -0.5*z*z - math.Log(sd) - 0.9189385332046727 // log(sqrt(2*pi))
}

func make2D(rows, cols int) [][]float64 {
	out := make([][]float64, rows)
	for i := range out {
		out[i] = make([]float64, cols)
	}
	return out
}
