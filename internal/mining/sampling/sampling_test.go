package sampling

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"edem/internal/dataset"
	"edem/internal/stats"
)

// imbalanced builds a dataset with nNeg negatives (class 0) clustered
// near the origin and nPos positives (class 1) on a line, mirroring
// fault-injection imbalance.
func imbalanced(nNeg, nPos int, seed uint64) *dataset.Dataset {
	d := dataset.New("imb", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
		dataset.NominalAttr("m", "a", "b"),
	}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < nNeg; i++ {
		d.MustAdd(dataset.Instance{
			Values: []float64{rng.Float64(), rng.Float64(), float64(rng.Intn(2))},
			Class:  0, Weight: 1,
		})
	}
	for i := 0; i < nPos; i++ {
		base := 10 + rng.Float64()
		d.MustAdd(dataset.Instance{
			Values: []float64{base, base * 2, float64(rng.Intn(2))},
			Class:  1, Weight: 1,
		})
	}
	return d
}

func classCounts(d *dataset.Dataset) (neg, pos int) {
	c := d.ClassCounts()
	return c[0], c[1]
}

func TestUndersample(t *testing.T) {
	d := imbalanced(100, 10, 1)
	out, err := Undersample(d, 0, 30, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	neg, pos := classCounts(out)
	if neg != 30 {
		t.Errorf("negatives = %d, want 30", neg)
	}
	if pos != 10 {
		t.Errorf("positives = %d, want all 10 kept", pos)
	}
}

func TestUndersampleKeepsAtLeastOne(t *testing.T) {
	d := imbalanced(10, 2, 2)
	out, err := Undersample(d, 0, 1, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	neg, _ := classCounts(out)
	if neg < 1 {
		t.Errorf("negatives = %d, want >= 1", neg)
	}
}

func TestUndersampleErrors(t *testing.T) {
	d := imbalanced(10, 2, 3)
	if _, err := Undersample(d, 0, 0, stats.NewRNG(1)); !errors.Is(err, ErrBadPercent) {
		t.Errorf("percent 0: %v", err)
	}
	if _, err := Undersample(d, 0, 101, stats.NewRNG(1)); !errors.Is(err, ErrBadPercent) {
		t.Errorf("percent 101: %v", err)
	}
	if _, err := Undersample(d, 5, 50, stats.NewRNG(1)); err == nil {
		t.Error("bad class should fail")
	}
}

func TestOversample(t *testing.T) {
	d := imbalanced(100, 10, 4)
	out, err := Oversample(d, 1, 300, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	neg, pos := classCounts(out)
	if neg != 100 {
		t.Errorf("negatives = %d, want untouched 100", neg)
	}
	if pos != 40 { // 10 originals + 300% = 30 copies
		t.Errorf("positives = %d, want 40", pos)
	}
	// Replacement copies are exact duplicates of existing positives.
	seen := map[float64]bool{}
	for i := range d.Instances {
		if d.Instances[i].Class == 1 {
			seen[d.Instances[i].Values[0]] = true
		}
	}
	for i := range out.Instances {
		if out.Instances[i].Class == 1 && !seen[out.Instances[i].Values[0]] {
			t.Fatal("oversampling invented a new value; expected replacement copies")
		}
	}
}

func TestSMOTECounts(t *testing.T) {
	d := imbalanced(100, 10, 5)
	out, err := SMOTE(d, 1, 500, 3, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	_, pos := classCounts(out)
	if pos != 60 { // 10 + 500%
		t.Errorf("positives = %d, want 60", pos)
	}
}

func TestSMOTESyntheticsInterpolate(t *testing.T) {
	// Positives lie on the line y = 2x; synthetic instances must stay
	// on the segment between a seed and a neighbour — hence on the line.
	d := imbalanced(50, 12, 6)
	out, err := SMOTE(d, 1, 400, 5, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := d.Len(); i < out.Len(); i++ {
		in := out.Instances[i]
		if in.Class != 1 {
			t.Fatal("synthetic instance with wrong class")
		}
		x, y := in.Values[0], in.Values[1]
		if math.Abs(y-2*x) > 1e-9 {
			t.Fatalf("synthetic (%v, %v) off the positive manifold", x, y)
		}
		if x < 10 || x > 11 {
			t.Fatalf("synthetic x=%v outside the convex hull of positives", x)
		}
		// Nominal values must come from the domain.
		if m := in.Values[2]; m != 0 && m != 1 {
			t.Fatalf("synthetic nominal = %v", m)
		}
	}
}

func TestSMOTEUnderHundredPercent(t *testing.T) {
	d := imbalanced(50, 20, 7)
	out, err := SMOTE(d, 1, 50, 3, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	_, pos := classCounts(out)
	if pos != 30 { // 20 + 50% of 20
		t.Errorf("positives = %d, want 30", pos)
	}
}

func TestSMOTEErrors(t *testing.T) {
	d := imbalanced(50, 5, 8)
	if _, err := SMOTE(d, 1, 100, 0, stats.NewRNG(1)); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := SMOTE(d, 1, -5, 3, stats.NewRNG(1)); !errors.Is(err, ErrBadPercent) {
		t.Errorf("percent<0: %v", err)
	}
	empty := imbalanced(50, 0, 9)
	if _, err := SMOTE(empty, 1, 100, 3, stats.NewRNG(1)); !errors.Is(err, ErrNoMinority) {
		t.Errorf("no minority: %v", err)
	}
}

func TestSMOTESingleMinorityInstance(t *testing.T) {
	// With one positive there are no neighbours: SMOTE degrades to
	// replacement copies rather than failing.
	d := imbalanced(20, 1, 10)
	out, err := SMOTE(d, 1, 300, 5, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	_, pos := classCounts(out)
	if pos != 4 {
		t.Errorf("positives = %d, want 4", pos)
	}
}

func TestSamplingDoesNotMutateInput(t *testing.T) {
	d := imbalanced(30, 6, 11)
	before := d.Clone()
	if _, err := SMOTE(d, 1, 200, 3, stats.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Undersample(d, 0, 50, stats.NewRNG(1)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != before.Len() {
		t.Fatal("input mutated")
	}
	for i := range d.Instances {
		for j := range d.Instances[i].Values {
			if d.Instances[i].Values[j] != before.Instances[i].Values[j] {
				t.Fatal("input values mutated")
			}
		}
	}
}

func TestSamplingDeterminism(t *testing.T) {
	d := imbalanced(60, 12, 12)
	a, err := SMOTE(d, 1, 300, 4, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SMOTE(d, 1, 300, 4, stats.NewRNG(42))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatal("lengths differ")
	}
	for i := range a.Instances {
		for j := range a.Instances[i].Values {
			if a.Instances[i].Values[j] != b.Instances[i].Values[j] {
				t.Fatal("same-seed SMOTE differs")
			}
		}
	}
}

func TestSMOTEProperty(t *testing.T) {
	// Output size always equals input + round(pos * pct/100).
	f := func(seed uint64, posRaw, pctRaw uint8) bool {
		nPos := int(posRaw%20) + 2
		pct := float64(int(pctRaw)%900 + 10)
		d := imbalanced(30, nPos, seed)
		out, err := SMOTE(d, 1, pct, 3, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		want := d.Len() + int(math.Round(float64(nPos)*pct/100))
		return out.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNeighborIndexMatchesDirectSMOTE(t *testing.T) {
	d := imbalanced(80, 15, 13)
	ni, err := BuildNeighborIndex(d, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := ni.SMOTE(300, 5, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SMOTE(d, 1, 300, 5, stats.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Instances {
		for j := range a.Instances[i].Values {
			if a.Instances[i].Values[j] != b.Instances[i].Values[j] {
				t.Fatal("cached and direct SMOTE disagree")
			}
		}
	}
}

func TestNeighborIndexKBounds(t *testing.T) {
	d := imbalanced(20, 6, 14)
	ni, err := BuildNeighborIndex(d, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ni.SMOTE(100, 4, stats.NewRNG(1)); !errors.Is(err, ErrBadK) {
		t.Errorf("k beyond index: %v", err)
	}
	if _, err := ni.SMOTE(100, 0, stats.NewRNG(1)); !errors.Is(err, ErrBadK) {
		t.Errorf("k=0: %v", err)
	}
	if _, err := BuildNeighborIndex(d, 1, 0); !errors.Is(err, ErrBadK) {
		t.Errorf("maxK=0: %v", err)
	}
	if _, err := BuildNeighborIndex(d, 9, 3); err == nil {
		t.Error("bad class should fail")
	}
}

func TestNeighborIndexOversample(t *testing.T) {
	d := imbalanced(40, 8, 15)
	ni, err := BuildNeighborIndex(d, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := ni.Oversample(200, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	_, pos := classCounts(out)
	if pos != 24 {
		t.Errorf("positives = %d, want 24", pos)
	}
}

func TestNearestNeighborsAreNearest(t *testing.T) {
	// Three tight positive clusters: neighbours must come from the same
	// cluster.
	d := dataset.New("c", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	d.MustAdd(dataset.Instance{Values: []float64{500}, Class: 0, Weight: 1})
	centers := []float64{0, 100, 200}
	for _, c := range centers {
		for k := 0; k < 3; k++ {
			d.MustAdd(dataset.Instance{Values: []float64{c + float64(k)}, Class: 1, Weight: 1})
		}
	}
	var minIdx []int
	for i := range d.Instances {
		if d.Instances[i].Class == 1 {
			minIdx = append(minIdx, i)
		}
	}
	lists := nearestNeighbors(d, minIdx, 2)
	for i, nn := range lists {
		self := d.Instances[minIdx[i]].Values[0]
		for _, j := range nn {
			if math.Abs(d.Instances[j].Values[0]-self) > 5 {
				t.Fatalf("neighbour of %v is %v: wrong cluster", self, d.Instances[j].Values[0])
			}
		}
	}
}
