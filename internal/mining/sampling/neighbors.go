package sampling

import (
	"errors"
	"fmt"

	"edem/internal/dataset"
	"edem/internal/stats"
)

// NeighborIndex caches the k-nearest-neighbour lists of a dataset's
// minority class so a refinement grid can evaluate many SMOTE
// configurations (different percentages and neighbour counts) against
// one training partition without recomputing the O(m²) neighbour
// search per configuration.
type NeighborIndex struct {
	d      *dataset.Dataset // instance-backed index (BuildNeighborIndex)
	st     *dataset.Store   // store-backed index (BuildViewIndex)
	class  int
	minIdx []int
	lists  [][]int
	maxK   int
}

// BuildNeighborIndex computes up to maxK nearest minority neighbours
// for every minority instance of d.
func BuildNeighborIndex(d *dataset.Dataset, minorityClass, maxK int) (*NeighborIndex, error) {
	if maxK < 1 {
		return nil, ErrBadK
	}
	if minorityClass < 0 || minorityClass >= len(d.ClassValues) {
		return nil, fmt.Errorf("sampling: class %d out of range", minorityClass)
	}
	var minIdx []int
	for i := range d.Instances {
		if d.Instances[i].Class == minorityClass {
			minIdx = append(minIdx, i)
		}
	}
	if len(minIdx) == 0 {
		return nil, ErrNoMinority
	}
	var lists [][]int
	if len(minIdx) > 1 {
		lists = nearestNeighbors(d, minIdx, maxK)
	} else {
		lists = make([][]int, 1)
	}
	return &NeighborIndex{d: d, class: minorityClass, minIdx: minIdx, lists: lists, maxK: maxK}, nil
}

// SMOTE generates percent% synthetic minority instances using the first
// k cached neighbours of each seed. k must not exceed the index's maxK.
func (ni *NeighborIndex) SMOTE(percent float64, k int, rng *stats.RNG) (*dataset.Dataset, error) {
	if k < 1 || k > ni.maxK {
		return nil, fmt.Errorf("%w: k=%d (index holds %d)", ErrBadK, k, ni.maxK)
	}
	trunc := make([][]int, len(ni.lists))
	for i, l := range ni.lists {
		if len(l) > k {
			l = l[:k]
		}
		trunc[i] = l
	}
	return smoteWith(ni.d, ni.class, ni.minIdx, trunc, percent, rng, false)
}

// Oversample generates percent% minority copies with replacement (the
// q=0 special case), using the cached minority indices.
func (ni *NeighborIndex) Oversample(percent float64, rng *stats.RNG) (*dataset.Dataset, error) {
	return smoteWith(ni.d, ni.class, ni.minIdx, nil, percent, rng, true)
}

// BuildViewIndex computes up to maxK nearest minority neighbours for
// every minority row of a columnar store. The lists match
// BuildNeighborIndex on the materialised partition bit for bit (shared
// neighbour-search core, same tie-breaks); the resulting index serves
// views via SMOTEView/OversampleView instead of cloned datasets.
func BuildViewIndex(st *dataset.Store, minorityClass, maxK int) (*NeighborIndex, error) {
	if maxK < 1 {
		return nil, ErrBadK
	}
	minIdx, err := storeMinority(st, minorityClass)
	if err != nil {
		return nil, err
	}
	var lists [][]int
	if len(minIdx) > 1 {
		lists = storeNeighbors(st, minIdx, maxK)
	} else {
		lists = make([][]int, 1)
	}
	return &NeighborIndex{st: st, class: minorityClass, minIdx: minIdx, lists: lists, maxK: maxK}, nil
}

// ErrNoStore is returned when a view method is called on an index built
// over a dataset rather than a columnar store.
var ErrNoStore = errors.New("sampling: neighbour index not store-backed")

// SMOTEView generates percent% synthetic minority rows from the first k
// cached neighbours of each seed, as a view of the index's store. Same
// RNG stream and synthetic values as SMOTE on the materialised
// partition.
func (ni *NeighborIndex) SMOTEView(percent float64, k int, rng *stats.RNG) (*dataset.View, error) {
	if ni.st == nil {
		return nil, ErrNoStore
	}
	if k < 1 || k > ni.maxK {
		return nil, fmt.Errorf("%w: k=%d (index holds %d)", ErrBadK, k, ni.maxK)
	}
	trunc := make([][]int, len(ni.lists))
	for i, l := range ni.lists {
		if len(l) > k {
			l = l[:k]
		}
		trunc[i] = l
	}
	specs, err := planSmote(ni.minIdx, trunc, percent, rng, false)
	if err != nil {
		return nil, err
	}
	return viewFromSpecs(ni.st, ni.class, ni.minIdx, specs), nil
}

// OversampleView generates percent% minority copies with replacement as
// a repeat view of the index's store (duplicate row references, no
// value copies). Same RNG stream as Oversample.
func (ni *NeighborIndex) OversampleView(percent float64, rng *stats.RNG) (*dataset.View, error) {
	if ni.st == nil {
		return nil, ErrNoStore
	}
	specs, err := planSmote(ni.minIdx, nil, percent, rng, true)
	if err != nil {
		return nil, err
	}
	return viewFromSpecs(ni.st, ni.class, ni.minIdx, specs), nil
}
