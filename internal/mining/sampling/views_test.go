package sampling

import (
	"testing"

	"edem/internal/dataset"
	"edem/internal/stats"
)

func imbalancedDataset(n int, seed uint64) *dataset.Dataset {
	attrs := []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NominalAttr("mode", "a", "b"),
		dataset.NumericAttr("y"),
	}
	d := dataset.New("views-test", attrs, []string{"nonfailure", "failure"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		class := 0
		if rng.Float64() < 0.12 {
			class = 1
		}
		d.MustAdd(dataset.Instance{
			Values: []float64{rng.Float64() * 100, float64(rng.Intn(2)), rng.Float64() * 10},
			Class:  class,
			Weight: 1,
		})
	}
	return d
}

// datasetsEqual compares two datasets instance by instance, value by
// value — byte-identical order included.
func datasetsEqual(t *testing.T, label string, want, got *dataset.Dataset) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("%s: %d instances, want %d", label, got.Len(), want.Len())
	}
	for i := range want.Instances {
		a, b := want.Instances[i], got.Instances[i]
		if a.Class != b.Class {
			t.Fatalf("%s: instance %d class %d, want %d", label, i, b.Class, a.Class)
		}
		if a.Weight != b.Weight {
			t.Fatalf("%s: instance %d weight %v, want %v", label, i, b.Weight, a.Weight)
		}
		for j := range a.Values {
			av, bv := a.Values[j], b.Values[j]
			if av != bv && !(dataset.IsMissing(av) && dataset.IsMissing(bv)) {
				t.Fatalf("%s: instance %d attr %d: %v, want %v", label, i, j, bv, av)
			}
		}
	}
}

// The view path must reproduce the dataset path exactly: same RNG
// stream, same instance order, same values. Materialising the view and
// comparing against the dataset transform pins all three.
func TestUndersampleViewMatchesDataset(t *testing.T) {
	d := imbalancedDataset(200, 1)
	st := dataset.NewStore(d, nil)
	for _, pct := range []float64{5, 35, 65, 100} {
		want, err := Undersample(d, 0, pct, stats.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		v, err := UndersampleView(st, 0, pct, stats.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		datasetsEqual(t, "undersample", want, v.Materialize())
	}
}

func TestOversampleViewMatchesDataset(t *testing.T) {
	d := imbalancedDataset(200, 2)
	st := dataset.NewStore(d, nil)
	for _, pct := range []float64{40, 100, 300, 1500} {
		want, err := Oversample(d, 1, pct, stats.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		v, err := OversampleView(st, 1, pct, stats.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		datasetsEqual(t, "oversample", want, v.Materialize())
	}
}

func TestSMOTEViewMatchesDataset(t *testing.T) {
	d := imbalancedDataset(200, 3)
	st := dataset.NewStore(d, nil)
	for _, pct := range []float64{40, 100, 300} {
		for _, k := range []int{1, 5} {
			want, err := SMOTE(d, 1, pct, k, stats.NewRNG(99))
			if err != nil {
				t.Fatal(err)
			}
			v, err := SMOTEView(st, 1, pct, k, stats.NewRNG(99))
			if err != nil {
				t.Fatal(err)
			}
			datasetsEqual(t, "smote", want, v.Materialize())
		}
	}
}

// The store-backed index must agree with the instance-backed index both
// on neighbour lists (shared search core) and on the generated views.
func TestViewIndexMatchesNeighborIndex(t *testing.T) {
	d := imbalancedDataset(150, 4)
	st := dataset.NewStore(d, nil)
	ni, err := BuildNeighborIndex(d, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	vi, err := BuildViewIndex(st, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ni.lists) != len(vi.lists) {
		t.Fatalf("list counts diverge: %d vs %d", len(ni.lists), len(vi.lists))
	}
	for i := range ni.lists {
		if len(ni.lists[i]) != len(vi.lists[i]) {
			t.Fatalf("minority %d: list lengths diverge", i)
		}
		for j := range ni.lists[i] {
			if ni.lists[i][j] != vi.lists[i][j] {
				t.Fatalf("minority %d neighbour %d: %d vs %d", i, j, ni.lists[i][j], vi.lists[i][j])
			}
		}
	}

	for _, k := range []int{1, 7} {
		want, err := ni.SMOTE(300, k, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		v, err := vi.SMOTEView(300, k, stats.NewRNG(5))
		if err != nil {
			t.Fatal(err)
		}
		datasetsEqual(t, "index smote", want, v.Materialize())
	}
	want, err := ni.Oversample(500, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	v, err := vi.OversampleView(500, stats.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, "index oversample", want, v.Materialize())

	if _, err := ni.SMOTEView(100, 1, stats.NewRNG(1)); err != ErrNoStore {
		t.Fatalf("dataset-backed index SMOTEView: %v, want ErrNoStore", err)
	}
}

// Single-member minority degenerates SMOTE to replacement copies; the
// view path must produce a repeat view with the same rows.
func TestSMOTEViewSingleMinority(t *testing.T) {
	d := imbalancedDataset(40, 5)
	for i := range d.Instances {
		d.Instances[i].Class = 0
	}
	d.Instances[3].Class = 1
	st := dataset.NewStore(d, nil)
	want, err := SMOTE(d, 1, 300, 5, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	v, err := SMOTEView(st, 1, 300, 5, stats.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	datasetsEqual(t, "single minority", want, v.Materialize())
	if v.HasMissing() {
		t.Fatal("repeat view should keep the merge order")
	}
}

func TestViewErrorsMatchDataset(t *testing.T) {
	d := imbalancedDataset(50, 6)
	st := dataset.NewStore(d, nil)
	if _, err := UndersampleView(st, 0, 0, stats.NewRNG(1)); err == nil {
		t.Fatal("keep 0% accepted")
	}
	if _, err := UndersampleView(st, 9, 50, stats.NewRNG(1)); err == nil {
		t.Fatal("out-of-range class accepted")
	}
	if _, err := OversampleView(st, 1, -5, stats.NewRNG(1)); err == nil {
		t.Fatal("negative percent accepted")
	}
	if _, err := SMOTEView(st, 1, 100, 0, stats.NewRNG(1)); err != ErrBadK {
		t.Fatal("k=0 accepted")
	}
	onlyMaj := imbalancedDataset(30, 7)
	for i := range onlyMaj.Instances {
		onlyMaj.Instances[i].Class = 0
	}
	if _, err := OversampleView(dataset.NewStore(onlyMaj, nil), 1, 100, stats.NewRNG(1)); err != ErrNoMinority {
		t.Fatalf("empty minority: %v, want ErrNoMinority", err)
	}
}
