package sampling

// This file holds the view-returning variants of the sampling
// treatments, for the refinement grid's fold-shared columnar store
// (DESIGN.md §10). Each
// variant consumes the exact RNG stream of its dataset counterpart —
// both run the same plan function (undersampleOrder, planSmote) — and
// returns a dataset.View describing the transformed training set
// against the store, instead of materialising cloned instances:
// undersampling filters the store's presorted orders, oversampling
// repeats row references, and SMOTE sorts only the synthetic rows and
// merges them into the presorted base order.

import (
	"fmt"
	"math"

	"edem/internal/dataset"
	"edem/internal/stats"
)

// UndersampleView is Undersample against a columnar store: the view
// keeps keepPercent% of the majority-class rows (all other classes in
// full), in the same instance order and from the same RNG stream as the
// dataset path.
func UndersampleView(st *dataset.Store, majorityClass int, keepPercent float64, rng *stats.RNG) (*dataset.View, error) {
	if majorityClass < 0 || majorityClass >= len(st.ClassValues()) {
		return nil, fmt.Errorf("sampling: class %d out of range", majorityClass)
	}
	classes := st.Classes()
	order, err := undersampleOrder(st.Len(), func(i int) int { return classes[i] }, majorityClass, keepPercent, rng)
	if err != nil {
		return nil, err
	}
	rows := make([]int32, len(order))
	for i, r := range order {
		rows[i] = int32(r)
	}
	return st.SelectView(rows), nil
}

// OversampleView is Oversample against a columnar store: percent%
// minority copies with replacement, as repeated row references.
func OversampleView(st *dataset.Store, minorityClass int, percent float64, rng *stats.RNG) (*dataset.View, error) {
	minIdx, err := storeMinority(st, minorityClass)
	if err != nil {
		return nil, err
	}
	specs, err := planSmote(minIdx, nil, percent, rng, true)
	if err != nil {
		return nil, err
	}
	return viewFromSpecs(st, minorityClass, minIdx, specs), nil
}

// SMOTEView is SMOTE against a columnar store: percent% synthetic
// minority rows interpolated towards k nearest minority neighbours,
// appended to the store through an extend view.
func SMOTEView(st *dataset.Store, minorityClass int, percent float64, k int, rng *stats.RNG) (*dataset.View, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	minIdx, err := storeMinority(st, minorityClass)
	if err != nil {
		return nil, err
	}
	var neighbors [][]int
	if len(minIdx) > 1 {
		neighbors = storeNeighbors(st, minIdx, k)
	}
	specs, err := planSmote(minIdx, neighbors, percent, rng, false)
	if err != nil {
		return nil, err
	}
	return viewFromSpecs(st, minorityClass, minIdx, specs), nil
}

// storeMinority collects the store rows of the minority class.
func storeMinority(st *dataset.Store, minorityClass int) ([]int, error) {
	if minorityClass < 0 || minorityClass >= len(st.ClassValues()) {
		return nil, fmt.Errorf("sampling: class %d out of range", minorityClass)
	}
	var minIdx []int
	for i, c := range st.Classes() {
		if c == minorityClass {
			minIdx = append(minIdx, i)
		}
	}
	if len(minIdx) == 0 {
		return nil, ErrNoMinority
	}
	return minIdx, nil
}

// storeNeighbors runs the shared neighbour-search core over the store's
// columns; the lists match nearestNeighbors on the materialised dataset
// bit for bit.
func storeNeighbors(st *dataset.Store, minIdx []int, k int) [][]int {
	lo, hi := columnRanges(st)
	cols := st.Cols()
	return nearestNeighborsAt(st.Attrs(), func(row, attr int) float64 { return cols[attr][row] }, lo, hi, minIdx, k)
}

// columnRanges is attributeRanges over a store's columns.
func columnRanges(st *dataset.Store) (lo, hi []float64) {
	attrs := st.Attrs()
	lo = make([]float64, len(attrs))
	hi = make([]float64, len(attrs))
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	for i, col := range st.Cols() {
		for _, v := range col {
			if dataset.IsMissing(v) {
				continue
			}
			if v < lo[i] {
				lo[i] = v
			}
			if v > hi[i] {
				hi[i] = v
			}
		}
	}
	return lo, hi
}

// viewFromSpecs realises a synthetic-instance plan against the store.
// A plan of plain copies (oversampling, or SMOTE degenerating to
// replacement when the minority has a single member) becomes a repeat
// view — duplicate row references, no value copies. A plan with
// interpolations becomes an extend view holding the m synthetic rows.
func viewFromSpecs(st *dataset.Store, minorityClass int, minIdx []int, specs []synSpec) *dataset.View {
	allCopies := true
	for _, sp := range specs {
		if sp.nn >= 0 {
			allCopies = false
			break
		}
	}
	if allCopies {
		extra := make([]int32, len(specs))
		for i, sp := range specs {
			extra[i] = int32(minIdx[sp.seedPos])
		}
		return st.RepeatView(extra)
	}

	attrs := st.Attrs()
	cols := st.Cols()
	weights := st.Weights()
	syn := make([]dataset.Synthetic, len(specs))
	valArena := make([]float64, len(specs)*len(attrs))
	for i, sp := range specs {
		seedRow := minIdx[sp.seedPos]
		vs := valArena[i*len(attrs) : (i+1)*len(attrs)]
		for a := range attrs {
			sv := cols[a][seedRow]
			vs[a] = sv
			if sp.nn < 0 {
				continue
			}
			nv := cols[a][sp.nn]
			if dataset.IsMissing(sv) || dataset.IsMissing(nv) {
				continue
			}
			if attrs[a].Type == dataset.Numeric {
				vs[a] = sv + sp.q*(nv-sv)
			} else if sp.q >= 0.5 {
				vs[a] = nv
			}
		}
		syn[i] = dataset.Synthetic{Values: vs, Class: minorityClass, Weight: weights[seedRow]}
	}
	return st.ExtendView(syn)
}
