// Package attrsel implements attribute evaluation — the Weka-style
// rankers that order instrumented variables by how much information
// they individually carry about the failure class. Rankings guide both
// instrumentation (which variables are worth logging) and detector
// placement discussions (paper §II: the location problem).
//
// Role in the methodology: an aid to Step 2's preprocessing decisions
// and to the location problem, not part of the Table III/IV pipeline.
// Concurrency: evaluators are stateless value types; Rank reads the
// dataset without mutating or retaining it, so concurrent rankings of
// shared data are safe.
package attrsel

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"edem/internal/dataset"
)

// Score is one attribute's evaluation.
type Score struct {
	Attr  int
	Name  string
	Value float64
}

// Method selects the evaluation criterion.
type Method int

// Supported criteria.
const (
	// InfoGain ranks by mutual information between the (MDL-style
	// binary-split) attribute and the class.
	InfoGain Method = iota + 1
	// GainRatio ranks by information gain normalised by split entropy,
	// C4.5's selection criterion.
	GainRatio
	// Symmetrical ranks by symmetrical uncertainty,
	// 2*IG / (H(attr)+H(class)).
	Symmetrical
)

// String returns the criterion name.
func (m Method) String() string {
	switch m {
	case InfoGain:
		return "InfoGain"
	case GainRatio:
		return "GainRatio"
	case Symmetrical:
		return "SymmetricalUncertainty"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// ErrEmpty is returned when ranking an empty dataset.
var ErrEmpty = errors.New("attrsel: empty dataset")

// Rank scores every attribute and returns the scores in descending
// order. Numeric attributes are evaluated at their single best binary
// threshold (the same candidate set C4.5 uses at the root); nominal
// attributes by their full multiway partition.
func Rank(d *dataset.Dataset, m Method) ([]Score, error) {
	if d.Len() == 0 {
		return nil, ErrEmpty
	}
	nClasses := len(d.ClassValues)
	classDist := make([]float64, nClasses)
	for i := range d.Instances {
		classDist[d.Instances[i].Class] += d.Instances[i].Weight
	}
	totalW := sumOf(classDist)
	classEnt := entropyDist(classDist, totalW)

	scores := make([]Score, 0, len(d.Attrs))
	for a := range d.Attrs {
		gain, splitEnt := attributeGain(d, a, classDist, totalW, classEnt)
		v := gain
		switch m {
		case GainRatio:
			if splitEnt > 1e-12 {
				v = gain / splitEnt
			} else {
				v = 0
			}
		case Symmetrical:
			if denom := splitEnt + classEnt; denom > 1e-12 {
				v = 2 * gain / denom
			} else {
				v = 0
			}
		}
		scores = append(scores, Score{Attr: a, Name: d.Attrs[a].Name, Value: v})
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].Value > scores[j].Value })
	return scores, nil
}

// attributeGain returns (information gain, split entropy) of the best
// split on attribute a.
func attributeGain(d *dataset.Dataset, a int, classDist []float64, totalW, classEnt float64) (float64, float64) {
	nClasses := len(classDist)
	if d.Attrs[a].Type == dataset.Nominal {
		nVals := len(d.Attrs[a].Values)
		branch := make([][]float64, nVals)
		for i := range branch {
			branch[i] = make([]float64, nClasses)
		}
		for i := range d.Instances {
			v := d.Instances[i].Values[a]
			if dataset.IsMissing(v) {
				continue
			}
			branch[int(v)][d.Instances[i].Class] += d.Instances[i].Weight
		}
		childEnt, splitEnt := 0.0, 0.0
		for _, bd := range branch {
			w := sumOf(bd)
			if w > 0 {
				childEnt += w / totalW * entropyDist(bd, w)
				p := w / totalW
				splitEnt -= p * math.Log2(p)
			}
		}
		return classEnt - childEnt, splitEnt
	}

	// Numeric: best binary threshold.
	type vw struct {
		v     float64
		w     float64
		class int
	}
	var vals []vw
	for i := range d.Instances {
		v := d.Instances[i].Values[a]
		if dataset.IsMissing(v) {
			continue
		}
		vals = append(vals, vw{v: v, w: d.Instances[i].Weight, class: d.Instances[i].Class})
	}
	if len(vals) < 2 {
		return 0, 0
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })
	left := make([]float64, nClasses)
	right := append([]float64(nil), classDist...)
	bestGain, bestLeftW := 0.0, 0.0
	leftW := 0.0
	for i := 0; i < len(vals)-1; i++ {
		left[vals[i].class] += vals[i].w
		right[vals[i].class] -= vals[i].w
		leftW += vals[i].w
		if vals[i].v == vals[i+1].v {
			continue
		}
		rw := totalW - leftW
		childEnt := (leftW*entropyDist(left, leftW) + rw*entropyDist(right, rw)) / totalW
		if g := classEnt - childEnt; g > bestGain {
			bestGain = g
			bestLeftW = leftW
		}
	}
	if bestGain == 0 {
		return 0, 0
	}
	pl := bestLeftW / totalW
	pr := 1 - pl
	splitEnt := 0.0
	if pl > 0 {
		splitEnt -= pl * math.Log2(pl)
	}
	if pr > 0 {
		splitEnt -= pr * math.Log2(pr)
	}
	return bestGain, splitEnt
}

// Top returns the attribute indices of the best k scores.
func Top(scores []Score, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	out := make([]int, 0, k)
	for _, s := range scores[:k] {
		out = append(out, s.Attr)
	}
	return out
}

// Project returns a dataset containing only the given attributes (by
// index), preserving instance order and class labels.
func Project(d *dataset.Dataset, attrs []int) (*dataset.Dataset, error) {
	selected := make([]dataset.Attribute, 0, len(attrs))
	for _, a := range attrs {
		if a < 0 || a >= len(d.Attrs) {
			return nil, fmt.Errorf("attrsel: attribute index %d out of range", a)
		}
		selected = append(selected, d.Attrs[a])
	}
	out := dataset.New(d.Name, selected, d.ClassValues)
	for i := range d.Instances {
		in := dataset.Instance{
			Values: make([]float64, len(attrs)),
			Class:  d.Instances[i].Class,
			Weight: d.Instances[i].Weight,
		}
		for j, a := range attrs {
			in.Values[j] = d.Instances[i].Values[a]
		}
		if err := out.Add(in); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func entropyDist(dist []float64, total float64) float64 {
	if total <= 0 {
		return 0
	}
	e := 0.0
	for _, w := range dist {
		if w > 0 {
			p := w / total
			e -= p * math.Log2(p)
		}
	}
	return e
}
