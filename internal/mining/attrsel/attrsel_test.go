package attrsel

import (
	"errors"
	"testing"

	"edem/internal/dataset"
	"edem/internal/stats"
)

// signalAndNoise: class determined by x (numeric) and mode (nominal);
// noise carries nothing.
func signalAndNoise(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("sn", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("noise"),
		dataset.NominalAttr("mode", "m0", "m1"),
	}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := rng.Float64()
		mode := rng.Intn(2)
		class := 0
		if x > 0.5 && mode == 1 {
			class = 1
		}
		d.MustAdd(dataset.Instance{
			Values: []float64{x, rng.Float64(), float64(mode)},
			Class:  class, Weight: 1,
		})
	}
	return d
}

func TestRankOrdersSignalFirst(t *testing.T) {
	d := signalAndNoise(600, 1)
	for _, m := range []Method{InfoGain, GainRatio, Symmetrical} {
		scores, err := Rank(d, m)
		if err != nil {
			t.Fatal(err)
		}
		if len(scores) != 3 {
			t.Fatalf("%v: scores = %d", m, len(scores))
		}
		// noise must rank last under every criterion.
		if scores[2].Name != "noise" {
			t.Errorf("%v: ranking = %v, %v, %v", m, scores[0].Name, scores[1].Name, scores[2].Name)
		}
		if scores[0].Value < scores[2].Value {
			t.Errorf("%v: descending order violated", m)
		}
		for _, s := range scores {
			if s.Value < 0 {
				t.Errorf("%v: negative score for %s", m, s.Name)
			}
		}
	}
}

func TestRankEmpty(t *testing.T) {
	d := dataset.New("e", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	if _, err := Rank(d, InfoGain); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestTopAndProject(t *testing.T) {
	d := signalAndNoise(300, 2)
	scores, err := Rank(d, InfoGain)
	if err != nil {
		t.Fatal(err)
	}
	top := Top(scores, 2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	proj, err := Project(d, top)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Attrs) != 2 || proj.Len() != d.Len() {
		t.Fatalf("projection shape: %d attrs, %d rows", len(proj.Attrs), proj.Len())
	}
	if err := proj.Validate(); err != nil {
		t.Fatal(err)
	}
	// Over-asking is clamped.
	if got := Top(scores, 99); len(got) != 3 {
		t.Fatalf("clamped top = %v", got)
	}
	if _, err := Project(d, []int{7}); err == nil {
		t.Fatal("out-of-range projection should fail")
	}
}

func TestMethodString(t *testing.T) {
	if InfoGain.String() != "InfoGain" || GainRatio.String() != "GainRatio" ||
		Symmetrical.String() != "SymmetricalUncertainty" {
		t.Error("method names")
	}
	if Method(9).String() != "Method(9)" {
		t.Error("unknown method rendering")
	}
}

func TestRankConstantAttribute(t *testing.T) {
	d := dataset.New("c", []dataset.Attribute{
		dataset.NumericAttr("const"),
		dataset.NumericAttr("x"),
	}, []string{"a", "b"})
	rng := stats.NewRNG(3)
	for i := 0; i < 100; i++ {
		x := rng.Float64()
		class := 0
		if x > 0.5 {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{7, x}, Class: class, Weight: 1})
	}
	scores, err := Rank(d, GainRatio)
	if err != nil {
		t.Fatal(err)
	}
	// The constant attribute carries nothing and must score 0.
	for _, s := range scores {
		if s.Name == "const" && s.Value != 0 {
			t.Errorf("constant attribute scored %v", s.Value)
		}
	}
}
