package knn

import (
	"testing"

	"edem/internal/dataset"
	"edem/internal/stats"
)

func clusters(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("c", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
		dataset.NominalAttr("m", "a", "b"),
	}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			d.MustAdd(dataset.Instance{
				Values: []float64{rng.Float64(), rng.Float64(), 0},
				Class:  0, Weight: 1,
			})
		} else {
			d.MustAdd(dataset.Instance{
				Values: []float64{5 + rng.Float64(), 5 + rng.Float64(), 1},
				Class:  1, Weight: 1,
			})
		}
	}
	return d
}

func TestKNNSeparatesClusters(t *testing.T) {
	d := clusters(100, 1)
	model, err := Learner{K: 3}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if got := model.Classify([]float64{0.5, 0.5, 0}); got != 0 {
		t.Errorf("near cluster 0 classified %d", got)
	}
	if got := model.Classify([]float64{5.5, 5.5, 1}); got != 1 {
		t.Errorf("near cluster 1 classified %d", got)
	}
}

func TestKNNDefaults(t *testing.T) {
	if (Learner{}).Name() != "3-NN" {
		t.Errorf("name = %q", (Learner{}).Name())
	}
	if (Learner{K: 7}).Name() != "7-NN" {
		t.Errorf("name = %q", (Learner{K: 7}).Name())
	}
}

func TestKNNEmptyTraining(t *testing.T) {
	d := dataset.New("e", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	if _, err := (Learner{}).Fit(d); err == nil {
		t.Error("empty training should fail")
	}
}

func TestKNNMissingValues(t *testing.T) {
	d := clusters(60, 2)
	d.Instances[0].Values[0] = dataset.Missing
	model, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	got := model.Classify([]float64{dataset.Missing, 0.5, 0})
	if got != 0 && got != 1 {
		t.Fatalf("class = %d", got)
	}
}

func TestKNNWeightedVote(t *testing.T) {
	// Two heavy positives outvote three light negatives among k=5.
	d := dataset.New("w", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	for i := 0; i < 3; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{float64(i) * 0.01}, Class: 0, Weight: 1})
	}
	for i := 0; i < 2; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{0.05 + float64(i)*0.01}, Class: 1, Weight: 10})
	}
	model, err := Learner{K: 5}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if model.Classify([]float64{0.02}) != 1 {
		t.Fatal("weights must drive the vote")
	}
}

func TestKNNDoesNotAliasTraining(t *testing.T) {
	d := clusters(20, 3)
	model, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	d.Instances[0].Values[0] = 1e9 // mutate the original
	m := model.(*Model)
	if m.train[0].Values[0] == 1e9 {
		t.Fatal("model aliases the training dataset")
	}
}
