// Package knn implements a k-nearest-neighbour classifier over
// min-max-normalised Euclidean distance, used as a non-symbolic
// comparator in the learner-comparison ablation: its decision boundary
// cannot be extracted as a first-order predicate, which is exactly why
// the paper restricts detector generation to symbolic learners.
//
// Role in the methodology: a Step 3 comparator only. Concurrency: Fit
// copies the training instances into the classifier (the one learner
// here that retains data — its own copy, never the caller's dataset);
// the fitted classifier is immutable and safe for concurrent use.
package knn

import (
	"fmt"
	"math"
	"sort"

	"edem/internal/dataset"
	"edem/internal/mining"
)

// Learner fits k-NN models (lazy: fitting stores the training data and
// the normalisation ranges).
type Learner struct {
	// K is the neighbour count (default 3).
	K int
}

var _ mining.Learner = Learner{}

// Name implements mining.Learner.
func (l Learner) Name() string { return fmt.Sprintf("%d-NN", l.k()) }

func (l Learner) k() int {
	if l.K <= 0 {
		return 3
	}
	return l.K
}

// Model is a fitted k-NN classifier.
type Model struct {
	k       int
	attrs   []dataset.Attribute
	classes int
	train   []dataset.Instance
	lo, hi  []float64
}

var _ mining.Classifier = (*Model)(nil)

// Fit implements mining.Learner.
func (l Learner) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("knn: empty training set")
	}
	cp := d.Clone()
	lo := make([]float64, len(d.Attrs))
	hi := make([]float64, len(d.Attrs))
	for i := range lo {
		lo[i] = math.Inf(1)
		hi[i] = math.Inf(-1)
	}
	for i := range cp.Instances {
		for a, v := range cp.Instances[i].Values {
			if dataset.IsMissing(v) {
				continue
			}
			if v < lo[a] {
				lo[a] = v
			}
			if v > hi[a] {
				hi[a] = v
			}
		}
	}
	return &Model{
		k:       l.k(),
		attrs:   d.Attrs,
		classes: len(d.ClassValues),
		train:   cp.Instances,
		lo:      lo,
		hi:      hi,
	}, nil
}

// Classify implements mining.Classifier: weighted vote of the k nearest
// training instances.
func (m *Model) Classify(values []float64) int {
	type cand struct {
		d float64
		c int
		w float64
	}
	cands := make([]cand, 0, len(m.train))
	for i := range m.train {
		cands = append(cands, cand{
			d: m.distance(values, m.train[i].Values),
			c: m.train[i].Class,
			w: m.train[i].Weight,
		})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d < cands[b].d })
	votes := make([]float64, m.classes)
	n := m.k
	if n > len(cands) {
		n = len(cands)
	}
	for i := 0; i < n; i++ {
		votes[cands[i].c] += cands[i].w
	}
	best := 0
	for c := 1; c < len(votes); c++ {
		if votes[c] > votes[best] {
			best = c
		}
	}
	return best
}

func (m *Model) distance(a, b []float64) float64 {
	s := 0.0
	for i := range m.attrs {
		av, bv := a[i], b[i]
		if dataset.IsMissing(av) || dataset.IsMissing(bv) {
			s++
			continue
		}
		if m.attrs[i].Type == dataset.Nominal {
			if av != bv {
				s++
			}
			continue
		}
		span := m.hi[i] - m.lo[i]
		if span <= 0 {
			continue
		}
		diff := (av - bv) / span
		s += diff * diff
	}
	return s
}
