package discretize

import (
	"errors"
	"testing"

	"edem/internal/dataset"
	"edem/internal/stats"
)

func twoGaussians(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("g", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NominalAttr("m", "a", "b"),
	}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			d.MustAdd(dataset.Instance{Values: []float64{rng.NormFloat64(), 0}, Class: 0, Weight: 1})
		} else {
			d.MustAdd(dataset.Instance{Values: []float64{6 + rng.NormFloat64(), 1}, Class: 1, Weight: 1})
		}
	}
	return d
}

func TestFitEqualWidth(t *testing.T) {
	d := dataset.New("w", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	for _, v := range []float64{0, 2, 4, 6, 8, 10} {
		d.MustAdd(dataset.Instance{Values: []float64{v}, Class: 0, Weight: 1})
	}
	z, err := FitEqualWidth(d, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6, 8}
	if len(z.Cuts[0]) != len(want) {
		t.Fatalf("cuts = %v", z.Cuts[0])
	}
	for i, c := range want {
		if diff := z.Cuts[0][i] - c; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("cut %d = %v, want %v", i, z.Cuts[0][i], c)
		}
	}
}

func TestFitEqualFrequency(t *testing.T) {
	d := dataset.New("f", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	for i := 0; i < 100; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{float64(i)}, Class: 0, Weight: 1})
	}
	z, err := FitEqualFrequency(d, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, err := z.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	for i := range out.Instances {
		counts[int(out.Instances[i].Values[0])]++
	}
	for b, n := range counts {
		if n < 20 || n > 30 {
			t.Errorf("bin %d holds %d values, want ~25", b, n)
		}
	}
}

func TestFitMDLFindsSeparatingCut(t *testing.T) {
	d := twoGaussians(400, 1)
	z, err := FitMDL(d)
	if err != nil {
		t.Fatal(err)
	}
	cuts := z.Cuts[0]
	if len(cuts) == 0 {
		t.Fatal("MDL found no cut on separable data")
	}
	// A cut should land between the class means (0 and 6).
	found := false
	for _, c := range cuts {
		if c > 1 && c < 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("no cut in the separation gap: %v", cuts)
	}
	// Nominal attributes stay untouched.
	if len(z.Cuts[1]) != 0 {
		t.Errorf("nominal attribute got cuts: %v", z.Cuts[1])
	}
}

func TestFitMDLRejectsNoise(t *testing.T) {
	// Labels independent of x: the MDL criterion should accept no cut.
	d := dataset.New("n", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	rng := stats.NewRNG(2)
	for i := 0; i < 400; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{rng.Float64()}, Class: rng.Intn(2), Weight: 1})
	}
	z, err := FitMDL(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(z.Cuts[0]) != 0 {
		t.Errorf("MDL accepted cuts on noise: %v", z.Cuts[0])
	}
}

func TestApplyProducesValidNominalDataset(t *testing.T) {
	d := twoGaussians(200, 3)
	d.Instances[5].Values[0] = dataset.Missing
	z, err := FitMDL(d)
	if err != nil {
		t.Fatal(err)
	}
	out, err := z.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("discretized dataset invalid: %v", err)
	}
	if out.Attrs[0].Type != dataset.Nominal {
		t.Error("numeric attribute not converted")
	}
	if !dataset.IsMissing(out.Instances[5].Values[0]) {
		t.Error("missing value not preserved")
	}
	// Interval labels carry the boundary syntax.
	if out.Attrs[0].Values[0][:5] != "(-inf" {
		t.Errorf("first label = %q", out.Attrs[0].Values[0])
	}
}

func TestApplyBoundaryMembership(t *testing.T) {
	z := &Discretizer{Cuts: [][]float64{{10, 20}}}
	for _, tt := range []struct {
		v    float64
		want int
	}{
		{5, 0}, {10, 0}, {10.5, 1}, {20, 1}, {21, 2},
	} {
		if got := binOf(z.Cuts[0], tt.v); got != tt.want {
			t.Errorf("binOf(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestApplyArityMismatch(t *testing.T) {
	d := twoGaussians(20, 4)
	z := &Discretizer{Cuts: [][]float64{{1}}}
	if _, err := z.Apply(d); err == nil {
		t.Fatal("arity mismatch should fail")
	}
}

func TestFitErrors(t *testing.T) {
	empty := dataset.New("e", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a"})
	if _, err := FitEqualWidth(empty, 3); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitEqualFrequency(empty, 3); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	if _, err := FitMDL(empty); !errors.Is(err, ErrNoData) {
		t.Errorf("err = %v", err)
	}
	d := twoGaussians(10, 5)
	if _, err := FitEqualWidth(d, 1); err == nil {
		t.Error("1 bin should fail")
	}
	if _, err := FitEqualFrequency(d, 0); err == nil {
		t.Error("0 bins should fail")
	}
}
