// Package discretize converts numeric attributes into nominal interval
// attributes — unsupervised (equal-width, equal-frequency) and
// supervised (Fayyad & Irani's entropy minimisation with the MDL
// stopping criterion, the discretizer bundled with the Weka suite the
// paper uses). Discretization lets frequency-based learners such as
// Naïve Bayes and the rule inducers consume the continuous program
// state captured by fault injection.
//
// Role in the methodology: a Step 2 preprocessing option feeding the
// comparator learners of the ablations. Concurrency: a fitted
// Discretizer is immutable and safe for concurrent Apply calls; Fit
// reads the training data without mutating it, and Apply returns a new
// dataset, leaving its input untouched.
package discretize

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"

	"edem/internal/dataset"
)

// Discretizer holds per-attribute cut points. Numeric attribute i is
// mapped to the interval index found by binary search over Cuts[i];
// attributes with no cuts (nominal inputs, or nothing to gain) pass
// through unchanged.
type Discretizer struct {
	Cuts  [][]float64
	attrs []dataset.Attribute
}

// ErrNoData is returned when fitting on an empty dataset.
var ErrNoData = errors.New("discretize: empty dataset")

// FitEqualWidth computes bins-1 equally spaced cut points per numeric
// attribute over its observed range.
func FitEqualWidth(d *dataset.Dataset, bins int) (*Discretizer, error) {
	if d.Len() == 0 {
		return nil, ErrNoData
	}
	if bins < 2 {
		return nil, fmt.Errorf("discretize: need >= 2 bins, got %d", bins)
	}
	z := &Discretizer{Cuts: make([][]float64, len(d.Attrs)), attrs: d.Attrs}
	for a := range d.Attrs {
		if d.Attrs[a].Type != dataset.Numeric {
			continue
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range d.Instances {
			v := d.Instances[i].Values[a]
			if dataset.IsMissing(v) {
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if !(hi > lo) {
			continue // constant or empty column
		}
		width := (hi - lo) / float64(bins)
		cuts := make([]float64, 0, bins-1)
		for b := 1; b < bins; b++ {
			cuts = append(cuts, lo+width*float64(b))
		}
		z.Cuts[a] = cuts
	}
	return z, nil
}

// FitEqualFrequency computes cut points so each bin holds roughly the
// same number of observed values.
func FitEqualFrequency(d *dataset.Dataset, bins int) (*Discretizer, error) {
	if d.Len() == 0 {
		return nil, ErrNoData
	}
	if bins < 2 {
		return nil, fmt.Errorf("discretize: need >= 2 bins, got %d", bins)
	}
	z := &Discretizer{Cuts: make([][]float64, len(d.Attrs)), attrs: d.Attrs}
	for a := range d.Attrs {
		if d.Attrs[a].Type != dataset.Numeric {
			continue
		}
		var vals []float64
		for i := range d.Instances {
			v := d.Instances[i].Values[a]
			if !dataset.IsMissing(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			continue
		}
		sort.Float64s(vals)
		var cuts []float64
		prev := math.Inf(-1)
		for b := 1; b < bins; b++ {
			c := vals[len(vals)*b/bins]
			if c != prev && c > vals[0] {
				cuts = append(cuts, c)
				prev = c
			}
		}
		z.Cuts[a] = cuts
	}
	return z, nil
}

// FitMDL computes supervised cut points per numeric attribute by
// recursive entropy minimisation with the Fayyad-Irani MDL stopping
// criterion: a binary cut is accepted only when its information gain
// exceeds (log2(N-1) + log2(3^k - 2) - k*E + k1*E1 + k2*E2) / N.
func FitMDL(d *dataset.Dataset) (*Discretizer, error) {
	if d.Len() == 0 {
		return nil, ErrNoData
	}
	nClasses := len(d.ClassValues)
	z := &Discretizer{Cuts: make([][]float64, len(d.Attrs)), attrs: d.Attrs}
	for a := range d.Attrs {
		if d.Attrs[a].Type != dataset.Numeric {
			continue
		}
		type vc struct {
			v float64
			c int
		}
		var vals []vc
		for i := range d.Instances {
			v := d.Instances[i].Values[a]
			if !dataset.IsMissing(v) {
				vals = append(vals, vc{v: v, c: d.Instances[i].Class})
			}
		}
		if len(vals) < 4 {
			continue
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })
		values := make([]float64, len(vals))
		classes := make([]int, len(vals))
		for i, x := range vals {
			values[i] = x.v
			classes[i] = x.c
		}
		var cuts []float64
		mdlSplit(values, classes, 0, len(values), nClasses, &cuts)
		sort.Float64s(cuts)
		z.Cuts[a] = cuts
	}
	return z, nil
}

// mdlSplit recursively partitions [lo,hi) of the sorted values.
func mdlSplit(values []float64, classes []int, lo, hi, nClasses int, cuts *[]float64) {
	n := hi - lo
	if n < 4 {
		return
	}
	total := make([]float64, nClasses)
	for i := lo; i < hi; i++ {
		total[classes[i]]++
	}
	baseEnt := entropyOf(total, float64(n))

	left := make([]float64, nClasses)
	right := append([]float64(nil), total...)

	bestGain := -1.0
	bestIdx := -1
	var bestLeftEnt, bestRightEnt float64
	var bestK1, bestK2 int
	for i := lo; i < hi-1; i++ {
		left[classes[i]]++
		right[classes[i]]--
		if values[i] == values[i+1] {
			continue
		}
		nl := float64(i - lo + 1)
		nr := float64(hi - i - 1)
		el := entropyOf(left, nl)
		er := entropyOf(right, nr)
		gain := baseEnt - (nl*el+nr*er)/float64(n)
		if gain > bestGain {
			bestGain = gain
			bestIdx = i
			bestLeftEnt, bestRightEnt = el, er
			bestK1, bestK2 = distinctClasses(left), distinctClasses(right)
		}
	}
	if bestIdx < 0 {
		return
	}

	k := distinctClasses(total)
	delta := math.Log2(math.Pow(3, float64(k))-2) -
		(float64(k)*baseEnt - float64(bestK1)*bestLeftEnt - float64(bestK2)*bestRightEnt)
	threshold := (math.Log2(float64(n-1)) + delta) / float64(n)
	if bestGain <= threshold {
		return
	}

	cut := (values[bestIdx] + values[bestIdx+1]) / 2
	*cuts = append(*cuts, cut)
	mdlSplit(values, classes, lo, bestIdx+1, nClasses, cuts)
	mdlSplit(values, classes, bestIdx+1, hi, nClasses, cuts)
}

func entropyOf(counts []float64, n float64) float64 {
	if n <= 0 {
		return 0
	}
	e := 0.0
	for _, c := range counts {
		if c > 0 {
			p := c / n
			e -= p * math.Log2(p)
		}
	}
	return e
}

func distinctClasses(counts []float64) int {
	k := 0
	for _, c := range counts {
		if c > 0 {
			k++
		}
	}
	return k
}

// Apply maps the dataset through the fitted cuts: numeric attributes
// with cut points become nominal interval attributes; everything else
// is copied unchanged. Missing values stay missing.
func (z *Discretizer) Apply(d *dataset.Dataset) (*dataset.Dataset, error) {
	if len(z.Cuts) != len(d.Attrs) {
		return nil, fmt.Errorf("discretize: fitted on %d attributes, dataset has %d", len(z.Cuts), len(d.Attrs))
	}
	attrs := make([]dataset.Attribute, len(d.Attrs))
	for a, src := range d.Attrs {
		cuts := z.Cuts[a]
		if src.Type != dataset.Numeric || len(cuts) == 0 {
			attrs[a] = src
			continue
		}
		labels := make([]string, 0, len(cuts)+1)
		for b := 0; b <= len(cuts); b++ {
			labels = append(labels, binLabel(cuts, b))
		}
		attrs[a] = dataset.NominalAttr(src.Name, labels...)
	}
	out := dataset.New(d.Name, attrs, d.ClassValues)
	for i := range d.Instances {
		in := d.Instances[i].Clone()
		for a := range d.Attrs {
			cuts := z.Cuts[a]
			if d.Attrs[a].Type != dataset.Numeric || len(cuts) == 0 {
				continue
			}
			v := in.Values[a]
			if dataset.IsMissing(v) {
				continue
			}
			in.Values[a] = float64(binOf(cuts, v))
		}
		if err := out.Add(in); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// binOf returns the index of the interval containing v.
func binOf(cuts []float64, v float64) int {
	return sort.SearchFloat64s(cuts, v)
}

func binLabel(cuts []float64, b int) string {
	format := func(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }
	switch {
	case b == 0:
		return "(-inf.." + format(cuts[0]) + "]"
	case b == len(cuts):
		return "(" + format(cuts[len(cuts)-1]) + "..inf)"
	default:
		return "(" + format(cuts[b-1]) + ".." + format(cuts[b]) + "]"
	}
}
