// Package rules implements rule-based learners used as comparators to
// decision tree induction (the other symbolic family the paper
// discusses in §IV/§V-C): ZeroR (majority class), OneR (Holte's
// single-attribute rules) and a PRISM-style covering rule inducer.
//
// Role in the methodology: Step 3 comparators; being symbolic, PRISM
// rule sets can also feed internal/predicate (edem rules) as an
// alternative predicate source. Concurrency: the learners follow the
// internal/mining contract — PRISM's covering loop works on a shared-
// value subset it filters itself, never mutating the caller's data —
// and fitted rule sets are immutable and safe for concurrent use.
package rules

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"edem/internal/dataset"
	"edem/internal/mining"
)

// ---------------------------------------------------------------------
// ZeroR

// ZeroR predicts the majority class of the training data.
type ZeroR struct{}

var _ mining.Learner = ZeroR{}

// Name implements mining.Learner.
func (ZeroR) Name() string { return "ZeroR" }

// Fit implements mining.Learner.
func (ZeroR) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("rules: empty training set")
	}
	return constClassifier(d.MajorityClass()), nil
}

type constClassifier int

func (c constClassifier) Classify([]float64) int { return int(c) }

// ---------------------------------------------------------------------
// OneR

// OneR learns the single best attribute rule (Holte, 1993): numeric
// attributes are discretised into buckets containing at least MinBucket
// instances of one class.
type OneR struct {
	// MinBucket is the minimum weight per discretisation bucket
	// (default 6, Holte's recommendation).
	MinBucket float64
}

var _ mining.Learner = OneR{}

// Name implements mining.Learner.
func (OneR) Name() string { return "OneR" }

func (l OneR) minBucket() float64 {
	if l.MinBucket <= 0 {
		return 6
	}
	return l.MinBucket
}

// OneRModel is a single-attribute rule: either nominal value→class, or
// threshold intervals→class.
type OneRModel struct {
	Attr       int
	Numeric    bool
	Thresholds []float64 // interval upper bounds; len(Classes) = len+1
	Classes    []int
	Default    int
	attrs      []dataset.Attribute
}

var (
	_ mining.Classifier = (*OneRModel)(nil)
	_ mining.Sizer      = (*OneRModel)(nil)
)

// Size reports the number of intervals/values in the rule.
func (m *OneRModel) Size() int { return len(m.Classes) }

// Classify implements mining.Classifier.
func (m *OneRModel) Classify(values []float64) int {
	v := values[m.Attr]
	if dataset.IsMissing(v) {
		return m.Default
	}
	if m.Numeric {
		for i, t := range m.Thresholds {
			if v <= t {
				return m.Classes[i]
			}
		}
		return m.Classes[len(m.Classes)-1]
	}
	idx := int(v)
	if idx < 0 || idx >= len(m.Classes) {
		return m.Default
	}
	return m.Classes[idx]
}

// Fit implements mining.Learner.
func (l OneR) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("rules: empty training set")
	}
	def := d.MajorityClass()
	var best *OneRModel
	bestErr := math.Inf(1)
	for a := range d.Attrs {
		var m *OneRModel
		var errW float64
		if d.Attrs[a].Type == dataset.Numeric {
			m, errW = l.numericRule(d, a)
		} else {
			m, errW = l.nominalRule(d, a)
		}
		if m == nil {
			continue
		}
		m.Default = def
		m.attrs = d.Attrs
		if errW < bestErr {
			bestErr = errW
			best = m
		}
	}
	if best == nil {
		return constClassifier(def), nil
	}
	return best, nil
}

func (l OneR) nominalRule(d *dataset.Dataset, attr int) (*OneRModel, float64) {
	nVals := len(d.Attrs[attr].Values)
	counts := make([][]float64, nVals)
	for i := range counts {
		counts[i] = make([]float64, len(d.ClassValues))
	}
	for i := range d.Instances {
		in := &d.Instances[i]
		v := in.Values[attr]
		if dataset.IsMissing(v) {
			continue
		}
		counts[int(v)][in.Class] += in.Weight
	}
	classes := make([]int, nVals)
	errW := 0.0
	for v := range counts {
		best, total := 0, 0.0
		for c, w := range counts[v] {
			total += w
			if w > counts[v][best] {
				best = c
			}
		}
		classes[v] = best
		errW += total - counts[v][best]
	}
	return &OneRModel{Attr: attr, Classes: classes}, errW
}

func (l OneR) numericRule(d *dataset.Dataset, attr int) (*OneRModel, float64) {
	type vw struct {
		v     float64
		w     float64
		class int
	}
	var vals []vw
	for i := range d.Instances {
		in := &d.Instances[i]
		v := in.Values[attr]
		if dataset.IsMissing(v) {
			continue
		}
		vals = append(vals, vw{v: v, w: in.Weight, class: in.Class})
	}
	if len(vals) == 0 {
		return nil, math.Inf(1)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].v < vals[j].v })

	nClasses := len(d.ClassValues)
	var (
		thresholds []float64
		classes    []int
		errW       float64
	)
	i := 0
	for i < len(vals) {
		// Grow a bucket until one class holds at least minBucket weight,
		// then extend to the end of ties on the boundary value.
		counts := make([]float64, nClasses)
		j := i
		for j < len(vals) {
			counts[vals[j].class] += vals[j].w
			maxW := 0.0
			for _, w := range counts {
				if w > maxW {
					maxW = w
				}
			}
			j++
			if maxW >= l.minBucket() {
				for j < len(vals) && vals[j].v == vals[j-1].v {
					counts[vals[j].class] += vals[j].w
					j++
				}
				break
			}
		}
		best, total := 0, 0.0
		for c, w := range counts {
			total += w
			if w > counts[best] {
				best = c
			}
		}
		errW += total - counts[best]
		classes = append(classes, best)
		if j < len(vals) {
			thresholds = append(thresholds, (vals[j-1].v+vals[j].v)/2)
		}
		i = j
	}
	// Merge adjacent buckets with identical classes.
	mergedT := thresholds[:0]
	mergedC := classes[:1]
	for k := 1; k < len(classes); k++ {
		if classes[k] == mergedC[len(mergedC)-1] {
			continue
		}
		mergedT = append(mergedT, thresholds[k-1])
		mergedC = append(mergedC, classes[k])
	}
	return &OneRModel{Attr: attr, Numeric: true, Thresholds: mergedT, Classes: mergedC}, errW
}

// ---------------------------------------------------------------------
// PRISM

// PRISM is a covering rule inducer (Cendrowska, 1987) extended with
// binary threshold conditions for numeric attributes. For each class it
// repeatedly builds the maximally precise conjunctive rule and removes
// the covered instances.
type PRISM struct {
	// MaxRules bounds the total number of rules (default 64).
	MaxRules int
	// MinCover is the minimum instance weight a rule must cover
	// (default 2).
	MinCover float64
}

var _ mining.Learner = PRISM{}

// Name implements mining.Learner.
func (PRISM) Name() string { return "PRISM" }

func (p PRISM) maxRules() int {
	if p.MaxRules <= 0 {
		return 64
	}
	return p.MaxRules
}

func (p PRISM) minCover() float64 {
	if p.MinCover <= 0 {
		return 2
	}
	return p.MinCover
}

// Condition is one conjunct of a PRISM rule.
type Condition struct {
	Attr      int
	Nominal   bool
	Value     int     // nominal equality
	LessEq    bool    // numeric: v <= Threshold when true, v > otherwise
	Threshold float64 // numeric
}

func (c Condition) matches(values []float64, attrs []dataset.Attribute) bool {
	v := values[c.Attr]
	if dataset.IsMissing(v) {
		return false
	}
	if c.Nominal {
		return int(v) == c.Value
	}
	if c.LessEq {
		return v <= c.Threshold
	}
	return v > c.Threshold
}

// Rule is a conjunctive classification rule.
type Rule struct {
	Conds []Condition
	Class int
}

// RuleSet is an ordered PRISM rule list with a default class.
type RuleSet struct {
	Rules   []Rule
	Default int
	attrs   []dataset.Attribute
}

var (
	_ mining.Classifier = (*RuleSet)(nil)
	_ mining.Sizer      = (*RuleSet)(nil)
)

// Size reports the total number of conditions plus rules.
func (rs *RuleSet) Size() int {
	n := len(rs.Rules)
	for _, r := range rs.Rules {
		n += len(r.Conds)
	}
	return n
}

// Classify implements mining.Classifier.
func (rs *RuleSet) Classify(values []float64) int {
	for _, r := range rs.Rules {
		matched := true
		for _, c := range r.Conds {
			if !c.matches(values, rs.attrs) {
				matched = false
				break
			}
		}
		if matched {
			return r.Class
		}
	}
	return rs.Default
}

// String renders the rule set as text.
func (rs *RuleSet) String() string {
	var sb strings.Builder
	for _, r := range rs.Rules {
		sb.WriteString("IF ")
		for i, c := range r.Conds {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			name := fmt.Sprintf("attr%d", c.Attr)
			if c.Attr < len(rs.attrs) {
				name = rs.attrs[c.Attr].Name
			}
			switch {
			case c.Nominal:
				fmt.Fprintf(&sb, "%s = %s", name, rs.attrs[c.Attr].Values[c.Value])
			case c.LessEq:
				fmt.Fprintf(&sb, "%s <= %g", name, c.Threshold)
			default:
				fmt.Fprintf(&sb, "%s > %g", name, c.Threshold)
			}
		}
		fmt.Fprintf(&sb, " THEN class=%d\n", r.Class)
	}
	fmt.Fprintf(&sb, "DEFAULT class=%d\n", rs.Default)
	return sb.String()
}

// Fit implements mining.Learner.
func (p PRISM) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if d.Len() == 0 {
		return nil, fmt.Errorf("rules: empty training set")
	}
	rs := &RuleSet{Default: d.MajorityClass(), attrs: d.Attrs}

	// Learn rules for minority classes first so the default class
	// covers the bulk.
	order := classOrderByWeight(d)
	// Rule growth only reads instances and filters them out as rules
	// cover them; sharing Values is safe (ownership contract).
	remaining := d.CloneShared()
	for _, class := range order {
		if class == rs.Default {
			continue
		}
		for len(rs.Rules) < p.maxRules() {
			rule, covered := p.growRule(remaining, class)
			if rule == nil || covered < p.minCover() {
				break
			}
			rs.Rules = append(rs.Rules, *rule)
			remaining = removeCovered(remaining, rule, d.Attrs)
		}
	}
	return rs, nil
}

// growRule greedily adds the condition maximising rule precision for
// the class (ties broken by coverage) until the rule is pure or no
// condition improves it.
func (p PRISM) growRule(d *dataset.Dataset, class int) (*Rule, float64) {
	active := make([]bool, d.Len())
	for i := range active {
		active[i] = true
	}
	rule := &Rule{Class: class}
	for len(rule.Conds) < 6 {
		posW, totW := coverage(d, active, class)
		if totW == 0 || posW == 0 {
			return nil, 0
		}
		if posW == totW {
			break // pure
		}
		cond, gain := p.bestCondition(d, active, class, posW/totW)
		if cond == nil || gain <= 0 {
			break
		}
		rule.Conds = append(rule.Conds, *cond)
		for i := range active {
			if active[i] && !cond.matches(d.Instances[i].Values, d.Attrs) {
				active[i] = false
			}
		}
	}
	if len(rule.Conds) == 0 {
		return nil, 0
	}
	posW, totW := coverage(d, active, class)
	if totW == 0 || posW/totW <= 0.5 {
		return nil, 0
	}
	return rule, posW
}

func (p PRISM) bestCondition(d *dataset.Dataset, active []bool, class int, basePrec float64) (*Condition, float64) {
	var best *Condition
	bestPrec, bestCover := basePrec, 0.0
	consider := func(c Condition) {
		pos, tot := 0.0, 0.0
		for i := range d.Instances {
			if !active[i] {
				continue
			}
			if c.matches(d.Instances[i].Values, d.Attrs) {
				tot += d.Instances[i].Weight
				if d.Instances[i].Class == class {
					pos += d.Instances[i].Weight
				}
			}
		}
		if tot < p.minCover() || pos == 0 {
			return
		}
		prec := pos / tot
		if prec > bestPrec || (prec == bestPrec && pos > bestCover) {
			bestPrec, bestCover = prec, pos
			cc := c
			best = &cc
		}
	}

	for a := range d.Attrs {
		if d.Attrs[a].Type == dataset.Nominal {
			for v := range d.Attrs[a].Values {
				consider(Condition{Attr: a, Nominal: true, Value: v})
			}
			continue
		}
		for _, t := range candidateThresholds(d, active, a) {
			consider(Condition{Attr: a, LessEq: true, Threshold: t})
			consider(Condition{Attr: a, LessEq: false, Threshold: t})
		}
	}
	return best, bestPrec - basePrec
}

// candidateThresholds returns up to 16 quantile-based thresholds of the
// active instances for a numeric attribute — a coarse but fast
// discretisation for rule growing.
func candidateThresholds(d *dataset.Dataset, active []bool, attr int) []float64 {
	var vals []float64
	for i := range d.Instances {
		if !active[i] {
			continue
		}
		v := d.Instances[i].Values[attr]
		if !dataset.IsMissing(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) < 2 {
		return nil
	}
	sort.Float64s(vals)
	const buckets = 16
	var out []float64
	prev := math.Inf(-1)
	for b := 1; b < buckets; b++ {
		t := vals[len(vals)*b/buckets]
		if t != prev {
			out = append(out, t)
			prev = t
		}
	}
	return out
}

func coverage(d *dataset.Dataset, active []bool, class int) (posW, totW float64) {
	for i := range d.Instances {
		if !active[i] {
			continue
		}
		totW += d.Instances[i].Weight
		if d.Instances[i].Class == class {
			posW += d.Instances[i].Weight
		}
	}
	return posW, totW
}

func removeCovered(d *dataset.Dataset, rule *Rule, attrs []dataset.Attribute) *dataset.Dataset {
	return d.Filter(func(in dataset.Instance) bool {
		for _, c := range rule.Conds {
			if !c.matches(in.Values, attrs) {
				return true
			}
		}
		return false
	})
}

func classOrderByWeight(d *dataset.Dataset) []int {
	ws := d.ClassWeights()
	order := make([]int, len(ws))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ws[order[a]] < ws[order[b]] })
	return order
}
