package rules

import (
	"strings"
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/stats"
)

func thresholdData(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("thr", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("noise"),
	}, []string{"lo", "hi"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := rng.Float64()
		class := 0
		if x > 0.6 {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, rng.Float64()}, Class: class, Weight: 1})
	}
	return d
}

func nominalData() *dataset.Dataset {
	d := dataset.New("nom", []dataset.Attribute{
		dataset.NominalAttr("color", "red", "green", "blue"),
		dataset.NominalAttr("size", "s", "l"),
	}, []string{"no", "yes"})
	// yes iff color == green.
	rows := [][3]float64{
		{0, 0, 0}, {0, 1, 0}, {1, 0, 1}, {1, 1, 1},
		{2, 0, 0}, {2, 1, 0}, {1, 0, 1}, {0, 0, 0},
		{1, 1, 1}, {2, 1, 0}, {0, 1, 0}, {1, 0, 1},
	}
	for _, r := range rows {
		d.MustAdd(dataset.Instance{Values: []float64{r[0], r[1]}, Class: int(r[2]), Weight: 1})
	}
	return d
}

func accuracy(c mining.Classifier, d *dataset.Dataset) float64 {
	correct := 0
	for i := range d.Instances {
		if c.Classify(d.Instances[i].Values) == d.Instances[i].Class {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

func TestZeroR(t *testing.T) {
	d := thresholdData(100, 1)
	model, err := ZeroR{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	want := d.MajorityClass()
	for i := 0; i < 5; i++ {
		if model.Classify(d.Instances[i].Values) != want {
			t.Fatal("ZeroR must always predict the majority")
		}
	}
	if (ZeroR{}).Name() != "ZeroR" {
		t.Error("name")
	}
	empty := dataset.New("e", d.Attrs, d.ClassValues)
	if _, err := (ZeroR{}).Fit(empty); err == nil {
		t.Error("empty training should fail")
	}
}

func TestOneRNumeric(t *testing.T) {
	d := thresholdData(300, 2)
	model, err := OneR{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, d); acc < 0.95 {
		t.Errorf("OneR accuracy = %.3f", acc)
	}
	m, ok := model.(*OneRModel)
	if !ok {
		t.Fatalf("model type %T", model)
	}
	if m.Attr != 0 {
		t.Errorf("OneR chose attr %d, want x(0)", m.Attr)
	}
	if mining.ModelSize(model) < 2 {
		t.Errorf("rule size = %d", mining.ModelSize(model))
	}
}

func TestOneRNominal(t *testing.T) {
	d := nominalData()
	model, err := OneR{MinBucket: 1}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, d); acc != 1 {
		t.Errorf("OneR nominal accuracy = %.3f", acc)
	}
}

func TestOneRMissingValue(t *testing.T) {
	d := thresholdData(200, 3)
	model, err := OneR{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	got := model.Classify([]float64{dataset.Missing, 0.1})
	if got != 0 && got != 1 {
		t.Fatalf("class = %d", got)
	}
}

func TestPRISMNumeric(t *testing.T) {
	d := thresholdData(300, 4)
	model, err := PRISM{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, d); acc < 0.93 {
		t.Errorf("PRISM accuracy = %.3f", acc)
	}
	rs, ok := model.(*RuleSet)
	if !ok {
		t.Fatalf("model type %T", model)
	}
	if len(rs.Rules) == 0 {
		t.Fatal("no rules learnt")
	}
	s := rs.String()
	if !strings.Contains(s, "IF ") || !strings.Contains(s, "DEFAULT") {
		t.Errorf("rendering: %s", s)
	}
}

func TestPRISMNominal(t *testing.T) {
	d := nominalData()
	model, err := PRISM{MinCover: 1}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, d); acc < 0.9 {
		t.Errorf("PRISM nominal accuracy = %.3f", acc)
	}
}

func TestPRISMMaxRules(t *testing.T) {
	d := thresholdData(400, 5)
	// Flip some labels so covering needs many rules, then cap them.
	rng := stats.NewRNG(6)
	for i := range d.Instances {
		if rng.Float64() < 0.2 {
			d.Instances[i].Class = 1 - d.Instances[i].Class
		}
	}
	model, err := PRISM{MaxRules: 3}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	rs := model.(*RuleSet)
	if len(rs.Rules) > 3 {
		t.Errorf("rules = %d, want <= 3", len(rs.Rules))
	}
}

func TestPRISMNames(t *testing.T) {
	if (PRISM{}).Name() != "PRISM" || (OneR{}).Name() != "OneR" {
		t.Error("names")
	}
}

func TestRuleSetSize(t *testing.T) {
	rs := &RuleSet{
		Rules: []Rule{
			{Conds: []Condition{{Attr: 0, LessEq: true, Threshold: 1}}, Class: 1},
			{Conds: []Condition{{Attr: 0}, {Attr: 1}}, Class: 1},
		},
	}
	if rs.Size() != 5 { // 2 rules + 3 conditions
		t.Errorf("size = %d", rs.Size())
	}
}

func TestConditionMissingNeverMatches(t *testing.T) {
	c := Condition{Attr: 0, LessEq: true, Threshold: 100}
	if c.matches([]float64{dataset.Missing}, []dataset.Attribute{dataset.NumericAttr("x")}) {
		t.Fatal("missing value must not match any condition")
	}
}
