// Package mining defines the interfaces shared by the data-mining
// algorithms of the suite (the Weka-analog of paper §VII-B): learners
// that fit classifiers to datasets, and classifiers that label instances.
//
// Concrete algorithms live in subpackages: tree (C4.5 decision tree
// induction), bayes (Naïve Bayes), rules (ZeroR, OneR, PRISM), knn
// (k-nearest neighbours); eval provides confusion-matrix metrics and
// stratified cross-validation; sampling provides SMOTE and random
// over/undersampling for class-imbalance handling.
//
// Role in the methodology: Steps 3 and 4 (model generation and
// refinement) program against these interfaces. Ownership/concurrency
// contract for all implementations in the subpackages: a Learner's Fit
// must not retain or mutate the training dataset beyond the call, a
// fitted Classifier is immutable and safe for concurrent Classify
// calls, and a Learner value itself is safe to share across goroutines
// because Fit keeps its working state on the stack or in per-call
// allocations (fold- and cell-level parallelism rely on this).
package mining

import "edem/internal/dataset"

// Classifier labels instances. Values follow the dataset convention:
// one float64 per attribute (nominal values as domain indices, NaN for
// missing); the returned label is a class index.
type Classifier interface {
	Classify(values []float64) int
}

// Distributor is an optional Classifier refinement that exposes a class
// probability distribution, enabling threshold-based ROC analysis.
type Distributor interface {
	// Distribution returns per-class scores summing to 1.
	Distribution(values []float64) []float64
}

// Sizer is an optional Classifier refinement reporting model complexity
// (the Comp column of Tables III/IV: node count for decision trees, rule
// count for rule sets).
type Sizer interface {
	Size() int
}

// Learner fits a classifier to a training set.
type Learner interface {
	// Name identifies the algorithm (e.g. "C4.5").
	Name() string
	// Fit trains on d and returns the learnt model. Implementations
	// must not retain or mutate d.
	Fit(d *dataset.Dataset) (Classifier, error)
}

// ViewFitter is an optional Learner refinement for learners that can
// train directly from a columnar dataset.View (shared fold store +
// per-configuration sampling view) without materialising instances.
// Implementations must treat the view's arrays as read-only: one view
// may feed many concurrent FitView calls.
type ViewFitter interface {
	FitView(v *dataset.View) (Classifier, error)
}

// ModelSize returns the complexity of a classifier, or 1 if the model
// does not report one (e.g. ZeroR).
func ModelSize(c Classifier) int {
	if s, ok := c.(Sizer); ok {
		return s.Size()
	}
	return 1
}
