// Package costs implements the cost-sensitive learning machinery the
// paper surveys in §IV: cost matrices and their reduction to cost
// vectors (Breiman et al. [29]), instance weighting from cost vectors
// (Ting [31]), and minimum-expected-cost classification on top of any
// learner that exposes class distributions. In safety-critical systems
// a missed failure (false negative) costs far more than a false alarm;
// these tools let the induction process reflect that.
//
// Role in the methodology: an alternative imbalance treatment for
// Steps 3-4, compared against sampling in the ablations. Concurrency:
// cost matrices/vectors are immutable values; the weighting learner
// wrapper clones the dataset before reweighting (the caller's data is
// never mutated) and follows the internal/mining contract otherwise.
package costs

import (
	"errors"
	"fmt"

	"edem/internal/dataset"
	"edem/internal/mining"
)

// Matrix is an m×m misclassification cost matrix: Matrix[i][j] is the
// cost of predicting class j for an instance of class i. The diagonal
// is conventionally zero (no cost for a correct classification).
type Matrix [][]float64

// Validate checks the matrix shape against a class count.
func (c Matrix) Validate(nClasses int) error {
	if len(c) != nClasses {
		return fmt.Errorf("costs: matrix has %d rows, want %d", len(c), nClasses)
	}
	for i, row := range c {
		if len(row) != nClasses {
			return fmt.Errorf("costs: row %d has %d columns, want %d", i, len(row), nClasses)
		}
		for j, v := range row {
			if v < 0 {
				return fmt.Errorf("costs: negative cost at (%d,%d)", i, j)
			}
		}
		if row[i] != 0 {
			return fmt.Errorf("costs: nonzero diagonal at class %d", i)
		}
	}
	return nil
}

// Uniform returns the 0/1 cost matrix, under which minimising expected
// cost reduces to minimising error (paper §IV).
func Uniform(nClasses int) Matrix {
	m := make(Matrix, nClasses)
	for i := range m {
		m[i] = make([]float64, nClasses)
		for j := range m[i] {
			if i != j {
				m[i][j] = 1
			}
		}
	}
	return m
}

// FalseNegativePenalty returns the binary safety-critical matrix: a
// missed positive (failure classified as non-failure) costs `penalty`
// times a false alarm.
func FalseNegativePenalty(penalty float64) Matrix {
	return Matrix{
		{0, 1},
		{penalty, 0},
	}
}

// VectorReduction selects how an m×m matrix collapses into a per-class
// cost vector for instance weighting.
type VectorReduction int

// Reductions proposed in the literature (paper §IV).
const (
	// SumReduction uses the sum of all misclassification costs for the
	// class (Breiman et al.).
	SumReduction VectorReduction = iota + 1
	// MaxReduction uses V(i) = max_j C(i,j).
	MaxReduction
)

// Vector reduces the cost matrix to a per-class cost vector.
func (c Matrix) Vector(r VectorReduction) ([]float64, error) {
	if len(c) == 0 {
		return nil, errors.New("costs: empty matrix")
	}
	v := make([]float64, len(c))
	for i, row := range c {
		switch r {
		case SumReduction:
			for _, x := range row {
				v[i] += x
			}
		case MaxReduction:
			for _, x := range row {
				if x > v[i] {
					v[i] = x
				}
			}
		default:
			return nil, fmt.Errorf("costs: unknown reduction %d", int(r))
		}
	}
	return v, nil
}

// Reweight returns a copy of d with Ting's instance weights applied:
//
//	w(j) = V(j) * N / sum_i V(i) * N_i
//
// so the total training weight stays N while classes are reweighted in
// proportion to their misclassification cost. Algorithms that honour
// instance weights (C4.5 here does) then minimise expected cost
// implicitly (Ting [31]).
func Reweight(d *dataset.Dataset, vector []float64) (*dataset.Dataset, error) {
	if len(vector) != len(d.ClassValues) {
		return nil, fmt.Errorf("costs: vector has %d entries, want %d", len(vector), len(d.ClassValues))
	}
	counts := d.ClassCounts()
	n := float64(d.Len())
	denom := 0.0
	for i, v := range vector {
		if v < 0 {
			return nil, fmt.Errorf("costs: negative vector entry for class %d", i)
		}
		denom += v * float64(counts[i])
	}
	if denom == 0 {
		return nil, errors.New("costs: zero total cost; nothing to reweight")
	}
	// Only Weight changes, which lives in the Instance struct — the
	// shared clone keeps the Values arrays aliased (ownership contract).
	out := d.CloneShared()
	for i := range out.Instances {
		c := out.Instances[i].Class
		out.Instances[i].Weight = vector[c] * n / denom
	}
	return out, nil
}

// MinExpectedCost wraps a probabilistic classifier so labels minimise
// expected misclassification cost instead of error: the predicted class
// is argmin_j sum_i P(i|x) * C(i,j) (Ting's minimum expected cost
// criterion, paper §IV).
type MinExpectedCost struct {
	Base   mining.Distributor
	Costs  Matrix
	labels int
}

var _ mining.Classifier = (*MinExpectedCost)(nil)

// NewMinExpectedCost validates the cost matrix against the class count
// and wraps the classifier.
func NewMinExpectedCost(base mining.Distributor, costs Matrix, nClasses int) (*MinExpectedCost, error) {
	if err := costs.Validate(nClasses); err != nil {
		return nil, err
	}
	return &MinExpectedCost{Base: base, Costs: costs, labels: nClasses}, nil
}

// Classify implements mining.Classifier.
func (m *MinExpectedCost) Classify(values []float64) int {
	dist := m.Base.Distribution(values)
	best, bestCost := 0, 0.0
	for j := 0; j < m.labels; j++ {
		cost := 0.0
		for i := 0; i < m.labels && i < len(dist); i++ {
			cost += dist[i] * m.Costs[i][j]
		}
		if j == 0 || cost < bestCost {
			best, bestCost = j, cost
		}
	}
	return best
}

// CostSensitiveLearner composes a base learner with Ting-style instance
// weighting: training data is reweighted by the cost vector before the
// base learner runs. It implements mining.Learner, so it slots into
// cross-validation unchanged.
type CostSensitiveLearner struct {
	Base      mining.Learner
	Costs     Matrix
	Reduction VectorReduction
}

var _ mining.Learner = CostSensitiveLearner{}

// Name implements mining.Learner.
func (l CostSensitiveLearner) Name() string {
	return l.Base.Name() + "+costs"
}

// Fit implements mining.Learner.
func (l CostSensitiveLearner) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if err := l.Costs.Validate(len(d.ClassValues)); err != nil {
		return nil, err
	}
	r := l.Reduction
	if r == 0 {
		r = SumReduction
	}
	vector, err := l.Costs.Vector(r)
	if err != nil {
		return nil, err
	}
	weighted, err := Reweight(d, vector)
	if err != nil {
		return nil, err
	}
	return l.Base.Fit(weighted)
}
