package costs

import (
	"math"
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/mining/tree"
	"edem/internal/stats"
)

func TestMatrixValidate(t *testing.T) {
	if err := Uniform(3).Validate(3); err != nil {
		t.Fatalf("uniform matrix: %v", err)
	}
	if err := (Matrix{{0, 1}}).Validate(2); err == nil {
		t.Error("short matrix should fail")
	}
	if err := (Matrix{{0, 1}, {1}}).Validate(2); err == nil {
		t.Error("ragged matrix should fail")
	}
	if err := (Matrix{{1, 1}, {1, 0}}).Validate(2); err == nil {
		t.Error("nonzero diagonal should fail")
	}
	if err := (Matrix{{0, -1}, {1, 0}}).Validate(2); err == nil {
		t.Error("negative cost should fail")
	}
}

func TestFalseNegativePenalty(t *testing.T) {
	m := FalseNegativePenalty(10)
	if err := m.Validate(2); err != nil {
		t.Fatal(err)
	}
	if m[1][0] != 10 || m[0][1] != 1 {
		t.Fatalf("matrix = %v", m)
	}
}

func TestVectorReductions(t *testing.T) {
	m := Matrix{
		{0, 2, 3},
		{4, 0, 1},
		{6, 7, 0},
	}
	sum, err := m.Vector(SumReduction)
	if err != nil {
		t.Fatal(err)
	}
	if sum[0] != 5 || sum[1] != 5 || sum[2] != 13 {
		t.Fatalf("sum vector = %v", sum)
	}
	max, err := m.Vector(MaxReduction)
	if err != nil {
		t.Fatal(err)
	}
	if max[0] != 3 || max[1] != 4 || max[2] != 7 {
		t.Fatalf("max vector = %v", max)
	}
	if _, err := m.Vector(VectorReduction(0)); err == nil {
		t.Error("unknown reduction should fail")
	}
	if _, err := (Matrix{}).Vector(SumReduction); err == nil {
		t.Error("empty matrix should fail")
	}
}

func imbalanced(nNeg, nPos int, seed uint64) *dataset.Dataset {
	d := dataset.New("imb", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < nNeg; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{rng.Float64()}, Class: 0, Weight: 1})
	}
	for i := 0; i < nPos; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{0.9 + rng.Float64()*0.3}, Class: 1, Weight: 1})
	}
	return d
}

func TestReweightTingFormula(t *testing.T) {
	d := imbalanced(90, 10, 1)
	// Positives cost 9x: weights should equalise the class masses.
	out, err := Reweight(d, []float64{1, 9})
	if err != nil {
		t.Fatal(err)
	}
	// Total weight preserved at N.
	total := out.TotalWeight()
	if math.Abs(total-100) > 1e-9 {
		t.Fatalf("total weight = %v, want 100", total)
	}
	ws := out.ClassWeights()
	if math.Abs(ws[0]-ws[1]) > 1e-9 {
		t.Fatalf("class weights %v should be equal under a 9:1 vector on 1:9 imbalance", ws)
	}
	// Input untouched.
	if d.Instances[0].Weight != 1 {
		t.Fatal("input mutated")
	}
}

func TestReweightErrors(t *testing.T) {
	d := imbalanced(5, 5, 2)
	if _, err := Reweight(d, []float64{1}); err == nil {
		t.Error("short vector should fail")
	}
	if _, err := Reweight(d, []float64{0, 0}); err == nil {
		t.Error("zero vector should fail")
	}
	if _, err := Reweight(d, []float64{-1, 1}); err == nil {
		t.Error("negative vector should fail")
	}
}

// constDist is a Distributor with a fixed class distribution.
type constDist []float64

func (c constDist) Classify([]float64) int {
	best := 0
	for i := range c {
		if c[i] > c[best] {
			best = i
		}
	}
	return best
}

func (c constDist) Distribution([]float64) []float64 { return c }

func TestMinExpectedCostFlipsDecision(t *testing.T) {
	// P(pos) = 0.2: error minimisation says "neg", but with a 10x FN
	// penalty the expected cost of predicting neg is 0.2*10=2 vs 0.8*1
	// for predicting pos.
	base := constDist{0.8, 0.2}
	mec, err := NewMinExpectedCost(base, FalseNegativePenalty(10), 2)
	if err != nil {
		t.Fatal(err)
	}
	if base.Classify(nil) != 0 {
		t.Fatal("base should predict neg")
	}
	if mec.Classify(nil) != 1 {
		t.Fatal("minimum expected cost should predict pos")
	}
	// Under uniform costs the decision reverts to the majority.
	uniform, err := NewMinExpectedCost(base, Uniform(2), 2)
	if err != nil {
		t.Fatal(err)
	}
	if uniform.Classify(nil) != 0 {
		t.Fatal("uniform costs should match error minimisation")
	}
}

func TestNewMinExpectedCostValidates(t *testing.T) {
	if _, err := NewMinExpectedCost(constDist{1, 0}, Matrix{{0}}, 2); err == nil {
		t.Fatal("bad matrix should fail")
	}
}

func TestCostSensitiveLearnerRecall(t *testing.T) {
	// Overlapping classes with few positives: a high FN penalty must
	// raise recall relative to the plain learner.
	d := dataset.New("ov", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	rng := stats.NewRNG(3)
	for i := 0; i < 300; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{rng.Float64()}, Class: 0, Weight: 1})
	}
	for i := 0; i < 30; i++ {
		// Positives overlap the upper half of the negatives.
		d.MustAdd(dataset.Instance{Values: []float64{0.5 + rng.Float64()*0.5}, Class: 1, Weight: 1})
	}
	recall := func(c mining.Classifier) float64 {
		tp, fn := 0, 0
		for i := range d.Instances {
			if d.Instances[i].Class != 1 {
				continue
			}
			if c.Classify(d.Instances[i].Values) == 1 {
				tp++
			} else {
				fn++
			}
		}
		return float64(tp) / float64(tp+fn)
	}
	plain, err := tree.Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	costly, err := CostSensitiveLearner{
		Base:  tree.Learner{},
		Costs: FalseNegativePenalty(20),
	}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if recall(costly) <= recall(plain) {
		t.Errorf("cost-sensitive recall %.3f should exceed plain %.3f",
			recall(costly), recall(plain))
	}
}

func TestCostSensitiveLearnerName(t *testing.T) {
	l := CostSensitiveLearner{Base: tree.Learner{}, Costs: Uniform(2)}
	if l.Name() != "C4.5+costs" {
		t.Errorf("name = %q", l.Name())
	}
}

func TestCostSensitiveLearnerValidates(t *testing.T) {
	d := imbalanced(10, 5, 4)
	l := CostSensitiveLearner{Base: tree.Learner{}, Costs: Matrix{{0}}}
	if _, err := l.Fit(d); err == nil {
		t.Fatal("bad matrix should fail at fit time")
	}
}
