// Package ensemble implements bagging and AdaBoost.M1 over any base
// learner that honours instance weights. The paper's survey (§IV) cites
// misclassification-cost-sensitive boosting (Fan et al. [33]); the
// boosting here supports that through an optional per-class cost vector
// applied to the weight updates, and both ensembles slot into the
// cross-validation harness as ordinary learners.
//
// Role in the methodology: Step 3 comparators in the ablations
// (ensembles of trees lose the single-tree readability that makes
// predicates extractable, paper §VIII). Concurrency: both ensembles
// follow the internal/mining contract — they clone the training data
// before resampling/reweighting it, and a fitted ensemble is immutable
// and safe for concurrent classification.
package ensemble

import (
	"errors"
	"fmt"
	"math"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/stats"
)

// ---------------------------------------------------------------------
// Bagging

// Bagging trains Rounds bootstrap replicates of the base learner and
// classifies by majority vote.
type Bagging struct {
	// Base is the base learner (required).
	Base mining.Learner
	// Rounds is the ensemble size (default 10).
	Rounds int
	// Seed drives the bootstrap resampling.
	Seed uint64
}

var _ mining.Learner = Bagging{}

// Name implements mining.Learner.
func (b Bagging) Name() string { return fmt.Sprintf("Bagging(%s)", b.Base.Name()) }

func (b Bagging) rounds() int {
	if b.Rounds <= 0 {
		return 10
	}
	return b.Rounds
}

// voteModel is a committee with per-member weights.
type voteModel struct {
	members []mining.Classifier
	weights []float64
	classes int
}

var (
	_ mining.Classifier  = (*voteModel)(nil)
	_ mining.Distributor = (*voteModel)(nil)
	_ mining.Sizer       = (*voteModel)(nil)
)

func (m *voteModel) Distribution(values []float64) []float64 {
	dist := make([]float64, m.classes)
	total := 0.0
	for i, member := range m.members {
		dist[member.Classify(values)] += m.weights[i]
		total += m.weights[i]
	}
	if total > 0 {
		for c := range dist {
			dist[c] /= total
		}
	}
	return dist
}

func (m *voteModel) Classify(values []float64) int {
	dist := m.Distribution(values)
	best := 0
	for c := 1; c < len(dist); c++ {
		if dist[c] > dist[best] {
			best = c
		}
	}
	return best
}

// Size reports the summed complexity of the committee members.
func (m *voteModel) Size() int {
	n := 0
	for _, member := range m.members {
		n += mining.ModelSize(member)
	}
	return n
}

// Fit implements mining.Learner.
func (b Bagging) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if b.Base == nil {
		return nil, errors.New("ensemble: bagging needs a base learner")
	}
	if d.Len() == 0 {
		return nil, errors.New("ensemble: empty training set")
	}
	rng := stats.NewRNG(b.Seed ^ 0xba99ed)
	model := &voteModel{classes: len(d.ClassValues)}
	for r := 0; r < b.rounds(); r++ {
		boot := d.CloneSchema()
		boot.Instances = make([]dataset.Instance, 0, d.Len())
		for i := 0; i < d.Len(); i++ {
			// Struct copy shares the Values array — bootstrap members are
			// read-only training inputs (ownership contract).
			boot.Instances = append(boot.Instances, d.Instances[rng.Intn(d.Len())])
		}
		member, err := b.Base.Fit(boot)
		if err != nil {
			return nil, fmt.Errorf("ensemble: round %d: %w", r, err)
		}
		model.members = append(model.members, member)
		model.weights = append(model.weights, 1)
	}
	return model, nil
}

// ---------------------------------------------------------------------
// AdaBoost.M1

// AdaBoost implements AdaBoost.M1 with optional cost-sensitive weight
// updates: when CostVector is set, misclassified instances of class j
// receive update weight scaled by CostVector[j], biasing subsequent
// rounds towards the expensive class (the CSB idea of Fan et al.).
type AdaBoost struct {
	// Base is the weak learner; it must honour instance weights
	// (tree.Learner does).
	Base mining.Learner
	// Rounds is the boosting round count (default 10).
	Rounds int
	// CostVector, when non-nil, scales the weight boost of
	// misclassified instances per class.
	CostVector []float64
}

var _ mining.Learner = AdaBoost{}

// Name implements mining.Learner.
func (a AdaBoost) Name() string {
	if a.CostVector != nil {
		return fmt.Sprintf("CSB-AdaBoost(%s)", a.Base.Name())
	}
	return fmt.Sprintf("AdaBoost(%s)", a.Base.Name())
}

func (a AdaBoost) rounds() int {
	if a.Rounds <= 0 {
		return 10
	}
	return a.Rounds
}

// Fit implements mining.Learner.
func (a AdaBoost) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if a.Base == nil {
		return nil, errors.New("ensemble: boosting needs a base learner")
	}
	if d.Len() == 0 {
		return nil, errors.New("ensemble: empty training set")
	}
	if a.CostVector != nil && len(a.CostVector) != len(d.ClassValues) {
		return nil, fmt.Errorf("ensemble: cost vector has %d entries, want %d",
			len(a.CostVector), len(d.ClassValues))
	}

	// Weights are kept normalised to total N rather than 1: base
	// learners like C4.5 use absolute weight thresholds (min leaf
	// weight), which a unit-sum distribution would starve.
	n := d.Len()
	// Boosting rounds reweight instances but never touch Values, so the
	// working copy shares the backing arrays (ownership contract).
	work := d.CloneShared()
	for i := range work.Instances {
		work.Instances[i].Weight = 1
	}

	model := &voteModel{classes: len(d.ClassValues)}
	for r := 0; r < a.rounds(); r++ {
		member, err := a.Base.Fit(work)
		if err != nil {
			return nil, fmt.Errorf("ensemble: round %d: %w", r, err)
		}
		// Weighted training error of this member.
		errW, totalW := 0.0, 0.0
		miss := make([]bool, n)
		for i := range work.Instances {
			in := &work.Instances[i]
			totalW += in.Weight
			if member.Classify(in.Values) != in.Class {
				miss[i] = true
				errW += in.Weight
			}
		}
		eps := errW / totalW
		if eps >= 0.5 {
			// Weak-learner assumption violated; stop with what we have.
			break
		}
		if eps <= 0 {
			// Perfect member: give it a large but finite say and stop.
			model.members = append(model.members, member)
			model.weights = append(model.weights, 10)
			break
		}
		beta := eps / (1 - eps)
		alpha := math.Log(1 / beta)
		model.members = append(model.members, member)
		model.weights = append(model.weights, alpha)

		// Reweight: correctly classified instances shrink by beta;
		// misclassified ones keep their weight, optionally inflated by
		// the per-class cost.
		sum := 0.0
		for i := range work.Instances {
			in := &work.Instances[i]
			if miss[i] {
				if a.CostVector != nil {
					in.Weight *= a.CostVector[in.Class]
				}
			} else {
				in.Weight *= beta
			}
			sum += in.Weight
		}
		if sum <= 0 {
			break
		}
		scale := float64(n) / sum
		for i := range work.Instances {
			work.Instances[i].Weight *= scale
		}
	}
	if len(model.members) == 0 {
		// Degenerate data: fall back to a single unweighted member.
		member, err := a.Base.Fit(d)
		if err != nil {
			return nil, err
		}
		model.members = append(model.members, member)
		model.weights = append(model.weights, 1)
	}
	return model, nil
}
