package ensemble

import (
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/mining/tree"
	"edem/internal/stats"
)

// noisyInteraction is a dataset where a single shallow tree underfits:
// an interaction concept plus label noise.
func noisyInteraction(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("ni", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
		dataset.NumericAttr("z"),
	}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x, y, z := rng.Float64(), rng.Float64(), rng.Float64()
		class := 0
		if (x > 0.6 && y > 0.5) || z > 0.9 {
			class = 1
		}
		if rng.Float64() < 0.1 {
			class = 1 - class
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, y, z}, Class: class, Weight: 1})
	}
	return d
}

func accuracy(c mining.Classifier, d *dataset.Dataset) float64 {
	correct := 0
	for i := range d.Instances {
		if c.Classify(d.Instances[i].Values) == d.Instances[i].Class {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

func stump() tree.Learner {
	return tree.Learner{Config: tree.Config{MaxDepth: 1, NoPrune: true}}
}

func TestBaggingVotes(t *testing.T) {
	d := noisyInteraction(400, 1)
	model, err := Bagging{Base: tree.Learner{}, Rounds: 7, Seed: 1}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, d); acc < 0.85 {
		t.Errorf("bagging accuracy = %.3f", acc)
	}
	vm := model.(*voteModel)
	if len(vm.members) != 7 {
		t.Fatalf("members = %d", len(vm.members))
	}
	if mining.ModelSize(model) <= 7 {
		t.Errorf("committee size = %d, expected sum of member sizes", mining.ModelSize(model))
	}
}

func TestBaggingDeterminism(t *testing.T) {
	d := noisyInteraction(200, 2)
	m1, err := Bagging{Base: tree.Learner{}, Rounds: 5, Seed: 9}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Bagging{Base: tree.Learner{}, Rounds: 5, Seed: 9}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		vs := d.Instances[i].Values
		if m1.Classify(vs) != m2.Classify(vs) {
			t.Fatal("same-seed bagging differs")
		}
	}
}

func TestAdaBoostBeatsStump(t *testing.T) {
	d := noisyInteraction(600, 3)
	weak, err := stump().Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	boosted, err := AdaBoost{Base: stump(), Rounds: 20}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	weakAcc, boostedAcc := accuracy(weak, d), accuracy(boosted, d)
	if boostedAcc <= weakAcc {
		t.Errorf("boosting did not help: stump %.3f, boosted %.3f", weakAcc, boostedAcc)
	}
}

func TestAdaBoostDistributionSums(t *testing.T) {
	d := noisyInteraction(300, 4)
	model, err := AdaBoost{Base: stump(), Rounds: 10}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	dist := model.(*voteModel).Distribution(d.Instances[0].Values)
	sum := 0.0
	for _, p := range dist {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

func TestCostSensitiveBoostingRaisesRecall(t *testing.T) {
	// Overlapping minority: the cost-sensitive update must trade false
	// alarms for recall relative to plain AdaBoost.
	d := dataset.New("ov", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	rng := stats.NewRNG(5)
	for i := 0; i < 400; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{rng.Float64()}, Class: 0, Weight: 1})
	}
	for i := 0; i < 40; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{0.4 + rng.Float64()*0.6}, Class: 1, Weight: 1})
	}
	recall := func(c mining.Classifier) float64 {
		tp, fn := 0, 0
		for i := range d.Instances {
			if d.Instances[i].Class != 1 {
				continue
			}
			if c.Classify(d.Instances[i].Values) == 1 {
				tp++
			} else {
				fn++
			}
		}
		return float64(tp) / float64(tp+fn)
	}
	plain, err := AdaBoost{Base: stump(), Rounds: 15}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	csb, err := AdaBoost{Base: stump(), Rounds: 15, CostVector: []float64{1, 8}}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if recall(csb) < recall(plain) {
		t.Errorf("CSB recall %.3f < plain %.3f", recall(csb), recall(plain))
	}
}

func TestEnsembleErrors(t *testing.T) {
	d := noisyInteraction(50, 6)
	if _, err := (Bagging{}).Fit(d); err == nil {
		t.Error("bagging without base should fail")
	}
	if _, err := (AdaBoost{}).Fit(d); err == nil {
		t.Error("boosting without base should fail")
	}
	empty := dataset.New("e", d.Attrs, d.ClassValues)
	if _, err := (Bagging{Base: tree.Learner{}}).Fit(empty); err == nil {
		t.Error("empty training should fail")
	}
	if _, err := (AdaBoost{Base: tree.Learner{}}).Fit(empty); err == nil {
		t.Error("empty training should fail")
	}
	if _, err := (AdaBoost{Base: tree.Learner{}, CostVector: []float64{1}}).Fit(d); err == nil {
		t.Error("short cost vector should fail")
	}
}

func TestAdaBoostPerfectBase(t *testing.T) {
	// Cleanly separable data: the first member is perfect; boosting
	// must stop gracefully with a working committee.
	d := dataset.New("sep", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	for i := 0; i < 50; i++ {
		class := 0
		if i%2 == 0 {
			class = 1
		}
		v := float64(class) * 10
		d.MustAdd(dataset.Instance{Values: []float64{v}, Class: class, Weight: 1})
	}
	model, err := AdaBoost{Base: tree.Learner{}, Rounds: 10}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, d); acc != 1 {
		t.Errorf("accuracy = %.3f", acc)
	}
}

func TestNames(t *testing.T) {
	if (Bagging{Base: tree.Learner{}}).Name() != "Bagging(C4.5)" {
		t.Error("bagging name")
	}
	if (AdaBoost{Base: tree.Learner{}}).Name() != "AdaBoost(C4.5)" {
		t.Error("adaboost name")
	}
	if (AdaBoost{Base: tree.Learner{}, CostVector: []float64{1, 2}}).Name() != "CSB-AdaBoost(C4.5)" {
		t.Error("csb name")
	}
}
