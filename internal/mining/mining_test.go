package mining

import "testing"

type plain struct{}

func (plain) Classify([]float64) int { return 0 }

type sized struct{ n int }

func (s sized) Classify([]float64) int { return 0 }
func (s sized) Size() int              { return s.n }

func TestModelSize(t *testing.T) {
	if got := ModelSize(plain{}); got != 1 {
		t.Errorf("plain model size = %d, want 1", got)
	}
	if got := ModelSize(sized{n: 42}); got != 42 {
		t.Errorf("sized model size = %d, want 42", got)
	}
}
