// Package logreg implements binary logistic regression trained by
// gradient descent — one of the non-symbolic learners the paper
// discusses (§IV, §V-C). Like Naïve Bayes it benefits from the signed
// logarithmic attribute mapping on fault-injection data, where raw
// bit-flip magnitudes span hundreds of orders of magnitude.
//
// Role in the methodology: a Step 3 comparator in the learner-comparison
// ablation (non-symbolic, so not a predicate source). Concurrency: it
// follows the internal/mining contract — Fit neither mutates nor
// retains the training data, and the fitted classifier is immutable and
// safe for concurrent use.
package logreg

import (
	"errors"
	"fmt"
	"math"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/stats"
)

// Learner fits logistic regression models. The zero value uses sensible
// defaults (200 epochs, learning rate 0.1, L2 1e-4, log mapping on).
type Learner struct {
	// Epochs is the number of full gradient passes (default 200).
	Epochs int
	// LearningRate is the gradient step size (default 0.1).
	LearningRate float64
	// L2 is the ridge penalty (default 1e-4).
	L2 float64
	// NoLogMap disables the signed log attribute mapping.
	NoLogMap bool
	// PositiveClass is the class index modelled as y=1 (default 1).
	PositiveClass int
}

var _ mining.Learner = Learner{}

// Name implements mining.Learner.
func (l Learner) Name() string {
	if l.NoLogMap {
		return "LogisticRegression"
	}
	return "LogisticRegression+logmap"
}

func (l Learner) epochs() int {
	if l.Epochs <= 0 {
		return 200
	}
	return l.Epochs
}

func (l Learner) learningRate() float64 {
	if l.LearningRate <= 0 {
		return 0.1
	}
	return l.LearningRate
}

func (l Learner) l2() float64 {
	if l.L2 < 0 {
		return 0
	}
	if l.L2 == 0 {
		return 1e-4
	}
	return l.L2
}

func (l Learner) positiveClass() int {
	if l.PositiveClass == 0 {
		return 1
	}
	return l.PositiveClass
}

// ErrNotBinary is returned for datasets without exactly two classes.
var ErrNotBinary = errors.New("logreg: logistic regression requires a binary class")

// Model is a fitted logistic regression classifier.
type Model struct {
	weights  []float64 // one per attribute
	bias     float64
	mean     []float64 // feature standardisation
	scale    []float64
	logMap   bool
	posClass int
	negClass int
	attrs    []dataset.Attribute
}

var (
	_ mining.Classifier  = (*Model)(nil)
	_ mining.Distributor = (*Model)(nil)
)

// Fit implements mining.Learner.
func (l Learner) Fit(d *dataset.Dataset) (mining.Classifier, error) {
	if len(d.ClassValues) != 2 {
		return nil, fmt.Errorf("%w: got %d classes", ErrNotBinary, len(d.ClassValues))
	}
	if d.Len() == 0 {
		return nil, errors.New("logreg: empty training set")
	}
	for _, a := range d.Attrs {
		if a.Type != dataset.Numeric {
			return nil, fmt.Errorf("logreg: attribute %q is nominal; encode it numerically first", a.Name)
		}
	}
	pos := l.positiveClass()
	neg := 1 - pos

	n := d.Len()
	nAttr := len(d.Attrs)

	// Feature matrix with optional log mapping, then standardisation.
	x := make([][]float64, n)
	y := make([]float64, n)
	w := make([]float64, n)
	for i := range d.Instances {
		in := &d.Instances[i]
		row := make([]float64, nAttr)
		for a, v := range in.Values {
			if dataset.IsMissing(v) {
				v = 0
			} else if !l.NoLogMap {
				v = stats.SignedLog(v)
			}
			row[a] = v
		}
		x[i] = row
		if in.Class == pos {
			y[i] = 1
		}
		w[i] = in.Weight
		if w[i] <= 0 {
			w[i] = 1
		}
	}
	mean := make([]float64, nAttr)
	scale := make([]float64, nAttr)
	for a := 0; a < nAttr; a++ {
		var wf stats.Welford
		for i := range x {
			wf.Add(x[i][a])
		}
		mean[a] = wf.Mean()
		sd := wf.StdDev()
		if sd < 1e-12 {
			sd = 1
		}
		scale[a] = sd
		for i := range x {
			x[i][a] = (x[i][a] - mean[a]) / sd
		}
	}

	weights := make([]float64, nAttr)
	bias := 0.0
	lr := l.learningRate()
	lambda := l.l2()
	totalW := 0.0
	for _, wi := range w {
		totalW += wi
	}
	for epoch := 0; epoch < l.epochs(); epoch++ {
		gradW := make([]float64, nAttr)
		gradB := 0.0
		for i := range x {
			p := sigmoid(dot(weights, x[i]) + bias)
			err := (p - y[i]) * w[i]
			for a := 0; a < nAttr; a++ {
				gradW[a] += err * x[i][a]
			}
			gradB += err
		}
		for a := 0; a < nAttr; a++ {
			weights[a] -= lr * (gradW[a]/totalW + lambda*weights[a])
		}
		bias -= lr * gradB / totalW
	}

	return &Model{
		weights:  weights,
		bias:     bias,
		mean:     mean,
		scale:    scale,
		logMap:   !l.NoLogMap,
		posClass: pos,
		negClass: neg,
		attrs:    d.Attrs,
	}, nil
}

// Score returns P(positive class | values).
func (m *Model) Score(values []float64) float64 {
	z := m.bias
	for a, wa := range m.weights {
		v := 0.0
		if a < len(values) {
			v = values[a]
		}
		if dataset.IsMissing(v) {
			v = 0
		} else if m.logMap {
			v = stats.SignedLog(v)
		}
		z += wa * (v - m.mean[a]) / m.scale[a]
	}
	return sigmoid(z)
}

// Classify implements mining.Classifier.
func (m *Model) Classify(values []float64) int {
	if m.Score(values) >= 0.5 {
		return m.posClass
	}
	return m.negClass
}

// Distribution implements mining.Distributor.
func (m *Model) Distribution(values []float64) []float64 {
	p := m.Score(values)
	dist := make([]float64, 2)
	dist[m.posClass] = p
	dist[m.negClass] = 1 - p
	return dist
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		e := math.Exp(-z)
		return 1 / (1 + e)
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
