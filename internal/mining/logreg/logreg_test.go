package logreg

import (
	"errors"
	"math"
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/stats"
)

func linearlySeparable(n int, seed uint64) *dataset.Dataset {
	d := dataset.New("lin", []dataset.Attribute{
		dataset.NumericAttr("x"),
		dataset.NumericAttr("y"),
	}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x, y := rng.Float64()*2-1, rng.Float64()*2-1
		class := 0
		if x+y > 0.2 {
			class = 1
		}
		d.MustAdd(dataset.Instance{Values: []float64{x, y}, Class: class, Weight: 1})
	}
	return d
}

func accuracy(c mining.Classifier, d *dataset.Dataset) float64 {
	correct := 0
	for i := range d.Instances {
		if c.Classify(d.Instances[i].Values) == d.Instances[i].Class {
			correct++
		}
	}
	return float64(correct) / float64(d.Len())
}

func TestLogRegSeparable(t *testing.T) {
	d := linearlySeparable(500, 1)
	model, err := Learner{NoLogMap: true}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, d); acc < 0.97 {
		t.Errorf("accuracy = %.3f", acc)
	}
}

func TestLogRegScoresAreProbabilities(t *testing.T) {
	d := linearlySeparable(300, 2)
	model, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	m := model.(*Model)
	for i := 0; i < 50; i++ {
		p := m.Score(d.Instances[i].Values)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("score = %v", p)
		}
		dist := m.Distribution(d.Instances[i].Values)
		if math.Abs(dist[0]+dist[1]-1) > 1e-12 {
			t.Fatalf("distribution sums to %v", dist[0]+dist[1])
		}
	}
}

func TestLogRegLogMapExtremes(t *testing.T) {
	// Bit-flip magnitudes: the log mapping keeps training stable where
	// raw features would overflow the linear score.
	d := dataset.New("x", []dataset.Attribute{dataset.NumericAttr("v")}, []string{"neg", "pos"})
	rng := stats.NewRNG(3)
	for i := 0; i < 200; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{rng.Float64() * 1000}, Class: 0, Weight: 1})
	}
	for i := 0; i < 50; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{1e200 * (1 + rng.Float64())}, Class: 1, Weight: 1})
	}
	model, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(model, d); acc < 0.99 {
		t.Errorf("logmap accuracy = %.3f", acc)
	}
	if got := model.Classify([]float64{1e250}); got != 1 {
		t.Errorf("extreme magnitude classified %d", got)
	}
}

func TestLogRegRejectsNonBinary(t *testing.T) {
	d := dataset.New("m", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b", "c"})
	d.MustAdd(dataset.Instance{Values: []float64{1}, Class: 0, Weight: 1})
	if _, err := (Learner{}).Fit(d); !errors.Is(err, ErrNotBinary) {
		t.Fatalf("err = %v", err)
	}
}

func TestLogRegRejectsNominal(t *testing.T) {
	d := dataset.New("m", []dataset.Attribute{dataset.NominalAttr("c", "u", "v")}, []string{"a", "b"})
	d.MustAdd(dataset.Instance{Values: []float64{0}, Class: 0, Weight: 1})
	if _, err := (Learner{}).Fit(d); err == nil {
		t.Fatal("nominal attribute should be rejected")
	}
}

func TestLogRegEmpty(t *testing.T) {
	d := dataset.New("e", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	if _, err := (Learner{}).Fit(d); err == nil {
		t.Fatal("empty training should fail")
	}
}

func TestLogRegMissingValues(t *testing.T) {
	d := linearlySeparable(200, 5)
	d.Instances[0].Values[0] = dataset.Missing
	model, err := Learner{}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	got := model.Classify([]float64{dataset.Missing, 0.9})
	if got != 0 && got != 1 {
		t.Fatalf("class = %d", got)
	}
}

func TestLogRegWeighted(t *testing.T) {
	// All mass on the positive side shifts the decision boundary.
	d := dataset.New("w", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	for i := 0; i < 20; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{-0.1}, Class: 0, Weight: 1})
		d.MustAdd(dataset.Instance{Values: []float64{0.1}, Class: 1, Weight: 50})
	}
	model, err := Learner{NoLogMap: true}.Fit(d)
	if err != nil {
		t.Fatal(err)
	}
	// The heavily weighted positives pull the boundary below 0.
	if model.Classify([]float64{0.0}) != 1 {
		t.Error("weights should bias the boundary")
	}
}

func TestLogRegNames(t *testing.T) {
	if (Learner{}).Name() != "LogisticRegression+logmap" {
		t.Error("default name")
	}
	if (Learner{NoLogMap: true}).Name() != "LogisticRegression" {
		t.Error("raw name")
	}
}
