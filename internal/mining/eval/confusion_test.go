package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mkBinary(tp, fn, fp, tn float64) BinaryCounts {
	return BinaryCounts{TP: tp, FN: fn, FP: fp, TN: tn}
}

func TestConfusionMatrixPaperExample(t *testing.T) {
	// Table I structure: actual class in rows, predicted in columns.
	cm := NewConfusionMatrix([]string{"neg", "pos"})
	// 90 TN, 5 FP, 2 FN, 3 TP.
	for i := 0; i < 90; i++ {
		_ = cm.Record(0, 0, 1)
	}
	for i := 0; i < 5; i++ {
		_ = cm.Record(0, 1, 1)
	}
	for i := 0; i < 2; i++ {
		_ = cm.Record(1, 0, 1)
	}
	for i := 0; i < 3; i++ {
		_ = cm.Record(1, 1, 1)
	}
	b := cm.Binary(1)
	if b.TP != 3 || b.FN != 2 || b.FP != 5 || b.TN != 90 {
		t.Fatalf("binary counts = %+v", b)
	}
	if cm.Total() != 100 {
		t.Fatalf("total = %v", cm.Total())
	}
	if got := cm.Accuracy(); got != 0.93 {
		t.Fatalf("accuracy = %v", got)
	}
	s := cm.String()
	if !strings.Contains(s, "neg") || !strings.Contains(s, "pos") {
		t.Errorf("render: %s", s)
	}
}

func TestRecordValidation(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a", "b"})
	if err := cm.Record(2, 0, 1); err == nil {
		t.Error("actual out of range")
	}
	if err := cm.Record(0, -1, 1); err == nil {
		t.Error("predicted out of range")
	}
}

func TestMergeMatrices(t *testing.T) {
	a := NewConfusionMatrix([]string{"a", "b"})
	_ = a.Record(0, 0, 2)
	b := NewConfusionMatrix([]string{"a", "b"})
	_ = b.Record(1, 0, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Cells[0][0] != 2 || a.Cells[1][0] != 3 {
		t.Fatalf("merged cells = %v", a.Cells)
	}
	c := NewConfusionMatrix([]string{"a"})
	if err := a.Merge(c); err == nil {
		t.Error("mismatched classes should fail")
	}
}

func TestBinaryMetrics(t *testing.T) {
	b := mkBinary(40, 10, 5, 45)
	if got := b.TPR(); got != 0.8 {
		t.Errorf("TPR = %v", got)
	}
	if got := b.FPR(); got != 0.1 {
		t.Errorf("FPR = %v", got)
	}
	if got := b.TNR(); got != 0.9 {
		t.Errorf("TNR = %v", got)
	}
	if got := b.Precision(); got != 40.0/45 {
		t.Errorf("Precision = %v", got)
	}
	wantF1 := 2 * (40.0 / 45) * 0.8 / (40.0/45 + 0.8)
	if got := b.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
	if got := b.GeometricMean(); math.Abs(got-math.Sqrt(0.8*0.9)) > 1e-12 {
		t.Errorf("G-mean = %v", got)
	}
	// The paper's single-model trapezoid AUC.
	if got := b.AUC(); math.Abs(got-(0.8-0.1+1)/2) > 1e-12 {
		t.Errorf("AUC = %v", got)
	}
	if got := b.DistanceFromPerfect(); math.Abs(got-math.Hypot(0.1, 0.2)) > 1e-12 {
		t.Errorf("distance = %v", got)
	}
}

func TestMetricsZeroDenominators(t *testing.T) {
	var b BinaryCounts
	if b.TPR() != 0 || b.FPR() != 0 || b.Precision() != 0 || b.F1() != 0 {
		t.Fatal("zero counts must yield zero metrics, not NaN")
	}
	if b.AUC() != 0.5 {
		t.Fatalf("empty AUC = %v, want 0.5", b.AUC())
	}
}

func TestAUCBounds(t *testing.T) {
	f := func(tp, fn, fp, tn uint16) bool {
		b := mkBinary(float64(tp), float64(fn), float64(fp), float64(tn))
		auc := b.AUC()
		return auc >= 0 && auc <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPerfectDetector(t *testing.T) {
	// The perfect detector of paper SIV: fpr=0, tpr=1.
	b := mkBinary(50, 0, 0, 50)
	if b.AUC() != 1 || b.DistanceFromPerfect() != 0 || b.F1() != 1 {
		t.Fatalf("perfect detector metrics: %+v", b)
	}
}

func TestExpectedCost(t *testing.T) {
	cm := NewConfusionMatrix([]string{"neg", "pos"})
	_ = cm.Record(1, 0, 4) // 4 FN
	_ = cm.Record(0, 1, 2) // 2 FP
	_ = cm.Record(0, 0, 10)
	// FN costs 10, FP costs 1.
	cost, err := cm.ExpectedCost([][]float64{{0, 1}, {10, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if cost != 4*10+2*1 {
		t.Fatalf("cost = %v, want 42", cost)
	}
	// Uniform cost matrix reduces to error count.
	errCost, err := cm.ExpectedCost([][]float64{{0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if errCost != 6 {
		t.Fatalf("uniform cost = %v, want 6", errCost)
	}
	if _, err := cm.ExpectedCost([][]float64{{0}}); err == nil {
		t.Error("wrong cost matrix shape should fail")
	}
	if _, err := cm.ExpectedCost([][]float64{{0, 1}, {1}}); err == nil {
		t.Error("ragged cost matrix should fail")
	}
}

func TestBinaryWithMultiClass(t *testing.T) {
	cm := NewConfusionMatrix([]string{"a", "b", "c"})
	_ = cm.Record(1, 1, 3) // TP for pos=1
	_ = cm.Record(1, 2, 2) // FN (pos predicted other)
	_ = cm.Record(0, 1, 1) // FP
	_ = cm.Record(2, 0, 5) // TN (non-pos to non-pos)
	b := cm.Binary(1)
	if b.TP != 3 || b.FN != 2 || b.FP != 1 || b.TN != 5 {
		t.Fatalf("multi-class binary = %+v", b)
	}
}
