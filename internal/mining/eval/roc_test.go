package eval

import (
	"errors"
	"math"
	"testing"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/stats"
)

// scoreByX scores P(pos) as the (clamped) first attribute value.
type scoreByX struct{}

func (scoreByX) Classify(v []float64) int {
	if v[0] >= 0.5 {
		return 1
	}
	return 0
}

func (scoreByX) Distribution(v []float64) []float64 {
	p := stats.Clamp(v[0], 0, 1)
	return []float64{1 - p, p}
}

var _ mining.Distributor = scoreByX{}

func rocDataset(n int, noise float64, seed uint64) *dataset.Dataset {
	d := dataset.New("roc", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	rng := stats.NewRNG(seed)
	for i := 0; i < n; i++ {
		x := rng.Float64()
		class := 0
		if x > 0.5 {
			class = 1
		}
		if rng.Float64() < noise {
			class = 1 - class
		}
		d.MustAdd(dataset.Instance{Values: []float64{x}, Class: class, Weight: 1})
	}
	return d
}

func TestROCPerfectScorer(t *testing.T) {
	d := rocDataset(400, 0, 1)
	points, auc, err := ROC(scoreByX{}, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.999 {
		t.Errorf("perfect scorer AUC = %v", auc)
	}
	// Endpoints.
	first, last := points[0], points[len(points)-1]
	if first.FPR != 0 || first.TPR != 0 {
		t.Errorf("curve must start at (0,0): %+v", first)
	}
	if math.Abs(last.FPR-1) > 1e-12 || math.Abs(last.TPR-1) > 1e-12 {
		t.Errorf("curve must end at (1,1): %+v", last)
	}
	// Monotone in both coordinates.
	for k := 1; k < len(points); k++ {
		if points[k].FPR < points[k-1].FPR || points[k].TPR < points[k-1].TPR {
			t.Fatalf("non-monotone curve at %d", k)
		}
	}
}

func TestROCRandomScorer(t *testing.T) {
	// Scores independent of labels: AUC ~ 0.5.
	d := dataset.New("r", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"neg", "pos"})
	rng := stats.NewRNG(2)
	for i := 0; i < 2000; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{rng.Float64()}, Class: rng.Intn(2), Weight: 1})
	}
	_, auc, err := ROC(scoreByX{}, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.45 || auc > 0.55 {
		t.Errorf("random scorer AUC = %v, want ~0.5", auc)
	}
}

func TestROCNoisyBetweenHalfAndOne(t *testing.T) {
	d := rocDataset(1000, 0.2, 3)
	_, auc, err := ROC(scoreByX{}, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if auc <= 0.6 || auc >= 0.99 {
		t.Errorf("noisy AUC = %v, want in (0.6, 0.99)", auc)
	}
}

func TestROCErrors(t *testing.T) {
	empty := dataset.New("e", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	if _, _, err := ROC(scoreByX{}, empty, 1); !errors.Is(err, ErrNoScores) {
		t.Errorf("err = %v", err)
	}
	onlyNeg := dataset.New("n", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	onlyNeg.MustAdd(dataset.Instance{Values: []float64{1}, Class: 0, Weight: 1})
	if _, _, err := ROC(scoreByX{}, onlyNeg, 1); err == nil {
		t.Error("single-class ROC should fail")
	}
}

func TestROCTieHandling(t *testing.T) {
	// All instances share one score: the curve is the diagonal and the
	// AUC is exactly 0.5 regardless of class mix.
	d := dataset.New("t", []dataset.Attribute{dataset.NumericAttr("x")}, []string{"a", "b"})
	for i := 0; i < 10; i++ {
		d.MustAdd(dataset.Instance{Values: []float64{0.7}, Class: i % 2, Weight: 1})
	}
	points, auc, err := ROC(scoreByX{}, d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("tied scores must collapse to one operating point, got %d", len(points))
	}
	if math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v", auc)
	}
}

func TestROCCrossValidated(t *testing.T) {
	d := rocDataset(300, 0.1, 4)
	points, auc, err := ROCCrossValidated(perfectDistLearner{}, d, CVConfig{Folds: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if auc < 0.8 {
		t.Errorf("cross-validated AUC = %v", auc)
	}
	if len(points) < 3 {
		t.Errorf("curve has only %d points", len(points))
	}
}

// perfectDistLearner returns scoreByX as its model.
type perfectDistLearner struct{}

func (perfectDistLearner) Name() string { return "perfect-dist" }

func (perfectDistLearner) Fit(*dataset.Dataset) (mining.Classifier, error) {
	return scoreByX{}, nil
}

func TestROCCrossValidatedRejectsNonDistributor(t *testing.T) {
	d := rocDataset(100, 0, 5)
	if _, _, err := ROCCrossValidated(stubLearner{}, d, CVConfig{Folds: 5}); err == nil {
		t.Fatal("non-distributor learner should fail")
	}
}
