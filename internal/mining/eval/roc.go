package eval

import (
	"errors"
	"sort"

	"edem/internal/dataset"
	"edem/internal/mining"
	"edem/internal/stats"
)

// ROCPoint is one operating point of a classifier: the (FPR, TPR)
// coordinates obtained at some score threshold (paper §IV: "each model
// is a point defined by the coordinates (1-specificity, sensitivity)").
type ROCPoint struct {
	Threshold float64
	FPR       float64
	TPR       float64
}

// ErrNoScores is returned when a ROC curve is requested without data.
var ErrNoScores = errors.New("eval: no scored instances")

// ROC computes the full ROC curve of a probabilistic classifier over a
// dataset: every distinct score becomes a threshold, and the area under
// the resulting curve is the multi-point AUC of §IV ("for different
// settings, the same algorithm will produce multiple points on the
// plot"). It returns the points from the most conservative operating
// point (0,0) to the most liberal (1,1) and the trapezoid-integrated
// area.
func ROC(model mining.Distributor, d *dataset.Dataset, positiveClass int) ([]ROCPoint, float64, error) {
	if d.Len() == 0 {
		return nil, 0, ErrNoScores
	}
	type scored struct {
		score float64
		pos   bool
		w     float64
	}
	items := make([]scored, 0, d.Len())
	var posW, negW float64
	for i := range d.Instances {
		in := &d.Instances[i]
		dist := model.Distribution(in.Values)
		s := 0.0
		if positiveClass < len(dist) {
			s = dist[positiveClass]
		}
		w := in.Weight
		if w <= 0 {
			w = 1
		}
		isPos := in.Class == positiveClass
		if isPos {
			posW += w
		} else {
			negW += w
		}
		items = append(items, scored{score: s, pos: isPos, w: w})
	}
	if posW == 0 || negW == 0 {
		return nil, 0, errors.New("eval: ROC needs both classes present")
	}
	// Descending by score: lowering the threshold admits instances in
	// this order.
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })

	points := []ROCPoint{{Threshold: 1, FPR: 0, TPR: 0}}
	var tp, fp float64
	i := 0
	for i < len(items) {
		// Consume ties together: instances sharing a score share an
		// operating point.
		s := items[i].score
		for i < len(items) && items[i].score == s {
			if items[i].pos {
				tp += items[i].w
			} else {
				fp += items[i].w
			}
			i++
		}
		points = append(points, ROCPoint{Threshold: s, FPR: fp / negW, TPR: tp / posW})
	}
	// Trapezoid integration.
	auc := 0.0
	for k := 1; k < len(points); k++ {
		dx := points[k].FPR - points[k-1].FPR
		auc += dx * (points[k].TPR + points[k-1].TPR) / 2
	}
	return points, auc, nil
}

// ROCCrossValidated fits the learner on k-fold training partitions and
// pools the test-fold scores into one ROC curve, giving an unbiased
// multi-point AUC estimate for learners that expose distributions.
func ROCCrossValidated(l mining.Learner, d *dataset.Dataset, cfg CVConfig) ([]ROCPoint, float64, error) {
	if cfg.Folds == 0 {
		cfg.Folds = 10
	}
	if cfg.PositiveClass == 0 {
		cfg.PositiveClass = PositiveClass
	}
	// Collect out-of-fold scores into a synthetic dataset scored by an
	// identity distributor, then reuse ROC.
	type scoredInstance struct {
		score float64
		class int
		w     float64
	}
	var all []scoredInstance

	rng := stats.NewRNG(cfg.Seed)
	folds, err := dataset.StratifiedKFold(d, cfg.Folds, rng)
	if err != nil {
		return nil, 0, err
	}
	for fi, fold := range folds {
		// Read-only training partition: transforms clone before writing
		// and learners must not mutate (see the dataset ownership
		// contract), so sharing Values is safe.
		train := d.SubsetShared(fold.Train)
		if cfg.Transform != nil {
			train, err = cfg.Transform(train, rng.Fork())
			if err != nil {
				return nil, 0, err
			}
		}
		model, err := l.Fit(train)
		if err != nil {
			return nil, 0, err
		}
		dist, ok := model.(mining.Distributor)
		if !ok {
			return nil, 0, errors.New("eval: learner does not expose class distributions")
		}
		for _, ti := range fold.Test {
			in := &d.Instances[ti]
			p := dist.Distribution(in.Values)
			s := 0.0
			if cfg.PositiveClass < len(p) {
				s = p[cfg.PositiveClass]
			}
			all = append(all, scoredInstance{score: s, class: in.Class, w: in.Weight})
		}
		_ = fi
	}

	// Build a tiny single-attribute dataset carrying the scores and let
	// ROC do the integration through an identity distributor.
	sd := dataset.New("scores", []dataset.Attribute{dataset.NumericAttr("score")}, d.ClassValues)
	for _, s := range all {
		if err := sd.Add(dataset.Instance{Values: []float64{s.score}, Class: s.class, Weight: s.w}); err != nil {
			return nil, 0, err
		}
	}
	return ROC(identityScore{positive: cfg.PositiveClass, classes: len(d.ClassValues)}, sd, cfg.PositiveClass)
}

// identityScore treats the first attribute as P(positive).
type identityScore struct {
	positive int
	classes  int
}

func (s identityScore) Classify(values []float64) int {
	if values[0] >= 0.5 {
		return s.positive
	}
	return 1 - s.positive
}

func (s identityScore) Distribution(values []float64) []float64 {
	dist := make([]float64, s.classes)
	dist[s.positive] = values[0]
	if s.positive == 0 {
		dist[1] = 1 - values[0]
	} else {
		dist[0] = 1 - values[0]
	}
	return dist
}
