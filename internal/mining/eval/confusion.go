// Package eval implements the evaluation machinery of paper §IV: the
// confusion matrix (Table I), the derived metrics (sensitivity,
// specificity, the single-model trapezoid AUC, F1, geometric mean,
// Euclidean distance from the perfect classifier, expected
// misclassification cost) and stratified k-fold cross-validation.
//
// Role in the methodology: the measurement harness of Steps 3 and 4 —
// every Table III/IV figure is a CrossValidate output. Concurrency:
// CrossValidate runs folds in parallel on the shared internal/parallel
// budget; per-fold RNGs are derived from (seed, fold index) alone and
// results land in indexed slots, so output is bit-identical for any
// worker count. Metric types are plain values; share them only
// read-only.
package eval

import (
	"fmt"
	"math"
	"strings"
)

// PositiveClass is the conventional index of the concept class
// (failure-inducing states) in binary fault-injection datasets.
const PositiveClass = 1

// ConfusionMatrix cross-tabulates actual vs predicted class labels.
// Cells are weighted counts: CM[i][j] is the total weight of instances
// of actual class i predicted as class j (paper Table I).
type ConfusionMatrix struct {
	Classes []string
	Cells   [][]float64
}

// NewConfusionMatrix returns an empty matrix over the given classes.
func NewConfusionMatrix(classes []string) *ConfusionMatrix {
	cs := make([]string, len(classes))
	copy(cs, classes)
	cells := make([][]float64, len(classes))
	for i := range cells {
		cells[i] = make([]float64, len(classes))
	}
	return &ConfusionMatrix{Classes: cs, Cells: cells}
}

// Record adds one labelled prediction with the given weight.
func (cm *ConfusionMatrix) Record(actual, predicted int, weight float64) error {
	n := len(cm.Classes)
	if actual < 0 || actual >= n || predicted < 0 || predicted >= n {
		return fmt.Errorf("eval: class out of range: actual=%d predicted=%d n=%d", actual, predicted, n)
	}
	cm.Cells[actual][predicted] += weight
	return nil
}

// Merge adds another matrix over the same classes into cm.
func (cm *ConfusionMatrix) Merge(other *ConfusionMatrix) error {
	if len(other.Classes) != len(cm.Classes) {
		return fmt.Errorf("eval: merging %d-class matrix into %d-class matrix", len(other.Classes), len(cm.Classes))
	}
	for i := range cm.Cells {
		for j := range cm.Cells[i] {
			cm.Cells[i][j] += other.Cells[i][j]
		}
	}
	return nil
}

// Total returns the total recorded weight.
func (cm *ConfusionMatrix) Total() float64 {
	t := 0.0
	for i := range cm.Cells {
		for _, v := range cm.Cells[i] {
			t += v
		}
	}
	return t
}

// Accuracy returns the weighted fraction of correct predictions.
func (cm *ConfusionMatrix) Accuracy() float64 {
	total := cm.Total()
	if total == 0 {
		return 0
	}
	correct := 0.0
	for i := range cm.Cells {
		correct += cm.Cells[i][i]
	}
	return correct / total
}

// ExpectedCost returns the total misclassification cost under cost
// matrix c, where c[i][j] is the cost of predicting class j for an
// instance of class i (paper §IV). The diagonal is conventionally zero.
func (cm *ConfusionMatrix) ExpectedCost(c [][]float64) (float64, error) {
	if len(c) != len(cm.Classes) {
		return 0, fmt.Errorf("eval: cost matrix has %d rows, want %d", len(c), len(cm.Classes))
	}
	total := 0.0
	for i := range cm.Cells {
		if len(c[i]) != len(cm.Classes) {
			return 0, fmt.Errorf("eval: cost matrix row %d has %d columns, want %d", i, len(c[i]), len(cm.Classes))
		}
		for j := range cm.Cells[i] {
			total += c[i][j] * cm.Cells[i][j]
		}
	}
	return total, nil
}

// Binary collapses the matrix into TP/FP/TN/FN counts treating class
// pos as the positive concept.
func (cm *ConfusionMatrix) Binary(pos int) BinaryCounts {
	var b BinaryCounts
	for i := range cm.Cells {
		for j, w := range cm.Cells[i] {
			switch {
			case i == pos && j == pos:
				b.TP += w
			case i == pos && j != pos:
				b.FN += w
			case i != pos && j == pos:
				b.FP += w
			default:
				b.TN += w
			}
		}
	}
	return b
}

// String renders the matrix in the layout of Table I.
func (cm *ConfusionMatrix) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s", "actual\\pred")
	for _, c := range cm.Classes {
		fmt.Fprintf(&sb, "%12s", c)
	}
	sb.WriteByte('\n')
	for i, c := range cm.Classes {
		fmt.Fprintf(&sb, "%-14s", c)
		for j := range cm.Classes {
			fmt.Fprintf(&sb, "%12.1f", cm.Cells[i][j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// BinaryCounts are the four cells of a concept-learning confusion
// matrix (paper Table I).
type BinaryCounts struct {
	TP, FN, FP, TN float64
}

// TPR returns the true positive rate (sensitivity, recall): TP/(TP+FN).
// It is 0 when no positives exist.
func (b BinaryCounts) TPR() float64 { return ratio(b.TP, b.TP+b.FN) }

// FPR returns the false positive rate: FP/(TN+FP).
func (b BinaryCounts) FPR() float64 { return ratio(b.FP, b.TN+b.FP) }

// TNR returns the true negative rate (specificity): TN/(TN+FP).
func (b BinaryCounts) TNR() float64 { return ratio(b.TN, b.TN+b.FP) }

// Precision returns TP/(TP+FP).
func (b BinaryCounts) Precision() float64 { return ratio(b.TP, b.TP+b.FP) }

// F1 returns the harmonic mean of precision and recall (paper §IV).
func (b BinaryCounts) F1() float64 {
	p, r := b.Precision(), b.TPR()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// GeometricMean returns sqrt(TPR*TNR), the metric of Kubat et al. [26].
func (b BinaryCounts) GeometricMean() float64 {
	return math.Sqrt(b.TPR() * b.TNR())
}

// AUC returns the single-model trapezoid area under the ROC curve,
// (TPR - FPR + 1)/2, the AUC measure reported in Tables III and IV.
func (b BinaryCounts) AUC() float64 {
	return (b.TPR() - b.FPR() + 1) / 2
}

// DistanceFromPerfect returns the Euclidean distance of the model's
// ROC point (FPR, TPR) from the perfect classifier at (0, 1).
func (b BinaryCounts) DistanceFromPerfect() float64 {
	fpr, tpr := b.FPR(), b.TPR()
	return math.Hypot(fpr, 1-tpr)
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
